module insitu

go 1.22
