// Package insitu reproduces "Optimal Scheduling of In-situ Analysis for
// Large-scale Scientific Simulations" (Malakar et al., SC '15): scheduling
// in-situ analyses as a mixed-integer linear program that maximizes the
// number and importance of analyses performed during a simulation, subject
// to time, memory, interval, and I/O-bandwidth constraints.
//
// The repository layout follows the paper's system stack:
//
//   - internal/core — the scheduling model and solvers (the contribution)
//   - internal/lp, internal/milp — from-scratch simplex and branch & bound
//     (the GAMS+CPLEX substitute)
//   - internal/sim/md, internal/sim/amr — LAMMPS- and FLASH-style mini-apps
//   - internal/analysis/... — the ten analysis kernels of Tables 2-3 and §5.2
//   - internal/comm, internal/machine, internal/perfmodel, internal/iosim,
//     internal/trace — the MPI/BG-Q/HPM/GPFS substrate models
//   - internal/coupling — executes recommended schedules against live runs
//   - internal/experiments — regenerates every table and figure of §5
//
// See README.md for a walkthrough, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each experiment under `go test -bench`.
package insitu
