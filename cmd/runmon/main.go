// Command runmon is the live-run watchdog: it watches a scheduled in-situ
// run through its JSONL event ledger, scores every step, analysis, and
// output duration against the predictions the schedule was solved from, and
// reports drift (EWMA of relative error plus a CUSUM change detector) and
// budget-at-risk projections while the run is still going.
//
// Usage:
//
//	runmon tail   -ledger run.jsonl [-poll 500ms] [-once]
//	runmon report -ledger run.jsonl [-html report.html] [-json]
//	runmon serve  -ledger run.jsonl [-addr host:port] [-poll 500ms]
//
// tail follows a growing ledger and redraws the terminal drift dashboard as
// events arrive, exiting when the run ends (or on interrupt). report replays
// a completed ledger once and prints the post-hoc drift report — with -html
// it also writes a self-contained HTML report, with -json the raw snapshot.
// serve follows the ledger and exposes the live dashboard over HTTP: / (the
// HTML report), /runs, /drift.json, and /metrics with the runmon detector
// gauges; it shuts down cleanly on SIGINT/SIGTERM.
//
// Ledgers written by monitored runs (mdsim -monitor, flashsim -monitor,
// campaign.Config.Monitor) embed their predictions as plan events, so runmon
// needs only the file; ledgers without plans are scored against a baseline
// self-calibrated from each stream's first observations.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"insitu/internal/obs"
	"insitu/internal/runmon"
)

const usageText = `usage: runmon <command> [flags]

commands:
  tail    follow a growing run ledger and redraw the drift dashboard
  report  replay a completed ledger and print the drift report
  serve   follow a ledger and expose the dashboard over HTTP

run 'runmon <command> -h' for the flags of each command.
`

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches to a subcommand and returns the process exit code: 0 ok,
// 1 failure, 2 usage error. ctx cancellation (the signal handler in main)
// shuts tail and serve down cleanly.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	switch args[0] {
	case "tail":
		return cmdTail(ctx, args[1:], stdout, stderr)
	case "report":
		return cmdReport(args[1:], stdout, stderr)
	case "serve":
		return cmdServe(ctx, args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usageText)
		return 0
	}
	fmt.Fprintf(stderr, "runmon: unknown command %q\n%s", args[0], usageText)
	return 2
}

// ledgerFlag resolves the -ledger flag, falling back to the first positional
// argument.
func ledgerFlag(fs *flag.FlagSet, ledger string, stderr io.Writer) (string, bool) {
	path := ledger
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" {
		fmt.Fprintln(stderr, "runmon: needs -ledger run.jsonl")
		fs.Usage()
		return "", false
	}
	return path, true
}

func cmdTail(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("runmon tail", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledger := fs.String("ledger", "", "JSONL run ledger to follow (required)")
	poll := fs.Duration("poll", 500*time.Millisecond, "ledger poll interval")
	once := fs.Bool("once", false, "process the ledger's current contents once and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path, ok := ledgerFlag(fs, *ledger, stderr)
	if !ok {
		return 2
	}

	mon := runmon.NewMonitor(nil, runmon.Config{})
	f := runmon.NewFollower(path)
	for {
		events, err := f.Poll()
		if err != nil {
			fmt.Fprintf(stderr, "runmon: %v\n", err)
			return 1
		}
		for _, e := range events {
			mon.Observe(e)
		}
		if len(events) > 0 {
			s := mon.Snapshot()
			fmt.Fprintln(stdout)
			if err := s.WriteText(stdout); err != nil {
				fmt.Fprintf(stderr, "runmon: %v\n", err)
				return 1
			}
			if s.Ended {
				fmt.Fprintf(stdout, "run ended: %s\n", s.Summary())
				return 0
			}
		}
		if *once {
			return 0
		}
		select {
		case <-ctx.Done():
			return 0
		case <-time.After(*poll):
		}
	}
}

func cmdReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("runmon report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledger := fs.String("ledger", "", "JSONL run ledger to replay (required)")
	htmlPath := fs.String("html", "", "also write a self-contained HTML drift report to this file")
	asJSON := fs.Bool("json", false, "emit the snapshot as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path, ok := ledgerFlag(fs, *ledger, stderr)
	if !ok {
		return 2
	}
	events, err := obs.ReadLedgerFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "runmon: %v\n", err)
		return 1
	}
	if len(events) == 0 {
		fmt.Fprintf(stderr, "runmon: ledger %s: no events\n", path)
		return 1
	}
	s := runmon.Analyze(events, nil, runmon.Config{})
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintf(stderr, "runmon: %v\n", err)
			return 1
		}
	} else {
		if err := s.WriteText(stdout); err != nil {
			fmt.Fprintf(stderr, "runmon: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "summary: %s\n", s.Summary())
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			fmt.Fprintf(stderr, "runmon: %v\n", err)
			return 1
		}
		if err := s.WriteHTML(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "runmon: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "runmon: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *htmlPath)
	}
	return 0
}

func cmdServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("runmon serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledger := fs.String("ledger", "", "JSONL run ledger to follow (required)")
	addr := fs.String("addr", "127.0.0.1:8090", "listen address for the dashboard")
	poll := fs.Duration("poll", 500*time.Millisecond, "ledger poll interval")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path, ok := ledgerFlag(fs, *ledger, stderr)
	if !ok {
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "runmon: %v\n", err)
		return 1
	}
	return serveLedger(ctx, ln, path, *poll, stdout, stderr)
}

// serveLedger follows the ledger into a live monitor and serves the runmon
// HTTP surface on ln until ctx is canceled. Both sit on obs.ServeLoop — the
// shared daemon shape — so one signal stops the server and the follower
// together, and both are drained before returning.
func serveLedger(ctx context.Context, ln net.Listener, path string, poll time.Duration, stdout, stderr io.Writer) int {
	reg := obs.NewRegistry()
	mon := runmon.NewMonitor(nil, runmon.Config{Metrics: reg})
	fmt.Fprintf(stdout, "runmon: serving http://%s/ (also /runs, /drift.json, /metrics) from %s\n", ln.Addr(), path)
	err := obs.ServeLoop(ctx, ln, runmon.NewServeMux(mon, reg), func(bgCtx context.Context) error {
		if err := runmon.Follow(bgCtx, path, poll, mon.Observe); err != nil {
			return fmt.Errorf("ledger follow: %w", err)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "runmon: %v\n", err)
		return 1
	}
	return 0
}
