package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"insitu/internal/obs"
	"insitu/internal/runmon"
)

// writeSynthLedger writes a deterministic perturbed run's ledger to a temp
// file and returns its path.
func writeSynthLedger(t *testing.T, srun runmon.SynthRun, seed int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	led, err := obs.OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range srun.Events(seed) {
		led.Append(e)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func driftRun() runmon.SynthRun {
	return runmon.SynthRun{
		Name: "cli", App: "mdsim/cli", Steps: 60,
		SimSec: 0.010, ThresholdSec: 0.5, NoiseFrac: 0.02,
		Kind: runmon.PerturbSimTime, ChangeStep: 30, Factor: 1.5,
		Kernels: []runmon.SynthKernel{
			{Name: "rdf", AnalyzeSec: 0.004, OutputSec: 0.001, Every: 2, OutputEvery: 4, Bytes: 1 << 20},
		},
	}
}

func TestCmdReport(t *testing.T) {
	path := writeSynthLedger(t, driftRun(), 11)
	var stdout, stderr bytes.Buffer
	htmlPath := filepath.Join(t.TempDir(), "drift.html")
	code := run(context.Background(), []string{"report", "-ledger", path, "-html", htmlPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"run: mdsim/cli", "DRIFT@", "summary:", "1 drift alert"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "Run drift report") {
		t.Fatal("HTML report not written")
	}
}

func TestCmdReportJSON(t *testing.T) {
	path := writeSynthLedger(t, driftRun(), 11)
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"report", "-json", "-ledger", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var s runmon.Snapshot
	if err := json.Unmarshal(stdout.Bytes(), &s); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if s.DriftCount() != 1 || !s.Ended {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestCmdTailOnComplete(t *testing.T) {
	// Tailing an already-complete ledger drains it in one poll and exits 0
	// when it sees run_end.
	path := writeSynthLedger(t, driftRun(), 11)
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"tail", "-ledger", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "run ended:") || !strings.Contains(out, "DRIFT@") {
		t.Fatalf("tail output:\n%s", out)
	}
}

func TestCmdTailOnceOnMissingFile(t *testing.T) {
	// -once on a not-yet-created ledger exits cleanly without waiting.
	path := filepath.Join(t.TempDir(), "nope.jsonl")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"tail", "-once", "-ledger", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
}

func TestCmdUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args -> %d, want 2", code)
	}
	if code := run(context.Background(), []string{"bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown command -> %d, want 2", code)
	}
	if code := run(context.Background(), []string{"report"}, &stdout, &stderr); code != 2 {
		t.Fatalf("report without ledger -> %d, want 2", code)
	}
	if code := run(context.Background(), []string{"help"}, &stdout, &stderr); code != 0 {
		t.Fatalf("help -> %d, want 0", code)
	}
}

// TestServeLedgerLiveAndGracefulShutdown boots runmon serve on a real
// listener over a growing ledger, checks the live endpoints, then cancels
// the context and requires a clean exit — the serve-side satellite of the
// graceful-shutdown requirement.
func TestServeLedgerLiveAndGracefulShutdown(t *testing.T) {
	path := writeSynthLedger(t, driftRun(), 11)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- serveLedger(ctx, ln, path, 10*time.Millisecond, &stdout, &stderr)
	}()

	base := fmt.Sprintf("http://%s", ln.Addr())
	get := func(p string) string {
		t.Helper()
		// Retry until the follower has drained the ledger.
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + p)
			if err == nil {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return string(body)
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("GET %s never succeeded: %v", p, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Wait until the monitor has consumed the whole run.
	deadline := time.Now().Add(10 * time.Second)
	var snap runmon.Snapshot
	for {
		if err := json.Unmarshal([]byte(get("/drift.json")), &snap); err != nil {
			t.Fatalf("drift.json: %v", err)
		}
		if snap.Ended {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never ended in monitor: %+v", snap)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if snap.DriftCount() != 1 {
		t.Fatalf("drift alerts = %d, want 1", snap.DriftCount())
	}
	if !strings.Contains(get("/"), "Run drift report") {
		t.Fatal("dashboard not served at /")
	}
	if !strings.Contains(get("/metrics"), "runmon_ewma_rel_err") {
		t.Fatal("detector gauges missing from /metrics")
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serveLedger exit %d, stderr:\n%s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveLedger did not shut down after cancellation")
	}
}
