// Command mdsim runs the molecular-dynamics mini-app with optimally
// scheduled in-situ analyses: it profiles the analysis kernels against the
// live simulation (§4), solves the scheduling MILP (§3.2), executes the
// recommended schedule (§5), and reports predicted vs executed analysis
// time.
//
// Usage:
//
//	mdsim [-system water|rhodopsin] [-atoms 4000] [-steps 200]
//	      [-threshold-pct 10] [-interval 20] [-ranks 4] [-out results.txt]
//	      [-trace trace.json] [-metrics metrics.txt] [-ledger run.jsonl]
//	      [-monitor] [-replan] [-perturb-sim 1.5@50]
//
// -trace writes the executed run as Chrome trace JSON (load in
// chrome://tracing or Perfetto); -metrics writes run counters in Prometheus
// text format (or a JSON snapshot when the path ends in .json); -ledger
// writes the run as a JSONL event ledger that `benchobs summarize` replays
// into a per-step timeline. -monitor watches the run live with a
// runmon.Monitor: residuals against the solved schedule are scored as the
// run happens, a drift report prints after execution, and (with -ledger)
// plan and alert events are written into the ledger for `runmon report`.
// -replan (implies -monitor) closes the loop: drift and budget alerts
// trigger a rolling-horizon re-solve, adopted schedules swap into the
// running loop, and every decision lands in the ledger as a replan event.
// -perturb-sim FACTOR@STEP is the testing hook behind the CI replan smoke:
// from the given execution step on, each simulation step is padded to
// FACTOR times the profiled step time, so the profiles are guaranteed wrong
// mid-run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/analysis/mdkernels"
	"insitu/internal/core"
	"insitu/internal/coupling"
	"insitu/internal/obs"
	"insitu/internal/replan"
	"insitu/internal/runmon"
	"insitu/internal/sim/md"
)

func main() {
	system := flag.String("system", "water", "system to simulate: water (A1-A4) or rhodopsin (R1-R3)")
	atoms := flag.Int("atoms", 4000, "number of particles")
	steps := flag.Int("steps", 200, "simulation steps")
	thresholdPct := flag.Float64("threshold-pct", 10, "in-situ analysis threshold as % of simulation time")
	interval := flag.Int("interval", 20, "minimum interval between analysis steps")
	ranks := flag.Int("ranks", 4, "analysis reduction ranks")
	outPath := flag.String("out", "", "write analysis output to this file (default: discard)")
	tracePath := flag.String("trace", "", "write the executed run as Chrome trace JSON to this file")
	metricsPath := flag.String("metrics", "", "write run metrics to this file (Prometheus text, or JSON with a .json suffix)")
	ledgerPath := flag.String("ledger", "", "write the run as a JSONL event ledger to this file")
	monitor := flag.Bool("monitor", false, "watch the run live for drift against the solved schedule (prints a drift report; plan and alert events land in the ledger when -ledger is set)")
	replanOn := flag.Bool("replan", false, "reschedule the remaining run when the monitor detects drift (implies -monitor; replan events land in the ledger)")
	perturbSim := flag.String("perturb-sim", "", "pad each simulation step to FACTOR times the profiled step time from step N on (format \"1.5@50\"); a testing hook for -replan")
	render := flag.Bool("render", false, "print a Figure-3 style ASCII snapshot before running")
	flag.Parse()

	if *render {
		sys, err := buildSystem(*system, *atoms)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			os.Exit(1)
		}
		fmt.Print(sys.RenderSlice(72, 28, sys.Box[1]/4))
	}
	if err := run(*system, *atoms, *steps, *thresholdPct, *interval, *ranks, *outPath, *tracePath, *metricsPath, *ledgerPath, *monitor, *replanOn, *perturbSim); err != nil {
		fmt.Fprintln(os.Stderr, "mdsim:", err)
		os.Exit(1)
	}
}

func buildSystem(system string, atoms int) (*md.System, error) {
	cfg := md.Config{NAtoms: atoms, Seed: 1}
	switch system {
	case "water":
		return md.NewWaterIons(cfg)
	case "rhodopsin":
		return md.NewRhodopsin(cfg)
	}
	return nil, fmt.Errorf("unknown system %q", system)
}

// parsePerturb parses the -perturb-sim testing hook ("FACTOR@STEP").
func parsePerturb(s string) (factor float64, at int, err error) {
	if _, err := fmt.Sscanf(s, "%g@%d", &factor, &at); err != nil {
		return 0, 0, fmt.Errorf("bad -perturb-sim %q (want FACTOR@STEP, e.g. 1.5@50): %w", s, err)
	}
	if factor <= 1 || at < 1 {
		return 0, 0, fmt.Errorf("bad -perturb-sim %q: factor must exceed 1 and step must be >= 1", s)
	}
	return factor, at, nil
}

func run(system string, atoms, steps int, thresholdPct float64, interval, ranks int, outPath, tracePath, metricsPath, ledgerPath string, monitor, replanOn bool, perturbSim string) error {
	monitor = monitor || replanOn
	cfg := md.Config{NAtoms: atoms, Seed: 1}
	var sys *md.System
	var err error
	var kernels []analysis.Kernel
	mk := func(k analysis.Kernel, e error) error {
		if e != nil {
			return e
		}
		kernels = append(kernels, k)
		return nil
	}
	switch system {
	case "water":
		sys, err = md.NewWaterIons(cfg)
		if err != nil {
			return err
		}
		if err := mk(mdkernels.NewHydroniumRDF(sys, mdkernels.RDFConfig{Ranks: ranks})); err != nil {
			return err
		}
		if err := mk(mdkernels.NewIonRDF(sys, mdkernels.RDFConfig{Ranks: ranks})); err != nil {
			return err
		}
		if err := mk(mdkernels.NewVACF(sys, ranks)); err != nil {
			return err
		}
		if err := mk(mdkernels.NewMSD(sys, ranks)); err != nil {
			return err
		}
		if err := mk(mdkernels.NewStats(sys, ranks)); err != nil {
			return err
		}
		if err := mk(mdkernels.NewSpeedHistogram(sys, 64, 4, ranks)); err != nil {
			return err
		}
	case "rhodopsin":
		sys, err = md.NewRhodopsin(cfg)
		if err != nil {
			return err
		}
		if err := mk(mdkernels.NewGyration(sys, ranks)); err != nil {
			return err
		}
		if err := mk(mdkernels.NewMembraneHist(sys, mdkernels.HistConfig{Ranks: ranks})); err != nil {
			return err
		}
		if err := mk(mdkernels.NewProteinHist(sys, mdkernels.HistConfig{Ranks: ranks})); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown system %q", system)
	}

	step := func() { sys.Step(0.002) }

	// Estimate the simulation time per step to derive the threshold.
	t0 := time.Now()
	probe := 5
	for i := 0; i < probe; i++ {
		step()
	}
	simPerStep := time.Since(t0).Seconds() / float64(probe)
	res := core.Resources{
		Steps:         steps,
		TimeThreshold: core.PercentThreshold(simPerStep, steps, thresholdPct),
		MemThreshold:  1 << 32,
	}
	fmt.Printf("system=%s atoms=%d steps=%d sim=%.4fs/step threshold=%.3fs (%.0f%%)\n",
		system, sys.N, steps, simPerStep, res.TimeThreshold, thresholdPct)

	rec, specs, err := coupling.MeasureAndSolve(kernels, step, 4, interval, res)
	if err != nil {
		return err
	}
	fmt.Println("\nmeasured analysis profiles:")
	for _, s := range specs {
		fmt.Printf("  %-24s ct=%.5fs ot=%.5fs fm=%d im=%d\n", s.Name, s.CT, s.OT, s.FM, s.IM)
	}
	fmt.Println("\nrecommended schedule:")
	fmt.Print(rec.String())

	var out io.Writer = io.Discard
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	byName := map[string]analysis.Kernel{}
	for _, k := range kernels {
		byName[k.Name()] = k
	}
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer()
	}
	var reg *obs.Registry
	if metricsPath != "" {
		reg = obs.NewRegistry()
	}
	var ledger *obs.EventLog
	if ledgerPath != "" {
		ledger, err = obs.OpenEventLog(ledgerPath)
		if err != nil {
			return err
		}
		ledger.Append(obs.LedgerEvent{
			Type: obs.LedgerSolve, Name: "schedule",
			Dur: float64(rec.SolveTime.Nanoseconds()) / 1e3,
			Args: map[string]float64{
				"nodes":     float64(rec.Stats.Nodes),
				"pivots":    float64(rec.Stats.Pivots),
				"objective": rec.Objective,
				"threshold": res.TimeThreshold,
			},
		})
	}
	execStep := step
	if perturbSim != "" {
		factor, at, err := parsePerturb(perturbSim)
		if err != nil {
			return err
		}
		fmt.Printf("perturbation: sim steps padded to %.2fx profiled time from step %d\n", factor, at)
		n := 0
		execStep = func() {
			n++
			t := time.Now()
			step()
			if n >= at {
				if pad := time.Duration(simPerStep*factor*1e9) - time.Since(t); pad > 0 {
					time.Sleep(pad)
				}
			}
		}
	}
	runner := &coupling.Runner{Step: execStep, Kernels: byName, Rec: rec, Res: res, Output: out, Trace: tracer, Metrics: reg, Ledger: ledger, App: "mdsim/" + system}
	var mon *runmon.Monitor
	if monitor {
		profile := runmon.FromPlan(specs, rec, res, simPerStep)
		profile.App = "mdsim/" + system
		mon = runmon.NewMonitor(profile, runmon.Config{Ledger: ledger, Metrics: reg})
		// Plan events make the ledger self-describing: a later
		// `runmon report -ledger` scores against the same predictions.
		for _, e := range profile.PlanEvents() {
			ledger.Append(e)
		}
		runner.Observe = mon.Observe
	}
	var rp *replan.Replanner
	if replanOn {
		rp = replan.New(mon, specs, res, rec, simPerStep, replan.Config{
			BudgetPercent: thresholdPct, Ledger: ledger, Metrics: reg,
		})
		runner.Replan = rp.Hook()
	}
	rep, err := runner.Run()
	if err != nil {
		return err
	}
	fmt.Printf("\nexecuted: sim=%v analyses=%v (%.1f%% of threshold)\n",
		rep.SimTime, rep.AnalysisTime, rep.Utilization(res)*100)
	for _, kr := range rep.Kernels {
		fmt.Printf("  %-24s analyses=%d outputs=%d total=%v out_bytes=%d\n",
			kr.Name, kr.Analyses, kr.Outputs, kr.Total(), kr.OutBytes)
	}
	if mon != nil {
		fmt.Println("\nrun monitor:")
		if err := mon.Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if rp != nil {
		fmt.Println(rp.String())
	}
	if tracePath != "" {
		if err := obs.WriteTraceFile(tracePath, tracer); err != nil {
			return err
		}
		fmt.Printf("wrote trace (%d events) to %s\n", tracer.Len(), tracePath)
	}
	if metricsPath != "" {
		if err := obs.WriteMetricsFile(metricsPath, reg); err != nil {
			return err
		}
		fmt.Printf("wrote metrics to %s\n", metricsPath)
	}
	if ledgerPath != "" {
		if err := ledger.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote ledger (%d events) to %s\n", ledger.Len(), ledgerPath)
	}
	return nil
}
