package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"insitu/internal/obs"
	"insitu/internal/runmon"
)

func TestBuildSystem(t *testing.T) {
	if _, err := buildSystem("water", 500); err != nil {
		t.Fatal(err)
	}
	if _, err := buildSystem("nope", 500); err == nil {
		t.Fatal("expected error for unknown system")
	}
}

// chromeEvent mirrors the trace_event JSON schema the -trace flag emits.
// Args is loosely typed: span args are numeric, metadata args are strings.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	Args  map[string]any `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func TestRunWritesValidChromeTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline too heavy for -short")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")
	ledgerPath := filepath.Join(dir, "run.jsonl")
	if err := run("water", 600, 20, 20, 5, 2, "", tracePath, metricsPath, ledgerPath, false, false, ""); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}
	var steps, kernels []chromeEvent
	for _, e := range tr.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		switch {
		case e.Name == "step" && e.Cat == "sim":
			steps = append(steps, e)
		case e.Cat == "kernel" && !strings.HasSuffix(e.Name, "/setup"):
			kernels = append(kernels, e)
		}
	}
	if len(steps) != 20 {
		t.Fatalf("step spans = %d, want 20", len(steps))
	}
	if len(kernels) == 0 {
		t.Fatal("no kernel spans recorded")
	}
	// Every kernel invocation span must nest inside exactly one step span.
	for _, k := range kernels {
		hits := 0
		for _, s := range steps {
			if s.TID == k.TID && s.TS <= k.TS && k.TS+k.Dur <= s.TS+s.Dur {
				hits++
			}
		}
		if hits != 1 {
			t.Errorf("kernel span %q at ts=%v nests in %d step spans, want 1", k.Name, k.TS, hits)
		}
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(metrics)
	if !strings.Contains(text, "coupling_steps_total 20") {
		t.Errorf("metrics file missing step counter:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE coupling_step_seconds histogram") {
		t.Errorf("metrics file missing step-duration histogram:\n%s", text)
	}

	events, err := obs.ReadLedgerFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	sum := obs.SummarizeLedger(events)
	if sum.App != "mdsim/water" || len(sum.Steps) != 20 {
		t.Fatalf("ledger app=%q steps=%d, want mdsim/water with 20 steps", sum.App, len(sum.Steps))
	}
	if len(sum.Solves) != 1 || sum.Solves[0].Name != "schedule" {
		t.Fatalf("ledger solves = %+v", sum.Solves)
	}
}

func TestRunMonitoredLedgerSelfDescribes(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline too heavy for -short")
	}
	ledgerPath := filepath.Join(t.TempDir(), "run.jsonl")
	if err := run("water", 600, 20, 20, 5, 2, "", "", "", ledgerPath, true, false, ""); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadLedgerFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	// The monitored ledger carries its own predictions as plan events, and
	// a post-hoc runmon pass over the file scores the full run.
	profile := runmon.FromEvents(events)
	if profile == nil || len(profile.Streams) == 0 {
		t.Fatalf("no plan events in monitored ledger: %+v", profile)
	}
	s := runmon.Analyze(events, nil, runmon.Config{})
	if s.Step != 20 || !s.Ended {
		t.Fatalf("post-hoc snapshot = %+v", s)
	}
	if len(s.Streams) == 0 {
		t.Fatal("post-hoc analysis tracked no streams")
	}
}
