package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"insitu/internal/obs"
	"insitu/internal/schedd"
)

const goldenScenario = "../../internal/experiments/testdata/golden/scenario_water_ions_10pct.json"

func TestUsage(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Fatalf("no args: code = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown command: code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown command") {
		t.Fatalf("stderr missing unknown-command notice: %q", errb.String())
	}
	out.Reset()
	if code := run(context.Background(), []string{"help"}, &out, &errb); code != 0 {
		t.Fatalf("help: code = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "serve") || !strings.Contains(out.String(), "once") {
		t.Fatalf("help text missing commands: %q", out.String())
	}
}

func TestOnceSolvesAndWritesLedger(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "req.jsonl")
	var out, errb strings.Builder
	code := run(context.Background(), []string{
		"once", "-scenario", goldenScenario, "-explain", "-id", "req-once", "-ledger", ledger,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("once: code = %d, want 0 (stderr: %s)", code, errb.String())
	}
	var resp schedd.SolveResponse
	if err := json.Unmarshal([]byte(out.String()), &resp); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, out.String())
	}
	if resp.RequestID != "req-once" {
		t.Fatalf("RequestID = %q, want req-once", resp.RequestID)
	}
	if resp.Schema != schedd.SchemaVersion || len(resp.Schedules) == 0 || resp.Explain == nil {
		t.Fatalf("response incomplete: schema=%d schedules=%d explain=%v",
			resp.Schema, len(resp.Schedules), resp.Explain)
	}
	events, err := obs.ReadLedgerFile(ledger)
	if err != nil {
		t.Fatalf("reading ledger: %v", err)
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Type]++
		if e.Name != "req-once" {
			t.Fatalf("ledger event %s has Name %q, want req-once", e.Type, e.Name)
		}
	}
	if kinds["reqlog"] != 1 || kinds["solve"] != 1 || kinds["solveprog"] == 0 {
		t.Fatalf("ledger kinds = %v, want 1 reqlog, 1 solve, >0 solveprog", kinds)
	}
}

func TestOnceMissingScenario(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"once"}, &out, &errb); code != 2 {
		t.Fatalf("once without -scenario: code = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"once", "-scenario", "no-such-file.json"}, &out, &errb); code != 1 {
		t.Fatalf("once with bad path: code = %d, want 1", code)
	}
}

// TestServeAndClient boots the daemon on a loopback port, posts the golden
// scenario twice through the client subcommand, and checks the second answer
// is a cache hit, readiness flips on shutdown, and the server drains cleanly.
func TestServeAndClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan int, 1)
	var srvOut, srvErr strings.Builder
	go func() {
		done <- serve(ctx, ln, schedd.Config{}, &srvOut, &srvErr)
	}()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitFor(func() bool {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}, "daemon readiness")

	post := func(id string) schedd.SolveResponse {
		t.Helper()
		var out, errb strings.Builder
		code := cmdClient(ctx, []string{"-addr", addr, "-scenario", goldenScenario, "-id", id}, &out, &errb)
		if code != 0 {
			t.Fatalf("client: code = %d (stderr: %s)", code, errb.String())
		}
		var resp schedd.SolveResponse
		if err := json.Unmarshal([]byte(out.String()), &resp); err != nil {
			t.Fatalf("client response not JSON: %v\n%s", err, out.String())
		}
		return resp
	}
	first := post("cli-a")
	if first.CacheHit || first.RequestID != "cli-a" || len(first.Schedules) == 0 {
		t.Fatalf("first response wrong: hit=%v id=%q schedules=%d",
			first.CacheHit, first.RequestID, len(first.Schedules))
	}
	second := post("cli-b")
	if !second.CacheHit {
		t.Fatalf("second identical request not served from cache: %+v", second)
	}
	if fmt.Sprint(first.Schedules) != fmt.Sprint(second.Schedules) {
		t.Fatalf("cache hit changed the schedule:\n%v\n%v", first.Schedules, second.Schedules)
	}

	if code, body := get("/v1/requests"); code != http.StatusOK || !strings.Contains(body, "cli-a") {
		t.Fatalf("/v1/requests = %d %q, want 200 with cli-a", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "schedd_requests_total") {
		t.Fatalf("/metrics = %d, want 200 with schedd_requests_total (body: %.200s)", code, body)
	}

	cancel()
	waitFor(func() bool {
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("serve exited %d (stderr: %s)", code, srvErr.String())
			}
			return true
		default:
			return false
		}
	}, "daemon shutdown")
}
