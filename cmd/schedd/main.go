// Command schedd is the scheduling-as-a-service daemon: it accepts scenario
// JSON over HTTP, solves the in-situ analysis scheduling problem with the
// same core/milp stack the batch tools use, and answers with the schedule,
// solver telemetry, and (optionally) the decision-attribution summary.
//
// Usage:
//
//	schedd serve  [-addr host:port] [-workers n] [-max-inflight n]
//	              [-queue-timeout d] [-cache-entries n]
//	              [-ledger req.jsonl] [-ledger-max-bytes n]
//	schedd once   -scenario problem.json [-explain] [-workers n] [-id rid]
//	schedd client -scenario problem.json [-addr host:port] [-explain] [-id rid]
//
// serve runs the daemon: POST /v1/solve, GET /v1/requests,
// GET /v1/requests/{id}/solve.json, plus /metrics, /healthz, /readyz and
// /debug/pprof from the shared obs mux. It shuts down gracefully on
// SIGINT/SIGTERM, flipping /readyz to draining first. once runs a single
// request through the identical service pipeline — request IDs, cache keys,
// RED metrics, reqlog ledger — without binding a socket, and prints the same
// response JSON the daemon would send. client posts a scenario file to a
// running daemon.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"insitu/internal/obs"
	"insitu/internal/scenario"
	"insitu/internal/schedd"
)

const usageText = `usage: schedd <command> [flags]

commands:
  serve   run the scheduling service daemon
  once    run one request through the service pipeline and print the response
  client  post a scenario file to a running daemon

run 'schedd <command> -h' for the flags of each command.
`

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches to a subcommand and returns the process exit code: 0 ok,
// 1 failure, 2 usage error.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	switch args[0] {
	case "serve":
		return cmdServe(ctx, args[1:], stdout, stderr)
	case "once":
		return cmdOnce(ctx, args[1:], stdout, stderr)
	case "client":
		return cmdClient(ctx, args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usageText)
		return 0
	}
	fmt.Fprintf(stderr, "schedd: unknown command %q\n%s", args[0], usageText)
	return 2
}

// serviceFlags are the schedd.Config knobs shared by serve and once.
type serviceFlags struct {
	workers       *int
	maxInFlight   *int
	queueTimeout  *time.Duration
	cacheEntries  *int
	ledgerPath    *string
	ledgerMaxSize *int64
}

func addServiceFlags(fs *flag.FlagSet) *serviceFlags {
	return &serviceFlags{
		workers:       fs.Int("workers", 0, "branch-and-bound workers per solve (0 = serial)"),
		maxInFlight:   fs.Int("max-inflight", 0, "concurrent solver slots (0 = default 4)"),
		queueTimeout:  fs.Duration("queue-timeout", 0, "max wait for a solver slot (0 = default 5s)"),
		cacheEntries:  fs.Int("cache-entries", 0, "solution cache capacity (0 = default 128)"),
		ledgerPath:    fs.String("ledger", "", "write the reqlog access ledger (JSONL) to this file"),
		ledgerMaxSize: fs.Int64("ledger-max-bytes", 0, "rotate the ledger past this size (0 = unbounded)"),
	}
}

// open builds the schedd.Config, opening the ledger if one was requested.
// The returned closer is non-nil exactly when a ledger was opened.
func (f *serviceFlags) open() (schedd.Config, *obs.EventLog, error) {
	cfg := schedd.Config{
		Workers:      *f.workers,
		MaxInFlight:  *f.maxInFlight,
		QueueTimeout: *f.queueTimeout,
		CacheEntries: *f.cacheEntries,
	}
	if *f.ledgerPath == "" {
		return cfg, nil, nil
	}
	l, err := obs.OpenEventLogCapped(*f.ledgerPath, *f.ledgerMaxSize)
	if err != nil {
		return cfg, nil, fmt.Errorf("opening ledger: %w", err)
	}
	cfg.Ledger = l
	return cfg, l, nil
}

func cmdServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedd serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8070", "listen address")
	svc := addServiceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg, ledger, err := svc.open()
	if err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	if ledger != nil {
		defer ledger.Close()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	return serve(ctx, ln, cfg, stdout, stderr)
}

// serve runs the daemon on ln until ctx is canceled. Shutdown is graceful:
// /readyz flips to draining the moment the signal lands, then in-flight
// requests finish before ServeUntil returns.
func serve(ctx context.Context, ln net.Listener, cfg schedd.Config, stdout, stderr io.Writer) int {
	s := schedd.New(cfg)
	go func() {
		<-ctx.Done()
		s.SetReady(false)
	}()
	fmt.Fprintf(stdout, "schedd: serving http://%s/v1/solve (also /v1/requests, /metrics, /healthz, /readyz)\n", ln.Addr())
	if err := obs.ServeUntil(ctx, ln, s.Handler()); err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	return 0
}

// loadRequest reads the -scenario file ("-" for stdin) into a SolveRequest.
func loadRequest(path string, explain bool, stdin io.Reader) (schedd.SolveRequest, error) {
	var (
		p   scenario.Problem
		err error
	)
	if path == "-" {
		p, err = scenario.Parse(stdin)
	} else {
		p, err = scenario.Load(path)
	}
	if err != nil {
		return schedd.SolveRequest{}, err
	}
	return schedd.SolveRequest{Scenario: p, Explain: explain}, nil
}

func cmdOnce(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedd once", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("scenario", "", "scenario JSON file to solve ('-' for stdin; required)")
	explain := fs.Bool("explain", false, "attach the decision-attribution summary")
	id := fs.String("id", "", "request ID (default: minted)")
	svc := addServiceFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *path == "" {
		fmt.Fprintln(stderr, "schedd: once needs -scenario problem.json")
		fs.Usage()
		return 2
	}
	req, err := loadRequest(*path, *explain, os.Stdin)
	if err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	cfg, ledger, err := svc.open()
	if err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	s := schedd.New(cfg)
	resp, code := s.Process(ctx, *id, req)
	if ledger != nil {
		if err := ledger.Close(); err != nil {
			fmt.Fprintf(stderr, "schedd: closing ledger: %v\n", err)
			return 1
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	if code != http.StatusOK {
		return 1
	}
	return 0
}

func cmdClient(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedd client", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8070", "daemon address")
	path := fs.String("scenario", "", "scenario JSON file to post ('-' for stdin; required)")
	explain := fs.Bool("explain", false, "ask for the decision-attribution summary")
	id := fs.String("id", "", "request ID header (default: server-minted)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *path == "" {
		fmt.Fprintln(stderr, "schedd: client needs -scenario problem.json")
		fs.Usage()
		return 2
	}
	req, err := loadRequest(*path, *explain, os.Stdin)
	if err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+*addr+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	hreq.Header.Set("Content-Type", "application/json")
	if *id != "" {
		hreq.Header.Set(obs.RequestIDHeader, *id)
	}
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	defer hresp.Body.Close()
	if _, err := io.Copy(stdout, hresp.Body); err != nil {
		fmt.Fprintf(stderr, "schedd: %v\n", err)
		return 1
	}
	if hresp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "schedd: daemon answered %s\n", hresp.Status)
		return 1
	}
	return 0
}
