package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"insitu/internal/core"
	"insitu/internal/obs"
	"insitu/internal/runmon"
)

func writeProblem(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadProblem(t *testing.T) {
	path := writeProblem(t, `{
	  "resources": {
	    "steps": 1000,
	    "time_threshold_sec": 64.69,
	    "mem_threshold_bytes": 1073741824,
	    "bandwidth_bytes_per_sec": 4500000000
	  },
	  "analyses": [
	    {"name": "A1", "ct_sec": 0.065, "ot_sec": 0.005, "fm_bytes": 1024,
	     "min_interval": 100, "weight": 2},
	    {"name": "A4", "ct_sec": 25.85, "im_bytes": 64, "om_bytes": 4096,
	     "min_interval": 100}
	  ]
	}`)
	specs, res, err := loadProblem(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].Name != "A1" || specs[0].CT != 0.065 || specs[0].Weight != 2 || specs[0].FM != 1024 {
		t.Fatalf("spec A1 = %+v", specs[0])
	}
	if specs[1].IM != 64 || specs[1].OM != 4096 || specs[1].MinInterval != 100 {
		t.Fatalf("spec A4 = %+v", specs[1])
	}
	if res.Steps != 1000 || res.TimeThreshold != 64.69 || res.MemThreshold != 1<<30 || res.Bandwidth != 4.5e9 {
		t.Fatalf("resources = %+v", res)
	}
	// The loaded problem must actually solve.
	rec, err := core.Solve(specs, res, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schedule("A1").Count != 10 {
		t.Fatalf("A1 count = %d", rec.Schedule("A1").Count)
	}
}

func TestWriteExplainReport(t *testing.T) {
	path := writeProblem(t, `{
	  "resources": {"steps": 1000, "time_threshold_sec": 5},
	  "analyses": [
	    {"name": "light", "ct_sec": 0.065, "ot_sec": 0.005, "min_interval": 100},
	    {"name": "heavy", "ct_sec": 30, "min_interval": 100}
	  ]
	}`)
	specs, res, err := loadProblem(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := writeExplainReport(&buf, specs, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== attribution ==", "light", "heavy", "binding=", "infeasible"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain report missing %q:\n%s", want, out)
		}
	}
}

func TestLoadProblemErrors(t *testing.T) {
	if _, _, err := loadProblem(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected read error")
	}
	path := writeProblem(t, `{not json`)
	if _, _, err := loadProblem(path); err == nil {
		t.Fatal("expected parse error")
	}
}

// TestRunWorkersFlag runs the CLI end to end at widths 1 and 8: both must
// succeed and emit the identical JSON recommendation (modulo measured solve
// times, which are stripped before comparing).
func TestRunWorkersFlag(t *testing.T) {
	path := writeProblem(t, `{
	  "resources": {"steps": 1000, "time_threshold_sec": 64.69,
	    "mem_threshold_bytes": 12884901888},
	  "analyses": [
	    {"name": "A1", "ct_sec": 0.065, "ot_sec": 0.005, "min_interval": 100},
	    {"name": "A4", "ct_sec": 25.85, "ot_sec": 0.05, "min_interval": 100}
	  ]
	}`)
	decode := func(args ...string) map[string]any {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run(append(args, path), &stdout, &stderr); code != 0 {
			t.Fatalf("run(%v) exit %d, stderr: %s", args, code, stderr.String())
		}
		var m map[string]any
		if err := json.Unmarshal(stdout.Bytes(), &m); err != nil {
			t.Fatalf("run(%v) emitted invalid JSON: %v", args, err)
		}
		// Wall-clock and search-effort fields move with the pool width; the
		// schedule, objective, and bound must not.
		delete(m, "SolveTime")
		delete(m, "Nodes")
		if st, ok := m["Stats"].(map[string]any); ok {
			for _, k := range []string{"SolveTime", "Workers", "WarmSolves", "ColdSolves",
				"PresolveTightened", "Nodes", "Relaxations", "Pivots", "Incumbents"} {
				delete(st, k)
			}
		}
		return m
	}
	serial := decode("-json", "-workers", "1")
	par := decode("-json", "-workers", "8")
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("-workers 1 and 8 disagree:\nserial: %v\nparallel: %v", serial, par)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.json")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
}

func TestRunMonitorFlag(t *testing.T) {
	problem := writeProblem(t, `{
	  "resources": {
	    "steps": 40,
	    "time_threshold_sec": 1.0,
	    "mem_threshold_bytes": 1073741824,
	    "bandwidth_bytes_per_sec": 4500000000
	  },
	  "analyses": [
	    {"name": "rdf", "ct_sec": 0.004, "ot_sec": 0.001, "min_interval": 2}
	  ]
	}`)

	// Synthesize the executed run: the rdf analysis drifts to 3x its
	// profiled cost halfway through.
	ledgerPath := filepath.Join(t.TempDir(), "run.jsonl")
	srun := runmon.SynthRun{
		Name: "cli", App: "mdsim/cli", Steps: 40,
		SimSec: 0.010, ThresholdSec: 1.0, NoiseFrac: 0.02,
		Kind: runmon.PerturbAnalysisCT, ChangeStep: 20, Factor: 3,
		Kernels: []runmon.SynthKernel{
			{Name: "rdf", AnalyzeSec: 0.004, OutputSec: 0.001, Every: 2, OutputEvery: 4},
		},
	}
	led, err := obs.OpenEventLog(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range srun.Events(7) {
		led.Append(e)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-monitor", ledgerPath, problem}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"run monitor", "rdf/analyze", "DRIFT@", "alerts:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("monitor report missing %q:\n%s", want, out)
		}
	}
}
