package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"insitu/internal/core"
)

func writeProblem(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadProblem(t *testing.T) {
	path := writeProblem(t, `{
	  "resources": {
	    "steps": 1000,
	    "time_threshold_sec": 64.69,
	    "mem_threshold_bytes": 1073741824,
	    "bandwidth_bytes_per_sec": 4500000000
	  },
	  "analyses": [
	    {"name": "A1", "ct_sec": 0.065, "ot_sec": 0.005, "fm_bytes": 1024,
	     "min_interval": 100, "weight": 2},
	    {"name": "A4", "ct_sec": 25.85, "im_bytes": 64, "om_bytes": 4096,
	     "min_interval": 100}
	  ]
	}`)
	specs, res, err := loadProblem(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[0].Name != "A1" || specs[0].CT != 0.065 || specs[0].Weight != 2 || specs[0].FM != 1024 {
		t.Fatalf("spec A1 = %+v", specs[0])
	}
	if specs[1].IM != 64 || specs[1].OM != 4096 || specs[1].MinInterval != 100 {
		t.Fatalf("spec A4 = %+v", specs[1])
	}
	if res.Steps != 1000 || res.TimeThreshold != 64.69 || res.MemThreshold != 1<<30 || res.Bandwidth != 4.5e9 {
		t.Fatalf("resources = %+v", res)
	}
	// The loaded problem must actually solve.
	rec, err := core.Solve(specs, res, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schedule("A1").Count != 10 {
		t.Fatalf("A1 count = %d", rec.Schedule("A1").Count)
	}
}

func TestWriteExplainReport(t *testing.T) {
	path := writeProblem(t, `{
	  "resources": {"steps": 1000, "time_threshold_sec": 5},
	  "analyses": [
	    {"name": "light", "ct_sec": 0.065, "ot_sec": 0.005, "min_interval": 100},
	    {"name": "heavy", "ct_sec": 30, "min_interval": 100}
	  ]
	}`)
	specs, res, err := loadProblem(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := writeExplainReport(&buf, specs, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== attribution ==", "light", "heavy", "binding=", "infeasible"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain report missing %q:\n%s", want, out)
		}
	}
}

func TestLoadProblemErrors(t *testing.T) {
	if _, _, err := loadProblem(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected read error")
	}
	path := writeProblem(t, `{not json`)
	if _, _, err := loadProblem(path); err == nil {
		t.Fatal("expected parse error")
	}
}
