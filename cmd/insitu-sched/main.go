// Command insitu-sched solves the in-situ analysis scheduling problem for a
// JSON problem description and prints the recommended schedule.
//
// Usage:
//
//	insitu-sched [-full] [-coupling] [-json] problem.json
//
// The input file holds the Table-1 parameters of each analysis plus the
// resource envelope:
//
//	{
//	  "resources": {
//	    "steps": 1000,
//	    "time_threshold_sec": 64.7,
//	    "mem_threshold_bytes": 12884901888,
//	    "bandwidth_bytes_per_sec": 4536000000
//	  },
//	  "analyses": [
//	    {"name": "A1", "ct_sec": 0.065, "ot_sec": 0.005,
//	     "fm_bytes": 67108864, "min_interval": 100, "weight": 1}
//	  ]
//	}
//
// -full selects the time-indexed formulation (small step counts only),
// -coupling prints Figure-1 style coupling strings, and -json emits the
// recommendation as JSON instead of text.
//
// -trace records the branch-and-bound search as Chrome trace JSON: one span
// for the solve with one instant event per explored node (carrying the node
// bound and incumbent) plus bound/incumbent counter tracks. -metrics writes
// solver counters (nodes, relaxations, simplex pivots, incumbents) in
// Prometheus text format, or JSON when the path ends in .json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"insitu/internal/core"
	"insitu/internal/milp"
	"insitu/internal/obs"
)

type inputAnalysis struct {
	Name        string  `json:"name"`
	FTSec       float64 `json:"ft_sec"`
	ITSec       float64 `json:"it_sec"`
	CTSec       float64 `json:"ct_sec"`
	OTSec       float64 `json:"ot_sec"`
	FMBytes     int64   `json:"fm_bytes"`
	IMBytes     int64   `json:"im_bytes"`
	CMBytes     int64   `json:"cm_bytes"`
	OMBytes     int64   `json:"om_bytes"`
	Weight      float64 `json:"weight"`
	MinInterval int     `json:"min_interval"`
}

type inputResources struct {
	Steps     int     `json:"steps"`
	TimeSec   float64 `json:"time_threshold_sec"`
	MemBytes  int64   `json:"mem_threshold_bytes"`
	Bandwidth float64 `json:"bandwidth_bytes_per_sec"`
}

type input struct {
	Resources inputResources  `json:"resources"`
	Analyses  []inputAnalysis `json:"analyses"`
}

func main() {
	full := flag.Bool("full", false, "use the time-indexed formulation (equations 2-9 verbatim; small step counts only)")
	coupling := flag.Bool("coupling", false, "print Figure-1 style coupling strings")
	asJSON := flag.Bool("json", false, "emit the recommendation as JSON")
	exportLP := flag.String("export-lp", "", "write the model in CPLEX LP format to this file (for cross-checking with external solvers)")
	sensitivity := flag.Bool("sensitivity", false, "report the threshold at which each analysis gains one more step")
	tracePath := flag.String("trace", "", "write the branch-and-bound search as Chrome trace JSON to this file")
	metricsPath := flag.String("metrics", "", "write solver metrics to this file (Prometheus text, or JSON with a .json suffix)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: insitu-sched [-full] [-coupling] [-json] [-export-lp model.lp] [-sensitivity] [-trace trace.json] [-metrics metrics.txt] problem.json")
		os.Exit(2)
	}

	specs, res, err := loadProblem(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *exportLP != "" {
		f, err := os.Create(*exportLP)
		if err != nil {
			fatal(err)
		}
		exporter := core.ExportLP
		if *full {
			exporter = func(w io.Writer, s []core.AnalysisSpec, r core.Resources, _ core.SolveOptions) error {
				return core.ExportFullLP(w, s, r)
			}
		}
		if err := exporter(f, specs, res, core.SolveOptions{}); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *exportLP)
	}

	solve := core.Solve
	if *full {
		solve = core.SolveFull
	}
	var tracer *obs.Tracer
	opts := core.SolveOptions{}
	var solveSpan *obs.Span
	if *tracePath != "" {
		tracer = obs.NewTracer()
		solveSpan = tracer.Begin("solve", "solver")
		opts.Observer = func(ev milp.NodeEvent) {
			args := map[string]float64{"node": float64(ev.Node), "depth": float64(ev.Depth), "bound": ev.Bound}
			if ev.HasInc {
				args["incumbent"] = ev.Incumbent
				tracer.Counter("incumbent", ev.Incumbent)
			}
			tracer.Instant("node/"+ev.Action, "solver", args)
			tracer.Counter("bound", ev.Bound)
		}
	}
	rec, err := solve(specs, res, opts)
	if err != nil {
		fatal(err)
	}
	solveSpan.End()
	if *tracePath != "" {
		if err := obs.WriteTraceFile(*tracePath, tracer); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote trace (%d events) to %s\n", tracer.Len(), *tracePath)
	}
	if *metricsPath != "" {
		reg := obs.NewRegistry()
		st := rec.Stats
		reg.Counter("solver_nodes_total", nil).Add(float64(st.Nodes))
		reg.Counter("solver_relaxations_total", nil).Add(float64(st.Relaxations))
		reg.Counter("solver_pivots_total", nil).Add(float64(st.Pivots))
		reg.Counter("solver_incumbents_total", nil).Add(float64(len(st.Incumbents)))
		reg.Gauge("solver_best_bound", nil).Set(st.BestBound)
		reg.Gauge("solver_objective", nil).Set(rec.Objective)
		reg.Counter("solver_solve_seconds_total", nil).Add(st.SolveTime.Seconds())
		if err := obs.WriteMetricsFile(*metricsPath, reg); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics to %s\n", *metricsPath)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(rec.String())
	fmt.Printf("threshold utilization: %.1f%%\n", rec.Utilization(res)*100)
	if *sensitivity {
		out, err := core.AnalyzeThresholdSensitivity(specs, res, core.SolveOptions{}, core.SensitivityOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nthreshold sensitivity (smallest budget buying one more step):")
		for _, s := range out {
			if math.IsInf(s.NextThreshold, 1) {
				fmt.Printf("  %-24s count=%-4d saturated (interval bound)\n", s.Name, s.CurrentCount)
				continue
			}
			fmt.Printf("  %-24s count=%-4d next at %.3fs (+%.3fs)\n",
				s.Name, s.CurrentCount, s.NextThreshold, s.NextThreshold-res.TimeThreshold)
		}
	}
	if *coupling {
		fmt.Printf("\nschedule timeline ('.' sim, 'A' analysis, 'O' analysis+output):\n%s",
			rec.GanttString(res, 100))
		for _, s := range rec.Schedules {
			if !s.Enabled {
				continue
			}
			fmt.Printf("\n%s:\n%s\n", s.Name, core.CouplingString(res, s, 0))
		}
	}
}

// loadProblem parses the JSON problem description into solver inputs.
func loadProblem(path string) ([]core.AnalysisSpec, core.Resources, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, core.Resources{}, err
	}
	var in input
	if err := json.Unmarshal(raw, &in); err != nil {
		return nil, core.Resources{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	specs := make([]core.AnalysisSpec, len(in.Analyses))
	for i, a := range in.Analyses {
		specs[i] = core.AnalysisSpec{
			Name: a.Name,
			FT:   a.FTSec, IT: a.ITSec, CT: a.CTSec, OT: a.OTSec,
			FM: a.FMBytes, IM: a.IMBytes, CM: a.CMBytes, OM: a.OMBytes,
			Weight:      a.Weight,
			MinInterval: a.MinInterval,
		}
	}
	res := core.Resources{
		Steps:         in.Resources.Steps,
		TimeThreshold: in.Resources.TimeSec,
		MemThreshold:  in.Resources.MemBytes,
		Bandwidth:     in.Resources.Bandwidth,
	}
	return specs, res, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insitu-sched:", err)
	os.Exit(1)
}
