// Command insitu-sched solves the in-situ analysis scheduling problem for a
// JSON problem description and prints the recommended schedule.
//
// Usage:
//
//	insitu-sched [-full] [-coupling] [-json] [-workers n] problem.json
//
// The input file holds the Table-1 parameters of each analysis plus the
// resource envelope:
//
//	{
//	  "resources": {
//	    "steps": 1000,
//	    "time_threshold_sec": 64.7,
//	    "mem_threshold_bytes": 12884901888,
//	    "bandwidth_bytes_per_sec": 4536000000
//	  },
//	  "analyses": [
//	    {"name": "A1", "ct_sec": 0.065, "ot_sec": 0.005,
//	     "fm_bytes": 67108864, "min_interval": 100, "weight": 1}
//	  ]
//	}
//
// -full selects the time-indexed formulation (small step counts only),
// -coupling prints Figure-1 style coupling strings, and -json emits the
// recommendation as JSON instead of text.
//
// -trace records the branch-and-bound search as Chrome trace JSON: one span
// for the solve with one instant event per explored node (carrying the node
// bound and incumbent) plus bound/incumbent counter tracks. -metrics writes
// solver counters (nodes, relaxations, simplex pivots, incumbents) in
// Prometheus text format, or JSON when the path ends in .json.
//
// -flight records the solver's flight-recorder stream — per-wave incumbent,
// bound, gap, and prune-taxonomy samples as schema-versioned solveprog
// events — to a JSONL ledger file; benchobs flightcheck validates it and
// benchobs summarize renders the gap-closure timeline.
//
// -workers sets the branch-and-bound pool width (0 = all CPUs). The default
// of 1 keeps the legacy serial search; any width returns the same objective
// and bound.
//
// -monitor scores an executed run ledger (JSONL) against the solved schedule
// and prints the drift report. Adding -replan replays the same ledger through
// a rolling-horizon replanner and prints the reschedules it would have
// adopted at each drift or budget alert — an offline what-if for runs that
// executed the up-front schedule statically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"insitu/internal/core"
	"insitu/internal/explain"
	"insitu/internal/milp"
	"insitu/internal/obs"
	"insitu/internal/replan"
	"insitu/internal/runmon"
	"insitu/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code: 0 ok, 1 failure,
// 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("insitu-sched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "use the time-indexed formulation (equations 2-9 verbatim; small step counts only)")
	coupling := fs.Bool("coupling", false, "print Figure-1 style coupling strings")
	asJSON := fs.Bool("json", false, "emit the recommendation as JSON")
	exportLP := fs.String("export-lp", "", "write the model in CPLEX LP format to this file (for cross-checking with external solvers)")
	sensitivity := fs.Bool("sensitivity", false, "report the threshold at which each analysis gains one more step")
	explainFlag := fs.Bool("explain", false, "print the schedule-explainability report (attribution, duals, search stats; uses the compact model)")
	tracePath := fs.String("trace", "", "write the branch-and-bound search as Chrome trace JSON to this file")
	metricsPath := fs.String("metrics", "", "write solver metrics to this file (Prometheus text, or JSON with a .json suffix)")
	workers := fs.Int("workers", 1, "branch-and-bound worker count (0 = all CPUs, 1 = serial)")
	flightPath := fs.String("flight", "", "record the solver's progress stream (solveprog events) to this JSONL ledger file")
	monitorPath := fs.String("monitor", "", "score an executed run ledger (JSONL) against the solved schedule and print the drift report")
	replanFlag := fs.Bool("replan", false, "with -monitor: replay the ledger through a rolling-horizon replanner and print the reschedules it would have made (advisory; nothing is re-executed)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: insitu-sched [-full] [-coupling] [-json] [-explain] [-export-lp model.lp] [-sensitivity] [-trace trace.json] [-metrics metrics.txt] [-flight flight.jsonl] [-workers n] [-monitor run.jsonl] [-replan] problem.json")
		return 2
	}
	if *replanFlag && *monitorPath == "" {
		fmt.Fprintln(stderr, "insitu-sched: -replan needs -monitor run.jsonl (the executed ledger to replay)")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "insitu-sched:", err)
		return 1
	}

	specs, res, err := loadProblem(fs.Arg(0))
	if err != nil {
		return fail(err)
	}

	if *exportLP != "" {
		f, err := os.Create(*exportLP)
		if err != nil {
			return fail(err)
		}
		exporter := core.ExportLP
		if *full {
			exporter = func(w io.Writer, s []core.AnalysisSpec, r core.Resources, _ core.SolveOptions) error {
				return core.ExportFullLP(w, s, r)
			}
		}
		if err := exporter(f, specs, res, core.SolveOptions{}); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "wrote %s\n", *exportLP)
	}

	solve := core.Solve
	if *full {
		solve = core.SolveFull
	}
	var tracer *obs.Tracer
	opts := core.SolveOptions{Workers: milp.AutoWorkers(*workers)}
	var flight *obs.FlightRecorder
	if *flightPath != "" {
		flight = obs.NewFlightRecorder(0)
		flight.SetName("solve")
		opts.Flight = flight
	}
	var solveSpan *obs.Span
	if *tracePath != "" {
		tracer = obs.NewTracer()
		solveSpan = tracer.Begin("solve", "solver")
		opts.Observer = func(ev milp.NodeEvent) {
			args := map[string]float64{"node": float64(ev.Node), "depth": float64(ev.Depth), "bound": ev.Bound}
			if ev.HasInc {
				args["incumbent"] = ev.Incumbent
				tracer.Counter("incumbent", ev.Incumbent)
			}
			tracer.Instant("node/"+ev.Action, "solver", args)
			tracer.Counter("bound", ev.Bound)
		}
	}
	rec, err := solve(specs, res, opts)
	if err != nil {
		return fail(err)
	}
	solveSpan.End()
	if flight != nil {
		l, err := obs.OpenEventLog(*flightPath)
		if err != nil {
			return fail(err)
		}
		flight.AppendLedger(l, "")
		if err := l.Close(); err != nil {
			return fail(err)
		}
		recs := flight.Snapshot()
		line := fmt.Sprintf("wrote flight stream (%d events) to %s", len(recs), *flightPath)
		if gap, status, ok := obs.FinalGap(recs); ok {
			line += fmt.Sprintf(" — %s, final gap %.4g", status, gap)
		}
		fmt.Fprintln(stderr, line)
	}
	if *tracePath != "" {
		if err := obs.WriteTraceFile(*tracePath, tracer); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "wrote trace (%d events) to %s\n", tracer.Len(), *tracePath)
	}
	if *metricsPath != "" {
		reg := obs.NewRegistry()
		st := rec.Stats
		reg.Counter("solver_nodes_total", nil).Add(float64(st.Nodes))
		reg.Counter("solver_relaxations_total", nil).Add(float64(st.Relaxations))
		reg.Counter("solver_pivots_total", nil).Add(float64(st.Pivots))
		reg.Counter("solver_incumbents_total", nil).Add(float64(len(st.Incumbents)))
		reg.Gauge("solver_best_bound", nil).Set(st.BestBound)
		reg.Gauge("solver_objective", nil).Set(rec.Objective)
		reg.Counter("solver_solve_seconds_total", nil).Add(st.SolveTime.Seconds())
		if err := obs.WriteMetricsFile(*metricsPath, reg); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "wrote metrics to %s\n", *metricsPath)
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			return fail(err)
		}
		return 0
	}
	fmt.Fprint(stdout, rec.String())
	fmt.Fprintf(stdout, "threshold utilization: %.1f%%\n", rec.Utilization(res)*100)
	if *sensitivity {
		out, err := core.AnalyzeThresholdSensitivity(specs, res,
			core.SolveOptions{Workers: opts.Workers},
			core.SensitivityOptions{Workers: opts.Workers})
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "\nthreshold sensitivity (smallest budget buying one more step):")
		for _, s := range out {
			if math.IsInf(s.NextThreshold, 1) {
				fmt.Fprintf(stdout, "  %-24s count=%-4d saturated (interval bound)\n", s.Name, s.CurrentCount)
				continue
			}
			fmt.Fprintf(stdout, "  %-24s count=%-4d next at %.3fs (+%.3fs)\n",
				s.Name, s.CurrentCount, s.NextThreshold, s.NextThreshold-res.TimeThreshold)
		}
	}
	if *coupling {
		fmt.Fprintf(stdout, "\nschedule timeline ('.' sim, 'A' analysis, 'O' analysis+output):\n%s",
			rec.GanttString(res, 100))
		for _, s := range rec.Schedules {
			if !s.Enabled {
				continue
			}
			fmt.Fprintf(stdout, "\n%s:\n%s\n", s.Name, core.CouplingString(res, s, 0))
		}
	}
	if *explainFlag {
		fmt.Fprintln(stdout)
		if err := writeExplainReport(stdout, specs, res); err != nil {
			return fail(err)
		}
	}
	if *monitorPath != "" {
		fmt.Fprintln(stdout)
		if err := writeMonitorReport(stdout, *monitorPath, specs, res, rec); err != nil {
			return fail(err)
		}
		if *replanFlag {
			fmt.Fprintln(stdout)
			if err := writeReplanAdvisory(stdout, *monitorPath, specs, res, rec, *workers); err != nil {
				return fail(err)
			}
		}
	}
	return 0
}

// writeReplanAdvisory replays the executed ledger through a live monitor plus
// a rolling-horizon replanner and prints the reschedule decisions the
// replanner would have made at each drift or budget alert — an offline
// what-if for runs that executed statically. Replan events already present in
// the ledger are dropped from the replay, so the advisory timeline belongs to
// the advisory replanner alone.
func writeReplanAdvisory(w io.Writer, path string, specs []core.AnalysisSpec, res core.Resources, rec *core.Recommendation, workers int) error {
	events, err := obs.ReadLedgerFile(path)
	if err != nil {
		return err
	}
	profile := runmon.FromPlan(specs, rec, res, 0)
	if ledgerProfile := runmon.FromEvents(events); ledgerProfile != nil {
		profile = ledgerProfile
	}
	mon := runmon.NewMonitor(profile, runmon.Config{})
	rp := replan.New(mon, specs, res, rec, profile.SimSec, replan.Config{Workers: workers})
	for _, e := range events {
		if e.Type == obs.LedgerReplan {
			continue
		}
		mon.Observe(e)
		if e.Type == obs.LedgerStep {
			rp.Decide(e.Step)
		}
	}
	recs := rp.Records()
	fmt.Fprintf(w, "replan advisory (%s): %d decision(s)\n", path, len(recs))
	if len(recs) == 0 {
		fmt.Fprintln(w, "  no drift or budget alerts fired; the up-front schedule held")
		return nil
	}
	for _, r := range recs {
		if r.Adopted {
			fmt.Fprintf(w, "  step %-5d [%s] %s/%s: value %.2f -> %.2f, cost %.3fs -> %.3fs of %.3fs budget\n",
				r.Step, r.Reason, r.Trigger, r.Stream, r.OldValue, r.NewValue,
				r.OldCostSec, r.NewCostSec, r.BudgetSec)
		} else {
			fmt.Fprintf(w, "  step %-5d [%s] %s/%s: kept incumbent (value %.2f, budget %.3fs)\n",
				r.Step, r.Reason, r.Trigger, r.Stream, r.OldValue, r.BudgetSec)
		}
	}
	return nil
}

// writeMonitorReport replays an executed run's ledger against the schedule
// just solved and prints the post-hoc drift report: did the run's observed
// step, analysis, and output durations stay near the costs the schedule was
// solved from? Plan events embedded in the ledger refine the profile (the
// probed simulation rate, for instance, which the problem JSON lacks).
func writeMonitorReport(w io.Writer, path string, specs []core.AnalysisSpec, res core.Resources, rec *core.Recommendation) error {
	events, err := obs.ReadLedgerFile(path)
	if err != nil {
		return err
	}
	profile := runmon.FromPlan(specs, rec, res, 0)
	if ledgerProfile := runmon.FromEvents(events); ledgerProfile != nil {
		profile = ledgerProfile
	}
	s := runmon.Analyze(events, profile, runmon.Config{})
	fmt.Fprintf(w, "run monitor (%s):\n", path)
	return s.WriteText(w)
}

// loadProblem parses the JSON problem description into solver inputs; the
// format lives in internal/scenario, shared with schedexplain.
func loadProblem(path string) ([]core.AnalysisSpec, core.Resources, error) {
	return scenario.LoadSpecs(path)
}

// writeExplainReport renders the -explain attribution report.
func writeExplainReport(w io.Writer, specs []core.AnalysisSpec, res core.Resources) error {
	r, err := explain.Build(specs, res, explain.Options{})
	if err != nil {
		return err
	}
	return r.WriteText(w)
}
