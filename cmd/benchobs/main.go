// Command benchobs is the performance observatory's front door: it runs the
// canonical benchmark suites, compares runs against the committed baselines,
// serves live metrics and profiles over HTTP, and reconstructs per-step
// timelines from JSONL run ledgers.
//
// Usage:
//
//	benchobs run [-quick] [-suite name] [-out dir]
//	benchobs compare -current dir [-baseline dir] [-slack f] [-json file]
//	benchobs check [-dir dir] [-min-workers n] [-min-count n] [-max-fallback-ratio f]
//	benchobs serve [-addr host:port]
//	benchobs summarize -ledger run.jsonl
//	benchobs flightcheck -ledger run.jsonl
//	benchobs runs [-dir dir] [-filter s] [-json]
//
// run executes the solver, pipeline, and iosim suites and writes one
// BENCH_<suite>.json per suite (the files committed at the repo root are its
// output). compare diffs a run against a baseline using the per-metric
// relative thresholds recorded in the baseline file and exits 1 when any
// gated metric regresses. check audits a solver suite file's recorded
// metadata: every workload carrying a solver_workers metric must have run at
// least -min-workers wide, at least -min-count such workloads must exist,
// and workloads recording warm_solves/fallback_colds must keep their warm
// fallback fraction at or below -max-fallback-ratio — so CI fails if the
// suite silently falls back to the serial search or the warm re-solves stop
// sticking. serve
// loops the instrumented pipeline workload forever and exposes the live
// registry at /metrics (Prometheus text), /metrics.json, and the process at
// /debug/pprof/; it also runs one flight-recorded paper solve at startup so
// /solve.json and /solve show a real gap-closure curve. On SIGINT/SIGTERM it
// shuts down gracefully, draining in-flight scrapes and the workload loop
// before exiting. summarize replays a run ledger into a per-step activity
// table (including solver gap timelines when the ledger carries solveprog
// events). flightcheck validates every solver flight stream in a ledger —
// monotone invariants via obs.CheckSolveProg, plus each stream must close its
// gap — and exits 1 on any violation or when no stream exists, making it a CI
// gate for -flight output. runs scans a directory of *.jsonl ledgers into the
// cross-run registry and prints one row per run (or JSON with -json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"insitu/internal/obs"
	"insitu/internal/perfbench"
)

const usageText = `usage: benchobs <command> [flags]

commands:
  run        run the canonical suites and write BENCH_<suite>.json files
  compare    diff a run against baseline files; exit 1 on any regression
  check      audit a solver suite's recorded pool width; exit 1 if serial
  serve      expose live /metrics, /solve, and /debug/pprof over a looping workload
  summarize  reconstruct per-step timelines from a JSONL run ledger
  flightcheck  validate the solver flight streams in a ledger; exit 1 on violation
  runs       scan a directory of run ledgers into the cross-run registry

run 'benchobs <command> -h' for the flags of each command.
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches to a subcommand and returns the process exit code: 0 ok,
// 1 failure (including benchmark regressions), 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "check":
		return cmdCheck(args[1:], stdout, stderr)
	case "serve":
		return cmdServe(args[1:], stdout, stderr)
	case "summarize":
		return cmdSummarize(args[1:], stdout, stderr)
	case "flightcheck":
		return cmdFlightCheck(args[1:], stdout, stderr)
	case "runs":
		return cmdRuns(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usageText)
		return 0
	}
	fmt.Fprintf(stderr, "benchobs: unknown command %q\n%s", args[0], usageText)
	return 2
}

// suiteList resolves the -suite flag: empty means every canonical suite.
func suiteList(only string) ([]string, error) {
	if only == "" {
		return perfbench.SuiteNames, nil
	}
	for _, s := range perfbench.SuiteNames {
		if s == only {
			return []string{only}, nil
		}
	}
	return nil, fmt.Errorf("unknown suite %q (have %v)", only, perfbench.SuiteNames)
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchobs run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "fewer repetitions, no outlier trim (CI smoke settings)")
	out := fs.String("out", ".", "directory to write BENCH_<suite>.json files into")
	only := fs.String("suite", "", "run a single suite (solver, pipeline, iosim)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	names, err := suiteList(*only)
	if err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 2
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 1
	}
	r := perfbench.NewRunner()
	if *quick {
		r = perfbench.QuickRunner()
	}
	for _, name := range names {
		ws, err := perfbench.Workloads(name)
		if err != nil {
			fmt.Fprintf(stderr, "benchobs: %v\n", err)
			return 2
		}
		s, err := r.RunSuite(name, ws, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "benchobs: suite %s: %v\n", name, err)
			return 1
		}
		path := filepath.Join(*out, perfbench.BenchFileName(name))
		if err := s.WriteFile(path); err != nil {
			fmt.Fprintf(stderr, "benchobs: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d workloads)\n", path, len(s.Workloads))
	}
	return 0
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchobs compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", ".", "directory holding the baseline BENCH_<suite>.json files")
	current := fs.String("current", "", "directory holding the run under test (required)")
	slack := fs.Float64("slack", 1, "multiplier widening every metric's threshold (CI uses 2)")
	jsonOut := fs.String("json", "", "also write the machine-readable diff (JSON) to this file")
	only := fs.String("suite", "", "compare a single suite (solver, pipeline, iosim)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *current == "" {
		fmt.Fprintln(stderr, "benchobs: compare needs -current")
		fs.Usage()
		return 2
	}
	names, err := suiteList(*only)
	if err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 2
	}
	var results []perfbench.CompareResult
	regressions := 0
	for _, name := range names {
		file := perfbench.BenchFileName(name)
		base, err := perfbench.ReadFile(filepath.Join(*baseline, file))
		if err != nil {
			fmt.Fprintf(stderr, "benchobs: baseline: %v\n", err)
			return 2
		}
		cur, err := perfbench.ReadFile(filepath.Join(*current, file))
		if err != nil {
			fmt.Fprintf(stderr, "benchobs: current: %v\n", err)
			return 2
		}
		res := perfbench.Compare(base, cur, *slack)
		if err := res.WriteTable(stdout); err != nil {
			fmt.Fprintf(stderr, "benchobs: %v\n", err)
			return 1
		}
		regressions += len(res.Regressions())
		results = append(results, res)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "benchobs: %v\n", err)
			return 1
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchobs: %d regression(s) past threshold\n", regressions)
		return 1
	}
	return 0
}

// cmdCheck audits the solver suite's recorded parallel metadata. Workloads
// without a solver_workers metric (single-solve micro workloads, the scaling
// sweeps that pin their own widths) are ignored; the rest must have recorded
// a pool at least -min-workers wide, and at least -min-count of them must
// exist so the gate cannot pass vacuously. Workloads that additionally
// record warm_solves/fallback_colds are audited for warm-resolve health:
// the fallback fraction fallback_colds/(warm_solves+fallback_colds) must
// stay at or below -max-fallback-ratio, so CI fails if the dual-simplex
// warm re-solves silently stop surviving the branching pattern and every
// node quietly pays a cold solve again.
func cmdCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchobs check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory holding the BENCH_<suite>.json files to audit")
	minWorkers := fs.Float64("min-workers", 2, "minimum recorded solver_workers per workload")
	minCount := fs.Int("min-count", 1, "minimum number of workloads carrying solver_workers")
	maxFallback := fs.Float64("max-fallback-ratio", 0.2, "maximum fallback_colds/(warm_solves+fallback_colds) per workload")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path := filepath.Join(*dir, perfbench.BenchFileName(perfbench.SuiteSolver))
	suite, err := perfbench.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 1
	}
	count, bad := 0, 0
	warmAudited, coldWarm := 0, 0
	for _, w := range suite.Workloads {
		m := w.Metric("solver_workers")
		if m == nil {
			continue
		}
		count++
		status := "ok"
		if m.Value < *minWorkers {
			status = "SERIAL"
			bad++
		}
		line := fmt.Sprintf("  %-40s solver_workers=%g", w.Name, m.Value)
		if warm, fb := w.Metric("warm_solves"), w.Metric("fallback_colds"); warm != nil && fb != nil {
			if total := warm.Value + fb.Value; total > 0 {
				warmAudited++
				ratio := fb.Value / total
				line += fmt.Sprintf(" fallback_ratio=%.3f", ratio)
				if ratio > *maxFallback {
					status = "COLD"
					coldWarm++
				}
			}
		}
		fmt.Fprintf(stdout, "%s %s\n", line, status)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "benchobs: %d workload(s) in %s ran below %g workers\n", bad, path, *minWorkers)
		return 1
	}
	if coldWarm > 0 {
		fmt.Fprintf(stderr, "benchobs: %d workload(s) in %s exceed the warm-resolve fallback ratio %g\n", coldWarm, path, *maxFallback)
		return 1
	}
	if count < *minCount {
		fmt.Fprintf(stderr, "benchobs: only %d workload(s) in %s record solver_workers, want >= %d\n", count, path, *minCount)
		return 1
	}
	fmt.Fprintf(stdout, "benchobs: %s: %d workload(s) at >= %g workers, %d warm-resolve ratio(s) <= %g\n",
		path, count, *minWorkers, warmAudited, *maxFallback)
	return 0
}

// serveLoop drives the instrumented pipeline workload against reg until ctx
// is canceled (or, when iterations > 0, for that many runs), so the served
// /metrics endpoint always has live counters moving underneath it.
func serveLoop(ctx context.Context, reg *obs.Registry, iterations int) error {
	for n := 0; iterations == 0 || n < iterations; n++ {
		if _, err := perfbench.InstrumentedPipeline(nil, reg, nil).Run(); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		default:
		}
	}
	return nil
}

func cmdServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchobs serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8089", "listen address for /metrics and /debug/pprof")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 1
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	return runServe(ctx, ln, stdout, stderr)
}

// runServe drives the workload loop and the HTTP endpoints until ctx is
// canceled (SIGINT/SIGTERM in cmdServe), then shuts the server down
// gracefully: in-flight scrapes finish, the workload loop stops at its next
// iteration boundary, and both are drained before returning — the shared
// obs.ServeLoop shape all the repo's daemons sit on.
func runServe(ctx context.Context, ln net.Listener, stdout, stderr io.Writer) int {
	reg := obs.NewRegistry()
	// One flight-recorded paper solve so /solve.json and /solve expose a real
	// gap-closure curve; the solve is fast and deterministic, and a failure
	// only leaves the flight pages empty.
	flight := obs.NewFlightRecorder(0)
	if err := perfbench.FlightSolve(flight); err != nil {
		fmt.Fprintf(stderr, "benchobs: flight solve: %v\n", err)
	}
	mux := obs.NewServeMux(reg)
	obs.AddFlightRoutes(mux, flight)
	fmt.Fprintf(stdout, "benchobs: serving http://%s/metrics (also /metrics.json, /solve, /solve.json, /debug/pprof/)\n", ln.Addr())
	err := obs.ServeLoop(ctx, ln, mux, func(bgCtx context.Context) error {
		if err := serveLoop(bgCtx, reg, 0); err != nil {
			return fmt.Errorf("workload loop: %w", err)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 1
	}
	return 0
}

func cmdSummarize(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchobs summarize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledger := fs.String("ledger", "", "JSONL run ledger to summarize (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path := *ledger
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" {
		fmt.Fprintln(stderr, "benchobs: summarize needs -ledger file.jsonl")
		fs.Usage()
		return 2
	}
	events, err := obs.ReadLedgerFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 1
	}
	if len(events) == 0 {
		fmt.Fprintf(stderr, "benchobs: ledger %s: no events\n", path)
		return 1
	}
	if err := obs.SummarizeLedger(events).WriteTimeline(stdout); err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 1
	}
	return 0
}

// cmdFlightCheck validates every solver flight stream a ledger carries: the
// monotone stream invariants (CheckSolveProg), and — unless -allow-gap — that
// each stream ends optimal with the gap closed. It is the CI gate behind
// `insitu-sched -flight`: a recorder or solver regression that breaks the
// stream contract fails the build instead of silently corrupting telemetry.
func cmdFlightCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchobs flightcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledger := fs.String("ledger", "", "JSONL ledger holding solveprog events (required)")
	allowGap := fs.Bool("allow-gap", false, "accept streams that end non-optimal or with an open gap")
	tol := fs.Float64("tol", 1e-6, "absolute gap tolerance for a closed final gap")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path := *ledger
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" {
		fmt.Fprintln(stderr, "benchobs: flightcheck needs -ledger file.jsonl")
		fs.Usage()
		return 2
	}
	events, err := obs.ReadLedgerFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 1
	}
	runs := obs.GroupSolveProgEvents(events)
	if len(runs) == 0 {
		fmt.Fprintf(stderr, "benchobs: ledger %s: no solveprog events\n", path)
		return 1
	}
	bad := 0
	for i, r := range runs {
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("solve[%d]", i)
		}
		if err := obs.CheckSolveProg(r.Records); err != nil {
			fmt.Fprintf(stdout, "  %-32s %4d event(s) BAD: %v\n", name, len(r.Records), err)
			bad++
			continue
		}
		gap, status, ok := obs.FinalGap(r.Records)
		switch {
		case *allowGap:
			fmt.Fprintf(stdout, "  %-32s %4d event(s) ok (%s)\n", name, len(r.Records), orUnknown(status))
		case !ok:
			fmt.Fprintf(stdout, "  %-32s %4d event(s) BAD: no end event with a defined gap\n", name, len(r.Records))
			bad++
		case status != "optimal" || gap > *tol:
			fmt.Fprintf(stdout, "  %-32s %4d event(s) BAD: status %s, final gap %.4g\n", name, len(r.Records), orUnknown(status), gap)
			bad++
		default:
			fmt.Fprintf(stdout, "  %-32s %4d event(s) ok (optimal, gap %.4g)\n", name, len(r.Records), gap)
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "benchobs: %d of %d flight stream(s) in %s failed validation\n", bad, len(runs), path)
		return 1
	}
	fmt.Fprintf(stdout, "benchobs: %s: %d flight stream(s) ok\n", path, len(runs))
	return 0
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// cmdRuns scans a directory of *.jsonl run ledgers into the cross-run
// registry: one row per run with its step/replan/solve counts, per-solve and
// per-flight summaries, and the cross-run history with trends.
func cmdRuns(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchobs runs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory holding *.jsonl run ledgers")
	filter := fs.String("filter", "", "keep runs whose app, path, solve, or flight name contains this")
	jsonOut := fs.Bool("json", false, "emit the registry as JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	reg, err := obs.ScanRuns(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 1
	}
	for _, w := range reg.Warnings {
		fmt.Fprintf(stderr, "benchobs: warning: %s\n", w)
	}
	reg = reg.Filter(*filter)
	if len(reg.Runs) == 0 {
		fmt.Fprintf(stderr, "benchobs: no runs found in %s\n", *dir)
		return 1
	}
	if *jsonOut {
		if err := reg.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "benchobs: %v\n", err)
			return 1
		}
		return 0
	}
	if err := reg.WriteTable(stdout); err != nil {
		fmt.Fprintf(stderr, "benchobs: %v\n", err)
		return 1
	}
	return 0
}
