package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"insitu/internal/obs"
	"insitu/internal/perfbench"
)

func TestUsageAndUnknownCommands(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Fatalf("no args -> %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "usage: benchobs") {
		t.Fatalf("usage missing: %s", errBuf.String())
	}
	if code := run([]string{"nope"}, &out, &errBuf); code != 2 {
		t.Fatal("unknown command accepted")
	}
	out.Reset()
	if code := run([]string{"help"}, &out, &errBuf); code != 0 || !strings.Contains(out.String(), "summarize") {
		t.Fatalf("help -> %d, %s", code, out.String())
	}
	// Bad flag values and bad suite names are usage errors.
	if code := run([]string{"run", "-suite", "nope"}, &out, &errBuf); code != 2 {
		t.Fatal("unknown suite accepted")
	}
	if code := run([]string{"compare", "-suite", "nope", "-current", "x"}, &out, &errBuf); code != 2 {
		t.Fatal("unknown compare suite accepted")
	}
	if code := run([]string{"compare"}, &out, &errBuf); code != 2 {
		t.Fatal("compare without -current accepted")
	}
	if code := run([]string{"summarize"}, &out, &errBuf); code != 2 {
		t.Fatal("summarize without -ledger accepted")
	}
}

func TestRunAndCompareEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick benchmark catalog twice")
	}
	baseDir := t.TempDir()
	var out, errBuf bytes.Buffer
	if code := run([]string{"run", "-quick", "-out", baseDir}, &out, &errBuf); code != 0 {
		t.Fatalf("run -> %d: %s", code, errBuf.String())
	}
	for _, suite := range perfbench.SuiteNames {
		s, err := perfbench.ReadFile(filepath.Join(baseDir, perfbench.BenchFileName(suite)))
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Workloads) == 0 {
			t.Fatalf("suite %s empty", suite)
		}
	}

	// A solver-only re-run compares clean against its own baseline even at
	// slack 1 (deterministic gated metrics; wall gate is wide).
	curDir := t.TempDir()
	if code := run([]string{"run", "-quick", "-suite", "solver", "-out", curDir}, &out, &errBuf); code != 0 {
		t.Fatalf("solver run -> %d: %s", code, errBuf.String())
	}
	out.Reset()
	jsonPath := filepath.Join(curDir, "diff.json")
	code := run([]string{"compare", "-suite", "solver", "-baseline", baseDir, "-current", curDir, "-json", jsonPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("compare -> %d:\n%s\n%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("table = %s", out.String())
	}
	var results []perfbench.CompareResult
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Suite != "solver" || len(results[0].Deltas) == 0 {
		t.Fatalf("machine diff = %+v", results)
	}

	// Poison a deterministic counter in the current run: compare must fail.
	cur, err := perfbench.ReadFile(filepath.Join(curDir, perfbench.BenchFileName("solver")))
	if err != nil {
		t.Fatal(err)
	}
	m := cur.Workloads[0].Metric("solver_nodes_per_op")
	if m == nil {
		t.Fatal("no solver_nodes_per_op on first workload")
	}
	m.Value *= 2
	if err := cur.WriteFile(filepath.Join(curDir, perfbench.BenchFileName("solver"))); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errBuf.Reset()
	code = run([]string{"compare", "-suite", "solver", "-baseline", baseDir, "-current", curDir}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("poisoned compare -> %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(errBuf.String(), "regression(s)") {
		t.Fatalf("poisoned compare output:\n%s\n%s", out.String(), errBuf.String())
	}

	// Missing baseline directory is a usage error, not a pass.
	if code := run([]string{"compare", "-baseline", filepath.Join(baseDir, "absent"), "-current", curDir}, &out, &errBuf); code != 2 {
		t.Fatalf("absent baseline -> %d", code)
	}
}

func TestServeLoopFeedsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	if err := serveLoop(context.Background(), reg, 1); err != nil {
		t.Fatal(err)
	}
	var steps float64
	for _, m := range reg.Snapshot() {
		if m.Name == "coupling_steps_total" {
			steps = m.Value
		}
	}
	if steps != 240 {
		t.Fatalf("steps_total = %g after one pipeline run, want 240", steps)
	}
	// A pre-canceled context still completes the in-flight run, then exits.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := serveLoop(canceled, reg, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunServeGracefulShutdown boots the serve stack on a real listener,
// scrapes it once, then cancels the context and requires runServe to drain
// the workload loop and return cleanly — the SIGINT/SIGTERM path without the
// signal.
func TestRunServeGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out, errBuf bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- runServe(ctx, ln, &out, &errBuf)
	}()

	url := fmt.Sprintf("http://%s/metrics", ln.Addr())
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.Contains(string(body), "coupling_steps_total") {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics endpoint never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("runServe exit %d, stderr:\n%s", code, errBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runServe did not shut down after cancellation")
	}
}

func TestSummarize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	led, err := obs.OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	led.Append(obs.LedgerEvent{Type: obs.LedgerRunStart, Name: "mdsim", Args: map[string]float64{"steps": 2}})
	led.Append(obs.LedgerEvent{Type: obs.LedgerSolve, Name: "plan", Dur: 12, Args: map[string]float64{"nodes": 5, "pivots": 40, "objective": 21}})
	led.Event(obs.LedgerStep, "", 1, 100*time.Microsecond)
	led.Event(obs.LedgerAnalysis, "rdf", 1, 30*time.Microsecond)
	led.Event(obs.LedgerStep, "", 2, 110*time.Microsecond)
	led.Append(obs.LedgerEvent{Type: obs.LedgerOutput, Name: "rdf", Step: 2, Dur: 9, Bytes: 4096})
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errBuf bytes.Buffer
	if code := run([]string{"summarize", "-ledger", path}, &out, &errBuf); code != 0 {
		t.Fatalf("summarize -> %d: %s", code, errBuf.String())
	}
	text := out.String()
	for _, want := range []string{"run: mdsim", "solve plan", "rdf/analyze 30us", "rdf/output 9us", "total step time: 210 us"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}
	if code := run([]string{"summarize", "-ledger", filepath.Join(dir, "absent.jsonl")}, &out, &errBuf); code != 1 {
		t.Fatal("absent ledger accepted")
	}
	// An empty ledger file is a one-line error, not a bogus empty table.
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	errBuf.Reset()
	if code := run([]string{"summarize", "-ledger", empty}, &out, &errBuf); code != 1 {
		t.Fatalf("empty ledger -> %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "no events") {
		t.Fatalf("stderr = %q", errBuf.String())
	}
}

// TestCheckGatesOnWorkers covers the check subcommand: a suite recording the
// parallel width passes, one downgraded to serial fails, and a suite with no
// solver_workers metadata at all fails the -min-count floor.
func TestCheckGatesOnWorkers(t *testing.T) {
	dir := t.TempDir()
	suite := perfbench.Suite{Suite: "solver", Workloads: []perfbench.WorkloadResult{
		{Name: "sched_a", Metrics: []perfbench.Metric{
			{Name: "solver_workers", Value: 8, Unit: "model"},
		}},
		{Name: "micro_no_solver", Metrics: []perfbench.Metric{
			{Name: "wall_ns_min", Value: 1, Unit: "ns/op"},
		}},
	}}
	path := filepath.Join(dir, perfbench.BenchFileName("solver"))
	if err := suite.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"check", "-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("parallel suite: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "sched_a") || !strings.Contains(stdout.String(), "ok") {
		t.Errorf("check output missing audit line:\n%s", stdout.String())
	}

	// WriteFile sorts the workload slice in place, so locate by name.
	suite.Workload("sched_a").Metric("solver_workers").Value = 1 // silently serial
	if err := suite.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"check", "-dir", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("serial suite: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "below 2 workers") {
		t.Errorf("stderr = %q", stderr.String())
	}

	suite.Workloads = []perfbench.WorkloadResult{*suite.Workload("micro_no_solver")} // no solver_workers anywhere
	if err := suite.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"check", "-dir", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("empty suite: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "want >= 1") {
		t.Errorf("stderr = %q", stderr.String())
	}

	if code := run([]string{"check", "-dir", t.TempDir()}, &stdout, &stderr); code != 1 {
		t.Fatal("missing file must fail")
	}
}

// TestCheckGatesOnFallbackRatio covers the warm-resolve health gate: a suite
// whose warm re-solves mostly stick passes, one whose fallback fraction
// exceeds -max-fallback-ratio fails, and the flag moves the bar.
func TestCheckGatesOnFallbackRatio(t *testing.T) {
	dir := t.TempDir()
	suite := perfbench.Suite{Suite: "solver", Workloads: []perfbench.WorkloadResult{
		{Name: "sched_warm", Metrics: []perfbench.Metric{
			{Name: "solver_workers", Value: 8, Unit: "model"},
			{Name: "warm_solves", Value: 95, Unit: "model"},
			{Name: "fallback_colds", Value: 5, Unit: "model"},
		}},
	}}
	path := filepath.Join(dir, perfbench.BenchFileName("solver"))
	if err := suite.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"check", "-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("healthy warm ratio: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fallback_ratio=0.050") {
		t.Errorf("check output missing fallback ratio:\n%s", stdout.String())
	}

	suite.Workload("sched_warm").Metric("fallback_colds").Value = 40 // warm starts rotting
	if err := suite.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"check", "-dir", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("rotten warm ratio: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "fallback ratio") {
		t.Errorf("stderr = %q", stderr.String())
	}

	// A raised bar admits the same suite.
	stderr.Reset()
	if code := run([]string{"check", "-dir", dir, "-max-fallback-ratio", "0.5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("raised bar: exit %d, stderr: %s", code, stderr.String())
	}
}

// TestCheckCommittedBaseline audits the repo's committed solver baseline the
// same way CI does: it must already record the parallel pool width.
func TestCheckCommittedBaseline(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"check", "-dir", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("committed baseline fails check (exit %d): %s", code, stderr.String())
	}
}

// writeFlightStream appends one solver flight stream (start/wave/end) to the
// ledger at path, ending with the given status and final incumbent/bound.
func writeFlightStream(t *testing.T, led *obs.EventLog, name, status string, inc, bound float64) {
	t.Helper()
	fr := obs.NewFlightRecorder(0)
	fr.Record(obs.SolveProgress{Seq: 0, Kind: obs.SolveProgStart, Workers: 2, Vars: 4, IntVars: 2, Constraints: 5})
	fr.Record(obs.SolveProgress{Seq: 1, Kind: obs.SolveProgWave, Wave: 1, Workers: 2, Nodes: 1,
		HasInc: true, Incumbent: inc - 2, HasBound: true, Bound: bound + 3, Pivots: 6})
	fr.Record(obs.SolveProgress{Seq: 2, Kind: obs.SolveProgEnd, Wave: 2, Workers: 2, Nodes: 3,
		HasInc: true, Incumbent: inc, HasBound: true, Bound: bound, Pivots: 11, Status: status})
	fr.AppendLedger(led, name)
}

func TestFlightCheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.jsonl")
	led, err := obs.OpenEventLog(good)
	if err != nil {
		t.Fatal(err)
	}
	writeFlightStream(t, led, "plan", "optimal", 10, 10)
	writeFlightStream(t, led, "replan", "optimal", 14, 14)
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errBuf bytes.Buffer
	if code := run([]string{"flightcheck", "-ledger", good}, &out, &errBuf); code != 0 {
		t.Fatalf("flightcheck -> %d: %s\n%s", code, errBuf.String(), out.String())
	}
	for _, want := range []string{"plan", "replan", "2 flight stream(s) ok"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}

	// A stream ending with an open gap fails unless -allow-gap.
	open := filepath.Join(dir, "open.jsonl")
	led, err = obs.OpenEventLog(open)
	if err != nil {
		t.Fatal(err)
	}
	writeFlightStream(t, led, "plan", "node-limit", 10, 12)
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"flightcheck", "-ledger", open}, &out, &errBuf); code != 1 {
		t.Fatalf("open-gap flightcheck -> %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "BAD") || !strings.Contains(errBuf.String(), "failed validation") {
		t.Fatalf("open-gap output:\n%s\n%s", out.String(), errBuf.String())
	}
	if code := run([]string{"flightcheck", "-ledger", open, "-allow-gap"}, &out, &errBuf); code != 0 {
		t.Fatalf("-allow-gap -> %d", code)
	}

	// A ledger without solveprog events fails: the gate cannot pass vacuously.
	bare := filepath.Join(dir, "bare.jsonl")
	led, err = obs.OpenEventLog(bare)
	if err != nil {
		t.Fatal(err)
	}
	led.Append(obs.LedgerEvent{Type: obs.LedgerRunStart, Name: "mdsim"})
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	errBuf.Reset()
	if code := run([]string{"flightcheck", "-ledger", bare}, &out, &errBuf); code != 1 {
		t.Fatal("ledger without solveprog events accepted")
	}
	if !strings.Contains(errBuf.String(), "no solveprog events") {
		t.Fatalf("stderr = %q", errBuf.String())
	}
	if code := run([]string{"flightcheck"}, &out, &errBuf); code != 2 {
		t.Fatal("flightcheck without -ledger accepted")
	}
}

func TestRunsRegistry(t *testing.T) {
	dir := t.TempDir()
	for i, app := range []string{"lammps", "flash"} {
		led, err := obs.OpenEventLog(filepath.Join(dir, app+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		led.Append(obs.LedgerEvent{Type: obs.LedgerRunStart, Name: app, Args: map[string]float64{"steps": 4}})
		led.Event(obs.LedgerStep, "", 1, 100*time.Microsecond)
		writeFlightStream(t, led, "plan", "optimal", float64(10+i), float64(10+i))
		led.Append(obs.LedgerEvent{Type: obs.LedgerRunEnd, Step: 1})
		if err := led.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var out, errBuf bytes.Buffer
	if code := run([]string{"runs", "-dir", dir}, &out, &errBuf); code != 0 {
		t.Fatalf("runs -> %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"lammps", "flash", "plan"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, out.String())
		}
	}

	// -filter narrows to matching runs; -json round-trips.
	out.Reset()
	if code := run([]string{"runs", "-dir", dir, "-filter", "lammps"}, &out, &errBuf); code != 0 {
		t.Fatalf("filtered runs -> %d", code)
	}
	if strings.Contains(out.String(), "flash") {
		t.Fatalf("filter leaked flash:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"runs", "-dir", dir, "-json"}, &out, &errBuf); code != 0 {
		t.Fatalf("runs -json -> %d", code)
	}
	var reg obs.RunRegistry
	if err := json.Unmarshal(out.Bytes(), &reg); err != nil {
		t.Fatalf("runs -json not JSON: %v\n%s", err, out.String())
	}
	if len(reg.Runs) != 2 {
		t.Fatalf("registry has %d runs, want 2", len(reg.Runs))
	}

	// An empty directory is a failure, and a filter matching nothing too.
	errBuf.Reset()
	if code := run([]string{"runs", "-dir", t.TempDir()}, &out, &errBuf); code != 1 {
		t.Fatal("empty dir accepted")
	}
	if code := run([]string{"runs", "-dir", dir, "-filter", "nope"}, &out, &errBuf); code != 1 {
		t.Fatal("unmatched filter accepted")
	}
}
