package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"insitu/internal/obs"
	"insitu/internal/perfbench"
)

func TestUsageAndUnknownCommands(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Fatalf("no args -> %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "usage: benchobs") {
		t.Fatalf("usage missing: %s", errBuf.String())
	}
	if code := run([]string{"nope"}, &out, &errBuf); code != 2 {
		t.Fatal("unknown command accepted")
	}
	out.Reset()
	if code := run([]string{"help"}, &out, &errBuf); code != 0 || !strings.Contains(out.String(), "summarize") {
		t.Fatalf("help -> %d, %s", code, out.String())
	}
	// Bad flag values and bad suite names are usage errors.
	if code := run([]string{"run", "-suite", "nope"}, &out, &errBuf); code != 2 {
		t.Fatal("unknown suite accepted")
	}
	if code := run([]string{"compare", "-suite", "nope", "-current", "x"}, &out, &errBuf); code != 2 {
		t.Fatal("unknown compare suite accepted")
	}
	if code := run([]string{"compare"}, &out, &errBuf); code != 2 {
		t.Fatal("compare without -current accepted")
	}
	if code := run([]string{"summarize"}, &out, &errBuf); code != 2 {
		t.Fatal("summarize without -ledger accepted")
	}
}

func TestRunAndCompareEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick benchmark catalog twice")
	}
	baseDir := t.TempDir()
	var out, errBuf bytes.Buffer
	if code := run([]string{"run", "-quick", "-out", baseDir}, &out, &errBuf); code != 0 {
		t.Fatalf("run -> %d: %s", code, errBuf.String())
	}
	for _, suite := range perfbench.SuiteNames {
		s, err := perfbench.ReadFile(filepath.Join(baseDir, perfbench.BenchFileName(suite)))
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Workloads) == 0 {
			t.Fatalf("suite %s empty", suite)
		}
	}

	// A solver-only re-run compares clean against its own baseline even at
	// slack 1 (deterministic gated metrics; wall gate is wide).
	curDir := t.TempDir()
	if code := run([]string{"run", "-quick", "-suite", "solver", "-out", curDir}, &out, &errBuf); code != 0 {
		t.Fatalf("solver run -> %d: %s", code, errBuf.String())
	}
	out.Reset()
	jsonPath := filepath.Join(curDir, "diff.json")
	code := run([]string{"compare", "-suite", "solver", "-baseline", baseDir, "-current", curDir, "-json", jsonPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("compare -> %d:\n%s\n%s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("table = %s", out.String())
	}
	var results []perfbench.CompareResult
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Suite != "solver" || len(results[0].Deltas) == 0 {
		t.Fatalf("machine diff = %+v", results)
	}

	// Poison a deterministic counter in the current run: compare must fail.
	cur, err := perfbench.ReadFile(filepath.Join(curDir, perfbench.BenchFileName("solver")))
	if err != nil {
		t.Fatal(err)
	}
	m := cur.Workloads[0].Metric("solver_nodes_per_op")
	if m == nil {
		t.Fatal("no solver_nodes_per_op on first workload")
	}
	m.Value *= 2
	if err := cur.WriteFile(filepath.Join(curDir, perfbench.BenchFileName("solver"))); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errBuf.Reset()
	code = run([]string{"compare", "-suite", "solver", "-baseline", baseDir, "-current", curDir}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("poisoned compare -> %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(errBuf.String(), "regression(s)") {
		t.Fatalf("poisoned compare output:\n%s\n%s", out.String(), errBuf.String())
	}

	// Missing baseline directory is a usage error, not a pass.
	if code := run([]string{"compare", "-baseline", filepath.Join(baseDir, "absent"), "-current", curDir}, &out, &errBuf); code != 2 {
		t.Fatalf("absent baseline -> %d", code)
	}
}

func TestServeLoopFeedsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	if err := serveLoop(reg, nil, 1); err != nil {
		t.Fatal(err)
	}
	var steps float64
	for _, m := range reg.Snapshot() {
		if m.Name == "coupling_steps_total" {
			steps = m.Value
		}
	}
	if steps != 240 {
		t.Fatalf("steps_total = %g after one pipeline run, want 240", steps)
	}
	// A pre-closed stop channel still completes the in-flight run, then exits.
	stop := make(chan struct{})
	close(stop)
	if err := serveLoop(reg, stop, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunServeGracefulShutdown boots the serve stack on a real listener,
// scrapes it once, then cancels the context and requires runServe to drain
// the workload loop and return cleanly — the SIGINT/SIGTERM path without the
// signal.
func TestRunServeGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out, errBuf bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- runServe(ctx, ln, &out, &errBuf)
	}()

	url := fmt.Sprintf("http://%s/metrics", ln.Addr())
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.Contains(string(body), "coupling_steps_total") {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics endpoint never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("runServe exit %d, stderr:\n%s", code, errBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runServe did not shut down after cancellation")
	}
}

func TestSummarize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	led, err := obs.OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	led.Append(obs.LedgerEvent{Type: obs.LedgerRunStart, Name: "mdsim", Args: map[string]float64{"steps": 2}})
	led.Append(obs.LedgerEvent{Type: obs.LedgerSolve, Name: "plan", Dur: 12, Args: map[string]float64{"nodes": 5, "pivots": 40, "objective": 21}})
	led.Event(obs.LedgerStep, "", 1, 100*time.Microsecond)
	led.Event(obs.LedgerAnalysis, "rdf", 1, 30*time.Microsecond)
	led.Event(obs.LedgerStep, "", 2, 110*time.Microsecond)
	led.Append(obs.LedgerEvent{Type: obs.LedgerOutput, Name: "rdf", Step: 2, Dur: 9, Bytes: 4096})
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errBuf bytes.Buffer
	if code := run([]string{"summarize", "-ledger", path}, &out, &errBuf); code != 0 {
		t.Fatalf("summarize -> %d: %s", code, errBuf.String())
	}
	text := out.String()
	for _, want := range []string{"run: mdsim", "solve plan", "rdf/analyze 30us", "rdf/output 9us", "total step time: 210 us"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}
	if code := run([]string{"summarize", "-ledger", filepath.Join(dir, "absent.jsonl")}, &out, &errBuf); code != 1 {
		t.Fatal("absent ledger accepted")
	}
	// An empty ledger file is a one-line error, not a bogus empty table.
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	errBuf.Reset()
	if code := run([]string{"summarize", "-ledger", empty}, &out, &errBuf); code != 1 {
		t.Fatalf("empty ledger -> %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "no events") {
		t.Fatalf("stderr = %q", errBuf.String())
	}
}

// TestCheckGatesOnWorkers covers the check subcommand: a suite recording the
// parallel width passes, one downgraded to serial fails, and a suite with no
// solver_workers metadata at all fails the -min-count floor.
func TestCheckGatesOnWorkers(t *testing.T) {
	dir := t.TempDir()
	suite := perfbench.Suite{Suite: "solver", Workloads: []perfbench.WorkloadResult{
		{Name: "sched_a", Metrics: []perfbench.Metric{
			{Name: "solver_workers", Value: 8, Unit: "model"},
		}},
		{Name: "micro_no_solver", Metrics: []perfbench.Metric{
			{Name: "wall_ns_min", Value: 1, Unit: "ns/op"},
		}},
	}}
	path := filepath.Join(dir, perfbench.BenchFileName("solver"))
	if err := suite.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"check", "-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("parallel suite: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "sched_a") || !strings.Contains(stdout.String(), "ok") {
		t.Errorf("check output missing audit line:\n%s", stdout.String())
	}

	// WriteFile sorts the workload slice in place, so locate by name.
	suite.Workload("sched_a").Metric("solver_workers").Value = 1 // silently serial
	if err := suite.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"check", "-dir", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("serial suite: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "below 2 workers") {
		t.Errorf("stderr = %q", stderr.String())
	}

	suite.Workloads = []perfbench.WorkloadResult{*suite.Workload("micro_no_solver")} // no solver_workers anywhere
	if err := suite.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"check", "-dir", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("empty suite: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "want >= 1") {
		t.Errorf("stderr = %q", stderr.String())
	}

	if code := run([]string{"check", "-dir", t.TempDir()}, &stdout, &stderr); code != 1 {
		t.Fatal("missing file must fail")
	}
}

// TestCheckCommittedBaseline audits the repo's committed solver baseline the
// same way CI does: it must already record the parallel pool width.
func TestCheckCommittedBaseline(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"check", "-dir", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("committed baseline fails check (exit %d): %s", code, stderr.String())
	}
}
