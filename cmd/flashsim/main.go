// Command flashsim runs the Sedov blast mini-app (the FLASH stand-in) with
// optimally scheduled in-situ analyses F1-F3: vorticity, L1 error norms, and
// L2 error norms, optionally with importance weights (the Table-8 scenario).
//
// Usage:
//
//	flashsim [-blocks 4] [-nb 8] [-steps 100] [-threshold-pct 10]
//	         [-interval 10] [-ranks 4] [-weights 1,1,1]
//	         [-trace trace.json] [-metrics metrics.txt] [-ledger run.jsonl]
//	         [-monitor] [-replan]
//
// -monitor watches the run live for drift against the solved schedule (see
// mdsim -monitor): a drift report prints after execution, and with -ledger
// the plan and alert events land in the JSONL file for `runmon report`.
// -replan (implies -monitor) additionally re-solves the remaining horizon
// when drift or budget alerts fire and swaps adopted schedules into the
// running loop (see mdsim -replan); Sedov runs drift naturally as the blast
// refines the lattice, so no synthetic perturbation hook is needed here.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/analysis/amrkernels"
	"insitu/internal/core"
	"insitu/internal/coupling"
	"insitu/internal/obs"
	"insitu/internal/replan"
	"insitu/internal/runmon"
	"insitu/internal/sim/amr"
)

func main() {
	blocks := flag.Int("blocks", 4, "blocks per side of the block lattice")
	nb := flag.Int("nb", 8, "cells per block side")
	steps := flag.Int("steps", 100, "simulation steps")
	thresholdPct := flag.Float64("threshold-pct", 10, "analysis threshold as % of simulation time")
	interval := flag.Int("interval", 10, "minimum interval between analysis steps")
	ranks := flag.Int("ranks", 4, "analysis reduction ranks")
	weights := flag.String("weights", "1,1,1", "importance weights for F1,F2,F3")
	tracePath := flag.String("trace", "", "write the executed run as Chrome trace JSON to this file")
	metricsPath := flag.String("metrics", "", "write run metrics to this file (Prometheus text, or JSON with a .json suffix)")
	ledgerPath := flag.String("ledger", "", "write the run as a JSONL event ledger to this file")
	monitor := flag.Bool("monitor", false, "watch the run live for drift against the solved schedule (prints a drift report; plan and alert events land in the ledger when -ledger is set)")
	replanOn := flag.Bool("replan", false, "reschedule the remaining run when the monitor detects drift (implies -monitor; replan events land in the ledger)")
	render := flag.Bool("render", false, "print an ASCII density slice after the run")
	flag.Parse()

	if err := run(*blocks, *nb, *steps, *thresholdPct, *interval, *ranks, *weights, *render, *tracePath, *metricsPath, *ledgerPath, *monitor, *replanOn); err != nil {
		fmt.Fprintln(os.Stderr, "flashsim:", err)
		os.Exit(1)
	}
}

func parseWeights(s string) ([3]float64, error) {
	parts := strings.Split(s, ",")
	var w [3]float64
	if len(parts) != 3 {
		return w, fmt.Errorf("weights must be three comma-separated numbers, got %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return w, fmt.Errorf("weight %d: %w", i+1, err)
		}
		w[i] = v
	}
	return w, nil
}

func run(blocks, nb, steps int, thresholdPct float64, interval, ranks int, weightStr string, render bool, tracePath, metricsPath, ledgerPath string, monitor, replanOn bool) error {
	monitor = monitor || replanOn
	w, err := parseWeights(weightStr)
	if err != nil {
		return err
	}
	grid, err := amr.NewSedov(amr.Config{BlocksX: blocks, NB: nb})
	if err != nil {
		return err
	}

	var kernels []analysis.Kernel
	f1, err := amrkernels.NewVorticity(grid, ranks)
	if err != nil {
		return err
	}
	f2, err := amrkernels.NewL1Norm(grid, ranks)
	if err != nil {
		return err
	}
	f3, err := amrkernels.NewL2Norm(grid, ranks)
	if err != nil {
		return err
	}
	f4, err := amrkernels.NewShockTracker(grid, ranks)
	if err != nil {
		return err
	}
	f5, err := amrkernels.NewRadialProfile(grid, 32, ranks)
	if err != nil {
		return err
	}
	kernels = append(kernels, f1, f2, f3, f4, f5)

	step := func() { grid.StepCFL() }

	t0 := time.Now()
	for i := 0; i < 5; i++ {
		step()
	}
	simPerStep := time.Since(t0).Seconds() / 5
	res := core.Resources{
		Steps:         steps,
		TimeThreshold: core.PercentThreshold(simPerStep, steps, thresholdPct),
		MemThreshold:  1 << 32,
	}
	fmt.Printf("sedov blocks=%d^3 nb=%d cells=%d sim=%.5fs/step threshold=%.3fs\n",
		blocks, nb, grid.NumCells(), simPerStep, res.TimeThreshold)

	rec, specs, err := coupling.MeasureAndSolve(kernels, step, 4, interval, res)
	if err != nil {
		return err
	}
	// Apply the importance weights to F1-F3 and re-solve (MeasureAndSolve
	// uses defaults; the weighted solve is the Table-8 workflow). The
	// auxiliary kernels (shock tracker, radial profile) keep weight 1.
	for i := range specs {
		if i < len(w) {
			specs[i].Weight = w[i]
		}
	}
	rec, err = core.Solve(specs, res, core.SolveOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nweights=%v\nrecommended schedule:\n%s", w, rec.String())

	byName := map[string]analysis.Kernel{}
	for _, k := range kernels {
		byName[k.Name()] = k
	}
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer()
	}
	var reg *obs.Registry
	if metricsPath != "" {
		reg = obs.NewRegistry()
	}
	var ledger *obs.EventLog
	if ledgerPath != "" {
		ledger, err = obs.OpenEventLog(ledgerPath)
		if err != nil {
			return err
		}
		ledger.Append(obs.LedgerEvent{
			Type: obs.LedgerSolve, Name: "schedule",
			Dur: float64(rec.SolveTime.Nanoseconds()) / 1e3,
			Args: map[string]float64{
				"nodes":     float64(rec.Stats.Nodes),
				"pivots":    float64(rec.Stats.Pivots),
				"objective": rec.Objective,
				"threshold": res.TimeThreshold,
			},
		})
	}
	runner := &coupling.Runner{Step: step, Kernels: byName, Rec: rec, Res: res, Trace: tracer, Metrics: reg, Ledger: ledger, App: "flashsim/sedov"}
	var mon *runmon.Monitor
	if monitor {
		profile := runmon.FromPlan(specs, rec, res, simPerStep)
		profile.App = "flashsim/sedov"
		mon = runmon.NewMonitor(profile, runmon.Config{Ledger: ledger, Metrics: reg})
		for _, e := range profile.PlanEvents() {
			ledger.Append(e)
		}
		runner.Observe = mon.Observe
	}
	var rp *replan.Replanner
	if replanOn {
		rp = replan.New(mon, specs, res, rec, simPerStep, replan.Config{
			BudgetPercent: thresholdPct, Ledger: ledger, Metrics: reg,
		})
		runner.Replan = rp.Hook()
	}
	rep, err := runner.Run()
	if err != nil {
		return err
	}
	fmt.Printf("\nexecuted: sim=%v analyses=%v (%.1f%% of threshold)\n",
		rep.SimTime, rep.AnalysisTime, rep.Utilization(res)*100)
	if mon != nil {
		fmt.Println("\nrun monitor:")
		if err := mon.Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if rp != nil {
		fmt.Println(rp.String())
	}
	if tracePath != "" {
		if err := obs.WriteTraceFile(tracePath, tracer); err != nil {
			return err
		}
		fmt.Printf("wrote trace (%d events) to %s\n", tracer.Len(), tracePath)
	}
	if metricsPath != "" {
		if err := obs.WriteMetricsFile(metricsPath, reg); err != nil {
			return err
		}
		fmt.Printf("wrote metrics to %s\n", metricsPath)
	}
	if ledgerPath != "" {
		if err := ledger.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote ledger (%d events) to %s\n", ledger.Len(), ledgerPath)
	}
	ref := amr.NewSedovReference(grid.Gamma)
	fmt.Printf("shock radius after %d steps: %.4f (Sedov-Taylor %.4f at t=%.4f)\n",
		grid.StepCount, grid.ShockRadius(), ref.ShockRadius(grid.Time), grid.Time)
	if render {
		fmt.Println(grid.RenderSlice(64, 28))
	}
	return nil
}
