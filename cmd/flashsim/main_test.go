package main

import (
	"path/filepath"
	"testing"

	"insitu/internal/obs"
)

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("2, 1,2")
	if err != nil {
		t.Fatal(err)
	}
	if w != [3]float64{2, 1, 2} {
		t.Fatalf("weights = %v", w)
	}
	if _, err := parseWeights("1,2"); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := parseWeights("a,b,c"); err == nil {
		t.Fatal("expected number error")
	}
}

func TestRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline too heavy for -short")
	}
	ledgerPath := filepath.Join(t.TempDir(), "run.jsonl")
	if err := run(2, 6, 10, 20, 5, 2, "1,1,1", false, "", "", ledgerPath, false, false); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadLedgerFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	sum := obs.SummarizeLedger(events)
	if sum.App != "flashsim/sedov" || len(sum.Steps) != 10 || len(sum.Solves) != 1 {
		t.Fatalf("ledger app=%q steps=%d solves=%d", sum.App, len(sum.Steps), len(sum.Solves))
	}
}
