package main

import "testing"

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("2, 1,2")
	if err != nil {
		t.Fatal(err)
	}
	if w != [3]float64{2, 1, 2} {
		t.Fatalf("weights = %v", w)
	}
	if _, err := parseWeights("1,2"); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := parseWeights("a,b,c"); err == nil {
		t.Fatal("expected number error")
	}
}

func TestRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline too heavy for -short")
	}
	if err := run(2, 6, 10, 20, 5, 2, "1,1,1", false, "", ""); err != nil {
		t.Fatal(err)
	}
}
