package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSolverSection runs the solver section through the CLI at a parallel
// width and checks the runtime summary lands on stdout.
func TestRunSolverSection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "solver", "-workers", "2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Solver runtime across Tables 5-6 instances") {
		t.Errorf("solver summary missing:\n%s", stdout.String())
	}
}

// TestRunTableSection smoke-tests one deterministic table section end to end.
func TestRunTableSection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "table5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 5: threshold sweep") {
		t.Errorf("table 5 output missing:\n%s", stdout.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}
