// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them to stdout.
//
// Usage:
//
//	experiments [-only table5] [-quick] [-verify] [-golden dir]
//
// -only selects a single experiment (table4..table8, figure2, figure4,
// figure5, ablations, moldable, solver); the default runs everything.
// -quick shrinks the measured (laptop-scale) experiments so the full suite
// finishes in seconds. -verify checks the scheduling experiments against the
// paper's published rows and exits nonzero on any mismatch. -golden writes
// the deterministic golden snapshots (the same files the regression test in
// internal/experiments compares against) to the given directory and exits.
package main

import (
	"flag"
	"fmt"
	"os"

	"insitu/internal/core"
	"insitu/internal/experiments"
	"insitu/internal/machine"
	"insitu/internal/moldable"
)

func main() {
	only := flag.String("only", "", "run a single experiment (table4..table8, figure2, figure4, figure5, ablations, moldable, solver)")
	quick := flag.Bool("quick", false, "shrink measured experiments for a fast pass")
	verify := flag.Bool("verify", false, "check the scheduling experiments against the paper's published values and exit")
	golden := flag.String("golden", "", "write the golden snapshot files to this directory and exit")
	flag.Parse()

	if *golden != "" {
		if err := experiments.WriteGolden(*golden); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: golden: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote golden snapshots to %s\n", *golden)
		return
	}

	if *verify {
		checks, err := experiments.VerifyAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: verify: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatChecks(checks))
		for _, c := range checks {
			if !c.Pass {
				os.Exit(1)
			}
		}
		return
	}

	run := func(name string) bool { return *only == "" || *only == name }
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}

	if run("table4") {
		cfg := experiments.Table4Config{}
		if *quick {
			cfg = experiments.Table4Config{Atoms: []int{3000, 8000}, Steps: 30, OutputEvery: 10}
		}
		rows, err := experiments.Table4(cfg)
		if err != nil {
			fail("table4", err)
		}
		fmt.Println(experiments.FormatTable4(rows))
	}
	if run("table5") {
		rows, err := experiments.Table5()
		if err != nil {
			fail("table5", err)
		}
		fmt.Println(experiments.FormatTable5(rows))
	}
	if run("table6") {
		rows, err := experiments.Table6()
		if err != nil {
			fail("table6", err)
		}
		fmt.Println(experiments.FormatTable6(rows))
	}
	if run("table7") {
		rows, err := experiments.Table7()
		if err != nil {
			fail("table7", err)
		}
		nvram, err := experiments.Table7NVRAM()
		if err != nil {
			fail("table7-nvram", err)
		}
		rows = append(rows, nvram)
		out := experiments.FormatTable7(rows)
		fmt.Println(out + "(last row: outputs redirected to an NVRAM burst buffer, §5.3.5 what-if)")
		fmt.Println()
	}
	if run("table8") {
		rows, err := experiments.Table8()
		if err != nil {
			fail("table8", err)
		}
		fmt.Println(experiments.FormatTable8(rows))
	}
	if run("figure2") {
		cfg := experiments.Figure2Config{}
		if *quick {
			cfg = experiments.Figure2Config{Sizes: []int{1500, 3000, 6000}, StepsPerSample: 4}
		}
		r, err := experiments.Figure2(cfg)
		if err != nil {
			fail("figure2", err)
		}
		fmt.Println(experiments.FormatFigure2(r))
	}
	if run("figure4") {
		atoms := 4000
		if *quick {
			atoms = 3000
		}
		rows, err := experiments.Figure4(atoms)
		if err != nil {
			fail("figure4", err)
		}
		fmt.Println(experiments.FormatFigure4(rows))
	}
	if run("figure5") {
		rows, err := experiments.Figure5()
		if err != nil {
			fail("figure5", err)
		}
		fmt.Println(experiments.FormatFigure5(rows))
	}
	if run("ablations") {
		rows, err := experiments.MemorySweep()
		if err != nil {
			fail("ablations", err)
		}
		fmt.Println(experiments.FormatMemorySweep(rows))
		v, err := experiments.ValidateCoupling(0, 0, 0)
		if err != nil {
			fail("coupling-validation", err)
		}
		fmt.Println(experiments.FormatCouplingValidation(v))
	}
	if run("moldable") {
		var cands []moldable.Candidate
		for _, ranks := range []int{2048, 4096, 8192, 16384, 32768} {
			all := experiments.WaterIonsSpecs(ranks)
			cands = append(cands, moldable.Candidate{
				Ranks:         ranks,
				SimSecPerStep: experiments.WaterIonsSimSecPerStep(ranks),
				Specs:         []core.AnalysisSpec{all[0], all[1], all[3]},
			})
		}
		cfg := moldable.Config{Steps: 1000, ThresholdPct: 10, MemThreshold: 12 << 30}
		for _, obj := range []moldable.Objective{moldable.MaxScience, moldable.MaxSciencePerNodeHour, moldable.MinRuntime} {
			advice, err := moldable.Advise(machine.Mira(), cands, cfg, obj)
			if err != nil {
				fail("moldable", err)
			}
			fmt.Print(advice.String())
			fmt.Println()
		}
	}
	if run("solver") {
		min, max, err := experiments.SolverRuntime()
		if err != nil {
			fail("solver", err)
		}
		fmt.Printf("Solver runtime across Tables 5-6 instances: %v - %v (paper: 0.17 s - 1.36 s with CPLEX 12.6.1)\n", min, max)
	}
}
