// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them to stdout.
//
// Usage:
//
//	experiments [-only table5] [-quick] [-verify] [-golden dir]
//	            [-trace trace.json] [-metrics metrics.txt] [-workers n]
//
// -only selects a single experiment (table4..table8, figure2, figure4,
// figure5, ablations, moldable, solver); the default runs everything.
// -quick shrinks the measured (laptop-scale) experiments so the full suite
// finishes in seconds. -verify checks the scheduling experiments against the
// paper's published rows and exits nonzero on any mismatch. -golden writes
// the deterministic golden snapshots (the same files the regression test in
// internal/experiments compares against) to the given directory and exits.
// -trace records one span per experiment section as Chrome trace JSON;
// -metrics writes section counters and durations in Prometheus text format
// (or a JSON snapshot when the path ends in .json).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"insitu/internal/core"
	"insitu/internal/experiments"
	"insitu/internal/machine"
	"insitu/internal/milp"
	"insitu/internal/moldable"
	"insitu/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code: 0 ok, 1 failure,
// 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "run a single experiment (table4..table8, figure2, figure4, figure5, ablations, moldable, solver)")
	quick := fs.Bool("quick", false, "shrink measured experiments for a fast pass")
	verify := fs.Bool("verify", false, "check the scheduling experiments against the paper's published values and exit")
	golden := fs.String("golden", "", "write the golden snapshot files to this directory and exit")
	tracePath := fs.String("trace", "", "write the run as Chrome trace JSON (one span per experiment section)")
	metricsPath := fs.String("metrics", "", "write run metrics to this file (Prometheus text, or JSON with a .json suffix)")
	workers := fs.Int("workers", 1, "branch-and-bound worker count for the solver section (0 = all CPUs, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *golden != "" {
		if err := experiments.WriteGolden(*golden); err != nil {
			fmt.Fprintf(stderr, "experiments: golden: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote golden snapshots to %s\n", *golden)
		return 0
	}

	if *verify {
		checks, err := experiments.VerifyAll()
		if err != nil {
			fmt.Fprintf(stderr, "experiments: verify: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, experiments.FormatChecks(checks))
		for _, c := range checks {
			if !c.Pass {
				return 1
			}
		}
		return 0
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
		tracer.SetProcessName("experiments")
		tracer.SetTrackName(0, "sections")
	}
	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
	}

	// section runs one experiment when selected, as one trace span and one
	// duration observation. Both handles are nil-safe, so uninstrumented
	// runs take the same path. The first failure stops later sections.
	sectionErr := ""
	section := func(name string, fn func() error) {
		if sectionErr != "" || (*only != "" && *only != name) {
			return
		}
		sp := tracer.Begin(name, "experiment")
		t0 := time.Now()
		err := fn()
		dt := time.Since(t0)
		sp.End()
		if err != nil {
			sectionErr = fmt.Sprintf("experiments: %s: %v", name, err)
			return
		}
		reg.Counter("experiments_sections_total", nil).Inc()
		reg.Histogram("experiments_section_seconds", nil, obs.Labels{"section": name}).Observe(dt.Seconds())
	}

	section("table4", func() error {
		cfg := experiments.Table4Config{}
		if *quick {
			cfg = experiments.Table4Config{Atoms: []int{3000, 8000}, Steps: 30, OutputEvery: 10}
		}
		rows, err := experiments.Table4(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatTable4(rows))
		return nil
	})
	section("table5", func() error {
		rows, err := experiments.Table5()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatTable5(rows))
		return nil
	})
	section("table6", func() error {
		rows, err := experiments.Table6()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatTable6(rows))
		return nil
	})
	section("table7", func() error {
		rows, err := experiments.Table7()
		if err != nil {
			return err
		}
		nvram, err := experiments.Table7NVRAM()
		if err != nil {
			return fmt.Errorf("nvram: %w", err)
		}
		rows = append(rows, nvram)
		out := experiments.FormatTable7(rows)
		fmt.Fprintln(stdout, out+"(last row: outputs redirected to an NVRAM burst buffer, §5.3.5 what-if)")
		fmt.Fprintln(stdout)
		return nil
	})
	section("table8", func() error {
		rows, err := experiments.Table8()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatTable8(rows))
		return nil
	})
	section("figure2", func() error {
		cfg := experiments.Figure2Config{}
		if *quick {
			cfg = experiments.Figure2Config{Sizes: []int{1500, 3000, 6000}, StepsPerSample: 4}
		}
		r, err := experiments.Figure2(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatFigure2(r))
		return nil
	})
	section("figure4", func() error {
		atoms := 4000
		if *quick {
			atoms = 3000
		}
		rows, err := experiments.Figure4(atoms)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatFigure4(rows))
		return nil
	})
	section("figure5", func() error {
		rows, err := experiments.Figure5()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatFigure5(rows))
		return nil
	})
	section("ablations", func() error {
		rows, err := experiments.MemorySweep()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.FormatMemorySweep(rows))
		v, err := experiments.ValidateCoupling(0, 0, 0)
		if err != nil {
			return fmt.Errorf("coupling validation: %w", err)
		}
		fmt.Fprintln(stdout, experiments.FormatCouplingValidation(v))
		return nil
	})
	section("moldable", func() error {
		var cands []moldable.Candidate
		for _, ranks := range []int{2048, 4096, 8192, 16384, 32768} {
			all := experiments.WaterIonsSpecs(ranks)
			cands = append(cands, moldable.Candidate{
				Ranks:         ranks,
				SimSecPerStep: experiments.WaterIonsSimSecPerStep(ranks),
				Specs:         []core.AnalysisSpec{all[0], all[1], all[3]},
			})
		}
		cfg := moldable.Config{Steps: 1000, ThresholdPct: 10, MemThreshold: 12 << 30}
		for _, obj := range []moldable.Objective{moldable.MaxScience, moldable.MaxSciencePerNodeHour, moldable.MinRuntime} {
			advice, err := moldable.Advise(machine.Mira(), cands, cfg, obj)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, advice.String())
			fmt.Fprintln(stdout)
		}
		return nil
	})
	section("solver", func() error {
		min, max, err := experiments.SolverRuntime(milp.AutoWorkers(*workers))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Solver runtime across Tables 5-6 instances: %v - %v (paper: 0.17 s - 1.36 s with CPLEX 12.6.1)\n", min, max)
		return nil
	})

	if sectionErr != "" {
		fmt.Fprintln(stderr, sectionErr)
		return 1
	}

	if *tracePath != "" {
		if err := obs.WriteTraceFile(*tracePath, tracer); err != nil {
			fmt.Fprintf(stderr, "experiments: trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote trace (%d events) to %s\n", tracer.Len(), *tracePath)
	}
	if *metricsPath != "" {
		if err := obs.WriteMetricsFile(*metricsPath, reg); err != nil {
			fmt.Fprintf(stderr, "experiments: metrics: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote metrics to %s\n", *metricsPath)
	}
	return 0
}
