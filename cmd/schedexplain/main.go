// Command schedexplain explains a recommended in-situ schedule: it solves the
// same JSON problem description insitu-sched reads, then reports why each
// analysis runs at its frequency (binding resource and slack), what enabling
// each disabled analysis would cost (counterfactual re-solve, with a minimal
// conflicting-constraint set when forcing is impossible), the resource rows
// with their root-relaxation shadow prices, and the branch-and-bound search
// statistics.
//
// Usage:
//
//	schedexplain [-html report.html] [-tree tree.json] [-dot tree.dot]
//	             [-ledger run.jsonl] [-width n] [-max-nodes n] [-workers n]
//	             problem.json
//
// The terminal report always goes to stdout. -html additionally writes a
// self-contained HTML report, -tree/-dot export the recorded search tree
// (JSON / Graphviz), and -ledger aligns a JSONL run ledger (as written by
// obs.EventLog) against the plan, flagging count drift between planned and
// executed analysis steps.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"insitu/internal/core"
	"insitu/internal/explain"
	"insitu/internal/milp"
	"insitu/internal/obs"
	"insitu/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code: 0 ok, 1 failure,
// 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedexplain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	htmlOut := fs.String("html", "", "also write a self-contained HTML report to this file")
	treeOut := fs.String("tree", "", "write the branch-and-bound tree as JSON to this file")
	dotOut := fs.String("dot", "", "write the branch-and-bound tree as Graphviz DOT to this file")
	ledgerPath := fs.String("ledger", "", "align this JSONL run ledger against the plan")
	width := fs.Int("width", 100, "timeline width in characters")
	maxNodes := fs.Int("max-nodes", 0, "cap branch-and-bound nodes (0 = solver default)")
	workers := fs.Int("workers", 1, "branch-and-bound worker count (0 = all CPUs, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: schedexplain [-html report.html] [-tree tree.json] [-dot tree.dot] [-ledger run.jsonl] [-width n] [-max-nodes n] [-workers n] problem.json")
		return 2
	}

	specs, res, err := scenario.LoadSpecs(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "schedexplain: %v\n", err)
		return 1
	}
	r, err := explain.Build(specs, res, explain.Options{
		Solve:      core.SolveOptions{MaxNodes: *maxNodes, Workers: milp.AutoWorkers(*workers)},
		GanttWidth: *width,
	})
	if err != nil {
		fmt.Fprintf(stderr, "schedexplain: %v\n", err)
		return 1
	}

	if *ledgerPath != "" {
		events, err := obs.ReadLedgerFile(*ledgerPath)
		if err != nil {
			fmt.Fprintf(stderr, "schedexplain: %v\n", err)
			return 1
		}
		if len(events) == 0 {
			fmt.Fprintf(stderr, "schedexplain: ledger %s: no events\n", *ledgerPath)
			return 1
		}
		r.AlignLedger(events)
	}

	if err := r.WriteText(stdout); err != nil {
		fmt.Fprintf(stderr, "schedexplain: %v\n", err)
		return 1
	}

	artifacts := []struct {
		path  string
		write func(io.Writer) error
		kind  string
	}{
		{*htmlOut, r.WriteHTML, "HTML report"},
		{*treeOut, r.Recorder.WriteJSON, "search tree (JSON)"},
		{*dotOut, r.Recorder.WriteDOT, "search tree (DOT)"},
	}
	for _, a := range artifacts {
		if a.path == "" {
			continue
		}
		if err := writeArtifact(a.path, a.write); err != nil {
			fmt.Fprintf(stderr, "schedexplain: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s to %s\n", a.kind, a.path)
	}
	return 0
}

// writeArtifact writes one export through the given renderer, reporting the
// first of the render and close errors.
func writeArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
