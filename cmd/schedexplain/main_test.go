package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"insitu/internal/milp"
	"insitu/internal/obs"
)

// problemJSON is a two-analysis scenario: "light" fits the budget ten times,
// "heavy" cannot fit at all (30 s per step against a 5 s threshold), so the
// report exercises both the binding and the infeasible-counterfactual paths.
const problemJSON = `{
  "resources": {"steps": 1000, "time_threshold_sec": 5,
    "mem_threshold_bytes": 1073741824},
  "analyses": [
    {"name": "light", "ct_sec": 0.065, "ot_sec": 0.005, "fm_bytes": 1024, "min_interval": 100},
    {"name": "heavy", "ct_sec": 30, "ot_sec": 0.5, "fm_bytes": 2048, "min_interval": 100}
  ]
}`

func writeScenario(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "problem.json")
	if err := os.WriteFile(path, []byte(problemJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTerminalReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{writeScenario(t)}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"== schedule ==", "== attribution ==", "== search ==",
		"light", "heavy", "binding=", "infeasible", "time-threshold",
		"conflict: {time-threshold, force[heavy]}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunArtifacts(t *testing.T) {
	dir := t.TempDir()
	htmlPath := filepath.Join(dir, "report.html")
	treePath := filepath.Join(dir, "tree.json")
	dotPath := filepath.Join(dir, "tree.dot")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-html", htmlPath, "-tree", treePath, "-dot", dotPath, writeScenario(t)}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}

	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "<!DOCTYPE html>") || !strings.Contains(string(html), "heavy") {
		t.Errorf("html report incomplete")
	}

	tf, err := os.Open(treePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	tree, err := milp.ReadTree(tf)
	if err != nil {
		t.Fatalf("tree export does not round-trip: %v", err)
	}
	if len(tree.Nodes) == 0 {
		t.Error("tree export has no nodes")
	}

	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph bnb") {
		t.Errorf("dot export = %q", dot)
	}
}

func TestRunLedgerAlignment(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "run.jsonl")
	log, err := obs.OpenEventLog(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	log.Append(obs.LedgerEvent{Type: obs.LedgerRunStart, Name: "mini", TS: 1})
	log.Append(obs.LedgerEvent{Type: obs.LedgerStep, Step: 100, Dur: 500, TS: 2})
	log.Append(obs.LedgerEvent{Type: obs.LedgerAnalysis, Name: "light", Step: 100, Dur: 65000, TS: 3})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-ledger", ledgerPath, writeScenario(t)}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "planned vs executed") {
		t.Errorf("ledger section missing:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.json")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad json: exit %d", code)
	}
	// Empty ledger must fail with a one-line error, not render a bogus table.
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"-ledger", empty, writeScenario(t)}, &stdout, &stderr); code != 1 {
		t.Fatalf("empty ledger: exit %d", code)
	}
	if !strings.Contains(stderr.String(), "no events") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

// TestRunWorkersFlag pins the -workers contract: the parallel report reaches
// the same schedule and the same final incumbent as the serial one.
func TestRunWorkersFlag(t *testing.T) {
	path := writeScenario(t)
	var serial, par, stderr bytes.Buffer
	if code := run([]string{"-workers", "1", path}, &serial, &stderr); code != 0 {
		t.Fatalf("serial exit %d, stderr: %s", code, stderr.String())
	}
	if code := run([]string{"-workers", "8", path}, &par, &stderr); code != 0 {
		t.Fatalf("workers=8 exit %d, stderr: %s", code, stderr.String())
	}
	// The schedule and attribution sections are solver-width independent;
	// only the search statistics (node/pivot counts) and the measured solve
	// wall time may differ.
	solveRE := regexp.MustCompile(`solve=\S+`)
	sectionBefore := func(s string) string {
		i := strings.Index(s, "== search ==")
		if i < 0 {
			t.Fatalf("report missing search section:\n%s", s)
		}
		return solveRE.ReplaceAllString(s[:i], "solve=X")
	}
	if sectionBefore(serial.String()) != sectionBefore(par.String()) {
		t.Errorf("schedule sections differ between -workers 1 and 8:\nserial:\n%s\nparallel:\n%s",
			serial.String(), par.String())
	}
}
