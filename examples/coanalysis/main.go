// Co-analysis placement example (the paper's §6 future work, implemented in
// core.SolvePlacement): each analysis may run in-situ — consuming the
// simulation-site time budget — or on dedicated staging nodes, paying only a
// network transfer of its input at the simulation site. Expensive analyses
// with compact inputs offload; cheap analyses, and those whose inputs are
// the whole simulation state, stay in-situ.
//
// Run with:
//
//	go run ./examples/coanalysis
package main

import (
	"fmt"
	"log"

	"insitu/internal/core"
)

func main() {
	specs := []core.PlacementSpec{
		{
			// A cheap descriptive statistic: always best in-situ.
			AnalysisSpec:  core.AnalysisSpec{Name: "statistics", CT: 0.05, MinInterval: 100},
			TransferBytes: 512 << 20,
		},
		{
			// Expensive topological analysis over a reduced feature set:
			// 40 s of compute but only 2 GiB of input — a classic offload.
			AnalysisSpec:  core.AnalysisSpec{Name: "topology", CT: 40, FM: 8 << 30, MinInterval: 100},
			TransferBytes: 2 << 30,
		},
		{
			// Visualization needs the full field every time: the transfer
			// (100 GiB) costs more than rendering in place.
			AnalysisSpec:  core.AnalysisSpec{Name: "render", CT: 2.0, MinInterval: 100},
			TransferBytes: 100 << 30,
		},
	}
	res := core.PlacementResources{
		Resources: core.Resources{
			Steps:         1000,
			TimeThreshold: 30, // seconds at the simulation site
			MemThreshold:  16 << 30,
		},
		NetBandwidth:   2e9, // 2 GB/s to the staging nodes
		StageMemTotal:  64 << 30,
		StageTimeTotal: 600,
	}

	rec, err := core.SolvePlacement(specs, res, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objective %.0f; simulation site %.1fs of %.1fs, staging %.1fs of %.1fs\n\n",
		rec.Objective, rec.SimSiteTime, res.TimeThreshold, rec.StageTime, res.StageTimeTotal)
	for _, s := range rec.Schedules {
		if !s.Enabled {
			fmt.Printf("%-12s dropped (fits nowhere)\n", s.Name)
			continue
		}
		fmt.Printf("%-12s %-12s frequency %-3d sim-site %.2fs staging %.2fs\n",
			s.Name, s.Site, s.Count, s.SimSiteTime, s.StageTime)
	}
	fmt.Println("\nCompare with in-situ-only scheduling:")
	inSituOnly := make([]core.AnalysisSpec, len(specs))
	for i, p := range specs {
		inSituOnly[i] = p.AnalysisSpec
	}
	base, err := core.Solve(inSituOnly, res.Resources, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range base.Schedules {
		fmt.Printf("%-12s in-situ only: frequency %d\n", s.Name, s.Count)
	}
}
