// Campaign example: the full paper workflow through the campaign façade —
// plug a simulation and its analysis kernels in, pick a threshold policy,
// and get the profile → optimize → execute → report loop in two calls.
//
// Run with:
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"

	"insitu/internal/analysis"
	"insitu/internal/analysis/mdkernels"
	"insitu/internal/campaign"
	"insitu/internal/sim/md"
)

func main() {
	sys, err := md.NewWaterIons(md.Config{NAtoms: 3000, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	var kernels []analysis.Kernel
	rdf, err := mdkernels.NewHydroniumRDF(sys, mdkernels.RDFConfig{Ranks: 2})
	if err != nil {
		log.Fatal(err)
	}
	vacf, err := mdkernels.NewVACF(sys, 2)
	if err != nil {
		log.Fatal(err)
	}
	msd, err := mdkernels.NewMSD(sys, 2)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := mdkernels.NewStats(sys, 2)
	if err != nil {
		log.Fatal(err)
	}
	kernels = append(kernels, rdf, vacf, msd, stats)

	c, err := campaign.New(campaign.Config{
		Sim: campaign.SimFunc{
			AppName:  "water+ions",
			StepFn:   func() { sys.Step(0.002) },
			MemBytes: sys.MemoryBytes(),
		},
		Kernels:          kernels,
		Steps:            100,
		MinInterval:      10,
		ThresholdPercent: 10, // tolerate 10% overhead, the paper's usual knob
		Weights:          map[string]float64{"A4 msd": 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := c.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.Summary())
}
