// Post-processing vs in-situ example (the Table-4 scenario): run the MD
// mini-app, dump a trajectory, and compare the cost of reading it back for
// post-processing against analyzing in-situ during the run.
//
// Run with:
//
//	go run ./examples/postproc
package main

import (
	"fmt"
	"log"

	"insitu/internal/experiments"
	"insitu/internal/iosim"
)

func main() {
	rows, err := experiments.Table4(experiments.Table4Config{
		Atoms:       []int{3000, 12544},
		Steps:       60,
		OutputEvery: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatTable4(rows))

	fmt.Println("\nEvery row pays the read cost before post-processing can even start;")
	fmt.Println("the in-situ path analyzes the data while it is still in simulation memory.")

	// What the same read would cost at the paper's scale, through the
	// storage model: a 1B-atom trajectory frame on GPFS vs NVRAM.
	frame := int64(1e9) * 24 // 1B atoms x 3 coords x 8 bytes
	gpfs := iosim.SustainedGPFS()
	nvram := iosim.NVRAM()
	fmt.Printf("\nmodeled read of one 1B-atom frame: GPFS %.1fs, NVRAM %.3fs\n",
		gpfs.ReadTime(frame, 1).Seconds(), nvram.ReadTime(frame, 1).Seconds())
}
