// Moldable-jobs example (the Figure-5 scenario): the job scheduler may run
// the same 100M-atom simulation on anywhere from 2048 to 32768 ranks. As the
// rank count grows, the simulation gets faster, the 10% analysis budget
// shrinks with it, and the scheduler automatically throttles the
// non-scalable MSD analysis while keeping the scalable RDFs at full
// frequency.
//
// Run with:
//
//	go run ./examples/moldable
package main

import (
	"fmt"
	"log"
	"strings"

	"insitu/internal/core"
	"insitu/internal/machine"
	"insitu/internal/moldable"
)

func main() {
	mira := machine.Mira()
	// Published per-step times of the 100M-atom water+ions run (§5.3.3).
	simSec := map[int]float64{2048: 4.16, 4096: 2.12, 8192: 1.08, 16384: 0.61, 32768: 0.40}

	fmt.Println("ranks  nodes  diameter  threshold(s)  A1  A2  A4   A4-bar")
	for _, ranks := range []int{2048, 4096, 8192, 16384, 32768} {
		part, err := mira.PartitionForRanks(ranks)
		if err != nil {
			log.Fatal(err)
		}
		// Analysis profiles: RDFs strong-scale ~1/ranks from the 16384-rank
		// baseline; MSD does not scale (§5.3.3).
		scale := 16384.0 / float64(ranks)
		specs := []core.AnalysisSpec{
			{Name: "A1", CT: 0.0653 * scale, OT: 0.005 * scale, MinInterval: 100},
			{Name: "A2", CT: 0.0653 * scale, OT: 0.005 * scale, MinInterval: 100},
			{Name: "A4", CT: 25.85, OT: 0.05, FM: 4 << 30, MinInterval: 100},
		}
		res := core.Resources{
			Steps:         1000,
			TimeThreshold: core.PercentThreshold(simSec[ranks], 1000, 10),
			MemThreshold:  part.TotalMemory() / 64, // a slice of the partition memory
		}
		rec, err := core.Solve(specs, res, core.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		a4 := rec.Schedule("A4").Count
		fmt.Printf("%-6d %-6d %-9d %-13.1f %-3d %-3d %-3d  %s\n",
			ranks, part.Nodes, part.Diameter(), res.TimeThreshold,
			rec.Schedule("A1").Count, rec.Schedule("A2").Count, a4,
			strings.Repeat("#", a4))
	}
	fmt.Println("\nA1/A2 stay at the maximum frequency on every partition;")
	fmt.Println("the non-scaling A4 decays as the budget shrinks — Figure 5's shape.")

	// The moldable advisor ranks the candidate sizes for the scheduler.
	var cands []moldable.Candidate
	for _, ranks := range []int{2048, 4096, 8192, 16384, 32768} {
		scale := 16384.0 / float64(ranks)
		cands = append(cands, moldable.Candidate{
			Ranks:         ranks,
			SimSecPerStep: simSec[ranks],
			Specs: []core.AnalysisSpec{
				{Name: "A1", CT: 0.0653 * scale, OT: 0.005 * scale, MinInterval: 100},
				{Name: "A2", CT: 0.0653 * scale, OT: 0.005 * scale, MinInterval: 100},
				{Name: "A4", CT: 25.85, OT: 0.05, FM: 4 << 30, MinInterval: 100},
			},
		})
	}
	cfg := moldable.Config{Steps: 1000, ThresholdPct: 10, MemThreshold: 12 << 30}
	for _, obj := range []moldable.Objective{moldable.MaxScience, moldable.MaxSciencePerNodeHour, moldable.MinRuntime} {
		advice, err := moldable.Advise(mira, cands, cfg, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(advice.String())
		fmt.Printf("-> pick %d ranks\n", advice.Best.Ranks)
	}
}
