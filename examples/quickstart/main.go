// Quickstart: describe your analyses, describe your resources, solve, and
// read back the recommended in-situ schedule.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"insitu/internal/core"
)

func main() {
	// Two analyses with Table-1 style parameters: a cheap histogram and an
	// expensive temporal analysis that buffers data every step (im) and
	// flushes it at output steps.
	specs := []core.AnalysisSpec{
		{
			Name:        "histogram",
			CT:          0.02, // 20 ms per analysis step
			OT:          0.005,
			FM:          8 << 20,
			CM:          1 << 20,
			OM:          1 << 20,
			MinInterval: 10,
		},
		{
			Name:        "trajectory-msd",
			CT:          0.5,
			OT:          0.1,
			FM:          256 << 20,
			IM:          4 << 20, // buffers 4 MiB per simulation step
			CM:          32 << 20,
			OM:          16 << 20,
			MinInterval: 10,
		},
	}

	// The envelope: 500 simulation steps, 3 seconds of total analysis time
	// (e.g. 10% of a 30-second run), 1.5 GiB of memory for analyses.
	res := core.Resources{
		Steps:         500,
		TimeThreshold: 3.0,
		MemThreshold:  3 << 29,
	}

	rec, err := core.Solve(specs, res, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Recommended in-situ schedule:")
	fmt.Print(rec.String())
	fmt.Printf("threshold utilization: %.1f%%\n\n", rec.Utilization(res)*100)

	for _, s := range rec.Schedules {
		if !s.Enabled {
			fmt.Printf("%s: not schedulable within the envelope\n", s.Name)
			continue
		}
		fmt.Printf("%s: analyze at steps %v\n", s.Name, s.AnalysisSteps)
		fmt.Printf("%s: output  at steps %v\n", s.Name, s.OutputSteps)
	}

	// The Figure-1 coupling string for the first enabled schedule, over a
	// shorter horizon so it fits a terminal line.
	small := core.Resources{Steps: 40, TimeThreshold: 0.4}
	recSmall, err := core.Solve(specs, small, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range recSmall.Schedules {
		if s.Enabled {
			fmt.Printf("\ncoupling (40 steps, sim output every 10): %s\n",
				core.CouplingString(small, s, 10))
			break
		}
	}
}
