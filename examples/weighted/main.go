// Weighted-priorities example (the Table-8 scenario): the same three FLASH
// analyses are scheduled twice — once with equal importance and once with
// vorticity and the L2 norms prioritized — and the schedule shifts
// accordingly.
//
// Run with:
//
//	go run ./examples/weighted
package main

import (
	"fmt"
	"log"

	"insitu/internal/core"
)

func main() {
	base := []core.AnalysisSpec{
		{Name: "F1 vorticity", CT: 3.5, OT: 24.0, MinInterval: 100},
		{Name: "F2 L1 error norm", CT: 1.25, OT: 3.2, MinInterval: 100},
		{Name: "F3 L2 error norm", CT: 0.0023, OT: 0.0005, MinInterval: 100},
	}
	// 5% of the 870-second Sedov run.
	res := core.Resources{Steps: 1000, TimeThreshold: core.PercentThreshold(0.87, 1000, 5)}

	for _, scenario := range []struct {
		label   string
		weights [3]float64
	}{
		{"equal importance (1,1,1)", [3]float64{1, 1, 1}},
		{"prioritize F1 and F3 (2,1,2)", [3]float64{2, 1, 2}},
		{"F1 only matters (5,1,1)", [3]float64{5, 1, 1}},
	} {
		specs := append([]core.AnalysisSpec(nil), base...)
		for i := range specs {
			specs[i].Weight = scenario.weights[i]
		}
		rec, err := core.Solve(specs, res, core.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", scenario.label)
		for _, s := range rec.Schedules {
			fmt.Printf("  %-20s frequency %d\n", s.Name, s.Count)
		}
		fmt.Printf("  objective %.1f, budget used %.1f%%\n\n",
			rec.Objective, rec.Utilization(res)*100)
	}
}
