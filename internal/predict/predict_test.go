package predict

import (
	"testing"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/analysis/mdkernels"
	"insitu/internal/perfmodel"
	"insitu/internal/sim/md"
)

// syntheticPoints builds an exact affine cost surface: ct = (size/1e6 +
// scale/100) seconds, fm = 1000*size bytes.
func syntheticPoints() []Point {
	var pts []Point
	for _, n := range []float64{1000, 2000} {
		for _, s := range []float64{4, 8} {
			pts = append(pts, Point{
				Size:  n,
				Scale: s,
				Costs: analysis.Costs{
					Kernel: "synthetic",
					CT:     time.Duration((n/1e6 + s/100) * float64(time.Second)),
					FM:     int64(1000 * n),
					OM:     64,
				},
			})
		}
	}
	return pts
}

func TestFitAndPredictAffine(t *testing.T) {
	m, err := Fit("synthetic", syntheticPoints())
	if err != nil {
		t.Fatal(err)
	}
	// Interpolated point (1500, 6): ct = 1500/1e6 + 6/100 = 0.0615.
	spec := m.Predict(1500, 6, 10)
	if d := spec.CT - 0.0615; d > 1e-9 || d < -1e-9 {
		t.Fatalf("ct = %g, want 0.0615", spec.CT)
	}
	if spec.FM != 1_500_000 {
		t.Fatalf("fm = %d", spec.FM)
	}
	if spec.OM != 64 || spec.MinInterval != 10 || spec.Name != "synthetic" {
		t.Fatalf("spec = %+v", spec)
	}
	// Extrapolation to paper scale stays affine-exact.
	big := m.Predict(100e6, 16384, 100)
	want := 100e6/1e6 + 16384.0/100
	if d := big.CT - want; d > 1e-6 || d < -1e-6 {
		t.Fatalf("extrapolated ct = %g, want %g", big.CT, want)
	}
}

func TestPredictClampsNegative(t *testing.T) {
	pts := syntheticPoints()
	for i := range pts {
		pts[i].Costs.IT = -time.Second // pathological surface
	}
	m, err := Fit("neg", pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(1500, 6, 1).IT; got != 0 {
		t.Fatalf("negative interpolant not clamped: %g", got)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit("few", syntheticPoints()[:2]); err == nil {
		t.Fatal("expected too-few-points error")
	}
	// Incomplete grid: 3 corners only.
	if _, err := Fit("gap", append(syntheticPoints()[:3], Point{Size: 5000, Scale: 32})); err == nil {
		t.Fatal("expected grid-gap error")
	}
}

func TestProfileRealKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel measurement too heavy for -short")
	}
	model, err := Profile("A1 hydronium rdf",
		[]int{1000, 3000}, []int{1, 2}, 4, 2,
		func(size, scale int) (analysis.Kernel, func(), error) {
			sys, err := md.NewWaterIons(md.Config{NAtoms: size, Seed: 19})
			if err != nil {
				return nil, nil, err
			}
			k, err := mdkernels.NewHydroniumRDF(sys, mdkernels.RDFConfig{Bins: 64, Ranks: scale})
			if err != nil {
				return nil, nil, err
			}
			return k, func() { sys.Step(0.002) }, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	spec := model.Predict(2000, 2, 10)
	if spec.CT <= 0 {
		t.Fatalf("predicted ct = %g", spec.CT)
	}
	if spec.FM <= 0 {
		t.Fatalf("predicted fm = %d", spec.FM)
	}
	// Sanity: the prediction at an interior point is within a loose factor
	// of a direct measurement there (wall clocks are noisy in CI).
	sys, err := md.NewWaterIons(md.Config{NAtoms: 2000, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	k, err := mdkernels.NewHydroniumRDF(sys, mdkernels.RDFConfig{Bins: 64, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	costs, err := analysis.Measure(k, func() { sys.Step(0.002) }, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := perfmodel.RelError(spec.CT, costs.CT.Seconds())
	if e > 1.5 {
		t.Fatalf("prediction error %.0f%% is not even order-of-magnitude", e*100)
	}
}
