// Package predict operationalizes the paper's §4 performance-modeling
// pipeline as a reusable API: measure an analysis kernel's costs at a few
// (problem size, scale) configurations, fit bilinear surfaces per cost
// component, and predict the full Table-1 AnalysisSpec at any other
// configuration — including configurations far beyond what the measuring
// machine can run, which is exactly how the paper feeds Mira-scale inputs
// to its optimizer from a handful of profiled runs.
package predict

import (
	"fmt"

	"insitu/internal/analysis"
	"insitu/internal/core"
	"insitu/internal/perfmodel"
)

// Point is one measured configuration.
type Point struct {
	// Size is the problem size (atoms, cells, ...): the x-variable of §4.
	Size float64
	// Scale is the y-variable: process count for computation, network
	// diameter for communication-dominated kernels.
	Scale float64
	// Costs are the measured per-phase costs at this configuration.
	Costs analysis.Costs
}

// SpecModel fits one kernel's cost surfaces.
type SpecModel struct {
	Name   string
	ft, it *perfmodel.Bilinear
	ct, ot *perfmodel.Bilinear
	fm, im *perfmodel.Bilinear
	cm, om *perfmodel.Bilinear
}

// Fit builds a SpecModel from measurements covering a full rectilinear grid
// of (Size, Scale) values (at least 2x2).
func Fit(name string, points []Point) (*SpecModel, error) {
	if len(points) < 4 {
		return nil, fmt.Errorf("predict: %s needs at least a 2x2 grid, got %d points", name, len(points))
	}
	build := func(what string, get func(analysis.Costs) float64) (*perfmodel.Bilinear, error) {
		tab := perfmodel.NewTable(name + "/" + what)
		for _, p := range points {
			tab.Add(p.Size, p.Scale, get(p.Costs))
		}
		b, err := tab.Build()
		if err != nil {
			return nil, fmt.Errorf("predict: %s: %w", name, err)
		}
		return b, nil
	}
	m := &SpecModel{Name: name}
	var err error
	if m.ft, err = build("ft", func(c analysis.Costs) float64 { return c.FT.Seconds() }); err != nil {
		return nil, err
	}
	if m.it, err = build("it", func(c analysis.Costs) float64 { return c.IT.Seconds() }); err != nil {
		return nil, err
	}
	if m.ct, err = build("ct", func(c analysis.Costs) float64 { return c.CT.Seconds() }); err != nil {
		return nil, err
	}
	if m.ot, err = build("ot", func(c analysis.Costs) float64 { return c.OT.Seconds() }); err != nil {
		return nil, err
	}
	if m.fm, err = build("fm", func(c analysis.Costs) float64 { return float64(c.FM) }); err != nil {
		return nil, err
	}
	if m.im, err = build("im", func(c analysis.Costs) float64 { return float64(c.IM) }); err != nil {
		return nil, err
	}
	if m.cm, err = build("cm", func(c analysis.Costs) float64 { return float64(c.CM) }); err != nil {
		return nil, err
	}
	if m.om, err = build("om", func(c analysis.Costs) float64 { return float64(c.OM) }); err != nil {
		return nil, err
	}
	return m, nil
}

// Predict evaluates the fitted surfaces at (size, scale) and assembles the
// Table-1 spec. Negative interpolants (possible when extrapolating a noisy
// surface) are clamped to zero.
func (m *SpecModel) Predict(size, scale float64, minInterval int) core.AnalysisSpec {
	pos := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	}
	posB := func(v float64) int64 {
		if v < 0 {
			return 0
		}
		return int64(v)
	}
	return core.AnalysisSpec{
		Name:        m.Name,
		FT:          pos(m.ft.Predict(size, scale)),
		IT:          pos(m.it.Predict(size, scale)),
		CT:          pos(m.ct.Predict(size, scale)),
		OT:          pos(m.ot.Predict(size, scale)),
		FM:          posB(m.fm.Predict(size, scale)),
		IM:          posB(m.im.Predict(size, scale)),
		CM:          posB(m.cm.Predict(size, scale)),
		OM:          posB(m.om.Predict(size, scale)),
		MinInterval: minInterval,
	}
}

// Measurer produces a kernel plus its step function for a given problem
// size; Profile uses it to sweep the measurement grid.
type Measurer func(size int, scale int) (analysis.Kernel, func(), error)

// Profile measures the kernel at every (size, scale) grid combination and
// fits the model. probeSteps and interval parameterize analysis.Measure.
func Profile(name string, sizes, scales []int, probeSteps, interval int, mk Measurer) (*SpecModel, error) {
	var pts []Point
	for _, n := range sizes {
		for _, s := range scales {
			k, step, err := mk(n, s)
			if err != nil {
				return nil, fmt.Errorf("predict: building %s at (%d, %d): %w", name, n, s, err)
			}
			costs, err := analysis.Measure(k, step, probeSteps, interval)
			if err != nil {
				return nil, err
			}
			pts = append(pts, Point{Size: float64(n), Scale: float64(s), Costs: costs})
		}
	}
	return Fit(name, pts)
}
