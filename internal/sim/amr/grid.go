// Package amr is a block-structured compressible-hydrodynamics mini-app
// standing in for FLASH, the paper's second evaluation application. It
// solves the 3D compressible Euler equations with a first-order
// Godunov/HLL finite-volume scheme on a block-decomposed Cartesian grid —
// FLASH's Uniform Grid (UG) mode, which the paper names alongside PARAMESH —
// and evolves the Sedov blast problem from the FLASH distribution: a
// delta-function pressure perturbation expanding into a cold ambient medium.
//
// Blocks carry ghost layers exchanged before every update, and the problem
// size scales by the global number of blocks exactly as the paper describes
// ("we can vary the problem size by adjusting the global number of blocks").
// A gradient-based refinement marker reproduces the AMR selection logic of
// PARAMESH for structural experiments; the hydro update itself runs on the
// uniform grid.
package amr

import (
	"fmt"
	"runtime"
	"sync"
)

// Conserved variable indices.
const (
	Dens = iota // mass density
	MomX        // x momentum density
	MomY
	MomZ
	Ener // total energy density
	NumVars
)

// Block is one grid block of nb^3 interior cells plus one ghost layer.
type Block struct {
	Index [3]int // block coordinates in the block lattice
	U     [NumVars][]float64
	nb    int // interior cells per side
	w     int // width including ghosts = nb+2
}

// idx maps (i,j,k) in ghosted coordinates [0,w) to the flat offset.
func (b *Block) idx(i, j, k int) int { return (i*b.w+j)*b.w + k }

// Grid is the global block-structured domain.
type Grid struct {
	NBX, NBY, NBZ int // block lattice dimensions
	NB            int // interior cells per block side
	Dx            float64
	Gamma         float64
	CFL           float64
	Time          float64
	StepCount     int
	Blocks        []*Block
}

// Config controls grid construction.
type Config struct {
	BlocksX, BlocksY, BlocksZ int     // block lattice (default 4x4x4)
	NB                        int     // cells per block side (default 8; FLASH uses 16)
	Gamma                     float64 // ratio of specific heats (default 1.4)
	CFL                       float64 // Courant number (default 0.4)
	BoxSize                   float64 // physical domain edge (default 1.0)
}

func (c Config) withDefaults() Config {
	if c.BlocksX == 0 {
		c.BlocksX = 4
	}
	if c.BlocksY == 0 {
		c.BlocksY = c.BlocksX
	}
	if c.BlocksZ == 0 {
		c.BlocksZ = c.BlocksX
	}
	if c.NB == 0 {
		c.NB = 8
	}
	if c.Gamma == 0 {
		c.Gamma = 1.4
	}
	if c.CFL == 0 {
		c.CFL = 0.4
	}
	if c.BoxSize == 0 {
		c.BoxSize = 1.0
	}
	return c
}

// NewGrid builds an empty grid (all-zero state).
func NewGrid(cfg Config) (*Grid, error) {
	cfg = cfg.withDefaults()
	if cfg.NB < 4 {
		return nil, fmt.Errorf("amr: blocks need at least 4 cells per side, got %d", cfg.NB)
	}
	if cfg.BlocksX < 1 || cfg.BlocksY < 1 || cfg.BlocksZ < 1 {
		return nil, fmt.Errorf("amr: invalid block lattice %dx%dx%d", cfg.BlocksX, cfg.BlocksY, cfg.BlocksZ)
	}
	g := &Grid{
		NBX: cfg.BlocksX, NBY: cfg.BlocksY, NBZ: cfg.BlocksZ,
		NB:    cfg.NB,
		Dx:    cfg.BoxSize / float64(cfg.BlocksX*cfg.NB),
		Gamma: cfg.Gamma,
		CFL:   cfg.CFL,
	}
	n := g.NBX * g.NBY * g.NBZ
	g.Blocks = make([]*Block, n)
	w := g.NB + 2
	for bi := 0; bi < g.NBX; bi++ {
		for bj := 0; bj < g.NBY; bj++ {
			for bk := 0; bk < g.NBZ; bk++ {
				b := &Block{Index: [3]int{bi, bj, bk}, nb: g.NB, w: w}
				for v := 0; v < NumVars; v++ {
					b.U[v] = make([]float64, w*w*w)
				}
				g.Blocks[g.blockID(bi, bj, bk)] = b
			}
		}
	}
	return g, nil
}

func (g *Grid) blockID(bi, bj, bk int) int { return (bi*g.NBY+bj)*g.NBZ + bk }

// NumCells returns the number of interior cells in the whole domain.
func (g *Grid) NumCells() int {
	return g.NBX * g.NBY * g.NBZ * g.NB * g.NB * g.NB
}

// MemoryBytes estimates the resident bytes of the grid state, counting the
// ghosted storage of every mesh variable.
func (g *Grid) MemoryBytes() int64 {
	w := int64(g.NB + 2)
	return int64(len(g.Blocks)) * NumVars * w * w * w * 8
}

// CellCenter returns the physical coordinates of interior cell (i,j,k) of
// block b (interior indices in [0, NB)).
func (g *Grid) CellCenter(b *Block, i, j, k int) (x, y, z float64) {
	x = (float64(b.Index[0]*g.NB+i) + 0.5) * g.Dx
	y = (float64(b.Index[1]*g.NB+j) + 0.5) * g.Dx
	z = (float64(b.Index[2]*g.NB+k) + 0.5) * g.Dx
	return
}

// Primitive converts the conserved state at ghosted index n of block b to
// primitive variables (rho, u, v, w, p).
func (g *Grid) Primitive(b *Block, n int) (rho, u, v, w, p float64) {
	rho = b.U[Dens][n]
	if rho <= 0 {
		return rho, 0, 0, 0, 0
	}
	u = b.U[MomX][n] / rho
	v = b.U[MomY][n] / rho
	w = b.U[MomZ][n] / rho
	kin := 0.5 * rho * (u*u + v*v + w*w)
	p = (g.Gamma - 1) * (b.U[Ener][n] - kin)
	return
}

// NewSedov builds the Sedov blast problem from the FLASH distribution:
// ambient gas at rho=1 with negligible pressure, and blast energy E
// deposited in a small sphere at the domain center.
func NewSedov(cfg Config) (*Grid, error) {
	g, err := NewGrid(cfg)
	if err != nil {
		return nil, err
	}
	const (
		rhoAmb = 1.0
		pAmb   = 1e-5
		eBlast = 1.0
	)
	rInit := 3.5 * g.Dx
	center := float64(g.NBX*g.NB) * g.Dx / 2
	// Count the cells whose centers fall inside the initial sphere so the
	// deposited energy integrates to exactly eBlast on the discrete grid.
	inside := 0
	for _, b := range g.Blocks {
		for i := 0; i < g.NB; i++ {
			for j := 0; j < g.NB; j++ {
				for k := 0; k < g.NB; k++ {
					x, y, z := g.CellCenter(b, i, j, k)
					if (x-center)*(x-center)+(y-center)*(y-center)+(z-center)*(z-center) < rInit*rInit {
						inside++
					}
				}
			}
		}
	}
	if inside == 0 {
		return nil, fmt.Errorf("amr: initial blast sphere contains no cell centers (grid too coarse)")
	}
	cellVol := g.Dx * g.Dx * g.Dx
	pBlast := (g.Gamma - 1) * eBlast / (float64(inside) * cellVol)

	for _, b := range g.Blocks {
		for i := 0; i < g.NB; i++ {
			for j := 0; j < g.NB; j++ {
				for k := 0; k < g.NB; k++ {
					x, y, z := g.CellCenter(b, i, j, k)
					dx2 := (x-center)*(x-center) + (y-center)*(y-center) + (z-center)*(z-center)
					p := pAmb
					if dx2 < rInit*rInit {
						p = pBlast
					}
					n := b.idx(i+1, j+1, k+1)
					b.U[Dens][n] = rhoAmb
					b.U[Ener][n] = p / (g.Gamma - 1)
				}
			}
		}
	}
	g.FillGhosts()
	return g, nil
}

// AmbientPressure is the Sedov background pressure, used by error-norm
// analyses as the reference state.
const AmbientPressure = 1e-5

// AmbientDensity is the Sedov background density.
const AmbientDensity = 1.0

// FillGhosts copies neighboring interior data into every block's ghost
// layer; domain boundaries get zero-gradient (outflow) values.
func (g *Grid) FillGhosts() {
	parallelBlocks(len(g.Blocks), func(id int) {
		g.fillGhostsBlock(g.Blocks[id])
	})
}

func (g *Grid) neighbor(b *Block, di, dj, dk int) *Block {
	ni, nj, nk := b.Index[0]+di, b.Index[1]+dj, b.Index[2]+dk
	if ni < 0 || ni >= g.NBX || nj < 0 || nj >= g.NBY || nk < 0 || nk >= g.NBZ {
		return nil
	}
	return g.Blocks[g.blockID(ni, nj, nk)]
}

// fillGhostsBlock fills all six ghost faces of block b (face ghosts only;
// the first-order scheme does not use edge or corner ghosts).
func (g *Grid) fillGhostsBlock(b *Block) {
	nb, w := b.nb, b.w
	for v := 0; v < NumVars; v++ {
		u := b.U[v]
		// -x / +x faces.
		for _, face := range []struct {
			ghost, inner int // ghosted i of ghost cell and fallback interior
			nbr          *Block
			nbrI         int // ghosted i in the neighbor providing data
		}{
			{0, 1, g.neighbor(b, -1, 0, 0), nb},
			{w - 1, w - 2, g.neighbor(b, 1, 0, 0), 1},
		} {
			for j := 1; j <= nb; j++ {
				for k := 1; k <= nb; k++ {
					var val float64
					if face.nbr != nil {
						val = face.nbr.U[v][face.nbr.idx(face.nbrI, j, k)]
					} else {
						val = u[b.idx(face.inner, j, k)]
					}
					u[b.idx(face.ghost, j, k)] = val
				}
			}
		}
		// -y / +y faces.
		for _, face := range []struct {
			ghost, inner int
			nbr          *Block
			nbrJ         int
		}{
			{0, 1, g.neighbor(b, 0, -1, 0), nb},
			{w - 1, w - 2, g.neighbor(b, 0, 1, 0), 1},
		} {
			for i := 1; i <= nb; i++ {
				for k := 1; k <= nb; k++ {
					var val float64
					if face.nbr != nil {
						val = face.nbr.U[v][face.nbr.idx(i, face.nbrJ, k)]
					} else {
						val = u[b.idx(i, face.inner, k)]
					}
					u[b.idx(i, face.ghost, k)] = val
				}
			}
		}
		// -z / +z faces.
		for _, face := range []struct {
			ghost, inner int
			nbr          *Block
			nbrK         int
		}{
			{0, 1, g.neighbor(b, 0, 0, -1), nb},
			{w - 1, w - 2, g.neighbor(b, 0, 0, 1), 1},
		} {
			for i := 1; i <= nb; i++ {
				for j := 1; j <= nb; j++ {
					var val float64
					if face.nbr != nil {
						val = face.nbr.U[v][face.nbr.idx(i, j, face.nbrK)]
					} else {
						val = u[b.idx(i, j, face.inner)]
					}
					u[b.idx(i, j, face.ghost)] = val
				}
			}
		}
	}
}

// parallelBlocks runs fn over block ids with a bounded worker pool.
func parallelBlocks(n int, fn func(id int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ch {
				fn(id)
			}
		}()
	}
	wg.Wait()
}
