package amr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Checkpoint I/O: FLASH periodically writes its full mesh state (the 91 GB
// outputs of Table 7 are exactly such dumps). The format is a flat binary
// stream — header, then every block's interior cells for every variable —
// so the on-disk size matches the NumCells x NumVars x 8 bytes the storage
// model (iosim) prices.

var ckptMagic = [8]byte{'I', 'S', 'C', 'K', 'P', 'T', '1', '\n'}

// WriteCheckpoint serializes the grid state (interior cells only; ghosts are
// reconstructable) to w and returns the bytes written.
func (g *Grid) WriteCheckpoint(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(data interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if err := put(ckptMagic); err != nil {
		return written, err
	}
	hdr := []int64{int64(g.NBX), int64(g.NBY), int64(g.NBZ), int64(g.NB), int64(g.StepCount)}
	if err := put(hdr); err != nil {
		return written, err
	}
	phys := []float64{g.Dx, g.Gamma, g.CFL, g.Time}
	if err := put(phys); err != nil {
		return written, err
	}
	buf := make([]float64, g.NB*g.NB*g.NB)
	for _, b := range g.Blocks {
		for v := 0; v < NumVars; v++ {
			pos := 0
			for i := 1; i <= g.NB; i++ {
				for j := 1; j <= g.NB; j++ {
					for k := 1; k <= g.NB; k++ {
						buf[pos] = b.U[v][b.idx(i, j, k)]
						pos++
					}
				}
			}
			if err := put(buf); err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadCheckpoint reconstructs a grid from a checkpoint stream.
func ReadCheckpoint(r io.Reader) (*Grid, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("amr: reading checkpoint magic: %w", err)
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("amr: not a checkpoint stream")
	}
	hdr := make([]int64, 5)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("amr: reading checkpoint header: %w", err)
	}
	phys := make([]float64, 4)
	if err := binary.Read(br, binary.LittleEndian, phys); err != nil {
		return nil, fmt.Errorf("amr: reading checkpoint physics: %w", err)
	}
	nbx, nby, nbz, nb := int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3])
	if nbx < 1 || nby < 1 || nbz < 1 || nb < 4 || nb > 1<<10 {
		return nil, fmt.Errorf("amr: corrupt checkpoint geometry %dx%dx%d nb=%d", nbx, nby, nbz, nb)
	}
	g, err := NewGrid(Config{
		BlocksX: nbx, BlocksY: nby, BlocksZ: nbz, NB: nb,
		Gamma: phys[1], CFL: phys[2],
		BoxSize: phys[0] * float64(nbx*nb),
	})
	if err != nil {
		return nil, err
	}
	g.StepCount = int(hdr[4])
	g.Time = phys[3]
	if math.Abs(g.Dx-phys[0]) > 1e-12*phys[0] {
		return nil, fmt.Errorf("amr: checkpoint dx mismatch: %g vs %g", g.Dx, phys[0])
	}
	buf := make([]float64, nb*nb*nb)
	for _, b := range g.Blocks {
		for v := 0; v < NumVars; v++ {
			if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
				return nil, fmt.Errorf("amr: truncated checkpoint at block %v: %w", b.Index, err)
			}
			pos := 0
			for i := 1; i <= nb; i++ {
				for j := 1; j <= nb; j++ {
					for k := 1; k <= nb; k++ {
						b.U[v][b.idx(i, j, k)] = buf[pos]
						pos++
					}
				}
			}
		}
	}
	g.FillGhosts()
	return g, nil
}

// CheckpointBytes returns the on-disk size of one checkpoint.
func (g *Grid) CheckpointBytes() int64 {
	return 8 + 5*8 + 4*8 + int64(g.NumCells())*NumVars*8
}

// WriteCheckpointFile writes a checkpoint to the named file.
func (g *Grid) WriteCheckpointFile(path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := g.WriteCheckpoint(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// ReadCheckpointFile reads a checkpoint from the named file.
func ReadCheckpointFile(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
