package amr

// Mesh refinement operators. FLASH's PARAMESH refines 2:1 per block; this
// uniform-grid mini-app provides the equivalent global operators — the paper
// scales its FLASH problem "by adjusting the global number of blocks", which
// is exactly what RefineGlobally/CoarsenGlobally do — plus the per-block
// RefineMarks criterion in hydro.go that a full AMR driver would feed.

// RefineGlobally returns a new grid with twice the resolution in every
// dimension: each block splits into 8 children at half the cell size.
// Prolongation is piecewise-constant injection, which conserves every
// integrated quantity exactly.
func (g *Grid) RefineGlobally() (*Grid, error) {
	fine, err := NewGrid(Config{
		BlocksX: g.NBX * 2, BlocksY: g.NBY * 2, BlocksZ: g.NBZ * 2,
		NB:      g.NB,
		Gamma:   g.Gamma,
		CFL:     g.CFL,
		BoxSize: g.Dx * float64(g.NBX*g.NB),
	})
	if err != nil {
		return nil, err
	}
	fine.Time = g.Time
	fine.StepCount = g.StepCount

	for _, fb := range fine.Blocks {
		for i := 0; i < fine.NB; i++ {
			for j := 0; j < fine.NB; j++ {
				for k := 0; k < fine.NB; k++ {
					// Global fine cell -> parent coarse cell.
					gi := fb.Index[0]*fine.NB + i
					gj := fb.Index[1]*fine.NB + j
					gk := fb.Index[2]*fine.NB + k
					ci, cj, ck := gi/2, gj/2, gk/2
					cb := g.Blocks[g.blockID(ci/g.NB, cj/g.NB, ck/g.NB)]
					cn := cb.idx(ci%g.NB+1, cj%g.NB+1, ck%g.NB+1)
					fn := fb.idx(i+1, j+1, k+1)
					for v := 0; v < NumVars; v++ {
						fb.U[v][fn] = cb.U[v][cn]
					}
				}
			}
		}
	}
	fine.FillGhosts()
	return fine, nil
}

// CoarsenGlobally returns a new grid with half the resolution: every 2x2x2
// group of fine cells averages into one coarse cell (conservative
// restriction). The block lattice dimensions must be even.
func (g *Grid) CoarsenGlobally() (*Grid, error) {
	coarse, err := NewGrid(Config{
		BlocksX: g.NBX / 2, BlocksY: g.NBY / 2, BlocksZ: g.NBZ / 2,
		NB:      g.NB,
		Gamma:   g.Gamma,
		CFL:     g.CFL,
		BoxSize: g.Dx * float64(g.NBX*g.NB),
	})
	if err != nil {
		return nil, err
	}
	coarse.Time = g.Time
	coarse.StepCount = g.StepCount

	for _, cb := range coarse.Blocks {
		for i := 0; i < coarse.NB; i++ {
			for j := 0; j < coarse.NB; j++ {
				for k := 0; k < coarse.NB; k++ {
					gi := cb.Index[0]*coarse.NB + i
					gj := cb.Index[1]*coarse.NB + j
					gk := cb.Index[2]*coarse.NB + k
					cn := cb.idx(i+1, j+1, k+1)
					for v := 0; v < NumVars; v++ {
						sum := 0.0
						for di := 0; di < 2; di++ {
							for dj := 0; dj < 2; dj++ {
								for dk := 0; dk < 2; dk++ {
									fi, fj, fk := gi*2+di, gj*2+dj, gk*2+dk
									fb := g.Blocks[g.blockID(fi/g.NB, fj/g.NB, fk/g.NB)]
									sum += fb.U[v][fb.idx(fi%g.NB+1, fj%g.NB+1, fk%g.NB+1)]
								}
							}
						}
						cb.U[v][cn] = sum / 8
					}
				}
			}
		}
	}
	coarse.FillGhosts()
	return coarse, nil
}
