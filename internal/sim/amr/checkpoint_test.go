package amr

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	g := sedov(t, 3, 6)
	g.Run(7)
	var buf bytes.Buffer
	n, err := g.WriteCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != g.CheckpointBytes() {
		t.Fatalf("wrote %d bytes, model says %d", n, g.CheckpointBytes())
	}
	if int64(buf.Len()) != n {
		t.Fatalf("buffer %d != reported %d", buf.Len(), n)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Time != g.Time || back.StepCount != g.StepCount || back.Gamma != g.Gamma {
		t.Fatalf("metadata lost: %+v", back)
	}
	for id := range g.Blocks {
		for v := 0; v < NumVars; v++ {
			for i := 1; i <= g.NB; i++ {
				for j := 1; j <= g.NB; j++ {
					for k := 1; k <= g.NB; k++ {
						n := g.Blocks[id].idx(i, j, k)
						if g.Blocks[id].U[v][n] != back.Blocks[id].U[v][n] {
							t.Fatalf("cell mismatch at block %d var %d", id, v)
						}
					}
				}
			}
		}
	}
}

func TestCheckpointRestartContinuesIdentically(t *testing.T) {
	// Run 5+5 steps with a checkpoint/restart in the middle and compare to
	// an uninterrupted 10-step run: bit-identical.
	ref := sedov(t, 2, 6)
	ref.Run(10)

	g := sedov(t, 2, 6)
	g.Run(5)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if _, err := g.WriteCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restored.Run(5)
	if restored.Time != ref.Time {
		t.Fatalf("time %g vs %g", restored.Time, ref.Time)
	}
	for id := range ref.Blocks {
		for v := 0; v < NumVars; v++ {
			for n := range ref.Blocks[id].U[v] {
				if ref.Blocks[id].U[v][n] != restored.Blocks[id].U[v][n] {
					t.Fatalf("restart diverged at block %d var %d cell %d", id, v, n)
				}
			}
		}
	}
}

func TestCheckpointCorruption(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("expected magic error")
	}
	g := sedov(t, 2, 6)
	var buf bytes.Buffer
	if _, err := g.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadCheckpoint(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
	if _, err := ReadCheckpointFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected open error")
	}
	if err := os.WriteFile(filepath.Join(t.TempDir(), "x"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSedovReferenceAgainstSimulation(t *testing.T) {
	// The simulated shock radius should track xi0 (E t^2/rho)^(1/5) within
	// the smearing of a first-order scheme on a coarse grid.
	g := sedov(t, 4, 10)
	ref := NewSedovReference(g.Gamma)
	for g.Time < 0.04 {
		g.StepCFL()
	}
	want := ref.ShockRadius(g.Time)
	got := g.ShockRadius()
	if math.Abs(got-want) > 0.35*want {
		t.Fatalf("shock radius %g vs Sedov-Taylor %g at t=%g", got, want, g.Time)
	}
	// Post-shock density cannot exceed the strong-shock limit (6x for
	// gamma=1.4); numerical diffusion keeps it below.
	peak := 0.0
	for _, b := range g.Blocks {
		for i := 1; i <= b.nb; i++ {
			for j := 1; j <= b.nb; j++ {
				for k := 1; k <= b.nb; k++ {
					if d := b.U[Dens][b.idx(i, j, k)]; d > peak {
						peak = d
					}
				}
			}
		}
	}
	limit := ref.PostShockDensity()
	if peak > limit*1.05 {
		t.Fatalf("peak density %g exceeds the strong-shock limit %g", peak, limit)
	}
	if peak < AmbientDensity*1.2 {
		t.Fatalf("peak density %g shows no compression", peak)
	}
}

func TestSedovReferenceProperties(t *testing.T) {
	ref := NewSedovReference(1.4)
	if math.Abs(ref.Xi0-1.1527) > 1e-12 {
		t.Fatalf("xi0(1.4) = %g", ref.Xi0)
	}
	if ref.ShockRadius(0) != 0 {
		t.Fatal("R(0) must be 0")
	}
	// R ~ t^(2/5) exactly.
	r1, r2 := ref.ShockRadius(0.01), ref.ShockRadius(0.02)
	if math.Abs(r2/r1-math.Pow(2, 0.4)) > 1e-12 {
		t.Fatalf("similarity scaling broken: %g", r2/r1)
	}
	// Shock decelerates; post-shock pressure decays.
	if ref.ShockSpeed(0.02) >= ref.ShockSpeed(0.01) {
		t.Fatal("shock must decelerate")
	}
	if ref.PostShockPressure(0.02) >= ref.PostShockPressure(0.01) {
		t.Fatal("post-shock pressure must decay")
	}
	if math.Abs(ref.PostShockDensity()-6) > 1e-12 {
		t.Fatalf("gamma=1.4 compression = %g, want 6", ref.PostShockDensity())
	}
	// xi0 interpolation: monotone pieces, clamped ends.
	if xi0(1.0) != xi0(1.2) {
		t.Fatal("low-gamma clamp broken")
	}
	if xi0(3.0) != xi0(2.0) {
		t.Fatal("high-gamma clamp broken")
	}
	mid := xi0(1.35)
	if mid <= xi0(1.3) || mid >= xi0(1.4) {
		t.Fatalf("interpolated xi0(1.35) = %g outside bracket", mid)
	}
}
