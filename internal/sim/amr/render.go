package amr

import (
	"math"
	"strings"
)

// RenderSlice draws an ASCII density map of the z-midplane — the quick-look
// visualization a scientist steering a Sedov run would inspect (§3.2 notes
// in-situ output lets researchers "check behavior of a running simulation").
// Density maps to a character ramp from vacuum to the strong-shock limit.
func (g *Grid) RenderSlice(width, height int) string {
	if width < 1 {
		width = 48
	}
	if height < 1 {
		height = 24
	}
	ramp := []byte(" .:-=+*#%@")
	nx := g.NBX * g.NB
	ny := g.NBY * g.NB
	kMid := g.NBZ * g.NB / 2

	// Sample the physical grid onto the character grid.
	cell := func(i, j int) float64 {
		b := g.Blocks[g.blockID(i/g.NB, j/g.NB, kMid/g.NB)]
		return b.U[Dens][b.idx(i%g.NB+1, j%g.NB+1, kMid%g.NB+1)]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			d := cell(i, j)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}

	var b strings.Builder
	b.Grow((width + 1) * height)
	for r := height - 1; r >= 0; r-- {
		j := r * ny / height
		for c := 0; c < width; c++ {
			i := c * nx / width
			t := (cell(i, j) - lo) / (hi - lo)
			idx := int(t * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
