package amr

// Exported block accessors used by analysis kernels (package amrkernels),
// which need raw cell access plus strides for finite-difference stencils.

// NBCells returns the number of interior cells per block side.
func (b *Block) NBCells() int { return b.nb }

// Width returns the ghosted width (NBCells + 2).
func (b *Block) Width() int { return b.w }

// Idx returns the flat index of ghosted coordinates (i, j, k), each in
// [0, Width). Interior cells occupy [1, Width-1).
func (b *Block) Idx(i, j, k int) int { return b.idx(i, j, k) }

// Stride returns the flat-index stride along dimension dim (0=x, 1=y, 2=z).
func (b *Block) Stride(dim int) int {
	switch dim {
	case 0:
		return b.w * b.w
	case 1:
		return b.w
	default:
		return 1
	}
}
