package amr

import "math"

// SedovReference is the analytic Sedov-Taylor point-blast reference the
// FLASH error norms compare against: the self-similar shock radius
//
//	R(t) = xi0 * (E t^2 / rho)^(1/5)
//
// and the strong-shock Rankine-Hugoniot jump conditions immediately behind
// the front. xi0 depends on gamma through the similarity integral; the
// standard gamma=1.4 value is 1.1527 (Sedov 1959), and nearby gammas use the
// energy-integral approximation.
type SedovReference struct {
	Energy float64 // blast energy E
	Rho    float64 // ambient density
	Gamma  float64
	Xi0    float64
}

// NewSedovReference builds the reference for the bundled Sedov setup
// (E = 1, rho = 1) at the given gamma.
func NewSedovReference(gamma float64) *SedovReference {
	return &SedovReference{Energy: 1, Rho: 1, Gamma: gamma, Xi0: xi0(gamma)}
}

// xi0 returns the similarity constant. Tabulated values bracket the common
// range; interpolation covers the rest (error well under 1%).
func xi0(gamma float64) float64 {
	// (gamma, xi0) pairs from the standard Sedov tables.
	pts := [][2]float64{
		{1.2, 0.9756}, {1.3, 1.0746}, {1.4, 1.1527}, {5.0 / 3.0, 1.1517}, {2.0, 1.1283},
	}
	if gamma <= pts[0][0] {
		return pts[0][1]
	}
	for i := 1; i < len(pts); i++ {
		if gamma <= pts[i][0] {
			f := (gamma - pts[i-1][0]) / (pts[i][0] - pts[i-1][0])
			return pts[i-1][1] + f*(pts[i][1]-pts[i-1][1])
		}
	}
	return pts[len(pts)-1][1]
}

// ShockRadius returns R(t).
func (s *SedovReference) ShockRadius(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return s.Xi0 * math.Pow(s.Energy*t*t/s.Rho, 0.2)
}

// ShockSpeed returns dR/dt = (2/5) R(t)/t.
func (s *SedovReference) ShockSpeed(t float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return 0.4 * s.ShockRadius(t) / t
}

// PostShockDensity returns the strong-shock density immediately behind the
// front: rho1 (gamma+1)/(gamma-1) — 6x ambient for gamma = 1.4.
func (s *SedovReference) PostShockDensity() float64 {
	return s.Rho * (s.Gamma + 1) / (s.Gamma - 1)
}

// PostShockPressure returns the strong-shock pressure behind the front at
// time t: 2 rho1 us^2 / (gamma+1).
func (s *SedovReference) PostShockPressure(t float64) float64 {
	us := s.ShockSpeed(t)
	return 2 * s.Rho * us * us / (s.Gamma + 1)
}
