package amr

import (
	"math"
	"testing"
)

func TestDistributedMatchesSerialExactly(t *testing.T) {
	// The distributed path uses the same stepBlock arithmetic with ghost
	// values identical to the serial fill, so results must match bit for
	// bit at every rank count.
	ref := sedov(t, 4, 6)
	ref.Run(6)
	for _, ranks := range []int{1, 2, 3, 4} {
		g := sedov(t, 4, 6)
		if err := g.RunDistributed(ranks, 6); err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if g.StepCount != ref.StepCount {
			t.Fatalf("ranks=%d: steps %d vs %d", ranks, g.StepCount, ref.StepCount)
		}
		if math.Abs(g.Time-ref.Time) > 1e-15 {
			t.Fatalf("ranks=%d: time %g vs %g", ranks, g.Time, ref.Time)
		}
		for id := range g.Blocks {
			for v := 0; v < NumVars; v++ {
				gb, rb := g.Blocks[id], ref.Blocks[id]
				for i := 1; i <= gb.nb; i++ {
					for j := 1; j <= gb.nb; j++ {
						for k := 1; k <= gb.nb; k++ {
							n := gb.idx(i, j, k)
							if gb.U[v][n] != rb.U[v][n] {
								t.Fatalf("ranks=%d: block %d var %d cell (%d,%d,%d): %g vs %g",
									ranks, id, v, i, j, k, gb.U[v][n], rb.U[v][n])
							}
						}
					}
				}
			}
		}
	}
}

func TestDistributedValidation(t *testing.T) {
	g := sedov(t, 2, 6)
	if err := g.RunDistributed(0, 1); err == nil {
		t.Fatal("expected rank-count error")
	}
	if err := g.RunDistributed(5, 1); err == nil {
		t.Fatal("expected too-many-ranks error")
	}
}

func TestSlabRangeCoversLattice(t *testing.T) {
	g := sedov(t, 5, 6)
	for _, ranks := range []int{1, 2, 3, 5} {
		covered := make([]bool, g.NBX)
		for id := 0; id < ranks; id++ {
			lo, hi := g.slabRange(id, ranks)
			if hi <= lo {
				t.Fatalf("ranks=%d id=%d: empty slab [%d,%d)", ranks, id, lo, hi)
			}
			for x := lo; x < hi; x++ {
				if covered[x] {
					t.Fatalf("ranks=%d: column %d assigned twice", ranks, x)
				}
				covered[x] = true
			}
		}
		for x, c := range covered {
			if !c {
				t.Fatalf("ranks=%d: column %d unassigned", ranks, x)
			}
		}
	}
}

func TestDistributedConservesMass(t *testing.T) {
	g := sedov(t, 3, 8)
	m0 := g.TotalMass()
	if err := g.RunDistributed(3, 8); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.TotalMass()-m0)/m0 > 1e-9 {
		t.Fatalf("mass drift: %g -> %g", m0, g.TotalMass())
	}
}
