package amr

import (
	"math"
	"strings"
	"testing"
)

func sedov(t *testing.T, blocks, nb int) *Grid {
	t.Helper()
	g, err := NewSedov(Config{BlocksX: blocks, NB: nb})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridGeometry(t *testing.T) {
	g := sedov(t, 3, 8)
	if got := g.NumCells(); got != 27*512 {
		t.Fatalf("cells = %d", got)
	}
	if len(g.Blocks) != 27 {
		t.Fatalf("blocks = %d", len(g.Blocks))
	}
	if math.Abs(g.Dx*float64(3*8)-1.0) > 1e-12 {
		t.Fatalf("domain size = %g", g.Dx*24)
	}
	if g.MemoryBytes() <= 0 {
		t.Fatal("memory estimate must be positive")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewGrid(Config{NB: 2}); err == nil {
		t.Fatal("expected NB error")
	}
	if _, err := NewGrid(Config{BlocksX: -1}); err == nil {
		t.Fatal("expected lattice error")
	}
}

func TestSedovInitialState(t *testing.T) {
	g := sedov(t, 4, 8)
	// Mass = rho * volume = 1.
	if m := g.TotalMass(); math.Abs(m-1) > 1e-9 {
		t.Fatalf("initial mass = %g, want 1", m)
	}
	// Blast energy ~1 plus tiny ambient internal energy.
	e := g.TotalEnergy()
	if e < 0.9 || e > 1.2 {
		t.Fatalf("initial energy = %g, want ~1", e)
	}
	// Pressure peak at center.
	var center *Block
	for _, b := range g.Blocks {
		if b.Index == [3]int{2, 2, 2} {
			center = b
		}
	}
	_, _, _, _, p := g.Primitive(center, center.idx(1, 1, 1))
	if p <= AmbientPressure {
		t.Fatalf("central pressure %g not above ambient", p)
	}
}

func TestMassConservedBeforeShockExits(t *testing.T) {
	g := sedov(t, 3, 8)
	m0 := g.TotalMass()
	e0 := g.TotalEnergy()
	g.Run(10)
	m1 := g.TotalMass()
	e1 := g.TotalEnergy()
	if math.Abs(m1-m0)/m0 > 1e-6 {
		t.Fatalf("mass drift: %g -> %g", m0, m1)
	}
	if math.Abs(e1-e0)/e0 > 1e-6 {
		t.Fatalf("energy drift: %g -> %g", e0, e1)
	}
}

func TestDensityStaysPositive(t *testing.T) {
	g := sedov(t, 3, 8)
	g.Run(20)
	for _, b := range g.Blocks {
		for i := 1; i <= b.nb; i++ {
			for j := 1; j <= b.nb; j++ {
				for k := 1; k <= b.nb; k++ {
					n := b.idx(i, j, k)
					if b.U[Dens][n] <= 0 {
						t.Fatalf("non-positive density at block %v cell %d,%d,%d", b.Index, i, j, k)
					}
					if math.IsNaN(b.U[Ener][n]) {
						t.Fatalf("NaN energy at block %v", b.Index)
					}
				}
			}
		}
	}
}

func TestShockExpands(t *testing.T) {
	g := sedov(t, 4, 8)
	g.Run(5)
	r1 := g.ShockRadius()
	g.Run(15)
	r2 := g.ShockRadius()
	if r1 <= 0 || r2 <= r1 {
		t.Fatalf("shock radius not expanding: %g -> %g", r1, r2)
	}
}

func TestSedovScalingExponent(t *testing.T) {
	// R(t) ~ t^(2/5). With a first-order scheme on a coarse grid the fitted
	// exponent is loose; accept 0.2..0.6.
	g := sedov(t, 4, 10)
	g.Run(8)
	t1, r1 := g.Time, g.ShockRadius()
	g.Run(24)
	t2, r2 := g.Time, g.ShockRadius()
	if r1 <= 0 || r2 <= r1 {
		t.Fatalf("radii %g -> %g", r1, r2)
	}
	exp := math.Log(r2/r1) / math.Log(t2/t1)
	if exp < 0.2 || exp > 0.6 {
		t.Fatalf("fitted R~t^a exponent a = %g, want ~0.4", exp)
	}
}

func TestSphericalSymmetry(t *testing.T) {
	g := sedov(t, 4, 8)
	g.Run(10)
	// Density must match at +x/-x mirrored cells about the center.
	probe := func(bi, i int) float64 {
		for _, b := range g.Blocks {
			if b.Index == [3]int{bi, 2, 2} {
				return b.U[Dens][b.idx(i, 1, 1)]
			}
		}
		t.Fatalf("block %d not found", bi)
		return 0
	}
	left := probe(0, 3)  // cell 3 of block 0 -> global cell index 2 (interior i-1)
	right := probe(3, 6) // symmetric position on the +x side
	if math.Abs(left-right) > 1e-9*math.Max(left, 1) {
		t.Fatalf("asymmetry: left=%g right=%g", left, right)
	}
}

func TestStepDeterministic(t *testing.T) {
	a := sedov(t, 3, 8)
	b := sedov(t, 3, 8)
	a.Run(5)
	b.Run(5)
	for id := range a.Blocks {
		for v := 0; v < NumVars; v++ {
			for n := range a.Blocks[id].U[v] {
				if a.Blocks[id].U[v][n] != b.Blocks[id].U[v][n] {
					t.Fatalf("nondeterminism at block %d var %d cell %d", id, v, n)
				}
			}
		}
	}
}

func TestGhostExchangeContinuity(t *testing.T) {
	g := sedov(t, 2, 8)
	g.FillGhosts()
	// Ghost of block (0,0,0) +x face must equal interior of block (1,0,0).
	b0 := g.Blocks[g.blockID(0, 0, 0)]
	b1 := g.Blocks[g.blockID(1, 0, 0)]
	for j := 1; j <= 8; j++ {
		for k := 1; k <= 8; k++ {
			want := b1.U[Dens][b1.idx(1, j, k)]
			got := b0.U[Dens][b0.idx(9, j, k)]
			if got != want {
				t.Fatalf("ghost mismatch at j=%d k=%d: %g vs %g", j, k, got, want)
			}
		}
	}
}

func TestRefineMarksTrackShock(t *testing.T) {
	g := sedov(t, 4, 8)
	marks0 := g.RefineMarks(0.05)
	count0 := countTrue(marks0)
	if count0 == 0 {
		t.Fatal("initial blast must mark central blocks")
	}
	// Central blocks marked initially, corners not.
	if marks0[g.blockID(0, 0, 0)] {
		t.Fatal("corner block marked before shock arrives")
	}
	g.Run(25)
	marks1 := g.RefineMarks(0.05)
	if countTrue(marks1) <= count0 {
		t.Fatalf("expanding shock should mark more blocks: %d -> %d", count0, countTrue(marks1))
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func TestMaxWaveSpeedPositive(t *testing.T) {
	g := sedov(t, 3, 8)
	s := g.MaxWaveSpeed()
	if s <= 0 {
		t.Fatalf("wave speed = %g", s)
	}
	dt := g.StepCFL()
	if dt <= 0 || dt > g.CFL*g.Dx/s*1.0001 {
		t.Fatalf("dt = %g violates CFL (s=%g)", dt, s)
	}
	if g.StepCount != 1 || g.Time != dt {
		t.Fatalf("step bookkeeping: count=%d time=%g", g.StepCount, g.Time)
	}
}

func TestPrimitiveRoundTrip(t *testing.T) {
	g := sedov(t, 2, 8)
	b := g.Blocks[0]
	n := b.idx(4, 4, 4)
	rho, u, v, w, p := g.Primitive(b, n)
	if rho != 1.0 {
		t.Fatalf("rho = %g", rho)
	}
	if u != 0 || v != 0 || w != 0 {
		t.Fatalf("velocities nonzero at rest: %g %g %g", u, v, w)
	}
	if math.Abs(p-AmbientPressure) > 1e-15 {
		t.Fatalf("p = %g", p)
	}
	// Zero density must not panic.
	b.U[Dens][n] = 0
	rho, _, _, _, _ = g.Primitive(b, n)
	if rho != 0 {
		t.Fatal("zero density mishandled")
	}
}

func TestRenderSliceShowsShell(t *testing.T) {
	g := sedov(t, 3, 8)
	g.Run(12)
	out := g.RenderSlice(40, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The over-dense shell must produce dark ramp characters somewhere, and
	// the corners (undisturbed ambient) light ones.
	if !strings.ContainsAny(out, "#%@") {
		t.Fatal("no high-density characters in render")
	}
	corner := lines[0][:3]
	if strings.ContainsAny(corner, "#%@") {
		t.Fatalf("corner should be ambient, got %q", corner)
	}
	if g.RenderSlice(0, 0) == "" {
		t.Fatal("default render empty")
	}
}
