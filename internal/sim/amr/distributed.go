package amr

import (
	"fmt"
	"math"

	"insitu/internal/comm"
)

// Distributed execution: block slabs along the x block-axis are assigned to
// ranks, FLASH-style. Each step the ranks exchange the cross-slab ghost
// faces as messages, agree on the CFL time step with an Allreduce(Max) of
// the local wave speeds, and update their own blocks. Ghost faces between
// blocks of the same rank are copied directly (the hybrid MPI +
// shared-memory layout of real block-structured codes); barriers separate
// the read phase from the update phase so direct reads always see the
// previous consistent state.

const (
	tagFaceLeft  = 300
	tagFaceRight = 301
)

// RunDistributed advances the grid `steps` CFL-limited steps using `ranks`
// slab workers. The block lattice must have at least as many x-slabs as
// ranks.
func (g *Grid) RunDistributed(ranks, steps int) error {
	if ranks < 1 {
		return fmt.Errorf("amr: distributed run needs at least 1 rank")
	}
	if ranks > g.NBX {
		return fmt.Errorf("amr: %d ranks exceed %d block columns", ranks, g.NBX)
	}
	world, err := comm.NewWorld(ranks)
	if err != nil {
		return err
	}
	return world.Run(func(r *comm.Rank) error {
		return g.slabWorker(r, steps)
	})
}

// slabRange returns the [lo, hi) block-x range owned by rank id.
func (g *Grid) slabRange(id, ranks int) (lo, hi int) {
	per := g.NBX / ranks
	extra := g.NBX % ranks
	lo = id*per + min(id, extra)
	hi = lo + per
	if id < extra {
		hi++
	}
	return
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (g *Grid) slabWorker(r *comm.Rank, steps int) error {
	lo, hi := g.slabRange(r.ID(), r.Size())
	var owned []*Block
	for _, b := range g.Blocks {
		if b.Index[0] >= lo && b.Index[0] < hi {
			owned = append(owned, b)
		}
	}

	faceVals := g.NB * g.NB * NumVars

	for step := 0; step < steps; step++ {
		// Phase 1a: ship cross-slab x-faces. The interior layer at the slab
		// edge becomes the neighbor's ghost layer.
		if r.Size() > 1 {
			if r.ID() > 0 {
				buf := make([]float64, 0, faceVals*g.NBY*g.NBZ)
				for _, b := range owned {
					if b.Index[0] == lo {
						buf = appendFace(buf, b, 1)
					}
				}
				r.Send(r.ID()-1, tagFaceRight, buf)
			}
			if r.ID() < r.Size()-1 {
				buf := make([]float64, 0, faceVals*g.NBY*g.NBZ)
				for _, b := range owned {
					if b.Index[0] == hi-1 {
						buf = appendFace(buf, b, g.NB)
					}
				}
				r.Send(r.ID()+1, tagFaceLeft, buf)
			}
			if r.ID() < r.Size()-1 {
				data, _, err := r.Recv(r.ID()+1, tagFaceRight)
				if err != nil {
					return err
				}
				g.applyFace(owned, hi-1, g.NB+1, data)
			}
			if r.ID() > 0 {
				data, _, err := r.Recv(r.ID()-1, tagFaceLeft)
				if err != nil {
					return err
				}
				g.applyFace(owned, lo, 0, data)
			}
		}
		// Phase 1b: fill the remaining ghosts by direct reads of the
		// previous state (same-rank x faces, all y/z faces, and domain
		// boundaries). The cross-slab x ghosts just received are
		// overwritten with identical values, which keeps fillGhostsBlock
		// reusable; a message-only variant would skip them.
		for _, b := range owned {
			g.fillGhostsBlock(b)
		}
		if err := r.Barrier(); err != nil {
			return err
		}

		// Phase 2: agree on dt via Allreduce(Max) of local wave speeds.
		localMax := 0.0
		for _, b := range owned {
			if s := g.blockMaxWaveSpeed(b); s > localMax {
				localMax = s
			}
		}
		global, err := r.Allreduce([]float64{localMax}, comm.Max)
		if err != nil {
			return err
		}
		s := global[0]
		if s <= 0 {
			s = 1
		}
		dt := g.CFL * g.Dx / s

		// Phase 3: update owned interiors.
		lambda := dt / g.Dx
		for _, b := range owned {
			g.stepBlock(b, lambda)
		}
		if err := r.Barrier(); err != nil {
			return err
		}
		if r.ID() == 0 {
			g.Time += dt
			g.StepCount++
		}
		if err := r.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// appendFace packs the interior layer i=layer of block b (all variables, the
// NB x NB face) onto buf.
func appendFace(buf []float64, b *Block, layer int) []float64 {
	for v := 0; v < NumVars; v++ {
		for j := 1; j <= b.nb; j++ {
			for k := 1; k <= b.nb; k++ {
				buf = append(buf, b.U[v][b.idx(layer, j, k)])
			}
		}
	}
	return buf
}

// applyFace writes received face data into the ghost layer i=ghost of the
// owned blocks at block-x index bx, in the same order appendFace packed
// them.
func (g *Grid) applyFace(owned []*Block, bx, ghost int, data []float64) {
	pos := 0
	for _, b := range owned {
		if b.Index[0] != bx {
			continue
		}
		for v := 0; v < NumVars; v++ {
			for j := 1; j <= b.nb; j++ {
				for k := 1; k <= b.nb; k++ {
					if pos < len(data) {
						b.U[v][b.idx(ghost, j, k)] = data[pos]
					}
					pos++
				}
			}
		}
	}
}

// blockMaxWaveSpeed returns max |u|+c over the interior of one block.
func (g *Grid) blockMaxWaveSpeed(b *Block) float64 {
	m := 0.0
	for i := 1; i <= b.nb; i++ {
		for j := 1; j <= b.nb; j++ {
			for k := 1; k <= b.nb; k++ {
				n := b.idx(i, j, k)
				rho, u, v, w, p := g.Primitive(b, n)
				if rho <= 0 || p < 0 {
					continue
				}
				c := math.Sqrt(g.Gamma * p / rho)
				s := math.Max(math.Abs(u), math.Max(math.Abs(v), math.Abs(w))) + c
				if s > m {
					m = s
				}
			}
		}
	}
	return m
}
