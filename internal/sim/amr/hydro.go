package amr

import (
	"math"
	"sync"
)

// MaxWaveSpeed returns the maximum |u|+c over the interior cells, the
// quantity the CFL condition divides by. It reduces across blocks the way
// the real code would with an MPI_Allreduce.
func (g *Grid) MaxWaveSpeed() float64 {
	maxes := make([]float64, len(g.Blocks))
	parallelBlocks(len(g.Blocks), func(id int) {
		b := g.Blocks[id]
		m := 0.0
		for i := 1; i <= b.nb; i++ {
			for j := 1; j <= b.nb; j++ {
				for k := 1; k <= b.nb; k++ {
					n := b.idx(i, j, k)
					rho, u, v, w, p := g.Primitive(b, n)
					if rho <= 0 || p < 0 {
						continue
					}
					c := math.Sqrt(g.Gamma * p / rho)
					s := math.Max(math.Abs(u), math.Max(math.Abs(v), math.Abs(w))) + c
					if s > m {
						m = s
					}
				}
			}
		}
		maxes[id] = m
	})
	out := 0.0
	for _, m := range maxes {
		if m > out {
			out = m
		}
	}
	return out
}

// Step advances the solution one time step of size dt using dimensionally
// unsplit first-order Godunov fluxes with the HLL approximate Riemann
// solver. Ghost layers are refreshed first.
func (g *Grid) Step(dt float64) {
	g.FillGhosts()
	lambda := dt / g.Dx
	// Double-buffer the update per block so flux evaluation reads a
	// consistent state.
	parallelBlocks(len(g.Blocks), func(id int) {
		g.stepBlock(g.Blocks[id], lambda)
	})
	g.Time += dt
	g.StepCount++
}

// StepCFL computes a stable dt from the CFL condition, advances one step,
// and returns the dt used.
func (g *Grid) StepCFL() float64 {
	s := g.MaxWaveSpeed()
	if s <= 0 {
		s = 1
	}
	dt := g.CFL * g.Dx / s
	g.Step(dt)
	return dt
}

// Run advances n CFL-limited steps.
func (g *Grid) Run(n int) {
	for i := 0; i < n; i++ {
		g.StepCFL()
	}
}

type updateBuf struct {
	u [NumVars][]float64
}

var blockBufs = sync.Pool{New: func() interface{} { return &updateBuf{} }}

// stepBlock applies the finite-volume update to one block's interior.
func (g *Grid) stepBlock(b *Block, lambda float64) {
	nb, w := b.nb, b.w
	buf := blockBufs.Get().(*updateBuf)
	need := w * w * w
	for v := 0; v < NumVars; v++ {
		if len(buf.u[v]) < need {
			buf.u[v] = make([]float64, need)
		}
		copy(buf.u[v][:need], b.U[v])
	}

	var uL, uR, flux [NumVars]float64
	read := func(n int) [NumVars]float64 {
		var s [NumVars]float64
		for v := 0; v < NumVars; v++ {
			s[v] = buf.u[v][n]
		}
		return s
	}
	strides := [3]int{w * w, w, 1} // i, j, k strides in ghosted layout

	for i := 1; i <= nb; i++ {
		for j := 1; j <= nb; j++ {
			for k := 1; k <= nb; k++ {
				n := b.idx(i, j, k)
				var du [NumVars]float64
				for dim := 0; dim < 3; dim++ {
					st := strides[dim]
					// Left face flux: between n-st and n.
					uL = read(n - st)
					uR = read(n)
					g.hll(dim, &uL, &uR, &flux)
					for v := 0; v < NumVars; v++ {
						du[v] += lambda * flux[v]
					}
					// Right face flux: between n and n+st.
					uL = read(n)
					uR = read(n + st)
					g.hll(dim, &uL, &uR, &flux)
					for v := 0; v < NumVars; v++ {
						du[v] -= lambda * flux[v]
					}
				}
				for v := 0; v < NumVars; v++ {
					b.U[v][n] = buf.u[v][n] + du[v]
				}
				// Positivity floor: keep density and internal energy sane in
				// the near-vacuum ambient region.
				if b.U[Dens][n] < 1e-12 {
					b.U[Dens][n] = 1e-12
				}
				rho := b.U[Dens][n]
				kin := 0.5 * (b.U[MomX][n]*b.U[MomX][n] + b.U[MomY][n]*b.U[MomY][n] + b.U[MomZ][n]*b.U[MomZ][n]) / rho
				if b.U[Ener][n] < kin+1e-14 {
					b.U[Ener][n] = kin + 1e-14
				}
			}
		}
	}
	blockBufs.Put(buf)
}

// hll computes the HLL flux across a face normal to dim between states uL
// and uR.
func (g *Grid) hll(dim int, uL, uR, out *[NumVars]float64) {
	mom := MomX + dim
	rhoL, pL, vnL := g.faceState(uL, mom)
	rhoR, pR, vnR := g.faceState(uR, mom)
	cL := math.Sqrt(g.Gamma * math.Max(pL, 0) / rhoL)
	cR := math.Sqrt(g.Gamma * math.Max(pR, 0) / rhoR)
	sL := math.Min(vnL-cL, vnR-cR)
	sR := math.Max(vnL+cL, vnR+cR)

	var fL, fR [NumVars]float64
	physFlux(uL, mom, vnL, pL, &fL)
	physFlux(uR, mom, vnR, pR, &fR)

	switch {
	case sL >= 0:
		*out = fL
	case sR <= 0:
		*out = fR
	default:
		inv := 1 / (sR - sL)
		for v := 0; v < NumVars; v++ {
			out[v] = (sR*fL[v] - sL*fR[v] + sL*sR*(uR[v]-uL[v])) * inv
		}
	}
}

// faceState extracts density, pressure and normal velocity from a conserved
// state, flooring density.
func (g *Grid) faceState(u *[NumVars]float64, mom int) (rho, p, vn float64) {
	rho = math.Max(u[Dens], 1e-12)
	vn = u[mom] / rho
	kin := 0.5 * (u[MomX]*u[MomX] + u[MomY]*u[MomY] + u[MomZ]*u[MomZ]) / rho
	p = (g.Gamma - 1) * (u[Ener] - kin)
	if p < 0 {
		p = 0
	}
	return
}

// physFlux evaluates the Euler flux along the direction of `mom`.
func physFlux(u *[NumVars]float64, mom int, vn, p float64, out *[NumVars]float64) {
	out[Dens] = u[mom]
	out[MomX] = u[MomX] * vn
	out[MomY] = u[MomY] * vn
	out[MomZ] = u[MomZ] * vn
	out[mom] += p
	out[Ener] = (u[Ener] + p) * vn
}

// TotalMass integrates density over the domain.
func (g *Grid) TotalMass() float64 {
	return g.integrate(Dens)
}

// TotalEnergy integrates total energy density over the domain.
func (g *Grid) TotalEnergy() float64 {
	return g.integrate(Ener)
}

func (g *Grid) integrate(v int) float64 {
	cellVol := g.Dx * g.Dx * g.Dx
	sums := make([]float64, len(g.Blocks))
	parallelBlocks(len(g.Blocks), func(id int) {
		b := g.Blocks[id]
		s := 0.0
		for i := 1; i <= b.nb; i++ {
			for j := 1; j <= b.nb; j++ {
				for k := 1; k <= b.nb; k++ {
					s += b.U[v][b.idx(i, j, k)]
				}
			}
		}
		sums[id] = s
	})
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total * cellVol
}

// ShockRadius estimates the blast-wave radius as the density-weighted mean
// distance of over-dense cells from the domain center. The Sedov-Taylor
// solution predicts R(t) ~ (E t^2 / rho)^(1/5).
func (g *Grid) ShockRadius() float64 {
	center := float64(g.NBX*g.NB) * g.Dx / 2
	var wsum, rsum float64
	for _, b := range g.Blocks {
		for i := 1; i <= b.nb; i++ {
			for j := 1; j <= b.nb; j++ {
				for k := 1; k <= b.nb; k++ {
					n := b.idx(i, j, k)
					over := b.U[Dens][n] - AmbientDensity
					if over <= 0.01 {
						continue
					}
					x, y, z := g.CellCenter(b, i-1, j-1, k-1)
					r := math.Sqrt((x-center)*(x-center) + (y-center)*(y-center) + (z-center)*(z-center))
					wsum += over
					rsum += over * r
				}
			}
		}
	}
	if wsum == 0 {
		return 0
	}
	return rsum / wsum
}

// RefineMarks returns, per block, whether the relative jump of density or
// pressure exceeds the threshold (0..1) anywhere in the block — the
// refinement criterion a PARAMESH-style AMR driver would use to select
// blocks for splitting.
func (g *Grid) RefineMarks(threshold float64) []bool {
	marks := make([]bool, len(g.Blocks))
	g.FillGhosts()
	relJump := func(a, b float64) float64 {
		d := math.Abs(a - b)
		s := math.Abs(a) + math.Abs(b) + 1e-30
		return d / s
	}
	parallelBlocks(len(g.Blocks), func(id int) {
		b := g.Blocks[id]
	scan:
		for i := 1; i <= b.nb; i++ {
			for j := 1; j <= b.nb; j++ {
				for k := 1; k <= b.nb; k++ {
					n := b.idx(i, j, k)
					for _, st := range []int{b.w * b.w, b.w, 1} {
						if relJump(b.U[Dens][n+st], b.U[Dens][n-st]) > threshold {
							marks[id] = true
							break scan
						}
						_, _, _, _, pp := g.Primitive(b, n+st)
						_, _, _, _, pm := g.Primitive(b, n-st)
						if relJump(pp, pm) > threshold {
							marks[id] = true
							break scan
						}
					}
				}
			}
		}
	})
	return marks
}
