package amr

import (
	"math"
	"testing"
)

func TestRefineConservesIntegrals(t *testing.T) {
	g := sedov(t, 2, 6)
	g.Run(5)
	fine, err := g.RefineGlobally()
	if err != nil {
		t.Fatal(err)
	}
	if fine.NumCells() != 8*g.NumCells() {
		t.Fatalf("fine cells = %d, want %d", fine.NumCells(), 8*g.NumCells())
	}
	if math.Abs(fine.TotalMass()-g.TotalMass()) > 1e-12 {
		t.Fatalf("mass not conserved: %g vs %g", fine.TotalMass(), g.TotalMass())
	}
	if math.Abs(fine.TotalEnergy()-g.TotalEnergy()) > 1e-12*g.TotalEnergy() {
		t.Fatalf("energy not conserved: %g vs %g", fine.TotalEnergy(), g.TotalEnergy())
	}
	// Same physical domain: Dx halves, lattice doubles.
	if math.Abs(fine.Dx*2-g.Dx) > 1e-15 {
		t.Fatalf("fine dx = %g, coarse %g", fine.Dx, g.Dx)
	}
	if fine.Time != g.Time || fine.StepCount != g.StepCount {
		t.Fatal("time bookkeeping lost")
	}
}

func TestCoarsenConservesIntegrals(t *testing.T) {
	g := sedov(t, 4, 6)
	g.Run(5)
	coarse, err := g.CoarsenGlobally()
	if err != nil {
		t.Fatal(err)
	}
	if coarse.NumCells()*8 != g.NumCells() {
		t.Fatalf("coarse cells = %d", coarse.NumCells())
	}
	if math.Abs(coarse.TotalMass()-g.TotalMass()) > 1e-12 {
		t.Fatalf("mass not conserved: %g vs %g", coarse.TotalMass(), g.TotalMass())
	}
	if math.Abs(coarse.TotalEnergy()-g.TotalEnergy()) > 1e-12*g.TotalEnergy() {
		t.Fatalf("energy not conserved: %g vs %g", coarse.TotalEnergy(), g.TotalEnergy())
	}
}

func TestRefineThenCoarsenIsIdentity(t *testing.T) {
	// Piecewise-constant prolongation followed by averaging restriction
	// must return the original field exactly.
	g := sedov(t, 2, 6)
	g.Run(3)
	fine, err := g.RefineGlobally()
	if err != nil {
		t.Fatal(err)
	}
	back, err := fine.CoarsenGlobally()
	if err != nil {
		t.Fatal(err)
	}
	for id := range g.Blocks {
		cb, bb := g.Blocks[id], back.Blocks[id]
		for v := 0; v < NumVars; v++ {
			for i := 1; i <= g.NB; i++ {
				for j := 1; j <= g.NB; j++ {
					for k := 1; k <= g.NB; k++ {
						n := cb.idx(i, j, k)
						if math.Abs(cb.U[v][n]-bb.U[v][n]) > 1e-13 {
							t.Fatalf("round trip differs at block %d var %d: %g vs %g",
								id, v, cb.U[v][n], bb.U[v][n])
						}
					}
				}
			}
		}
	}
}

func TestRefinedGridStillEvolves(t *testing.T) {
	g := sedov(t, 3, 8)
	g.Run(3)
	fine, err := g.RefineGlobally()
	if err != nil {
		t.Fatal(err)
	}
	m0 := fine.TotalMass()
	fine.Run(3)
	if math.Abs(fine.TotalMass()-m0)/m0 > 1e-6 {
		t.Fatal("mass drift after refinement")
	}
	if fine.ShockRadius() <= 0 {
		t.Fatal("shock lost by refinement")
	}
}

func TestRefinementConvergesShockRadius(t *testing.T) {
	// Grid-convergence sanity: the coarse and refined runs agree on the
	// shock radius to within a coarse cell after the same physical time.
	coarse := sedov(t, 2, 8)
	fine, err := coarse.RefineGlobally()
	if err != nil {
		t.Fatal(err)
	}
	target := 0.05
	for coarse.Time < target {
		coarse.StepCFL()
	}
	for fine.Time < target {
		fine.StepCFL()
	}
	rc, rf := coarse.ShockRadius(), fine.ShockRadius()
	if math.Abs(rc-rf) > 3*coarse.Dx {
		t.Fatalf("shock radii diverge: coarse %g vs fine %g (dx %g)", rc, rf, coarse.Dx)
	}
}
