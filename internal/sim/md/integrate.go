package md

import "math"

// Step advances the system one velocity-Verlet step of size dt. Forces must
// be current on entry (constructors and previous Steps guarantee this).
func (s *System) Step(dt float64) {
	half := dt / 2
	// Kick-drift: v(t+dt/2), x(t+dt).
	for i := 0; i < s.N; i++ {
		invM := 1 / s.Params[s.Type[i]].Mass
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(half * invM))
		s.Pos[i] = s.Pos[i].Add(s.Vel[i].Scale(dt))
		s.wrap(i)
	}
	// New forces, second kick: v(t+dt).
	s.ComputeForces()
	for i := 0; i < s.N; i++ {
		invM := 1 / s.Params[s.Type[i]].Mass
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(half * invM))
	}
	s.StepCount++
}

// Run advances the system n steps.
func (s *System) Run(n int, dt float64) {
	for k := 0; k < n; k++ {
		s.Step(dt)
	}
}

// KineticEnergy returns the total kinetic energy.
func (s *System) KineticEnergy() float64 {
	ke := 0.0
	for i := 0; i < s.N; i++ {
		ke += 0.5 * s.Params[s.Type[i]].Mass * s.Vel[i].Norm2()
	}
	return ke
}

// TotalEnergy returns kinetic plus potential energy of the last force
// evaluation.
func (s *System) TotalEnergy() float64 {
	return s.KineticEnergy() + s.PotEnergy
}

// Temperature returns the instantaneous reduced temperature 2K/(3N).
func (s *System) Temperature() float64 {
	if s.N == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (3 * float64(s.N))
}

// Rescale applies a velocity-rescaling thermostat toward temperature T.
func (s *System) Rescale(temp float64) {
	cur := s.Temperature()
	if cur <= 0 {
		return
	}
	f := math.Sqrt(temp / cur)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(f)
	}
}

// Momentum returns the total linear momentum vector.
func (s *System) Momentum() Vec3 {
	var p Vec3
	for i := 0; i < s.N; i++ {
		p = p.Add(s.Vel[i].Scale(s.Params[s.Type[i]].Mass))
	}
	return p
}

// Frame serializes positions and velocities as float32 for trajectory
// output: 6 fields per atom (x y z vx vy vz).
func (s *System) Frame() []float32 {
	out := make([]float32, 6*s.N)
	for i := 0; i < s.N; i++ {
		out[6*i+0] = float32(s.Pos[i][0])
		out[6*i+1] = float32(s.Pos[i][1])
		out[6*i+2] = float32(s.Pos[i][2])
		out[6*i+3] = float32(s.Vel[i][0])
		out[6*i+4] = float32(s.Vel[i][1])
		out[6*i+5] = float32(s.Vel[i][2])
	}
	return out
}

// FrameFields is the number of float32 values per atom in Frame output.
const FrameFields = 6
