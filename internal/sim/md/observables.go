package md

// Thermodynamic observables derived from the simulation state. These are
// the descriptive statistics the paper's §2.2 background mentions as the
// simplest class of in-situ analyses, and they double as physics checks on
// the force field.

// Virial returns the pair virial W = 1/2 Σ_i Σ_j f_ij · r_ij of the last
// force evaluation, used by the pressure equation of state.
func (s *System) Virial() float64 { return s.virial }

// Pressure returns the instantaneous pressure from the virial theorem in
// reduced units: P = rho·T + W / (3V).
func (s *System) Pressure() float64 {
	v := s.Box[0] * s.Box[1] * s.Box[2]
	if v == 0 || s.N == 0 {
		return 0
	}
	rho := float64(s.N) / v
	return rho*s.Temperature() + s.virial/(3*v)
}

// DensityProfile returns the number-density histogram of the given species
// along an axis (0=x, 1=y, 2=z) with the given number of bins, normalized
// to particles per unit volume.
func (s *System) DensityProfile(sp Species, axis, bins int) []float64 {
	if bins < 1 {
		bins = 1
	}
	if axis < 0 || axis > 2 {
		axis = 2
	}
	hist := make([]float64, bins)
	for i := 0; i < s.N; i++ {
		if s.Type[i] != sp {
			continue
		}
		b := int(s.Pos[i][axis] / s.Box[axis] * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	// Normalize by slab volume.
	slab := s.Box[0] * s.Box[1] * s.Box[2] / float64(bins)
	for b := range hist {
		hist[b] /= slab
	}
	return hist
}
