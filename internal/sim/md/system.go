// Package md is a coarse-grained molecular-dynamics mini-app standing in for
// LAMMPS, the paper's first evaluation application. Particles interact
// through Lennard-Jones potentials with per-species parameters, integrate
// with velocity Verlet over a periodic box, and are built into the two
// systems the paper studies: water solvating hydronium and two ion species
// (the "water+ions" problem, analyses A1-A4), and a rhodopsin-like layout
// with a compact protein embedded in a membrane slab solvated by water and
// ions (analyses R1-R3, Figure 3).
//
// The substitution from all-atom LAMMPS to single-site coarse-grained beads
// preserves what the scheduling study consumes: a real simulation loop whose
// per-step cost scales with atom count, and real analysis kernels (RDF, MSD,
// VACF, gyration radius, density histograms) whose relative time and memory
// profiles match Figure 4.
package md

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec3 is a 3-vector of coordinates, velocities, or forces.
type Vec3 [3]float64

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v[0] + u[0], v[1] + u[1], v[2] + u[2]} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v[0] - u[0], v[1] - u[1], v[2] - u[2]} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v[0] * s, v[1] * s, v[2] * s} }

// Dot returns the dot product v·u.
func (v Vec3) Dot(u Vec3) float64 { return v[0]*u[0] + v[1]*u[1] + v[2]*u[2] }

// Norm2 returns |v|^2.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Species identifies a particle type.
type Species uint8

// Particle species across both benchmark systems.
const (
	Water Species = iota
	Hydronium
	Cation
	Anion
	Protein
	Membrane
	numSpecies
)

// String names the species.
func (s Species) String() string {
	switch s {
	case Water:
		return "water"
	case Hydronium:
		return "hydronium"
	case Cation:
		return "cation"
	case Anion:
		return "anion"
	case Protein:
		return "protein"
	case Membrane:
		return "membrane"
	}
	return fmt.Sprintf("Species(%d)", uint8(s))
}

// SpeciesParams holds per-species mass and Lennard-Jones parameters in
// reduced units.
type SpeciesParams struct {
	Mass  float64
	Eps   float64
	Sigma float64
}

// defaultParams are reduced-unit parameters chosen so the mixture is a
// stable liquid at T* ~ 1 and density rho* ~ 0.7.
var defaultParams = [numSpecies]SpeciesParams{
	Water:     {Mass: 1.0, Eps: 1.0, Sigma: 1.0},
	Hydronium: {Mass: 1.06, Eps: 1.1, Sigma: 1.0},
	Cation:    {Mass: 1.27, Eps: 1.2, Sigma: 0.9},
	Anion:     {Mass: 1.97, Eps: 1.2, Sigma: 1.1},
	Protein:   {Mass: 2.2, Eps: 1.5, Sigma: 1.2},
	Membrane:  {Mass: 1.8, Eps: 1.3, Sigma: 1.1},
}

// System is a periodic molecular system.
type System struct {
	Box    Vec3 // box lengths; particles live in [0, Box)
	N      int
	Pos    []Vec3
	Vel    []Vec3
	Force  []Vec3
	Type   []Species
	Params [numSpecies]SpeciesParams

	// Cutoff is the interaction cutoff radius.
	Cutoff float64

	// Image counts track periodic wrap crossings so analyses can unwrap
	// trajectories (required by MSD).
	Image []([3]int32)

	// Step counter and accumulated potential energy of the last force
	// evaluation.
	StepCount int
	PotEnergy float64

	virial float64

	cells  *cellList
	eps    [numSpecies][numSpecies]float64
	sigma2 [numSpecies][numSpecies]float64
}

// Config controls system construction.
type Config struct {
	NAtoms  int
	Density float64 // reduced number density; default 0.7
	Temp    float64 // initial reduced temperature; default 1.0
	Cutoff  float64 // default 2.5
	Seed    int64
}

func (c Config) withDefaults() Config {
	if c.Density == 0 {
		c.Density = 0.7
	}
	if c.Temp == 0 {
		c.Temp = 1.0
	}
	if c.Cutoff == 0 {
		c.Cutoff = 2.5
	}
	return c
}

// newSystem allocates a system of n atoms in a cubic box at the configured
// density, positions unset.
func newSystem(cfg Config) *System {
	n := cfg.NAtoms
	l := math.Cbrt(float64(n) / cfg.Density)
	s := &System{
		Box:    Vec3{l, l, l},
		N:      n,
		Pos:    make([]Vec3, n),
		Vel:    make([]Vec3, n),
		Force:  make([]Vec3, n),
		Type:   make([]Species, n),
		Image:  make([][3]int32, n),
		Params: defaultParams,
		Cutoff: cfg.Cutoff,
	}
	s.buildMixingTables()
	return s
}

// buildMixingTables precomputes Lorentz-Berthelot mixed LJ parameters.
func (s *System) buildMixingTables() {
	for a := Species(0); a < numSpecies; a++ {
		for b := Species(0); b < numSpecies; b++ {
			s.eps[a][b] = math.Sqrt(s.Params[a].Eps * s.Params[b].Eps)
			sig := (s.Params[a].Sigma + s.Params[b].Sigma) / 2
			s.sigma2[a][b] = sig * sig
		}
	}
}

// NewWaterIons builds the paper's first LAMMPS problem: a box of water
// solvating hydronium and two ion species. Roughly 1% of particles are
// hydronium and 0.5% each cations and anions, the rest water.
func NewWaterIons(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if cfg.NAtoms < 64 {
		return nil, fmt.Errorf("md: water+ions needs at least 64 atoms, got %d", cfg.NAtoms)
	}
	s := newSystem(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	nHyd := max(1, cfg.NAtoms/100)
	nCat := max(1, cfg.NAtoms/200)
	nAni := max(1, cfg.NAtoms/200)
	for i := 0; i < s.N; i++ {
		s.Type[i] = Water
	}
	// Scatter minority species over distinct random sites.
	perm := rng.Perm(s.N)
	k := 0
	assign := func(sp Species, count int) {
		for c := 0; c < count; c++ {
			s.Type[perm[k]] = sp
			k++
		}
	}
	assign(Hydronium, nHyd)
	assign(Cation, nCat)
	assign(Anion, nAni)

	s.latticePositions(rng)
	s.maxwellVelocities(rng, cfg.Temp)
	s.ComputeForces()
	return s, nil
}

// NewRhodopsin builds the paper's second LAMMPS problem, mirroring the
// Figure-3 snapshot: a compact protein sphere at the box center, a membrane
// slab spanning the mid-plane, water above and below, and scattered ions.
func NewRhodopsin(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if cfg.NAtoms < 256 {
		return nil, fmt.Errorf("md: rhodopsin needs at least 256 atoms, got %d", cfg.NAtoms)
	}
	s := newSystem(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	s.latticePositions(rng)

	// Geometry: membrane slab |z - L/2| < 8% of L, protein sphere of radius
	// ~12% of L at the center, ions sprinkled through the water.
	l := s.Box[2]
	center := Vec3{s.Box[0] / 2, s.Box[1] / 2, s.Box[2] / 2}
	slabHalf := 0.08 * l
	protR2 := 0.12 * l * 0.12 * l
	nIons := max(2, s.N/200)
	for i := 0; i < s.N; i++ {
		d := s.Pos[i].Sub(center)
		switch {
		case d.Norm2() < protR2:
			s.Type[i] = Protein
		case math.Abs(d[2]) < slabHalf:
			s.Type[i] = Membrane
		default:
			s.Type[i] = Water
		}
	}
	for c := 0; c < nIons; c++ {
		i := rng.Intn(s.N)
		if s.Type[i] == Water {
			if c%2 == 0 {
				s.Type[i] = Cation
			} else {
				s.Type[i] = Anion
			}
		}
	}
	s.maxwellVelocities(rng, cfg.Temp)
	s.ComputeForces()
	return s, nil
}

// latticePositions fills Pos with a jittered simple-cubic lattice.
func (s *System) latticePositions(rng *rand.Rand) {
	side := int(math.Ceil(math.Cbrt(float64(s.N))))
	spacing := s.Box[0] / float64(side)
	i := 0
	for x := 0; x < side && i < s.N; x++ {
		for y := 0; y < side && i < s.N; y++ {
			for z := 0; z < side && i < s.N; z++ {
				jit := func() float64 { return (rng.Float64() - 0.5) * 0.1 * spacing }
				s.Pos[i] = Vec3{
					(float64(x)+0.5)*spacing + jit(),
					(float64(y)+0.5)*spacing + jit(),
					(float64(z)+0.5)*spacing + jit(),
				}
				s.wrap(i)
				i++
			}
		}
	}
}

// maxwellVelocities draws Maxwell-Boltzmann velocities at temperature T and
// removes the center-of-mass drift.
func (s *System) maxwellVelocities(rng *rand.Rand, temp float64) {
	var com Vec3
	var mass float64
	for i := 0; i < s.N; i++ {
		m := s.Params[s.Type[i]].Mass
		sd := math.Sqrt(temp / m)
		s.Vel[i] = Vec3{rng.NormFloat64() * sd, rng.NormFloat64() * sd, rng.NormFloat64() * sd}
		com = com.Add(s.Vel[i].Scale(m))
		mass += m
	}
	drift := com.Scale(1 / mass)
	for i := 0; i < s.N; i++ {
		s.Vel[i] = s.Vel[i].Sub(drift)
	}
}

// wrap folds particle i into the periodic box, recording image crossings.
func (s *System) wrap(i int) {
	for d := 0; d < 3; d++ {
		for s.Pos[i][d] < 0 {
			s.Pos[i][d] += s.Box[d]
			s.Image[i][d]--
		}
		for s.Pos[i][d] >= s.Box[d] {
			s.Pos[i][d] -= s.Box[d]
			s.Image[i][d]++
		}
	}
}

// Unwrapped returns the unwrapped position of particle i (periodic images
// unfolded), which MSD analyses require.
func (s *System) Unwrapped(i int) Vec3 {
	return Vec3{
		s.Pos[i][0] + float64(s.Image[i][0])*s.Box[0],
		s.Pos[i][1] + float64(s.Image[i][1])*s.Box[1],
		s.Pos[i][2] + float64(s.Image[i][2])*s.Box[2],
	}
}

// MinImage returns the minimum-image displacement from particle j to i.
func (s *System) MinImage(pi, pj Vec3) Vec3 {
	d := pi.Sub(pj)
	for k := 0; k < 3; k++ {
		if d[k] > s.Box[k]/2 {
			d[k] -= s.Box[k]
		} else if d[k] < -s.Box[k]/2 {
			d[k] += s.Box[k]
		}
	}
	return d
}

// CountType returns the number of particles of the given species.
func (s *System) CountType(sp Species) int {
	n := 0
	for _, t := range s.Type {
		if t == sp {
			n++
		}
	}
	return n
}

// IndicesOf returns the particle indices of the given species.
func (s *System) IndicesOf(sp Species) []int {
	var out []int
	for i, t := range s.Type {
		if t == sp {
			out = append(out, i)
		}
	}
	return out
}

// MemoryBytes estimates the resident bytes of the simulation state.
func (s *System) MemoryBytes() int64 {
	perAtom := int64(3*8*3 + 1 + 12) // pos+vel+force, type, image
	return int64(s.N) * perAtom
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
