package md

import (
	"runtime"
	"sync"
)

// cellList bins particles into cells of side >= cutoff so force evaluation
// only visits the 27 neighboring cells of each particle.
type cellList struct {
	dims    [3]int
	invSide [3]float64
	heads   []int32 // first particle per cell, -1 if empty
	next    []int32 // linked list through particles
}

func (s *System) buildCells() {
	cl := s.cells
	var dims [3]int
	for d := 0; d < 3; d++ {
		dims[d] = int(s.Box[d] / s.Cutoff)
		if dims[d] < 1 {
			dims[d] = 1
		}
	}
	nc := dims[0] * dims[1] * dims[2]
	if cl == nil || cl.dims != dims || len(cl.next) != s.N {
		cl = &cellList{dims: dims, heads: make([]int32, nc), next: make([]int32, s.N)}
		s.cells = cl
	}
	for d := 0; d < 3; d++ {
		cl.invSide[d] = float64(dims[d]) / s.Box[d]
	}
	for c := range cl.heads {
		cl.heads[c] = -1
	}
	for i := 0; i < s.N; i++ {
		c := cl.cellOf(s.Pos[i])
		cl.next[i] = cl.heads[c]
		cl.heads[c] = int32(i)
	}
}

func (cl *cellList) cellOf(p Vec3) int {
	cx := int(p[0] * cl.invSide[0])
	cy := int(p[1] * cl.invSide[1])
	cz := int(p[2] * cl.invSide[2])
	if cx >= cl.dims[0] {
		cx = cl.dims[0] - 1
	}
	if cy >= cl.dims[1] {
		cy = cl.dims[1] - 1
	}
	if cz >= cl.dims[2] {
		cz = cl.dims[2] - 1
	}
	return (cx*cl.dims[1]+cy)*cl.dims[2] + cz
}

// ComputeForces evaluates Lennard-Jones forces with the current positions.
// Each particle accumulates only its own force (full neighbor iteration), so
// the loop parallelizes over particles without write conflicts; the factor-2
// redundancy is the standard trade for lock-free shared-memory MD.
func (s *System) ComputeForces() {
	s.buildCells()
	cl := s.cells
	cut2 := s.Cutoff * s.Cutoff

	workers := runtime.GOMAXPROCS(0)
	if workers > s.N/64+1 {
		workers = s.N/64 + 1
	}
	potParts := make([]float64, workers)
	virParts := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (s.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > s.N {
			hi = s.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			pot, vir := 0.0, 0.0
			for i := lo; i < hi; i++ {
				p, v := s.forceOn(i, cl, cut2)
				pot += p
				vir += v
			}
			potParts[w] = pot
			virParts[w] = vir
		}(w, lo, hi)
	}
	wg.Wait()
	total, vtotal := 0.0, 0.0
	for w := range potParts {
		total += potParts[w]
		vtotal += virParts[w]
	}
	// Pair energy and virial were counted once per particle, i.e. twice per
	// pair.
	s.PotEnergy = total / 2
	s.virial = vtotal / 2
}

// forceOn accumulates the total LJ force on particle i and returns its pair
// potential energy and virial contributions (each pair counted once from
// each side).
func (s *System) forceOn(i int, cl *cellList, cut2 float64) (pot, vir float64) {
	pi := s.Pos[i]
	ti := s.Type[i]
	cx := int(pi[0] * cl.invSide[0])
	cy := int(pi[1] * cl.invSide[1])
	cz := int(pi[2] * cl.invSide[2])
	if cx >= cl.dims[0] {
		cx = cl.dims[0] - 1
	}
	if cy >= cl.dims[1] {
		cy = cl.dims[1] - 1
	}
	if cz >= cl.dims[2] {
		cz = cl.dims[2] - 1
	}
	var f Vec3
	// With fewer than 3 cells along a dimension the -1 and +1 offsets alias
	// the same cell; restrict the offset range so each cell is visited once.
	for _, dx := range offsets(cl.dims[0]) {
		nx := wrapCell(cx+dx, cl.dims[0])
		for _, dy := range offsets(cl.dims[1]) {
			ny := wrapCell(cy+dy, cl.dims[1])
			for _, dz := range offsets(cl.dims[2]) {
				nz := wrapCell(cz+dz, cl.dims[2])
				c := (nx*cl.dims[1]+ny)*cl.dims[2] + nz
				for j := cl.heads[c]; j >= 0; j = cl.next[j] {
					if int(j) == i {
						continue
					}
					d := s.MinImage(pi, s.Pos[j])
					r2 := d.Norm2()
					if r2 >= cut2 || r2 == 0 {
						continue
					}
					tj := s.Type[j]
					sig2 := s.sigma2[ti][tj]
					eps := s.eps[ti][tj]
					sr2 := sig2 / r2
					sr6 := sr2 * sr2 * sr2
					sr12 := sr6 * sr6
					// F = 24 eps (2 sr12 - sr6) / r2 * d
					fmag := 24 * eps * (2*sr12 - sr6) / r2
					f[0] += fmag * d[0]
					f[1] += fmag * d[1]
					f[2] += fmag * d[2]
					pot += 4 * eps * (sr12 - sr6)
					vir += fmag * r2 // f_ij . r_ij
				}
			}
		}
	}
	s.Force[i] = f
	return pot, vir
}

// PrepareNeighbors (re)builds the cell list for the current positions so
// that ForEachNeighbor queries are valid. Analysis kernels call it once per
// analysis step before issuing neighbor queries.
func (s *System) PrepareNeighbors() { s.buildCells() }

// ForEachNeighbor calls fn for every particle j != i within rmax of particle
// i, passing the squared distance. rmax must not exceed Cutoff (the cell
// list granularity); larger values silently miss pairs, so they are clamped.
// PrepareNeighbors must have been called after the last position update.
func (s *System) ForEachNeighbor(i int, rmax float64, fn func(j int, r2 float64)) {
	if s.cells == nil {
		s.buildCells()
	}
	if rmax > s.Cutoff {
		rmax = s.Cutoff
	}
	cl := s.cells
	r2max := rmax * rmax
	pi := s.Pos[i]
	cx := int(pi[0] * cl.invSide[0])
	cy := int(pi[1] * cl.invSide[1])
	cz := int(pi[2] * cl.invSide[2])
	if cx >= cl.dims[0] {
		cx = cl.dims[0] - 1
	}
	if cy >= cl.dims[1] {
		cy = cl.dims[1] - 1
	}
	if cz >= cl.dims[2] {
		cz = cl.dims[2] - 1
	}
	for _, dx := range offsets(cl.dims[0]) {
		nx := wrapCell(cx+dx, cl.dims[0])
		for _, dy := range offsets(cl.dims[1]) {
			ny := wrapCell(cy+dy, cl.dims[1])
			for _, dz := range offsets(cl.dims[2]) {
				nz := wrapCell(cz+dz, cl.dims[2])
				c := (nx*cl.dims[1]+ny)*cl.dims[2] + nz
				for j := cl.heads[c]; j >= 0; j = cl.next[j] {
					if int(j) == i {
						continue
					}
					d := s.MinImage(pi, s.Pos[j])
					r2 := d.Norm2()
					if r2 < r2max {
						fn(int(j), r2)
					}
				}
			}
		}
	}
}

var (
	offs3 = []int{-1, 0, 1}
	offs2 = []int{0, 1}
	offs1 = []int{0}
)

// offsets returns the neighbor-cell offsets for a dimension with n cells.
func offsets(n int) []int {
	switch {
	case n >= 3:
		return offs3
	case n == 2:
		return offs2
	default:
		return offs1
	}
}

func wrapCell(c, n int) int {
	if c < 0 {
		return c + n
	}
	if c >= n {
		return c - n
	}
	return c
}
