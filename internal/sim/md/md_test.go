package md

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func waterSystem(t *testing.T, n int) *System {
	t.Helper()
	s, err := NewWaterIons(Config{NAtoms: n, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWaterIonsComposition(t *testing.T) {
	s := waterSystem(t, 2000)
	if s.N != 2000 {
		t.Fatalf("N = %d", s.N)
	}
	nh := s.CountType(Hydronium)
	nc := s.CountType(Cation)
	na := s.CountType(Anion)
	nw := s.CountType(Water)
	if nh != 20 || nc != 10 || na != 10 {
		t.Fatalf("hydronium=%d cation=%d anion=%d", nh, nc, na)
	}
	if nw+nh+nc+na != s.N {
		t.Fatalf("species do not partition the system")
	}
	if s.CountType(Protein) != 0 || s.CountType(Membrane) != 0 {
		t.Fatal("water+ions must not contain protein or membrane")
	}
}

func TestWaterIonsTooSmall(t *testing.T) {
	if _, err := NewWaterIons(Config{NAtoms: 10}); err == nil {
		t.Fatal("expected error for tiny system")
	}
}

func TestRhodopsinLayout(t *testing.T) {
	s, err := NewRhodopsin(Config{NAtoms: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	np := s.CountType(Protein)
	nm := s.CountType(Membrane)
	nw := s.CountType(Water)
	if np == 0 || nm == 0 || nw == 0 {
		t.Fatalf("protein=%d membrane=%d water=%d; all must be present", np, nm, nw)
	}
	if s.CountType(Cation)+s.CountType(Anion) == 0 {
		t.Fatal("ions missing")
	}
	// Protein must be concentrated near the center, membrane near mid-z.
	center := Vec3{s.Box[0] / 2, s.Box[1] / 2, s.Box[2] / 2}
	for _, i := range s.IndicesOf(Protein) {
		if s.Pos[i].Sub(center).Norm2() > 0.15*s.Box[2]*0.15*s.Box[2]*3 {
			t.Fatalf("protein particle %d far from center", i)
		}
	}
	for _, i := range s.IndicesOf(Membrane) {
		if math.Abs(s.Pos[i][2]-center[2]) > 0.09*s.Box[2] {
			t.Fatalf("membrane particle %d outside slab: z=%g", i, s.Pos[i][2])
		}
	}
	if _, err := NewRhodopsin(Config{NAtoms: 10}); err == nil {
		t.Fatal("expected error for tiny system")
	}
}

func TestPositionsInsideBox(t *testing.T) {
	s := waterSystem(t, 1000)
	s.Run(5, 0.002)
	for i := 0; i < s.N; i++ {
		for d := 0; d < 3; d++ {
			if s.Pos[i][d] < 0 || s.Pos[i][d] >= s.Box[d] {
				t.Fatalf("particle %d outside box: %v", i, s.Pos[i])
			}
		}
	}
}

func TestEnergyConservationNVE(t *testing.T) {
	s := waterSystem(t, 864)
	// Short equilibration with thermostat, then NVE.
	for k := 0; k < 20; k++ {
		s.Step(0.002)
		s.Rescale(1.0)
	}
	s.ComputeForces()
	e0 := s.TotalEnergy()
	s.Run(100, 0.002)
	e1 := s.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.02 {
		t.Fatalf("energy drift %.3f%% over 100 NVE steps (e0=%g e1=%g)", drift*100, e0, e1)
	}
}

func TestMomentumConservation(t *testing.T) {
	s := waterSystem(t, 500)
	p0 := s.Momentum()
	if math.Sqrt(p0.Norm2()) > 1e-9 {
		t.Fatalf("initial momentum not removed: %v", p0)
	}
	s.Run(50, 0.002)
	p1 := s.Momentum()
	if math.Sqrt(p1.Norm2()) > 1e-6*float64(s.N) {
		t.Fatalf("momentum drift: %v", p1)
	}
}

func TestNewtonThirdLaw(t *testing.T) {
	// Total force must vanish (sum of internal pair forces).
	s := waterSystem(t, 700)
	s.ComputeForces()
	var f Vec3
	for i := 0; i < s.N; i++ {
		f = f.Add(s.Force[i])
	}
	if math.Sqrt(f.Norm2()) > 1e-7*float64(s.N) {
		t.Fatalf("net force %v nonzero", f)
	}
}

func TestForceDeterminism(t *testing.T) {
	// Parallel force evaluation must be deterministic for fixed positions.
	s1 := waterSystem(t, 800)
	s2 := waterSystem(t, 800)
	s1.ComputeForces()
	s2.ComputeForces()
	for i := 0; i < s1.N; i++ {
		if s1.Force[i] != s2.Force[i] {
			t.Fatalf("forces differ at %d: %v vs %v", i, s1.Force[i], s2.Force[i])
		}
	}
	if s1.PotEnergy != s2.PotEnergy {
		t.Fatalf("potential energy differs: %g vs %g", s1.PotEnergy, s2.PotEnergy)
	}
}

func TestTwoParticleForceAnalytic(t *testing.T) {
	// Two water particles at distance r: F = 24 eps (2 (s/r)^12 - (s/r)^6)/r.
	s := newSystem(Config{NAtoms: 2, Density: 0.001, Temp: 1, Cutoff: 2.5}.withDefaults())
	s.Type[0], s.Type[1] = Water, Water
	r := 1.2
	s.Pos[0] = Vec3{5, 5, 5}
	s.Pos[1] = Vec3{5 + r, 5, 5}
	s.ComputeForces()
	sr6 := math.Pow(1/r, 6)
	sr12 := sr6 * sr6
	want := 24 * (2*sr12 - sr6) / r
	got := s.Force[1][0] // force on particle 1 along +x
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("force = %g, want %g", got, want)
	}
	if math.Abs(s.Force[0][0]+got) > 1e-12 {
		t.Fatal("pair forces not equal and opposite")
	}
	wantPot := 4 * (sr12 - sr6)
	if math.Abs(s.PotEnergy-wantPot) > 1e-9*math.Abs(wantPot) {
		t.Fatalf("potential = %g, want %g", s.PotEnergy, wantPot)
	}
}

func TestCutoffRespected(t *testing.T) {
	s := newSystem(Config{NAtoms: 2, Density: 0.0001, Temp: 1, Cutoff: 2.5}.withDefaults())
	s.Type[0], s.Type[1] = Water, Water
	s.Pos[0] = Vec3{1, 1, 1}
	s.Pos[1] = Vec3{1 + 2.6, 1, 1} // beyond cutoff
	s.ComputeForces()
	if s.Force[0] != (Vec3{}) || s.Force[1] != (Vec3{}) {
		t.Fatalf("forces beyond cutoff: %v %v", s.Force[0], s.Force[1])
	}
	if s.PotEnergy != 0 {
		t.Fatalf("potential beyond cutoff: %g", s.PotEnergy)
	}
}

func TestMinImage(t *testing.T) {
	s := newSystem(Config{NAtoms: 1, Density: 0.7, Temp: 1, Cutoff: 2.5}.withDefaults())
	l := s.Box[0]
	d := s.MinImage(Vec3{0.1, 0, 0}, Vec3{l - 0.1, 0, 0})
	if math.Abs(d[0]-0.2) > 1e-12 {
		t.Fatalf("min image dx = %g, want 0.2", d[0])
	}
}

func TestUnwrappedTracksCrossings(t *testing.T) {
	s := newSystem(Config{NAtoms: 1, Density: 0.7, Temp: 1, Cutoff: 2.5}.withDefaults())
	s.Type[0] = Water
	s.Pos[0] = Vec3{s.Box[0] - 0.05, 0.5, 0.5}
	start := s.Unwrapped(0)
	// Push the particle across the +x boundary manually.
	s.Pos[0][0] += 0.1
	s.wrap(0)
	end := s.Unwrapped(0)
	if math.Abs(end[0]-start[0]-0.1) > 1e-12 {
		t.Fatalf("unwrapped displacement = %g, want 0.1", end[0]-start[0])
	}
	if s.Pos[0][0] >= s.Box[0] || s.Pos[0][0] < 0 {
		t.Fatal("wrapped position out of box")
	}
}

func TestTemperatureAfterRescale(t *testing.T) {
	s := waterSystem(t, 600)
	s.Rescale(1.5)
	if math.Abs(s.Temperature()-1.5) > 1e-9 {
		t.Fatalf("temperature = %g, want 1.5", s.Temperature())
	}
}

func TestFrameSerialization(t *testing.T) {
	s := waterSystem(t, 100)
	f := s.Frame()
	if len(f) != 600 {
		t.Fatalf("frame length = %d", len(f))
	}
	if float64(f[0]) != float64(float32(s.Pos[0][0])) {
		t.Fatal("frame does not start with particle 0 x")
	}
}

func TestMemoryBytesScalesWithN(t *testing.T) {
	s1 := waterSystem(t, 500)
	s2 := waterSystem(t, 1000)
	if s2.MemoryBytes() != 2*s1.MemoryBytes() {
		t.Fatalf("memory model not linear: %d vs %d", s1.MemoryBytes(), s2.MemoryBytes())
	}
}

func TestSpeciesString(t *testing.T) {
	names := map[Species]string{
		Water: "water", Hydronium: "hydronium", Cation: "cation",
		Anion: "anion", Protein: "protein", Membrane: "membrane",
	}
	for sp, want := range names {
		if sp.String() != want {
			t.Fatalf("%d.String() = %q", sp, sp.String())
		}
	}
	if Species(99).String() == "" {
		t.Fatal("unknown species should still print")
	}
}

// Property: vector algebra identities hold.
func TestVec3Properties(t *testing.T) {
	f := func(ai, bi [3]int16) bool {
		var va, vb Vec3
		for d := 0; d < 3; d++ {
			va[d] = float64(ai[d]) / 16
			vb[d] = float64(bi[d]) / 16
		}
		sum := va.Add(vb)
		if sum.Sub(vb) != va {
			return false
		}
		if math.Abs(va.Dot(vb)-vb.Dot(va)) > 1e-9 {
			return false
		}
		return va.Scale(2).Dot(vb) == 2*va.Dot(vb) || math.Abs(va.Scale(2).Dot(vb)-2*va.Dot(vb)) < 1e-9*math.Abs(va.Dot(vb))
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := waterSystem(t, 300)
	b := waterSystem(t, 300)
	for i := 0; i < a.N; i++ {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] || a.Type[i] != b.Type[i] {
			t.Fatalf("same seed produced different systems at particle %d", i)
		}
	}
}

func TestRenderSliceFigure3Layout(t *testing.T) {
	s, err := NewRhodopsin(Config{NAtoms: 8000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := s.RenderSlice(60, 24, s.Box[1]/4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 24 {
		t.Fatalf("rendered %d lines", len(lines))
	}
	// Protein glyphs concentrated in the middle rows, membrane in a band,
	// water everywhere else.
	mid := strings.Join(lines[9:15], "")
	if !strings.Contains(mid, "#") {
		t.Fatal("no protein in the central band")
	}
	if !strings.Contains(mid, "=") {
		t.Fatal("no membrane in the central band")
	}
	if strings.Contains(lines[0], "#") || strings.Contains(lines[23], "#") {
		t.Fatal("protein leaked to the slab edges")
	}
	if !strings.Contains(lines[0], ".") || !strings.Contains(lines[23], ".") {
		t.Fatal("no water at the top/bottom")
	}
	// Defaults must not panic and must produce something.
	if s.RenderSlice(0, 0, 0) == "" {
		t.Fatal("default render empty")
	}
}

func TestPressureIdealGasLimit(t *testing.T) {
	// At very low density the LJ gas approaches ideal: P ~ rho*T.
	s, err := NewWaterIons(Config{NAtoms: 512, Density: 0.01, Temp: 1.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Pressure()
	rho := float64(s.N) / (s.Box[0] * s.Box[1] * s.Box[2])
	ideal := rho * s.Temperature()
	if math.Abs(p-ideal)/ideal > 0.2 {
		t.Fatalf("dilute pressure %g too far from ideal %g", p, ideal)
	}
}

func TestVirialCountsPairsOnce(t *testing.T) {
	// Two particles: W = f*r exactly.
	s := newSystem(Config{NAtoms: 2, Density: 0.001, Temp: 1, Cutoff: 2.5}.withDefaults())
	s.Type[0], s.Type[1] = Water, Water
	r := 1.3
	s.Pos[0] = Vec3{5, 5, 5}
	s.Pos[1] = Vec3{5 + r, 5, 5}
	s.ComputeForces()
	sr6 := math.Pow(1/r, 6)
	sr12 := sr6 * sr6
	fmag := 24 * (2*sr12 - sr6) / (r * r)
	want := fmag * r * r
	if math.Abs(s.Virial()-want) > 1e-9*math.Abs(want) {
		t.Fatalf("virial = %g, want %g", s.Virial(), want)
	}
}

func TestDensityProfileMembranePeak(t *testing.T) {
	s, err := NewRhodopsin(Config{NAtoms: 6000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	prof := s.DensityProfile(Membrane, 2, 16)
	if len(prof) != 16 {
		t.Fatalf("bins = %d", len(prof))
	}
	// Membrane density peaks in the central z bins and vanishes at edges.
	center := prof[7] + prof[8]
	edge := prof[0] + prof[15]
	if center <= edge {
		t.Fatalf("membrane profile not peaked: center %g, edge %g", center, edge)
	}
	if edge != 0 {
		t.Fatalf("membrane at slab edges: %g", edge)
	}
	// Degenerate arguments clamp instead of panicking.
	if len(s.DensityProfile(Water, -1, 0)) != 1 {
		t.Fatal("degenerate args must clamp")
	}
}

func TestPressurePositiveInLiquid(t *testing.T) {
	s := waterSystem(t, 864)
	s.Run(10, 0.002)
	if math.IsNaN(s.Pressure()) {
		t.Fatal("pressure NaN")
	}
	// The zero-value system reports zero pressure.
	var empty System
	if empty.Pressure() != 0 {
		t.Fatal("empty system pressure must be 0")
	}
}
