package md

import (
	"fmt"
	"math"

	"insitu/internal/comm"
)

// Distributed execution: the system is decomposed into slabs along x, one
// rank per slab, in the style of LAMMPS' spatial decomposition. Every step
// each rank (1) migrates atoms that drifted across its slab boundaries,
// (2) exchanges a cutoff-wide halo of neighbor positions, (3) computes
// Lennard-Jones forces on its owned atoms against owned+halo atoms, and
// (4) integrates its owned atoms with velocity Verlet. At the end the
// owned state is written back into the System (atoms carry global ids, so
// writes are disjoint).

// atomMsg is the flattened wire format of one atom: id, type, position,
// velocity, image counts.
const atomMsgLen = 1 + 1 + 3 + 3 + 3

// Point-to-point tags for the decomposition protocol.
const (
	tagMigrate = 100
	tagHalo    = 101
)

// slab holds one rank's owned atoms.
type slab struct {
	sys  *System
	rank *comm.Rank
	p    int     // world size
	w    float64 // slab width

	id    []int32
	typ   []Species
	pos   []Vec3
	vel   []Vec3
	force []Vec3
	image [][3]int32
}

// RunDistributed advances the system `steps` velocity-Verlet steps of size
// dt using `ranks` slab-decomposed workers, then writes the final state
// back into sys. The slab width must be at least the cutoff so a one-deep
// halo suffices; callers violating that get an error.
func RunDistributed(sys *System, ranks, steps int, dt float64) error {
	if ranks < 1 {
		return fmt.Errorf("md: distributed run needs at least 1 rank, got %d", ranks)
	}
	if w := sys.Box[0] / float64(ranks); ranks > 1 && w < sys.Cutoff {
		return fmt.Errorf("md: slab width %.3f below cutoff %.3f; use at most %d ranks",
			w, sys.Cutoff, int(sys.Box[0]/sys.Cutoff))
	}
	world, err := comm.NewWorld(ranks)
	if err != nil {
		return err
	}
	return world.Run(func(r *comm.Rank) error {
		s := newSlab(sys, r)
		if err := s.run(steps, dt); err != nil {
			return err
		}
		s.writeBack()
		return nil
	})
}

func newSlab(sys *System, r *comm.Rank) *slab {
	s := &slab{sys: sys, rank: r, p: r.Size(), w: sys.Box[0] / float64(r.Size())}
	for i := 0; i < sys.N; i++ {
		if s.owner(sys.Pos[i][0]) == r.ID() {
			s.id = append(s.id, int32(i))
			s.typ = append(s.typ, sys.Type[i])
			s.pos = append(s.pos, sys.Pos[i])
			s.vel = append(s.vel, sys.Vel[i])
			s.image = append(s.image, sys.Image[i])
		}
	}
	s.force = make([]Vec3, len(s.id))
	return s
}

// owner maps an x coordinate to its slab rank.
func (s *slab) owner(x float64) int {
	r := int(x / s.w)
	if r >= s.p {
		r = s.p - 1
	}
	if r < 0 {
		r = 0
	}
	return r
}

func (s *slab) run(steps int, dt float64) error {
	// Initial forces.
	if err := s.computeForces(); err != nil {
		return err
	}
	half := dt / 2
	for step := 0; step < steps; step++ {
		for i := range s.id {
			invM := 1 / s.sys.Params[s.typ[i]].Mass
			s.vel[i] = s.vel[i].Add(s.force[i].Scale(half * invM))
			s.pos[i] = s.pos[i].Add(s.vel[i].Scale(dt))
			s.wrap(i)
		}
		if err := s.migrate(); err != nil {
			return err
		}
		if err := s.computeForces(); err != nil {
			return err
		}
		for i := range s.id {
			invM := 1 / s.sys.Params[s.typ[i]].Mass
			s.vel[i] = s.vel[i].Add(s.force[i].Scale(half * invM))
		}
	}
	return nil
}

// wrap folds atom i into the periodic box, tracking images.
func (s *slab) wrap(i int) {
	for d := 0; d < 3; d++ {
		for s.pos[i][d] < 0 {
			s.pos[i][d] += s.sys.Box[d]
			s.image[i][d]--
		}
		for s.pos[i][d] >= s.sys.Box[d] {
			s.pos[i][d] -= s.sys.Box[d]
			s.image[i][d]++
		}
	}
}

// encode flattens atom i for the wire.
func (s *slab) encode(dst []float64, i int) {
	dst[0] = float64(s.id[i])
	dst[1] = float64(s.typ[i])
	dst[2], dst[3], dst[4] = s.pos[i][0], s.pos[i][1], s.pos[i][2]
	dst[5], dst[6], dst[7] = s.vel[i][0], s.vel[i][1], s.vel[i][2]
	dst[8], dst[9], dst[10] = float64(s.image[i][0]), float64(s.image[i][1]), float64(s.image[i][2])
}

// appendDecoded appends atoms from a wire payload to the slab.
func (s *slab) appendDecoded(data []float64) {
	for off := 0; off+atomMsgLen <= len(data); off += atomMsgLen {
		s.id = append(s.id, int32(data[off]))
		s.typ = append(s.typ, Species(data[off+1]))
		s.pos = append(s.pos, Vec3{data[off+2], data[off+3], data[off+4]})
		s.vel = append(s.vel, Vec3{data[off+5], data[off+6], data[off+7]})
		s.image = append(s.image, [3]int32{int32(data[off+8]), int32(data[off+9]), int32(data[off+10])})
	}
}

// migrate ships atoms that left the slab to their new owners. With slab
// width >= cutoff and small dt, atoms move at most one slab per step.
func (s *slab) migrate() error {
	if s.p == 1 {
		return nil
	}
	left := (s.rank.ID() - 1 + s.p) % s.p
	right := (s.rank.ID() + 1) % s.p
	var toLeft, toRight []float64
	keep := 0
	for i := range s.id {
		owner := s.owner(s.pos[i][0])
		switch {
		case owner == s.rank.ID():
			s.keepAtom(keep, i)
			keep++
		case owner == left || (owner < s.rank.ID() && owner != right):
			buf := make([]float64, atomMsgLen)
			s.encode(buf, i)
			toLeft = append(toLeft, buf...)
		default:
			buf := make([]float64, atomMsgLen)
			s.encode(buf, i)
			toRight = append(toRight, buf...)
		}
	}
	s.truncate(keep)

	s.rank.Send(left, tagMigrate, toLeft)
	s.rank.Send(right, tagMigrate, toRight)
	fromRight, _, err := s.rank.Recv(right, tagMigrate)
	if err != nil {
		return err
	}
	fromLeft, _, err := s.rank.Recv(left, tagMigrate)
	if err != nil {
		return err
	}
	// With p == 2 both payloads come from the same rank as two separate
	// messages matched FIFO; decoding both is correct in every topology.
	s.appendDecoded(fromRight)
	s.appendDecoded(fromLeft)
	s.force = make([]Vec3, len(s.id))
	return nil
}

func (s *slab) keepAtom(dst, src int) {
	if dst == src {
		return
	}
	s.id[dst] = s.id[src]
	s.typ[dst] = s.typ[src]
	s.pos[dst] = s.pos[src]
	s.vel[dst] = s.vel[src]
	s.image[dst] = s.image[src]
}

func (s *slab) truncate(n int) {
	s.id = s.id[:n]
	s.typ = s.typ[:n]
	s.pos = s.pos[:n]
	s.vel = s.vel[:n]
	s.image = s.image[:n]
}

// haloExchange returns the neighbor atoms (type + position) within one
// cutoff of this slab's boundaries. Payloads carry the global atom id so a
// receiver can drop duplicates: with two slabs, an atom sitting within the
// cutoff of both of its slab's boundaries is shipped through both, and the
// minimum-image force evaluation must see it only once (the box is at least
// two cutoffs wide whenever the decomposition is legal, so a single image
// is always the physical one).
func (s *slab) haloExchange() (typ []Species, pos []Vec3, err error) {
	if s.p == 1 {
		return nil, nil, nil
	}
	left := (s.rank.ID() - 1 + s.p) % s.p
	right := (s.rank.ID() + 1) % s.p
	lo := float64(s.rank.ID()) * s.w
	hi := lo + s.w

	var toLeft, toRight []float64
	for i := range s.id {
		x := s.pos[i][0]
		if x-lo < s.sys.Cutoff {
			toLeft = append(toLeft, float64(s.id[i]), float64(s.typ[i]), s.pos[i][0], s.pos[i][1], s.pos[i][2])
		}
		if hi-x < s.sys.Cutoff {
			toRight = append(toRight, float64(s.id[i]), float64(s.typ[i]), s.pos[i][0], s.pos[i][1], s.pos[i][2])
		}
	}
	s.rank.Send(left, tagHalo, toLeft)
	s.rank.Send(right, tagHalo, toRight)
	seen := make(map[int32]bool)
	decode := func(data []float64) {
		for off := 0; off+5 <= len(data); off += 5 {
			id := int32(data[off])
			if seen[id] {
				continue
			}
			seen[id] = true
			typ = append(typ, Species(data[off+1]))
			pos = append(pos, Vec3{data[off+2], data[off+3], data[off+4]})
		}
	}
	fromRight, _, err := s.rank.Recv(right, tagHalo)
	if err != nil {
		return nil, nil, err
	}
	fromLeft, _, err := s.rank.Recv(left, tagHalo)
	if err != nil {
		return nil, nil, err
	}
	decode(fromRight)
	decode(fromLeft)
	return typ, pos, nil
}

// computeForces evaluates LJ forces on owned atoms against owned + halo
// atoms. O(n^2) within the slab neighborhood — adequate at test scale and
// trivially correct against the serial cell-list path.
func (s *slab) computeForces() error {
	haloTyp, haloPos, err := s.haloExchange()
	if err != nil {
		return err
	}
	cut2 := s.sys.Cutoff * s.sys.Cutoff
	for i := range s.id {
		var f Vec3
		ti := s.typ[i]
		add := func(tj Species, pj Vec3) {
			d := s.sys.MinImage(s.pos[i], pj)
			r2 := d.Norm2()
			if r2 >= cut2 || r2 == 0 {
				return
			}
			sig2 := s.sys.sigma2[ti][tj]
			eps := s.sys.eps[ti][tj]
			sr2 := sig2 / r2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			fmag := 24 * eps * (2*sr12 - sr6) / r2
			f[0] += fmag * d[0]
			f[1] += fmag * d[1]
			f[2] += fmag * d[2]
		}
		for j := range s.id {
			if i == j {
				continue
			}
			add(s.typ[j], s.pos[j])
		}
		for j := range haloTyp {
			add(haloTyp[j], haloPos[j])
		}
		s.force[i] = f
	}
	return nil
}

// writeBack copies the slab's owned atoms into the shared System. Ids are
// disjoint across ranks, so concurrent writes do not overlap.
func (s *slab) writeBack() {
	for i, id := range s.id {
		s.sys.Pos[id] = s.pos[i]
		s.sys.Vel[id] = s.vel[i]
		s.sys.Image[id] = s.image[i]
	}
}

// KineticEnergyDistributed computes the kinetic energy via an Allreduce
// across slab ranks — a correctness cross-check used by tests.
func KineticEnergyDistributed(sys *System, ranks int) (float64, error) {
	world, err := comm.NewWorld(ranks)
	if err != nil {
		return 0, err
	}
	var out float64
	err = world.Run(func(r *comm.Rank) error {
		local := 0.0
		for i := r.ID(); i < sys.N; i += r.Size() {
			local += 0.5 * sys.Params[sys.Type[i]].Mass * sys.Vel[i].Norm2()
		}
		sum, err := r.Allreduce([]float64{local}, comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			out = sum[0]
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if math.IsNaN(out) {
		return 0, fmt.Errorf("md: NaN kinetic energy")
	}
	return out, nil
}
