package md

import (
	"math"
	"testing"
)

// serialReference advances a copy of the system serially and returns it.
func serialReference(t *testing.T, n, steps int, dt float64) *System {
	t.Helper()
	s, err := NewWaterIons(Config{NAtoms: n, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(steps, dt)
	return s
}

func distributedRun(t *testing.T, n, ranks, steps int, dt float64) *System {
	t.Helper()
	s, err := NewWaterIons(Config{NAtoms: n, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunDistributed(s, ranks, steps, dt); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDistributedSingleRankMatchesSerialClosely(t *testing.T) {
	// One rank, no halos: the only difference from the serial path is the
	// pair iteration order, so trajectories must agree very tightly over a
	// few steps.
	const n, steps, dt = 600, 5, 0.002
	ref := serialReference(t, n, steps, dt)
	got := distributedRun(t, n, 1, steps, dt)
	for i := 0; i < n; i++ {
		d := got.Pos[i].Sub(ref.Pos[i])
		if math.Sqrt(d.Norm2()) > 1e-7 {
			t.Fatalf("atom %d drifted %g from serial reference", i, math.Sqrt(d.Norm2()))
		}
	}
}

func TestDistributedMultiRankMatchesSerial(t *testing.T) {
	const n, steps, dt = 900, 5, 0.002
	ref := serialReference(t, n, steps, dt)
	for _, ranks := range []int{2, 3} {
		got := distributedRun(t, n, ranks, steps, dt)
		worst := 0.0
		for i := 0; i < n; i++ {
			d := got.Pos[i].Sub(ref.Pos[i])
			// Positions wrap, so compare through the minimum image.
			d = ref.MinImage(got.Pos[i], ref.Pos[i])
			if r := math.Sqrt(d.Norm2()); r > worst {
				worst = r
			}
		}
		if worst > 1e-6 {
			t.Fatalf("ranks=%d: max deviation %g from serial run", ranks, worst)
		}
	}
}

func TestDistributedEnergyStable(t *testing.T) {
	const n, dt = 1200, 0.002
	s, err := NewWaterIons(Config{NAtoms: n, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ke0 := s.KineticEnergy()
	if err := RunDistributed(s, 3, 40, dt); err != nil {
		t.Fatal(err)
	}
	ke1 := s.KineticEnergy()
	// A stable liquid must not blow up: kinetic energy stays within a
	// factor of a few of its equilibrated value.
	if ke1 <= 0 || ke1 > 5*ke0 || math.IsNaN(ke1) {
		t.Fatalf("kinetic energy unstable: %g -> %g", ke0, ke1)
	}
}

func TestDistributedConservesAtoms(t *testing.T) {
	const n = 800
	s, err := NewWaterIons(Config{NAtoms: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Species]int{}
	for _, sp := range s.Type {
		counts[sp]++
	}
	if err := RunDistributed(s, 4, 25, 0.002); err != nil {
		t.Fatal(err)
	}
	after := map[Species]int{}
	for _, sp := range s.Type {
		after[sp]++
	}
	for sp, c := range counts {
		if after[sp] != c {
			t.Fatalf("species %v count changed: %d -> %d", sp, c, after[sp])
		}
	}
	for i := 0; i < s.N; i++ {
		for d := 0; d < 3; d++ {
			if s.Pos[i][d] < 0 || s.Pos[i][d] >= s.Box[d] {
				t.Fatalf("atom %d escaped the box: %v", i, s.Pos[i])
			}
		}
	}
}

func TestDistributedTooManyRanks(t *testing.T) {
	s, err := NewWaterIons(Config{NAtoms: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 200 atoms -> box ~6.6; cutoff 2.5 allows at most 2 slabs.
	if err := RunDistributed(s, 16, 1, 0.002); err == nil {
		t.Fatal("expected slab-width error")
	}
	if err := RunDistributed(s, 0, 1, 0.002); err == nil {
		t.Fatal("expected rank-count error")
	}
}

func TestDistributedDeterministic(t *testing.T) {
	a := distributedRun(t, 700, 2, 8, 0.002)
	b := distributedRun(t, 700, 2, 8, 0.002)
	for i := 0; i < a.N; i++ {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatalf("nondeterministic distributed run at atom %d", i)
		}
	}
}

func TestKineticEnergyDistributed(t *testing.T) {
	s, err := NewWaterIons(Config{NAtoms: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	want := s.KineticEnergy()
	got, err := KineticEnergyDistributed(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("distributed KE %g != serial %g", got, want)
	}
}
