package md

import "strings"

// RenderSlice draws an ASCII projection of a slab of the system — the
// text-mode counterpart of the paper's Figure 3 (the rhodopsin snapshot:
// protein at the center, membrane slab across the middle, water above and
// below, scattered ions). The slab is centered on the plane y = Box[1]/2
// with thickness `thick`; particles project onto an (x, z) character grid
// of the given size. When several species land in one cell the rarest wins
// (protein > ion > hydronium > membrane > water), so minority structure
// stays visible.
func (s *System) RenderSlice(width, height int, thick float64) string {
	if width < 1 {
		width = 60
	}
	if height < 1 {
		height = 24
	}
	if thick <= 0 {
		thick = s.Box[1] / 8
	}
	glyph := map[Species]byte{
		Water:     '.',
		Membrane:  '=',
		Hydronium: 'h',
		Cation:    '+',
		Anion:     '-',
		Protein:   '#',
	}
	rank := map[Species]int{ // higher rank wins the cell
		Water:     0,
		Membrane:  1,
		Hydronium: 2,
		Cation:    3,
		Anion:     3,
		Protein:   4,
	}
	grid := make([][]Species, height)
	occupied := make([][]bool, height)
	for r := range grid {
		grid[r] = make([]Species, width)
		occupied[r] = make([]bool, width)
	}
	yMid := s.Box[1] / 2
	for i := 0; i < s.N; i++ {
		if d := s.Pos[i][1] - yMid; d < -thick/2 || d > thick/2 {
			continue
		}
		cx := int(s.Pos[i][0] / s.Box[0] * float64(width))
		cz := int(s.Pos[i][2] / s.Box[2] * float64(height))
		if cx >= width {
			cx = width - 1
		}
		if cz >= height {
			cz = height - 1
		}
		sp := s.Type[i]
		if !occupied[cz][cx] || rank[sp] > rank[grid[cz][cx]] {
			grid[cz][cx] = sp
			occupied[cz][cx] = true
		}
	}
	var b strings.Builder
	b.Grow((width + 1) * height)
	for r := height - 1; r >= 0; r-- {
		for c := 0; c < width; c++ {
			if occupied[r][c] {
				b.WriteByte(glyph[grid[r][c]])
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
