package coupling

import (
	"testing"

	"insitu/internal/analysis"
	"insitu/internal/core"
	"insitu/internal/obs"
)

// contains reports whether outer fully encloses inner on the same track.
func contains(outer, inner obs.Event) bool {
	return outer.Track == inner.Track &&
		outer.Start <= inner.Start &&
		inner.Start+inner.Dur <= outer.Start+outer.Dur
}

func TestRunnerTraceNesting(t *testing.T) {
	kernels, rec, res := twoKernelSetup()
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	r := &Runner{
		Step:    func() {},
		Kernels: kernels,
		Rec:     rec,
		Res:     res,
		Trace:   tr,
		Metrics: reg,
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}

	events := tr.Events()
	var steps, analyzes, outputs []obs.Event
	for _, e := range events {
		switch {
		case e.Name == "step" && e.Cat == "sim":
			steps = append(steps, e)
		case e.Cat == "kernel" && e.Name != "k1/setup" && e.Name != "k2/setup":
			analyzes = append(analyzes, e)
		case e.Cat == "output":
			outputs = append(outputs, e)
		}
	}
	if len(steps) != res.Steps {
		t.Fatalf("step spans = %d, want %d", len(steps), res.Steps)
	}
	// k1: 4 analyses, k2: 2 → 6 kernel spans; 3 output spans.
	if len(analyzes) != 6 {
		t.Fatalf("kernel spans = %d, want 6", len(analyzes))
	}
	if len(outputs) != 3 {
		t.Fatalf("output spans = %d, want 3", len(outputs))
	}
	// Every kernel and output span must nest inside exactly one step span,
	// and the step arg must agree.
	for _, in := range append(analyzes, outputs...) {
		hits := 0
		for _, st := range steps {
			if contains(st, in) {
				hits++
				if st.Args["step"] != in.Args["step"] {
					t.Errorf("span %s step arg %v inside step %v", in.Name, in.Args["step"], st.Args["step"])
				}
			}
		}
		if hits != 1 {
			t.Errorf("span %s at %v nests in %d step spans, want 1", in.Name, in.Start, hits)
		}
	}

	var stepCount, k1Analyses float64
	for _, m := range reg.Snapshot() {
		switch {
		case m.Name == "coupling_steps_total":
			stepCount = m.Value
		case m.Name == "coupling_analyses_total" && m.Labels["kernel"] == "k1":
			k1Analyses = m.Value
		}
	}
	if stepCount != float64(res.Steps) {
		t.Errorf("coupling_steps_total = %v, want %d", stepCount, res.Steps)
	}
	if k1Analyses != 4 {
		t.Errorf("coupling_analyses_total{kernel=k1} = %v, want 4", k1Analyses)
	}
}

func TestPlacementRunnerTelemetry(t *testing.T) {
	rec, res := placementRec()
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	staged := StagedAnalysis{
		Name: "remote",
		Capture: func(step int) (func() error, int64, error) {
			return func() error { return nil }, 1 << 20, nil
		},
	}
	r := &PlacementRunner{
		Step:    func() {},
		InSitu:  map[string]analysis.Kernel{"local": &fakeKernel{name: "local"}},
		Staged:  map[string]StagedAnalysis{"remote": staged},
		Rec:     rec,
		Res:     res,
		Workers: 2,
		Trace:   tr,
		Metrics: reg,
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	var captures, stagedSpans int
	for _, e := range tr.Events() {
		switch e.Cat {
		case "transfer":
			captures++
			if e.Track != 0 {
				t.Errorf("capture span on track %d, want 0", e.Track)
			}
		case "staged":
			stagedSpans++
			if e.Track < 1 || e.Track > 2 {
				t.Errorf("staged span on track %d, want worker track 1 or 2", e.Track)
			}
		}
	}
	if captures != 4 || stagedSpans != 4 {
		t.Fatalf("capture spans = %d, staged spans = %d, want 4 and 4", captures, stagedSpans)
	}

	var transfer, stagedRuns float64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "placement_transfer_bytes_total":
			transfer = m.Value
		case "placement_staged_runs_total":
			stagedRuns = m.Value
		}
	}
	if transfer != float64(rep.Transferred) {
		t.Errorf("placement_transfer_bytes_total = %v, want %d", transfer, rep.Transferred)
	}
	if stagedRuns != 4 {
		t.Errorf("placement_staged_runs_total = %v, want 4", stagedRuns)
	}
}

func TestReportEdgeCases(t *testing.T) {
	// A zero-step run completes without touching any kernel.
	kernels, rec, _ := twoKernelSetup()
	r := &Runner{Step: func() {}, Kernels: kernels, Rec: rec, Res: core.Resources{Steps: 0, TimeThreshold: 1}}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 0 || rep.SimTime != 0 {
		t.Fatalf("zero-step report: %+v", rep)
	}
	if got := rep.Kernel("k1").Analyses; got != 0 {
		t.Fatalf("zero-step run analyzed %d times", got)
	}
	// Utilization is defined (setup time only) and an unknown kernel is nil.
	if u := rep.Utilization(core.Resources{TimeThreshold: 1}); u < 0 {
		t.Fatalf("utilization = %g", u)
	}
	if rep.Utilization(core.Resources{}) != 0 {
		t.Fatal("utilization with no threshold must be 0")
	}
	if rep.Utilization(core.Resources{TimeThreshold: -5}) != 0 {
		t.Fatal("utilization with negative threshold must be 0")
	}
	if rep.Kernel("no-such-kernel") != nil {
		t.Fatal("unknown kernel must be nil")
	}
	if (&Report{}).Kernel("k1") != nil {
		t.Fatal("empty report must return nil kernel")
	}
	if (&Report{}).Utilization(core.Resources{TimeThreshold: 2}) != 0 {
		t.Fatal("empty report utilization must be 0")
	}
}
