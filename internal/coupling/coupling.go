// Package coupling executes a recommended in-situ schedule against a live
// simulation: the Figure-1 loop in which simulation steps alternate with
// analysis steps and analysis-output steps at the frequencies the optimizer
// chose. The runner measures the actual time spent in each phase, which is
// how the paper verifies that executed schedules land within the threshold
// (the "% within threshold" columns of Tables 5 and 6).
package coupling

import (
	"fmt"
	"io"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/core"
	"insitu/internal/obs"
)

// Runner couples one simulation with a set of kernels under a schedule.
type Runner struct {
	// Step advances the simulation one time step.
	Step func()
	// Kernels maps schedule names to kernel implementations.
	Kernels map[string]analysis.Kernel
	// Rec is the schedule to execute.
	Rec *core.Recommendation
	// Res is the envelope the schedule was solved against.
	Res core.Resources
	// Output receives analysis output; defaults to io.Discard.
	Output io.Writer
	// Trace, when non-nil, records the run as a timeline: one span per
	// simulation step (category "sim") containing one span per kernel
	// invocation (category "kernel") and output flush (category "output").
	Trace *obs.Tracer
	// Metrics, when non-nil, receives step counters, per-kernel analysis
	// and output counters, and a step-duration histogram.
	Metrics *obs.Registry
	// Ledger, when non-nil, receives the run as schema-versioned JSONL
	// events: run_start/run_end around the run, one step event per
	// simulation step, and one analysis/output event per kernel invocation
	// (with duration and output bytes). See obs.EventLog.
	Ledger *obs.EventLog
	// Observe, when non-nil, receives a copy of every ledger-style event
	// the run emits, whether or not a Ledger is attached. This is the live
	// monitoring hook: point it at a runmon.Monitor's Observe method and
	// drift is scored as the run happens rather than post-hoc.
	Observe func(obs.LedgerEvent)
	// Replan, when non-nil, is consulted at the end of every simulation
	// step, after the step's events have been emitted. A non-nil return
	// swaps the running schedule from the next step on: kernels newly
	// enabled are Setup() at the swap (their setup time joins the analysis
	// budget), kernels dropped stop being invoked but keep their report.
	// This is the drift-adaptive hook: point it at a
	// replan.Replanner.Hook() and the run follows adopted reschedules.
	Replan func(step int) *core.Recommendation
	// App names the application on the ledger's run_start event.
	App string
}

// emit routes one event to the ledger (if any) and the Observe hook (if any).
func (r *Runner) emit(e obs.LedgerEvent) {
	r.Ledger.Append(e)
	if r.Observe != nil {
		r.Observe(e)
	}
}

// emitTimed emits a span-style event, converting dur to ledger microseconds.
func (r *Runner) emitTimed(typ, name string, step int, dur time.Duration) {
	r.emit(obs.LedgerEvent{Type: typ, Name: name, Step: step, Dur: float64(dur.Nanoseconds()) / 1e3})
}

// KernelReport summarizes one kernel's execution.
type KernelReport struct {
	Name       string
	Analyses   int
	Outputs    int
	SetupTime  time.Duration
	PreTime    time.Duration // total facilitation time across all steps
	Analyze    time.Duration // total analysis compute time
	OutputTime time.Duration
	OutBytes   int64
}

// Total returns the kernel's full contribution to the analysis budget.
func (k KernelReport) Total() time.Duration {
	return k.SetupTime + k.PreTime + k.Analyze + k.OutputTime
}

// Report is the outcome of a coupled run.
type Report struct {
	Steps        int
	SimTime      time.Duration
	AnalysisTime time.Duration
	Kernels      []KernelReport
}

// Utilization returns the executed analysis time as a fraction of the
// threshold (>1 means the schedule overshot).
func (r *Report) Utilization(res core.Resources) float64 {
	if res.TimeThreshold <= 0 {
		return 0
	}
	return r.AnalysisTime.Seconds() / res.TimeThreshold
}

// Kernel returns the report for the named kernel, or nil.
func (r *Report) Kernel(name string) *KernelReport {
	for i := range r.Kernels {
		if r.Kernels[i].Name == name {
			return &r.Kernels[i]
		}
	}
	return nil
}

// Run executes the schedule over Res.Steps simulation steps.
func (r *Runner) Run() (*Report, error) {
	if r.Step == nil {
		return nil, fmt.Errorf("coupling: runner needs a Step function")
	}
	if r.Rec == nil {
		return nil, fmt.Errorf("coupling: runner needs a recommendation")
	}
	out := r.Output
	if out == nil {
		out = io.Discard
	}
	r.Trace.SetTrackName(0, "sim+analysis")

	type active struct {
		kernel   analysis.Kernel
		isA, isO map[int]bool
		report   *KernelReport
		// Telemetry handles, resolved once so the loop stays cheap; all
		// are nil-safe no-ops when Metrics is nil.
		mAnalyses *obs.Counter
		mOutputs  *obs.Counter
		mOutBytes *obs.Counter
	}
	mSteps := r.Metrics.Counter("coupling_steps_total", nil)
	mStepDur := r.Metrics.Histogram("coupling_step_seconds", nil, nil)
	rep := &Report{Steps: r.Res.Steps}
	// Kernel reports are allocated individually and keyed by name so a
	// mid-run replan can enable a kernel the up-front schedule left out (or
	// re-enable one it dropped) without invalidating accumulated totals;
	// rep.Kernels is assembled from them, in first-enabled order, at the end.
	reports := map[string]*KernelReport{}
	var reportOrder []string
	report := func(name string) *KernelReport {
		if kr, ok := reports[name]; ok {
			return kr
		}
		kr := &KernelReport{Name: name}
		reports[name] = kr
		reportOrder = append(reportOrder, name)
		return kr
	}
	// buildActive resolves a schedule into the per-step execution set,
	// running Setup (timed into the budget) for kernels on their first
	// enable only — a replan that keeps a kernel running must not re-pay it.
	setup := map[string]bool{}
	buildActive := func(rec *core.Recommendation) ([]active, error) {
		var run []active
		for _, s := range rec.Schedules {
			if !s.Enabled {
				continue
			}
			k, ok := r.Kernels[s.Name]
			if !ok {
				return nil, fmt.Errorf("coupling: no kernel registered for analysis %q", s.Name)
			}
			kr := report(s.Name)
			if !setup[s.Name] {
				setup[s.Name] = true
				sp := r.Trace.Begin(s.Name+"/setup", "kernel")
				t0 := time.Now()
				if _, err := k.Setup(); err != nil {
					return nil, fmt.Errorf("coupling: setup %s: %w", s.Name, err)
				}
				kr.SetupTime = time.Since(t0)
				sp.End()
			}
			labels := obs.Labels{"kernel": s.Name}
			run = append(run, active{
				kernel:    k,
				isA:       intSet(s.AnalysisSteps),
				isO:       intSet(s.OutputSteps),
				report:    kr,
				mAnalyses: r.Metrics.Counter("coupling_analyses_total", labels),
				mOutputs:  r.Metrics.Counter("coupling_outputs_total", labels),
				mOutBytes: r.Metrics.Counter("coupling_output_bytes_total", labels),
			})
		}
		return run, nil
	}
	run, err := buildActive(r.Rec)
	if err != nil {
		return nil, err
	}

	r.emit(obs.LedgerEvent{Type: obs.LedgerRunStart, Name: r.App, Args: map[string]float64{
		"steps": float64(r.Res.Steps), "kernels": float64(len(run)),
	}})
	for step := 1; step <= r.Res.Steps; step++ {
		stepSpan := r.Trace.Begin("step", "sim").Arg("step", float64(step))
		advSpan := r.Trace.Begin("advance", "sim")
		t0 := time.Now()
		r.Step()
		dt := time.Since(t0)
		advSpan.End()
		rep.SimTime += dt
		mSteps.Inc()
		mStepDur.Observe(dt.Seconds())
		r.emitTimed(obs.LedgerStep, "", step, dt)

		for _, a := range run {
			t1 := time.Now()
			if _, err := a.kernel.PreStep(step); err != nil {
				return nil, fmt.Errorf("coupling: prestep %s at %d: %w", a.report.Name, step, err)
			}
			a.report.PreTime += time.Since(t1)

			if a.isA[step] {
				sp := r.Trace.Begin(a.report.Name+"/analyze", "kernel").Arg("step", float64(step))
				t2 := time.Now()
				if _, err := a.kernel.Analyze(step); err != nil {
					return nil, fmt.Errorf("coupling: analyze %s at %d: %w", a.report.Name, step, err)
				}
				da := time.Since(t2)
				a.report.Analyze += da
				a.report.Analyses++
				sp.End()
				a.mAnalyses.Inc()
				r.emitTimed(obs.LedgerAnalysis, a.report.Name, step, da)
			}
			if a.isO[step] {
				sp := r.Trace.Begin(a.report.Name+"/output", "output").Arg("step", float64(step))
				t3 := time.Now()
				n, err := a.kernel.Output(out)
				if err != nil {
					return nil, fmt.Errorf("coupling: output %s at %d: %w", a.report.Name, step, err)
				}
				do := time.Since(t3)
				a.report.OutputTime += do
				a.report.OutBytes += n
				a.report.Outputs++
				sp.End()
				a.mOutputs.Inc()
				a.mOutBytes.Add(float64(n))
				r.emit(obs.LedgerEvent{
					Type: obs.LedgerOutput, Name: a.report.Name, Step: step,
					Dur: float64(do.Nanoseconds()) / 1e3, Bytes: n,
				})
			}
		}
		if r.Replan != nil {
			if next := r.Replan(step); next != nil {
				run, err = buildActive(next)
				if err != nil {
					return nil, err
				}
			}
		}
		stepSpan.End()
	}
	for _, name := range reportOrder {
		rep.Kernels = append(rep.Kernels, *reports[name])
	}
	for i := range rep.Kernels {
		rep.AnalysisTime += rep.Kernels[i].Total()
	}
	r.emit(obs.LedgerEvent{Type: obs.LedgerRunEnd, Args: map[string]float64{
		"sim_seconds":      rep.SimTime.Seconds(),
		"analysis_seconds": rep.AnalysisTime.Seconds(),
	}})
	return rep, nil
}

func intSet(xs []int) map[int]bool {
	m := make(map[int]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// SpecFromCosts converts measured kernel costs into a scheduling spec,
// wiring the measured phases onto the Table-1 parameters. Weight defaults to
// 1; MinInterval must be supplied by the caller (it is a science choice, not
// a measurement).
func SpecFromCosts(c analysis.Costs, minInterval int) core.AnalysisSpec {
	return core.AnalysisSpec{
		Name:        c.Kernel,
		FT:          c.FT.Seconds(),
		IT:          c.IT.Seconds(),
		CT:          c.CT.Seconds(),
		OT:          c.OT.Seconds(),
		FM:          c.FM,
		IM:          c.IM,
		CM:          c.CM,
		OM:          c.OM,
		MinInterval: minInterval,
	}
}

// MeasureAndSolve profiles every kernel against the simulation (stepFn is
// shared), builds the spec set, and solves for the optimal schedule — the
// full §4-then-§3.2 pipeline in one call. Profiling advances the simulation
// by probeSteps steps per kernel.
func MeasureAndSolve(kernels []analysis.Kernel, stepFn func(), probeSteps, minInterval int, res core.Resources) (*core.Recommendation, []core.AnalysisSpec, error) {
	var specs []core.AnalysisSpec
	for _, k := range kernels {
		interval := probeSteps / 2
		if interval < 1 {
			interval = 1
		}
		costs, err := analysis.Measure(k, stepFn, probeSteps, interval)
		if err != nil {
			return nil, nil, err
		}
		specs = append(specs, SpecFromCosts(costs, minInterval))
	}
	rec, err := core.Solve(specs, res, core.SolveOptions{})
	if err != nil {
		return nil, nil, err
	}
	return rec, specs, nil
}
