package coupling

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/analysis/mdkernels"
	"insitu/internal/core"
	"insitu/internal/sim/md"
)

// fakeKernel counts lifecycle calls and spins briefly in Analyze.
type fakeKernel struct {
	name                       string
	setup, pre, analyze, outs  int
	failSetup, failAnalyze     bool
	lastAnalyzed, lastOutputAt int
}

func (f *fakeKernel) Name() string { return f.name }
func (f *fakeKernel) Setup() (int64, error) {
	f.setup++
	if f.failSetup {
		return 0, fmt.Errorf("setup boom")
	}
	return 100, nil
}
func (f *fakeKernel) PreStep(step int) (int64, error) { f.pre++; return 8, nil }
func (f *fakeKernel) Analyze(step int) (int64, error) {
	f.analyze++
	f.lastAnalyzed = step
	if f.failAnalyze {
		return 0, fmt.Errorf("analyze boom")
	}
	return 16, nil
}
func (f *fakeKernel) Output(dst io.Writer) (int64, error) {
	f.outs++
	n, err := dst.Write([]byte("out\n"))
	return int64(n), err
}
func (f *fakeKernel) Free() {}

func twoKernelSetup() (map[string]analysis.Kernel, *core.Recommendation, core.Resources) {
	res := core.Resources{Steps: 20, TimeThreshold: 100}
	rec := &core.Recommendation{Schedules: []core.AnalysisSchedule{
		{Name: "k1", Enabled: true, Count: 4, AnalysisSteps: []int{5, 10, 15, 20}, OutputSteps: []int{10, 20}, Outputs: 2},
		{Name: "k2", Enabled: true, Count: 2, AnalysisSteps: []int{10, 20}, OutputSteps: []int{20}, Outputs: 1},
		{Name: "off", Enabled: false},
	}}
	return map[string]analysis.Kernel{
		"k1": &fakeKernel{name: "k1"},
		"k2": &fakeKernel{name: "k2"},
	}, rec, res
}

func TestRunnerExecutesSchedule(t *testing.T) {
	kernels, rec, res := twoKernelSetup()
	steps := 0
	var buf bytes.Buffer
	r := &Runner{
		Step:    func() { steps++ },
		Kernels: kernels,
		Rec:     rec,
		Res:     res,
		Output:  &buf,
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if steps != 20 {
		t.Fatalf("sim steps = %d", steps)
	}
	k1 := kernels["k1"].(*fakeKernel)
	k2 := kernels["k2"].(*fakeKernel)
	if k1.setup != 1 || k1.pre != 20 || k1.analyze != 4 || k1.outs != 2 {
		t.Fatalf("k1 lifecycle: %+v", k1)
	}
	if k2.analyze != 2 || k2.outs != 1 {
		t.Fatalf("k2 lifecycle: %+v", k2)
	}
	if rep.Kernel("k1").Analyses != 4 || rep.Kernel("k1").Outputs != 2 {
		t.Fatalf("report: %+v", rep.Kernel("k1"))
	}
	if rep.Kernel("k1").OutBytes != 8 {
		t.Fatalf("k1 out bytes = %d", rep.Kernel("k1").OutBytes)
	}
	if got := buf.String(); got != "out\nout\nout\n" {
		t.Fatalf("output = %q", got)
	}
	if rep.Kernel("missing") != nil {
		t.Fatal("missing kernel should be nil")
	}
	if rep.AnalysisTime < 0 {
		t.Fatal("negative analysis time")
	}
	u := rep.Utilization(res)
	if u < 0 || u > 1 {
		t.Fatalf("utilization = %g", u)
	}
	if rep.Utilization(core.Resources{}) != 0 {
		t.Fatal("zero-threshold utilization must be 0")
	}
}

func TestRunnerDisabledKernelNotTouched(t *testing.T) {
	kernels, rec, res := twoKernelSetup()
	off := &fakeKernel{name: "off"}
	kernels["off"] = off
	r := &Runner{Step: func() {}, Kernels: kernels, Rec: rec, Res: res}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if off.setup != 0 || off.pre != 0 {
		t.Fatal("disabled kernel was touched")
	}
}

func TestRunnerErrors(t *testing.T) {
	kernels, rec, res := twoKernelSetup()
	if _, err := (&Runner{Kernels: kernels, Rec: rec, Res: res}).Run(); err == nil {
		t.Fatal("expected missing-step error")
	}
	if _, err := (&Runner{Step: func() {}, Kernels: kernels, Res: res}).Run(); err == nil {
		t.Fatal("expected missing-recommendation error")
	}
	delete(kernels, "k2")
	if _, err := (&Runner{Step: func() {}, Kernels: kernels, Rec: rec, Res: res}).Run(); err == nil {
		t.Fatal("expected missing-kernel error")
	}

	kernels, rec, res = twoKernelSetup()
	kernels["k1"].(*fakeKernel).failSetup = true
	if _, err := (&Runner{Step: func() {}, Kernels: kernels, Rec: rec, Res: res}).Run(); err == nil {
		t.Fatal("expected setup error")
	}
	kernels, rec, res = twoKernelSetup()
	kernels["k1"].(*fakeKernel).failAnalyze = true
	if _, err := (&Runner{Step: func() {}, Kernels: kernels, Rec: rec, Res: res}).Run(); err == nil {
		t.Fatal("expected analyze error")
	}
}

func TestSpecFromCosts(t *testing.T) {
	c := analysis.Costs{
		Kernel: "k", FT: time.Second, IT: time.Millisecond,
		CT: 2 * time.Second, OT: 500 * time.Millisecond,
		FM: 1, IM: 2, CM: 3, OM: 4,
	}
	s := SpecFromCosts(c, 50)
	if s.Name != "k" || s.FT != 1 || s.IT != 0.001 || s.CT != 2 || s.OT != 0.5 {
		t.Fatalf("spec times: %+v", s)
	}
	if s.FM != 1 || s.IM != 2 || s.CM != 3 || s.OM != 4 || s.MinInterval != 50 {
		t.Fatalf("spec memory: %+v", s)
	}
}

func TestMeasureAndSolveEndToEnd(t *testing.T) {
	// Real pipeline on the MD mini-app: profile kernels, solve, execute.
	sys, err := md.NewWaterIons(md.Config{NAtoms: 1200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mkKernels := func() []analysis.Kernel {
		k1, err := mdkernels.NewHydroniumRDF(sys, mdkernels.RDFConfig{Bins: 16, Ranks: 2})
		if err != nil {
			t.Fatal(err)
		}
		return []analysis.Kernel{k1}
	}
	res := core.Resources{Steps: 30, TimeThreshold: 10, MemThreshold: 1 << 30}
	rec, specs, err := MeasureAndSolve(mkKernels(), func() { sys.Step(0.002) }, 4, 10, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].CT <= 0 {
		t.Fatalf("specs = %+v", specs)
	}
	s := rec.Schedule(specs[0].Name)
	if s == nil || !s.Enabled || s.Count == 0 {
		t.Fatalf("kernel not scheduled: %+v", rec)
	}

	// Execute the recommendation on a fresh kernel instance.
	ks := mkKernels()
	runner := &Runner{
		Step:    func() { sys.Step(0.002) },
		Kernels: map[string]analysis.Kernel{specs[0].Name: ks[0]},
		Rec:     rec,
		Res:     res,
	}
	rep, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	kr := rep.Kernel(specs[0].Name)
	if kr.Analyses != s.Count {
		t.Fatalf("executed %d analyses, scheduled %d", kr.Analyses, s.Count)
	}
	if kr.Outputs != s.Outputs {
		t.Fatalf("executed %d outputs, scheduled %d", kr.Outputs, s.Outputs)
	}
	if rep.SimTime <= 0 {
		t.Fatal("sim time not measured")
	}
}

// TestRunnerReplanSwapsSchedule drives the Replan hook directly: at step 10
// the schedule swaps to one that drops k1, re-times k2, and enables a kernel
// the up-front plan left out. The previously disabled kernel must be Setup()
// exactly once (at the swap, not at run start), k1 must stop executing, and
// every kernel's accumulated report must survive the swap.
func TestRunnerReplanSwapsSchedule(t *testing.T) {
	kernels, rec, res := twoKernelSetup()
	off := &fakeKernel{name: "off"}
	kernels["off"] = off
	next := &core.Recommendation{Schedules: []core.AnalysisSchedule{
		{Name: "k1", Enabled: false},
		{Name: "k2", Enabled: true, Count: 2, AnalysisSteps: []int{14, 18}, OutputSteps: []int{18}, Outputs: 1},
		{Name: "off", Enabled: true, Count: 2, AnalysisSteps: []int{12, 16}, OutputSteps: []int{16}, Outputs: 1},
	}}
	var replanSteps []int
	r := &Runner{
		Step:    func() {},
		Kernels: kernels,
		Rec:     rec,
		Res:     res,
		Replan: func(step int) *core.Recommendation {
			replanSteps = append(replanSteps, step)
			if step == 10 {
				return next
			}
			return nil
		},
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(replanSteps) != 20 || replanSteps[0] != 1 || replanSteps[19] != 20 {
		t.Fatalf("replan hook called at %v, want every step 1..20", replanSteps)
	}
	k1 := kernels["k1"].(*fakeKernel)
	k2 := kernels["k2"].(*fakeKernel)
	// k1 ran its steps at 5 and 10 only: the swap happens after step 10.
	if k1.analyze != 2 || k1.lastAnalyzed != 10 {
		t.Fatalf("k1 analyze=%d last=%d, want 2 analyses ending at step 10", k1.analyze, k1.lastAnalyzed)
	}
	// k2 ran at 10 from the old schedule, then 14 and 18 from the new one.
	if k2.analyze != 3 || k2.lastAnalyzed != 18 {
		t.Fatalf("k2 analyze=%d last=%d, want 3 analyses ending at step 18", k2.analyze, k2.lastAnalyzed)
	}
	if k2.setup != 1 {
		t.Fatalf("k2 set up %d times across the swap, want 1", k2.setup)
	}
	// The newly enabled kernel is set up once, at the swap, and runs the new
	// schedule only.
	if off.setup != 1 {
		t.Fatalf("off set up %d times, want 1", off.setup)
	}
	if off.analyze != 2 || off.outs != 1 {
		t.Fatalf("off analyze=%d outs=%d, want 2 and 1", off.analyze, off.outs)
	}
	kr := rep.Kernel("off")
	if kr == nil || kr.Analyses != 2 || kr.Outputs != 1 {
		t.Fatalf("off report %+v, want 2 analyses and 1 output", kr)
	}
	if rep.Kernel("k1") == nil || rep.Kernel("k1").Analyses != 2 {
		t.Fatalf("k1 report lost across the swap: %+v", rep.Kernel("k1"))
	}
	if got := rep.Kernel("k2"); got == nil || got.Analyses != 3 {
		t.Fatalf("k2 report did not accumulate across the swap: %+v", got)
	}
}
