package coupling

import (
	"fmt"
	"io"
	"sync"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/core"
	"insitu/internal/obs"
)

// StagedAnalysis is an analysis executed in co-analysis mode: at each
// scheduled step, Capture snapshots whatever simulation state the analysis
// needs (the "transfer" — its cost is charged to the simulation site, which
// blocks while its memory is shipped) and returns a closure that performs
// the analysis offline on staging resources, detached from the live
// simulation.
type StagedAnalysis struct {
	Name string
	// Capture snapshots the state for the given step. The returned closure
	// runs on a staging worker; the returned byte count is the modeled
	// transfer volume.
	Capture func(step int) (func() error, int64, error)
}

// PlacementRunner executes a placement recommendation: in-situ analyses run
// inline in the simulation loop exactly like Runner; co-analysis analyses
// block the simulation only for Capture and then proceed concurrently on
// staging workers — the loosely-coupled mode of §1/§2.1.
type PlacementRunner struct {
	Step    func()
	InSitu  map[string]analysis.Kernel
	Staged  map[string]StagedAnalysis
	Rec     *core.PlacementRecommendation
	Res     core.PlacementResources
	Workers int // staging workers (default 2)
	// Trace, when non-nil, records the run as a timeline: the simulation
	// loop on track 0 (step, in-situ kernel, and capture/transfer spans)
	// and each staging worker on track 1+w.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives run counters and transfer volumes.
	Metrics *obs.Registry
}

// PlacementReport is the outcome of a placed run.
type PlacementReport struct {
	Steps       int
	SimTime     time.Duration // simulation compute only
	SimSiteTime time.Duration // in-situ analysis + capture time at the simulation site
	StageTime   time.Duration // total compute on staging workers
	StageWall   time.Duration // wall time from first dispatch to drain
	InSituRuns  map[string]int
	StagedRuns  map[string]int
	Transferred int64
}

// Run executes the placement schedule over Res.Steps steps.
func (r *PlacementRunner) Run() (*PlacementReport, error) {
	if r.Step == nil {
		return nil, fmt.Errorf("coupling: placement runner needs a Step function")
	}
	if r.Rec == nil {
		return nil, fmt.Errorf("coupling: placement runner needs a recommendation")
	}
	workers := r.Workers
	if workers <= 0 {
		workers = 2
	}

	rep := &PlacementReport{
		Steps:      r.Res.Steps,
		InSituRuns: map[string]int{},
		StagedRuns: map[string]int{},
	}

	type inSituActive struct {
		kernel analysis.Kernel
		isA    map[int]bool
		isO    map[int]bool
		name   string
	}
	type stagedActive struct {
		sa  StagedAnalysis
		isA map[int]bool
	}
	var inSitu []inSituActive
	var staged []stagedActive
	for _, s := range r.Rec.Schedules {
		if !s.Enabled {
			continue
		}
		switch s.Site {
		case core.InSitu:
			k, ok := r.InSitu[s.Name]
			if !ok {
				return nil, fmt.Errorf("coupling: no in-situ kernel for %q", s.Name)
			}
			t0 := time.Now()
			if _, err := k.Setup(); err != nil {
				return nil, fmt.Errorf("coupling: setup %s: %w", s.Name, err)
			}
			rep.SimSiteTime += time.Since(t0)
			inSitu = append(inSitu, inSituActive{
				kernel: k,
				isA:    intSet(s.AnalysisSteps),
				isO:    intSet(s.OutputSteps),
				name:   s.Name,
			})
		case core.CoAnalysis:
			sa, ok := r.Staged[s.Name]
			if !ok {
				return nil, fmt.Errorf("coupling: no staged analysis for %q", s.Name)
			}
			staged = append(staged, stagedActive{sa: sa, isA: intSet(s.AnalysisSteps)})
		}
	}

	// Staging worker pool.
	type job struct {
		name string
		fn   func() error
	}
	jobs := make(chan job, workers*2)
	errCh := make(chan error, workers)
	mStagedRuns := r.Metrics.Counter("placement_staged_runs_total", nil)
	var wg sync.WaitGroup
	var stageMu sync.Mutex
	var stageStart, stageEnd time.Time
	r.Trace.SetTrackName(0, "simulation")
	for w := 0; w < workers; w++ {
		r.Trace.SetTrackName(1+w, fmt.Sprintf("staging-%d", w))
		wg.Add(1)
		go func(track int) {
			defer wg.Done()
			for j := range jobs {
				sp := r.Trace.BeginOn(track, j.name+"/staged", "staged")
				t0 := time.Now()
				err := j.fn()
				dt := time.Since(t0)
				sp.End()
				mStagedRuns.Inc()
				stageMu.Lock()
				rep.StageTime += dt
				if stageStart.IsZero() {
					stageStart = t0
				}
				stageEnd = time.Now()
				rep.StagedRuns[j.name]++
				stageMu.Unlock()
				if err != nil {
					select {
					case errCh <- fmt.Errorf("coupling: staged %s: %w", j.name, err):
					default:
					}
				}
			}
		}(1 + w)
	}

	fail := func(err error) (*PlacementReport, error) {
		close(jobs)
		wg.Wait()
		return nil, err
	}

	mSteps := r.Metrics.Counter("placement_steps_total", nil)
	mInSituRuns := r.Metrics.Counter("placement_insitu_runs_total", nil)
	mTransfer := r.Metrics.Counter("placement_transfer_bytes_total", nil)
	for step := 1; step <= r.Res.Steps; step++ {
		stepSpan := r.Trace.Begin("step", "sim").Arg("step", float64(step))
		t0 := time.Now()
		r.Step()
		rep.SimTime += time.Since(t0)
		mSteps.Inc()

		for _, a := range inSitu {
			t1 := time.Now()
			if _, err := a.kernel.PreStep(step); err != nil {
				return fail(err)
			}
			if a.isA[step] {
				sp := r.Trace.Begin(a.name+"/analyze", "kernel").Arg("step", float64(step))
				if _, err := a.kernel.Analyze(step); err != nil {
					return fail(err)
				}
				sp.End()
				rep.InSituRuns[a.name]++
				mInSituRuns.Inc()
			}
			if a.isO[step] {
				sp := r.Trace.Begin(a.name+"/output", "output").Arg("step", float64(step))
				if _, err := a.kernel.Output(io.Discard); err != nil {
					return fail(err)
				}
				sp.End()
			}
			rep.SimSiteTime += time.Since(t1)
		}
		for _, s := range staged {
			if !s.isA[step] {
				continue
			}
			sp := r.Trace.Begin(s.sa.Name+"/capture", "transfer").Arg("step", float64(step))
			t1 := time.Now()
			fn, bytes, err := s.sa.Capture(step)
			if err != nil {
				return fail(fmt.Errorf("coupling: capture %s at %d: %w", s.sa.Name, step, err))
			}
			rep.SimSiteTime += time.Since(t1) // only the transfer blocks the simulation
			sp.Arg("bytes", float64(bytes)).End()
			rep.Transferred += bytes
			mTransfer.Add(float64(bytes))
			jobs <- job{name: s.sa.Name, fn: fn}
		}
		stepSpan.End()
		select {
		case err := <-errCh:
			return fail(err)
		default:
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if !stageStart.IsZero() {
		rep.StageWall = stageEnd.Sub(stageStart)
	}
	return rep, nil
}
