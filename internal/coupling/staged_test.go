package coupling

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/core"
)

func placementRec() (*core.PlacementRecommendation, core.PlacementResources) {
	res := core.PlacementResources{
		Resources:      core.Resources{Steps: 12, TimeThreshold: 100},
		NetBandwidth:   1e9,
		StageMemTotal:  1 << 30,
		StageTimeTotal: 100,
	}
	rec := &core.PlacementRecommendation{Schedules: []core.PlacementSchedule{
		{
			AnalysisSchedule: core.AnalysisSchedule{
				Name: "local", Enabled: true, Count: 3,
				AnalysisSteps: []int{4, 8, 12}, OutputSteps: []int{12},
			},
			Site: core.InSitu,
		},
		{
			AnalysisSchedule: core.AnalysisSchedule{
				Name: "remote", Enabled: true, Count: 4,
				AnalysisSteps: []int{3, 6, 9, 12},
			},
			Site: core.CoAnalysis,
		},
		{AnalysisSchedule: core.AnalysisSchedule{Name: "off"}, Site: core.InSitu},
	}}
	return rec, res
}

func TestPlacementRunnerOverlapsStagedWork(t *testing.T) {
	rec, res := placementRec()
	local := &fakeKernel{name: "local"}
	var stagedRuns int64
	staged := StagedAnalysis{
		Name: "remote",
		Capture: func(step int) (func() error, int64, error) {
			return func() error {
				time.Sleep(20 * time.Millisecond) // heavy offline work
				atomic.AddInt64(&stagedRuns, 1)
				return nil
			}, 1 << 20, nil
		},
	}
	r := &PlacementRunner{
		Step:   func() { time.Sleep(time.Millisecond) },
		InSitu: map[string]analysis.Kernel{"local": local},
		Staged: map[string]StagedAnalysis{"remote": staged},
		Rec:    rec,
		Res:    res,
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&stagedRuns); got != 4 {
		t.Fatalf("staged analyses ran %d times, want 4", got)
	}
	if rep.StagedRuns["remote"] != 4 || rep.InSituRuns["local"] != 3 {
		t.Fatalf("run counts: %+v %+v", rep.StagedRuns, rep.InSituRuns)
	}
	if local.analyze != 3 || local.outs != 1 {
		t.Fatalf("in-situ kernel lifecycle: %+v", local)
	}
	if rep.Transferred != 4<<20 {
		t.Fatalf("transferred = %d", rep.Transferred)
	}
	// The 4 x 20ms of staged compute must NOT appear at the simulation
	// site: capture is trivial here, so SimSiteTime stays tiny while
	// StageTime accumulates the full offline cost.
	if rep.StageTime < 75*time.Millisecond {
		t.Fatalf("stage time = %v, want ~80ms", rep.StageTime)
	}
	if rep.SimSiteTime > 30*time.Millisecond {
		t.Fatalf("sim-site time %v should exclude staged compute", rep.SimSiteTime)
	}
	if rep.StageWall <= 0 {
		t.Fatal("stage wall time missing")
	}
}

func TestPlacementRunnerErrors(t *testing.T) {
	rec, res := placementRec()
	local := &fakeKernel{name: "local"}
	okStaged := StagedAnalysis{
		Name: "remote",
		Capture: func(step int) (func() error, int64, error) {
			return func() error { return nil }, 0, nil
		},
	}

	if _, err := (&PlacementRunner{InSitu: map[string]analysis.Kernel{}, Rec: rec, Res: res}).Run(); err == nil {
		t.Fatal("expected missing-step error")
	}
	if _, err := (&PlacementRunner{Step: func() {}, Res: res}).Run(); err == nil {
		t.Fatal("expected missing-rec error")
	}
	if _, err := (&PlacementRunner{
		Step:   func() {},
		InSitu: map[string]analysis.Kernel{},
		Staged: map[string]StagedAnalysis{"remote": okStaged},
		Rec:    rec, Res: res,
	}).Run(); err == nil {
		t.Fatal("expected missing in-situ kernel error")
	}
	if _, err := (&PlacementRunner{
		Step:   func() {},
		InSitu: map[string]analysis.Kernel{"local": local},
		Staged: map[string]StagedAnalysis{},
		Rec:    rec, Res: res,
	}).Run(); err == nil {
		t.Fatal("expected missing staged analysis error")
	}

	// Capture failure.
	badCapture := StagedAnalysis{
		Name: "remote",
		Capture: func(step int) (func() error, int64, error) {
			return nil, 0, fmt.Errorf("capture boom")
		},
	}
	if _, err := (&PlacementRunner{
		Step:   func() {},
		InSitu: map[string]analysis.Kernel{"local": &fakeKernel{name: "local"}},
		Staged: map[string]StagedAnalysis{"remote": badCapture},
		Rec:    rec, Res: res,
	}).Run(); err == nil {
		t.Fatal("expected capture error")
	}

	// Staged job failure surfaces after drain.
	badJob := StagedAnalysis{
		Name: "remote",
		Capture: func(step int) (func() error, int64, error) {
			return func() error { return fmt.Errorf("staging boom") }, 0, nil
		},
	}
	if _, err := (&PlacementRunner{
		Step:   func() {},
		InSitu: map[string]analysis.Kernel{"local": &fakeKernel{name: "local"}},
		Staged: map[string]StagedAnalysis{"remote": badJob},
		Rec:    rec, Res: res,
	}).Run(); err == nil {
		t.Fatal("expected staged-job error")
	}
}

func TestPlacementRunnerEndToEndWithSolver(t *testing.T) {
	// Solve a placement instance and execute it with fake workloads whose
	// durations mirror the specs.
	specs := []core.PlacementSpec{
		{
			AnalysisSpec:  core.AnalysisSpec{Name: "heavy", CT: 40, MinInterval: 4},
			TransferBytes: 1 << 20,
		},
		{
			AnalysisSpec: core.AnalysisSpec{Name: "cheap", CT: 0.001, MinInterval: 4},
		},
	}
	res := core.PlacementResources{
		Resources:      core.Resources{Steps: 12, TimeThreshold: 1},
		NetBandwidth:   1e9,
		StageMemTotal:  1 << 30,
		StageTimeTotal: 1000,
	}
	rec, err := core.SolvePlacement(specs, res, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schedule("heavy").Site != core.CoAnalysis {
		t.Fatalf("heavy should offload: %+v", rec.Schedule("heavy"))
	}
	runner := &PlacementRunner{
		Step:   func() {},
		InSitu: map[string]analysis.Kernel{"cheap": &fakeKernel{name: "cheap"}},
		Staged: map[string]StagedAnalysis{"heavy": {
			Name: "heavy",
			Capture: func(step int) (func() error, int64, error) {
				return func() error { return nil }, 1 << 20, nil
			},
		}},
		Rec: rec,
		Res: res,
	}
	rep, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StagedRuns["heavy"] != rec.Schedule("heavy").Count {
		t.Fatalf("staged runs %d != scheduled %d", rep.StagedRuns["heavy"], rec.Schedule("heavy").Count)
	}
}
