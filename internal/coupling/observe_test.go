package coupling

import (
	"testing"

	"insitu/internal/obs"
)

func TestRunnerObserveHookSeesEveryEvent(t *testing.T) {
	kernels, rec, res := twoKernelSetup()
	var got []obs.LedgerEvent
	r := &Runner{
		Step:    func() {},
		Kernels: kernels,
		Rec:     rec,
		Res:     res,
		// No Ledger attached: the hook must fire regardless.
		Observe: func(e obs.LedgerEvent) { got = append(got, e) },
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}

	count := map[string]int{}
	for _, e := range got {
		count[e.Type]++
	}
	if count[obs.LedgerRunStart] != 1 || count[obs.LedgerRunEnd] != 1 {
		t.Fatalf("run bracket events = %+v", count)
	}
	if count[obs.LedgerStep] != res.Steps {
		t.Fatalf("step events = %d, want %d", count[obs.LedgerStep], res.Steps)
	}
	// k1: 4 analyses + 2 outputs; k2: 2 analyses + 1 output.
	if count[obs.LedgerAnalysis] != 6 || count[obs.LedgerOutput] != 3 {
		t.Fatalf("analysis/output events = %d/%d, want 6/3", count[obs.LedgerAnalysis], count[obs.LedgerOutput])
	}
	// Durations arrive in ledger microseconds, step numbers attached.
	for _, e := range got {
		if e.Type == obs.LedgerStep && e.Step == 0 {
			t.Fatalf("step event without a step number: %+v", e)
		}
		if (e.Type == obs.LedgerAnalysis || e.Type == obs.LedgerOutput) && e.Name == "" {
			t.Fatalf("kernel event without a name: %+v", e)
		}
	}
}
