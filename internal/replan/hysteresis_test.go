package replan

import (
	"testing"

	"insitu/internal/core"
	"insitu/internal/obs"
	"insitu/internal/runmon"
)

// The hysteresis edge tests drive a Replanner directly — a hand-fed monitor
// instead of the Simulate driver — so each gate (horizon, cooldown,
// no-improvement, infeasible, replan limit) can be hit in isolation. With the
// default CUSUM tuning a single 3x observation alarms immediately (relative
// error 2.0 accumulates 1.75 against the 1.0 threshold), which keeps the
// event choreography one line per alert.

const hSimSec = 0.010

func hSpecs() []core.AnalysisSpec {
	return []core.AnalysisSpec{
		{Name: "k1", CT: 0.002, OM: 2 << 20, IM: 1 << 20, Weight: 2, MinInterval: 2},
		{Name: "k2", CT: 0.001, OM: 1 << 20, IM: 1 << 20, Weight: 1, MinInterval: 3},
	}
}

func hRes(steps int, threshold float64) core.Resources {
	return core.Resources{
		Steps:         steps,
		TimeThreshold: threshold,
		MemThreshold:  24 << 20,
		Bandwidth:     1 << 30,
	}
}

type harness struct {
	t   *testing.T
	mon *runmon.Monitor
	rec *core.Recommendation
	rp  *Replanner
}

func newHarness(t *testing.T, specs []core.AnalysisSpec, res core.Resources, cfg Config) *harness {
	t.Helper()
	rec, err := core.Solve(specs, res, core.SolveOptions{})
	if err != nil {
		t.Fatalf("up-front solve: %v", err)
	}
	profile := runmon.FromPlan(specs, rec, res, hSimSec)
	profile.App = "replan-hysteresis"
	mon := runmon.NewMonitor(profile, runmon.Config{})
	return &harness{t: t, mon: mon, rec: rec, rp: New(mon, specs, res, rec, hSimSec, cfg)}
}

func (h *harness) step(j int, sec float64) {
	h.mon.Observe(obs.LedgerEvent{Type: obs.LedgerStep, Step: j, Dur: sec * 1e6})
}

func (h *harness) analysis(j int, name string, sec float64) {
	h.mon.Observe(obs.LedgerEvent{Type: obs.LedgerAnalysis, Name: name, Step: j, Dur: sec * 1e6})
}

func (h *harness) output(j int, name string, sec float64) {
	h.mon.Observe(obs.LedgerEvent{Type: obs.LedgerOutput, Name: name, Step: j, Dur: sec * 1e6})
}

// mustRecords asserts the decision reasons recorded so far, in order.
func (h *harness) mustRecords(reasons ...string) {
	h.t.Helper()
	recs := h.rp.Records()
	if len(recs) != len(reasons) {
		h.t.Fatalf("got %d decision record(s) %+v, want reasons %v", len(recs), recs, reasons)
	}
	for i, want := range reasons {
		if recs[i].Reason != want {
			h.t.Fatalf("record %d reason %q, want %q (records: %+v)", i, recs[i].Reason, want, recs)
		}
	}
}

// An alert raised at the final simulation step leaves no remaining horizon:
// the replanner must record a "horizon" decision and keep the incumbent, not
// solve a zero-step MILP.
func TestHysteresisAlertAtFinalStep(t *testing.T) {
	h := newHarness(t, hSpecs(), hRes(50, 0.12), Config{})
	for j := 1; j < 50; j++ {
		h.step(j, hSimSec)
	}
	h.step(50, 3*hSimSec) // sim drift fires at the last step
	if got := h.rp.Decide(50); got != nil {
		t.Fatalf("Decide at final step returned a schedule: %+v", got)
	}
	h.mustRecords(runmon.ReplanHorizon)
	if h.rp.Incumbent() != h.rec {
		t.Fatal("incumbent changed on a horizon decision")
	}
	recs := h.rp.Records()
	if recs[0].Step != 50 || recs[0].Trigger != runmon.AlertDrift {
		t.Fatalf("horizon record mis-attributed: %+v", recs[0])
	}
}

// Back-to-back alerts inside the cooldown coalesce into a single decision at
// the first step outside it, instead of one decision per alert.
func TestHysteresisCooldownCoalescesAlerts(t *testing.T) {
	h := newHarness(t, hSpecs(), hRes(60, 0.12), Config{Cooldown: 10})
	for j := 1; j <= 4; j++ {
		h.step(j, hSimSec)
	}
	h.step(5, 3*hSimSec) // alert 1: sim drift
	// Adoption or not depends on the re-solve; either way exactly one
	// decision must be recorded.
	h.rp.Decide(5)
	if n := len(h.rp.Records()); n != 1 {
		t.Fatalf("first alert produced %d decisions, want 1", n)
	}

	h.step(6, hSimSec)
	h.analysis(7, "k1", 3*0.002) // alert 2, two steps after the decision
	for j := 7; j <= 14; j++ {
		if h.rp.Decide(j) != nil {
			t.Fatalf("Decide(%d) inside the cooldown adopted a schedule", j)
		}
		if n := len(h.rp.Records()); n != 1 {
			t.Fatalf("Decide(%d) inside the cooldown recorded a decision", j)
		}
	}
	h.rp.Decide(15) // first step with 15-5 >= Cooldown
	recs := h.rp.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d decisions after cooldown expiry, want 2: %+v", len(recs), recs)
	}
	if recs[1].Step != 15 {
		t.Fatalf("coalesced decision at step %d, want 15", recs[1].Step)
	}
	if recs[1].Stream != runmon.AnalyzeStream("k1") {
		t.Fatalf("coalesced decision attributed to %q, want %q", recs[1].Stream, runmon.AnalyzeStream("k1"))
	}
}

// With a prohibitive minimum-improvement gate a re-solve that cannot clearly
// beat a still-feasible incumbent is recorded as no_improvement and the
// incumbent keeps running.
func TestHysteresisNoImprovementKeepsIncumbent(t *testing.T) {
	h := newHarness(t, hSpecs(), hRes(60, 0.12), Config{MinImprove: 5})
	for j := 1; j <= 4; j++ {
		h.step(j, hSimSec)
	}
	h.step(5, 3*hSimSec) // sim drift: costs unchanged, incumbent still fits
	if got := h.rp.Decide(5); got != nil {
		t.Fatalf("Decide adopted despite the 500%% improvement gate: %+v", got)
	}
	h.mustRecords(runmon.ReplanNoImprovement)
	rec := h.rp.Records()[0]
	if rec.NewValue <= 0 {
		t.Fatalf("no_improvement record lost the re-solve objective: %+v", rec)
	}
	if rec.OldValue <= 0 || rec.BudgetSec <= 0 {
		t.Fatalf("no_improvement record lost incumbent pricing: %+v", rec)
	}
	if h.rp.Incumbent() != h.rec {
		t.Fatal("incumbent changed on a no_improvement decision")
	}
}

// When observed analysis time has already consumed the whole budget there is
// no feasible remaining-horizon model: the replanner must record infeasible
// and fall back to the incumbent — never panic, never adopt.
func TestHysteresisExhaustedBudgetIsInfeasible(t *testing.T) {
	h := newHarness(t, hSpecs(), hRes(60, 0.12), Config{})
	h.step(1, hSimSec)
	h.step(2, hSimSec)
	// One catastrophic analysis span blows the entire 0.12s budget and fires
	// the drift alert at the same time.
	h.analysis(3, "k1", 0.2)
	if got := h.rp.Decide(3); got != nil {
		t.Fatalf("Decide adopted with an exhausted budget: %+v", got)
	}
	h.mustRecords(runmon.ReplanInfeasible)
	rec := h.rp.Records()[0]
	if rec.BudgetSec > 0 {
		t.Fatalf("infeasible record reports positive remaining budget: %+v", rec)
	}
	if rec.SpentSec < 0.2 {
		t.Fatalf("infeasible record under-reports spend: %+v", rec)
	}
	if h.rp.Incumbent() != h.rec {
		t.Fatal("incumbent changed on an infeasible decision")
	}
}

// Once MaxReplans adoptions have happened, the next trigger produces exactly
// one "limit" record and later triggers are dropped silently: the cap is a
// hard stop, not a recurring warning.
func TestHysteresisMaxReplansEmitsSingleLimit(t *testing.T) {
	h := newHarness(t, hSpecs(), hRes(60, 0.12), Config{Cooldown: 5, MaxReplans: 1})
	for j := 1; j <= 4; j++ {
		h.step(j, hSimSec)
	}
	// A 10x output-bandwidth collapse (clamped to the 4x factor cap) makes
	// the incumbent's remaining outputs unaffordable, so the first decision
	// must adopt a re-fit schedule regardless of the improvement gate.
	h.output(5, "k1", 10*float64(2<<20)/float64(1<<30))
	if h.rp.Decide(5) == nil {
		t.Fatalf("first decision did not adopt: %+v", h.rp.Records())
	}
	h.mustRecords(runmon.ReplanAdopted)

	h.analysis(20, "k1", 3*0.002) // trigger 2, outside cooldown, over the cap
	if got := h.rp.Decide(20); got != nil {
		t.Fatalf("Decide adopted past MaxReplans: %+v", got)
	}
	h.mustRecords(runmon.ReplanAdopted, runmon.ReplanLimit)

	h.analysis(35, "k2", 3*0.001) // trigger 3: dropped without a record
	if got := h.rp.Decide(35); got != nil {
		t.Fatalf("Decide adopted past MaxReplans: %+v", got)
	}
	h.mustRecords(runmon.ReplanAdopted, runmon.ReplanLimit)
}
