// Package replan closes the loop the paper leaves open: the MILP schedules
// once, up front, from profiled costs (§4), and runmon (PR 6) detects when
// those profiles drift mid-run — this package acts on the detection. A
// Replanner subscribes to the monitor's drift and budget alerts, rescales the
// remaining-horizon cost model from the observed residuals, re-solves the
// remaining-horizon MILP with the same core/milp stack the up-front solve
// used, and — behind hysteresis so noise never triggers replan storms —
// swaps the adapted schedule into the running coupling loop. Every decision
// (adopted or not) is emitted as a schema-versioned "replan" ledger event, so
// runmon and schedexplain can render the replan timeline post hoc.
//
// The rolling-horizon formulation: at decision step j with R = Steps-j steps
// left and B = budget - spent seconds of analysis budget remaining, solve the
// original MILP over Steps'=R, TimeThreshold'=B·headroom, with per-analysis
// costs scaled by each residual stream's observed inflation (1 + EWMA of
// relative error) and setup times zeroed for analyses already running. The
// solution's step indices are shifted by +j back into run coordinates.
package replan

import (
	"fmt"
	"sync"

	"insitu/internal/core"
	"insitu/internal/obs"
	"insitu/internal/runmon"
)

// Config tunes a Replanner. The zero value is usable: every field defaults
// to the value documented on it.
type Config struct {
	// Cooldown is the minimum number of simulation steps between replan
	// decisions (default 10). Alerts arriving inside the cooldown stay
	// pending and are decided at the first step outside it.
	Cooldown int
	// MinImprove is the minimum-improvement gate (default 0.05): a re-solve
	// replaces a still-feasible incumbent only when its remaining-horizon
	// objective beats the incumbent's by this fraction. An incumbent that no
	// longer fits the remaining budget is always replaced.
	MinImprove float64
	// BudgetPercent, when > 0, declares that the run's analysis budget
	// tracks realized simulation time (the §5.3.2 percent-threshold use
	// case): the effective total budget is BudgetPercent% of observed plus
	// projected simulation seconds, so a slower simulation grants more
	// analysis time. Zero treats Resources.TimeThreshold as absolute.
	BudgetPercent float64
	// Headroom discounts the remaining budget handed to the re-solve
	// (default 0.95), absorbing observation noise so adapted schedules do
	// not land exactly on the threshold.
	Headroom float64
	// MaxReplans caps adopted replans per run (default 8).
	MaxReplans int
	// MinFactor and MaxFactor clamp the per-stream rescale factors
	// (defaults 0.25 and 4): a single wild residual cannot push the cost
	// model into nonsense.
	MinFactor float64
	MaxFactor float64
	// Workers is the branch-and-bound pool width for re-solves (see
	// core.SolveOptions.Workers). Decisions are identical at any width.
	Workers int
	// Ledger, when non-nil, receives every replan event and, on adoption,
	// the adapted profile's plan events.
	Ledger *obs.EventLog
	// Emit, when non-nil, additionally receives every event the replanner
	// produces; the closed-loop simulator uses it to collect the event
	// stream without a ledger file.
	Emit func(obs.LedgerEvent)
	// Metrics, when non-nil, exports replan_total{reason=...} counters.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Cooldown <= 0 {
		c.Cooldown = 10
	}
	if c.MinImprove <= 0 {
		c.MinImprove = 0.05
	}
	if c.Headroom <= 0 || c.Headroom > 1 {
		c.Headroom = 0.95
	}
	if c.MaxReplans <= 0 {
		c.MaxReplans = 8
	}
	if c.MinFactor <= 0 {
		c.MinFactor = 0.25
	}
	if c.MaxFactor <= c.MinFactor {
		c.MaxFactor = 4
	}
	return c
}

// Replanner is the drift-adaptive rolling-horizon rescheduler. Safe for
// concurrent use; Decide is the only entry point the run loop calls.
type Replanner struct {
	mu     sync.Mutex
	cfg    Config
	mon    *runmon.Monitor
	specs  []core.AnalysisSpec // current cost beliefs (rescaled on adoption)
	res    core.Resources      // full-run envelope the initial plan was solved against
	rec    *core.Recommendation // incumbent, in full-run step coordinates
	simSec float64             // current belief of seconds per simulation step

	seenAlerts int
	pending    *runmon.Alert
	lastStep   int // step of the last decision (any reason), for cooldown
	adopted    int
	limited    bool // the MaxReplans record has been emitted
	records    []runmon.ReplanRecord
}

// New builds a replanner over a monitored run: mon is the monitor observing
// the run, specs/res/rec/simSecPerStep are the inputs and output of the
// up-front solve.
func New(mon *runmon.Monitor, specs []core.AnalysisSpec, res core.Resources, rec *core.Recommendation, simSecPerStep float64, cfg Config) *Replanner {
	return &Replanner{
		cfg:      cfg.withDefaults(),
		mon:      mon,
		specs:    append([]core.AnalysisSpec(nil), specs...),
		res:      res,
		rec:      rec,
		simSec:   simSecPerStep,
		lastStep: -1 << 30,
	}
}

// Incumbent returns the current schedule (the adapted one after adoptions).
func (r *Replanner) Incumbent() *core.Recommendation {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rec
}

// Records returns a copy of every replan decision made so far.
func (r *Replanner) Records() []runmon.ReplanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]runmon.ReplanRecord, len(r.records))
	copy(out, r.records)
	return out
}

// Hook adapts Decide to the coupling.Runner.Replan signature.
func (r *Replanner) Hook() func(step int) *core.Recommendation {
	return r.Decide
}

// Decide is called at the end of every simulation step. It returns a new
// schedule exactly when a pending alert survives the hysteresis gates and
// the remaining-horizon re-solve improves on the incumbent; nil means keep
// running the incumbent. Nil-safe.
func (r *Replanner) Decide(step int) *core.Recommendation {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	// Consume alerts raised since the last decision; the earliest new one
	// becomes (or refreshes) the pending trigger.
	alerts := r.mon.Alerts()
	if len(alerts) > r.seenAlerts {
		a := alerts[r.seenAlerts]
		r.pending = &a
		r.seenAlerts = len(alerts)
	}
	if r.pending == nil {
		return nil
	}
	if r.adopted >= r.cfg.MaxReplans {
		if !r.limited {
			r.limited = true
			r.record(runmon.ReplanRecord{
				Step: step, Trigger: r.pending.Kind, Stream: r.pending.Stream,
				Reason: runmon.ReplanLimit,
			})
		}
		r.pending = nil
		return nil
	}
	// Hysteresis: inside the cooldown the trigger stays pending and is
	// decided at the first step outside it — back-to-back alerts coalesce
	// into one decision instead of a replan storm.
	if step-r.lastStep < r.cfg.Cooldown {
		return nil
	}
	trigger := *r.pending
	r.pending = nil
	r.lastStep = step

	remaining := r.res.Steps - step
	if remaining <= 0 {
		r.record(runmon.ReplanRecord{
			Step: step, Trigger: trigger.Kind, Stream: trigger.Stream,
			Reason: runmon.ReplanHorizon,
		})
		return nil
	}

	snap := r.mon.Snapshot()
	factors := r.factors(snap)
	rescaled := r.rescaleSpecs(factors)
	fsim := factors[runmon.StreamSim]
	if fsim <= 0 {
		fsim = 1
	}

	spent := snap.AnalysisSec
	total := r.effectiveTotal(snap, fsim, remaining)
	budget := total - spent
	base := runmon.ReplanRecord{
		Step: step, Trigger: trigger.Kind, Stream: trigger.Stream,
		BudgetSec: budget, SpentSec: spent,
	}
	incValue, incCost := r.incumbentRemaining(rescaled, step, remaining)
	base.OldValue, base.OldCostSec = incValue, incCost

	if budget <= 0 {
		// The budget is already gone; no remaining-horizon model is
		// feasible. Keep the incumbent and say so rather than panic — the
		// runner keeps executing, and the budget alert already fired.
		base.Reason = runmon.ReplanInfeasible
		r.record(base)
		return nil
	}

	horizon := core.Resources{
		Steps:         remaining,
		TimeThreshold: budget * r.cfg.Headroom,
		MemThreshold:  r.res.MemThreshold,
		Bandwidth:     r.res.Bandwidth,
	}
	sol, err := solveCanonical(rescaled, horizon, r.cfg.Workers)
	if err != nil {
		base.Reason = runmon.ReplanInfeasible
		r.record(base)
		return nil
	}
	base.NewValue, base.NewCostSec = sol.Objective, sol.TotalTime

	// Minimum-improvement gate: a still-feasible incumbent survives unless
	// the re-solve clearly beats it. An incumbent that no longer fits the
	// remaining budget is replaced regardless — staying on it would blow
	// the threshold.
	incumbentFits := incCost <= budget*r.cfg.Headroom
	if incumbentFits && sol.Objective < incValue*(1+r.cfg.MinImprove) {
		base.Reason = runmon.ReplanNoImprovement
		r.record(base)
		return nil
	}

	adopted := shiftRecommendation(sol, step)
	r.rec = adopted
	r.specs = rescaled
	r.simSec *= fsim
	r.adopted++
	base.Reason = runmon.ReplanAdopted
	base.Adopted = true
	r.record(base)

	// Re-emitting plan events rebaselines the monitor's detectors on the
	// adapted cost model, so post-replan drift is measured against the new
	// predictions — and a replayed ledger reconstructs the same state.
	profile := runmon.FromPlan(rescaled, sol, core.Resources{
		Steps:         r.res.Steps,
		TimeThreshold: total,
		MemThreshold:  r.res.MemThreshold,
		Bandwidth:     r.res.Bandwidth,
	}, r.simSec)
	profile.App = snap.App
	profile.PlannedSec = spent + sol.TotalTime
	// FromPlan only covers enabled analyses, but the monitor baselines must
	// track the full belief set: a stream left on a stale baseline would
	// report a residual that is already priced into the rescaled spec, and
	// the next replan would compound the two into a double rescale.
	for _, s := range rescaled {
		if s.CT > 0 {
			profile.Streams[runmon.AnalyzeStream(s.Name)] = s.CT
		}
		if s.OT > 0 { // materialized by rescaleSpecs
			profile.Streams[runmon.OutputStream(s.Name)] = s.OT
		}
	}
	for _, e := range profile.PlanEvents() {
		e.Step = step
		r.emit(e)
		r.mon.Observe(e)
	}
	return adopted
}

// record stores a decision and publishes it as a replan event to the ledger,
// the Emit hook, the metrics registry, and the monitor's replan timeline.
// Callers hold r.mu.
func (r *Replanner) record(rec runmon.ReplanRecord) {
	r.records = append(r.records, rec)
	r.cfg.Metrics.Counter("replan_total", obs.Labels{"reason": rec.Reason}).Inc()
	e := rec.Event()
	r.emit(e)
	r.mon.Observe(e)
}

func (r *Replanner) emit(e obs.LedgerEvent) {
	r.cfg.Ledger.Append(e)
	if r.cfg.Emit != nil {
		r.cfg.Emit(e)
	}
}

// factors maps each residual stream to its observed inflation, clamped to
// [MinFactor, MaxFactor]. The estimate is max(1+EWMA, last/predicted): the
// EWMA lags a step change badly right at detection (alpha 0.3 sees only
// ~50% of a shift after two observations, so a 3x bandwidth collapse would
// be priced at ~2x and the adopted plan would immediately overrun the
// budget), while the latest observation tracks the new level within noise.
// Taking the max biases the cost model toward over-pricing, which is the
// safe direction — an over-priced re-solve schedules conservatively, an
// under-priced one blows the threshold. Streams still calibrating (no
// prediction) rescale by 1.
func (r *Replanner) factors(snap runmon.Snapshot) map[string]float64 {
	f := map[string]float64{}
	for _, st := range snap.Streams {
		if st.PredictedSec <= 0 {
			continue
		}
		v := 1 + st.EWMARelErr
		if st.LastSec > 0 {
			if last := st.LastSec / st.PredictedSec; last > v {
				v = last
			}
		}
		if v < r.cfg.MinFactor {
			v = r.cfg.MinFactor
		}
		if v > r.cfg.MaxFactor {
			v = r.cfg.MaxFactor
		}
		f[st.Stream] = v
	}
	return f
}

// rescaleSpecs applies the per-stream inflation factors to the cost model:
// compute time scales by the analyze stream's factor, output time (derived
// from om/bandwidth when unset, then materialized) by the output stream's,
// and setup time is zeroed for analyses the incumbent already runs — their
// setup is paid.
func (r *Replanner) rescaleSpecs(factors map[string]float64) []core.AnalysisSpec {
	out := make([]core.AnalysisSpec, len(r.specs))
	for i, s := range r.specs {
		if f, ok := factors[runmon.AnalyzeStream(s.Name)]; ok {
			s.CT *= f
		}
		ot := s.OT
		if ot == 0 && s.OM > 0 && r.res.Bandwidth > 0 {
			ot = float64(s.OM) / r.res.Bandwidth
		}
		if f, ok := factors[runmon.OutputStream(s.Name)]; ok && ot > 0 {
			ot *= f
		}
		s.OT = ot
		if sched := r.rec.Schedule(s.Name); sched != nil && sched.Enabled {
			s.FT = 0
		}
		out[i] = s
	}
	return out
}

// effectiveTotal resolves the run's total analysis budget at decision time.
// In percent mode it is BudgetPercent% of the realized-plus-projected
// simulation time — observed sim seconds so far plus the drift-corrected
// projection of the remaining steps — so a slowed simulation grants more
// analysis time, exactly as the §5.3.2 threshold definition implies.
func (r *Replanner) effectiveTotal(snap runmon.Snapshot, fsim float64, remaining int) float64 {
	if r.cfg.BudgetPercent <= 0 {
		return r.res.TimeThreshold
	}
	var simObs float64
	for _, st := range snap.Streams {
		if st.Stream == runmon.StreamSim {
			simObs = st.MeanSec * float64(st.Count)
		}
	}
	projected := simObs + r.simSec*fsim*float64(remaining)
	return projected * r.cfg.BudgetPercent / 100
}

// incumbentRemaining prices the incumbent schedule over the remaining
// horizon under the rescaled cost model: the objective its outstanding
// analysis steps would still earn, and the seconds they would still cost.
func (r *Replanner) incumbentRemaining(rescaled []core.AnalysisSpec, step, remaining int) (value, cost float64) {
	bySpec := map[string]core.AnalysisSpec{}
	for _, s := range rescaled {
		bySpec[s.Name] = s
	}
	for _, sched := range r.rec.Schedules {
		if !sched.Enabled {
			continue
		}
		spec, ok := bySpec[sched.Name]
		if !ok {
			continue
		}
		remA := countAfter(sched.AnalysisSteps, step)
		remO := countAfter(sched.OutputSteps, step)
		if remA == 0 {
			continue
		}
		w := spec.Weight
		if w == 0 {
			w = 1
		}
		value += 1 + w*float64(remA)
		cost += spec.IT*float64(remaining) + spec.CT*float64(remA) + spec.OT*float64(remO)
	}
	return value, cost
}

// solveCanonical solves a scheduling instance at the requested pool width and
// returns the canonical argmax. The milp determinism contract pins the
// objective and terminal bound at any width, but not which of several tied
// optimal schedules the search lands on — different widths can return
// different ties. Everything the replanner derives from a solution (adopted
// schedules, re-emitted plan events, recorded remaining costs) ends up in the
// ledger, which must be byte-identical however wide the machine was. So the
// width-W solve acts as the probe and its solution is replaced by the serial
// search's (the historical byte-identical one) before any number is recorded;
// the objectives are guaranteed equal. Remaining-horizon instances are small
// — a few kernels over the steps left — so the extra serial solve is cheap,
// and it is skipped entirely at width 1.
func solveCanonical(specs []core.AnalysisSpec, res core.Resources, workers int) (*core.Recommendation, error) {
	sol, err := core.Solve(specs, res, core.SolveOptions{Workers: workers})
	if err != nil || workers <= 1 {
		return sol, err
	}
	return core.Solve(specs, res, core.SolveOptions{Workers: 1})
}

func countAfter(steps []int, after int) int {
	n := 0
	for _, s := range steps {
		if s > after {
			n++
		}
	}
	return n
}

// shiftRecommendation translates a remaining-horizon solution (steps
// 1..remaining) back into full-run coordinates by offsetting every scheduled
// step by the decision step.
func shiftRecommendation(sol *core.Recommendation, offset int) *core.Recommendation {
	out := *sol
	out.Schedules = make([]core.AnalysisSchedule, len(sol.Schedules))
	for i, s := range sol.Schedules {
		c := s
		c.AnalysisSteps = shiftSteps(s.AnalysisSteps, offset)
		c.OutputSteps = shiftSteps(s.OutputSteps, offset)
		out.Schedules[i] = c
	}
	return &out
}

func shiftSteps(steps []int, offset int) []int {
	if len(steps) == 0 {
		return nil
	}
	out := make([]int, len(steps))
	for i, s := range steps {
		out[i] = s + offset
	}
	return out
}

// String summarizes the replanner state for logs.
func (r *Replanner) String() string {
	if r == nil {
		return "replan: disabled"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("replan: %d decision(s), %d adopted", len(r.records), r.adopted)
}
