package replan_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"insitu/internal/experiments"
	"insitu/internal/replan"
)

// TestCorpusAdaptiveBeatsStatic is the acceptance property of the replan
// corpus: on every perturbed scenario the adapted schedule's realized value
// is at least the static schedule's — strictly greater on the sim-inflation
// and bandwidth-degradation families — the adapted run never exceeds the
// budget threshold, and the control run never replans.
func TestCorpusAdaptiveBeatsStatic(t *testing.T) {
	strict := map[string]bool{
		"sim_inflation_1.5x":       true,
		"bandwidth_degradation_3x": true,
	}
	for _, sc := range experiments.ReplanScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			static, err := replan.Simulate(sc, false, 1)
			if err != nil {
				t.Fatal(err)
			}
			adaptive, err := replan.Simulate(sc, true, 1)
			if err != nil {
				t.Fatal(err)
			}
			if sc.Perturb == replan.PerturbNone || sc.Perturb == "" {
				if adaptive.Replans != 0 || len(adaptive.Records) != 0 {
					t.Fatalf("control run replanned: %+v", adaptive.Records)
				}
				if adaptive.Value != static.Value {
					t.Fatalf("control adapted value %.2f != static %.2f", adaptive.Value, static.Value)
				}
			} else {
				if adaptive.Replans == 0 {
					t.Fatalf("perturbed run %s never adopted a replan (records: %+v)", sc.Name, adaptive.Records)
				}
			}
			if adaptive.Value < static.Value {
				t.Fatalf("adapted value %.2f < static %.2f", adaptive.Value, static.Value)
			}
			if strict[sc.Name] && adaptive.Value <= static.Value {
				t.Fatalf("adapted value %.2f not strictly above static %.2f", adaptive.Value, static.Value)
			}
			if adaptive.Exceeded {
				t.Fatalf("adapted run exceeded the budget: spent %.4fs of %.4fs", adaptive.AnalysisSec, adaptive.BudgetSec)
			}
		})
	}
}

// TestCorpusReplanDeterminism: the same seed and perturbation must produce a
// byte-identical event stream — steps, alerts, replan decisions, re-emitted
// plans — whether the remaining-horizon MILPs are solved serially or on an
// 8-worker branch-and-bound pool. This extends the solvercheck determinism
// guarantee (identical objective, bound, and incumbent at any width) through
// the whole closed loop.
func TestCorpusReplanDeterminism(t *testing.T) {
	for _, sc := range experiments.ReplanScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			serial, err := replan.Simulate(sc, true, 1)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := replan.Simulate(sc, true, 8)
			if err != nil {
				t.Fatal(err)
			}
			a, err := json.Marshal(serial.Events)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(parallel.Events)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("event stream diverges between Workers=1 (%d events) and Workers=8 (%d events)",
					len(serial.Events), len(parallel.Events))
			}
			if serial.Value != parallel.Value || serial.Replans != parallel.Replans {
				t.Fatalf("outcome diverges: W=1 value=%.2f replans=%d, W=8 value=%.2f replans=%d",
					serial.Value, serial.Replans, parallel.Value, parallel.Replans)
			}
		})
	}
}
