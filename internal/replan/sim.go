package replan

import (
	"fmt"
	"math/rand"
	"sort"

	"insitu/internal/core"
	"insitu/internal/obs"
	"insitu/internal/runmon"
)

// Perturbation kinds, aliased from runmon so scenario authors need only one
// import.
const (
	PerturbNone       = runmon.PerturbNone
	PerturbSimTime    = runmon.PerturbSimTime
	PerturbOutputBW   = runmon.PerturbOutputBW
	PerturbAnalysisCT = runmon.PerturbAnalysisCT
)

// Scenario is one closed-loop run of the replan simulator: a schedulable
// analysis set, a budget, and a mid-run perturbation of the true costs. The
// perturbation kinds are runmon's (PerturbNone/PerturbSimTime/
// PerturbOutputBW/PerturbAnalysisCT).
type Scenario struct {
	Name  string
	Specs []core.AnalysisSpec
	Steps int
	// SimSec is the profiled (believed) simulation seconds per step.
	SimSec float64
	// BudgetPercent > 0 puts the run in percent-threshold mode: the
	// analysis budget is this percentage of realized simulation time.
	// Otherwise ThresholdSec is the absolute budget.
	BudgetPercent float64
	ThresholdSec  float64
	MemThreshold  int64
	Bandwidth     float64
	// Perturb/ChangeStep/Factor define the truth the profiles miss: from
	// ChangeStep on, the perturbed stream class costs Factor times its
	// profile. NoiseFrac adds multiplicative observation noise throughout.
	Perturb    string
	ChangeStep int
	Factor     float64
	NoiseFrac  float64
	Seed       int64
	// Replanner hysteresis overrides (zero = replan.Config defaults).
	Cooldown   int
	MinImprove float64
	Headroom   float64
}

// Resources materializes the scenario's believed solver input: the percent
// budget is converted against the profiled (not realized) simulation time,
// exactly as the up-front planner sees it.
func (sc Scenario) Resources() core.Resources {
	th := sc.ThresholdSec
	if sc.BudgetPercent > 0 {
		th = core.PercentThreshold(sc.SimSec, sc.Steps, sc.BudgetPercent)
	}
	return core.Resources{
		Steps:         sc.Steps,
		TimeThreshold: th,
		MemThreshold:  sc.MemThreshold,
		Bandwidth:     sc.Bandwidth,
	}
}

// SimResult is the outcome of one simulated run, static or adaptive.
type SimResult struct {
	Name     string `json:"name"`
	Adaptive bool   `json:"adaptive"`
	// Value is the realized objective: |A| + Σ w_i·|C_i| counting only
	// analyses executed within the (realized) budget.
	Value float64 `json:"value"`
	// Analyses counts executed analysis steps per kernel (within budget).
	Analyses map[string]int `json:"analyses"`
	// AnalysisSec is the realized total analysis+output time.
	AnalysisSec float64 `json:"analysis_sec"`
	// SimSecTotal is the realized total simulation time.
	SimSecTotal float64 `json:"sim_sec_total"`
	// BudgetSec is the effective budget the run was held to: the percent
	// threshold of realized simulation time, or the absolute threshold.
	BudgetSec float64 `json:"budget_sec"`
	// Exceeded reports whether realized analysis time overran the budget.
	Exceeded bool `json:"exceeded"`
	// Replans counts adopted replans; Records carries every decision.
	Replans int                    `json:"replans"`
	Records []runmon.ReplanRecord  `json:"records,omitempty"`
	// Events is the full ledger-style event stream of the run, including
	// replan and re-emitted plan events; the determinism tests byte-compare
	// it across solver worker counts. Excluded from JSON snapshots.
	Events []obs.LedgerEvent `json:"-"`
}

// exec is one executed analysis or output span, in execution order.
type exec struct {
	kernel string
	sec    float64
	isA    bool
}

// Simulate runs a scenario end to end: solve the up-front plan from the
// believed profiles, then execute the run against the perturbed truth,
// feeding every event through a runmon monitor — and, when adaptive, a
// Replanner whose adopted schedules immediately redirect the remaining run.
// Everything is driven by the scenario seed: the same scenario and workers
// produce a byte-identical event stream, and solver determinism (PR 5) makes
// the stream identical across worker counts too.
func Simulate(sc Scenario, adaptive bool, workers int) (SimResult, error) {
	res := sc.Resources()
	rec, err := solveCanonical(sc.Specs, res, workers)
	if err != nil {
		return SimResult{}, fmt.Errorf("replan: up-front solve for %s: %w", sc.Name, err)
	}

	result := SimResult{Name: sc.Name, Adaptive: adaptive, Analyses: map[string]int{}}
	push := func(e obs.LedgerEvent) { result.Events = append(result.Events, e) }

	profile := runmon.FromPlan(sc.Specs, rec, res, sc.SimSec)
	profile.App = "replan-sim/" + sc.Name
	mon := runmon.NewMonitor(profile, runmon.Config{})
	var rp *Replanner
	if adaptive {
		rp = New(mon, sc.Specs, res, rec, sc.SimSec, Config{
			Cooldown:      sc.Cooldown,
			MinImprove:    sc.MinImprove,
			Headroom:      sc.Headroom,
			BudgetPercent: sc.BudgetPercent,
			Workers:       workers,
			Emit:          push,
		})
	}

	start := obs.LedgerEvent{Type: obs.LedgerRunStart, Name: profile.App}
	push(start)
	mon.Observe(start)
	for _, e := range profile.PlanEvents() {
		push(e)
		mon.Observe(e)
	}

	// The truth the profiles miss: from ChangeStep on, the perturbed stream
	// class costs Factor times its spec.
	inflate := func(kind string, step int) float64 {
		if sc.Perturb == kind && sc.Factor > 0 && step >= sc.ChangeStep {
			return sc.Factor
		}
		return 1
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	noisy := func(sec float64) float64 {
		if sc.NoiseFrac <= 0 {
			return sec
		}
		return sec * (1 + sc.NoiseFrac*(2*rng.Float64()-1))
	}

	bySpec := map[string]core.AnalysisSpec{}
	for _, s := range sc.Specs {
		bySpec[s.Name] = s
	}
	// active mirrors the current schedule as per-kernel step sets, rebuilt
	// whenever a replan is adopted. Kernel order follows rec.Schedules for
	// a deterministic event stream.
	type kernelPlan struct {
		name string
		isA  map[int]bool
		isO  map[int]bool
	}
	buildActive := func(r *core.Recommendation) []kernelPlan {
		var out []kernelPlan
		for _, s := range r.Schedules {
			if !s.Enabled {
				continue
			}
			kp := kernelPlan{name: s.Name, isA: map[int]bool{}, isO: map[int]bool{}}
			for _, j := range s.AnalysisSteps {
				kp.isA[j] = true
			}
			for _, j := range s.OutputSteps {
				kp.isO[j] = true
			}
			out = append(out, kp)
		}
		return out
	}
	active := buildActive(rec)

	var execs []exec
	for j := 1; j <= sc.Steps; j++ {
		simSec := noisy(sc.SimSec * inflate(runmon.PerturbSimTime, j))
		result.SimSecTotal += simSec
		e := obs.LedgerEvent{Type: obs.LedgerStep, Step: j, Dur: simSec * 1e6}
		push(e)
		mon.Observe(e)

		for _, kp := range active {
			if !kp.isA[j] {
				continue
			}
			spec := bySpec[kp.name]
			aSec := noisy(spec.CT * inflate(runmon.PerturbAnalysisCT, j))
			execs = append(execs, exec{kernel: kp.name, sec: aSec, isA: true})
			result.AnalysisSec += aSec
			e := obs.LedgerEvent{Type: obs.LedgerAnalysis, Name: kp.name, Step: j, Dur: aSec * 1e6}
			push(e)
			mon.Observe(e)

			if kp.isO[j] {
				ot := spec.OT
				if ot == 0 && spec.OM > 0 && sc.Bandwidth > 0 {
					ot = float64(spec.OM) / sc.Bandwidth
				}
				oSec := noisy(ot * inflate(runmon.PerturbOutputBW, j))
				execs = append(execs, exec{kernel: kp.name, sec: oSec})
				result.AnalysisSec += oSec
				e := obs.LedgerEvent{Type: obs.LedgerOutput, Name: kp.name, Step: j, Dur: oSec * 1e6, Bytes: spec.OM}
				push(e)
				mon.Observe(e)
			}
		}

		if rp != nil {
			if next := rp.Decide(j); next != nil {
				active = buildActive(next)
			}
		}
	}
	end := obs.LedgerEvent{Type: obs.LedgerRunEnd, Step: sc.Steps}
	push(end)
	mon.Observe(end)

	// Realized budget and value: in percent mode the budget tracks the
	// simulation time that actually elapsed; executed analyses count toward
	// the objective only while cumulative analysis+output time stays within
	// it (work past the threshold is work the run was not allowed).
	result.BudgetSec = sc.ThresholdSec
	if sc.BudgetPercent > 0 {
		result.BudgetSec = result.SimSecTotal * sc.BudgetPercent / 100
	}
	result.Exceeded = result.AnalysisSec > result.BudgetSec
	var cum float64
	counted := map[string]int{}
	for _, x := range execs {
		cum += x.sec
		if cum > result.BudgetSec {
			break
		}
		if x.isA {
			counted[x.kernel]++
		}
	}
	names := make([]string, 0, len(counted))
	for name := range counted {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := counted[name]
		result.Analyses[name] = n
		w := bySpec[name].Weight
		if w == 0 {
			w = 1
		}
		result.Value += 1 + w*float64(n)
	}
	if rp != nil {
		result.Records = rp.Records()
		for _, r := range result.Records {
			if r.Adopted {
				result.Replans++
			}
		}
	}
	return result, nil
}
