package solvercheck

import (
	"math/rand"
	"testing"

	"insitu/internal/lp"
)

// The revised-vs-dense differential suite: the sparse revised simplex must
// reproduce the dense tableau's verdicts on every corpus, including the
// pathological shapes built specifically to break its factorization
// machinery. Failure messages carry the seed for one-line reproduction.

func TestRevisedMatchesDense(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandLP(rng, LPConfig{})
		if err := CheckRevised(rng, p); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestRevisedMatchesDenseOnWideLPs(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandLP(rng, LPConfig{MaxVars: 24, MaxCons: 16})
		if err := CheckRevised(rng, p); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestRevisedMatchesDenseOnEtaChains(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandChainLP(rng, 48+rng.Intn(33))
		if err := CheckRevised(rng, p); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestRevisedMatchesDenseNearSingular(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandNearSingularLP(rng)
		if err := CheckRevised(rng, p); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestChainLPForcesRefactorization pins that the eta-chain generator actually
// reaches the machinery it targets: a representative instance must report at
// least one basis refactorization and a nonzero eta-file peak through the
// Solver stats, or the pathological corpus has silently stopped covering the
// product-form update path.
func TestChainLPForcesRefactorization(t *testing.T) {
	refactored := false
	for seed := int64(0); seed < 10 && !refactored; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandChainLP(rng, 80)
		sv, err := lp.NewSolver(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol := sv.SolveCold(p.Lower, p.Upper); sol.Status != lp.Optimal {
			t.Fatalf("seed %d: chain instance solved to %v, want optimal", seed, sol.Status)
		}
		if sv.Stats.EtaPeak == 0 {
			t.Fatalf("seed %d: chain solve recorded no eta entries", seed)
		}
		refactored = sv.Stats.Refactorizations > 0
	}
	if !refactored {
		t.Fatal("no chain instance triggered a refactorization; the pathological corpus lost coverage")
	}
}

// TestPathologicalGeneratorsAreValid mirrors TestGeneratorsAreValid for the
// revised-simplex corpora.
func TestPathologicalGeneratorsAreValid(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if err := RandChainLP(rng, 40).Validate(); err != nil {
			t.Errorf("seed %d: invalid chain LP: %v", seed, err)
		}
		if err := RandNearSingularLP(rng).Validate(); err != nil {
			t.Errorf("seed %d: invalid near-singular LP: %v", seed, err)
		}
	}
}
