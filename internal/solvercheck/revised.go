package solvercheck

import (
	"fmt"
	"math"
	"math/rand"

	"insitu/internal/lp"
)

// This file is the revised-simplex differential oracle: lp.Solve (the sparse
// revised kernel with product-form factorization, Devex pricing, and dual
// warm re-solves) against lp.SolveReference (the retired dense tableau,
// kept as the independent ground truth). Beyond the generic RandLP shapes it
// carries two pathological generators aimed at the revised kernel's weak
// spots — long eta chains (factorization update pressure) and near-singular
// bases (tiny pivots, refactorization rescues).

// CheckRevised cross-checks the revised simplex against the dense reference
// on one instance: cold solve agreement (status, objective, feasibility of
// both points), then a short branching-style walk of bound tightenings where
// every warm re-solve through an lp.Solver must match a dense solve of the
// same bounds. Failures name the violated property.
func CheckRevised(rng *rand.Rand, p *lp.Problem) error {
	ref, err := lp.SolveReference(p)
	if err != nil {
		return fmt.Errorf("lp.SolveReference: %v", err)
	}
	rev, err := lp.Solve(p)
	if err != nil {
		return fmt.Errorf("lp.Solve: %v", err)
	}
	if err := compareRevised(ref, rev, p); err != nil {
		return fmt.Errorf("cold: %v", err)
	}

	// Branching-style walk: tighten integer bounds a step at a time, warm
	// re-solving through the Solver handle, and check every answer against a
	// dense cold solve of the identical bounds.
	sv, err := lp.NewSolver(p)
	if err != nil {
		return fmt.Errorf("lp.NewSolver: %v", err)
	}
	lower := append([]float64(nil), p.Lower...)
	upper := append([]float64(nil), p.Upper...)
	for round := 0; round < 6; round++ {
		j := rng.Intn(p.NumVars())
		switch rng.Intn(3) {
		case 0:
			if lower[j] < upper[j] {
				lower[j]++
			}
		case 1:
			if !math.IsInf(upper[j], 1) && upper[j] > lower[j] {
				upper[j]--
			}
		default:
			lower[j], upper[j] = p.Lower[j], p.Upper[j] // relax back
		}
		wsol, _ := sv.Solve(lower, upper)
		q := p.Clone()
		q.Lower = append([]float64(nil), lower...)
		q.Upper = append([]float64(nil), upper...)
		dsol, err := lp.SolveReference(q)
		if err != nil {
			return fmt.Errorf("round %d: lp.SolveReference: %v", round, err)
		}
		if err := compareRevised(dsol, wsol, q); err != nil {
			return fmt.Errorf("round %d (var %d in [%g,%g]): %v", round, j, lower[j], upper[j], err)
		}
	}
	return nil
}

// compareRevised checks one dense/revised solution pair over problem p:
// statuses equal, and at optimality matching objectives with both points
// feasible (the optimal vertices themselves may differ under degeneracy).
func compareRevised(dense, revised *lp.Solution, p *lp.Problem) error {
	if dense.Status != revised.Status {
		return fmt.Errorf("dense status %v, revised %v", dense.Status, revised.Status)
	}
	if dense.Status != lp.Optimal {
		return nil
	}
	if !objClose(dense.Objective, revised.Objective) {
		return fmt.Errorf("dense objective %g, revised %g", dense.Objective, revised.Objective)
	}
	if viol := p.FirstViolation(revised.X, 1e-6); viol != "" {
		return fmt.Errorf("revised point infeasible: %s", viol)
	}
	if viol := p.FirstViolation(dense.X, 1e-6); viol != "" {
		return fmt.Errorf("dense point infeasible: %s", viol)
	}
	if got := p.Eval(revised.X); !objClose(got, revised.Objective) {
		return fmt.Errorf("revised objective %g disagrees with c·x = %g", revised.Objective, got)
	}
	return nil
}

// RandChainLP generates a long-eta-chain instance: a chain of equality rows
// x_j - x_{j-1} == d_j whose artificials force a phase-1 drive-out across
// the whole chain, plus a few coupling inequalities. Basis changes propagate
// down the chain, so the eta file grows past the refactorization threshold
// on modest sizes — the shape that stresses the product-form update
// machinery. Instances are feasible by witness construction.
func RandChainLP(rng *rand.Rand, length int) *lp.Problem {
	if length <= 0 {
		length = 48
	}
	p := &lp.Problem{}
	witness := make([]float64, length)
	w := float64(2 + rng.Intn(3))
	for j := 0; j < length; j++ {
		if j > 0 {
			step := float64(rng.Intn(3) - 1)
			if w+step < 0 || w+step > 7 {
				step = -step
			}
			w += step
		}
		witness[j] = w
		p.AddVar(float64(rng.Intn(7)-3), 0, 8, fmt.Sprintf("x%d", j))
	}
	for j := 1; j < length; j++ {
		p.AddConstraint([]int{j, j - 1}, []float64{1, -1}, lp.EQ, witness[j]-witness[j-1], fmt.Sprintf("chain%d", j))
	}
	// Coupling rows keep phase 2 from being trivial.
	for r := 0; r < 2+rng.Intn(3); r++ {
		nz := 2 + rng.Intn(length/2)
		idx := rng.Perm(length)[:nz]
		coef := make([]float64, nz)
		at := 0.0
		for k, j := range idx {
			coef[k] = float64(1 + rng.Intn(3))
			at += coef[k] * witness[j]
		}
		p.AddConstraint(idx, coef, lp.LE, at+float64(rng.Intn(6)), fmt.Sprintf("couple%d", r))
	}
	return p
}

// RandNearSingularLP generates an instance whose constraint rows come in
// nearly-parallel pairs: the second row of each pair is a scaled copy of the
// first with one coefficient perturbed by a tiny dyadic amount (1/1024, exact
// in floating point). Bases containing both rows' slacks are near-singular,
// which exercises the factorization's partial pivoting, the stale-pivot
// refactorization rescue, and the dual simplex's small-pivot rejection.
// Instances are feasible by witness construction.
func RandNearSingularLP(rng *rand.Rand) *lp.Problem {
	n := 4 + rng.Intn(5)
	p := &lp.Problem{}
	witness := make([]float64, n)
	for j := 0; j < n; j++ {
		witness[j] = float64(rng.Intn(5))
		p.AddVar(float64(rng.Intn(11)-5), 0, 6, fmt.Sprintf("v%d", j))
	}
	pairs := 2 + rng.Intn(3)
	for r := 0; r < pairs; r++ {
		idx, coef := randRow(rng, n)
		at := 0.0
		for k, j := range idx {
			at += coef[k] * witness[j]
		}
		p.AddConstraint(idx, coef, lp.LE, at+float64(rng.Intn(4)), fmt.Sprintf("p%da", r))

		scale := float64(1 + rng.Intn(2))
		twin := make([]float64, len(coef))
		for k := range coef {
			twin[k] = coef[k] * scale
		}
		const tiny = 1.0 / 1024
		twin[rng.Intn(len(twin))] += tiny
		at2 := 0.0
		for k, j := range idx {
			at2 += twin[k] * witness[j]
		}
		if rng.Intn(2) == 0 {
			p.AddConstraint(idx, twin, lp.LE, at2+float64(rng.Intn(3)), fmt.Sprintf("p%db", r))
		} else {
			p.AddConstraint(idx, twin, lp.GE, at2-float64(rng.Intn(3)), fmt.Sprintf("p%db", r))
		}
	}
	return p
}
