package solvercheck

import (
	"math/rand"
	"sync"
	"testing"

	"insitu/internal/scenario"
)

// TestFingerprintProperties drives the scenario canonical hash over the
// random scenario generator: permutation invariance (any reordering of the
// analyses hashes equal) and collision sensitivity (perturbing any one
// semantic field of any analysis, or the envelope, hashes differently). The
// trials run across a worker pool so `go test -race` exercises concurrent
// fingerprinting — schedd hashes requests on concurrent handler goroutines.
func TestFingerprintProperties(t *testing.T) {
	const trials = 200
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + g)))
			for trial := 0; trial < trials/8; trial++ {
				specs, res := RandScenario(rng, ScenarioConfig{})
				p := scenario.FromSpecs(specs, res)
				base := p.Fingerprint()

				// Permutation invariance: shuffled analyses, same hash.
				q := scenario.FromSpecs(specs, res)
				rng.Shuffle(len(q.Analyses), func(i, j int) {
					q.Analyses[i], q.Analyses[j] = q.Analyses[j], q.Analyses[i]
				})
				if got := q.Fingerprint(); got != base {
					t.Errorf("g%d trial %d: shuffle changed hash: %s vs %s", g, trial, got, base)
					return
				}

				// Collision sensitivity: every semantic single-field
				// perturbation must move the hash. Perturbations are chosen to
				// stay semantic after default normalization (Weight 0 == 1,
				// MinInterval <= 0 == 1).
				i := rng.Intn(len(p.Analyses))
				perturbed := []func(r *scenario.Problem){
					func(r *scenario.Problem) { r.Analyses[i].Name += "x" },
					func(r *scenario.Problem) { r.Analyses[i].CTSec += 0.25 },
					func(r *scenario.Problem) { r.Analyses[i].OTSec += 0.25 },
					func(r *scenario.Problem) { r.Analyses[i].FTSec += 0.25 },
					func(r *scenario.Problem) { r.Analyses[i].ITSec += 0.25 },
					func(r *scenario.Problem) { r.Analyses[i].FMBytes++ },
					func(r *scenario.Problem) { r.Analyses[i].IMBytes++ },
					func(r *scenario.Problem) { r.Analyses[i].CMBytes++ },
					func(r *scenario.Problem) { r.Analyses[i].OMBytes++ },
					func(r *scenario.Problem) { r.Analyses[i].Weight = normWeight(r.Analyses[i].Weight) + 1 },
					func(r *scenario.Problem) { r.Analyses[i].MinInterval = normItv(r.Analyses[i].MinInterval) + 1 },
					func(r *scenario.Problem) { r.Analyses[i].OutputOptional = !r.Analyses[i].OutputOptional },
					func(r *scenario.Problem) { r.Resources.Steps++ },
					func(r *scenario.Problem) { r.Resources.TimeSec += 0.25 },
					func(r *scenario.Problem) { r.Resources.MemBytes++ },
					func(r *scenario.Problem) { r.Resources.Bandwidth += 1024 },
				}
				for k, mutate := range perturbed {
					r := scenario.FromSpecs(specs, res)
					mutate(&r)
					if r.Fingerprint() == base {
						t.Errorf("g%d trial %d: perturbation %d (analysis %d) did not change hash", g, trial, k, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// normWeight / normItv mirror the fingerprint's default normalization so
// perturbations land on genuinely different semantic values.
func normWeight(w float64) float64 {
	if w == 0 {
		return 1
	}
	return w
}

func normItv(itv int) int {
	if itv <= 0 {
		return 1
	}
	return itv
}
