package solvercheck

import (
	"math/rand"
	"testing"

	"insitu/internal/lp"
)

// Native fuzz targets: the fuzzer steers the generator seed and shape knobs,
// and the differential oracles act as crash/feasibility detectors. Under
// plain `go test` only the seed corpus runs (fast); CI adds a short-budget
// `-fuzz` smoke pass per target.

func FuzzLPSolve(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3))
	f.Add(int64(42), uint8(8), uint8(6))
	f.Add(int64(-7), uint8(1), uint8(0))
	f.Add(int64(1<<40), uint8(12), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, vars, cons uint8) {
		rng := rand.New(rand.NewSource(seed))
		cfg := LPConfig{MaxVars: 1 + int(vars%12), MaxCons: 1 + int(cons%9)}
		p := RandLP(rng, cfg)
		if err := CheckLP(rng, p); err != nil {
			t.Fatalf("seed %d cfg %+v: %v", seed, cfg, err)
		}
	})
}

func FuzzMILPSolve(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3))
	f.Add(int64(99), uint8(9), uint8(5))
	f.Add(int64(-3), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, bins, cons uint8) {
		rng := rand.New(rand.NewSource(seed))
		cfg := MILPConfig{MaxBinaries: 2 + int(bins%9), MaxCons: 1 + int(cons%5)}
		p := RandBinaryMILP(rng, cfg)
		if err := CheckMILP(rng, p); err != nil {
			t.Fatalf("seed %d cfg %+v: %v", seed, cfg, err)
		}
	})
}

func FuzzRevisedSimplex(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(4), uint8(0))
	f.Add(int64(42), uint8(12), uint8(8), uint8(1))
	f.Add(int64(-7), uint8(3), uint8(2), uint8(2))
	f.Add(int64(1<<33), uint8(20), uint8(12), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, vars, cons, kind uint8) {
		rng := rand.New(rand.NewSource(seed))
		var p *lp.Problem
		switch kind % 3 {
		case 0:
			p = RandLP(rng, LPConfig{MaxVars: 1 + int(vars%24), MaxCons: 1 + int(cons%16)})
		case 1:
			p = RandChainLP(rng, 16+int(vars)%80)
		default:
			p = RandNearSingularLP(rng)
		}
		if err := CheckRevised(rng, p); err != nil {
			t.Fatalf("seed %d kind %d: %v", seed, kind%3, err)
		}
	})
}

func FuzzScenarioSolve(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(8))
	f.Add(int64(17), uint8(1), uint8(4))
	f.Add(int64(-11), uint8(2), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, analyses, steps uint8) {
		rng := rand.New(rand.NewSource(seed))
		cfg := ScenarioConfig{MaxAnalyses: 1 + int(analyses%2), MaxSteps: 2 + int(steps%9)}
		specs, res := RandScenario(rng, cfg)
		if err := CheckScenario(rng, specs, res, ScenarioChecks{BruteForce: true}); err != nil {
			t.Fatalf("seed %d cfg %+v specs %+v res %+v: %v", seed, cfg, specs, res, err)
		}
	})
}
