package solvercheck

import (
	"math"
	"math/rand"
	"testing"

	"insitu/internal/core"
	"insitu/internal/milp"
)

// trajectoryOK checks the shape every incumbent trajectory must have:
// objectives never regress (the root-integral path may re-record the
// heuristic seed at equal value), bounds never sit below their objective,
// and the last entry carries the final objective.
func trajectoryOK(inc []milp.Incumbent, finalObj float64) string {
	prev := math.Inf(-1)
	for _, p := range inc {
		if p.Objective < prev {
			return "objectives regress"
		}
		if p.Bound < p.Objective-objTol {
			return "bound below objective"
		}
		prev = p.Objective
	}
	if len(inc) > 0 && !objClose(inc[len(inc)-1].Objective, finalObj) {
		return "last incumbent is not the final objective"
	}
	return ""
}

// TestParallelDeterminismScenarioCorpus is the satellite determinism test:
// across the seeded scenario corpus, Workers=1 and Workers=8 must return
// the same objective and bound, and both incumbent trajectories must have
// the canonical improving shape. It runs in the CI race job, so the
// parallel path is also exercised under the race detector here.
func TestParallelDeterminismScenarioCorpus(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		specs, res := RandScenario(rng, ScenarioConfig{MaxAnalyses: 3, MaxSteps: 12})
		serial, err := core.Solve(specs, res, core.SolveOptions{})
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		par, err := core.Solve(specs, res, core.SolveOptions{Workers: 8})
		if err != nil {
			t.Fatalf("seed %d: workers=8: %v", seed, err)
		}
		if !objClose(par.Objective, serial.Objective) {
			t.Errorf("seed %d: workers=8 objective %g, serial %g", seed, par.Objective, serial.Objective)
		}
		if !objClose(par.Stats.BestBound, serial.Stats.BestBound) {
			t.Errorf("seed %d: workers=8 bound %g, serial %g", seed, par.Stats.BestBound, serial.Stats.BestBound)
		}
		if msg := trajectoryOK(serial.Stats.Incumbents, serial.Objective); msg != "" {
			t.Errorf("seed %d: serial trajectory: %s", seed, msg)
		}
		if msg := trajectoryOK(par.Stats.Incumbents, par.Objective); msg != "" {
			t.Errorf("seed %d: workers=8 trajectory: %s", seed, msg)
		}
		if err := par.Validate(specs, res); err != nil {
			t.Errorf("seed %d: workers=8 schedule fails recurrence validation: %v", seed, err)
		}
	}
}

// TestParallelDeterminismMILPCorpus repeats the cross-width check on the
// raw binary-MILP corpus and additionally pins run-to-run determinism at a
// fixed width: same instance, same Workers, same node count and pivot
// count.
func TestParallelDeterminismMILPCorpus(t *testing.T) {
	for seed := int64(200); seed < 260; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandBinaryMILP(rng, MILPConfig{})
		serial, err := milp.Solve(p, milp.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := milp.Solve(p, milp.Options{Workers: 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := milp.Solve(p, milp.Options{Workers: 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Status != serial.Status {
			t.Errorf("seed %d: workers=8 status %v, serial %v", seed, a.Status, serial.Status)
			continue
		}
		if serial.Status == milp.Optimal && !objClose(a.Objective, serial.Objective) {
			t.Errorf("seed %d: workers=8 objective %g, serial %g", seed, a.Objective, serial.Objective)
		}
		if a.Stats.Nodes != b.Stats.Nodes || a.Stats.Pivots != b.Stats.Pivots ||
			a.Stats.WarmSolves != b.Stats.WarmSolves || a.Objective != b.Objective {
			t.Errorf("seed %d: workers=8 not deterministic: %+v vs %+v", seed, a.Stats, b.Stats)
		}
	}
}
