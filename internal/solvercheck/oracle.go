package solvercheck

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"insitu/internal/core"
	"insitu/internal/lp"
	"insitu/internal/milp"
)

// objTol is the absolute/relative tolerance for objective comparisons. The
// generators draw coefficients from dyadic grids, so genuine solver
// disagreements show up far above this level.
const objTol = 1e-6

func objClose(a, b float64) bool {
	return math.Abs(a-b) <= objTol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// CheckLP runs the LP oracle suite on one instance: solution consistency
// (feasibility of X, objective equals c·X), boundedness (finite-bound
// instances must never report Unbounded), and metamorphic invariance of the
// optimal value under variable permutation and positive row scaling. The rng
// drives the metamorphic transforms; failures are reported as errors naming
// the violated property.
func CheckLP(rng *rand.Rand, p *lp.Problem) error {
	sol, err := lp.Solve(p)
	if err != nil {
		return fmt.Errorf("lp.Solve: %v", err)
	}
	switch sol.Status {
	case lp.Optimal:
		if viol := p.FirstViolation(sol.X, 1e-6); viol != "" {
			return fmt.Errorf("optimal point infeasible: %s", viol)
		}
		if got := p.Eval(sol.X); !objClose(got, sol.Objective) {
			return fmt.Errorf("objective %g disagrees with c·x = %g", sol.Objective, got)
		}
	case lp.Unbounded:
		return fmt.Errorf("bounded-variable instance reported Unbounded")
	case lp.IterationLimit:
		return fmt.Errorf("iteration limit on a %d-var %d-row instance", p.NumVars(), len(p.Constraints))
	}

	// Permutation invariance: relabeling variables must not move the optimum.
	perm := rng.Perm(p.NumVars())
	psol, err := lp.Solve(permuteLP(p, perm))
	if err != nil {
		return fmt.Errorf("lp.Solve(permuted): %v", err)
	}
	if psol.Status != sol.Status {
		return fmt.Errorf("permutation changed status %v -> %v", sol.Status, psol.Status)
	}
	if sol.Status == lp.Optimal && !objClose(psol.Objective, sol.Objective) {
		return fmt.Errorf("permutation changed objective %g -> %g", sol.Objective, psol.Objective)
	}

	// Row scaling: multiplying a constraint and its RHS by a positive power
	// of two (exact in floating point) describes the same polytope.
	scaled := p.Clone()
	for r := range scaled.Constraints {
		f := []float64{0.5, 2, 4}[rng.Intn(3)]
		for j := range scaled.Constraints[r].Coef {
			scaled.Constraints[r].Coef[j] *= f
		}
		scaled.Constraints[r].RHS *= f
	}
	ssol, err := lp.Solve(scaled)
	if err != nil {
		return fmt.Errorf("lp.Solve(scaled): %v", err)
	}
	if ssol.Status != sol.Status {
		return fmt.Errorf("row scaling changed status %v -> %v", sol.Status, ssol.Status)
	}
	if sol.Status == lp.Optimal && !objClose(ssol.Objective, sol.Objective) {
		return fmt.Errorf("row scaling changed objective %g -> %g", sol.Objective, ssol.Objective)
	}
	return nil
}

// CheckMILP runs the MILP oracle suite on one instance: branch-and-bound vs
// exhaustive enumeration (status and objective must agree exactly, size-gated
// on milp.BruteForce's typed refusal), integrality and feasibility of the
// incumbent, the LP relaxation as an upper bound, serial-vs-parallel search
// agreement at Workers=8, permutation invariance, and a WriteLP -> ReadLP ->
// Solve round trip.
func CheckMILP(rng *rand.Rand, p *milp.Problem) error {
	sol, err := milp.Solve(p, milp.Options{})
	if err != nil {
		return fmt.Errorf("milp.Solve: %v", err)
	}
	switch sol.Status {
	case milp.Optimal:
		if viol := p.LP.FirstViolation(sol.X, 1e-6); viol != "" {
			return fmt.Errorf("incumbent infeasible: %s", viol)
		}
		for j, isInt := range p.Integer {
			if isInt && math.Abs(sol.X[j]-math.Round(sol.X[j])) > 1e-6 {
				t := sol.X[j]
				return fmt.Errorf("integer variable %d = %g not integral", j, t)
			}
		}
		if got := p.LP.Eval(sol.X); !objClose(got, sol.Objective) {
			return fmt.Errorf("objective %g disagrees with c·x = %g", sol.Objective, got)
		}
		relax, err := lp.Solve(p.LP)
		if err != nil {
			return fmt.Errorf("lp.Solve(relaxation): %v", err)
		}
		if relax.Status == lp.Optimal && relax.Objective < sol.Objective-objTol {
			return fmt.Errorf("LP relaxation bound %g below MILP objective %g", relax.Objective, sol.Objective)
		}
	case milp.Unbounded:
		return fmt.Errorf("bounded-variable instance reported Unbounded")
	case milp.NodeLimit:
		return fmt.Errorf("node limit on a %d-var instance", p.LP.NumVars())
	}

	brute, err := milp.BruteForce(p)
	var tooLarge *milp.TooLargeError
	if errors.As(err, &tooLarge) {
		// Size gate: enumeration refused, the remaining oracles stand alone.
		brute = nil
	} else if err != nil {
		return fmt.Errorf("milp.BruteForce: %v", err)
	}
	if brute != nil {
		if brute.Status != sol.Status {
			return fmt.Errorf("brute force status %v, branch-and-bound %v", brute.Status, sol.Status)
		}
		if sol.Status == milp.Optimal && !objClose(brute.Objective, sol.Objective) {
			return fmt.Errorf("brute force objective %g, branch-and-bound %g", brute.Objective, sol.Objective)
		}
	}

	// Cross-width contract: the parallel search must reproduce the serial
	// search's status, objective, and terminal bound.
	wsol, err := milp.Solve(p, milp.Options{Workers: 8})
	if err != nil {
		return fmt.Errorf("milp.Solve(workers=8): %v", err)
	}
	if wsol.Status != sol.Status {
		return fmt.Errorf("workers=8 changed status %v -> %v", sol.Status, wsol.Status)
	}
	if sol.Status == milp.Optimal {
		if !objClose(wsol.Objective, sol.Objective) {
			return fmt.Errorf("workers=8 changed objective %g -> %g", sol.Objective, wsol.Objective)
		}
		if !objClose(wsol.Bound, sol.Bound) {
			return fmt.Errorf("workers=8 changed bound %g -> %g", sol.Bound, wsol.Bound)
		}
	}

	perm := rng.Perm(p.LP.NumVars())
	psol, err := milp.Solve(permuteMILP(p, perm), milp.Options{})
	if err != nil {
		return fmt.Errorf("milp.Solve(permuted): %v", err)
	}
	if psol.Status != sol.Status {
		return fmt.Errorf("permutation changed status %v -> %v", sol.Status, psol.Status)
	}
	if sol.Status == milp.Optimal && !objClose(psol.Objective, sol.Objective) {
		return fmt.Errorf("permutation changed objective %g -> %g", sol.Objective, psol.Objective)
	}

	return checkMILPRoundTrip(p, sol)
}

// checkMILPRoundTrip serializes the model in LP format, reparses it, and
// asserts the re-solved optimum matches.
func checkMILPRoundTrip(p *milp.Problem, sol *milp.Solution) error {
	var buf bytes.Buffer
	if err := milp.WriteLP(&buf, p); err != nil {
		return fmt.Errorf("WriteLP: %v", err)
	}
	q, err := milp.ReadLP(&buf)
	if err != nil {
		return fmt.Errorf("ReadLP: %v", err)
	}
	rsol, err := milp.Solve(q, milp.Options{})
	if err != nil {
		return fmt.Errorf("milp.Solve(reparsed): %v", err)
	}
	if rsol.Status != sol.Status {
		return fmt.Errorf("LP round trip changed status %v -> %v", sol.Status, rsol.Status)
	}
	if sol.Status == milp.Optimal && !objClose(rsol.Objective, sol.Objective) {
		return fmt.Errorf("LP round trip changed objective %g -> %g", sol.Objective, rsol.Objective)
	}
	return nil
}

// ScenarioChecks selects which oracles CheckScenario runs.
type ScenarioChecks struct {
	// BruteForce cross-checks core.Solve against core.BruteForceSolve (the
	// exact mode-space enumeration under per-step memory).
	BruteForce bool
	// FullModel cross-checks against core.SolveFull, the paper's verbatim
	// time-indexed formulation. Exponential in analyses x steps; keep the
	// scenario small.
	FullModel bool
}

// CheckScenario runs the scheduling-level oracle suite on one instance.
//
// Ordering invariants between the three formulations: the compact model's
// memory row (sum of per-analysis peaks) over-approximates the exact per-step
// memory, so
//
//	compact <= mode brute force <= full model
//
// with all three equal when the memory threshold is absent. Under an
// unconstrained envelope the optimum has the closed form
// Σ (1 + w_i·⌊Steps/itv_i⌋) over analyses that fit at all, checked exactly.
// Metamorphic properties: spec-order permutation invariance, objective
// monotonicity in cth and mth relaxation, and schedule feasibility under
// core's recurrence validation. The LP-export round trip re-solves
// core.ExportLP output through milp.ReadLP and compares optima.
func CheckScenario(rng *rand.Rand, specs []core.AnalysisSpec, res core.Resources, checks ScenarioChecks) error {
	rec, err := core.Solve(specs, res, core.SolveOptions{})
	if err != nil {
		return fmt.Errorf("core.Solve: %v", err)
	}
	if err := rec.Validate(specs, res); err != nil {
		return fmt.Errorf("compact schedule fails recurrence validation: %v", err)
	}

	// Analytic optimum under an unconstrained envelope.
	if res.TimeThreshold == 0 && res.MemThreshold == 0 {
		want := 0.0
		for _, a := range specs {
			itv := a.MinInterval
			if itv < 1 {
				itv = 1
			}
			w := a.Weight
			if w == 0 {
				w = 1
			}
			if bound := res.Steps / itv; bound > 0 {
				want += 1 + w*float64(bound)
			}
		}
		if !objClose(rec.Objective, want) {
			return fmt.Errorf("unconstrained objective %g, analytic optimum %g", rec.Objective, want)
		}
	}

	if checks.BruteForce {
		brute, err := core.BruteForceSolve(specs, res)
		if err != nil {
			return fmt.Errorf("core.BruteForceSolve: %v", err)
		}
		if err := brute.Validate(specs, res); err != nil {
			return fmt.Errorf("brute-force schedule fails recurrence validation: %v", err)
		}
		if rec.Objective > brute.Objective+objTol {
			return fmt.Errorf("compact objective %g above exact mode optimum %g", rec.Objective, brute.Objective)
		}
		if res.MemThreshold == 0 && !objClose(rec.Objective, brute.Objective) {
			return fmt.Errorf("memory-unconstrained compact objective %g, exact mode optimum %g", rec.Objective, brute.Objective)
		}
	}

	if checks.FullModel {
		full, err := core.SolveFull(specs, res, core.SolveOptions{})
		if err != nil {
			return fmt.Errorf("core.SolveFull: %v", err)
		}
		if err := full.Validate(specs, res); err != nil {
			return fmt.Errorf("full-model schedule fails recurrence validation: %v", err)
		}
		if full.Stats.BestBound > full.Objective+objTol {
			// A node-limited incumbent is not a ground truth; the instance is
			// too large for the full-model oracle.
			return fmt.Errorf("full model not proven optimal (bound %g > objective %g): shrink the scenario",
				full.Stats.BestBound, full.Objective)
		}
		if rec.Objective > full.Objective+objTol {
			return fmt.Errorf("compact objective %g above full-model optimum %g", rec.Objective, full.Objective)
		}
		if res.MemThreshold == 0 && !objClose(rec.Objective, full.Objective) {
			return fmt.Errorf("memory-unconstrained compact objective %g, full-model optimum %g", rec.Objective, full.Objective)
		}
	}

	// Permutation invariance: reordering the spec list relabels binaries in
	// the compact model and must not move the optimum.
	perm := rng.Perm(len(specs))
	shuffled := make([]core.AnalysisSpec, len(specs))
	for i, j := range perm {
		shuffled[i] = specs[j]
	}
	prec, err := core.Solve(shuffled, res, core.SolveOptions{})
	if err != nil {
		return fmt.Errorf("core.Solve(permuted): %v", err)
	}
	if !objClose(prec.Objective, rec.Objective) {
		return fmt.Errorf("spec permutation changed objective %g -> %g", rec.Objective, prec.Objective)
	}

	// Monotonicity: relaxing cth or mth can only improve the objective.
	if res.TimeThreshold > 0 {
		loose := res
		loose.TimeThreshold *= 1.5
		lrec, err := core.Solve(specs, loose, core.SolveOptions{})
		if err != nil {
			return fmt.Errorf("core.Solve(relaxed cth): %v", err)
		}
		if lrec.Objective < rec.Objective-objTol {
			return fmt.Errorf("relaxing cth %g -> %g dropped objective %g -> %g",
				res.TimeThreshold, loose.TimeThreshold, rec.Objective, lrec.Objective)
		}
	}
	if res.MemThreshold > 0 {
		loose := res
		loose.MemThreshold *= 2
		lrec, err := core.Solve(specs, loose, core.SolveOptions{})
		if err != nil {
			return fmt.Errorf("core.Solve(relaxed mth): %v", err)
		}
		if lrec.Objective < rec.Objective-objTol {
			return fmt.Errorf("relaxing mth %d -> %d dropped objective %g -> %g",
				res.MemThreshold, loose.MemThreshold, rec.Objective, lrec.Objective)
		}
	}

	// LP-export round trip: the exported compact model, reparsed and
	// re-solved, must reach the same optimum the recommendation reports.
	var buf bytes.Buffer
	if err := core.ExportLP(&buf, specs, res, core.SolveOptions{}); err != nil {
		return fmt.Errorf("core.ExportLP: %v", err)
	}
	q, err := milp.ReadLP(&buf)
	if err != nil {
		return fmt.Errorf("ReadLP(exported): %v", err)
	}
	rsol, err := milp.Solve(q, milp.Options{})
	if err != nil {
		return fmt.Errorf("milp.Solve(exported): %v", err)
	}
	if rsol.Status != milp.Optimal {
		return fmt.Errorf("exported model solved to %v, want optimal", rsol.Status)
	}
	if !objClose(rsol.Objective, rec.Objective) {
		return fmt.Errorf("exported model optimum %g, recommendation objective %g", rsol.Objective, rec.Objective)
	}
	return nil
}

// permuteLP relabels variables: column j of p becomes column perm[j].
func permuteLP(p *lp.Problem, perm []int) *lp.Problem {
	n := p.NumVars()
	q := &lp.Problem{
		Objective: make([]float64, n),
		Lower:     make([]float64, n),
		Upper:     make([]float64, n),
		Names:     make([]string, n),
	}
	for j := 0; j < n; j++ {
		q.Objective[perm[j]] = p.Objective[j]
		q.Lower[perm[j]] = p.Lower[j]
		q.Upper[perm[j]] = p.Upper[j]
		q.Names[perm[j]] = p.Names[j]
	}
	for _, c := range p.Constraints {
		coef := make([]float64, n)
		for j, v := range c.Coef {
			coef[perm[j]] = v
		}
		q.Constraints = append(q.Constraints, lp.Constraint{Coef: coef, Sense: c.Sense, RHS: c.RHS, Name: c.Name})
	}
	return q
}

// permuteMILP relabels variables of a MILP, carrying integrality markers.
func permuteMILP(p *milp.Problem, perm []int) *milp.Problem {
	q := &milp.Problem{LP: permuteLP(p.LP, perm), Integer: make([]bool, len(p.Integer))}
	for j, isInt := range p.Integer {
		q.Integer[perm[j]] = isInt
	}
	return q
}
