package solvercheck

import (
	"bytes"
	"math/rand"
	"testing"

	"insitu/internal/core"
	"insitu/internal/obs"
)

// flightSolve solves the scenario at the given width with a fresh flight
// recorder attached and returns the recorded stream plus the solve result.
func flightSolve(t *testing.T, specs []core.AnalysisSpec, res core.Resources, workers int) ([]obs.SolveProgress, *core.Recommendation) {
	t.Helper()
	fr := obs.NewFlightRecorder(0)
	rec, err := core.Solve(specs, res, core.SolveOptions{Workers: workers, Flight: fr})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return fr.Snapshot(), rec
}

// TestFlightStreamDeterminism is the flight-recorder determinism corpus: for
// seeded scenarios, the recorded solveprog stream must be (a) internally
// valid, (b) byte-identical run to run at a fixed width once the wall-clock
// field is projected out (obs.DeterministicBytes), and (c) byte-identical
// across Workers=1 and Workers=8 under the canonical projection
// (obs.CanonicalBytes) — the parallel search walks a different tree per
// width, but problem shape and terminal objective/bound/gap may not move.
// It runs in the CI race job, so the recording path is also exercised under
// the race detector here.
func TestFlightStreamDeterminism(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		specs, res := RandScenario(rng, ScenarioConfig{MaxAnalyses: 3, MaxSteps: 12})

		serial, serialRec := flightSolve(t, specs, res, 1)
		wide, wideRec := flightSolve(t, specs, res, 8)
		if !objClose(serialRec.Objective, wideRec.Objective) {
			t.Fatalf("seed %d: objective drifts across widths: %g vs %g",
				seed, serialRec.Objective, wideRec.Objective)
		}

		for width, recs := range map[int][]obs.SolveProgress{1: serial, 8: wide} {
			if err := obs.CheckSolveProg(recs); err != nil {
				t.Errorf("seed %d workers=%d: invalid stream: %v", seed, width, err)
			}
			gap, status, ok := obs.FinalGap(recs)
			if !ok || status != "optimal" {
				t.Errorf("seed %d workers=%d: final gap undefined or non-optimal (status %q)",
					seed, width, status)
			} else if gap > objTol {
				t.Errorf("seed %d workers=%d: final gap %g not closed", seed, width, gap)
			}
		}

		// Run-to-run determinism per width: a second identical solve must
		// reproduce the full stream byte for byte (t_us excluded).
		serial2, _ := flightSolve(t, specs, res, 1)
		if !bytes.Equal(obs.DeterministicBytes(serial), obs.DeterministicBytes(serial2)) {
			t.Errorf("seed %d: workers=1 stream not deterministic run to run", seed)
		}
		wide2, _ := flightSolve(t, specs, res, 8)
		if !bytes.Equal(obs.DeterministicBytes(wide), obs.DeterministicBytes(wide2)) {
			t.Errorf("seed %d: workers=8 stream not deterministic run to run", seed)
		}

		// Cross-width: the canonical projection is width-invariant.
		if !bytes.Equal(obs.CanonicalBytes(serial), obs.CanonicalBytes(wide)) {
			t.Errorf("seed %d: canonical projection differs across widths:\n%s\nvs\n%s",
				seed, obs.CanonicalBytes(serial), obs.CanonicalBytes(wide))
		}
	}
}
