package solvercheck

import (
	"math/rand"
	"testing"

	"insitu/internal/core"
	"insitu/internal/lp"
	"insitu/internal/milp"
)

// The differential harness: hundreds of seeded random instances per solver
// layer, each cross-checked against independent ground truth. Every failure
// message carries the instance seed, so a red run reproduces with a
// one-line test.

func TestDifferentialLP(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandLP(rng, LPConfig{})
		if err := CheckLP(rng, p); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestDifferentialMILP(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := RandBinaryMILP(rng, MILPConfig{})
		if err := CheckMILP(rng, p); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestDifferentialScenarios(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		specs, res := RandScenario(rng, ScenarioConfig{MaxAnalyses: 2, MaxSteps: 10})
		if err := CheckScenario(rng, specs, res, ScenarioChecks{BruteForce: true}); err != nil {
			t.Errorf("seed %d (specs %+v res %+v): %v", seed, specs, res, err)
		}
	}
}

func TestDifferentialFullModel(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		specs, res := RandScenario(rng, ScenarioConfig{MaxAnalyses: 2, MaxSteps: 5})
		if err := CheckScenario(rng, specs, res, ScenarioChecks{BruteForce: true, FullModel: true}); err != nil {
			t.Errorf("seed %d (specs %+v res %+v): %v", seed, specs, res, err)
		}
	}
}

// TestGeneratorsDeterministic pins the reproducibility contract: the same
// seed must yield the same instance, or failure seeds are worthless.
func TestGeneratorsDeterministic(t *testing.T) {
	a := RandLP(rand.New(rand.NewSource(7)), LPConfig{})
	b := RandLP(rand.New(rand.NewSource(7)), LPConfig{})
	if a.NumVars() != b.NumVars() || len(a.Constraints) != len(b.Constraints) {
		t.Fatalf("RandLP not deterministic: %d/%d vars, %d/%d rows",
			a.NumVars(), b.NumVars(), len(a.Constraints), len(b.Constraints))
	}
	for j := range a.Objective {
		if a.Objective[j] != b.Objective[j] || a.Lower[j] != b.Lower[j] || a.Upper[j] != b.Upper[j] {
			t.Fatalf("RandLP not deterministic at variable %d", j)
		}
	}
	s1, r1 := RandScenario(rand.New(rand.NewSource(9)), ScenarioConfig{})
	s2, r2 := RandScenario(rand.New(rand.NewSource(9)), ScenarioConfig{})
	if r1 != r2 || len(s1) != len(s2) {
		t.Fatalf("RandScenario not deterministic: %+v vs %+v", r1, r2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("RandScenario not deterministic at spec %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

// TestGeneratorsAreValid asserts every generated instance passes the target
// packages' own structural validation, so oracle failures always indict the
// solver, never the generator.
func TestGeneratorsAreValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if err := RandLP(rng, LPConfig{}).Validate(); err != nil {
			t.Errorf("seed %d: invalid LP: %v", seed, err)
		}
		m := RandBinaryMILP(rng, MILPConfig{})
		if err := m.LP.Validate(); err != nil {
			t.Errorf("seed %d: invalid MILP: %v", seed, err)
		}
		specs, res := RandScenario(rng, ScenarioConfig{})
		if err := res.Validate(); err != nil {
			t.Errorf("seed %d: invalid resources: %v", seed, err)
		}
		for _, a := range specs {
			if err := a.Validate(); err != nil {
				t.Errorf("seed %d: invalid spec %q: %v", seed, a.Name, err)
			}
		}
	}
}

// TestScenarioGeneratorCoversDegenerateCases asserts the sampler actually
// reaches the corners it promises (zero-cost analyses, interval at and above
// Steps, unconstrained and memory-constrained envelopes, bandwidth-derived
// output times), so harness coverage cannot silently rot.
func TestScenarioGeneratorCoversDegenerateCases(t *testing.T) {
	var zeroCost, itvAtSteps, itvAboveSteps, unconstrained, memTight, bwDerived, optional int
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		specs, res := RandScenario(rng, ScenarioConfig{})
		if res.TimeThreshold == 0 && res.MemThreshold == 0 {
			unconstrained++
		}
		if res.MemThreshold > 0 {
			memTight++
		}
		for _, a := range specs {
			if a.FT == 0 && a.IT == 0 && a.CT == 0 && a.OT == 0 {
				zeroCost++
			}
			if a.MinInterval == res.Steps {
				itvAtSteps++
			}
			if a.MinInterval > res.Steps {
				itvAboveSteps++
			}
			if a.OT == 0 && a.OM > 0 && res.Bandwidth > 0 {
				bwDerived++
			}
			if a.OutputOptional {
				optional++
			}
		}
	}
	for name, n := range map[string]int{
		"zero-cost analyses":     zeroCost,
		"itv == Steps":           itvAtSteps,
		"itv > Steps":            itvAboveSteps,
		"unconstrained envelope": unconstrained,
		"memory-constrained":     memTight,
		"bandwidth-derived ot":   bwDerived,
		"optional outputs":       optional,
	} {
		if n < 10 {
			t.Errorf("degenerate case %q hit only %d times in 400 scenarios", name, n)
		}
	}
}

// TestCheckScenarioCatchesBadSchedule sanity-checks the oracle itself: a
// hand-broken recommendation must be rejected by core validation.
func TestCheckScenarioCatchesBadSchedule(t *testing.T) {
	specs := []core.AnalysisSpec{{Name: "a", CT: 1, MinInterval: 2}}
	res := core.Resources{Steps: 10, TimeThreshold: 100}
	rec, err := core.Solve(specs, res, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Schedules[0].AnalysisSteps = []int{1, 2} // violates MinInterval 2
	rec.Schedules[0].Count = 2
	if err := rec.Validate(specs, res); err == nil {
		t.Fatal("validation accepted an interval-violating schedule")
	}
}

// TestHarnessSizeGatesOnBruteForce pins the satellite contract: the harness
// must recognize milp.BruteForce's typed refusal rather than failing on it.
func TestHarnessSizeGatesOnBruteForce(t *testing.T) {
	p := milp.NewProblem(&lp.Problem{})
	for i := 0; i < 24; i++ {
		p.AddBinVar(0, "")
	}
	rng := rand.New(rand.NewSource(1))
	if err := CheckMILP(rng, p); err != nil {
		t.Fatalf("CheckMILP failed on a brute-force-oversized instance: %v", err)
	}
}
