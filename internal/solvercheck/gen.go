// Package solvercheck is the differential and property-based verification
// harness for the solver stack (lp → milp → core). The paper's results rest
// on an exact MILP that the original authors solved with CPLEX; this
// repository substitutes a from-scratch simplex and branch-and-bound, and
// that substitution is only credible under systematic cross-checking. The
// package provides deterministic, seeded random-instance generators (bounded
// LPs, pure-binary MILPs, and full scheduling scenarios spanning degenerate
// cases) plus oracle layers that cross-check every solver against an
// independent ground truth: brute-force enumeration, the compact-vs-full
// model pair, LP-export round trips, analytic optima, and metamorphic
// properties (permutation invariance, threshold monotonicity).
//
// The generators are pure functions of their *rand.Rand, so every failure is
// reproducible from the seed reported in the test output. Coefficients are
// drawn from small dyadic grids (integers and quarters) so that differential
// comparisons are not confounded by floating-point noise.
package solvercheck

import (
	"fmt"
	"math/rand"

	"insitu/internal/core"
	"insitu/internal/lp"
	"insitu/internal/milp"
)

// LPConfig bounds the shape of RandLP instances.
type LPConfig struct {
	// MaxVars caps the variable count (default 8).
	MaxVars int
	// MaxCons caps the constraint count (default 6).
	MaxCons int
}

func (c LPConfig) withDefaults() LPConfig {
	if c.MaxVars <= 0 {
		c.MaxVars = 8
	}
	if c.MaxCons < 0 {
		c.MaxCons = 0
	}
	if c.MaxCons == 0 {
		c.MaxCons = 6
	}
	return c
}

// RandLP generates a bounded LP: every variable has finite bounds, so the
// instance can be Optimal or Infeasible but never Unbounded — which turns
// "status is Unbounded" into an oracle failure rather than an ambiguity.
// Most instances are feasible by construction: constraint right-hand sides
// are placed relative to a random integer witness point inside the bounds,
// with a minority pushed past it to keep the infeasible paths exercised.
func RandLP(rng *rand.Rand, cfg LPConfig) *lp.Problem {
	cfg = cfg.withDefaults()
	n := 1 + rng.Intn(cfg.MaxVars)
	p := &lp.Problem{}
	witness := make([]float64, n)
	for j := 0; j < n; j++ {
		lo := float64(rng.Intn(4))
		span := rng.Intn(9) // span 0 makes a fixed variable, a degenerate case
		up := lo + float64(span)
		p.AddVar(float64(rng.Intn(11)-5), lo, up, fmt.Sprintf("v%d", j))
		witness[j] = lo + float64(rng.Intn(span+1))
	}
	m := rng.Intn(cfg.MaxCons + 1)
	for r := 0; r < m; r++ {
		idx, coef := randRow(rng, n)
		at := 0.0
		for k, j := range idx {
			at += coef[k] * witness[j]
		}
		var sense lp.Sense
		var rhs float64
		switch roll := rng.Intn(100); {
		case roll < 55:
			sense, rhs = lp.LE, at+float64(rng.Intn(5))
		case roll < 70:
			sense, rhs = lp.LE, at-1-float64(rng.Intn(4)) // possibly infeasible
		case roll < 90:
			sense, rhs = lp.GE, at-float64(rng.Intn(5))
		default:
			sense, rhs = lp.EQ, at // exact at the witness: feasible, often degenerate
		}
		p.AddConstraint(idx, coef, sense, rhs, fmt.Sprintf("r%d", r))
	}
	return p
}

// MILPConfig bounds the shape of RandBinaryMILP instances.
type MILPConfig struct {
	// MaxBinaries caps the 0-1 variable count (default 9, small enough that
	// milp.BruteForce enumerates every instance).
	MaxBinaries int
	// MaxCons caps the constraint count (default 5).
	MaxCons int
}

func (c MILPConfig) withDefaults() MILPConfig {
	if c.MaxBinaries <= 0 {
		c.MaxBinaries = 9
	}
	if c.MaxCons <= 0 {
		c.MaxCons = 5
	}
	return c
}

// RandBinaryMILP generates a pure-binary MILP shaped like the compact
// scheduling model: knapsack-style rows over 0-1 variables. Objective
// coefficients are integral on half the instances (exercising the
// integral-objective pruning fast path in milp.Solve) and quarter-fractional
// on the rest.
func RandBinaryMILP(rng *rand.Rand, cfg MILPConfig) *milp.Problem {
	cfg = cfg.withDefaults()
	n := 2 + rng.Intn(cfg.MaxBinaries-1)
	p := milp.NewProblem(&lp.Problem{})
	integralObj := rng.Intn(2) == 0
	for j := 0; j < n; j++ {
		obj := float64(rng.Intn(21) - 5)
		if !integralObj {
			obj += 0.25 * float64(rng.Intn(4))
		}
		p.AddBinVar(obj, fmt.Sprintf("b%d", j))
	}
	witness := make([]float64, n)
	for j := range witness {
		witness[j] = float64(rng.Intn(2))
	}
	m := 1 + rng.Intn(cfg.MaxCons)
	for r := 0; r < m; r++ {
		idx, coef := randRow(rng, n)
		at := 0.0
		for k, j := range idx {
			at += coef[k] * witness[j]
		}
		var sense lp.Sense
		var rhs float64
		switch roll := rng.Intn(100); {
		case roll < 60:
			sense, rhs = lp.LE, at+float64(rng.Intn(4))
		case roll < 75:
			sense, rhs = lp.GE, at-float64(rng.Intn(4))
		case roll < 90:
			sense, rhs = lp.EQ, at
		default:
			sense, rhs = lp.LE, at-1-float64(rng.Intn(3)) // possibly infeasible
		}
		p.LP.AddConstraint(idx, coef, sense, rhs, fmt.Sprintf("r%d", r))
	}
	return p
}

// randRow draws a sparse row with 1..n nonzero small-integer coefficients.
func randRow(rng *rand.Rand, n int) ([]int, []float64) {
	nz := 1 + rng.Intn(n)
	perm := rng.Perm(n)[:nz]
	idx := make([]int, 0, nz)
	coef := make([]float64, 0, nz)
	for _, j := range perm {
		c := rng.Intn(9) - 4
		if c == 0 {
			c = 1
		}
		idx = append(idx, j)
		coef = append(coef, float64(c))
	}
	return idx, coef
}

// ScenarioConfig bounds the shape of RandScenario instances.
type ScenarioConfig struct {
	// MaxAnalyses caps the analysis count (default 3).
	MaxAnalyses int
	// MaxSteps caps the simulation step count (default 12). Instances meant
	// for the full time-indexed model should keep this at 6 or below: the
	// full model carries O(analyses x steps) binaries.
	MaxSteps int
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.MaxAnalyses <= 0 {
		c.MaxAnalyses = 3
	}
	if c.MaxSteps < 2 {
		c.MaxSteps = 12
	}
	return c
}

// RandScenario generates a full scheduling instance: analysis specs plus a
// resource envelope. The sampler deliberately spikes the degenerate corners
// the paper's constraint system has — zero-cost analyses (only the interval
// constraint binds), time-tight and memory-tight envelopes (thresholds placed
// just around the cost of a random candidate schedule), bandwidth-derived
// output times (ot = om/bw), minimum intervals at 1, at Steps (one analysis
// step possible), and above Steps (the analysis cannot run at all), and
// optional outputs.
func RandScenario(rng *rand.Rand, cfg ScenarioConfig) ([]core.AnalysisSpec, core.Resources) {
	cfg = cfg.withDefaults()
	steps := 2 + rng.Intn(cfg.MaxSteps-1)
	n := 1 + rng.Intn(cfg.MaxAnalyses)

	res := core.Resources{Steps: steps}
	if rng.Intn(2) == 0 {
		// Powers of two keep om/bw divisions exact in both models.
		res.Bandwidth = float64(int64(1) << (18 + rng.Intn(6)))
	}

	const mib = int64(1) << 20
	specs := make([]core.AnalysisSpec, n)
	totalCost := 0.0 // cost of a random candidate schedule, for threshold placement
	var totalMem int64
	for i := range specs {
		a := core.AnalysisSpec{Name: fmt.Sprintf("a%d", i)}
		zeroCost := rng.Intn(4) == 0
		if !zeroCost {
			a.CT = quarter(rng, 12)
			if rng.Intn(2) == 0 {
				a.OT = quarter(rng, 8)
			}
			if rng.Intn(4) == 0 {
				a.FT = quarter(rng, 4)
			}
			if rng.Intn(5) == 0 {
				a.IT = quarter(rng, 2)
			}
		}
		if rng.Intn(3) > 0 {
			a.FM = int64(rng.Intn(8)) * mib
			a.CM = int64(rng.Intn(8)) * mib
			a.OM = int64(rng.Intn(8)) * mib
		}
		if rng.Intn(4) == 0 {
			a.IM = int64(rng.Intn(3)) * mib
		}
		switch rng.Intn(8) {
		case 0:
			a.MinInterval = steps // exactly one analysis step fits
		case 1:
			a.MinInterval = steps + 1 + rng.Intn(2) // no analysis step fits
		case 2, 3:
			a.MinInterval = 2 + rng.Intn(3)
		default:
			a.MinInterval = 1
		}
		a.Weight = []float64{1, 1, 1, 0.5, 1.5, 2, 2.5}[rng.Intn(7)]
		a.OutputOptional = rng.Intn(4) == 0
		specs[i] = a

		// Candidate schedule: a random count within the interval bound with a
		// random output stride, costed with the same formulas the models use.
		if bound := steps / a.MinInterval; bound > 0 {
			count := 1 + rng.Intn(bound)
			outputs := 1 + rng.Intn(count)
			ot := a.OT
			if ot == 0 && a.OM > 0 && res.Bandwidth > 0 {
				ot = float64(a.OM) / res.Bandwidth
			}
			totalCost += a.FT + a.IT*float64(steps) + a.CT*float64(count) + ot*float64(outputs)
		}
		totalMem += a.FM + int64(steps)*a.IM + a.CM + a.OM
	}

	switch rng.Intn(4) {
	case 0:
		// Unconstrained time: only intervals and memory bind.
	case 1:
		res.TimeThreshold = totalCost + quarter(rng, 16) // loose
	default:
		res.TimeThreshold = quarter(rng, 4) + totalCost*[]float64{0.25, 0.5, 0.75, 1}[rng.Intn(4)] // tight
	}
	if rng.Intn(5) > 1 && totalMem > 0 {
		frac := []int64{1, 2, 3, 4}[rng.Intn(4)]
		res.MemThreshold = totalMem * frac / 4
		if res.MemThreshold == 0 {
			res.MemThreshold = mib
		}
	}
	return specs, res
}

// quarter draws a non-negative multiple of 0.25 below n/4.
func quarter(rng *rand.Rand, n int) float64 {
	return 0.25 * float64(rng.Intn(n))
}
