// Package scenario defines the JSON problem-description format shared by the
// insitu-sched and schedexplain commands: the Table-1 parameters of each
// analysis plus the resource envelope. Keeping the schema in one place means
// every tool in the repo reads (and the golden harness writes) exactly the
// same files.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"insitu/internal/core"
)

// Analysis mirrors one Table-1 analysis entry. All durations are seconds and
// all sizes bytes, as the field names spell out.
type Analysis struct {
	Name           string  `json:"name"`
	FTSec          float64 `json:"ft_sec,omitempty"`
	ITSec          float64 `json:"it_sec,omitempty"`
	CTSec          float64 `json:"ct_sec"`
	OTSec          float64 `json:"ot_sec,omitempty"`
	FMBytes        int64   `json:"fm_bytes,omitempty"`
	IMBytes        int64   `json:"im_bytes,omitempty"`
	CMBytes        int64   `json:"cm_bytes,omitempty"`
	OMBytes        int64   `json:"om_bytes,omitempty"`
	Weight         float64 `json:"weight,omitempty"`
	MinInterval    int     `json:"min_interval"`
	OutputOptional bool    `json:"output_optional,omitempty"`
}

// Envelope mirrors the resource block.
type Envelope struct {
	Steps     int     `json:"steps"`
	TimeSec   float64 `json:"time_threshold_sec,omitempty"`
	MemBytes  int64   `json:"mem_threshold_bytes,omitempty"`
	Bandwidth float64 `json:"bandwidth_bytes_per_sec,omitempty"`
}

// Problem is one scenario file.
type Problem struct {
	Resources Envelope   `json:"resources"`
	Analyses  []Analysis `json:"analyses"`
}

// Decode converts the scenario into solver inputs.
func (p Problem) Decode() ([]core.AnalysisSpec, core.Resources) {
	specs := make([]core.AnalysisSpec, len(p.Analyses))
	for i, a := range p.Analyses {
		specs[i] = core.AnalysisSpec{
			Name: a.Name,
			FT:   a.FTSec, IT: a.ITSec, CT: a.CTSec, OT: a.OTSec,
			FM: a.FMBytes, IM: a.IMBytes, CM: a.CMBytes, OM: a.OMBytes,
			Weight:         a.Weight,
			MinInterval:    a.MinInterval,
			OutputOptional: a.OutputOptional,
		}
	}
	res := core.Resources{
		Steps:         p.Resources.Steps,
		TimeThreshold: p.Resources.TimeSec,
		MemThreshold:  p.Resources.MemBytes,
		Bandwidth:     p.Resources.Bandwidth,
	}
	return specs, res
}

// FromSpecs builds the scenario for a spec set, the inverse of Decode. The
// golden harness uses it to emit scenario files from the paper profiles.
func FromSpecs(specs []core.AnalysisSpec, res core.Resources) Problem {
	p := Problem{Resources: Envelope{
		Steps:     res.Steps,
		TimeSec:   res.TimeThreshold,
		MemBytes:  res.MemThreshold,
		Bandwidth: res.Bandwidth,
	}}
	for _, s := range specs {
		p.Analyses = append(p.Analyses, Analysis{
			Name:  s.Name,
			FTSec: s.FT, ITSec: s.IT, CTSec: s.CT, OTSec: s.OT,
			FMBytes: s.FM, IMBytes: s.IM, CMBytes: s.CM, OMBytes: s.OM,
			Weight:         s.Weight,
			MinInterval:    s.MinInterval,
			OutputOptional: s.OutputOptional,
		})
	}
	return p
}

// Parse reads one scenario document.
func Parse(r io.Reader) (Problem, error) {
	var p Problem
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return Problem{}, err
	}
	if len(p.Analyses) == 0 {
		return Problem{}, fmt.Errorf("scenario: no analyses")
	}
	return p, nil
}

// Load parses the scenario file at path.
func Load(path string) (Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return Problem{}, err
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return Problem{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return p, nil
}

// LoadSpecs is Load followed by Decode, the one-call form the CLIs use.
func LoadSpecs(path string) ([]core.AnalysisSpec, core.Resources, error) {
	p, err := Load(path)
	if err != nil {
		return nil, core.Resources{}, err
	}
	specs, res := p.Decode()
	return specs, res, nil
}
