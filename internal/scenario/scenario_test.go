package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"insitu/internal/core"
)

func TestRoundTrip(t *testing.T) {
	specs := []core.AnalysisSpec{
		{Name: "A1", FT: 0.2, IT: 0.01, CT: 0.065, OT: 0.005,
			FM: 1 << 26, IM: 1 << 10, CM: 1 << 20, OM: 1 << 22,
			Weight: 2, MinInterval: 100, OutputOptional: true},
		{Name: "A2", CT: 0.5, MinInterval: 50},
	}
	res := core.Resources{Steps: 1000, TimeThreshold: 64.7, MemThreshold: 12 << 30, Bandwidth: 4.5e9}

	gotSpecs, gotRes := FromSpecs(specs, res).Decode()
	if !reflect.DeepEqual(gotSpecs, specs) {
		t.Fatalf("specs round trip:\ngot  %+v\nwant %+v", gotSpecs, specs)
	}
	if gotRes != res {
		t.Fatalf("resources round trip: got %+v want %+v", gotRes, res)
	}
}

func TestLoadSpecs(t *testing.T) {
	// The documented insitu-sched input format must keep parsing unchanged.
	doc := `{
  "resources": {"steps": 1000, "time_threshold_sec": 64.7,
    "mem_threshold_bytes": 12884901888, "bandwidth_bytes_per_sec": 4536000000},
  "analyses": [
    {"name": "A1", "ct_sec": 0.065, "ot_sec": 0.005,
     "fm_bytes": 67108864, "min_interval": 100, "weight": 1}
  ]
}`
	path := filepath.Join(t.TempDir(), "problem.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	specs, res, err := LoadSpecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "A1" || specs[0].CT != 0.065 || specs[0].MinInterval != 100 {
		t.Fatalf("specs = %+v", specs)
	}
	if res.Steps != 1000 || res.TimeThreshold != 64.7 || res.MemThreshold != 12884901888 {
		t.Fatalf("res = %+v", res)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"resources": {"steps": 10}}`)); err == nil {
		t.Fatal("expected error for a scenario without analyses")
	}
	if _, err := Parse(strings.NewReader(`not json`)); err == nil {
		t.Fatal("expected error for malformed JSON")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected error for a missing file")
	}
}
