package scenario

import (
	"strings"
	"testing"
)

func twoAnalysisProblem() Problem {
	return Problem{
		Resources: Envelope{Steps: 100, TimeSec: 12.5, MemBytes: 1 << 30, Bandwidth: 1 << 20},
		Analyses: []Analysis{
			{Name: "descriptors", CTSec: 1.5, OTSec: 0.25, CMBytes: 1 << 20, MinInterval: 2, Weight: 2},
			{Name: "msd", CTSec: 0.75, OMBytes: 1 << 19, MinInterval: 1},
		},
	}
}

func TestFingerprintShape(t *testing.T) {
	fp := twoAnalysisProblem().Fingerprint()
	if !strings.HasPrefix(fp, "sha256:") || len(fp) != len("sha256:")+64 {
		t.Fatalf("fingerprint shape: %q", fp)
	}
	if fp != twoAnalysisProblem().Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestFingerprintPermutationInvariant(t *testing.T) {
	p := twoAnalysisProblem()
	q := twoAnalysisProblem()
	q.Analyses[0], q.Analyses[1] = q.Analyses[1], q.Analyses[0]
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatal("reordering analyses changed the fingerprint")
	}
}

func TestFingerprintDefaultsNormalized(t *testing.T) {
	p := twoAnalysisProblem()
	q := twoAnalysisProblem()
	// msd's omitted weight means 1, and MinInterval 0 means 1; writing the
	// defaults explicitly must hash identically.
	q.Analyses[1].Weight = 1
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatal("explicit default weight changed the fingerprint")
	}
	q = twoAnalysisProblem()
	q.Analyses[1].MinInterval = 0
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatal("zero MinInterval should normalize to 1")
	}
}

func TestFingerprintSensitive(t *testing.T) {
	base := twoAnalysisProblem().Fingerprint()
	mutations := map[string]func(*Problem){
		"name":        func(p *Problem) { p.Analyses[0].Name = "descriptors2" },
		"ct":          func(p *Problem) { p.Analyses[0].CTSec += 0.25 },
		"ot":          func(p *Problem) { p.Analyses[0].OTSec = 0 },
		"cm":          func(p *Problem) { p.Analyses[0].CMBytes++ },
		"weight":      func(p *Problem) { p.Analyses[0].Weight = 3 },
		"interval":    func(p *Problem) { p.Analyses[0].MinInterval = 3 },
		"optional":    func(p *Problem) { p.Analyses[0].OutputOptional = true },
		"steps":       func(p *Problem) { p.Resources.Steps = 101 },
		"time":        func(p *Problem) { p.Resources.TimeSec += 0.5 },
		"mem":         func(p *Problem) { p.Resources.MemBytes-- },
		"bandwidth":   func(p *Problem) { p.Resources.Bandwidth *= 2 },
		"dropped":     func(p *Problem) { p.Analyses = p.Analyses[:1] },
		"duplicated":  func(p *Problem) { p.Analyses = append(p.Analyses, p.Analyses[0]) },
		"field-moved": func(p *Problem) { p.Analyses[0].CTSec, p.Analyses[0].OTSec = p.Analyses[0].OTSec, p.Analyses[0].CTSec },
	}
	for what, mutate := range mutations {
		p := twoAnalysisProblem()
		mutate(&p)
		if p.Fingerprint() == base {
			t.Errorf("%s change did not change the fingerprint", what)
		}
	}
}
