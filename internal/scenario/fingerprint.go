package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// fingerprintVersion names the canonical encoding below. Bump it whenever
// the encoding (field set, defaults, float format) changes, so stale cache
// entries keyed on the old encoding can never be returned for new requests.
const fingerprintVersion = "scenario_v1"

// Fingerprint returns a canonical content hash of the scenario:
// "sha256:<hex>" over a normalized encoding in which the order of the
// analyses does not matter and defaulted fields hash identically to their
// explicit values (Weight 0 == 1, MinInterval <= 0 == 1). Two scenarios with
// equal fingerprints describe the same scheduling problem and therefore the
// same optimal schedule — the property the schedd solution cache keys on.
// Any semantic change (a duration, a size, the envelope, a name, the
// optional-output flag) changes the hash.
//
// Floats are encoded with strconv's exact hexadecimal format, so fingerprint
// equality means bit-equality of the inputs, not approximate closeness; -0
// is normalized onto +0 first.
func (p Problem) Fingerprint() string {
	lines := make([]string, len(p.Analyses))
	for i, a := range p.Analyses {
		w := a.Weight
		if w == 0 {
			w = 1
		}
		itv := a.MinInterval
		if itv <= 0 {
			itv = 1
		}
		lines[i] = fmt.Sprintf("name=%s|ft=%s|it=%s|ct=%s|ot=%s|fm=%d|im=%d|cm=%d|om=%d|w=%s|itv=%d|oo=%t",
			a.Name, hexFloat(a.FTSec), hexFloat(a.ITSec), hexFloat(a.CTSec), hexFloat(a.OTSec),
			a.FMBytes, a.IMBytes, a.CMBytes, a.OMBytes, hexFloat(w), itv, a.OutputOptional)
	}
	sort.Strings(lines)
	h := sha256.New()
	fmt.Fprintf(h, "%s|steps=%d|time=%s|mem=%d|bw=%s\n", fingerprintVersion,
		p.Resources.Steps, hexFloat(p.Resources.TimeSec), p.Resources.MemBytes, hexFloat(p.Resources.Bandwidth))
	h.Write([]byte(strings.Join(lines, "\n")))
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// hexFloat encodes v exactly (no rounding) and maps -0 onto +0 so the two
// zero bit patterns hash equal, matching their arithmetic equality.
func hexFloat(v float64) string {
	return strconv.FormatFloat(v+0, 'x', -1, 64)
}
