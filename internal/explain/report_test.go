package explain

import (
	"bytes"
	"strings"
	"testing"

	"insitu/internal/core"
	"insitu/internal/experiments"
	"insitu/internal/obs"
)

// waterIons returns the paper's LAMMPS A1-A4 scenario (100M-atom water+ions,
// 16384 ranks) at the given percent-of-simulation time threshold.
func waterIons(percent float64) ([]core.AnalysisSpec, core.Resources) {
	specs := experiments.WaterIonsSpecs(16384)
	res := core.Resources{
		Steps:         1000,
		TimeThreshold: core.PercentThreshold(experiments.WaterIonsSimSecPerStep(16384), 1000, percent),
		MemThreshold:  12 << 30,
	}
	return specs, res
}

// TestReportWaterIonsAttribution is the acceptance check of the
// explainability PR: on the paper's water+ions scenario every enabled
// analysis names its binding constraint and every disabled one carries a
// counterfactual (a priced forced schedule, or a named violation with a
// minimal conflict set).
func TestReportWaterIonsAttribution(t *testing.T) {
	for _, percent := range []float64{10, 1} {
		specs, res := waterIons(percent)
		r, err := Build(specs, res, Options{})
		if err != nil {
			t.Fatalf("%.0f%%: %v", percent, err)
		}
		if len(r.Ex.Attributions) != len(specs) {
			t.Fatalf("%.0f%%: %d attributions for %d specs", percent, len(r.Ex.Attributions), len(specs))
		}
		for _, at := range r.Ex.Attributions {
			if at.Enabled {
				if at.Binding == "" {
					t.Errorf("%.0f%%: enabled %s has no binding constraint", percent, at.Name)
				}
				continue
			}
			if at.ForcedFeasible {
				if at.ForcedCount < 1 {
					t.Errorf("%.0f%%: disabled %s forced on but count %d", percent, at.Name, at.ForcedCount)
				}
				continue
			}
			if at.ForcedViolation == "" || len(at.Conflict) == 0 {
				t.Errorf("%.0f%%: disabled %s has no counterfactual: %+v", percent, at.Name, at)
			}
		}
	}
}

func TestReportWaterIonsOnePercentConflict(t *testing.T) {
	// At a 1%% threshold (6.1 s) A4's 25.9 s step cannot fit: the probe must
	// be infeasible and the minimal conflict must pair the forced membership
	// with the time row.
	specs, res := waterIons(1)
	r, err := Build(specs, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a4 := r.Ex.Attribution("A4 msd")
	if a4 == nil || a4.Enabled {
		t.Fatalf("A4 = %+v", a4)
	}
	if a4.ForcedFeasible {
		t.Fatalf("A4 forced probe should be infeasible at 1%%: %+v", a4)
	}
	want := map[string]bool{"force[A4 msd]": true, "time-threshold": true}
	if len(a4.Conflict) != 2 || !want[a4.Conflict[0]] || !want[a4.Conflict[1]] {
		t.Fatalf("conflict = %v", a4.Conflict)
	}
	if !strings.Contains(a4.ForcedViolation, "time-threshold") {
		t.Fatalf("violation = %q", a4.ForcedViolation)
	}
}

func TestWriteTextSections(t *testing.T) {
	specs, res := waterIons(10)
	r, err := Build(specs, res, Options{GanttWidth: 80})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== schedule ==", "== timeline", "== attribution ==",
		"== resource rows", "== search ==",
		"A1 hydronium rdf", "A4 msd", "binding=", "explored=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "planned vs executed") {
		t.Error("ledger section rendered without a ledger")
	}
}

func TestWriteHTMLSelfContained(t *testing.T) {
	specs, res := waterIons(10)
	r, err := Build(specs, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "<style>", "Attribution", "A4 msd", "Search",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	for _, banned := range []string{"<script src", "href=\"http", "src=\"http"} {
		if strings.Contains(out, banned) {
			t.Errorf("html references an external asset: %q", banned)
		}
	}
}

func TestBuildRecordsTree(t *testing.T) {
	specs, res := waterIons(10)
	r, err := Build(specs, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Explored == 0 || r.Stats.Explored != len(r.Recorder.Nodes()) {
		t.Fatalf("stats = %+v over %d nodes", r.Stats, len(r.Recorder.Nodes()))
	}
	var dot bytes.Buffer
	if err := r.Recorder.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph bnb") {
		t.Fatalf("dot = %q", dot.String())
	}
	// Variable names from CompactNames must reach the branch labels whenever
	// the search actually branched.
	if r.Stats.Branched > 1 && !strings.Contains(dot.String(), "x[A") {
		t.Errorf("dot lacks named branch labels:\n%s", dot.String())
	}
}

func TestAlignLedger(t *testing.T) {
	specs, res := waterIons(10)
	r, err := Build(specs, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	events := []obs.LedgerEvent{
		{Schema: 1, Type: obs.LedgerRunStart, Name: "lammps-mini"},
		{Schema: 1, Type: obs.LedgerStep, Step: 100, Dur: 610000},
		{Schema: 1, Type: obs.LedgerAnalysis, Name: "A1 hydronium rdf", Step: 100, Dur: 65300},
		{Schema: 1, Type: obs.LedgerOutput, Name: "A1 hydronium rdf", Step: 100, Dur: 5000, Bytes: 8 << 20},
		{Schema: 1, Type: obs.LedgerStep, Step: 200, Dur: 610000},
		{Schema: 1, Type: obs.LedgerAnalysis, Name: "A1 hydronium rdf", Step: 200, Dur: 65300},
		{Schema: 1, Type: obs.LedgerAnalysis, Name: "ghost kernel", Step: 200, Dur: 1000},
	}
	r.AlignLedger(events)
	if r.Ledger == nil || r.Ledger.App != "lammps-mini" || r.Ledger.Steps != 2 {
		t.Fatalf("alignment = %+v", r.Ledger)
	}
	byName := map[string]KernelAlignment{}
	for _, k := range r.Ledger.Kernels {
		byName[k.Name] = k
	}
	a1 := byName["A1 hydronium rdf"]
	if a1.ExecutedCount != 2 || a1.PlannedCount != 10 {
		t.Fatalf("A1 = %+v", a1)
	}
	// 65300+5000+65300 us = 0.1356 s
	if a1.ExecutedSec < 0.135 || a1.ExecutedSec > 0.136 {
		t.Fatalf("A1 executed sec = %g", a1.ExecutedSec)
	}
	ghost, ok := byName["ghost kernel"]
	if !ok || ghost.PlannedCount != 0 || ghost.ExecutedCount != 1 {
		t.Fatalf("ghost = %+v (ok=%v)", ghost, ok)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "planned vs executed") || !strings.Contains(out, "drift") {
		t.Errorf("ledger section missing from report:\n%s", out)
	}
}

func TestAlignLedgerFlights(t *testing.T) {
	specs, res := waterIons(10)
	r, err := Build(specs, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := []obs.SolveProgress{
		{Seq: 0, Kind: obs.SolveProgStart, Workers: 1, Vars: 8, IntVars: 4, Constraints: 10},
		{Seq: 1, Kind: obs.SolveProgWave, Wave: 1, Workers: 1, Nodes: 1, Open: 1,
			HasInc: true, Incumbent: 5, HasBound: true, Bound: 9},
		{Seq: 2, Kind: obs.SolveProgEnd, Wave: 2, Workers: 1, Nodes: 2,
			HasInc: true, Incumbent: 7, HasBound: true, Bound: 7, Status: "optimal"},
	}
	events := []obs.LedgerEvent{{Schema: 1, Type: obs.LedgerRunStart, Name: "lammps-mini"}}
	for _, p := range recs {
		events = append(events, p.Event("plan"))
	}
	r.AlignLedger(events)
	if len(r.Ledger.Flights) != 1 || r.Ledger.Flights[0].Name != "plan" {
		t.Fatalf("flights = %+v", r.Ledger.Flights)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"solve progress plan", "final: optimal, objective 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// A ledger without solveprog events renders no flight section.
	r2, err := Build(specs, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2.AlignLedger(events[:1])
	var buf2 bytes.Buffer
	if err := r2.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "solve progress") {
		t.Error("old ledger grew a flight section")
	}
}
