// Package explain renders schedule-explainability reports: why the solver
// enabled each analysis at its frequency, what it would cost to force a
// disabled one on, how the branch-and-bound search ran, and — when a run
// ledger is supplied — how the executed step timings compare to the plan.
// The attribution itself comes from core.Explain; this package owns the
// terminal and HTML presentation plus the ledger alignment.
package explain

import (
	"fmt"
	"io"
	"math"
	"strings"

	"insitu/internal/core"
	"insitu/internal/milp"
	"insitu/internal/obs"
)

// Options tune report construction.
type Options struct {
	// Solve is passed to core.Explain; its Observer is replaced by the
	// report's tree recorder.
	Solve core.SolveOptions
	// GanttWidth is the character width of the timeline rendering
	// (default 100).
	GanttWidth int
}

// Report is one built explainability report, ready to render.
type Report struct {
	Specs []core.AnalysisSpec
	Res   core.Resources
	Ex    *core.Explanation

	// Recorder holds the branch-and-bound tree of the base solve; Tree() and
	// WriteDOT/WriteJSON on it export the search.
	Recorder *milp.TreeRecorder
	Stats    milp.TreeStats

	// Ledger is non-nil after AlignLedger: planned vs executed timings.
	Ledger *Alignment

	ganttWidth int
}

// Build solves and attributes the scenario, recording the search tree of the
// base solve.
func Build(specs []core.AnalysisSpec, res core.Resources, opts Options) (*Report, error) {
	rec := milp.NewTreeRecorder(nil)
	if names, err := core.CompactNames(specs, res, opts.Solve); err == nil {
		rec.SetNames(names)
	}
	solveOpts := opts.Solve
	solveOpts.Observer = rec.Observe
	ex, err := core.Explain(specs, res, solveOpts)
	if err != nil {
		return nil, err
	}
	width := opts.GanttWidth
	if width <= 0 {
		width = 100
	}
	return &Report{
		Specs:      specs,
		Res:        res,
		Ex:         ex,
		Recorder:   rec,
		Stats:      rec.Stats(),
		ganttWidth: width,
	}, nil
}

// WriteText renders the terminal report: schedule summary, timeline,
// per-analysis attribution, resource rows with shadow prices, counterfactual
// conflicts, and search statistics.
func (r *Report) WriteText(w io.Writer) error {
	var b strings.Builder
	rec := r.Ex.Rec

	b.WriteString("== schedule ==\n")
	b.WriteString(rec.String())
	if r.Res.TimeThreshold > 0 {
		fmt.Fprintf(&b, "threshold utilization: %.1f%%\n", rec.Utilization(r.Res)*100)
	}

	b.WriteString("\n== timeline ('.' sim, 'A' analysis, 'O' analysis+output) ==\n")
	b.WriteString(rec.GanttString(r.Res, r.ganttWidth))

	b.WriteString("\n== attribution ==\n")
	for _, at := range r.Ex.Attributions {
		if at.Enabled {
			fmt.Fprintf(&b, "  %-24s enabled  count=%d/%d binding=%s%s\n",
				at.Name, at.Count, at.MaxCount, at.Binding, bindingDetail(at))
			continue
		}
		fmt.Fprintf(&b, "  %-24s disabled %s\n", at.Name, counterfactual(at))
		if len(at.Conflict) > 0 {
			fmt.Fprintf(&b, "  %-24s          conflict: {%s}\n", "", strings.Join(at.Conflict, ", "))
		}
	}

	if len(r.Ex.Rows) > 0 {
		b.WriteString("\n== resource rows (duals from the root relaxation) ==\n")
		fmt.Fprintf(&b, "  %-18s %14s %14s %12s %10s\n", "row", "activity", "rhs", "slack", "dual")
		for _, row := range r.Ex.Rows {
			mark := ""
			if row.Binding {
				mark = "  <- binding"
			}
			fmt.Fprintf(&b, "  %-18s %14.4g %14.4g %12.4g %10.4g%s\n",
				row.Name, row.Activity, row.RHS, row.Slack, row.Dual, mark)
		}
	}

	fmt.Fprintf(&b, "\n== search ==\n  %s\n", r.Stats)

	if r.Ledger != nil {
		b.WriteString("\n== planned vs executed (run ledger) ==\n")
		writeAlignment(&b, r.Ledger)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// bindingDetail formats the slack behind a binding label.
func bindingDetail(at core.Attribution) string {
	switch at.Binding {
	case core.BindingMinInterval:
		return " (runs every interval; no budget buys more)"
	case core.BindingTime:
		return fmt.Sprintf(" (%.3fs slack < %.3fs next step)", at.BindingSlack, at.NextStepCost)
	case core.BindingMemory:
		return fmt.Sprintf(" (%.0f B headroom short of the next step)", at.BindingSlack)
	case core.BindingTimeMemory:
		return " (every candidate step breaks both thresholds)"
	default:
		return ""
	}
}

// counterfactual formats the forced-probe outcome for a disabled analysis.
func counterfactual(at core.Attribution) string {
	if at.ForcedFeasible {
		return fmt.Sprintf("forcing on costs %+.3f objective (count %d if forced)",
			at.ForcedDelta, at.ForcedCount)
	}
	if at.ForcedViolation != "" {
		return "forcing on is infeasible: " + at.ForcedViolation
	}
	return "forcing on is infeasible"
}

// writeAlignment renders the planned-vs-executed table.
func writeAlignment(b *strings.Builder, a *Alignment) {
	if a.App != "" {
		fmt.Fprintf(b, "  run: %s (%d ledger step(s))\n", a.App, a.Steps)
	}
	fmt.Fprintf(b, "  %-24s %14s %14s %14s %14s\n",
		"analysis", "planned steps", "executed", "planned sec", "executed sec")
	for _, k := range a.Kernels {
		fmt.Fprintf(b, "  %-24s %14d %14d %14.3f %14.3f%s\n",
			k.Name, k.PlannedCount, k.ExecutedCount, k.PlannedSec, k.ExecutedSec, k.note())
	}
	if len(a.Replans) > 0 {
		fmt.Fprintf(b, "  replan timeline (%d decision(s)):\n", len(a.Replans))
		for _, r := range a.Replans {
			if r.Adopted {
				fmt.Fprintf(b, "    step %-5d [%s] %s/%s: value %.2f -> %.2f, cost %.3fs -> %.3fs of %.3fs budget\n",
					r.Step, r.Reason, r.Trigger, r.Stream, r.OldValue, r.NewValue,
					r.OldCostSec, r.NewCostSec, r.BudgetSec)
			} else {
				fmt.Fprintf(b, "    step %-5d [%s] %s/%s: kept incumbent (value %.2f, budget %.3fs)\n",
					r.Step, r.Reason, r.Trigger, r.Stream, r.OldValue, r.BudgetSec)
			}
		}
	}
	// Solver gap-closure timelines, when the ledger carried flight streams.
	for _, f := range a.Flights {
		var tl strings.Builder
		if err := obs.WriteGapTimeline(&tl, f.Name, f.Records); err != nil {
			continue
		}
		for _, line := range strings.Split(strings.TrimRight(tl.String(), "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
}

// note flags count drift between plan and execution.
func (k KernelAlignment) note() string {
	switch {
	case k.ExecutedCount == 0 && k.PlannedCount > 0:
		return "  <- never ran"
	case k.ExecutedCount != k.PlannedCount:
		return fmt.Sprintf("  <- drift %+d steps", k.ExecutedCount-k.PlannedCount)
	}
	return ""
}

// humanBytes renders byte counts for the HTML report.
func humanBytes(n float64) string {
	if math.IsInf(n, 1) {
		return "∞"
	}
	units := []string{"B", "KiB", "MiB", "GiB", "TiB"}
	i := 0
	for n >= 1024 && i < len(units)-1 {
		n /= 1024
		i++
	}
	if i == 0 {
		return fmt.Sprintf("%.0f %s", n, units[i])
	}
	return fmt.Sprintf("%.2f %s", n, units[i])
}
