package explain

import (
	"fmt"
	"html/template"
	"io"
	"strings"

	"insitu/internal/core"
	"insitu/internal/explain/style"
)

// htmlReport is the template's view model: everything pre-formatted so the
// template stays free of logic beyond ranging and conditionals.
type htmlReport struct {
	Title       string
	Objective   string
	TotalTime   string
	PeakMemory  string
	Utilization string
	Gantt       string
	Attribution []htmlAttribution
	Rows        []htmlRow
	Stats       string
	Ledger      *htmlLedger
}

type htmlAttribution struct {
	Name     string
	State    string // "enabled" | "disabled"
	Count    string
	Binding  string // badge text
	Detail   string
	Conflict string
}

type htmlRow struct {
	Name     string
	Activity string
	RHS      string
	Slack    string
	Dual     string
	Binding  bool
}

type htmlLedger struct {
	Caption string
	Kernels []htmlKernel
}

type htmlKernel struct {
	Name        string
	Planned     int
	Executed    int
	PlannedSec  string
	ExecutedSec string
	Note        string
}

// PageStyle is the shared stylesheet of the repo's self-contained HTML
// reports; it lives in the leaf package internal/explain/style so that the
// runmon drift report can embed the same block without importing this
// package, and schedexplain and runmon output render as one family.
const PageStyle = style.Page

var reportTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
` + PageStyle + `
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="summary">
<span>objective <strong>{{.Objective}}</strong></span>
<span>total time <strong>{{.TotalTime}}</strong></span>
<span>peak memory <strong>{{.PeakMemory}}</strong></span>
{{if .Utilization}}<span>utilization <strong>{{.Utilization}}</strong></span>{{end}}
</p>

<h2>Timeline</h2>
<pre>{{.Gantt}}</pre>

<h2>Attribution</h2>
<table>
<tr><th>analysis</th><th>state</th><th>count</th><th>binding / counterfactual</th></tr>
{{range .Attribution}}
<tr>
<td>{{.Name}}</td>
<td><span class="badge {{.State}}">{{.State}}</span></td>
<td>{{.Count}}</td>
<td>{{if .Binding}}<span class="badge binding">{{.Binding}}</span> {{end}}{{.Detail}}
{{if .Conflict}}<div class="conflict">conflict: {{.Conflict}}</div>{{end}}</td>
</tr>
{{end}}
</table>

{{if .Rows}}
<h2>Resource rows</h2>
<table>
<tr><th>row</th><th>activity</th><th>rhs</th><th>slack</th><th>dual</th></tr>
{{range .Rows}}
<tr{{if .Binding}} style="background:#fff4e5"{{end}}>
<td>{{.Name}}</td><td>{{.Activity}}</td><td>{{.RHS}}</td><td>{{.Slack}}</td><td>{{.Dual}}</td>
</tr>
{{end}}
</table>
{{end}}

<h2>Search</h2>
<p>{{.Stats}}</p>

{{if .Ledger}}
<h2>Planned vs executed</h2>
<p>{{.Ledger.Caption}}</p>
<table>
<tr><th>analysis</th><th>planned steps</th><th>executed</th><th>planned sec</th><th>executed sec</th><th></th></tr>
{{range .Ledger.Kernels}}
<tr><td>{{.Name}}</td><td>{{.Planned}}</td><td>{{.Executed}}</td>
<td>{{.PlannedSec}}</td><td>{{.ExecutedSec}}</td><td>{{.Note}}</td></tr>
{{end}}
</table>
{{end}}
</body>
</html>
`))

// WriteHTML renders the report as one self-contained HTML document (inline
// CSS, no external assets), suitable for attaching to a run's artifacts.
func (r *Report) WriteHTML(w io.Writer) error {
	rec := r.Ex.Rec
	view := htmlReport{
		Title:      "In-situ schedule explanation",
		Objective:  fmt.Sprintf("%.3f", rec.Objective),
		TotalTime:  fmt.Sprintf("%.3f s", rec.TotalTime),
		PeakMemory: humanBytes(float64(rec.PeakMemory)),
		Gantt:      rec.GanttString(r.Res, r.ganttWidth),
		Stats:      r.Stats.String(),
	}
	if r.Res.TimeThreshold > 0 {
		view.Utilization = fmt.Sprintf("%.1f%%", rec.Utilization(r.Res)*100)
	}
	for _, at := range r.Ex.Attributions {
		h := htmlAttribution{Name: at.Name, State: "disabled", Count: fmt.Sprintf("%d / %d", at.Count, at.MaxCount)}
		if at.Enabled {
			h.State = "enabled"
			h.Binding = at.Binding
			h.Detail = bindingDetail(at)
		} else {
			h.Detail = counterfactual(at)
			if len(at.Conflict) > 0 {
				h.Conflict = fmt.Sprintf("{%s}", strings.Join(at.Conflict, ", "))
			}
		}
		view.Attribution = append(view.Attribution, h)
	}
	for _, row := range r.Ex.Rows {
		hr := htmlRow{
			Name:     row.Name,
			Activity: fmt.Sprintf("%.4g", row.Activity),
			RHS:      fmt.Sprintf("%.4g", row.RHS),
			Slack:    fmt.Sprintf("%.4g", row.Slack),
			Dual:     fmt.Sprintf("%.4g", row.Dual),
			Binding:  row.Binding,
		}
		if row.Name == core.BindingMemory {
			hr.Activity = humanBytes(row.Activity)
			hr.RHS = humanBytes(row.RHS)
			hr.Slack = humanBytes(row.Slack)
		}
		view.Rows = append(view.Rows, hr)
	}
	if r.Ledger != nil {
		caption := fmt.Sprintf("run %q, %d ledger step(s)", r.Ledger.App, r.Ledger.Steps)
		if n := len(r.Ledger.Replans); n > 0 {
			adopted := 0
			for _, rr := range r.Ledger.Replans {
				if rr.Adopted {
					adopted++
				}
			}
			caption += fmt.Sprintf(", %d replan decision(s) (%d adopted)", n, adopted)
		}
		hl := &htmlLedger{Caption: caption}
		for _, k := range r.Ledger.Kernels {
			hl.Kernels = append(hl.Kernels, htmlKernel{
				Name:        k.Name,
				Planned:     k.PlannedCount,
				Executed:    k.ExecutedCount,
				PlannedSec:  fmt.Sprintf("%.3f", k.PlannedSec),
				ExecutedSec: fmt.Sprintf("%.3f", k.ExecutedSec),
				Note:        trimNote(k.note()),
			})
		}
		view.Ledger = hl
	}
	return reportTemplate.Execute(w, view)
}

// trimNote strips the terminal arrow decoration for the HTML cell.
func trimNote(s string) string {
	return strings.TrimLeft(s, " <-")
}
