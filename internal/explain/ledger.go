package explain

import (
	"sort"

	"insitu/internal/obs"
	"insitu/internal/runmon"
)

// KernelAlignment compares one analysis' plan to its ledger record.
type KernelAlignment struct {
	Name          string
	PlannedCount  int     // analysis steps the schedule grants
	ExecutedCount int     // ledger steps with an analysis event for this kernel
	PlannedSec    float64 // predicted total analysis time (the model's cost)
	ExecutedSec   float64 // summed analysis+output durations from the ledger
}

// Alignment is the planned-vs-executed comparison AlignLedger attaches.
type Alignment struct {
	App     string // application named by the ledger's run_start, if any
	Steps   int    // distinct simulation steps the ledger covers
	Kernels []KernelAlignment
	// Replans is the run's rolling-horizon reschedule timeline, decoded from
	// the ledger's replan events (empty for runs that never replanned). A
	// non-empty timeline explains planned-vs-executed drift that is not a
	// failure: the run deliberately left the up-front plan.
	Replans []runmon.ReplanRecord
	// Flights holds the run's solver flight streams (solveprog events),
	// grouped per solve; empty for ledgers recorded without a flight
	// recorder, so old ledgers render unchanged.
	Flights []obs.SolveProgRun
}

// AlignLedger reconstructs the ledger's per-step timelines and aligns them
// with the planned schedule: one row per planned analysis (in schedule order),
// plus one for any kernel the ledger saw that the plan never mentioned.
func (r *Report) AlignLedger(events []obs.LedgerEvent) {
	sum := obs.SummarizeLedger(events)
	a := &Alignment{
		App:     sum.App,
		Steps:   len(sum.Steps),
		Replans: runmon.ReplansFromEvents(events),
		Flights: obs.GroupSolveProgEvents(events),
	}

	counts := map[string]int{}
	seconds := map[string]float64{}
	for _, st := range sum.Steps {
		for name, us := range st.Analyses {
			counts[name]++
			seconds[name] += us / 1e6
		}
		for name, us := range st.Outputs {
			seconds[name] += us / 1e6
		}
	}

	known := map[string]bool{}
	for _, s := range r.Ex.Rec.Schedules {
		known[s.Name] = true
		a.Kernels = append(a.Kernels, KernelAlignment{
			Name:          s.Name,
			PlannedCount:  s.Count,
			ExecutedCount: counts[s.Name],
			PlannedSec:    s.PredictedTime,
			ExecutedSec:   seconds[s.Name],
		})
	}
	// Ledger-only kernels: executed but never planned — worth surfacing, the
	// run did work the schedule does not account for.
	extra := make([]string, 0, len(counts))
	for name := range counts {
		if !known[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		a.Kernels = append(a.Kernels, KernelAlignment{
			Name:          name,
			ExecutedCount: counts[name],
			ExecutedSec:   seconds[name],
		})
	}
	r.Ledger = a
}
