// Package style holds the shared stylesheet of the repo's self-contained
// HTML reports. It is a leaf package so that report producers in different
// layers (schedexplain's attribution report in internal/explain, the drift
// report in internal/runmon) can embed the same block without importing
// each other, and their output renders as one family.
package style

// Page is the common <style> block of every generated HTML report.
const Page = `body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; }
th, td { border: 1px solid #d0d0e0; padding: 0.35rem 0.6rem; text-align: left; font-size: 0.9rem; }
th { background: #f0f0fa; }
pre { background: #f7f7fc; border: 1px solid #d0d0e0; padding: 0.8rem; overflow-x: auto; font-size: 0.8rem; }
.badge { display: inline-block; padding: 0.1rem 0.5rem; border-radius: 0.6rem; font-size: 0.8rem; }
.enabled { background: #d9f2d9; } .disabled { background: #f2d9d9; }
.binding { background: #ffe8cc; } .summary span { margin-right: 1.5rem; }
.conflict { color: #a33; font-size: 0.85rem; }
.alert { background: #fde8e8; } .ok { background: #d9f2d9; }`
