package campaign

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"insitu/internal/analysis"
	"insitu/internal/analysis/amrkernels"
	"insitu/internal/analysis/mdkernels"
	"insitu/internal/obs"
	"insitu/internal/sim/amr"
	"insitu/internal/sim/md"
)

func mdCampaign(t *testing.T, pct, total float64, mutate ...func(*Config)) *Campaign {
	t.Helper()
	sys, err := md.NewWaterIons(md.Config{NAtoms: 1500, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	rdf, err := mdkernels.NewHydroniumRDF(sys, mdkernels.RDFConfig{Bins: 32, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	msd, err := mdkernels.NewMSD(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Sim: SimFunc{
			AppName:  "water+ions",
			StepFn:   func() { sys.Step(0.002) },
			MemBytes: sys.MemoryBytes(),
		},
		Kernels:          []analysis.Kernel{rdf, msd},
		Steps:            40,
		MinInterval:      5,
		ThresholdPercent: pct,
		TotalThreshold:   total,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCampaignEndToEndMD(t *testing.T) {
	c := mdCampaign(t, 20, 0)
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Plan.Rec.TotalAnalyses() == 0 {
		t.Fatal("nothing scheduled")
	}
	for _, kr := range out.Report.Kernels {
		s := out.Plan.Rec.Schedule(kr.Name)
		if kr.Analyses != s.Count {
			t.Fatalf("%s: executed %d of %d", kr.Name, kr.Analyses, s.Count)
		}
	}
	sum := out.Summary()
	for _, want := range []string{"plan (", "executed:", "A1 hydronium rdf"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestCampaignTotalThresholdAMR(t *testing.T) {
	grid, err := amr.NewSedov(amr.Config{BlocksX: 2, NB: 6})
	if err != nil {
		t.Fatal(err)
	}
	f3, err := amrkernels.NewL2Norm(grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c, err := New(Config{
		Sim: SimFunc{
			AppName:  "sedov",
			StepFn:   func() { grid.StepCFL() },
			MemBytes: grid.MemoryBytes(),
		},
		Kernels:        []analysis.Kernel{f3},
		Steps:          20,
		MinInterval:    4,
		TotalThreshold: 5,
		Output:         &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := out.Plan.Rec.Schedule("F3 L2 error norm")
	if s.Count != 5 {
		t.Fatalf("F3 count = %d, want 5 (20 steps / itv 4)", s.Count)
	}
	if buf.Len() == 0 {
		t.Fatal("analysis output not captured")
	}
	if !out.WithinThreshold {
		t.Fatalf("cheap kernel blew a 5s budget: %v", out.Report.AnalysisTime)
	}
}

func TestCampaignWeights(t *testing.T) {
	c := mdCampaign(t, 20, 0)
	c.cfg.Weights = map[string]float64{"A4 msd": 3}
	c.cfg.Lexicographic = true
	p, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Specs {
		if s.Name == "A4 msd" && s.Weight != 3 {
			t.Fatalf("weight not applied: %+v", s)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected simulation error")
	}
	sim := SimFunc{AppName: "x", StepFn: func() {}}
	if _, err := New(Config{Sim: sim}); err == nil {
		t.Fatal("expected kernel error")
	}
	k := dummyKernel{}
	if _, err := New(Config{Sim: sim, Kernels: []analysis.Kernel{k}}); err == nil {
		t.Fatal("expected steps error")
	}
	if _, err := New(Config{Sim: sim, Kernels: []analysis.Kernel{k}, Steps: 10}); err == nil {
		t.Fatal("expected threshold error")
	}
	if _, err := New(Config{Sim: sim, Kernels: []analysis.Kernel{k}, Steps: 10,
		ThresholdPercent: 5, TotalThreshold: 5}); err == nil {
		t.Fatal("expected double-threshold error")
	}
}

type dummyKernel struct{}

func (dummyKernel) Name() string                    { return "dummy" }
func (dummyKernel) Setup() (int64, error)           { return 0, nil }
func (dummyKernel) PreStep(int) (int64, error)      { return 0, nil }
func (dummyKernel) Analyze(int) (int64, error)      { return 0, nil }
func (dummyKernel) Output(io.Writer) (int64, error) { return 0, nil }
func (dummyKernel) Free()                           {}

func TestCampaignInstrumented(t *testing.T) {
	c := mdCampaign(t, 20, 0)
	c.cfg.Trace = obs.NewTracer()
	c.cfg.Metrics = obs.NewRegistry()
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Metrics) == 0 {
		t.Fatal("instrumented campaign produced no metrics snapshot")
	}
	var steps float64
	for _, m := range out.Metrics {
		if m.Name == "coupling_steps_total" {
			steps = m.Value
		}
	}
	if steps != 40 {
		t.Errorf("coupling_steps_total = %v, want 40", steps)
	}
	if c.cfg.Trace.Len() == 0 {
		t.Error("instrumented campaign recorded no trace events")
	}
	sum := out.Summary()
	if !strings.Contains(sum, "metrics:") || !strings.Contains(sum, "coupling_steps_total 40") {
		t.Errorf("summary missing metrics section:\n%s", sum)
	}
}

func TestCampaignFlightRecorder(t *testing.T) {
	var ledger bytes.Buffer
	fr := obs.NewFlightRecorder(0)
	c := mdCampaign(t, 20, 0, func(cfg *Config) {
		cfg.Flight = fr
		cfg.Ledger = obs.NewEventLog(&ledger)
	})
	p, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Name() != "plan" || fr.Len() == 0 {
		t.Fatalf("flight recorder: name=%q len=%d", fr.Name(), fr.Len())
	}
	recs := fr.Snapshot()
	if err := obs.CheckSolveProg(recs); err != nil {
		t.Fatalf("plan flight stream: %v", err)
	}
	gap, status, ok := obs.FinalGap(recs)
	if !ok || status != "optimal" || gap > 1e-6 {
		t.Fatalf("plan flight end: gap=%g status=%q ok=%t", gap, status, ok)
	}
	if p.Rec.Stats.Nodes != recs[len(recs)-1].Nodes {
		t.Fatalf("flight nodes %d != solver nodes %d", recs[len(recs)-1].Nodes, p.Rec.Stats.Nodes)
	}
	if err := c.cfg.Ledger.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadLedger(&ledger)
	if err != nil {
		t.Fatal(err)
	}
	runs := obs.GroupSolveProgEvents(events)
	if len(runs) != 1 || runs[0].Name != "plan" || len(runs[0].Records) != len(recs) {
		t.Fatalf("ledger flight runs = %+v", runs)
	}
}

func TestCampaignSweepFlights(t *testing.T) {
	var ledger bytes.Buffer
	c := mdCampaign(t, 20, 0, func(cfg *Config) {
		cfg.Flight = obs.NewFlightRecorder(0)
		cfg.Ledger = obs.NewEventLog(&ledger)
		cfg.SolveWorkers = 2
	})
	thresholds := []float64{0.05, 0.1, 0.2}
	if _, err := c.PlanSweep(thresholds); err != nil {
		t.Fatal(err)
	}
	if err := c.cfg.Ledger.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadLedger(&ledger)
	if err != nil {
		t.Fatal(err)
	}
	runs := obs.GroupSolveProgEvents(events)
	if len(runs) != len(thresholds) {
		t.Fatalf("sweep produced %d flight runs, want %d", len(runs), len(thresholds))
	}
	for i, run := range runs {
		if run.Name != "sweep" {
			t.Fatalf("run %d name = %q", i, run.Name)
		}
		if err := obs.CheckSolveProg(run.Records); err != nil {
			t.Fatalf("sweep run %d: %v", i, err)
		}
	}
}
