// Package campaign is the front door of the library: it strings together
// the full workflow of the paper for one science campaign — profile the
// analysis kernels against the live simulation (§4), solve the scheduling
// MILP under the chosen threshold policy (§3.2), execute the recommended
// schedule (§5), and report predicted-versus-executed overhead. Downstream
// codes embed their simulation behind the Simulation interface and their
// analyses behind analysis.Kernel; everything else is configuration.
package campaign

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/core"
	"insitu/internal/coupling"
	"insitu/internal/iosim"
	"insitu/internal/machine"
	"insitu/internal/obs"
	"insitu/internal/replan"
	"insitu/internal/runmon"
)

// Simulation is the minimal contract a simulation code implements to join a
// campaign.
type Simulation interface {
	// Name identifies the application.
	Name() string
	// Step advances one simulation time step.
	Step()
	// MemoryBytes estimates the simulation's resident state, used to derive
	// the memory available for analyses.
	MemoryBytes() int64
}

// SimFunc adapts a name, step closure and memory estimate to Simulation.
type SimFunc struct {
	AppName  string
	StepFn   func()
	MemBytes int64
}

// Name implements Simulation.
func (s SimFunc) Name() string { return s.AppName }

// Step implements Simulation.
func (s SimFunc) Step() { s.StepFn() }

// MemoryBytes implements Simulation.
func (s SimFunc) MemoryBytes() int64 { return s.MemBytes }

// Config describes a campaign.
type Config struct {
	Machine *machine.Machine // defaults to machine.Laptop()
	Sim     Simulation
	Kernels []analysis.Kernel

	// Steps is the production run length.
	Steps int
	// MinInterval is the itv applied to every analysis (a science choice).
	MinInterval int

	// ThresholdPercent sets the analysis budget as a percentage of the
	// simulation time (§5.3.2); TotalThreshold sets it in absolute seconds
	// (§5.3.4). Exactly one must be positive.
	ThresholdPercent float64
	TotalThreshold   float64

	// MemBudget is the memory available for analyses; 0 derives it from the
	// machine's per-node memory minus the simulation footprint.
	MemBudget int64

	// Storage supplies ot = om/bw for kernels that only report output
	// volume; defaults to iosim.SustainedGPFS().
	Storage *iosim.Target

	// Weights prioritizes analyses by kernel name (others default to 1).
	Weights map[string]float64
	// Lexicographic treats the weights as strict priority classes.
	Lexicographic bool

	// SolveWorkers selects the solver parallelism: Plan hands it to the
	// branch-and-bound worker pool (see core.SolveOptions.Workers), and
	// PlanSweep uses it as the width of its threshold fan-out (sweep
	// solves run the serial search each, so the machine is not
	// oversubscribed). 0 and 1 mean serial everywhere.
	SolveWorkers int

	// ProbeSteps is how many simulation steps the profiling pass advances
	// per kernel (default 4).
	ProbeSteps int
	// Output receives analysis output during execution (default discard).
	Output io.Writer

	// Trace, when non-nil, records the executed run as a timeline (see
	// obs.Tracer); it is handed to the coupling runner unchanged.
	Trace *obs.Tracer
	// Metrics, when non-nil, collects run counters; Outcome.Metrics holds a
	// snapshot taken after execution and Summary appends it.
	Metrics *obs.Registry
	// Ledger, when non-nil, receives the campaign as a JSONL run ledger: a
	// solve event from Plan (branch-and-bound nodes, pivots, objective, and
	// solve time) followed by the executed run's events from the coupling
	// runner. benchobs summarize reconstructs the timeline from the file.
	Ledger *obs.EventLog
	// Flight, when non-nil, captures the Plan solve's progress stream (see
	// obs.FlightRecorder): Plan resets and attaches it to the
	// branch-and-bound solve, then drains it into the Ledger as solveprog
	// events. PlanSweep gives each threshold solve its own recorder and
	// drains them in input order, so a shared ledger stays deterministic.
	Flight *obs.FlightRecorder
	// Monitor, when non-nil, watches the executed run live: Execute installs
	// the solved plan as the monitor's predicted profile, writes the profile
	// into the ledger as plan events (so post-hoc runmon report sees the
	// same predictions), and feeds every run event through the monitor's
	// drift detectors as it happens.
	Monitor *runmon.Monitor
	// Ctx, when non-nil, scopes the campaign's solves to a caller's lifetime:
	// Plan and PlanSweep hand it to the branch-and-bound search, which aborts
	// with an error wrapping milp.ErrCanceled once it is canceled, and any
	// request-scoped pprof labels on it survive into solver CPU profiles. The
	// service tier (schedd) sets it per request.
	Ctx context.Context
	// Replan, when non-nil, closes the loop on the executed run: Execute
	// builds a replan.Replanner over the live monitor (creating one when
	// Monitor is nil) and installs it as the coupling runner's replan hook,
	// so drift and budget alerts trigger rolling-horizon reschedules
	// mid-run. Zero-valued fields inherit the campaign's settings:
	// BudgetPercent from ThresholdPercent, Workers from SolveWorkers, and
	// Ledger/Metrics from the campaign's own.
	Replan *replan.Config
}

func (c Config) withDefaults() (Config, error) {
	if c.Sim == nil {
		return c, fmt.Errorf("campaign: needs a simulation")
	}
	if len(c.Kernels) == 0 {
		return c, fmt.Errorf("campaign: needs at least one analysis kernel")
	}
	if c.Steps <= 0 {
		return c, fmt.Errorf("campaign: needs Steps > 0")
	}
	if (c.ThresholdPercent > 0) == (c.TotalThreshold > 0) {
		return c, fmt.Errorf("campaign: set exactly one of ThresholdPercent and TotalThreshold")
	}
	if c.Machine == nil {
		c.Machine = machine.Laptop()
	}
	if c.Storage == nil {
		c.Storage = iosim.SustainedGPFS()
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 1
	}
	if c.ProbeSteps <= 0 {
		c.ProbeSteps = 4
	}
	return c, nil
}

// Plan is the result of the profiling and solving phase.
type Plan struct {
	Specs         []core.AnalysisSpec
	Resources     core.Resources
	Rec           *core.Recommendation
	SimSecPerStep float64
}

// Outcome is the result of executing a plan.
type Outcome struct {
	Plan   *Plan
	Report *coupling.Report
	// WithinThreshold reports whether the executed analysis time stayed
	// inside the budget.
	WithinThreshold bool
	// Metrics is a snapshot of the campaign's metrics registry taken right
	// after execution (nil when the campaign is uninstrumented).
	Metrics []obs.Metric
	// Replans is the replan decision timeline (empty without Config.Replan).
	Replans []runmon.ReplanRecord
}

// Campaign drives one simulation-plus-analyses run.
type Campaign struct {
	cfg Config
}

// New validates the configuration.
func New(cfg Config) (*Campaign, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Campaign{cfg: c}, nil
}

// profile probes the simulation speed and measures every kernel against the
// live simulation.
func (c *Campaign) profile() (specs []core.AnalysisSpec, simPerStep float64, err error) {
	cfg := c.cfg

	// Probe the simulation speed.
	t0 := time.Now()
	probe := 5
	for i := 0; i < probe; i++ {
		cfg.Sim.Step()
	}
	simPerStep = time.Since(t0).Seconds() / float64(probe)

	// Profile kernels.
	for _, k := range cfg.Kernels {
		interval := cfg.ProbeSteps / 2
		if interval < 1 {
			interval = 1
		}
		costs, err := analysis.Measure(k, cfg.Sim.Step, cfg.ProbeSteps, interval)
		if err != nil {
			return nil, 0, fmt.Errorf("campaign: profiling %s: %w", k.Name(), err)
		}
		spec := coupling.SpecFromCosts(costs, cfg.MinInterval)
		if w, ok := cfg.Weights[spec.Name]; ok {
			spec.Weight = w
		}
		specs = append(specs, spec)
	}
	return specs, simPerStep, nil
}

// envelope derives the resource envelope from the configuration and the
// probed simulation speed.
func (c *Campaign) envelope(simPerStep float64) core.Resources {
	cfg := c.cfg
	threshold := cfg.TotalThreshold
	if cfg.ThresholdPercent > 0 {
		threshold = core.PercentThreshold(simPerStep, cfg.Steps, cfg.ThresholdPercent)
	}
	mem := cfg.MemBudget
	if mem <= 0 {
		mem = cfg.Machine.MemPerNode - cfg.Sim.MemoryBytes()
		if mem < 1<<20 {
			mem = 1 << 20
		}
	}
	return core.Resources{
		Steps:         cfg.Steps,
		TimeThreshold: threshold,
		MemThreshold:  mem,
		Bandwidth:     cfg.Storage.BytesPerSec,
	}
}

// solvePlan runs the configured scheduling solve (weighted or
// lexicographic) for one envelope.
func (c *Campaign) solvePlan(specs []core.AnalysisSpec, res core.Resources, opts core.SolveOptions) (*core.Recommendation, error) {
	solve := core.Solve
	if c.cfg.Lexicographic {
		solve = core.SolveLexicographic
	}
	return solve(specs, res, opts)
}

// ledgerSolve appends one solve event to the campaign ledger (a no-op
// without a ledger).
func (c *Campaign) ledgerSolve(name string, rec *core.Recommendation, res core.Resources) {
	c.cfg.Ledger.Append(obs.LedgerEvent{
		Type: obs.LedgerSolve, Name: name,
		Dur: float64(rec.SolveTime.Nanoseconds()) / 1e3,
		Args: map[string]float64{
			"nodes":     float64(rec.Stats.Nodes),
			"pivots":    float64(rec.Stats.Pivots),
			"objective": rec.Objective,
			"threshold": res.TimeThreshold,
		},
	})
}

// Plan profiles every kernel against the live simulation, derives the
// resource envelope, and solves for the optimal schedule. The solve runs
// with SolveWorkers branch-and-bound workers.
func (c *Campaign) Plan() (*Plan, error) {
	specs, simPerStep, err := c.profile()
	if err != nil {
		return nil, err
	}
	res := c.envelope(simPerStep)
	if c.cfg.Flight != nil {
		c.cfg.Flight.Reset()
		c.cfg.Flight.SetName("plan")
	}
	rec, err := c.solvePlan(specs, res, core.SolveOptions{Workers: c.cfg.SolveWorkers, Flight: c.cfg.Flight, Ctx: c.cfg.Ctx})
	if err != nil {
		return nil, err
	}
	c.ledgerSolve("plan", rec, res)
	c.cfg.Flight.AppendLedger(c.cfg.Ledger, "plan")
	return &Plan{Specs: specs, Resources: res, Rec: rec, SimSecPerStep: simPerStep}, nil
}

// PlanSweep profiles once and then solves the scheduling model at each of
// the given absolute time thresholds — the campaign-level what-if sweep
// behind threshold studies (§5.3.2/§5.3.4). The independent solves are
// fanned out across a pool of SolveWorkers goroutines (each running the
// serial search, so the machine is not oversubscribed); results come back
// in input order, and ledger events ("sweep") are appended sequentially
// after all solves finish, keeping a shared EventLog deterministic.
func (c *Campaign) PlanSweep(thresholds []float64) ([]*Plan, error) {
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("campaign: sweep needs at least one threshold")
	}
	specs, simPerStep, err := c.profile()
	if err != nil {
		return nil, err
	}
	base := c.envelope(simPerStep)

	plans := make([]*Plan, len(thresholds))
	errs := make([]error, len(thresholds))
	// Each sweep solve gets its own flight recorder (the solves run
	// concurrently; interleaving one shared ring would scramble the streams),
	// drained below in input order.
	var flights []*obs.FlightRecorder
	if c.cfg.Flight != nil {
		flights = make([]*obs.FlightRecorder, len(thresholds))
	}
	w := c.cfg.SolveWorkers
	if w < 1 {
		w = 1
	}
	if w > len(thresholds) {
		w = len(thresholds)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res := base
				res.TimeThreshold = thresholds[i]
				var fr *obs.FlightRecorder
				if flights != nil {
					fr = obs.NewFlightRecorder(0)
					flights[i] = fr
				}
				rec, err := c.solvePlan(specs, res, core.SolveOptions{Flight: fr, Ctx: c.cfg.Ctx})
				if err != nil {
					errs[i] = err
					continue
				}
				plans[i] = &Plan{Specs: specs, Resources: res, Rec: rec, SimSecPerStep: simPerStep}
			}
		}()
	}
	for i := range thresholds {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, p := range plans {
		if errs[i] != nil {
			return nil, errs[i]
		}
		c.ledgerSolve("sweep", p.Rec, p.Resources)
		if flights != nil {
			flights[i].AppendLedger(c.cfg.Ledger, "sweep")
		}
	}
	return plans, nil
}

// Execute runs the plan's schedule against the simulation.
func (c *Campaign) Execute(p *Plan) (*Outcome, error) {
	byName := map[string]analysis.Kernel{}
	for _, k := range c.cfg.Kernels {
		byName[k.Name()] = k
	}
	runner := &coupling.Runner{
		Step:    c.cfg.Sim.Step,
		Kernels: byName,
		Rec:     p.Rec,
		Res:     p.Resources,
		Output:  c.cfg.Output,
		Trace:   c.cfg.Trace,
		Metrics: c.cfg.Metrics,
		Ledger:  c.cfg.Ledger,
		App:     c.cfg.Sim.Name(),
	}
	mon := c.cfg.Monitor
	if mon != nil || c.cfg.Replan != nil {
		// The solved plan is the monitor's prediction; write it into the
		// ledger too so a post-hoc `runmon report` scores against the same
		// profile the live monitor used. A replanning campaign needs the
		// monitor even when the caller did not attach one — the replanner
		// triggers off its alerts.
		profile := runmon.FromPlan(p.Specs, p.Rec, p.Resources, p.SimSecPerStep)
		profile.App = c.cfg.Sim.Name()
		if mon == nil {
			mon = runmon.NewMonitor(profile, runmon.Config{Ledger: c.cfg.Ledger, Metrics: c.cfg.Metrics})
		} else {
			mon.SetProfile(profile)
		}
		for _, e := range profile.PlanEvents() {
			c.cfg.Ledger.Append(e)
		}
		runner.Observe = mon.Observe
	}
	var rp *replan.Replanner
	if c.cfg.Replan != nil {
		rcfg := *c.cfg.Replan
		if rcfg.BudgetPercent <= 0 {
			rcfg.BudgetPercent = c.cfg.ThresholdPercent
		}
		if rcfg.Workers == 0 {
			rcfg.Workers = c.cfg.SolveWorkers
		}
		if rcfg.Ledger == nil {
			rcfg.Ledger = c.cfg.Ledger
		}
		if rcfg.Metrics == nil {
			rcfg.Metrics = c.cfg.Metrics
		}
		rp = replan.New(mon, p.Specs, p.Resources, p.Rec, p.SimSecPerStep, rcfg)
		runner.Replan = rp.Hook()
	}
	rep, err := runner.Run()
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Plan:            p,
		Report:          rep,
		WithinThreshold: rep.AnalysisTime.Seconds() <= p.Resources.TimeThreshold,
		Replans:         rp.Records(),
	}
	if c.cfg.Metrics != nil {
		out.Metrics = c.cfg.Metrics.Snapshot()
	}
	return out, nil
}

// Run plans and executes in one call.
func (c *Campaign) Run() (*Outcome, error) {
	p, err := c.Plan()
	if err != nil {
		return nil, err
	}
	return c.Execute(p)
}

// Summary renders the §5-style report: the recommendation, then executed
// versus threshold.
func (o *Outcome) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan (sim %.4fs/step, threshold %.3fs, mem %d):\n",
		o.Plan.SimSecPerStep, o.Plan.Resources.TimeThreshold, o.Plan.Resources.MemThreshold)
	b.WriteString(o.Plan.Rec.String())
	fmt.Fprintf(&b, "executed: sim %v, analyses %v (%.1f%% of threshold), within=%v\n",
		o.Report.SimTime, o.Report.AnalysisTime,
		o.Report.Utilization(o.Plan.Resources)*100, o.WithinThreshold)
	if len(o.Replans) > 0 {
		adopted := 0
		for _, r := range o.Replans {
			if r.Adopted {
				adopted++
			}
		}
		fmt.Fprintf(&b, "replans: %d decision(s), %d adopted\n", len(o.Replans), adopted)
	}
	for _, kr := range o.Report.Kernels {
		fmt.Fprintf(&b, "  %-26s analyses=%-4d outputs=%-4d total=%v\n",
			kr.Name, kr.Analyses, kr.Outputs, kr.Total())
	}
	if len(o.Metrics) > 0 {
		b.WriteString("metrics:\n")
		for _, m := range o.Metrics {
			label := ""
			if len(m.Labels) > 0 {
				var parts []string
				for k, v := range m.Labels {
					parts = append(parts, k+"="+v)
				}
				sort.Strings(parts)
				label = "{" + strings.Join(parts, ",") + "}"
			}
			switch m.Kind {
			case "histogram":
				fmt.Fprintf(&b, "  %s%s count=%d sum=%g\n", m.Name, label, m.Count, m.Value)
			default:
				fmt.Fprintf(&b, "  %s%s %g\n", m.Name, label, m.Value)
			}
		}
	}
	return b.String()
}
