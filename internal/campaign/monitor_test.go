package campaign

import (
	"path/filepath"
	"testing"

	"insitu/internal/obs"
	"insitu/internal/runmon"
)

// TestCampaignMonitorWiring attaches a live runmon.Monitor to a small coupled
// campaign: Execute must install the solved plan as the monitor's profile,
// write the plan events into the ledger, and stream every run event through
// the monitor.
func TestCampaignMonitorWiring(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	led, err := obs.OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	mon := runmon.NewMonitor(nil, runmon.Config{})
	c := mdCampaign(t, 20, 0, func(cfg *Config) {
		cfg.Ledger = led
		cfg.Monitor = mon
	})
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	// The monitor saw the whole run live.
	s := mon.Snapshot()
	if !s.Ended || s.Step != out.Report.Steps {
		t.Fatalf("monitor snapshot = step %d ended %v, report ran %d steps", s.Step, s.Ended, out.Report.Steps)
	}
	if s.App != "water+ions" {
		t.Fatalf("monitor app = %q", s.App)
	}
	if len(s.Streams) == 0 {
		t.Fatal("monitor tracked no streams")
	}
	// The installed profile carries the solved plan's envelope, so the sim
	// stream is predicted (not self-calibrating) from the first step.
	for _, st := range s.Streams {
		if st.Stream == runmon.StreamSim && st.PredictedSec <= 0 {
			t.Fatalf("sim stream still calibrating: %+v", st)
		}
	}
	if s.Steps != out.Plan.Resources.Steps || s.ThresholdSec != out.Plan.Resources.TimeThreshold {
		t.Fatalf("profile envelope = steps %d threshold %g, plan %d/%g",
			s.Steps, s.ThresholdSec, out.Plan.Resources.Steps, out.Plan.Resources.TimeThreshold)
	}

	// The ledger self-describes the same predictions via plan events.
	events, err := obs.ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	profile := runmon.FromEvents(events)
	if profile == nil {
		t.Fatal("ledger carries no plan events")
	}
	if profile.ThresholdSec != out.Plan.Resources.TimeThreshold {
		t.Fatalf("ledger plan threshold = %g, want %g", profile.ThresholdSec, out.Plan.Resources.TimeThreshold)
	}
	// Post-hoc analysis of the file reaches the same verdict as the live
	// monitor (same predictions, same events).
	post := runmon.Analyze(events, nil, runmon.Config{})
	if post.DriftCount() != s.DriftCount() || post.Step != s.Step {
		t.Fatalf("post-hoc %+v disagrees with live %+v", post.Summary(), s.Summary())
	}
}
