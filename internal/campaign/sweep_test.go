package campaign

import (
	"bytes"
	"math"
	"testing"

	"insitu/internal/core"
	"insitu/internal/obs"
)

// TestPlanSweep checks the campaign-level fan-out: plans come back in input
// order with the requested thresholds, every solve matches an independent
// serial re-solve of the same instance, the objective is monotone in the
// threshold, and the ledger records one sweep event per threshold after the
// pool drains.
func TestPlanSweep(t *testing.T) {
	var buf bytes.Buffer
	ledger := obs.NewEventLog(&buf)
	c := mdCampaign(t, 0, 0.05, func(cfg *Config) {
		cfg.SolveWorkers = 4
		cfg.Ledger = ledger
	})
	thresholds := []float64{0.02, 0.05, 0.1, 0.4, 1.5}
	plans, err := c.PlanSweep(thresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(thresholds) {
		t.Fatalf("got %d plans for %d thresholds", len(plans), len(thresholds))
	}
	prev := math.Inf(-1)
	for i, p := range plans {
		if p.Resources.TimeThreshold != thresholds[i] {
			t.Fatalf("plan %d solved threshold %g, want %g", i, p.Resources.TimeThreshold, thresholds[i])
		}
		if err := p.Rec.Validate(p.Specs, p.Resources); err != nil {
			t.Fatalf("plan %d fails recurrence validation: %v", i, err)
		}
		// Serial equivalence: the fan-out must return exactly what a direct
		// serial solve of the same instance returns.
		ref, err := core.Solve(p.Specs, p.Resources, core.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ref.Objective-p.Rec.Objective) > 1e-9 {
			t.Fatalf("plan %d objective %g, serial reference %g", i, p.Rec.Objective, ref.Objective)
		}
		if p.Rec.Objective < prev-1e-9 {
			t.Fatalf("objective %g regressed below %g as the threshold grew", p.Rec.Objective, prev)
		}
		prev = p.Rec.Objective
	}
	if err := ledger.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(thresholds) {
		t.Fatalf("ledger has %d events, want %d", len(events), len(thresholds))
	}
	for i, ev := range events {
		if ev.Type != obs.LedgerSolve || ev.Name != "sweep" {
			t.Fatalf("event %d is %s/%s, want solve/sweep", i, ev.Type, ev.Name)
		}
		if got := ev.Args["threshold"]; got != thresholds[i] {
			t.Fatalf("event %d logged threshold %g, want %g (ledger order must follow input order)", i, got, thresholds[i])
		}
	}
}

// TestPlanSweepEmpty rejects an empty threshold list.
func TestPlanSweepEmpty(t *testing.T) {
	c := mdCampaign(t, 20, 0)
	if _, err := c.PlanSweep(nil); err == nil {
		t.Fatal("empty sweep did not error")
	}
}

// TestPlanWithWorkers runs the single-plan path through the parallel
// branch-and-bound search.
func TestPlanWithWorkers(t *testing.T) {
	c := mdCampaign(t, 20, 0, func(cfg *Config) { cfg.SolveWorkers = 2 })
	p, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Rec.Stats.Workers != 2 {
		t.Fatalf("plan solve ran with %d workers, want 2", p.Rec.Stats.Workers)
	}
}
