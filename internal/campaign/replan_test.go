package campaign

import (
	"testing"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/analysis/mdkernels"
	"insitu/internal/replan"
	"insitu/internal/runmon"
	"insitu/internal/sim/md"
)

// TestCampaignReplanWiring closes the loop end to end through the campaign
// front door: the simulation is profiled at one speed, then slows 3x for the
// production run, so the live monitor must raise drift and the replanner must
// record at least one decision — all without the caller attaching a monitor
// explicitly. Wall-clock timing keeps the adopted-vs-kept outcome
// machine-dependent, so the test asserts the wiring (decisions recorded,
// consistent records, run completes), not a particular decision.
func TestCampaignReplanWiring(t *testing.T) {
	sys, err := md.NewWaterIons(md.Config{NAtoms: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rdf, err := mdkernels.NewHydroniumRDF(sys, mdkernels.RDFConfig{Bins: 32, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	msd, err := mdkernels.NewMSD(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	var slow bool
	cfg := Config{
		Sim: SimFunc{
			AppName: "water+ions",
			StepFn: func() {
				sys.Step(0.002)
				if slow {
					time.Sleep(2 * time.Millisecond)
				}
			},
			MemBytes: sys.MemoryBytes(),
		},
		Kernels:          []analysis.Kernel{rdf, msd},
		Steps:            30,
		MinInterval:      3,
		ThresholdPercent: 20,
		Replan:           &replan.Config{Cooldown: 3},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	slow = true // the truth the profile missed: every production step drags
	out, err := c.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Report.Steps != 30 {
		t.Fatalf("run ended at %d steps", out.Report.Steps)
	}
	if len(out.Replans) == 0 {
		t.Fatal("a 3x-slowed run produced no replan decisions")
	}
	for _, r := range out.Replans {
		if r.Reason == "" || r.Step <= 0 {
			t.Fatalf("malformed replan record: %+v", r)
		}
		if r.Trigger != runmon.AlertDrift && r.Trigger != runmon.AlertBudget {
			t.Fatalf("replan record with unknown trigger: %+v", r)
		}
	}
}
