package campaign

import (
	"path/filepath"
	"testing"

	"insitu/internal/obs"
)

// TestCampaignLedgerRoundTrip runs a small coupled campaign with a JSONL run
// ledger attached, reads the file back, and checks that the reconstructed
// timeline matches the executed report: the acceptance path for the
// benchobs-summarize workflow.
func TestCampaignLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	led, err := obs.OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	c := mdCampaign(t, 20, 0, func(cfg *Config) { cfg.Ledger = led })
	out, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := obs.SummarizeLedger(events)
	if sum.App != "water+ions" || sum.Runs != 1 {
		t.Fatalf("app=%q runs=%d", sum.App, sum.Runs)
	}
	if len(sum.Solves) != 1 {
		t.Fatalf("solves = %d, want 1", len(sum.Solves))
	}
	solve := sum.Solves[0]
	if solve.Name != "plan" || solve.Args["objective"] != out.Plan.Rec.Objective {
		t.Fatalf("solve event = %+v, plan objective %g", solve, out.Plan.Rec.Objective)
	}
	if solve.Args["threshold"] != out.Plan.Resources.TimeThreshold {
		t.Fatalf("solve threshold = %g, want %g", solve.Args["threshold"], out.Plan.Resources.TimeThreshold)
	}
	if len(sum.Steps) != out.Report.Steps {
		t.Fatalf("timeline has %d steps, report ran %d", len(sum.Steps), out.Report.Steps)
	}
	if sum.TotalUS <= 0 {
		t.Fatal("no step time recorded")
	}

	// Per-kernel analysis/output invocations and output volume must agree
	// with the coupling report exactly.
	analyses := map[string]int{}
	outputs := map[string]int{}
	var bytes int64
	for _, e := range events {
		switch e.Type {
		case obs.LedgerAnalysis:
			analyses[e.Name]++
		case obs.LedgerOutput:
			outputs[e.Name]++
			bytes += e.Bytes
		}
	}
	for _, kr := range out.Report.Kernels {
		if analyses[kr.Name] != kr.Analyses {
			t.Fatalf("%s: ledger has %d analyses, report %d", kr.Name, analyses[kr.Name], kr.Analyses)
		}
		if outputs[kr.Name] != kr.Outputs {
			t.Fatalf("%s: ledger has %d outputs, report %d", kr.Name, outputs[kr.Name], kr.Outputs)
		}
		bytes -= kr.OutBytes
	}
	if bytes != 0 {
		t.Fatalf("ledger output bytes off by %d", bytes)
	}

	// run_start/run_end bracket the run.
	if events[0].Type != obs.LedgerSolve && events[0].Type != obs.LedgerRunStart {
		t.Fatalf("first event = %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != obs.LedgerRunEnd || last.Args["sim_seconds"] <= 0 {
		t.Fatalf("last event = %+v", last)
	}
}
