package schedd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"insitu/internal/obs"
	"insitu/internal/scenario"
)

func testScenario() scenario.Problem {
	return scenario.Problem{
		Resources: scenario.Envelope{Steps: 12, TimeSec: 6, MemBytes: 64 << 20, Bandwidth: 1 << 20},
		Analyses: []scenario.Analysis{
			{Name: "descriptors", CTSec: 1, OTSec: 0.25, CMBytes: 8 << 20, OMBytes: 4 << 20, MinInterval: 2, Weight: 2},
			{Name: "msd", CTSec: 0.5, CMBytes: 4 << 20, MinInterval: 3},
			{Name: "expensive", CTSec: 50, MinInterval: 1},
		},
	}
}

func postSolve(t *testing.T, srv *httptest.Server, body SolveRequest, header string) (*http.Response, SolveResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", srv.URL+"/v1/solve", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if header != "" {
		req.Header.Set(obs.RequestIDHeader, header)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func metricValue(t *testing.T, reg *obs.Registry, name string, labels map[string]string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name != name {
			continue
		}
		if len(labels) == 0 && len(m.Labels) != 0 {
			continue
		}
		match := true
		for k, v := range labels {
			if m.Labels[k] != v {
				match = false
			}
		}
		if match {
			return m.Value
		}
	}
	return 0
}

// TestSolveCacheLedger is the acceptance-criteria test: a request carries
// its ID end to end, the ledger holds the request's root span with the
// nested solve span and solveprog flight events, RED and cache metrics are
// visible, and a repeated identical request is served from cache with
// identical schedules and no new solver nodes.
func TestSolveCacheLedger(t *testing.T) {
	var buf bytes.Buffer
	ledger := obs.NewEventLog(&buf)
	s := New(Config{Ledger: ledger, Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp1, out1 := postSolve(t, srv, SolveRequest{Scenario: testScenario()}, "req-alpha")
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first solve = %d: %+v", resp1.StatusCode, out1.Error)
	}
	if out1.RequestID != "req-alpha" || resp1.Header.Get(obs.RequestIDHeader) != "req-alpha" {
		t.Fatalf("request ID not propagated: body %q header %q", out1.RequestID, resp1.Header.Get(obs.RequestIDHeader))
	}
	if out1.CacheHit {
		t.Fatal("first request cannot be a cache hit")
	}
	if out1.Solver.Nodes == 0 || len(out1.Schedules) != 3 {
		t.Fatalf("first solve looks empty: %+v", out1)
	}
	if !strings.HasPrefix(out1.Fingerprint, "sha256:") {
		t.Fatalf("fingerprint missing: %q", out1.Fingerprint)
	}
	// The expensive analysis cannot fit the 6 s budget; the solver must
	// disable it and keep the cheap ones.
	for _, sch := range out1.Schedules {
		if sch.Name == "expensive" && sch.Enabled {
			t.Fatal("expensive analysis should be disabled")
		}
		if sch.Name == "descriptors" && !sch.Enabled {
			t.Fatal("descriptors should be enabled")
		}
	}

	nodesAfterFirst := metricValue(t, s.Registry(), "schedd_solver_nodes_total", nil)
	if nodesAfterFirst == 0 {
		t.Fatal("solver node counter not incremented")
	}

	resp2, out2 := postSolve(t, srv, SolveRequest{Scenario: testScenario()}, "req-beta")
	if resp2.StatusCode != http.StatusOK || !out2.CacheHit {
		t.Fatalf("second request: code %d cache_hit %v", resp2.StatusCode, out2.CacheHit)
	}
	if out2.RequestID != "req-beta" {
		t.Fatalf("cached response carries wrong ID %q", out2.RequestID)
	}
	if !reflect.DeepEqual(out1.Schedules, out2.Schedules) || out1.Objective != out2.Objective {
		t.Fatal("cached response differs from the original solve")
	}
	if got := metricValue(t, s.Registry(), "schedd_solver_nodes_total", nil); got != nodesAfterFirst {
		t.Fatalf("cache hit ran the solver: nodes %v -> %v", nodesAfterFirst, got)
	}
	if hits := metricValue(t, s.Registry(), "schedd_cache_hits_total", nil); hits != 1 {
		t.Fatalf("cache hits = %v, want 1", hits)
	}
	if reqs := metricValue(t, s.Registry(), "schedd_requests_total", nil); reqs != 2 {
		t.Fatalf("requests_total = %v, want 2", reqs)
	}

	// RED + cache counters visible on the Prometheus exposition.
	var prom bytes.Buffer
	if err := s.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"schedd_requests_total 2", "schedd_cache_hits_total 1",
		"schedd_cache_misses_total 1", "schedd_request_seconds_count 2", "schedd_solve_seconds_count 1"} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	// Ledger: per-request root reqlog events, with the solve span and the
	// solveprog flight stream nested under the first request's ID.
	events, err := obs.ReadLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{} // type|name -> count
	for _, e := range events {
		counts[e.Type+"|"+e.Name]++
	}
	if counts[obs.LedgerReqLog+"|req-alpha"] != 1 || counts[obs.LedgerReqLog+"|req-beta"] != 1 {
		t.Fatalf("reqlog roots missing: %v", counts)
	}
	if counts[obs.LedgerSolve+"|req-alpha"] != 1 {
		t.Fatalf("solve span for req-alpha missing: %v", counts)
	}
	if counts[obs.LedgerSolveProg+"|req-alpha"] == 0 {
		t.Fatalf("solveprog flight events for req-alpha missing: %v", counts)
	}
	if counts[obs.LedgerSolve+"|req-beta"] != 0 {
		t.Fatal("cache hit must not ledger a solve span")
	}
	for _, e := range events {
		if e.Type == obs.LedgerReqLog && e.Name == "req-beta" {
			if e.Args["cache_hit"] != 1 || e.Args["reqlog_v"] != 1 {
				t.Fatalf("req-beta reqlog args: %v", e.Args)
			}
		}
	}
}

func TestExplainRoundTrip(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, out := postSolve(t, srv, SolveRequest{Scenario: testScenario(), Explain: true}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain solve = %d: %+v", resp.StatusCode, out.Error)
	}
	if out.RequestID == "" {
		t.Fatal("server did not mint a request ID")
	}
	if out.Explain == nil || len(out.Explain.Attributions) != 3 {
		t.Fatalf("explain summary missing: %+v", out.Explain)
	}
	var exp *AttributionJSON
	for i := range out.Explain.Attributions {
		if out.Explain.Attributions[i].Name == "expensive" {
			exp = &out.Explain.Attributions[i]
		}
	}
	if exp == nil || exp.Enabled {
		t.Fatalf("expensive attribution: %+v", exp)
	}

	// Explain and plain responses cache under different keys.
	_, plain := postSolve(t, srv, SolveRequest{Scenario: testScenario()}, "")
	if plain.CacheHit || plain.Explain != nil {
		t.Fatalf("plain request after explain: hit=%v explain=%v", plain.CacheHit, plain.Explain)
	}
	_, again := postSolve(t, srv, SolveRequest{Scenario: testScenario(), Explain: true}, "")
	if !again.CacheHit || again.Explain == nil {
		t.Fatalf("repeated explain request: hit=%v explain present=%v", again.CacheHit, again.Explain != nil)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || out.Error == nil || out.Error.Kind != ErrBadRequest {
		t.Fatalf("bad JSON: code %d error %+v", resp.StatusCode, out.Error)
	}
	if out.RequestID == "" {
		t.Fatal("error responses still carry a request ID")
	}

	respEmpty, outEmpty := postSolve(t, srv, SolveRequest{}, "")
	if respEmpty.StatusCode != http.StatusUnprocessableEntity || outEmpty.Error.Kind != ErrUnprocessable {
		t.Fatalf("empty scenario: code %d error %+v", respEmpty.StatusCode, outEmpty.Error)
	}

	// A scenario the core layer rejects (no steps) is unprocessable too.
	bad := testScenario()
	bad.Resources.Steps = 0
	respBad, outBad := postSolve(t, srv, SolveRequest{Scenario: bad}, "")
	if respBad.StatusCode != http.StatusUnprocessableEntity || outBad.Error.Kind != ErrUnprocessable {
		t.Fatalf("invalid scenario: code %d error %+v", respBad.StatusCode, outBad.Error)
	}

	if got := metricValue(t, s.Registry(), "schedd_errors_total", map[string]string{"kind": ErrBadRequest}); got != 1 {
		t.Fatalf("bad_request errors = %v, want 1", got)
	}
	if got := metricValue(t, s.Registry(), "schedd_errors_total", map[string]string{"kind": ErrUnprocessable}); got != 2 {
		t.Fatalf("unprocessable errors = %v, want 2", got)
	}
}

// TestQueueTimeout fills the solver pool directly and checks the admission
// rejection is fast, classified, and counted.
func TestQueueTimeout(t *testing.T) {
	s := New(Config{MaxInFlight: 1, QueueTimeout: 20 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	s.sem <- struct{}{} // occupy the only solver slot
	defer func() { <-s.sem }()

	resp, out := postSolve(t, srv, SolveRequest{Scenario: testScenario()}, "")
	if resp.StatusCode != http.StatusServiceUnavailable || out.Error == nil || out.Error.Kind != ErrQueueTimeout {
		t.Fatalf("saturated pool: code %d error %+v", resp.StatusCode, out.Error)
	}
	if got := metricValue(t, s.Registry(), "schedd_rejected_total", map[string]string{"reason": "queue_timeout"}); got != 1 {
		t.Fatalf("rejected_total = %v, want 1", got)
	}
}

// TestCoalesce holds the solver slot while two identical requests arrive:
// the second must coalesce onto the first's solve, so the solver runs once.
func TestCoalesce(t *testing.T) {
	s := New(Config{MaxInFlight: 1, QueueTimeout: 10 * time.Second})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	s.sem <- struct{}{} // park the leader in admission
	var wg sync.WaitGroup
	outs := make([]SolveResponse, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outs[i] = postSolve(t, srv, SolveRequest{Scenario: testScenario()}, fmt.Sprintf("req-%d", i))
		}(i)
	}
	// Wait until the follower has coalesced onto the in-flight call, then
	// release the slot.
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, s.Registry(), "schedd_coalesced_total", nil) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	<-s.sem
	wg.Wait()

	if outs[0].Error != nil || outs[1].Error != nil {
		t.Fatalf("coalesced solves failed: %+v %+v", outs[0].Error, outs[1].Error)
	}
	if !reflect.DeepEqual(outs[0].Schedules, outs[1].Schedules) {
		t.Fatal("coalesced responses differ")
	}
	if outs[0].Coalesced == outs[1].Coalesced {
		t.Fatalf("exactly one request should be marked coalesced: %v %v", outs[0].Coalesced, outs[1].Coalesced)
	}
	if solves := metricValue(t, s.Registry(), "schedd_solve_seconds_count", nil); solves > 1 {
		t.Fatalf("coalesced pair ran %v solves", solves)
	}
}

func TestReadyzAndRequestRoutes(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	s.SetReady(false)
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d", code)
	}
	s.SetReady(true)

	_, out := postSolve(t, srv, SolveRequest{Scenario: testScenario()}, "req-x")
	if out.Error != nil {
		t.Fatalf("solve failed: %+v", out.Error)
	}

	code, body := get("/v1/requests")
	if code != http.StatusOK || !strings.Contains(body, `"request_id": "req-x"`) {
		t.Fatalf("/v1/requests = %d %q", code, body)
	}

	code, body = get("/v1/requests/req-x/solve.json")
	if code != http.StatusOK {
		t.Fatalf("/v1/requests/req-x/solve.json = %d", code)
	}
	var flight struct {
		Schema int               `json:"solveprog_v"`
		Name   string            `json:"name"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &flight); err != nil {
		t.Fatal(err)
	}
	if flight.Schema != obs.SolveProgSchemaVersion || flight.Name != "req-x" || len(flight.Events) == 0 {
		t.Fatalf("flight doc: schema %d name %q events %d", flight.Schema, flight.Name, len(flight.Events))
	}

	if code, _ := get("/v1/requests/nope/solve.json"); code != http.StatusNotFound {
		t.Fatalf("unknown request flight = %d", code)
	}

	// A cache hit still serves the original solve's flight under its own ID.
	_, hit := postSolve(t, srv, SolveRequest{Scenario: testScenario()}, "req-y")
	if !hit.CacheHit {
		t.Fatal("expected cache hit")
	}
	if code, _ := get("/v1/requests/req-y/solve.json"); code != http.StatusOK {
		t.Fatalf("cache-hit flight route = %d", code)
	}
}
