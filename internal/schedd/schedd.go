// Package schedd is the scheduling-as-a-service tier: an HTTP/JSON daemon
// that accepts scenario documents (the same files insitu-sched and
// schedexplain read), solves them through the parallel core/milp stack, and
// returns schedules plus optional explain attributions. It is the repo's
// answer to the paper's premise that optimal schedules are cheap enough to
// answer many what-if queries: the daemon memoizes identical what-ifs behind
// a canonical-fingerprint solution cache, coalesces concurrent duplicates
// onto one solve, and admission-controls the solver pool so a burst of
// queries degrades into fast 503s instead of an unbounded pile-up.
//
// Observability is the headline layer, not a retrofit. Every request carries
// a propagated request ID (obs.RequestIDHeader in, response field + header
// out) that travels by context through campaign→core→milp→lp, so solver
// pprof phase labels nest under a per-request label and the flight-recorder
// stream of each solve is attributed to the request that paid for it. The
// server reports RED metrics (rate, error taxonomy, duration histograms) and
// cache hit/miss/age/eviction telemetry on an obs.Registry, appends a
// schema-versioned reqlog ledger (one root event per request, with the
// solve span and solveprog flight events nested under the same request ID),
// and serves per-request flight JSON at /v1/requests/{id}/solve.json next to
// the uniform /healthz, /readyz, /metrics, and /debug/pprof routes.
package schedd

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/pprof"
	"sync"
	"time"

	"insitu/internal/core"
	"insitu/internal/milp"
	"insitu/internal/obs"
	"insitu/internal/scenario"
)

// SchemaVersion versions the request/response JSON ("schedd_v") and the
// reqlog ledger events ("reqlog_v").
const SchemaVersion = 1

// maxBodyBytes caps a request body; scenario documents are a few KiB.
const maxBodyBytes = 1 << 20

// Error taxonomy: every failed request is classified with one of these
// kinds, reported in the response error object and counted on
// schedd_errors_total{kind=...}.
const (
	ErrBadRequest    = "bad_request"   // 400: body unreadable or not scenario JSON
	ErrUnprocessable = "unprocessable" // 422: scenario parsed but cannot be solved
	ErrSolver        = "solver_error"  // 500: the solver failed unexpectedly
	ErrQueueTimeout  = "queue_timeout" // 503: no solver slot within QueueTimeout
	ErrCanceled      = "canceled"      // 499: client went away mid-request
)

// numeric codes for the kinds above, for the reqlog Args payload.
var errKindCodes = map[string]float64{
	"": 0, ErrBadRequest: 1, ErrUnprocessable: 2, ErrSolver: 3, ErrQueueTimeout: 4, ErrCanceled: 5,
}

// Config tunes the daemon. The zero value serves with defaults.
type Config struct {
	// Workers is the branch-and-bound pool width per solve (see
	// core.SolveOptions.Workers). 0 and 1 run the serial search.
	Workers int
	// MaxInFlight is the solver-pool width: how many solves may run
	// concurrently (default 4). Distinct concurrent requests share this pool
	// the way campaign.PlanSweep shares its threshold fan-out pool; requests
	// past the limit queue.
	MaxInFlight int
	// QueueTimeout bounds how long a request waits for a solver slot before
	// it is rejected with a queue_timeout error (default 5s).
	QueueTimeout time.Duration
	// CacheEntries caps the LRU solution cache (default 128 scenarios).
	CacheEntries int
	// RecentRequests caps the in-memory request registry behind
	// /v1/requests (default 64).
	RecentRequests int
	// Registry receives the RED and cache metrics (default: a fresh one).
	Registry *obs.Registry
	// Ledger, when non-nil, receives the reqlog access ledger: per request
	// one root reqlog event plus, for solves, a solve span and the solveprog
	// flight stream, all named by the request ID.
	Ledger *obs.EventLog
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.RecentRequests <= 0 {
		c.RecentRequests = 64
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// SolveRequest is the POST /v1/solve body.
type SolveRequest struct {
	Scenario scenario.Problem `json:"scenario"`
	// Explain additionally runs the decision-attribution layer (core.Explain)
	// and attaches its summary to the response.
	Explain bool `json:"explain,omitempty"`
}

// ScheduleJSON is one analysis schedule of the response.
type ScheduleJSON struct {
	Name             string  `json:"name"`
	Enabled          bool    `json:"enabled"`
	Count            int     `json:"count"`
	OutputEvery      int     `json:"output_every,omitempty"`
	Outputs          int     `json:"outputs,omitempty"`
	AnalysisSteps    []int   `json:"analysis_steps,omitempty"`
	OutputSteps      []int   `json:"output_steps,omitempty"`
	PredictedTimeSec float64 `json:"predicted_time_sec"`
	PeakMemoryBytes  int64   `json:"peak_memory_bytes"`
}

// SolverInfo summarizes the branch-and-bound search behind a response. The
// warm/fallback/dual fields expose the revised-simplex warm-start health:
// WarmSolves counts node re-solves answered from a warm basis (of which
// WarmInfeasibles were pruned on a dual infeasibility certificate), and
// FallbackColds counts warm attempts that fell through to a cold solve.
type SolverInfo struct {
	Nodes        int     `json:"nodes"`
	Relaxations  int     `json:"relaxations"`
	Pivots       int     `json:"pivots"`
	Workers      int     `json:"workers"`
	SolveTimeSec float64 `json:"solve_time_sec"`
	Bound        float64 `json:"bound"`

	WarmSolves       int `json:"warm_solves"`
	ColdSolves       int `json:"cold_solves"`
	FallbackColds    int `json:"fallback_colds,omitempty"`
	WarmInfeasibles  int `json:"warm_infeasibles,omitempty"`
	PrimalPivots     int `json:"primal_pivots,omitempty"`
	DualPivots       int `json:"dual_pivots,omitempty"`
	Refactorizations int `json:"refactorizations,omitempty"`
	EtaPeak          int `json:"eta_peak,omitempty"`
}

// AttributionJSON is the wire form of one core.Attribution.
type AttributionJSON struct {
	Name            string   `json:"name"`
	Enabled         bool     `json:"enabled"`
	Count           int      `json:"count"`
	MaxCount        int      `json:"max_count"`
	Binding         string   `json:"binding,omitempty"`
	BindingSlack    float64  `json:"binding_slack,omitempty"`
	ForcedFeasible  bool     `json:"forced_feasible,omitempty"`
	ForcedDelta     float64  `json:"forced_delta,omitempty"`
	ForcedViolation string   `json:"forced_violation,omitempty"`
	Conflict        []string `json:"conflict,omitempty"`
}

// ExplainJSON is the response's explain summary.
type ExplainJSON struct {
	TimeSlackSec  float64           `json:"time_slack_sec"`
	MemSlackBytes float64           `json:"mem_slack_bytes"`
	Attributions  []AttributionJSON `json:"attributions"`
}

// ErrorJSON classifies a failed request.
type ErrorJSON struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// SolveResponse is the POST /v1/solve reply (also the /v1/requests/{id}
// record, minus the schedules).
type SolveResponse struct {
	Schema      int     `json:"schedd_v"`
	RequestID   string  `json:"request_id"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	CacheHit    bool    `json:"cache_hit"`
	Coalesced   bool    `json:"coalesced,omitempty"`
	CacheAgeSec float64 `json:"cache_age_sec,omitempty"`

	Objective       float64        `json:"objective"`
	TotalTimeSec    float64        `json:"total_time_sec"`
	PeakMemoryBytes int64          `json:"peak_memory_bytes"`
	Schedules       []ScheduleJSON `json:"schedules"`
	Solver          SolverInfo     `json:"solver"`
	Explain         *ExplainJSON   `json:"explain,omitempty"`

	Error *ErrorJSON `json:"error,omitempty"`
}

// reqRecord is one entry of the recent-request registry.
type reqRecord struct {
	ID          string  `json:"request_id"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Code        int     `json:"code"`
	ErrKind     string  `json:"error_kind,omitempty"`
	CacheHit    bool    `json:"cache_hit"`
	Coalesced   bool    `json:"coalesced,omitempty"`
	DurUs       float64 `json:"dur_us"`
	QueueUs     float64 `json:"queue_us,omitempty"`
	SolveUs     float64 `json:"solve_us,omitempty"`
	Nodes       int     `json:"nodes,omitempty"`
	Objective   float64 `json:"objective,omitempty"`

	flight *obs.FlightRecorder
}

// flightCall is one in-flight solve that duplicate concurrent requests
// coalesce onto.
type flightCall struct {
	done chan struct{}
	val  *solved
	err  error
}

// Server is the schedd daemon core: construct with New, mount Handler on a
// listener (obs.ServeUntil in cmd/schedd), flip SetReady(false) to drain.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	ledger *obs.EventLog
	cache  *cache
	sem    chan struct{}

	mu       sync.Mutex
	calls    map[string]*flightCall
	recent   []*reqRecord // ring, newest last
	seq      uint64
	notReady bool

	requests  *obs.Counter
	inflight  *obs.Gauge
	reqDur    *obs.Histogram
	solveDur  *obs.Histogram
	queueDur  *obs.Histogram
	nodesTot  *obs.Counter
	pivotsTot *obs.Counter
	coalesced *obs.Counter
	// Warm-start health of the revised-simplex solver contexts, summed over
	// all solves: warm vs fallback-cold re-solves and dual-certified prunes.
	warmTot     *obs.Counter
	fallbackTot *obs.Counter
	warmInfTot  *obs.Counter
}

// New builds a Server; it is ready as soon as it returns.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		ledger:    cfg.Ledger,
		cache:     newCache(cfg.CacheEntries, reg, cfg.Now),
		sem:       make(chan struct{}, cfg.MaxInFlight),
		calls:     make(map[string]*flightCall),
		requests:  reg.Counter("schedd_requests_total", nil),
		inflight:  reg.Gauge("schedd_inflight", nil),
		reqDur:    reg.Histogram("schedd_request_seconds", obs.DefBuckets, nil),
		solveDur:  reg.Histogram("schedd_solve_seconds", obs.DefBuckets, nil),
		queueDur:  reg.Histogram("schedd_queue_seconds", obs.DefBuckets, nil),
		nodesTot:  reg.Counter("schedd_solver_nodes_total", nil),
		pivotsTot: reg.Counter("schedd_solver_pivots_total", nil),
		coalesced: reg.Counter("schedd_coalesced_total", nil),

		warmTot:     reg.Counter("schedd_solver_warm_total", nil),
		fallbackTot: reg.Counter("schedd_solver_warm_fallback_total", nil),
		warmInfTot:  reg.Counter("schedd_solver_warm_infeasible_total", nil),
	}
	return s
}

// Registry exposes the server's metrics registry (for embedding callers).
func (s *Server) Registry() *obs.Registry { return s.reg }

// SetReady flips the /readyz answer; cmd/schedd sets false on the first
// shutdown signal so load balancers drain the instance while in-flight
// requests finish.
func (s *Server) SetReady(ready bool) {
	s.mu.Lock()
	s.notReady = !ready
	s.mu.Unlock()
}

// Handler mounts the full route set: the obs observatory mux (/healthz,
// /metrics, /metrics.json, /debug/pprof) plus the service routes.
func (s *Server) Handler() http.Handler {
	mux := obs.NewServeMux(s.reg)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/requests", s.handleRequests)
	mux.HandleFunc("GET /v1/requests/{id}/solve.json", s.handleRequestFlight)
	return mux
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.notReady
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// genID mints a request ID when the client did not send one.
func (s *Server) genID() string {
	s.mu.Lock()
	s.seq++
	n := s.seq
	s.mu.Unlock()
	var b [4]byte
	_, _ = rand.Read(b[:])
	return fmt.Sprintf("r%06d-%s", n, hex.EncodeToString(b[:]))
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get(obs.RequestIDHeader)
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	decodeErr := dec.Decode(&req)
	resp, code := s.process(r.Context(), id, req, decodeErr)
	writeJSON(w, resp.RequestID, code, resp)
}

// Process runs one request through the full service pipeline — request ID,
// cache, coalescing, admission, metrics, and ledger — without HTTP. It is
// the engine behind POST /v1/solve, and what `schedd once` calls so one-shot
// CLI solves answer byte-identically (schema, telemetry, cache keys) to the
// daemon. An empty id mints one. The int is the would-be HTTP status.
func (s *Server) Process(ctx context.Context, id string, req SolveRequest) (*SolveResponse, int) {
	return s.process(ctx, id, req, nil)
}

func (s *Server) process(ctx context.Context, id string, req SolveRequest, decodeErr error) (*SolveResponse, int) {
	start := s.cfg.Now()
	if id == "" {
		id = s.genID()
	}
	ctx = obs.WithRequestID(ctx, id)
	s.requests.Inc()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	rec := &reqRecord{ID: id}
	if decodeErr != nil {
		return s.finish(start, rec, nil, &ErrorJSON{Kind: ErrBadRequest, Message: "decoding request: " + decodeErr.Error()})
	}
	if len(req.Scenario.Analyses) == 0 {
		return s.finish(start, rec, nil, &ErrorJSON{Kind: ErrUnprocessable, Message: "scenario: no analyses"})
	}
	fp := req.Scenario.Fingerprint()
	rec.Fingerprint = fp
	key := fp
	if req.Explain {
		key += "|explain"
	}

	if val, age, ok := s.cache.get(key); ok {
		rec.CacheHit = true
		resp := s.buildResponse(id, val, req.Explain)
		resp.CacheHit = true
		resp.CacheAgeSec = age.Seconds()
		rec.flight = val.flight
		rec.Nodes = 0 // served from cache: no new solver work
		rec.Objective = val.rec.Objective
		return s.finish(start, rec, resp, nil)
	}

	val, ejson := s.solveShared(ctx, id, key, rec, req)
	if ejson != nil {
		return s.finish(start, rec, nil, ejson)
	}
	resp := s.buildResponse(id, val, req.Explain)
	resp.Coalesced = rec.Coalesced
	rec.flight = val.flight
	rec.Objective = val.rec.Objective
	return s.finish(start, rec, resp, nil)
}

// solveShared coalesces identical concurrent requests onto one solve and
// admission-controls the leader through the solver-slot semaphore.
func (s *Server) solveShared(ctx context.Context, id, key string, rec *reqRecord, req SolveRequest) (*solved, *ErrorJSON) {
	s.mu.Lock()
	if f, ok := s.calls[key]; ok {
		s.mu.Unlock()
		s.coalesced.Inc()
		rec.Coalesced = true
		select {
		case <-f.done:
			if f.err != nil {
				return nil, classify(f.err)
			}
			return f.val, nil
		case <-ctx.Done():
			return nil, &ErrorJSON{Kind: ErrCanceled, Message: "client went away while coalesced on an in-flight solve"}
		}
	}
	f := &flightCall{done: make(chan struct{})}
	s.calls[key] = f
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.calls, key)
		s.mu.Unlock()
		close(f.done)
	}()

	// Admission: wait for a solver slot, but not past QueueTimeout.
	qStart := s.cfg.Now()
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
	case <-timer.C:
		f.err = errQueueTimeout
		return nil, classify(f.err)
	case <-ctx.Done():
		f.err = ctx.Err()
		return nil, classify(f.err)
	}
	defer func() { <-s.sem }()
	queue := s.cfg.Now().Sub(qStart)
	s.queueDur.Observe(queue.Seconds())
	rec.QueueUs = float64(queue.Microseconds())

	val, err := s.solve(ctx, id, req)
	if err != nil {
		f.err = err
		return nil, classify(err)
	}
	rec.SolveUs = float64(val.rec.SolveTime.Microseconds())
	rec.Nodes = val.rec.Stats.Nodes
	s.cache.put(key, val)
	f.val = val
	return val, nil
}

// errQueueTimeout marks an admission rejection for classify.
var errQueueTimeout = errors.New("schedd: no solver slot within the queue timeout")

// classify maps a solve-path error onto the response taxonomy.
func classify(err error) *ErrorJSON {
	switch {
	case errors.Is(err, errQueueTimeout):
		return &ErrorJSON{Kind: ErrQueueTimeout, Message: err.Error()}
	case errors.Is(err, milp.ErrCanceled), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return &ErrorJSON{Kind: ErrCanceled, Message: err.Error()}
	default:
		// The core layer rejects malformed scenarios (bad thresholds,
		// impossible intervals) with descriptive errors; those are the
		// client's to fix.
		return &ErrorJSON{Kind: ErrUnprocessable, Message: err.Error()}
	}
}

// solve runs one cache-miss solve under the request's pprof label, records
// its flight stream, and ledgers the solve span plus the flight events under
// the request ID.
func (s *Server) solve(ctx context.Context, id string, req SolveRequest) (*solved, error) {
	specs, res := req.Scenario.Decode()
	fr := obs.NewFlightRecorder(0)
	fr.SetName(id)
	opts := core.SolveOptions{Workers: s.cfg.Workers, Flight: fr}

	var rc *core.Recommendation
	var expl *core.Explanation
	var err error
	pprof.Do(ctx, pprof.Labels("schedd_request", id), func(lctx context.Context) {
		opts.Ctx = lctx
		if req.Explain {
			expl, err = core.Explain(specs, res, opts)
			if err == nil {
				rc = expl.Rec
			}
		} else {
			rc, err = core.Solve(specs, res, opts)
		}
	})
	if err != nil {
		return nil, err
	}
	s.nodesTot.Add(float64(rc.Stats.Nodes))
	s.pivotsTot.Add(float64(rc.Stats.Pivots))
	s.warmTot.Add(float64(rc.Stats.WarmSolves))
	s.fallbackTot.Add(float64(rc.Stats.FallbackColds))
	s.warmInfTot.Add(float64(rc.Stats.WarmInfeasibles))
	s.solveDur.Observe(rc.SolveTime.Seconds())
	s.ledger.Append(obs.LedgerEvent{
		Type: obs.LedgerSolve, Name: id,
		Dur: float64(rc.SolveTime.Nanoseconds()) / 1e3,
		Args: map[string]float64{
			"nodes":     float64(rc.Stats.Nodes),
			"pivots":    float64(rc.Stats.Pivots),
			"objective": rc.Objective,
			"threshold": res.TimeThreshold,
		},
	})
	fr.AppendLedger(s.ledger, id)
	return &solved{fingerprint: req.Scenario.Fingerprint(), rec: rc, expl: expl, flight: fr, at: s.cfg.Now()}, nil
}

// buildResponse renders a solved into a fresh response document.
func (s *Server) buildResponse(id string, val *solved, withExplain bool) *SolveResponse {
	rc := val.rec
	resp := &SolveResponse{
		Schema:          SchemaVersion,
		RequestID:       id,
		Fingerprint:     val.fingerprint,
		Objective:       rc.Objective,
		TotalTimeSec:    rc.TotalTime,
		PeakMemoryBytes: rc.PeakMemory,
		Solver: SolverInfo{
			Nodes:        rc.Stats.Nodes,
			Relaxations:  rc.Stats.Relaxations,
			Pivots:       rc.Stats.Pivots,
			Workers:      rc.Stats.Workers,
			SolveTimeSec: rc.SolveTime.Seconds(),
			Bound:        rc.Stats.BestBound,

			WarmSolves:       rc.Stats.WarmSolves,
			ColdSolves:       rc.Stats.ColdSolves,
			FallbackColds:    rc.Stats.FallbackColds,
			WarmInfeasibles:  rc.Stats.WarmInfeasibles,
			PrimalPivots:     rc.Stats.PrimalPivots,
			DualPivots:       rc.Stats.DualPivots,
			Refactorizations: rc.Stats.Refactorizations,
			EtaPeak:          rc.Stats.EtaPeak,
		},
	}
	for _, sch := range rc.Schedules {
		resp.Schedules = append(resp.Schedules, ScheduleJSON{
			Name:             sch.Name,
			Enabled:          sch.Enabled,
			Count:            sch.Count,
			OutputEvery:      sch.OutputEvery,
			Outputs:          sch.Outputs,
			AnalysisSteps:    sch.AnalysisSteps,
			OutputSteps:      sch.OutputSteps,
			PredictedTimeSec: sch.PredictedTime,
			PeakMemoryBytes:  sch.PeakMemory,
		})
	}
	if withExplain && val.expl != nil {
		ex := &ExplainJSON{TimeSlackSec: val.expl.TimeSlack, MemSlackBytes: val.expl.MemSlack}
		for _, a := range val.expl.Attributions {
			ex.Attributions = append(ex.Attributions, AttributionJSON{
				Name:            a.Name,
				Enabled:         a.Enabled,
				Count:           a.Count,
				MaxCount:        a.MaxCount,
				Binding:         a.Binding,
				BindingSlack:    a.BindingSlack,
				ForcedFeasible:  a.ForcedFeasible,
				ForcedDelta:     a.ForcedDelta,
				ForcedViolation: a.ForcedViolation,
				Conflict:        a.Conflict,
			})
		}
		resp.Explain = ex
	}
	return resp
}

// httpCode maps an error kind onto its status code.
func httpCode(kind string) int {
	switch kind {
	case ErrBadRequest:
		return http.StatusBadRequest
	case ErrUnprocessable:
		return http.StatusUnprocessableEntity
	case ErrQueueTimeout:
		return http.StatusServiceUnavailable
	case ErrCanceled:
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// finish closes out one request: RED metrics, the reqlog root event, and
// the recent-request registry entry. It returns the response document and
// its status code; the transport (HTTP handler or CLI) renders them.
func (s *Server) finish(start time.Time, rec *reqRecord, resp *SolveResponse, ejson *ErrorJSON) (*SolveResponse, int) {
	dur := s.cfg.Now().Sub(start)
	s.reqDur.Observe(dur.Seconds())
	rec.DurUs = float64(dur.Microseconds())

	code := http.StatusOK
	if ejson != nil {
		code = httpCode(ejson.Kind)
		rec.ErrKind = ejson.Kind
		s.reg.Counter("schedd_errors_total", obs.Labels{"kind": ejson.Kind}).Inc()
		if ejson.Kind == ErrQueueTimeout {
			s.reg.Counter("schedd_rejected_total", obs.Labels{"reason": "queue_timeout"}).Inc()
		}
		resp = &SolveResponse{Schema: SchemaVersion, RequestID: rec.ID, Error: ejson}
	}
	rec.Code = code

	// The request's root span: everything nested under it (solve span,
	// solveprog flight events) shares the request ID in Name.
	args := map[string]float64{
		"reqlog_v":  SchemaVersion,
		"code":      float64(code),
		"err":       errKindCodes[rec.ErrKind],
		"cache_hit": b2f(rec.CacheHit),
		"queue_us":  rec.QueueUs,
		"solve_us":  rec.SolveUs,
		"nodes":     float64(rec.Nodes),
	}
	if rec.Coalesced {
		args["coalesced"] = 1
	}
	if resp != nil && resp.Error == nil {
		args["objective"] = resp.Objective
	}
	s.ledger.Append(obs.LedgerEvent{
		Type: obs.LedgerReqLog, Name: rec.ID,
		Dur:  rec.DurUs,
		Args: args,
	})

	s.mu.Lock()
	s.recent = append(s.recent, rec)
	if over := len(s.recent) - s.cfg.RecentRequests; over > 0 {
		s.recent = append(s.recent[:0], s.recent[over:]...)
	}
	s.mu.Unlock()
	return resp, code
}

// writeJSON renders one finished request over HTTP.
func writeJSON(w http.ResponseWriter, id string, code int, resp *SolveResponse) {
	w.Header().Set(obs.RequestIDHeader, id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleRequests serves the recent-request registry, newest first.
func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]*reqRecord, len(s.recent))
	for i, rec := range s.recent {
		out[len(s.recent)-1-i] = rec
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// handleRequestFlight serves one request's solver flight stream in the same
// JSON shape as the live /solve.json routes (obs.FlightJSONHandler).
func (s *Server) handleRequestFlight(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	var found *reqRecord
	for i := len(s.recent) - 1; i >= 0; i-- {
		if s.recent[i].ID == id {
			found = s.recent[i]
			break
		}
	}
	s.mu.Unlock()
	if found == nil || found.flight == nil {
		http.Error(w, "no flight recording for request "+id, http.StatusNotFound)
		return
	}
	fr := found.flight
	obs.FlightJSONHandler(func() (string, []obs.SolveProgress) {
		return id, fr.Snapshot()
	}).ServeHTTP(w, r)
}
