package schedd

import (
	"container/list"
	"sync"
	"time"

	"insitu/internal/core"
	"insitu/internal/obs"
)

// solved is one cached solve: everything request-agnostic about the answer.
// Responses are built fresh from it per request, and the recommendation,
// explanation, and flight recorder are never mutated after the solve, so
// sharing one solved across concurrent readers is safe.
type solved struct {
	fingerprint string
	rec         *core.Recommendation
	expl        *core.Explanation
	flight      *obs.FlightRecorder
	at          time.Time // when the solve finished
}

// cacheAgeBuckets grade hit ages from sub-second replays to day-old
// campaigns (seconds).
var cacheAgeBuckets = []float64{0.1, 1, 10, 60, 600, 3600, 86400}

// cache is the LRU solution cache, keyed on the scenario's canonical
// fingerprint (plus the explain bit). Hits, misses, evictions, the live
// entry count, and the age-at-hit distribution are reported on the server's
// metrics registry.
type cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	now func() time.Time

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge
	age       *obs.Histogram
}

type cacheEntry struct {
	key string
	val *solved
}

func newCache(capacity int, reg *obs.Registry, now func() time.Time) *cache {
	return &cache{
		cap:       capacity,
		ll:        list.New(),
		m:         make(map[string]*list.Element),
		now:       now,
		hits:      reg.Counter("schedd_cache_hits_total", nil),
		misses:    reg.Counter("schedd_cache_misses_total", nil),
		evictions: reg.Counter("schedd_cache_evictions_total", nil),
		entries:   reg.Gauge("schedd_cache_entries", nil),
		age:       reg.Histogram("schedd_cache_age_seconds", cacheAgeBuckets, nil),
	}
}

// get returns the cached solve and its age. Every call is counted as a hit
// or a miss.
func (c *cache) get(key string) (*solved, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Inc()
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	val := el.Value.(*cacheEntry).val
	age := c.now().Sub(val.at)
	c.hits.Inc()
	c.age.Observe(age.Seconds())
	return val, age, true
}

// put inserts (or refreshes) a solve, evicting the least recently used entry
// past capacity.
func (c *cache) put(key string, val *solved) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.entries.Set(float64(c.ll.Len()))
}
