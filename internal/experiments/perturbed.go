package experiments

import "insitu/internal/runmon"

// PerturbedRunSeed is the fixed seed every consumer of the perturbed corpus
// uses, so the golden snapshot, the runmon detection tests, and any ad-hoc
// replay all synthesize byte-identical ledgers.
const PerturbedRunSeed int64 = 2026

// PerturbedRuns is the perturbed-profile scenario family of the golden
// corpus: one control run whose profiles hold for the whole run, plus
// mid-run perturbations of each monitored stream class — simulation
// step-time inflation, output-bandwidth degradation, and analysis compute
// inflation. The runmon detection tests replay these deterministic runs and
// require the CUSUM detector to flag every perturbed variant within five
// steps of its change point while staying silent on the control.
func PerturbedRuns() []runmon.SynthRun {
	kernels := []runmon.SynthKernel{
		{Name: "rdf", AnalyzeSec: 0.004, OutputSec: 0.002, Every: 2, OutputEvery: 2, Bytes: 4 << 20},
		{Name: "msd", AnalyzeSec: 0.002, OutputSec: 0.001, Every: 4, OutputEvery: 4, Bytes: 1 << 20},
	}
	base := runmon.SynthRun{
		App: "mdsim/perturbed", Steps: 100,
		SimSec: 0.010, ThresholdSec: 2.0, NoiseFrac: 0.02,
		Kernels: kernels,
	}
	variant := func(name, kind string, changeStep int, factor float64) runmon.SynthRun {
		r := base
		r.Name = name
		r.Kind = kind
		r.ChangeStep = changeStep
		r.Factor = factor
		return r
	}
	control := base
	control.Name = "control"
	control.Kind = runmon.PerturbNone
	return []runmon.SynthRun{
		control,
		// Mid-run step-time inflation: the simulation slows to 1.5x at
		// step 50 (grid refinement, contention on the node).
		variant("sim_inflation_1.5x", runmon.PerturbSimTime, 50, 1.5),
		// Output-bandwidth degradation: every output takes 3x longer from
		// step 50 on (storage contention collapses the bandwidth).
		variant("output_degradation_3x", runmon.PerturbOutputBW, 50, 3),
		// Analysis compute inflation: kernels take 2x from step 40 on.
		variant("analysis_inflation_2x", runmon.PerturbAnalysisCT, 40, 2),
	}
}
