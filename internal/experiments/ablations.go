package experiments

import (
	"fmt"
	"strings"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/analysis/mdkernels"
	"insitu/internal/core"
	"insitu/internal/coupling"
	"insitu/internal/sim/md"
)

// MemorySweepRow is one memory-ceiling setting of the mth ablation.
type MemorySweepRow struct {
	MemThreshold int64
	Objective    float64
	CountA4      int
	PeakMemory   int64
}

// MemorySweep is the DESIGN.md ablation on the memory ceiling mth: with the
// Table-5 time threshold held at 20%, the memory budget shrinks from 12 GiB
// to 1 GiB and the memory-hungry A4 (4 GiB fixed + 1 GiB per analysis step)
// is squeezed out while A1-A3 persist — the FLASH-style "memory-intensive
// simulations may have low available free memory" scenario of §3.
func MemorySweep() ([]MemorySweepRow, error) {
	specs := WaterIonsSpecs(16384)
	var rows []MemorySweepRow
	for _, mth := range []int64{12 << 30, 8 << 30, 6 << 30, 4 << 30, 1 << 30} {
		res := core.Resources{Steps: 1000, TimeThreshold: 129.35, MemThreshold: mth}
		rec, err := core.Solve(specs, res, core.SolveOptions{})
		if err != nil {
			return nil, fmt.Errorf("memory sweep mth=%d: %w", mth, err)
		}
		rows = append(rows, MemorySweepRow{
			MemThreshold: mth,
			Objective:    rec.Objective,
			CountA4:      rec.Schedule("A4 msd").Count,
			PeakMemory:   rec.PeakMemory,
		})
	}
	return rows, nil
}

// FormatMemorySweep renders the ablation.
func FormatMemorySweep(rows []MemorySweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: memory ceiling (mth) sweep at the 20%% Table-5 threshold\n")
	fmt.Fprintf(&b, "%-14s %-12s %-8s %-14s\n", "mth (GiB)", "objective", "A4", "peak (GiB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14.1f %-12.1f %-8d %-14.2f\n",
			float64(r.MemThreshold)/(1<<30), r.Objective, r.CountA4,
			float64(r.PeakMemory)/(1<<30))
	}
	return b.String()
}

// CouplingValidation is the end-to-end §5 loop on the real mini-app:
// profile the water+ions kernels, solve the MILP, execute the recommended
// schedule, and compare executed analysis time against the threshold (the
// "% within threshold" methodology of Tables 5-6, measured rather than
// modeled).
type CouplingValidation struct {
	Threshold   time.Duration
	SimTime     time.Duration
	Executed    time.Duration
	Utilization float64 // executed / threshold
	Analyses    int     // total executed analysis steps
	Scheduled   int     // total scheduled analysis steps
}

// ValidateCoupling runs the full pipeline at laptop scale.
func ValidateCoupling(atoms, steps int, thresholdPct float64) (*CouplingValidation, error) {
	if atoms == 0 {
		atoms = 3000
	}
	if steps == 0 {
		steps = 60
	}
	if thresholdPct == 0 {
		thresholdPct = 10
	}
	sys, err := md.NewWaterIons(md.Config{NAtoms: atoms, Seed: 31})
	if err != nil {
		return nil, err
	}
	var kernels []analysis.Kernel
	a1, err := mdkernels.NewHydroniumRDF(sys, mdkernels.RDFConfig{Ranks: 2})
	if err != nil {
		return nil, err
	}
	a3, err := mdkernels.NewVACF(sys, 2)
	if err != nil {
		return nil, err
	}
	a4, err := mdkernels.NewMSD(sys, 2)
	if err != nil {
		return nil, err
	}
	kernels = append(kernels, a1, a3, a4)

	step := func() { sys.Step(0.002) }
	// Estimate sim time per step from a short probe.
	t0 := time.Now()
	for i := 0; i < 5; i++ {
		step()
	}
	simPerStep := time.Since(t0).Seconds() / 5
	res := core.Resources{
		Steps:         steps,
		TimeThreshold: core.PercentThreshold(simPerStep, steps, thresholdPct),
		MemThreshold:  1 << 32,
	}
	rec, _, err := coupling.MeasureAndSolve(kernels, step, 4, steps/10, res)
	if err != nil {
		return nil, err
	}

	byName := map[string]analysis.Kernel{}
	for _, k := range kernels {
		byName[k.Name()] = k
	}
	runner := &coupling.Runner{Step: step, Kernels: byName, Rec: rec, Res: res}
	rep, err := runner.Run()
	if err != nil {
		return nil, err
	}
	out := &CouplingValidation{
		Threshold:   time.Duration(res.TimeThreshold * float64(time.Second)),
		SimTime:     rep.SimTime,
		Executed:    rep.AnalysisTime,
		Utilization: rep.Utilization(res),
		Scheduled:   rec.TotalAnalyses(),
	}
	for _, kr := range rep.Kernels {
		out.Analyses += kr.Analyses
	}
	return out, nil
}

// FormatCouplingValidation renders the validation result.
func FormatCouplingValidation(v *CouplingValidation) string {
	return fmt.Sprintf("Coupling validation (real mini-app): threshold %v, sim %v, executed %v (%.1f%% of threshold), %d/%d analyses executed\n",
		v.Threshold, v.SimTime, v.Executed, v.Utilization*100, v.Analyses, v.Scheduled)
}
