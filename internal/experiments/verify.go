package experiments

import (
	"fmt"
	"strings"
)

// Verification encodes the paper's published values as machine-checkable
// expectations, so `cmd/experiments -verify` produces an attestation table
// instead of eyeballed output.

// Check is one verified claim.
type Check struct {
	Experiment string
	Claim      string
	Pass       bool
	Detail     string
}

// VerifyAll runs the scheduling experiments and checks each against the
// paper's published rows. Measured (wall-clock) experiments are excluded —
// their assertions live in the test suite with noise-tolerant bounds.
func VerifyAll() ([]Check, error) {
	var checks []Check
	add := func(exp, claim string, pass bool, detail string) {
		checks = append(checks, Check{Experiment: exp, Claim: claim, Pass: pass, Detail: detail})
	}

	// Table 5.
	t5, err := Table5()
	if err != nil {
		return nil, err
	}
	wantA4 := []int{4, 2, 1, 0}
	okCounts, okTimes := true, true
	for i, r := range t5 {
		if r.Counts[0] != 10 || r.Counts[1] != 10 || r.Counts[2] != 10 || r.Counts[3] != wantA4[i] {
			okCounts = false
		}
		want := []float64{103.47, 52.79, 27.45, 2.11}[i]
		if d := r.ExecutedTime - want; d > 0.25 || d < -0.25 {
			okTimes = false
		}
	}
	add("Table 5", "A1-A3 x10, A4 = 4/2/1/0 at 20/10/5/1%", okCounts,
		fmt.Sprintf("A4 counts %d %d %d %d", t5[0].Counts[3], t5[1].Counts[3], t5[2].Counts[3], t5[3].Counts[3]))
	add("Table 5", "executed times 103.47/52.79/27.45/2.11 s", okTimes,
		fmt.Sprintf("%.2f %.2f %.2f %.2f", t5[0].ExecutedTime, t5[1].ExecutedTime, t5[2].ExecutedTime, t5[3].ExecutedTime))

	// Table 6.
	t6, err := Table6()
	if err != nil {
		return nil, err
	}
	wantR23 := []int{11, 5, 3, 1, 0}
	ok6 := true
	for i, r := range t6 {
		if r.Counts[0] != 10 || r.Counts[1]+r.Counts[2] != wantR23[i] {
			ok6 = false
		}
	}
	add("Table 6", "R1 x10 everywhere; R2+R3 = 11/5/3/1/0", ok6,
		fmt.Sprintf("R2+R3 %d %d %d %d %d",
			t6[0].Counts[1]+t6[0].Counts[2], t6[1].Counts[1]+t6[1].Counts[2],
			t6[2].Counts[1]+t6[2].Counts[2], t6[3].Counts[1]+t6[3].Counts[2],
			t6[4].Counts[1]+t6[4].Counts[2]))

	// Table 7.
	t7, err := Table7()
	if err != nil {
		return nil, err
	}
	ok7 := len(t7) == 3 && t7[0].NumAnalyses == 12 && t7[1].NumAnalyses == 18 && t7[2].NumAnalyses == 21
	add("Table 7", "12/18/21 analyses as output time halves", ok7,
		fmt.Sprintf("%d %d %d", t7[0].NumAnalyses, t7[1].NumAnalyses, t7[2].NumAnalyses))

	// Table 8.
	t8, err := Table8()
	if err != nil {
		return nil, err
	}
	ok8a := t8[0].Counts == [3]int{1, 10, 10}
	ok8b := t8[1].Counts == [3]int{5, 0, 10}
	add("Table 8", "I1 = (1,10,10)", ok8a, fmt.Sprintf("%v", t8[0].Counts))
	add("Table 8", "I2 = (5,0,10) under priority semantics", ok8b, fmt.Sprintf("%v", t8[1].Counts))

	// Figure 5.
	f5, err := Figure5()
	if err != nil {
		return nil, err
	}
	okF5 := f5[0].CountA4 == 10 && f5[4].CountA4 == 1
	decaying := true
	for i := 1; i < len(f5); i++ {
		if f5[i].CountA4 > f5[i-1].CountA4 {
			decaying = false
		}
	}
	add("Figure 5", "A4 decays 10 -> 1 over 2048 -> 32768 ranks", okF5 && decaying,
		fmt.Sprintf("A4 %d %d %d %d %d", f5[0].CountA4, f5[1].CountA4, f5[2].CountA4, f5[3].CountA4, f5[4].CountA4))

	// Solver runtime envelope.
	minT, maxT, err := SolverRuntime(1)
	if err != nil {
		return nil, err
	}
	add("Solver", "every instance under the paper's 1.36 s ceiling", maxT.Seconds() <= 1.36,
		fmt.Sprintf("%v .. %v", minT, maxT))

	return checks, nil
}

// FormatChecks renders the attestation table.
func FormatChecks(checks []Check) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reproduction attestation (paper-published values vs this build):\n")
	pass := 0
	for _, c := range checks {
		mark := "FAIL"
		if c.Pass {
			mark = "ok"
			pass++
		}
		fmt.Fprintf(&b, "  [%-4s] %-9s %-48s %s\n", mark, c.Experiment, c.Claim, c.Detail)
	}
	fmt.Fprintf(&b, "%d/%d checks passed\n", pass, len(checks))
	return b.String()
}
