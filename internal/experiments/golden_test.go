package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot files")

// TestGoldenSnapshots regenerates every experiment snapshot and compares it
// byte-for-byte against testdata/golden. Run with -update to accept changes:
//
//	go test ./internal/experiments -run TestGoldenSnapshots -update
//
// A diff here means a solver, model, or profile change altered a paper
// experiment's output — intentional changes update the files in the same
// commit, so the review diff shows exactly which rows moved.
func TestGoldenSnapshots(t *testing.T) {
	snaps, err := GoldenSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "golden")
	if *update {
		if err := WriteGolden(dir); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for _, s := range snaps {
		seen[s.Name+".json"] = true
		t.Run(s.Name, func(t *testing.T) {
			got, err := goldenJSON(s)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, s.Name+".json")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("snapshot %s drifted from %s:\n%s\n(run with -update to accept)",
					s.Name, path, diffPreview(want, got))
			}
		})
	}

	// A snapshot that stops being generated must not linger on disk as a
	// stale promise of coverage.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if !seen[f.Name()] {
			t.Errorf("stale golden file %s: no snapshot generates it", f.Name())
		}
	}
}

// TestGoldenRegenerationIsIdempotent pins the -update contract: regenerating
// on an unchanged tree must be byte-identical, or -update would dirty the
// working copy on every run.
func TestGoldenRegenerationIsIdempotent(t *testing.T) {
	a, err := GoldenSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	b, err := GoldenSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("snapshot count changed between runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ja, err := goldenJSON(a[i])
		if err != nil {
			t.Fatal(err)
		}
		jb, err := goldenJSON(b[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Errorf("snapshot %s is not deterministic across regenerations", a[i].Name)
		}
	}
}

// diffPreview renders the first divergent region of two byte slices, enough
// context to see which field moved without dumping whole files.
func diffPreview(want, got []byte) string {
	i := 0
	for i < len(want) && i < len(got) && want[i] == got[i] {
		i++
	}
	start := i - 120
	if start < 0 {
		start = 0
	}
	clip := func(b []byte) []byte {
		end := i + 120
		if end > len(b) {
			end = len(b)
		}
		if start > len(b) {
			return nil
		}
		return b[start:end]
	}
	return fmt.Sprintf("--- want (around byte %d)\n%s\n--- got\n%s", i, clip(want), clip(got))
}
