// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each driver returns typed rows plus a formatted text
// rendering; cmd/experiments prints them all and bench_test.go wraps each in
// a testing.B benchmark.
//
// The analysis cost profiles used by the scheduling tables are the paper's
// own published measurements (they are the *inputs* of the optimization
// model; the reproduced artifact is the solver's *output* — the recommended
// frequencies). Where the paper gives only totals, per-analysis costs are
// inferred and the inference is documented inline and in EXPERIMENTS.md.
// Laptop-scale experiments (Table 4, Figures 2 and 4) instead measure the
// mini-apps in this repository directly.
package experiments

import (
	"insitu/internal/core"
	"insitu/internal/perfmodel"
)

// Paper-published timings for the 100M-atom water+ions problem (§5.3.2,
// §5.3.3). Simulation seconds per step by rank count.
var waterIonsSimSecPerStep = map[int]float64{
	2048:  4.16,
	4096:  2.12,
	8192:  1.08,
	16384: 0.61,
	32768: 0.40,
}

// WaterIonsSimSecPerStep returns the simulation time per step at the given
// rank count, interpolating the paper's five published points in log-log
// space (strong-scaling curves are near power laws; problem size is fixed
// at 100M atoms).
func WaterIonsSimSecPerStep(ranks int) float64 {
	if v, ok := waterIonsSimSecPerStep[ranks]; ok {
		return v
	}
	in, err := perfmodel.FromMap(waterIonsSimSecPerStep)
	if err != nil {
		// The static table is always valid; reaching here means a
		// programming error.
		panic(err)
	}
	return in.Predict(float64(ranks))
}

// WaterIonsSpecs returns the A1-A4 analysis specs for the 100M-atom
// water+ions problem at the given rank count.
//
// Calibration (from Table 5, 16384 ranks): A1+A2+A3 at frequency 10 total
// 2.11 s, so ~0.0703 s per analysis each; each increment of the A4 count
// adds 25.34 s of executed time (103.47-52.79 = 2x25.34, 52.79-27.45 =
// 25.34). The paper's solver schedules A4 4/2/1/0 times at 20/10/5/1%
// thresholds, which implies its *predicted* A4 cost was slightly higher than
// the executed 25.34 s (25.9 s reproduces all four counts); the ~2% gap is
// within the <6% prediction error of §4. A1-A3 strong-scale ~1/ranks from
// the 16384-rank baseline; A4 does not scale (§5.3.3: "MSD analyses (A4)
// does not scale and takes similar times on all core counts"). A4's
// predicted cost is carried almost entirely in CT because the paper couples
// every A4 analysis step with its (expensive) output.
func WaterIonsSpecs(ranks int) []core.AnalysisSpec {
	scale := 16384.0 / float64(ranks)
	return []core.AnalysisSpec{
		{Name: "A1 hydronium rdf", CT: 0.0653 * scale, OT: 0.005 * scale, FM: 64 << 20, CM: 16 << 20, OM: 8 << 20, MinInterval: 100},
		{Name: "A2 ion rdf", CT: 0.0653 * scale, OT: 0.005 * scale, FM: 64 << 20, CM: 16 << 20, OM: 8 << 20, MinInterval: 100},
		{Name: "A3 vacf", CT: 0.0654 * scale, OT: 0.005 * scale, FM: 128 << 20, CM: 16 << 20, OM: 8 << 20, MinInterval: 100},
		{Name: "A4 msd", CT: 25.85, OT: 0.05, FM: 4 << 30, IM: 1 << 20, CM: 1 << 30, OM: 512 << 20, MinInterval: 100},
	}
}

// WaterIonsExecutedCost returns the *executed* per-analysis cost (seconds)
// used to compute the "% within threshold" column: the paper's measured
// 0.0703 s for A1-A3 (at 16384 ranks, scaled like the predictions) and
// 25.34 s for A4.
func WaterIonsExecutedCost(name string, ranks int) float64 {
	scale := 16384.0 / float64(ranks)
	switch name {
	case "A1 hydronium rdf", "A2 ion rdf":
		return 0.0703 * scale
	case "A3 vacf":
		return 0.0704 * scale
	case "A4 msd":
		return 25.34
	}
	return 0
}

// RhodopsinSpecs returns the R1-R3 specs for the 1B-atom rhodopsin problem
// on 32768 ranks. The paper publishes the per-analysis-plus-output times
// directly (§5.3.4): 0.003 s, 17.193 s, 17.194 s. Because each analysis step
// was "followed by an output step", the cost is carried per analysis step
// (CT) with a small residual OT.
func RhodopsinSpecs() []core.AnalysisSpec {
	return []core.AnalysisSpec{
		{Name: "R1 radius of gyration", CT: 0.0029, OT: 0.0001, FM: 1 << 20, CM: 1 << 18, OM: 1 << 16, MinInterval: 100},
		{Name: "R2 membrane histogram", CT: 17.143, OT: 0.05, FM: 512 << 20, CM: 256 << 20, OM: 128 << 20, MinInterval: 100},
		{Name: "R3 protein histogram", CT: 17.144, OT: 0.05, FM: 512 << 20, CM: 256 << 20, OM: 128 << 20, MinInterval: 100},
	}
}

// RhodopsinSimSeconds is the paper's 1000-step simulation time on 32768
// ranks without in-situ analysis.
const RhodopsinSimSeconds = 5163.03

// RhodopsinOutputSeconds is the paper's total simulation-output time at the
// default frequency (10 outputs of 91 GB via MPI parallel I/O): 200.6 s.
const RhodopsinOutputSeconds = 200.6

// RhodopsinOutputBytes is the data volume of one simulation output step.
const RhodopsinOutputBytes = int64(91) << 30

// FlashSpecs returns the F1-F3 specs for the FLASH Sedov problem on 16384
// ranks. Analysis times per step are published (§5.3.6): 3.5 s, 1.25 s,
// 2.3 ms. Output times are inferred so the equal-weight row of Table 8
// reproduces exactly: with F2+F3 pinned at frequency 10, the 43.5 s budget
// admits exactly one F1 step iff ot(F1) is in (23.97, 27.47]; we use 24 s
// (F1 writes the full vorticity field). F2 writes norms with a small
// output; F3 output is negligible.
func FlashSpecs() []core.AnalysisSpec {
	return []core.AnalysisSpec{
		{Name: "F1 vorticity", CT: 3.5, OT: 24.0, FM: 256 << 20, CM: 128 << 20, OM: 2 << 30, MinInterval: 100},
		{Name: "F2 L1 error norm", CT: 1.25, OT: 3.2, FM: 16 << 20, CM: 1 << 20, OM: 1 << 20, MinInterval: 100},
		{Name: "F3 L2 error norm", CT: 0.0023, OT: 0.0005, FM: 1 << 20, CM: 1 << 18, OM: 1 << 16, MinInterval: 100},
	}
}

// FlashSimSecPerStep is the paper's FLASH Sedov simulation time per step on
// 16384 ranks.
const FlashSimSecPerStep = 0.87
