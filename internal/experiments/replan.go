package experiments

import (
	"insitu/internal/core"
	"insitu/internal/replan"
)

// ReplanScenarios is the closed-loop replan corpus: the perturbed-run
// families of PerturbedRuns, replayed through the replan.Simulate driver so
// the adapted-vs-static realized value can be pinned. Each scenario solves
// an up-front schedule from believed profiles, then executes against a truth
// that drifts mid-run; the adaptive variant replans from the runmon alerts.
//
// The corpus properties the golden snapshot and the replan tests assert:
//
//   - control: zero replans, adapted value == static value;
//   - sim_inflation: the simulation slows 1.5x at step 50, so in
//     percent-threshold mode the realized budget grows — the adapted run
//     must convert it into strictly more analyses;
//   - bandwidth_degradation: outputs cost 3x from step 50 while the budget
//     stays put — the static run blows the threshold and is truncated, the
//     adapted run re-fits and must end strictly ahead;
//   - analysis_inflation: kernels cost 2x from step 40 — adapted must be at
//     least as good, never worse, and never over budget.
func ReplanScenarios() []replan.Scenario {
	// Three weighted kernels over a 100-step run, budget-limited (not
	// interval-limited) at a 10% threshold so the solver has real slack to
	// reallocate: full-rate schedules would cost ~5x the budget.
	specs := []core.AnalysisSpec{
		{Name: "rdf", CT: 0.002, OM: 2 << 20, IM: 1 << 20, Weight: 3, MinInterval: 4},
		{Name: "vacf", CT: 0.0015, OM: 2 << 20, IM: 1 << 20, Weight: 2, MinInterval: 5},
		{Name: "msd", CT: 0.001, OM: 1 << 20, IM: 1 << 20, Weight: 1, MinInterval: 5},
	}
	base := replan.Scenario{
		Specs:         specs,
		Steps:         100,
		SimSec:        0.010,
		BudgetPercent: 10,
		MemThreshold:  24 << 20,
		Bandwidth:     1 << 30,
		NoiseFrac:     0.02,
		Seed:          PerturbedRunSeed,
		Cooldown:      5,
		Headroom:      0.98,
	}
	variant := func(name, kind string, changeStep int, factor float64) replan.Scenario {
		sc := base
		sc.Name = name
		sc.Perturb = kind
		sc.ChangeStep = changeStep
		sc.Factor = factor
		return sc
	}
	control := base
	control.Name = "control"
	return []replan.Scenario{
		control,
		variant("sim_inflation_1.5x", replan.PerturbSimTime, 50, 1.5),
		variant("bandwidth_degradation_3x", replan.PerturbOutputBW, 50, 3),
		variant("analysis_inflation_2x", replan.PerturbAnalysisCT, 40, 2),
	}
}
