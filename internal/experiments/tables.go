package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"insitu/internal/analysis/mdkernels"
	"insitu/internal/core"
	"insitu/internal/iosim"
	"insitu/internal/sim/md"
	"insitu/internal/trace"
)

// ---------------------------------------------------------------------------
// Table 4: post-processing vs in-situ MSD.
// ---------------------------------------------------------------------------

// Table4Row compares the post-processing and in-situ paths for one system
// size, all measured on the real mini-app in this repository.
type Table4Row struct {
	Atoms       int
	ReadTime    time.Duration // time to read the trajectory back from disk
	PostProcess time.Duration // serial MSD over the frames read back
	InSitu      time.Duration // in-situ MSD during the simulation
}

// Table4Config sizes the experiment; the paper ran 1000 steps with output
// every 100 — at laptop scale the defaults shrink both proportionally.
type Table4Config struct {
	Atoms       []int // system sizes (default paper's 12544 and a scaled second size)
	Steps       int   // simulation steps (default 120)
	OutputEvery int   // trajectory/analysis cadence (default 20)
	Dir         string
}

func (c Table4Config) withDefaults() Table4Config {
	if len(c.Atoms) == 0 {
		c.Atoms = []int{12544, 50176}
	}
	if c.Steps == 0 {
		c.Steps = 120
	}
	if c.OutputEvery == 0 {
		c.OutputEvery = 20
	}
	if c.Dir == "" {
		c.Dir = os.TempDir()
	}
	return c
}

// Table4 runs the simulation twice per system size: once writing a
// trajectory (the post-processing path then reads it back and analyzes
// serially) and once analyzing MSD in-situ.
func Table4(cfg Table4Config) ([]Table4Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table4Row
	for _, atoms := range cfg.Atoms {
		row, err := table4One(atoms, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table4One(atoms int, cfg Table4Config) (Table4Row, error) {
	row := Table4Row{Atoms: atoms}

	// Pass 1: simulate and dump trajectory frames.
	sys, err := md.NewWaterIons(md.Config{NAtoms: atoms, Seed: 11})
	if err != nil {
		return row, err
	}
	path := filepath.Join(cfg.Dir, fmt.Sprintf("table4-%d.traj", atoms))
	defer os.Remove(path)
	w, err := trace.NewWriter(path, atoms, md.FrameFields)
	if err != nil {
		return row, err
	}
	for s := 1; s <= cfg.Steps; s++ {
		sys.Step(0.002)
		if s%cfg.OutputEvery == 0 {
			if err := w.WriteFrame(int64(s), sys.Frame()); err != nil {
				return row, err
			}
		}
	}
	if err := w.Close(); err != nil {
		return row, err
	}

	// Post-processing path: read the trajectory back, then compute MSD
	// serially against the first frame (the paper's "serial custom
	// post-processing tool").
	t0 := time.Now()
	r, err := trace.OpenReader(path)
	if err != nil {
		return row, err
	}
	var frames [][]float32
	for {
		_, data, err := r.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			r.Close()
			return row, err
		}
		frames = append(frames, data)
	}
	r.Close()
	row.ReadTime = time.Since(t0)

	t1 := time.Now()
	if len(frames) > 0 {
		ref := frames[0]
		for _, f := range frames[1:] {
			sum := 0.0
			for i := 0; i < atoms; i++ {
				dx := float64(f[6*i] - ref[6*i])
				dy := float64(f[6*i+1] - ref[6*i+1])
				dz := float64(f[6*i+2] - ref[6*i+2])
				sum += dx*dx + dy*dy + dz*dz
			}
			_ = sum / float64(atoms)
		}
	}
	row.PostProcess = time.Since(t1)

	// In-situ path: fresh simulation with the MSD kernel embedded.
	sys2, err := md.NewWaterIons(md.Config{NAtoms: atoms, Seed: 11})
	if err != nil {
		return row, err
	}
	msd, err := mdkernels.NewMSD(sys2, 4)
	if err != nil {
		return row, err
	}
	if _, err := msd.Setup(); err != nil {
		return row, err
	}
	for s := 1; s <= cfg.Steps; s++ {
		sys2.Step(0.002)
		if s%cfg.OutputEvery == 0 {
			t2 := time.Now()
			if _, err := msd.Analyze(s); err != nil {
				return row, err
			}
			row.InSitu += time.Since(t2)
		}
	}
	return row, nil
}

// FormatTable4 renders rows in the paper's layout.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: MSD analysis time, post-processing vs in-situ\n")
	fmt.Fprintf(&b, "%-12s %-14s %-20s %-16s\n", "atoms", "read (s)", "post-process (s)", "in-situ (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %-14.4f %-20.4f %-16.4f\n",
			r.Atoms, r.ReadTime.Seconds(), r.PostProcess.Seconds(), r.InSitu.Seconds())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 5: threshold (% of simulation time) sweep for water+ions.
// ---------------------------------------------------------------------------

// Table5Row is one threshold setting of Table 5.
type Table5Row struct {
	Percent   float64
	Threshold float64 // seconds
	Counts    [4]int  // A1..A4 frequencies
	// ExecutedTime is the modeled executed analyses time (paper column 6).
	ExecutedTime float64
	// WithinPct is ExecutedTime/Threshold x 100 (paper column 7).
	WithinPct float64
	SolveTime time.Duration
}

// Table5 sweeps the threshold over 20/10/5/1% of the 100M-atom simulation
// time on 16384 ranks, solving the scheduling MILP for each. The §5.3.2 run
// took 646.78 s for 1000 steps, so the thresholds are 129.35, 64.69, 32.34,
// and 6.46 s.
func Table5() ([]Table5Row, error) { return table5(core.SolveOptions{}) }

// table5 is Table5 with explicit solver options (SolverRuntime widens the
// search pool through it; the schedule is identical at any width).
func table5(opts core.SolveOptions) ([]Table5Row, error) {
	const ranks = 16384
	const simPerStep = 646.78 / 1000
	specs := WaterIonsSpecs(ranks)
	var rows []Table5Row
	for _, pct := range []float64{20, 10, 5, 1} {
		res := core.Resources{
			Steps:         1000,
			TimeThreshold: core.PercentThreshold(simPerStep, 1000, pct),
			MemThreshold:  12 << 30,
		}
		rec, err := core.Solve(specs, res, opts)
		if err != nil {
			return nil, fmt.Errorf("table5 pct=%g: %w", pct, err)
		}
		row := Table5Row{Percent: pct, Threshold: res.TimeThreshold, SolveTime: rec.SolveTime}
		for i, s := range specs {
			c := rec.Schedule(s.Name).Count
			row.Counts[i] = c
			row.ExecutedTime += WaterIonsExecutedCost(s.Name, ranks) * float64(c)
		}
		row.WithinPct = row.ExecutedTime / res.TimeThreshold * 100
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable5 renders rows in the paper's layout.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: threshold sweep, 100M-atom water+ions, 16384 ranks, 1000 steps\n")
	fmt.Fprintf(&b, "%-18s %-5s %-5s %-5s %-5s %-16s %-14s\n",
		"threshold% (s)", "A1", "A2", "A3", "A4", "analyses t (s)", "% within thr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3.0f (%-10.2f)  %-5d %-5d %-5d %-5d %-16.2f %-14.2f\n",
			r.Percent, r.Threshold, r.Counts[0], r.Counts[1], r.Counts[2], r.Counts[3],
			r.ExecutedTime, r.WithinPct)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 6: total-threshold sweep for rhodopsin.
// ---------------------------------------------------------------------------

// Table6Row is one total-threshold setting of Table 6.
type Table6Row struct {
	Threshold float64
	Counts    [3]int // R1..R3
	WithinPct float64
	SolveTime time.Duration
}

// Table6 sweeps the user-specified total threshold for the 1B-atom
// rhodopsin problem on 32768 ranks.
func Table6() ([]Table6Row, error) { return table6(core.SolveOptions{}) }

// table6 is Table6 with explicit solver options; see table5.
func table6(opts core.SolveOptions) ([]Table6Row, error) {
	specs := RhodopsinSpecs()
	var rows []Table6Row
	for _, th := range []float64{200, 100, 60, 20, 10} {
		res := core.Resources{Steps: 1000, TimeThreshold: th, MemThreshold: 12 << 30}
		rec, err := core.Solve(specs, res, opts)
		if err != nil {
			return nil, fmt.Errorf("table6 th=%g: %w", th, err)
		}
		row := Table6Row{Threshold: th, SolveTime: rec.SolveTime}
		for i, s := range specs {
			row.Counts[i] = rec.Schedule(s.Name).Count
		}
		row.WithinPct = rec.TotalTime / th * 100
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable6 renders rows in the paper's layout.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: total threshold sweep, 1B-atom rhodopsin, 32768 ranks, 1000 steps\n")
	fmt.Fprintf(&b, "%-18s %-5s %-5s %-5s %-14s\n", "threshold (s)", "R1", "R2", "R3", "% within thr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18.0f %-5d %-5d %-5d %-14.2f\n",
			r.Threshold, r.Counts[0], r.Counts[1], r.Counts[2], r.WithinPct)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 7: trading simulation-output time for analysis threshold.
// ---------------------------------------------------------------------------

// Table7Row is one simulation-output setting of Table 7.
type Table7Row struct {
	OutputTime  float64 // total simulation output time (s)
	Threshold   float64 // analysis threshold (s)
	NumAnalyses int     // total feasible analyses
}

// Table7 reproduces the §5.3.5 trade: the user halves the simulation output
// frequency, and the saved output time is granted to the analysis threshold
// (the row sums are constant at 250.6 s). Each row re-solves the rhodopsin
// schedule with the enlarged threshold.
func Table7() ([]Table7Row, error) {
	specs := RhodopsinSpecs()
	const budget = RhodopsinOutputSeconds + 50 // 250.6 s: fixed output+analysis budget
	var rows []Table7Row
	outTime := RhodopsinOutputSeconds
	for i := 0; i < 3; i++ {
		th := budget - outTime
		res := core.Resources{Steps: 1000, TimeThreshold: th, MemThreshold: 12 << 30}
		rec, err := core.Solve(specs, res, core.SolveOptions{})
		if err != nil {
			return nil, fmt.Errorf("table7 out=%g: %w", outTime, err)
		}
		rows = append(rows, Table7Row{
			OutputTime:  outTime,
			Threshold:   th,
			NumAnalyses: rec.TotalAnalyses(),
		})
		outTime /= 2
	}
	return rows, nil
}

// Table7NVRAM extends the §5.3.5 what-if ("decrease in output time is also
// possible by using a higher bandwidth storage like NVRAM"): the same ten
// 91 GB outputs go to a burst buffer instead of GPFS, the saved time raises
// the analysis threshold, and the solver packs in more analyses.
func Table7NVRAM() (Table7Row, error) {
	bb := iosim.NewBurstBuffer(1 << 41) // 2 TiB aggregate NVRAM
	outTime := bb.SustainedOutputTime(RhodopsinOutputBytes, 10, 500*time.Second, 32768).Seconds()
	th := RhodopsinOutputSeconds + 50 - outTime
	res := core.Resources{Steps: 1000, TimeThreshold: th, MemThreshold: 12 << 30}
	rec, err := core.Solve(RhodopsinSpecs(), res, core.SolveOptions{})
	if err != nil {
		return Table7Row{}, err
	}
	return Table7Row{OutputTime: outTime, Threshold: th, NumAnalyses: rec.TotalAnalyses()}, nil
}

// FormatTable7 renders rows in the paper's layout.
func FormatTable7(rows []Table7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7: simulation output time vs analysis threshold, 1B-atom rhodopsin\n")
	fmt.Fprintf(&b, "%-18s %-16s %-14s\n", "output time (s)", "threshold (s)", "# analyses")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18.1f %-16.1f %-14d\n", r.OutputTime, r.Threshold, r.NumAnalyses)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 8: analysis importance (weights) for FLASH.
// ---------------------------------------------------------------------------

// Table8Row is one weight assignment of Table 8. Counts holds the
// lexicographic-priority solution (which reproduces the paper's rows
// exactly); CountsLinear holds the linear-objective |A| + Σ w|C| solution
// for comparison.
type Table8Row struct {
	Label        string
	Weights      [3]float64
	Counts       [3]int // F1..F3 frequencies, priority semantics (paper match)
	CountsLinear [3]int // F1..F3 frequencies, linear-weight semantics
}

// Table8 solves the FLASH Sedov schedule under the two §5.3.6 weight
// assignments, I1 = (1,1,1) and I2 = (2,1,2), with a 5% threshold of the
// 870 s simulation (43.5 s). The paper's I2 row (F1=5, F2=0, F3=10) is
// dominated under a linear objective by the I1 schedule (which stays
// feasible — feasibility is weight-independent), so the paper's "importance"
// must act as a strict priority: SolveLexicographic reproduces both rows
// exactly, and the linear-objective counts are reported alongside.
func Table8() ([]Table8Row, error) {
	threshold := core.PercentThreshold(FlashSimSecPerStep, 1000, 5)
	res := core.Resources{Steps: 1000, TimeThreshold: threshold, MemThreshold: 12 << 30}
	var rows []Table8Row
	for _, w := range []struct {
		label   string
		weights [3]float64
	}{
		{"I1", [3]float64{1, 1, 1}},
		{"I2", [3]float64{2, 1, 2}},
	} {
		specs := FlashSpecs()
		for i := range specs {
			specs[i].Weight = w.weights[i]
		}
		lex, err := core.SolveLexicographic(specs, res, core.SolveOptions{})
		if err != nil {
			return nil, fmt.Errorf("table8 %s (lexicographic): %w", w.label, err)
		}
		lin, err := core.Solve(specs, res, core.SolveOptions{})
		if err != nil {
			return nil, fmt.Errorf("table8 %s (linear): %w", w.label, err)
		}
		row := Table8Row{Label: w.label, Weights: w.weights}
		for i, s := range specs {
			row.Counts[i] = lex.Schedule(s.Name).Count
			row.CountsLinear[i] = lin.Schedule(s.Name).Count
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable8 renders rows in the paper's layout.
func FormatTable8(rows []Table8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 8: FLASH Sedov analysis frequencies under importance weights (5%% threshold)\n")
	fmt.Fprintf(&b, "%-6s %-12s %-22s %-22s\n", "run", "weights", "priority (paper)", "linear objective")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s (%g,%g,%g)%4s F1=%-3d F2=%-3d F3=%-6d F1=%-3d F2=%-3d F3=%-3d\n",
			r.Label, r.Weights[0], r.Weights[1], r.Weights[2], "",
			r.Counts[0], r.Counts[1], r.Counts[2],
			r.CountsLinear[0], r.CountsLinear[1], r.CountsLinear[2])
	}
	return b.String()
}
