package experiments

import (
	"fmt"
	"strings"
	"time"

	"insitu/internal/analysis"
	"insitu/internal/analysis/amrkernels"
	"insitu/internal/analysis/mdkernels"
	"insitu/internal/comm"
	"insitu/internal/core"
	"insitu/internal/machine"
	"insitu/internal/perfmodel"
	"insitu/internal/sim/amr"
	"insitu/internal/sim/md"
)

// ---------------------------------------------------------------------------
// Figure 2: bilinear-interpolation prediction error.
// ---------------------------------------------------------------------------

// Figure2Result reports the maximum relative prediction errors of the §4
// performance model: computation time interpolated over (problem size x
// worker count) measured on the MD mini-app, and communication time
// interpolated over (message size x network diameter) against the torus
// cost model. The paper reports <6% and <8% respectively.
type Figure2Result struct {
	ComputeMaxErr float64
	CommMaxErr    float64
	ComputeProbes int
	CommProbes    int
}

// Figure2Config sizes the measurement.
type Figure2Config struct {
	// Sizes are the problem-size grid samples (atoms). Default {2000, 4000,
	// 8000}; probes run at the geometric intermediates.
	Sizes []int
	// StepsPerSample is how many MD steps are averaged per measurement.
	StepsPerSample int
}

func (c Figure2Config) withDefaults() Figure2Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{2000, 4000, 8000}
	}
	if c.StepsPerSample == 0 {
		c.StepsPerSample = 6
	}
	return c
}

// Figure2 builds the two interpolators from grid samples and probes them at
// off-grid points.
func Figure2(cfg Figure2Config) (*Figure2Result, error) {
	cfg = cfg.withDefaults()
	out := &Figure2Result{}

	// Computation: measure MD step time per atom count; the y-variable
	// (process count in the paper) is the analysis rank count of an RDF
	// kernel, whose compute time scales with both.
	ranksGrid := []int{1, 2, 4}
	tab := perfmodel.NewTable("rdf-compute")
	measure := func(atoms, ranks int) (float64, error) {
		sys, err := md.NewWaterIons(md.Config{NAtoms: atoms, Seed: 17})
		if err != nil {
			return 0, err
		}
		k, err := mdkernels.NewHydroniumRDF(sys, mdkernels.RDFConfig{Bins: 64, Ranks: ranks})
		if err != nil {
			return 0, err
		}
		if _, err := k.Setup(); err != nil {
			return 0, err
		}
		sys.PrepareNeighbors()
		best := time.Duration(1 << 62)
		for rep := 0; rep < cfg.StepsPerSample; rep++ {
			t0 := time.Now()
			if _, err := k.Analyze(rep); err != nil {
				return 0, err
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best.Seconds(), nil
	}
	for _, n := range cfg.Sizes {
		for _, r := range ranksGrid {
			v, err := measure(n, r)
			if err != nil {
				return nil, err
			}
			tab.Add(float64(n), float64(r), v)
		}
	}
	pred, err := tab.Build()
	if err != nil {
		return nil, err
	}
	// Probe at intermediate sizes.
	for i := 0; i+1 < len(cfg.Sizes); i++ {
		probeN := (cfg.Sizes[i] + cfg.Sizes[i+1]) / 2
		for _, r := range ranksGrid {
			actual, err := measure(probeN, r)
			if err != nil {
				return nil, err
			}
			e := perfmodel.RelError(pred.Predict(float64(probeN), float64(r)), actual)
			if e > out.ComputeMaxErr {
				out.ComputeMaxErr = e
			}
			out.ComputeProbes++
		}
	}

	// Communication: the ground truth is the torus collective model; the
	// y-variable is the network diameter of Mira partitions, exactly as §4
	// prescribes. The model couples rank count to diameter through the
	// partition shape, so the surface is not affine and interpolation has
	// real error.
	nm := comm.BGQNetwork()
	mira := machine.Mira()
	part := func(nodes int) (ranks, diam int, err error) {
		p, err := mira.Partition(nodes)
		if err != nil {
			return 0, 0, err
		}
		return p.Ranks, p.Diameter(), nil
	}
	gridNodes := []int{128, 512, 2048, 8192}
	bytesGrid := []int64{1 << 10, 1 << 16, 1 << 20}
	ctab := perfmodel.NewTable("allreduce-comm")
	for _, nodes := range gridNodes {
		ranks, diam, err := part(nodes)
		if err != nil {
			return nil, err
		}
		for _, by := range bytesGrid {
			ctab.Add(float64(by), float64(diam), nm.AllreduceTime(by, ranks, diam).Seconds())
		}
	}
	cpred, err := ctab.Build()
	if err != nil {
		return nil, err
	}
	for _, nodes := range []int{256, 1024, 4096} {
		ranks, diam, err := part(nodes)
		if err != nil {
			return nil, err
		}
		for _, by := range []int64{1 << 13, 1 << 18} {
			actual := nm.AllreduceTime(by, ranks, diam).Seconds()
			e := perfmodel.RelError(cpred.Predict(float64(by), float64(diam)), actual)
			if e > out.CommMaxErr {
				out.CommMaxErr = e
			}
			out.CommProbes++
		}
	}
	return out, nil
}

// FormatFigure2 renders the result next to the paper's claims.
func FormatFigure2(r *Figure2Result) string {
	return fmt.Sprintf("Figure 2: bilinear interpolation prediction error\n"+
		"  compute: max %.2f%% over %d probes (paper: <6%%)\n"+
		"  comm:    max %.2f%% over %d probes (paper: <8%%)\n",
		r.ComputeMaxErr*100, r.ComputeProbes, r.CommMaxErr*100, r.CommProbes)
}

// ---------------------------------------------------------------------------
// Figure 4: relative time/memory profile of all analyses.
// ---------------------------------------------------------------------------

// Figure4Row is the measured cost profile of one kernel at laptop scale.
type Figure4Row struct {
	Name    string
	Time    time.Duration // compute time per analysis step
	Memory  int64         // fixed + per-analysis memory footprint
	RelTime float64       // normalized to the most expensive kernel
	RelMem  float64
}

// Figure4Entry pairs one of the paper's ten kernels with the stepper of the
// mini-app it is attached to.
type Figure4Entry struct {
	Kernel analysis.Kernel
	Step   func()
}

// Figure4Kernels constructs the full ten-kernel roster of the paper's
// Figure 4 (A1-A4 on water+ions, R1-R3 on rhodopsin, F1-F3 on FLASH Sedov)
// at the given atom count without measuring anything. Figure4 measures this
// roster; the golden-snapshot harness pins its composition.
func Figure4Kernels(atoms int) ([]Figure4Entry, error) {
	if atoms == 0 {
		atoms = 4000
	}
	water, err := md.NewWaterIons(md.Config{NAtoms: atoms, Seed: 23})
	if err != nil {
		return nil, err
	}
	rhodo, err := md.NewRhodopsin(md.Config{NAtoms: atoms, Seed: 23})
	if err != nil {
		return nil, err
	}
	sedov, err := amr.NewSedov(amr.Config{BlocksX: 3, NB: 8})
	if err != nil {
		return nil, err
	}

	waterStep := func() { water.Step(0.002) }
	rhodoStep := func() { rhodo.Step(0.002) }
	sedovStep := func() { sedov.StepCFL() }

	var entries []Figure4Entry
	add := func(k analysis.Kernel, err error, step func()) error {
		if err != nil {
			return err
		}
		entries = append(entries, Figure4Entry{k, step})
		return nil
	}
	a1, err := mdkernels.NewHydroniumRDF(water, mdkernels.RDFConfig{Ranks: 2})
	if err := add(a1, err, waterStep); err != nil {
		return nil, err
	}
	a2, err := mdkernels.NewIonRDF(water, mdkernels.RDFConfig{Ranks: 2})
	if err := add(a2, err, waterStep); err != nil {
		return nil, err
	}
	a3, err := mdkernels.NewVACF(water, 2)
	if err := add(a3, err, waterStep); err != nil {
		return nil, err
	}
	a4, err := mdkernels.NewMSD(water, 2)
	if err := add(a4, err, waterStep); err != nil {
		return nil, err
	}
	r1, err := mdkernels.NewGyration(rhodo, 2)
	if err := add(r1, err, rhodoStep); err != nil {
		return nil, err
	}
	r2, err := mdkernels.NewMembraneHist(rhodo, mdkernels.HistConfig{Ranks: 2})
	if err := add(r2, err, rhodoStep); err != nil {
		return nil, err
	}
	r3, err := mdkernels.NewProteinHist(rhodo, mdkernels.HistConfig{Ranks: 2})
	if err := add(r3, err, rhodoStep); err != nil {
		return nil, err
	}
	f1, err := amrkernels.NewVorticity(sedov, 2)
	if err := add(f1, err, sedovStep); err != nil {
		return nil, err
	}
	f2, err := amrkernels.NewL1Norm(sedov, 2)
	if err := add(f2, err, sedovStep); err != nil {
		return nil, err
	}
	f3, err := amrkernels.NewL2Norm(sedov, 2)
	if err := add(f3, err, sedovStep); err != nil {
		return nil, err
	}
	return entries, nil
}

// Figure4 measures all ten analyses of the paper on the mini-apps and
// reports their relative execution-time and memory profiles.
func Figure4(atoms int) ([]Figure4Row, error) {
	entries, err := Figure4Kernels(atoms)
	if err != nil {
		return nil, err
	}
	var rows []Figure4Row
	var maxT time.Duration
	var maxM int64
	for _, e := range entries {
		costs, err := analysis.Measure(e.Kernel, e.Step, 4, 2)
		if err != nil {
			return nil, err
		}
		// Project the footprint at the paper's analysis interval of 100
		// steps: per-simulation-step allocations (im) accumulate between
		// outputs, which is what makes MSD the memory-heavy outlier in the
		// paper's Figure 4.
		mem := costs.FM + 100*costs.IM + costs.CM + costs.OM
		rows = append(rows, Figure4Row{Name: costs.Kernel, Time: costs.CT, Memory: mem})
		if costs.CT > maxT {
			maxT = costs.CT
		}
		if mem > maxM {
			maxM = mem
		}
	}
	for i := range rows {
		if maxT > 0 {
			rows[i].RelTime = float64(rows[i].Time) / float64(maxT)
		}
		if maxM > 0 {
			rows[i].RelMem = float64(rows[i].Memory) / float64(maxM)
		}
	}
	return rows, nil
}

// FormatFigure4 renders the profile scatter as a table.
func FormatFigure4(rows []Figure4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: relative execution time and memory profiles (laptop-scale mini-apps)\n")
	fmt.Fprintf(&b, "%-26s %-14s %-12s %-10s %-10s\n", "analysis", "time/step", "memory (B)", "rel time", "rel mem")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %-14v %-12d %-10.3f %-10.3f\n", r.Name, r.Time, r.Memory, r.RelTime, r.RelMem)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 5: strong scaling of the moldable-job schedule.
// ---------------------------------------------------------------------------

// Figure5Row is one rank count of the Figure-5 stacked bar chart.
type Figure5Row struct {
	Ranks     int
	SimPerSec float64 // simulation seconds per step
	Threshold float64 // 10% of simulation time
	CountA1   int
	CountA2   int
	CountA4   int
	TimeA1    float64 // executed analysis seconds over the run
	TimeA2    float64
	TimeA4    float64
}

// Figure5 schedules A1, A2, A4 for the 100M-atom water+ions problem at 2048
// to 32768 ranks with a 10% threshold, the paper's moldable-jobs scenario.
func Figure5() ([]Figure5Row, error) {
	var rows []Figure5Row
	for _, ranks := range []int{2048, 4096, 8192, 16384, 32768} {
		simPerStep := WaterIonsSimSecPerStep(ranks)
		all := WaterIonsSpecs(ranks)
		specs := []core.AnalysisSpec{all[0], all[1], all[3]} // A1, A2, A4
		res := core.Resources{
			Steps:         1000,
			TimeThreshold: core.PercentThreshold(simPerStep, 1000, 10),
			MemThreshold:  12 << 30,
		}
		rec, err := core.Solve(specs, res, core.SolveOptions{})
		if err != nil {
			return nil, fmt.Errorf("figure5 ranks=%d: %w", ranks, err)
		}
		row := Figure5Row{
			Ranks:     ranks,
			SimPerSec: simPerStep,
			Threshold: res.TimeThreshold,
			CountA1:   rec.Schedule(specs[0].Name).Count,
			CountA2:   rec.Schedule(specs[1].Name).Count,
			CountA4:   rec.Schedule(specs[2].Name).Count,
		}
		row.TimeA1 = WaterIonsExecutedCost(specs[0].Name, ranks) * float64(row.CountA1)
		row.TimeA2 = WaterIonsExecutedCost(specs[1].Name, ranks) * float64(row.CountA2)
		row.TimeA4 = WaterIonsExecutedCost(specs[2].Name, ranks) * float64(row.CountA4)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure5 renders the stacked-bar data.
func FormatFigure5(rows []Figure5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: strong scaling, 100M-atom water+ions, 10%% threshold\n")
	fmt.Fprintf(&b, "%-8s %-10s %-12s %-8s %-8s %-8s %-10s %-10s %-10s\n",
		"ranks", "sim s/st", "thresh (s)", "A1", "A2", "A4", "tA1 (s)", "tA2 (s)", "tA4 (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-10.2f %-12.1f %-8d %-8d %-8d %-10.2f %-10.2f %-10.2f\n",
			r.Ranks, r.SimPerSec, r.Threshold, r.CountA1, r.CountA2, r.CountA4,
			r.TimeA1, r.TimeA2, r.TimeA4)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Solver-runtime summary (§5.3: CPLEX took 0.17-1.36 s per instance).
// ---------------------------------------------------------------------------

// SolverRuntime solves every scheduling instance of Tables 5-6 with the
// given branch-and-bound pool width (≤1 = legacy serial search) and returns
// the min and max solve times. The schedules themselves are identical at
// any width; only the wall time moves.
func SolverRuntime(workers int) (min, max time.Duration, err error) {
	min = time.Duration(1 << 62)
	record := func(d time.Duration) {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	opts := core.SolveOptions{Workers: workers}
	t5, err := table5(opts)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range t5 {
		record(r.SolveTime)
	}
	t6, err := table6(opts)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range t6 {
		record(r.SolveTime)
	}
	return min, max, nil
}
