package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"insitu/internal/core"
	"insitu/internal/replan"
	"insitu/internal/runmon"
	"insitu/internal/scenario"
)

// GoldenSnapshot is one named, deterministic projection of an experiment's
// output, serialized to testdata/golden/<name>.json by the regression
// harness. Solver-driven experiments snapshot their full row sets (with
// wall-clock fields zeroed); measured, machine-dependent experiments
// snapshot their configuration and kernel rosters instead, so the snapshot
// pins *what runs* without pinning timings that vary across hosts.
type GoldenSnapshot struct {
	Name string
	Data any
}

// GoldenSnapshots regenerates every snapshot. All entries are pure functions
// of the paper's published inputs: re-running on any host must produce
// byte-identical JSON, which is what the golden test asserts.
func GoldenSnapshots() ([]GoldenSnapshot, error) {
	var snaps []GoldenSnapshot
	add := func(name string, data any, err error) error {
		if err != nil {
			return fmt.Errorf("golden %s: %w", name, err)
		}
		snaps = append(snaps, GoldenSnapshot{Name: name, Data: data})
		return nil
	}

	t5, err := Table5()
	for i := range t5 {
		t5[i].SolveTime = 0
	}
	if err := add("table5", t5, err); err != nil {
		return nil, err
	}

	t6, err := Table6()
	for i := range t6 {
		t6[i].SolveTime = 0
	}
	if err := add("table6", t6, err); err != nil {
		return nil, err
	}

	t7, err := Table7()
	if err == nil {
		var nvram Table7Row
		if nvram, err = Table7NVRAM(); err == nil {
			t7 = append(t7, nvram)
		}
	}
	if err := add("table7", t7, err); err != nil {
		return nil, err
	}

	t8, err := Table8()
	if err := add("table8", t8, err); err != nil {
		return nil, err
	}

	f5, err := Figure5()
	if err := add("figure5", f5, err); err != nil {
		return nil, err
	}

	ms, err := MemorySweep()
	if err := add("memory_sweep", ms, err); err != nil {
		return nil, err
	}

	if err := add("profiles", profilesSnapshot(), nil); err != nil {
		return nil, err
	}

	roster, err := figure4Roster()
	if err := add("figure4_roster", roster, err); err != nil {
		return nil, err
	}

	if err := add("measured_configs", measuredConfigs(), nil); err != nil {
		return nil, err
	}

	if err := add("perturbed_runs", perturbedRunsSnapshot(), nil); err != nil {
		return nil, err
	}

	rr, err := replanRunsSnapshot()
	if err := add("replan_runs", rr, err); err != nil {
		return nil, err
	}

	snaps = append(snaps, scenarioSnapshots()...)
	return snaps, nil
}

// scenarioSnapshots pins the paper's scheduling problems serialized in the
// shared scenario file format, so the insitu-sched and schedexplain CLIs have
// committed, drift-checked inputs. The CI schedexplain smoke step runs the
// report CLI over exactly these files.
func scenarioSnapshots() []GoldenSnapshot {
	const simPerStep = 646.78 / 1000 // §5.3.2 run: Table 5's threshold basis
	waterIons := func(pct float64) scenario.Problem {
		return scenario.FromSpecs(WaterIonsSpecs(16384), core.Resources{
			Steps:         1000,
			TimeThreshold: core.PercentThreshold(simPerStep, 1000, pct),
			MemThreshold:  12 << 30,
		})
	}
	return []GoldenSnapshot{
		{Name: "scenario_water_ions_10pct", Data: waterIons(10)},
		{Name: "scenario_water_ions_1pct", Data: waterIons(1)},
		{Name: "scenario_rhodopsin_100s", Data: scenario.FromSpecs(RhodopsinSpecs(),
			core.Resources{Steps: 1000, TimeThreshold: 100, MemThreshold: 12 << 30})},
		{Name: "scenario_flash_43.5s", Data: scenario.FromSpecs(FlashSpecs(),
			core.Resources{Steps: 1000, TimeThreshold: 43.5, MemThreshold: 12 << 30})},
	}
}

// profilesSnapshot pins the paper-derived analysis cost profiles and
// constants that feed every scheduling experiment. A drift here silently
// changes every table, so it gets its own snapshot with the most readable
// diff.
func profilesSnapshot() any {
	executed := map[string]float64{}
	for _, s := range WaterIonsSpecs(16384) {
		executed[s.Name] = WaterIonsExecutedCost(s.Name, 16384)
	}
	return struct {
		WaterIons16384         []core.AnalysisSpec
		WaterIonsExecuted16384 map[string]float64
		WaterIonsSimSecPerStep map[int]float64
		Rhodopsin              []core.AnalysisSpec
		Flash                  []core.AnalysisSpec
		RhodopsinSimSeconds    float64
		RhodopsinOutputSeconds float64
		RhodopsinOutputBytes   int64
		FlashSimSecPerStep     float64
	}{
		WaterIons16384:         WaterIonsSpecs(16384),
		WaterIonsExecuted16384: executed,
		WaterIonsSimSecPerStep: map[int]float64{
			2048:  WaterIonsSimSecPerStep(2048),
			4096:  WaterIonsSimSecPerStep(4096),
			8192:  WaterIonsSimSecPerStep(8192),
			16384: WaterIonsSimSecPerStep(16384),
			32768: WaterIonsSimSecPerStep(32768),
		},
		Rhodopsin:              RhodopsinSpecs(),
		Flash:                  FlashSpecs(),
		RhodopsinSimSeconds:    RhodopsinSimSeconds,
		RhodopsinOutputSeconds: RhodopsinOutputSeconds,
		RhodopsinOutputBytes:   RhodopsinOutputBytes,
		FlashSimSecPerStep:     FlashSimSecPerStep,
	}
}

// perturbedRunsSnapshot pins the perturbed-profile scenario family and the
// drift verdict runmon reaches on each member: the run configurations, the
// one-line detection summary, and every alert (stream, step, detector state)
// at the fixed corpus seed. The synthesis and the detectors are pure seeded
// math, so the snapshot is byte-stable across hosts; a change to either the
// corpus or the CUSUM/EWMA defaults shows up as a readable diff here.
func perturbedRunsSnapshot() any {
	type entry struct {
		Run     runmon.SynthRun `json:"run"`
		Summary string          `json:"summary"`
		Alerts  []runmon.Alert  `json:"alerts"`
	}
	var out []entry
	for _, r := range PerturbedRuns() {
		s := runmon.Analyze(r.Events(PerturbedRunSeed), nil, runmon.Config{})
		out = append(out, entry{Run: r, Summary: s.Summary(), Alerts: s.Alerts})
	}
	return out
}

// replanRunsSnapshot pins the closed-loop replan corpus: for every scenario,
// the static and the drift-adaptive run side by side — realized value,
// per-kernel analysis counts, budget accounting, and the full replan decision
// timeline — at the canonical serial solve (the replan determinism test
// proves wider solver pools agree byte for byte). The corpus is pure seeded
// math, so the snapshot is host-stable; a diff here means the scheduler, the
// detectors, or the replan hysteresis changed behavior.
func replanRunsSnapshot() (any, error) {
	type entry struct {
		Scenario replan.Scenario  `json:"scenario"`
		Static   replan.SimResult `json:"static"`
		Adaptive replan.SimResult `json:"adaptive"`
	}
	var out []entry
	for _, sc := range ReplanScenarios() {
		static, err := replan.Simulate(sc, false, 1)
		if err != nil {
			return nil, err
		}
		adaptive, err := replan.Simulate(sc, true, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, entry{Scenario: sc, Static: static, Adaptive: adaptive})
	}
	return out, nil
}

// figure4Roster pins the composition of the Figure-4 kernel set: the ten
// kernel names, in presentation order. Timings and memory are measured and
// host-dependent, so they stay out of the snapshot.
func figure4Roster() ([]string, error) {
	entries, err := Figure4Kernels(0)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Kernel.Name()
	}
	return names, nil
}

// measuredConfigs pins the default configurations of the measured (laptop-
// scale) experiments, whose outputs are wall-clock and therefore not
// snapshot-stable themselves.
func measuredConfigs() any {
	t4 := Table4Config{}.withDefaults()
	t4.Dir = "" // host temp dir, not snapshot-stable
	return struct {
		Table4  Table4Config
		Figure2 Figure2Config
	}{t4, Figure2Config{}.withDefaults()}
}

// goldenJSON renders a snapshot exactly as stored on disk: two-space
// indented JSON with a trailing newline.
func goldenJSON(s GoldenSnapshot) ([]byte, error) {
	b, err := json.MarshalIndent(s.Data, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("golden %s: %w", s.Name, err)
	}
	return append(b, '\n'), nil
}

// WriteGolden regenerates every snapshot file under dir. Both the golden
// test's -update flag and the experiments command's -golden flag route
// through here, so the two always agree on serialization.
func WriteGolden(dir string) error {
	snaps, err := GoldenSnapshots()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range snaps {
		b, err := goldenJSON(s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, s.Name+".json"), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}
