package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestWaterIonsSimTimes(t *testing.T) {
	// Published anchor points must be returned verbatim.
	for ranks, want := range map[int]float64{2048: 4.16, 16384: 0.61, 32768: 0.40} {
		if got := WaterIonsSimSecPerStep(ranks); got != want {
			t.Fatalf("sim time at %d ranks = %g, want %g", ranks, got, want)
		}
	}
	// Interpolated values must be monotone decreasing in rank count.
	prev := math.Inf(1)
	for _, ranks := range []int{2048, 3000, 4096, 6000, 8192, 12000, 16384, 24000, 32768} {
		v := WaterIonsSimSecPerStep(ranks)
		if v >= prev {
			t.Fatalf("sim time not decreasing at %d ranks: %g >= %g", ranks, v, prev)
		}
		prev = v
	}
}

func TestTable5ReproducesPaper(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper Table 5: A1-A3 pinned at 10; A4 = 4, 2, 1, 0.
	wantA4 := []int{4, 2, 1, 0}
	for i, r := range rows {
		for j := 0; j < 3; j++ {
			if r.Counts[j] != 10 {
				t.Fatalf("row %d: A%d = %d, want 10", i, j+1, r.Counts[j])
			}
		}
		if r.Counts[3] != wantA4[i] {
			t.Fatalf("row %d: A4 = %d, want %d", i, r.Counts[3], wantA4[i])
		}
		if r.WithinPct > 100 {
			t.Fatalf("row %d: executed %g%% over threshold", i, r.WithinPct)
		}
	}
	// Executed times match the paper's column 6 closely (103.47, 52.79,
	// 27.45, 2.11).
	wantTimes := []float64{103.47, 52.79, 27.45, 2.11}
	for i, r := range rows {
		if math.Abs(r.ExecutedTime-wantTimes[i]) > 0.25 {
			t.Fatalf("row %d: executed %g, paper %g", i, r.ExecutedTime, wantTimes[i])
		}
	}
	if FormatTable5(rows) == "" {
		t.Fatal("empty formatting")
	}
}

func TestTable6ReproducesPaper(t *testing.T) {
	rows, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 6: R1 always 10 except the 10s row; totals R2+R3 =
	// 11, 5, 3, 1, 0; utilization 94.59, 85.99, 86.01, 86.11, 0.3.
	wantR1 := []int{10, 10, 10, 10, 10}
	wantR23 := []int{11, 5, 3, 1, 0}
	wantPct := []float64{94.59, 85.99, 86.01, 86.11, 0.3}
	for i, r := range rows {
		if r.Counts[0] != wantR1[i] {
			t.Fatalf("row %d: R1 = %d, want %d", i, r.Counts[0], wantR1[i])
		}
		if got := r.Counts[1] + r.Counts[2]; got != wantR23[i] {
			t.Fatalf("row %d: R2+R3 = %d, want %d", i, got, wantR23[i])
		}
		if math.Abs(r.WithinPct-wantPct[i]) > 1.0 {
			t.Fatalf("row %d: within %.2f%%, paper %.2f%%", i, r.WithinPct, wantPct[i])
		}
	}
	if FormatTable6(rows) == "" {
		t.Fatal("empty formatting")
	}
}

func TestTable7ReproducesPaper(t *testing.T) {
	rows, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 7: 12, 18, 21 analyses as output time halves.
	want := []int{12, 18, 21}
	for i, r := range rows {
		if r.NumAnalyses != want[i] {
			t.Fatalf("row %d (out=%.1f thr=%.1f): analyses = %d, want %d",
				i, r.OutputTime, r.Threshold, r.NumAnalyses, want[i])
		}
	}
	// Output time + threshold is the fixed budget.
	for _, r := range rows {
		if math.Abs(r.OutputTime+r.Threshold-250.6) > 1e-9 {
			t.Fatalf("budget violated: %g + %g", r.OutputTime, r.Threshold)
		}
	}
	if FormatTable7(rows) == "" {
		t.Fatal("empty formatting")
	}
}

func TestTable8ReproducesPaper(t *testing.T) {
	rows, err := Table8()
	if err != nil {
		t.Fatal(err)
	}
	i1 := rows[0]
	// Paper I1: F1=1, F2=10, F3=10 — reproduced exactly (with a single
	// weight class, priority and linear semantics coincide).
	if i1.Counts != [3]int{1, 10, 10} {
		t.Fatalf("I1 counts = %v, want [1 10 10]", i1.Counts)
	}
	if i1.CountsLinear != [3]int{1, 10, 10} {
		t.Fatalf("I1 linear counts = %v, want [1 10 10]", i1.CountsLinear)
	}
	i2 := rows[1]
	// Paper I2: F1=5, F2=0, F3=10 — reproduced exactly under priority
	// semantics.
	if i2.Counts != [3]int{5, 0, 10} {
		t.Fatalf("I2 priority counts = %v, want [5 0 10]", i2.Counts)
	}
	// Under the literal linear objective the I1 schedule stays feasible and
	// dominates (35 vs 32), so the linear counts must score at least 35.
	i2Obj := 2*float64(i2.CountsLinear[0]) + float64(i2.CountsLinear[1]) + 2*float64(i2.CountsLinear[2])
	enabled := 0
	for _, c := range i2.CountsLinear {
		if c > 0 {
			enabled++
		}
	}
	i2Obj += float64(enabled)
	if i2Obj < 35 {
		t.Fatalf("I2 linear objective %g below the dominating schedule (35)", i2Obj)
	}
	// F3 is nearly free and must stay at maximum frequency everywhere.
	if i1.Counts[2] != 10 || i2.Counts[2] != 10 {
		t.Fatal("F3 should always run at max frequency")
	}
	if FormatTable8(rows) == "" {
		t.Fatal("empty formatting")
	}
}

func TestFigure5ReproducesPaper(t *testing.T) {
	rows, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A1/A2 at maximum frequency on all core counts; A4 decays 10 -> 1.
	prevA4 := 11
	for i, r := range rows {
		if r.CountA1 != 10 || r.CountA2 != 10 {
			t.Fatalf("row %d: A1/A2 = %d/%d, want 10/10", i, r.CountA1, r.CountA2)
		}
		if r.CountA4 > prevA4 {
			t.Fatalf("row %d: A4 = %d increased", i, r.CountA4)
		}
		prevA4 = r.CountA4
	}
	if rows[0].CountA4 != 10 {
		t.Fatalf("2048 ranks: A4 = %d, want 10 (paper)", rows[0].CountA4)
	}
	if rows[4].CountA4 != 1 {
		t.Fatalf("32768 ranks: A4 = %d, want 1 (paper)", rows[4].CountA4)
	}
	// Total analysis time must fit each threshold.
	for i, r := range rows {
		if r.TimeA1+r.TimeA2+r.TimeA4 > r.Threshold {
			t.Fatalf("row %d over threshold", i)
		}
	}
	if FormatFigure5(rows) == "" {
		t.Fatal("empty formatting")
	}
}

func TestTable4InSituBeatsPostProcessing(t *testing.T) {
	if testing.Short() {
		t.Skip("MD run too heavy for -short")
	}
	// Sizes large enough that the read cost dominates wall-clock noise: the
	// sub-millisecond regime flaps on shared CI machines.
	rows, err := Table4(Table4Config{Atoms: []int{8000, 16000}, Steps: 25, OutputEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		total := r.ReadTime + r.PostProcess
		if r.InSitu >= total {
			t.Fatalf("atoms=%d: in-situ %v not cheaper than post-processing %v",
				r.Atoms, r.InSitu, total)
		}
	}
	// Read time grows with system size (paper: 23.89 s -> 2413 s).
	if rows[1].ReadTime < rows[0].ReadTime {
		t.Fatalf("read time should grow with atoms: %v vs %v", rows[0].ReadTime, rows[1].ReadTime)
	}
	if FormatTable4(rows) == "" {
		t.Fatal("empty formatting")
	}
}

func TestFigure2PredictionErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement too heavy for -short")
	}
	r, err := Figure2(Figure2Config{Sizes: []int{1500, 3000, 6000}, StepsPerSample: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Communication interpolation against the analytic torus model must be
	// tight (paper: <8%).
	if r.CommMaxErr > 0.08 {
		t.Fatalf("comm prediction error %.1f%% exceeds the paper's 8%%", r.CommMaxErr*100)
	}
	// Compute-time measurements are wall-clock and noisy in CI; allow a
	// loose bound while still requiring the interpolation to be predictive.
	if r.ComputeMaxErr > 0.60 {
		t.Fatalf("compute prediction error %.1f%% is not predictive", r.ComputeMaxErr*100)
	}
	if r.ComputeProbes == 0 || r.CommProbes == 0 {
		t.Fatal("no probes evaluated")
	}
	if FormatFigure2(r) == "" {
		t.Fatal("empty formatting")
	}
}

func TestFigure4Profiles(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel measurement too heavy for -short")
	}
	rows, err := Figure4(3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("kernels measured = %d, want 10", len(rows))
	}
	byName := map[string]Figure4Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.RelTime < 0 || r.RelTime > 1 || r.RelMem < 0 || r.RelMem > 1 {
			t.Fatalf("unnormalized row: %+v", r)
		}
	}
	// Figure-4 shape: R1 and F3 are the cheapest kernels; A4 carries the
	// most memory among MD kernels.
	r1 := byName["R1 radius of gyration"]
	f3 := byName["F3 L2 error norm"]
	a4 := byName["A4 msd"]
	a1 := byName["A1 hydronium rdf"]
	if r1.Time > a1.Time {
		t.Fatalf("R1 (%v) should be cheaper than A1 (%v)", r1.Time, a1.Time)
	}
	if f3.RelTime > 0.5 {
		t.Fatalf("F3 relative time %g should be small", f3.RelTime)
	}
	if a4.Memory <= a1.Memory {
		t.Fatalf("A4 memory (%d) should exceed A1 (%d)", a4.Memory, a1.Memory)
	}
	if FormatFigure4(rows) == "" {
		t.Fatal("empty formatting")
	}
}

func TestSolverRuntimeWithinPaperEnvelope(t *testing.T) {
	for _, workers := range []int{1, 8} {
		min, max, err := SolverRuntime(workers)
		if err != nil {
			t.Fatal(err)
		}
		if min <= 0 {
			t.Fatalf("workers=%d: min solve time = %v", workers, min)
		}
		if max > 1360*time.Millisecond {
			t.Fatalf("workers=%d: max solve time %v exceeds the paper's 1.36 s", workers, max)
		}
	}
}

func TestTable7NVRAMBeatsGPFS(t *testing.T) {
	gpfs, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	nvram, err := Table7NVRAM()
	if err != nil {
		t.Fatal(err)
	}
	if nvram.OutputTime >= gpfs[0].OutputTime {
		t.Fatalf("NVRAM output time %g not below GPFS %g", nvram.OutputTime, gpfs[0].OutputTime)
	}
	// More threshold -> at least as many analyses as the best GPFS row.
	if nvram.NumAnalyses < gpfs[len(gpfs)-1].NumAnalyses {
		t.Fatalf("NVRAM analyses %d below best GPFS row %d", nvram.NumAnalyses, gpfs[len(gpfs)-1].NumAnalyses)
	}
}

func TestMemorySweepSqueezesA4(t *testing.T) {
	rows, err := MemorySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	prevObj := math.Inf(1)
	prevA4 := 1 << 30
	for i, r := range rows {
		if r.PeakMemory > r.MemThreshold {
			t.Fatalf("row %d: peak %d over ceiling %d", i, r.PeakMemory, r.MemThreshold)
		}
		if r.Objective > prevObj+1e-9 {
			t.Fatalf("row %d: objective grew as memory shrank", i)
		}
		if r.CountA4 > prevA4 {
			t.Fatalf("row %d: A4 grew as memory shrank", i)
		}
		prevObj, prevA4 = r.Objective, r.CountA4
	}
	// 12 GiB fits A4; 1 GiB cannot even hold its 4 GiB fixed allocation.
	if rows[0].CountA4 == 0 {
		t.Fatal("A4 should fit at 12 GiB")
	}
	if rows[len(rows)-1].CountA4 != 0 {
		t.Fatal("A4 must be excluded at 1 GiB")
	}
	if FormatMemorySweep(rows) == "" {
		t.Fatal("empty formatting")
	}
}

func TestValidateCouplingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline too heavy for -short")
	}
	v, err := ValidateCoupling(2000, 40, 15)
	if err != nil {
		t.Fatal(err)
	}
	if v.Scheduled == 0 || v.Analyses != v.Scheduled {
		t.Fatalf("executed %d of %d scheduled analyses", v.Analyses, v.Scheduled)
	}
	// Executed time tracks the threshold with generous slack for CI noise:
	// the model promises <= 100%, wall-clock jitter can push past it, but a
	// multiple-of-threshold overshoot would mean the profiles were wrong.
	if v.Utilization > 3 {
		t.Fatalf("executed %.0f%% of threshold — profiles not predictive", v.Utilization*100)
	}
	if FormatCouplingValidation(v) == "" {
		t.Fatal("empty formatting")
	}
}

func TestVerifyAllPasses(t *testing.T) {
	checks, err := VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 8 {
		t.Fatalf("checks = %d", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("[FAIL] %s: %s (%s)", c.Experiment, c.Claim, c.Detail)
		}
	}
	out := FormatChecks(checks)
	if !strings.Contains(out, "8/8 checks passed") && !strings.Contains(out, "checks passed") {
		t.Fatalf("attestation summary missing:\n%s", out)
	}
}
