package runmon

import (
	"bytes"
	"strings"
	"testing"
)

// driftedSnapshot replays a synthetic perturbed run and returns its report.
func driftedSnapshot(t *testing.T) Snapshot {
	t.Helper()
	run := SynthRun{
		Name: "unit", App: "mdsim/unit", Steps: 60,
		SimSec: 0.010, ThresholdSec: 0.5, NoiseFrac: 0.02,
		Kind: PerturbSimTime, ChangeStep: 30, Factor: 1.5,
		Kernels: []SynthKernel{
			{Name: "rdf", AnalyzeSec: 0.004, OutputSec: 0.001, Every: 2, OutputEvery: 4, Bytes: 1 << 20},
		},
	}
	return Analyze(run.Events(42), nil, Config{})
}

func TestAnalyzeReplaysSynthRun(t *testing.T) {
	s := driftedSnapshot(t)
	if !s.Ended || s.Step != 60 || s.Steps != 60 {
		t.Fatalf("snapshot header = %+v", s)
	}
	if s.DriftCount() != 1 {
		t.Fatalf("drift alerts = %d, want 1 (sim stream only)", s.DriftCount())
	}
	a := s.Alerts[0]
	if a.Stream != StreamSim || a.Step < 30 || a.Step > 35 {
		t.Fatalf("alert = %+v, want sim drift within 5 steps of 30", a)
	}
	if got := s.Summary(); !strings.Contains(got, "1 drift alert") {
		t.Fatalf("summary = %q", got)
	}
}

func TestWriteTextReport(t *testing.T) {
	var buf bytes.Buffer
	s := driftedSnapshot(t)
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"run: mdsim/unit", "step 60/60", "ended",
		StreamSim, "rdf/analyze", "rdf/output",
		"DRIFT@", "budget:", "alerts: 1", "[drift]", "slow by",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (Snapshot{}).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no monitored events yet") {
		t.Fatalf("empty report = %q", buf.String())
	}
}

func TestWriteHTMLReport(t *testing.T) {
	var buf bytes.Buffer
	s := driftedSnapshot(t)
	if err := s.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Run drift report", "mdsim/unit",
		"Residual streams", "rdf/analyze", `class="alert"`,
		"drift at step",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
}

func TestSynthRunControlIsQuiet(t *testing.T) {
	run := SynthRun{
		Name: "control", App: "mdsim/control", Steps: 80,
		SimSec: 0.010, ThresholdSec: 1.0, NoiseFrac: 0.02,
		Kind: PerturbNone,
		Kernels: []SynthKernel{
			{Name: "rdf", AnalyzeSec: 0.004, OutputSec: 0.001, Every: 2, OutputEvery: 4},
		},
	}
	for seed := int64(1); seed <= 5; seed++ {
		s := Analyze(run.Events(seed), nil, Config{})
		if len(s.Alerts) != 0 {
			t.Fatalf("seed %d: control run raised %+v", seed, s.Alerts)
		}
	}
}
