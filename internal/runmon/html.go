package runmon

import (
	"fmt"
	"html/template"
	"io"

	"insitu/internal/explain/style"
)

// htmlView pre-formats the snapshot so the template stays logic-free, the
// same pattern (and stylesheet) as the schedexplain HTML report.
type htmlView struct {
	Title   string
	App     string
	Step    string
	State   string
	Budget  string
	AtRisk  bool
	Streams []htmlStream
	Alerts  []htmlAlert
}

type htmlStream struct {
	Name     string
	Count    int
	PredMS   string
	MeanMS   string
	EWMA     string
	CusumPos string
	CusumNeg string
	Status   string
	Alerted  bool
}

type htmlAlert struct {
	Kind   string
	Step   int
	Stream string
	Detail string
}

var driftTemplate = template.Must(template.New("drift").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
` + style.Page + `
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="summary">
<span>run <strong>{{.App}}</strong></span>
<span>step <strong>{{.Step}}</strong></span>
<span>state <strong>{{.State}}</strong></span>
{{if .Budget}}<span>budget <strong{{if .AtRisk}} class="alert"{{end}}>{{.Budget}}</strong></span>{{end}}
</p>

<h2>Residual streams</h2>
<table>
<tr><th>stream</th><th>n</th><th>pred (ms)</th><th>mean (ms)</th><th>EWMA err</th><th>CUSUM+</th><th>CUSUM−</th><th>status</th></tr>
{{range .Streams}}
<tr{{if .Alerted}} class="alert"{{end}}>
<td>{{.Name}}</td><td>{{.Count}}</td><td>{{.PredMS}}</td><td>{{.MeanMS}}</td>
<td>{{.EWMA}}</td><td>{{.CusumPos}}</td><td>{{.CusumNeg}}</td><td>{{.Status}}</td>
</tr>
{{end}}
</table>

<h2>Alerts</h2>
{{if .Alerts}}
<table>
<tr><th>kind</th><th>step</th><th>stream</th><th>detail</th></tr>
{{range .Alerts}}
<tr class="alert"><td>{{.Kind}}</td><td>{{.Step}}</td><td>{{.Stream}}</td><td>{{.Detail}}</td></tr>
{{end}}
</table>
{{else}}
<p><span class="badge ok">none</span></p>
{{end}}
</body>
</html>
`))

// WriteHTML renders the snapshot as one self-contained HTML drift report
// (inline CSS, no external assets), styled like the schedexplain report.
func (s Snapshot) WriteHTML(w io.Writer) error {
	app := s.App
	if app == "" {
		app = "(unnamed run)"
	}
	state := "running"
	if s.Ended {
		state = "ended"
	}
	step := fmt.Sprintf("%d", s.Step)
	if s.Steps > 0 {
		step = fmt.Sprintf("%d / %d", s.Step, s.Steps)
	}
	view := htmlView{
		Title:  "Run drift report",
		App:    app,
		Step:   step,
		State:  state,
		AtRisk: s.BudgetAtRisk,
	}
	if s.ThresholdSec > 0 {
		risk := "within budget"
		if s.BudgetAtRisk {
			risk = "AT RISK"
		}
		view.Budget = fmt.Sprintf("projected %.3fs of %.3fs — %s", s.ProjectedSec, s.ThresholdSec, risk)
	}
	for _, st := range s.Streams {
		status := "ok"
		if st.PredictedSec <= 0 {
			status = "calibrating"
		}
		if st.Alerted {
			status = fmt.Sprintf("drift at step %d", st.AlertStep)
		}
		view.Streams = append(view.Streams, htmlStream{
			Name:     st.Stream,
			Count:    st.Count,
			PredMS:   fmt.Sprintf("%.3f", st.PredictedSec*1e3),
			MeanMS:   fmt.Sprintf("%.3f", st.MeanSec*1e3),
			EWMA:     fmt.Sprintf("%.1f%%", st.EWMARelErr*100),
			CusumPos: fmt.Sprintf("%.2f", st.CUSUMPos),
			CusumNeg: fmt.Sprintf("%.2f", st.CUSUMNeg),
			Status:   status,
			Alerted:  st.Alerted,
		})
	}
	for _, a := range s.Alerts {
		detail := fmt.Sprintf("%s by %.0f%%: predicted %.3fms, observed %.3fms (CUSUM %.2f)",
			a.Direction, abs(a.RelErr)*100, a.Predicted*1e3, a.Observed*1e3, a.CUSUM)
		if a.Kind == AlertBudget {
			detail = fmt.Sprintf("projected %.3fs exceeds threshold %.3fs", a.Observed, a.Predicted)
		}
		view.Alerts = append(view.Alerts, htmlAlert{
			Kind: a.Kind, Step: a.Step, Stream: a.Stream, Detail: detail,
		})
	}
	return driftTemplate.Execute(w, view)
}
