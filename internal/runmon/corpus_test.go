package runmon_test

import (
	"strings"
	"testing"

	"insitu/internal/experiments"
	"insitu/internal/runmon"
)

// streamMatchesKind reports whether a residual stream belongs to the class a
// perturbation kind inflates.
func streamMatchesKind(stream, kind string) bool {
	switch kind {
	case runmon.PerturbSimTime:
		return stream == runmon.StreamSim
	case runmon.PerturbOutputBW:
		return strings.HasSuffix(stream, "/output")
	case runmon.PerturbAnalysisCT:
		return strings.HasSuffix(stream, "/analyze")
	}
	return false
}

// TestPerturbedCorpusDetection is the acceptance test of the drift detector
// against the golden perturbed-profile corpus: every perturbed variant must
// be flagged within five steps of its injected change point, on a stream of
// the perturbed class only, and the unperturbed control must stay silent.
// The corpus is seeded and the detectors are pure math, so the test is
// deterministic (and runs under -race in CI).
func TestPerturbedCorpusDetection(t *testing.T) {
	runs := experiments.PerturbedRuns()
	if len(runs) < 4 {
		t.Fatalf("corpus has %d runs, want the control plus 3 perturbations", len(runs))
	}
	for _, r := range runs {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			s := runmon.Analyze(r.Events(experiments.PerturbedRunSeed), nil, runmon.Config{})
			if !s.Ended || s.Step != r.Steps {
				t.Fatalf("snapshot = step %d ended %v, want full %d-step run", s.Step, s.Ended, r.Steps)
			}
			if r.Kind == runmon.PerturbNone {
				if len(s.Alerts) != 0 {
					t.Fatalf("control run raised alerts: %+v", s.Alerts)
				}
				return
			}
			if s.DriftCount() == 0 {
				t.Fatalf("%s perturbation never detected", r.Kind)
			}
			for _, a := range s.Alerts {
				if a.Kind != runmon.AlertDrift {
					continue
				}
				if !streamMatchesKind(a.Stream, r.Kind) {
					t.Errorf("drift alert on unperturbed stream %s: %+v", a.Stream, a)
				}
				if a.Step < r.ChangeStep || a.Step > r.ChangeStep+5 {
					t.Errorf("stream %s flagged at step %d, want within 5 of %d", a.Stream, a.Step, r.ChangeStep)
				}
				if a.Direction != "slow" {
					t.Errorf("stream %s direction = %q, want slow", a.Stream, a.Direction)
				}
			}
		})
	}
}

// TestPerturbedCorpusEventsDeterministic guards the golden snapshot's
// premise: the same run and seed synthesize byte-identical event streams.
func TestPerturbedCorpusEventsDeterministic(t *testing.T) {
	r := experiments.PerturbedRuns()[1]
	a := r.Events(experiments.PerturbedRunSeed)
	b := r.Events(experiments.PerturbedRunSeed)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Dur != b[i].Dur || a[i].Type != b[i].Type || a[i].Step != b[i].Step {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
