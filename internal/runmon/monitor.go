package runmon

import (
	"sync"

	"insitu/internal/obs"
)

// AlertSchemaVersion is carried in every alert event's args ("alert_v") so
// downstream consumers (the future replanner, dashboards) can gate on the
// alert payload layout independently of the ledger line schema.
const AlertSchemaVersion = 1

// Alert kinds.
const (
	AlertDrift  = "drift"  // a stream's CUSUM crossed its threshold
	AlertBudget = "budget" // projected total analysis time exceeds the budget
)

// Config tunes a Monitor. The zero value is usable: every field defaults to
// the values documented on it.
type Config struct {
	// Alpha is the EWMA smoothing weight (default 0.3).
	Alpha float64
	// Slack is the CUSUM per-observation allowance k in relative-error
	// units (default 0.25): residuals within ±25% of the prediction never
	// accumulate toward an alarm.
	Slack float64
	// Threshold is the CUSUM alarm level h (default 1.0). With the default
	// slack, a sustained 1.5× step-time inflation (relative error 0.5)
	// alarms after ceil(1.0/0.25) = 4 observations.
	Threshold float64
	// Calibration is how many observations seed the baseline of a stream
	// the profile does not predict (default 5). During calibration no
	// residuals are scored for that stream.
	Calibration int
	// BudgetGuard scales the budget alert level: the alert fires when the
	// projected total analysis time exceeds ThresholdSec×BudgetGuard
	// (default 1.0).
	BudgetGuard float64
	// Ledger, when non-nil, receives every alert as a schema-versioned
	// "alert" event, so alerts land in the same JSONL stream as the run
	// they describe.
	Ledger *obs.EventLog
	// Metrics, when non-nil, exports the live detector state: per-stream
	// runmon_ewma_rel_err / runmon_cusum_pos / runmon_cusum_neg gauges, a
	// runmon_alerts_total counter, and the budget projection gauges.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Slack <= 0 {
		c.Slack = 0.25
	}
	if c.Threshold <= 0 {
		c.Threshold = 1.0
	}
	if c.Calibration <= 0 {
		c.Calibration = 5
	}
	if c.BudgetGuard <= 0 {
		c.BudgetGuard = 1.0
	}
	return c
}

// Alert is one emitted drift or budget alert.
type Alert struct {
	Kind      string  `json:"kind"`                // AlertDrift or AlertBudget
	Stream    string  `json:"stream"`              // residual stream, or "budget"
	Step      int     `json:"step"`                // simulation step at detection
	Direction string  `json:"direction,omitempty"` // "slow" or "fast" (drift only)
	RelErr    float64 `json:"rel_err"`             // EWMA of relative error at detection
	CUSUM     float64 `json:"cusum"`               // alarming CUSUM statistic
	Predicted float64 `json:"predicted_sec"`       // per-event prediction (drift) or budget (budget)
	Observed  float64 `json:"observed_sec"`        // last observation (drift) or projection (budget)
}

// streamState is the per-stream detector stack.
type streamState struct {
	name       string
	predicted  float64 // seconds per event; 0 while calibrating
	calSum     float64
	calN       int
	ewma       EWMA
	cusum      CUSUM
	count      int
	obsSec     float64 // total observed seconds (display mean; never reset)
	scoredObs  float64 // observed seconds over scored events (reset on rebaseline)
	scoredPred float64 // predicted seconds over scored events (reset on rebaseline)
	lastSec    float64
	alerted    bool
	alertStep  int

	mEWMA     *obs.Gauge
	mCusumPos *obs.Gauge
	mCusumNeg *obs.Gauge
}

// Monitor consumes ledger-style run events and maintains the per-stream
// residual statistics. It is safe for concurrent use; Observe is cheap
// enough to sit on the coupling runner's hot path.
type Monitor struct {
	mu      sync.Mutex
	cfg     Config
	profile *Profile
	streams map[string]*streamState
	order   []string // stream creation order, for stable reports

	app         string
	runs        int
	step        int // highest simulation step seen
	ended       bool
	analysisSec float64 // observed analysis+output seconds so far
	projected   float64
	budgetHit   bool
	alerts      []Alert
	replans     []ReplanRecord
	flights     []obs.SolveProgRun

	mProjected *obs.Gauge
	mThreshold *obs.Gauge
}

// NewMonitor builds a monitor. profile may be nil: every stream then
// self-calibrates from its first Config.Calibration observations, which is
// how runmon scores ledgers from runs that never wrote plan events.
func NewMonitor(profile *Profile, cfg Config) *Monitor {
	m := &Monitor{
		cfg:     cfg.withDefaults(),
		streams: map[string]*streamState{},
	}
	m.profile = profile
	if profile != nil {
		m.app = profile.App
	}
	m.mProjected = m.cfg.Metrics.Gauge("runmon_projected_analysis_sec", nil)
	m.mThreshold = m.cfg.Metrics.Gauge("runmon_threshold_sec", nil)
	if profile != nil && profile.ThresholdSec > 0 {
		m.mThreshold.Set(profile.ThresholdSec)
	}
	return m
}

// SetProfile installs (or replaces) the predicted profile; campaign.Execute
// calls this once the plan is solved. Streams already self-calibrated keep
// their calibrated baseline.
func (m *Monitor) SetProfile(p *Profile) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.profile = p
	if p != nil {
		if p.App != "" {
			m.app = p.App
		}
		if p.ThresholdSec > 0 {
			m.mThreshold.Set(p.ThresholdSec)
		}
	}
}

// Observe scores one ledger-style event. It accepts exactly the events
// coupling.Runner and campaign emit (run_start, step, analysis, output,
// plan, run_end, plus solveprog flight samples, which it retains for the
// Snapshot's gap-closure view); every other type is ignored, so a whole
// ledger can be replayed through it unfiltered. Nil-safe: a nil monitor
// drops events.
func (m *Monitor) Observe(e obs.LedgerEvent) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch e.Type {
	case obs.LedgerRunStart:
		m.runs++
		if e.Name != "" {
			m.app = e.Name
		}
	case obs.LedgerRunEnd:
		m.ended = true
	case obs.LedgerPlan:
		if m.profile == nil {
			m.profile = &Profile{Streams: map[string]float64{}}
		}
		m.profile.absorbPlanEvent(e)
		if m.profile.ThresholdSec > 0 {
			m.mThreshold.Set(m.profile.ThresholdSec)
		}
		m.rebaseline(e.Name)
		if e.Name == StreamSim && e.Args["threshold_sec"] > 0 {
			// A fresh budget (a replan's plan events carry one) re-arms the
			// budget alert against the new threshold.
			m.budgetHit = false
		}
	case obs.LedgerReplan:
		if r, ok := replanRecordFromEvent(e); ok {
			m.replans = append(m.replans, r)
		}
	case obs.LedgerSolveProg:
		m.observeSolveProg(e)
	case obs.LedgerStep:
		if e.Step > m.step {
			m.step = e.Step
		}
		m.observe(StreamSim, e.Step, e.Dur/1e6)
	case obs.LedgerAnalysis:
		sec := e.Dur / 1e6
		m.analysisSec += sec
		m.observe(AnalyzeStream(e.Name), e.Step, sec)
		m.projectBudget(e.Step)
	case obs.LedgerOutput:
		sec := e.Dur / 1e6
		m.analysisSec += sec
		m.observe(OutputStream(e.Name), e.Step, sec)
		m.projectBudget(e.Step)
	}
}

// rebaseline aligns an already-created stream with a freshly absorbed plan
// prediction. Before this fix a plan event arriving after a stream had begun
// self-calibrating was silently ignored by that stream: the observations that
// preceded the plan stayed in the calibration sum and also kept being scored
// once calibration closed, double-counting them against a baseline the plan
// had superseded. Adopting the plan prediction and resetting the detector
// stack makes a mid-stream plan event a clean rebaseline — which is exactly
// what a replanner needs: re-emitting plan events through Observe resets the
// detectors for the adapted schedule. Callers hold m.mu.
func (m *Monitor) rebaseline(name string) {
	st, ok := m.streams[name]
	if !ok {
		return
	}
	pred := m.profile.Streams[name]
	if pred <= 0 {
		return
	}
	st.predicted = pred
	st.calSum, st.calN = 0, 0
	st.scoredObs, st.scoredPred = 0, 0
	st.ewma = EWMA{Alpha: m.cfg.Alpha}
	st.cusum.Reset()
	st.alerted = false
	st.mEWMA.Set(0)
	st.mCusumPos.Set(0)
	st.mCusumNeg.Set(0)
}

// stream returns (creating on first use) the detector stack for name.
func (m *Monitor) stream(name string) *streamState {
	st, ok := m.streams[name]
	if !ok {
		st = &streamState{
			name:  name,
			ewma:  EWMA{Alpha: m.cfg.Alpha},
			cusum: CUSUM{Slack: m.cfg.Slack, Threshold: m.cfg.Threshold},
		}
		if m.profile != nil {
			st.predicted = m.profile.Streams[name]
		}
		labels := obs.Labels{"stream": name}
		st.mEWMA = m.cfg.Metrics.Gauge("runmon_ewma_rel_err", labels)
		st.mCusumPos = m.cfg.Metrics.Gauge("runmon_cusum_pos", labels)
		st.mCusumNeg = m.cfg.Metrics.Gauge("runmon_cusum_neg", labels)
		m.streams[name] = st
		m.order = append(m.order, name)
	}
	return st
}

// observe scores one duration on one stream: resolve the prediction
// (profile or calibration), compute the signed relative error, update the
// EWMA and CUSUM, and raise the stream's drift alert the first time the
// CUSUM alarms.
func (m *Monitor) observe(name string, step int, sec float64) {
	st := m.stream(name)
	st.count++
	st.obsSec += sec
	st.lastSec = sec

	if st.predicted <= 0 {
		// Self-calibration: the first Calibration observations set the
		// baseline; no residuals are scored until it is in place.
		st.calSum += sec
		st.calN++
		if st.calN >= m.cfg.Calibration {
			st.predicted = st.calSum / float64(st.calN)
		}
		return
	}

	st.scoredObs += sec
	st.scoredPred += st.predicted
	x := (sec - st.predicted) / st.predicted
	st.mEWMA.Set(st.ewma.Observe(x))
	fired := st.cusum.Observe(x)
	pos, neg := st.cusum.Stat()
	st.mCusumPos.Set(pos)
	st.mCusumNeg.Set(neg)

	if fired && !st.alerted {
		st.alerted = true
		st.alertStep = step
		stat := pos
		if neg > pos {
			stat = neg
		}
		m.raise(Alert{
			Kind: AlertDrift, Stream: name, Step: step,
			Direction: st.cusum.Direction(),
			RelErr:    st.ewma.Value(), CUSUM: stat,
			Predicted: st.predicted, Observed: sec,
		})
	}
}

// projectBudget recomputes the budget-at-risk projection: given the drift
// observed so far, will the remaining schedule blow the time budget? The
// remaining planned work is scaled by the run-wide inflation factor
// (observed / predicted over all scored analysis events).
func (m *Monitor) projectBudget(step int) {
	p := m.profile
	if p == nil || p.ThresholdSec <= 0 || p.Steps <= 0 || p.PlannedSec <= 0 {
		return
	}
	var obsSec, predSec float64
	for _, st := range m.streams {
		if st.name == StreamSim {
			continue
		}
		obsSec += st.scoredObs
		predSec += st.scoredPred
	}
	inflation := 1.0
	if predSec > 0 {
		inflation = obsSec / predSec
	}
	remaining := p.PlannedSec * float64(p.Steps-step) / float64(p.Steps)
	if remaining < 0 {
		remaining = 0
	}
	m.projected = m.analysisSec + remaining*inflation
	m.mProjected.Set(m.projected)

	if !m.budgetHit && m.projected > p.ThresholdSec*m.cfg.BudgetGuard {
		m.budgetHit = true
		m.raise(Alert{
			Kind: AlertBudget, Stream: "budget", Step: step,
			RelErr:    inflation - 1,
			Predicted: p.ThresholdSec, Observed: m.projected,
		})
	}
}

// raise records an alert, appends it to the ledger as a schema-versioned
// alert event, and bumps the alert counter. Callers hold m.mu.
func (m *Monitor) raise(a Alert) {
	m.alerts = append(m.alerts, a)
	m.cfg.Metrics.Counter("runmon_alerts_total", obs.Labels{"stream": a.Stream, "kind": a.Kind}).Inc()
	m.cfg.Ledger.Append(obs.LedgerEvent{
		Type: obs.LedgerAlert, Name: a.Stream, Step: a.Step,
		Args: map[string]float64{
			"alert_v":       AlertSchemaVersion,
			"kind":          alertKindCode(a.Kind),
			"rel_err":       a.RelErr,
			"cusum":         a.CUSUM,
			"predicted_sec": a.Predicted,
			"observed_sec":  a.Observed,
			"slow":          boolArg(a.Direction != "fast"),
		},
	})
}

// alertKindCode maps alert kinds onto the numeric args payload (ledger args
// are float64-only by design).
func alertKindCode(kind string) float64 {
	if kind == AlertBudget {
		return 1
	}
	return 0
}

func boolArg(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Alerts returns a copy of every alert raised so far.
func (m *Monitor) Alerts() []Alert {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// Replans returns a copy of every replan decision observed so far.
func (m *Monitor) Replans() []ReplanRecord {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ReplanRecord, len(m.replans))
	copy(out, m.replans)
	return out
}

// Flight-stream retention bounds: a live monitor keeps the most recent
// maxFlightRuns solves (older runs roll off) and caps each run's record
// count, so a replanning run cannot grow the monitor without bound.
const (
	maxFlightRuns    = 8
	maxFlightRecords = obs.DefaultFlightCapacity
)

// observeSolveProg folds one solver flight sample into the retained
// gap-closure streams; a start event opens a new run. Callers hold m.mu.
func (m *Monitor) observeSolveProg(e obs.LedgerEvent) {
	p, ok := obs.SolveProgFromEvent(e)
	if !ok {
		return
	}
	if len(m.flights) == 0 || p.Kind == obs.SolveProgStart {
		m.flights = append(m.flights, obs.SolveProgRun{Name: e.Name})
		if len(m.flights) > maxFlightRuns {
			m.flights = m.flights[len(m.flights)-maxFlightRuns:]
		}
	}
	r := &m.flights[len(m.flights)-1]
	if r.Name == "" {
		r.Name = e.Name
	}
	if len(r.Records) < maxFlightRecords {
		r.Records = append(r.Records, p)
	}
}

// Flights returns a copy of the retained solver flight streams, oldest
// first.
func (m *Monitor) Flights() []obs.SolveProgRun {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return copyFlights(m.flights)
}

func copyFlights(flights []obs.SolveProgRun) []obs.SolveProgRun {
	if len(flights) == 0 {
		return nil
	}
	out := make([]obs.SolveProgRun, len(flights))
	for i, f := range flights {
		out[i] = obs.SolveProgRun{Name: f.Name, Records: append([]obs.SolveProgress(nil), f.Records...)}
	}
	return out
}
