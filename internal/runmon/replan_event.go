package runmon

import "insitu/internal/obs"

// ReplanSchemaVersion is carried in every replan event's args ("replan_v"),
// so downstream consumers can gate on the payload layout independently of
// the ledger line schema — the same convention the alert event uses.
const ReplanSchemaVersion = 1

// Replan decision reasons. Exactly one is carried by every replan event:
// "adopted" swaps the schedule, every other reason keeps the incumbent and
// documents why.
const (
	ReplanAdopted       = "adopted"        // the re-solved schedule replaced the incumbent
	ReplanNoImprovement = "no_improvement" // the re-solve did not beat the incumbent by the gate
	ReplanInfeasible    = "infeasible"     // the remaining horizon admits no feasible schedule
	ReplanHorizon       = "horizon"        // the trigger arrived with no steps left to reschedule
	ReplanLimit         = "limit"          // the replan-count cap was reached
)

// ReplanRecord is one rolling-horizon reschedule decision, the payload of a
// schema-versioned "replan" ledger event. internal/replan writes these; the
// monitor collects them (live or from a ledger replay) into the snapshot's
// replan timeline.
type ReplanRecord struct {
	Step    int    `json:"step"`              // simulation step the decision was made after
	Trigger string `json:"trigger"`           // alert kind that woke the replanner (drift|budget)
	Stream  string `json:"stream"`            // residual stream of the triggering alert
	Reason  string `json:"reason"`            // one of the Replan* reasons
	Adopted bool   `json:"adopted"`           // true exactly when Reason == ReplanAdopted
	OldValue float64 `json:"old_value"`       // incumbent remaining-horizon objective
	NewValue float64 `json:"new_value"`       // re-solved remaining-horizon objective (0 unless solved)
	OldCostSec float64 `json:"old_cost_sec"`  // incumbent remaining cost under rescaled profiles
	NewCostSec float64 `json:"new_cost_sec"`  // re-solved remaining predicted cost
	BudgetSec  float64 `json:"budget_sec"`    // remaining budget the re-solve ran against
	SpentSec   float64 `json:"spent_sec"`     // analysis+output seconds already observed
}

// Delta returns the objective change the decision bought (new − old); zero
// for decisions that kept the incumbent.
func (r ReplanRecord) Delta() float64 {
	if !r.Adopted {
		return 0
	}
	return r.NewValue - r.OldValue
}

// replanReasonCode maps reasons onto the numeric args payload (ledger args
// are float64-only by design).
func replanReasonCode(reason string) float64 {
	switch reason {
	case ReplanAdopted:
		return 0
	case ReplanNoImprovement:
		return 1
	case ReplanInfeasible:
		return 2
	case ReplanHorizon:
		return 3
	case ReplanLimit:
		return 4
	}
	return -1
}

func replanReasonFromCode(code float64) string {
	switch code {
	case 0:
		return ReplanAdopted
	case 1:
		return ReplanNoImprovement
	case 2:
		return ReplanInfeasible
	case 3:
		return ReplanHorizon
	case 4:
		return ReplanLimit
	}
	return ""
}

// Event serializes the record as a schema-versioned replan ledger event, the
// inverse of replanRecordFromEvent. The triggering alert rides along as the
// kind code plus the event's Name (the alerting stream).
func (r ReplanRecord) Event() obs.LedgerEvent {
	return obs.LedgerEvent{
		Type: obs.LedgerReplan, Name: r.Stream, Step: r.Step,
		Args: map[string]float64{
			"replan_v":     ReplanSchemaVersion,
			"reason":       replanReasonCode(r.Reason),
			"adopted":      boolArg(r.Adopted),
			"trigger":      alertKindCode(r.Trigger),
			"old_value":    r.OldValue,
			"new_value":    r.NewValue,
			"old_cost_sec": r.OldCostSec,
			"new_cost_sec": r.NewCostSec,
			"budget_sec":   r.BudgetSec,
			"spent_sec":    r.SpentSec,
		},
	}
}

// replanRecordFromEvent decodes a replan ledger event. It reports false for
// events from a newer replan schema, which readers skip rather than
// misinterpret (the alert-event convention).
func replanRecordFromEvent(e obs.LedgerEvent) (ReplanRecord, bool) {
	if e.Type != obs.LedgerReplan {
		return ReplanRecord{}, false
	}
	if v := e.Args["replan_v"]; v > ReplanSchemaVersion {
		return ReplanRecord{}, false
	}
	reason := replanReasonFromCode(e.Args["reason"])
	if reason == "" {
		return ReplanRecord{}, false
	}
	trigger := AlertDrift
	if e.Args["trigger"] == alertKindCode(AlertBudget) {
		trigger = AlertBudget
	}
	return ReplanRecord{
		Step:       e.Step,
		Trigger:    trigger,
		Stream:     e.Name,
		Reason:     reason,
		Adopted:    e.Args["adopted"] > 0,
		OldValue:   e.Args["old_value"],
		NewValue:   e.Args["new_value"],
		OldCostSec: e.Args["old_cost_sec"],
		NewCostSec: e.Args["new_cost_sec"],
		BudgetSec:  e.Args["budget_sec"],
		SpentSec:   e.Args["spent_sec"],
	}, true
}

// ReplansFromEvents decodes every replan event in a ledger slice, in order.
// It is the post-hoc codec behind the schedexplain replan timeline and any
// other consumer that wants the decision history without replaying a full
// Monitor; unknown-schema or unknown-reason events are skipped, exactly as
// Monitor.Observe skips them.
func ReplansFromEvents(events []obs.LedgerEvent) []ReplanRecord {
	var out []ReplanRecord
	for _, e := range events {
		if e.Type != obs.LedgerReplan {
			continue
		}
		if r, ok := replanRecordFromEvent(e); ok {
			out = append(out, r)
		}
	}
	return out
}
