// Package runmon watches a scheduled in-situ run while it happens. The paper
// schedules once up front from profiled ct/at/ot costs (§4), but those
// profiles drift mid-run — simulations refine grids, outputs hit contended
// storage — so runmon maintains streaming residuals between the perfmodel
// predictions a schedule was solved against and the durations the run ledger
// actually records, runs online drift statistics over them (an EWMA of
// relative error plus a CUSUM change detector), projects whether the
// remaining schedule will blow the time budget, and emits schema-versioned
// alerts back into the ledger and the metrics registry. The emitted drift
// signal is the input a future drift-adaptive replanner consumes.
//
// The package has three consumption paths:
//
//   - live, in-process: hand Monitor.Observe to coupling.Runner.Observe (or
//     set campaign.Config.Monitor) and every ledger-style event is scored as
//     the run produces it;
//   - live, out-of-process: Follow tails a growing JSONL ledger file and
//     replays appended events into a Monitor (cmd/runmon tail and serve);
//   - post-hoc: Analyze replays a complete ledger and returns the final
//     Snapshot (cmd/runmon report, insitu-sched -monitor).
package runmon

import (
	"fmt"
	"math"
	"sort"

	"insitu/internal/core"
	"insitu/internal/obs"
)

// StreamSim is the residual stream tracking simulation step time.
const StreamSim = "sim"

// AnalyzeStream names the residual stream for one kernel's analysis steps.
func AnalyzeStream(kernel string) string { return kernel + "/analyze" }

// OutputStream names the residual stream for one kernel's output steps.
func OutputStream(kernel string) string { return kernel + "/output" }

// Profile is the predicted side of the residual computation: the expected
// duration of one event on each stream, plus the budget the schedule was
// solved against. Streams absent from the map self-calibrate inside the
// monitor from their first observations.
type Profile struct {
	// App names the application the profile was built for (informational).
	App string
	// Steps is the planned run length in simulation steps.
	Steps int
	// SimSec is the predicted simulation time per step (0 = self-calibrate).
	SimSec float64
	// ThresholdSec is the total analysis-time budget of the schedule
	// (core.Resources.TimeThreshold); 0 disables budget projection.
	ThresholdSec float64
	// PlannedSec is the schedule's predicted total analysis time over the
	// whole run (core.Recommendation.TotalTime).
	PlannedSec float64
	// Streams maps stream name to the predicted seconds per event.
	Streams map[string]float64
}

// FromPlan builds the profile a solved schedule implies: per-invocation
// analysis cost ct and output cost ot (derived from om/bw when ot is unset,
// the §3.2 substitution) for every enabled analysis, plus the probed
// simulation rate and the solve's budget.
func FromPlan(specs []core.AnalysisSpec, rec *core.Recommendation, res core.Resources, simSecPerStep float64) *Profile {
	p := &Profile{
		Steps:        res.Steps,
		SimSec:       simSecPerStep,
		ThresholdSec: res.TimeThreshold,
		Streams:      map[string]float64{},
	}
	if rec != nil {
		p.PlannedSec = rec.TotalTime
	}
	if simSecPerStep > 0 {
		p.Streams[StreamSim] = simSecPerStep
	}
	bySpec := map[string]core.AnalysisSpec{}
	for _, s := range specs {
		bySpec[s.Name] = s
	}
	if rec == nil {
		return p
	}
	for _, s := range rec.Schedules {
		if !s.Enabled {
			continue
		}
		spec, ok := bySpec[s.Name]
		if !ok {
			continue
		}
		if spec.CT > 0 {
			p.Streams[AnalyzeStream(s.Name)] = spec.CT
		}
		ot := spec.OT
		if ot == 0 && spec.OM > 0 && res.Bandwidth > 0 {
			ot = float64(spec.OM) / res.Bandwidth
		}
		if ot > 0 {
			p.Streams[OutputStream(s.Name)] = ot
		}
	}
	return p
}

// PlanEvents serializes the profile as ledger "plan" events, one per stream
// plus one run-level event carrying the budget, so a ledger written by a
// monitored run is self-describing: runmon tail/report/serve rebuild the
// profile from the file alone via FromEvents.
func (p *Profile) PlanEvents() []obs.LedgerEvent {
	if p == nil {
		return nil
	}
	events := []obs.LedgerEvent{{
		Type: obs.LedgerPlan, Name: StreamSim,
		Args: map[string]float64{
			"sec_per_event": p.SimSec,
			"steps":         float64(p.Steps),
			"threshold_sec": p.ThresholdSec,
			"planned_sec":   p.PlannedSec,
		},
	}}
	for _, name := range sortedStreamNames(p.Streams) {
		if name == StreamSim {
			continue
		}
		events = append(events, obs.LedgerEvent{
			Type: obs.LedgerPlan, Name: name,
			Args: map[string]float64{"sec_per_event": p.Streams[name]},
		})
	}
	return events
}

// absorbPlanEvent folds one ledger "plan" event into the profile; FromEvents
// and the monitor both use it, so in-ledger plans and in-process plans are
// interchangeable.
func (p *Profile) absorbPlanEvent(e obs.LedgerEvent) {
	if p.Streams == nil {
		p.Streams = map[string]float64{}
	}
	sec := e.Args["sec_per_event"]
	if e.Name == StreamSim {
		p.SimSec = sec
		if v := e.Args["steps"]; v > 0 {
			p.Steps = int(v)
		}
		if v := e.Args["threshold_sec"]; v > 0 {
			p.ThresholdSec = v
		}
		if v := e.Args["planned_sec"]; v > 0 {
			p.PlannedSec = v
		}
	}
	if sec > 0 && !math.IsNaN(sec) && !math.IsInf(sec, 0) {
		p.Streams[e.Name] = sec
	}
}

// FromEvents reconstructs a profile from a ledger's plan events. It returns
// nil when the ledger carries none, in which case a monitor self-calibrates
// every stream.
func FromEvents(events []obs.LedgerEvent) *Profile {
	var p *Profile
	for _, e := range events {
		if e.Type != obs.LedgerPlan {
			continue
		}
		if p == nil {
			p = &Profile{Streams: map[string]float64{}}
		}
		p.absorbPlanEvent(e)
	}
	return p
}

func sortedStreamNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String summarizes the profile for logs.
func (p *Profile) String() string {
	if p == nil {
		return "runmon: no profile (self-calibrating)"
	}
	return fmt.Sprintf("runmon: profile with %d stream(s), steps=%d threshold=%.3fs planned=%.3fs",
		len(p.Streams), p.Steps, p.ThresholdSec, p.PlannedSec)
}
