package runmon

import (
	"encoding/json"
	"net/http"

	"insitu/internal/obs"
)

// RunInfo is one row of the /runs listing.
type RunInfo struct {
	App     string  `json:"app,omitempty"`
	Runs    int     `json:"runs"`
	Step    int     `json:"step"`
	Steps   int     `json:"steps,omitempty"`
	Ended   bool    `json:"ended"`
	Streams int     `json:"streams"`
	Alerts  int     `json:"alerts"`
	AtRisk  bool    `json:"budget_at_risk"`
	EWMAMax float64 `json:"ewma_rel_err_max"`
}

// NewServeMux builds the runmon HTTP surface over a live monitor,
// generalizing the benchobs serve endpoint set:
//
//	/            the drift report as HTML (the live dashboard)
//	/runs        JSON listing of the monitored run(s)
//	/drift.json  the full Snapshot as JSON
//	/solve.json  the latest observed solver flight stream as JSON
//	/solve       the live gap-closure curve page for that stream
//	/metrics     Prometheus text exposition of reg (runmon gauges included)
//	/metrics.json, /debug/pprof/...  as in benchobs serve
//
// reg should be the same registry handed to the monitor's Config.Metrics so
// the exported detector gauges are live.
func NewServeMux(m *Monitor, reg *obs.Registry) *http.ServeMux {
	mux := obs.NewServeMux(reg)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = m.Snapshot().WriteHTML(w)
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, req *http.Request) {
		s := m.Snapshot()
		info := RunInfo{
			App:     s.App,
			Runs:    s.Runs,
			Step:    s.Step,
			Steps:   s.Steps,
			Ended:   s.Ended,
			Streams: len(s.Streams),
			Alerts:  len(s.Alerts),
			AtRisk:  s.BudgetAtRisk,
		}
		for _, st := range s.Streams {
			if e := abs(st.EWMARelErr); e > info.EWMAMax {
				info.EWMAMax = e
			}
		}
		writeJSON(w, []RunInfo{info})
	})
	mux.HandleFunc("/drift.json", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, m.Snapshot())
	})
	// /solve.json and /solve serve the most recent solver flight stream the
	// monitor has observed (empty until a solveprog event arrives).
	snap := func() (string, []obs.SolveProgress) {
		flights := m.Flights()
		if len(flights) == 0 {
			return "", nil
		}
		last := flights[len(flights)-1]
		return last.Name, last.Records
	}
	mux.Handle("/solve.json", obs.FlightJSONHandler(snap))
	mux.Handle("/solve", obs.GapCurveHandler(snap))
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
