package runmon

import (
	"math"
	"testing"
)

func TestEWMASeedsAndSmooths(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if got := e.Observe(1.0); got != 1.0 {
		t.Fatalf("first observation should seed the mean, got %g", got)
	}
	if got := e.Observe(0); got != 0.5 {
		t.Fatalf("after 1, 0 with alpha .5 want 0.5, got %g", got)
	}
	if got := e.Observe(0.5); got != 0.5 {
		t.Fatalf("mean should stay at 0.5, got %g", got)
	}
	if e.N() != 3 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestCUSUMDetectsSustainedShift(t *testing.T) {
	c := CUSUM{Slack: 0.25, Threshold: 1.0}
	// Noise within the slack never accumulates.
	for i := 0; i < 100; i++ {
		x := 0.2
		if i%2 == 0 {
			x = -0.2
		}
		if c.Observe(x) {
			t.Fatalf("alarm on noise at observation %d", i)
		}
	}
	if pos, neg := c.Stat(); pos != 0 || neg != 0 {
		t.Fatalf("statistics accumulated on noise: %g, %g", pos, neg)
	}
	// A sustained +0.5 shift (1.5x inflation) accumulates 0.25 per step:
	// alarm strictly after the 4th shifted observation crosses 1.0.
	steps := 0
	for !c.Observe(0.5) {
		steps++
		if steps > 10 {
			t.Fatal("no alarm after 10 shifted observations")
		}
	}
	if steps+1 > 5 {
		t.Fatalf("alarm took %d observations, want <= 5", steps+1)
	}
	if c.Direction() != "slow" {
		t.Fatalf("direction = %q", c.Direction())
	}
	c.Reset()
	if c.Alarm() {
		t.Fatal("alarm survives reset")
	}
}

func TestCUSUMDetectsSpeedup(t *testing.T) {
	c := CUSUM{Slack: 0.25, Threshold: 1.0}
	fired := false
	for i := 0; i < 10 && !fired; i++ {
		fired = c.Observe(-0.75) // run twice as fast as predicted
	}
	if !fired {
		t.Fatal("no alarm on sustained speedup")
	}
	if c.Direction() != "fast" {
		t.Fatalf("direction = %q", c.Direction())
	}
}

func TestCUSUMImmediateJump(t *testing.T) {
	// A single catastrophic observation (3x degradation: x = 2) crosses
	// h = 1.0 immediately: 2 - 0.25 > 1.
	c := CUSUM{Slack: 0.25, Threshold: 1.0}
	if !c.Observe(2.0) {
		t.Fatal("3x degradation should alarm on first observation")
	}
}

func TestRelErrFinite(t *testing.T) {
	// Guard the residual math against the degenerate predictions the
	// monitor may compute from self-calibration.
	for _, pred := range []float64{1e-9, 1, 1e9} {
		x := (2*pred - pred) / pred
		if math.IsNaN(x) || math.IsInf(x, 0) || x != 1 {
			t.Fatalf("rel err at pred=%g: %g", pred, x)
		}
	}
}
