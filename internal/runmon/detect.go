package runmon

// EWMA is an exponentially weighted moving average of a residual stream,
// the smoothed "how far off is the model right now" signal. The first
// observation seeds the mean directly so early values are not dragged
// toward zero.
type EWMA struct {
	// Alpha is the smoothing weight in (0, 1]; larger reacts faster.
	Alpha float64
	mean  float64
	n     int
}

// Observe folds x into the average and returns the updated value.
func (e *EWMA) Observe(x float64) float64 {
	e.n++
	if e.n == 1 {
		e.mean = x
		return e.mean
	}
	e.mean += e.Alpha * (x - e.mean)
	return e.mean
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.mean }

// N returns the number of observations folded in.
func (e *EWMA) N() int { return e.n }

// CUSUM is a two-sided cumulative-sum change detector over a residual
// stream (Page 1954, the standard tabular form): the positive statistic
//
//	g+ ← max(0, g+ + x − k)
//
// accumulates sustained positive drift (the run slower than predicted) and
// the negative statistic mirrors it for speedups. Slack k absorbs noise —
// residuals within ±k never accumulate — and an alarm fires when either
// statistic crosses the threshold h. Unlike a plain EWMA cut-off, CUSUM
// detects both abrupt jumps and slow creep: any sustained shift past k
// grows one statistic linearly until it crosses h.
type CUSUM struct {
	// Slack is k, the per-observation allowance (in relative-error units).
	Slack float64
	// Threshold is h, the alarm level.
	Threshold float64
	pos, neg  float64
}

// Observe folds residual x in and reports whether an alarm level is crossed
// after the update.
func (c *CUSUM) Observe(x float64) bool {
	c.pos += x - c.Slack
	if c.pos < 0 {
		c.pos = 0
	}
	c.neg += -x - c.Slack
	if c.neg < 0 {
		c.neg = 0
	}
	return c.Alarm()
}

// Alarm reports whether either statistic currently exceeds the threshold.
func (c *CUSUM) Alarm() bool {
	return c.pos > c.Threshold || c.neg > c.Threshold
}

// Stat returns the positive (slow) and negative (fast) statistics.
func (c *CUSUM) Stat() (pos, neg float64) { return c.pos, c.neg }

// Direction classifies the alarm: "slow" when the positive statistic
// dominates (observed > predicted), "fast" otherwise.
func (c *CUSUM) Direction() string {
	if c.pos >= c.neg {
		return "slow"
	}
	return "fast"
}

// Reset clears both statistics (a replanner does this after adapting).
func (c *CUSUM) Reset() { c.pos, c.neg = 0, 0 }
