package runmon

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"insitu/internal/core"
	"insitu/internal/obs"
)

// testProfile is a two-stream profile: 10ms sim steps and a kernel with 4ms
// analyses every other step.
func testProfile() *Profile {
	return &Profile{
		App: "test", Steps: 100, SimSec: 0.010,
		ThresholdSec: 0.5, PlannedSec: 0.2,
		Streams: map[string]float64{
			StreamSim:            0.010,
			AnalyzeStream("rdf"): 0.004,
		},
	}
}

func stepEvent(step int, sec float64) obs.LedgerEvent {
	return obs.LedgerEvent{Type: obs.LedgerStep, Step: step, Dur: sec * 1e6}
}

func analysisEvent(step int, kernel string, sec float64) obs.LedgerEvent {
	return obs.LedgerEvent{Type: obs.LedgerAnalysis, Name: kernel, Step: step, Dur: sec * 1e6}
}

func TestMonitorNoAlertsOnFaithfulRun(t *testing.T) {
	m := NewMonitor(testProfile(), Config{})
	m.Observe(obs.LedgerEvent{Type: obs.LedgerRunStart, Name: "mdsim/water"})
	for step := 1; step <= 100; step++ {
		// ±2% wobble around the prediction.
		wobble := 1.0 + 0.02*float64(step%3-1)
		m.Observe(stepEvent(step, 0.010*wobble))
		if step%2 == 0 {
			m.Observe(analysisEvent(step, "rdf", 0.004*wobble))
		}
	}
	m.Observe(obs.LedgerEvent{Type: obs.LedgerRunEnd})
	s := m.Snapshot()
	if len(s.Alerts) != 0 {
		t.Fatalf("faithful run raised alerts: %+v", s.Alerts)
	}
	if s.App != "mdsim/water" || !s.Ended || s.Step != 100 {
		t.Fatalf("snapshot header = %+v", s)
	}
	if len(s.Streams) != 2 {
		t.Fatalf("streams = %d, want 2", len(s.Streams))
	}
	if s.BudgetAtRisk {
		t.Fatal("budget flagged on a faithful run")
	}
}

func TestMonitorDetectsStepInflationWithinFiveSteps(t *testing.T) {
	m := NewMonitor(testProfile(), Config{})
	change := 50
	for step := 1; step <= 100; step++ {
		sec := 0.010
		if step >= change {
			sec *= 1.5
		}
		m.Observe(stepEvent(step, sec))
	}
	s := m.Snapshot()
	if s.DriftCount() == 0 {
		t.Fatal("no drift alert on 1.5x step inflation")
	}
	a := s.Alerts[0]
	if a.Stream != StreamSim || a.Direction != "slow" {
		t.Fatalf("alert = %+v", a)
	}
	if a.Step < change || a.Step > change+5 {
		t.Fatalf("detected at step %d, want within 5 of %d", a.Step, change)
	}
	// One alert per stream, not one per observation past the threshold.
	if n := s.DriftCount(); n != 1 {
		t.Fatalf("drift alerts = %d, want 1", n)
	}
}

func TestMonitorBudgetAtRisk(t *testing.T) {
	// Planned 0.2s of analysis against a 0.5s threshold; triple the actual
	// analysis cost and the projection must cross the budget line.
	m := NewMonitor(testProfile(), Config{})
	found := false
	for step := 1; step <= 100 && !found; step++ {
		m.Observe(stepEvent(step, 0.010))
		if step%2 == 0 {
			m.Observe(analysisEvent(step, "rdf", 0.020)) // 5x the predicted 4ms
		}
		found = m.Snapshot().BudgetAtRisk
	}
	if !found {
		t.Fatal("budget never flagged despite 5x analysis inflation")
	}
	s := m.Snapshot()
	var budget *Alert
	for i := range s.Alerts {
		if s.Alerts[i].Kind == AlertBudget {
			budget = &s.Alerts[i]
		}
	}
	if budget == nil {
		t.Fatalf("no budget alert in %+v", s.Alerts)
	}
	if budget.Observed <= budget.Predicted {
		t.Fatalf("budget alert projection %g <= threshold %g", budget.Observed, budget.Predicted)
	}
}

func TestMonitorSelfCalibration(t *testing.T) {
	// No profile at all: the first Calibration observations seed the
	// baseline, then drift past it is detected.
	m := NewMonitor(nil, Config{Calibration: 5})
	for step := 1; step <= 30; step++ {
		sec := 0.010
		if step >= 20 {
			sec = 0.030
		}
		m.Observe(stepEvent(step, sec))
	}
	s := m.Snapshot()
	if s.DriftCount() != 1 {
		t.Fatalf("drift alerts = %d, want 1 (self-calibrated)", s.DriftCount())
	}
	if a := s.Alerts[0]; a.Step < 20 || a.Step > 25 {
		t.Fatalf("detected at %d, want soon after 20", a.Step)
	}
}

func TestMonitorAlertsFlowToLedgerAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	ledger := obs.NewEventLog(&buf)
	reg := obs.NewRegistry()
	m := NewMonitor(testProfile(), Config{Ledger: ledger, Metrics: reg})
	for step := 1; step <= 20; step++ {
		m.Observe(stepEvent(step, 0.030)) // 3x from the start
	}
	if err := ledger.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadLedger(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var alert *obs.LedgerEvent
	for i := range events {
		if events[i].Type == obs.LedgerAlert {
			alert = &events[i]
		}
	}
	if alert == nil {
		t.Fatal("no alert event written to the ledger")
	}
	if alert.Name != StreamSim || alert.Args["alert_v"] != AlertSchemaVersion {
		t.Fatalf("alert event = %+v", alert)
	}
	if alert.Args["predicted_sec"] != 0.010 {
		t.Fatalf("alert predicted_sec = %g", alert.Args["predicted_sec"])
	}

	// Metrics registry carries the detector state and the alert counter.
	var sawCounter, sawEWMA bool
	for _, metric := range reg.Snapshot() {
		switch metric.Name {
		case "runmon_alerts_total":
			if metric.Value >= 1 {
				sawCounter = true
			}
		case "runmon_ewma_rel_err":
			if metric.Labels["stream"] == StreamSim {
				sawEWMA = true
			}
		}
	}
	if !sawCounter || !sawEWMA {
		t.Fatalf("metrics missing: counter=%v ewma=%v", sawCounter, sawEWMA)
	}
}

func TestMonitorIgnoresUnknownAndNil(t *testing.T) {
	var m *Monitor
	m.Observe(stepEvent(1, 1)) // nil-safe
	_ = m.Snapshot()
	_ = m.Alerts()
	m.SetProfile(nil)

	real := NewMonitor(nil, Config{})
	real.Observe(obs.LedgerEvent{Type: "quantum_flux", Step: 3, Dur: 99})
	if s := real.Snapshot(); len(s.Streams) != 0 {
		t.Fatalf("unknown event created streams: %+v", s.Streams)
	}
}

func TestProfileFromPlanAndEventsRoundTrip(t *testing.T) {
	specs := []core.AnalysisSpec{
		{Name: "rdf", CT: 0.004, OM: 1 << 20, MinInterval: 2},
		{Name: "msd", CT: 0.002, OT: 0.001, MinInterval: 2},
		{Name: "off", CT: 0.009, MinInterval: 2},
	}
	rec := &core.Recommendation{
		TotalTime: 0.25,
		Schedules: []core.AnalysisSchedule{
			{Name: "rdf", Enabled: true, Count: 10},
			{Name: "msd", Enabled: true, Count: 5},
			{Name: "off", Enabled: false},
		},
	}
	res := core.Resources{Steps: 100, TimeThreshold: 0.5, Bandwidth: 1 << 28}
	p := FromPlan(specs, rec, res, 0.010)

	if p.Streams[AnalyzeStream("rdf")] != 0.004 {
		t.Fatalf("rdf ct = %g", p.Streams[AnalyzeStream("rdf")])
	}
	// ot derived from om/bw for rdf, taken directly for msd.
	wantOT := float64(1<<20) / float64(1<<28)
	if got := p.Streams[OutputStream("rdf")]; got != wantOT {
		t.Fatalf("rdf ot = %g, want %g", got, wantOT)
	}
	if p.Streams[OutputStream("msd")] != 0.001 {
		t.Fatalf("msd ot = %g", p.Streams[OutputStream("msd")])
	}
	// Disabled analyses contribute no streams.
	if _, ok := p.Streams[AnalyzeStream("off")]; ok {
		t.Fatal("disabled analysis got a stream")
	}

	// Round trip through ledger plan events.
	var buf bytes.Buffer
	ledger := obs.NewEventLog(&buf)
	ledger.SetClock(func() time.Time { return time.Unix(0, 0) })
	for _, e := range p.PlanEvents() {
		ledger.Append(e)
	}
	ledger.Close()
	events, err := obs.ReadLedger(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	got := FromEvents(events)
	if got == nil {
		t.Fatal("FromEvents returned nil")
	}
	if got.SimSec != p.SimSec || got.Steps != p.Steps ||
		got.ThresholdSec != p.ThresholdSec || got.PlannedSec != p.PlannedSec {
		t.Fatalf("round trip header: got %+v want %+v", got, p)
	}
	for name, sec := range p.Streams {
		if got.Streams[name] != sec {
			t.Fatalf("stream %s: got %g want %g", name, got.Streams[name], sec)
		}
	}
	// A ledger without plan events yields no profile.
	if FromEvents([]obs.LedgerEvent{stepEvent(1, 0.01)}) != nil {
		t.Fatal("FromEvents invented a profile")
	}
}

// Regression: a plan event arriving after a stream has begun self-calibrating
// must rebaseline that stream on the plan's prediction. The old code left the
// pre-plan observations in the calibration sum, so the eventual baseline
// double-counted them and the plan prediction was never adopted.
func TestPlanEventRebaselinesCalibratingStream(t *testing.T) {
	m := NewMonitor(nil, Config{Calibration: 5})
	// Three slow observations land before the plan (calibration still open).
	for step := 1; step <= 3; step++ {
		m.Observe(analysisEvent(step, "rdf", 0.050))
	}
	m.Observe(obs.LedgerEvent{
		Type: obs.LedgerPlan, Name: AnalyzeStream("rdf"),
		Args: map[string]float64{"sec_per_event": 0.020},
	})
	s := m.Snapshot()
	if len(s.Streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(s.Streams))
	}
	if got := s.Streams[0].PredictedSec; got != 0.020 {
		t.Fatalf("predicted after plan = %gs, want the plan's 0.020s (calibrated mean leaked through)", got)
	}
	// The pre-plan observations must not have been scored against the new
	// baseline: residual statistics start clean.
	if st := s.Streams[0]; st.CUSUMPos != 0 || st.CUSUMNeg != 0 || st.EWMARelErr != 0 {
		t.Fatalf("detector state not reset by plan event: %+v", st)
	}
	// On-plan observations after the rebaseline stay silent.
	for step := 4; step <= 20; step++ {
		m.Observe(analysisEvent(step, "rdf", 0.020))
	}
	if alerts := m.Alerts(); len(alerts) != 0 {
		t.Fatalf("faithful post-plan observations alerted: %+v", alerts)
	}
}

// A plan event re-emitted mid-run (what an adopted replan does) resets the
// drifted stream's detectors so the adapted schedule is scored fresh, and a
// new threshold re-arms the budget alert.
func TestPlanEventRebaselinesDriftedStream(t *testing.T) {
	m := NewMonitor(testProfile(), Config{})
	for step := 1; step <= 10; step++ {
		m.Observe(stepEvent(step, 0.020)) // 2x the predicted 10ms
	}
	if m.Snapshot().DriftCount() == 0 {
		t.Fatal("sustained 2x inflation did not alert")
	}
	// Replan: the adapted profile predicts the observed 20ms steps.
	m.Observe(obs.LedgerEvent{
		Type: obs.LedgerPlan, Name: StreamSim,
		Args: map[string]float64{
			"sec_per_event": 0.020, "steps": 100,
			"threshold_sec": 0.5, "planned_sec": 0.2,
		},
	})
	s := m.Snapshot()
	if s.Streams[0].Alerted {
		t.Fatal("stream still flagged after rebaseline")
	}
	if s.Streams[0].PredictedSec != 0.020 {
		t.Fatalf("predicted = %g, want rebaselined 0.020", s.Streams[0].PredictedSec)
	}
	if s.BudgetAtRisk {
		t.Fatal("budget flag survived a plan event carrying a threshold")
	}
	for step := 11; step <= 30; step++ {
		m.Observe(stepEvent(step, 0.020))
	}
	if got := m.Snapshot().DriftCount(); got != 1 {
		t.Fatalf("post-rebaseline on-plan steps re-alerted: %d drift alerts, want 1", got)
	}
}

// Replan ledger events round-trip through the monitor into the snapshot's
// replan timeline and the text report.
func TestMonitorCollectsReplanEvents(t *testing.T) {
	m := NewMonitor(testProfile(), Config{})
	rec := ReplanRecord{
		Step: 40, Trigger: AlertDrift, Stream: StreamSim,
		Reason: ReplanAdopted, Adopted: true,
		OldValue: 3, NewValue: 5, OldCostSec: 0.30, NewCostSec: 0.25,
		BudgetSec: 0.40, SpentSec: 0.10,
	}
	m.Observe(rec.Event())
	m.Observe(ReplanRecord{
		Step: 80, Trigger: AlertBudget, Stream: "budget",
		Reason: ReplanNoImprovement, OldValue: 5, BudgetSec: 0.05,
	}.Event())
	got := m.Replans()
	if len(got) != 2 {
		t.Fatalf("replans = %d, want 2", len(got))
	}
	if got[0] != rec {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got[0], rec)
	}
	if got[1].Trigger != AlertBudget || got[1].Reason != ReplanNoImprovement || got[1].Adopted {
		t.Fatalf("second record = %+v", got[1])
	}
	if got[0].Delta() != 2 || got[1].Delta() != 0 {
		t.Fatalf("deltas = %g, %g", got[0].Delta(), got[1].Delta())
	}
	var buf bytes.Buffer
	if err := m.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "replans: 2") || !strings.Contains(out, "[adopted]") ||
		!strings.Contains(out, "[no_improvement]") {
		t.Fatalf("report missing replan timeline:\n%s", out)
	}
	// Events from a future replan schema are skipped, not misread.
	e := rec.Event()
	e.Args["replan_v"] = ReplanSchemaVersion + 1
	m.Observe(e)
	if len(m.Replans()) != 2 {
		t.Fatal("future-schema replan event was not skipped")
	}
}

// flightEvents builds a minimal well-formed solveprog run as ledger events.
func flightEvents(name string) []obs.LedgerEvent {
	recs := []obs.SolveProgress{
		{Seq: 0, Kind: obs.SolveProgStart, Workers: 1, Vars: 4, IntVars: 2, Constraints: 5},
		{Seq: 1, Kind: obs.SolveProgWave, Wave: 1, Workers: 1, Nodes: 1, Open: 1,
			HasInc: true, Incumbent: 8, HasBound: true, Bound: 12},
		{Seq: 2, Kind: obs.SolveProgEnd, Wave: 2, Workers: 1, Nodes: 2,
			HasInc: true, Incumbent: 10, HasBound: true, Bound: 10, Status: "optimal"},
	}
	var out []obs.LedgerEvent
	for _, p := range recs {
		out = append(out, p.Event(name))
	}
	return out
}

func TestMonitorObservesSolveProg(t *testing.T) {
	m := NewMonitor(nil, Config{})
	for _, e := range flightEvents("plan") {
		m.Observe(e)
	}
	for _, e := range flightEvents("replan") {
		m.Observe(e)
	}
	flights := m.Flights()
	if len(flights) != 2 || flights[0].Name != "plan" || flights[1].Name != "replan" {
		t.Fatalf("flights = %+v", flights)
	}
	if len(flights[1].Records) != 3 {
		t.Fatalf("replan run holds %d records, want 3", len(flights[1].Records))
	}
	snap := m.Snapshot()
	if len(snap.Flights) != 2 {
		t.Fatalf("snapshot flights = %d", len(snap.Flights))
	}
	var buf strings.Builder
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"solve progress plan", "solve progress replan", "final: optimal"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, buf.String())
		}
	}
}

func TestMonitorFlightRetentionBounds(t *testing.T) {
	m := NewMonitor(nil, Config{})
	for i := 0; i < maxFlightRuns+3; i++ {
		for _, e := range flightEvents("solve") {
			m.Observe(e)
		}
	}
	if got := len(m.Flights()); got != maxFlightRuns {
		t.Fatalf("retained %d flight runs, want %d", got, maxFlightRuns)
	}
}
