package runmon

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"insitu/internal/obs"
)

func serveGet(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestServeMuxEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMonitor(testProfile(), Config{Metrics: reg})
	m.Observe(obs.LedgerEvent{Type: obs.LedgerRunStart, Name: "mdsim/serve"})
	for step := 1; step <= 20; step++ {
		m.Observe(stepEvent(step, 0.030)) // sustained 3x drift
	}
	mux := NewServeMux(m, reg)

	code, body := serveGet(t, mux, "/")
	if code != http.StatusOK || !strings.Contains(body, "Run drift report") {
		t.Fatalf("/ -> %d %q", code, body[:min(len(body), 80)])
	}

	code, body = serveGet(t, mux, "/runs")
	if code != http.StatusOK {
		t.Fatalf("/runs -> %d", code)
	}
	var runs []RunInfo
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs not JSON: %v\n%s", err, body)
	}
	if len(runs) != 1 || runs[0].App != "mdsim/serve" || runs[0].Step != 20 || runs[0].Alerts == 0 {
		t.Fatalf("/runs = %+v", runs)
	}

	code, body = serveGet(t, mux, "/drift.json")
	if code != http.StatusOK {
		t.Fatalf("/drift.json -> %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/drift.json not JSON: %v", err)
	}
	if snap.DriftCount() != 1 || len(snap.Streams) != 1 {
		t.Fatalf("/drift.json = %+v", snap)
	}

	// The obs endpoints are still mounted underneath.
	code, body = serveGet(t, mux, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "runmon_cusum_pos") {
		t.Fatalf("/metrics -> %d, missing runmon gauges:\n%s", code, body)
	}

	if code, _ := serveGet(t, mux, "/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope -> %d, want 404", code)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestServeMuxFlightRoutes(t *testing.T) {
	m := NewMonitor(nil, Config{})
	mux := NewServeMux(m, nil)

	// Before any solveprog event the routes serve empty documents.
	code, body := serveGet(t, mux, "/solve")
	if code != http.StatusOK || !strings.Contains(body, "no solveprog events") {
		t.Fatalf("/solve before flights -> %d %q", code, body)
	}

	for _, e := range flightEvents("plan") {
		m.Observe(e)
	}
	code, body = serveGet(t, mux, "/solve.json")
	if code != http.StatusOK {
		t.Fatalf("/solve.json -> %d", code)
	}
	var doc struct {
		Schema int                 `json:"solveprog_v"`
		Name   string              `json:"name"`
		Events []obs.SolveProgress `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/solve.json not JSON: %v\n%s", err, body)
	}
	if doc.Schema != obs.SolveProgSchemaVersion || doc.Name != "plan" || len(doc.Events) != 3 {
		t.Fatalf("/solve.json doc = %+v", doc)
	}
	code, body = serveGet(t, mux, "/solve")
	if code != http.StatusOK || !strings.Contains(body, "<svg") || !strings.Contains(body, "plan") {
		t.Fatalf("/solve -> %d %q", code, body[:min(len(body), 120)])
	}
}
