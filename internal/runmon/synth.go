package runmon

import (
	"math/rand"

	"insitu/internal/obs"
)

// Perturbation kinds a SynthRun can inject.
const (
	PerturbNone       = "none"               // control: profiles hold for the whole run
	PerturbSimTime    = "sim_inflation"      // simulation step time inflates by Factor from ChangeStep on
	PerturbOutputBW   = "output_degradation" // output durations inflate by Factor (bandwidth collapse)
	PerturbAnalysisCT = "analysis_inflation" // analysis compute time inflates by Factor
)

// SynthKernel is one synthetic analysis in a SynthRun.
type SynthKernel struct {
	Name        string  `json:"name"`
	AnalyzeSec  float64 `json:"analyze_sec"`  // true per-analysis duration
	OutputSec   float64 `json:"output_sec"`   // true per-output duration
	Every       int     `json:"every"`        // analysis on steps divisible by Every
	OutputEvery int     `json:"output_every"` // output on steps divisible by OutputEvery
	Bytes       int64   `json:"bytes"`        // bytes per output event
}

// SynthRun describes a synthetic monitored run: a base profile, a seeded
// noise level, and one injected mid-run perturbation. The golden corpus
// pins a family of these (internal/experiments.PerturbedRuns) and the
// detection tests replay them: the CUSUM detector must flag the perturbed
// variants within five steps of ChangeStep and stay silent on the control.
type SynthRun struct {
	Name         string        `json:"name"`
	App          string        `json:"app"`
	Steps        int           `json:"steps"`
	SimSec       float64       `json:"sim_sec"`       // true simulation seconds per step
	ThresholdSec float64       `json:"threshold_sec"` // analysis budget for the run
	NoiseFrac    float64       `json:"noise_frac"`    // multiplicative noise, uniform in ±NoiseFrac
	Kind         string        `json:"kind"`          // one of the Perturb* kinds
	ChangeStep   int           `json:"change_step"`   // first perturbed step (0 for PerturbNone)
	Factor       float64       `json:"factor"`        // duration multiplier from ChangeStep on
	Kernels      []SynthKernel `json:"kernels"`
}

// PlannedSec returns the run's true total analysis+output time, the number
// a scheduler's prediction would carry.
func (r SynthRun) PlannedSec() float64 {
	total := 0.0
	for _, k := range r.Kernels {
		for step := 1; step <= r.Steps; step++ {
			if k.Every > 0 && step%k.Every == 0 {
				total += k.AnalyzeSec
			}
			if k.OutputEvery > 0 && step%k.OutputEvery == 0 {
				total += k.OutputSec
			}
		}
	}
	return total
}

// Profile returns the predicted profile a monitored run of this scenario
// would write as plan events: the unperturbed truth.
func (r SynthRun) Profile() *Profile {
	p := &Profile{
		App:          r.App,
		Steps:        r.Steps,
		SimSec:       r.SimSec,
		ThresholdSec: r.ThresholdSec,
		PlannedSec:   r.PlannedSec(),
		Streams:      map[string]float64{StreamSim: r.SimSec},
	}
	for _, k := range r.Kernels {
		if k.Every > 0 {
			p.Streams[AnalyzeStream(k.Name)] = k.AnalyzeSec
		}
		if k.OutputEvery > 0 {
			p.Streams[OutputStream(k.Name)] = k.OutputSec
		}
	}
	return p
}

// Events synthesizes the run's ledger deterministically from the seed: plan
// events first (the ledger self-describes its predictions), then run_start,
// the per-step step/analysis/output events with seeded multiplicative noise
// and the injected perturbation, then run_end. Durations are microseconds,
// as in real ledgers.
func (r SynthRun) Events(seed int64) []obs.LedgerEvent {
	rng := rand.New(rand.NewSource(seed))
	noise := func() float64 {
		if r.NoiseFrac <= 0 {
			return 1
		}
		return 1 + r.NoiseFrac*(2*rng.Float64()-1)
	}
	perturbed := func(step int, kind string) float64 {
		if r.Kind == kind && r.ChangeStep > 0 && step >= r.ChangeStep && r.Factor > 0 {
			return r.Factor
		}
		return 1
	}
	us := func(sec float64) float64 { return sec * 1e6 }

	events := append([]obs.LedgerEvent(nil), r.Profile().PlanEvents()...)
	events = append(events, obs.LedgerEvent{
		Type: obs.LedgerRunStart, Name: r.App,
		Args: map[string]float64{"steps": float64(r.Steps), "kernels": float64(len(r.Kernels))},
	})
	for step := 1; step <= r.Steps; step++ {
		events = append(events, obs.LedgerEvent{
			Type: obs.LedgerStep, Step: step,
			Dur: us(r.SimSec * noise() * perturbed(step, PerturbSimTime)),
		})
		for _, k := range r.Kernels {
			if k.Every > 0 && step%k.Every == 0 {
				events = append(events, obs.LedgerEvent{
					Type: obs.LedgerAnalysis, Name: k.Name, Step: step,
					Dur: us(k.AnalyzeSec * noise() * perturbed(step, PerturbAnalysisCT)),
				})
			}
			if k.OutputEvery > 0 && step%k.OutputEvery == 0 {
				events = append(events, obs.LedgerEvent{
					Type: obs.LedgerOutput, Name: k.Name, Step: step,
					Dur:   us(k.OutputSec * noise() * perturbed(step, PerturbOutputBW)),
					Bytes: k.Bytes,
				})
			}
		}
	}
	events = append(events, obs.LedgerEvent{Type: obs.LedgerRunEnd})
	return events
}
