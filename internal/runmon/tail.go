package runmon

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"time"

	"insitu/internal/obs"
)

// Follower incrementally reads a growing JSONL ledger file. Each Poll picks
// up exactly the bytes appended since the last one, keeping any trailing
// partial line buffered until its newline arrives — the EventLog writer
// flushes whole lines, but a tailer must still never split one. A file that
// shrinks under the follower (truncate-and-rewrite) resets it to the start.
type Follower struct {
	path    string
	offset  int64
	partial []byte
	skipped int // newer-schema lines skipped, counted like ReadLedgerStats
}

// NewFollower tails the ledger at path from the beginning.
func NewFollower(path string) *Follower {
	return &Follower{path: path}
}

// SkippedNewer returns how many newer-schema lines were skipped so far.
func (f *Follower) SkippedNewer() int { return f.skipped }

// Poll returns the events appended since the previous call. A missing file
// is not an error — the run may not have started yet — it simply yields no
// events. Malformed JSON is an error; newer-schema lines are skipped with a
// count, exactly like obs.ReadLedgerStats.
func (f *Follower) Poll() ([]obs.LedgerEvent, error) {
	file, err := os.Open(f.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	defer file.Close()

	info, err := file.Stat()
	if err != nil {
		return nil, err
	}
	if info.Size() < f.offset {
		// Truncated and rewritten: start over.
		f.offset = 0
		f.partial = nil
	}
	if info.Size() == f.offset {
		return nil, nil
	}
	if _, err := file.Seek(f.offset, io.SeekStart); err != nil {
		return nil, err
	}
	chunk, err := io.ReadAll(file)
	if err != nil {
		return nil, err
	}
	f.offset += int64(len(chunk))

	buf := append(f.partial, chunk...)
	var events []obs.LedgerEvent
	for {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			break
		}
		line := bytes.TrimSpace(buf[:nl])
		buf = buf[nl+1:]
		if len(line) == 0 {
			continue
		}
		e, err := obs.ParseLedgerEvent(line)
		if err != nil {
			if errors.Is(err, obs.ErrSchemaTooNew) {
				f.skipped++
				continue
			}
			return events, err
		}
		events = append(events, e)
	}
	f.partial = append([]byte(nil), buf...)
	return events, nil
}

// Follow polls the ledger at path every interval and hands each appended
// event to fn, until ctx is canceled (returning nil) or a read fails. It is
// the engine under runmon tail and runmon serve: fn is typically
// Monitor.Observe plus a dashboard refresh.
func Follow(ctx context.Context, path string, interval time.Duration, fn func(obs.LedgerEvent)) error {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	f := NewFollower(path)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		events, err := f.Poll()
		if err != nil {
			return err
		}
		for _, e := range events {
			fn(e)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}
