package runmon

import (
	"fmt"
	"io"
	"strings"

	"insitu/internal/obs"
)

// StreamSnapshot is the frozen detector state of one residual stream.
type StreamSnapshot struct {
	Stream       string  `json:"stream"`
	Count        int     `json:"count"`         // scored + calibrating observations
	PredictedSec float64 `json:"predicted_sec"` // per-event prediction (0 = still calibrating)
	MeanSec      float64 `json:"mean_sec"`      // mean observed seconds per event
	LastSec      float64 `json:"last_sec"`
	EWMARelErr   float64 `json:"ewma_rel_err"`
	CUSUMPos     float64 `json:"cusum_pos"`
	CUSUMNeg     float64 `json:"cusum_neg"`
	Alerted      bool    `json:"alerted"`
	AlertStep    int     `json:"alert_step,omitempty"`
}

// Snapshot is the monitor's full state at one instant; cmd/runmon renders it
// as the tail dashboard, the report body, and the /drift.json payload.
type Snapshot struct {
	App          string           `json:"app,omitempty"`
	Runs         int              `json:"runs"`
	Step         int              `json:"step"`
	Steps        int              `json:"steps,omitempty"` // planned run length, when known
	Ended        bool             `json:"ended"`
	Streams      []StreamSnapshot `json:"streams"`
	Alerts       []Alert          `json:"alerts"`
	Replans      []ReplanRecord   `json:"replans,omitempty"`
	AnalysisSec  float64          `json:"analysis_sec"`            // observed analysis+output time
	ProjectedSec float64          `json:"projected_sec,omitempty"` // budget-at-risk projection
	ThresholdSec float64          `json:"threshold_sec,omitempty"`
	BudgetAtRisk bool             `json:"budget_at_risk"`
	// Flights holds the retained solver flight streams (solveprog events seen
	// by the monitor); empty for ledgers without flight recording.
	Flights []obs.SolveProgRun `json:"flights,omitempty"`
}

// Snapshot freezes the monitor state. Nil-safe: a nil monitor snapshots
// empty.
func (m *Monitor) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		App:          m.app,
		Runs:         m.runs,
		Step:         m.step,
		Ended:        m.ended,
		AnalysisSec:  m.analysisSec,
		ProjectedSec: m.projected,
		BudgetAtRisk: m.budgetHit,
	}
	if m.profile != nil {
		s.Steps = m.profile.Steps
		s.ThresholdSec = m.profile.ThresholdSec
	}
	for _, name := range m.order {
		st := m.streams[name]
		ss := StreamSnapshot{
			Stream:       st.name,
			Count:        st.count,
			PredictedSec: st.predicted,
			LastSec:      st.lastSec,
			EWMARelErr:   st.ewma.Value(),
			Alerted:      st.alerted,
			AlertStep:    st.alertStep,
		}
		if st.count > 0 {
			ss.MeanSec = st.obsSec / float64(st.count)
		}
		ss.CUSUMPos, ss.CUSUMNeg = st.cusum.Stat()
		s.Streams = append(s.Streams, ss)
	}
	s.Alerts = make([]Alert, len(m.alerts))
	copy(s.Alerts, m.alerts)
	if len(m.replans) > 0 {
		s.Replans = make([]ReplanRecord, len(m.replans))
		copy(s.Replans, m.replans)
	}
	s.Flights = copyFlights(m.flights)
	return s
}

// Analyze replays a complete event set through a fresh monitor and returns
// the final snapshot — the post-hoc entry point behind runmon report and
// insitu-sched -monitor. profile may be nil; plan events in the ledger (or
// self-calibration) then supply the predictions.
func Analyze(events []obs.LedgerEvent, profile *Profile, cfg Config) Snapshot {
	m := NewMonitor(profile, cfg)
	for _, e := range events {
		m.Observe(e)
	}
	return m.Snapshot()
}

// DriftCount returns how many drift alerts the snapshot carries.
func (s Snapshot) DriftCount() int {
	n := 0
	for _, a := range s.Alerts {
		if a.Kind == AlertDrift {
			n++
		}
	}
	return n
}

// WriteText renders the snapshot as the terminal drift report / dashboard
// frame: a run header, the per-stream residual table, the budget
// projection, and the alert list.
func (s Snapshot) WriteText(w io.Writer) error {
	app := s.App
	if app == "" {
		app = "(unnamed run)"
	}
	state := "running"
	if s.Ended {
		state = "ended"
	}
	steps := ""
	if s.Steps > 0 {
		steps = fmt.Sprintf("/%d", s.Steps)
	}
	if _, err := fmt.Fprintf(w, "run: %s  step %d%s  %s\n", app, s.Step, steps, state); err != nil {
		return err
	}
	if len(s.Streams) == 0 {
		if _, err := fmt.Fprintln(w, "no monitored events yet"); err != nil {
			return err
		}
		return s.writeReplans(w)
	}
	if _, err := fmt.Fprintf(w, "%-26s %6s %12s %12s %9s %8s %8s  %s\n",
		"stream", "n", "pred_ms", "mean_ms", "ewma_err", "cusum+", "cusum-", "status"); err != nil {
		return err
	}
	for _, st := range s.Streams {
		status := "ok"
		if st.PredictedSec <= 0 {
			status = "calibrating"
		}
		if st.Alerted {
			status = fmt.Sprintf("DRIFT@%d", st.AlertStep)
		}
		if _, err := fmt.Fprintf(w, "%-26s %6d %12.3f %12.3f %8.1f%% %8.2f %8.2f  %s\n",
			st.Stream, st.Count, st.PredictedSec*1e3, st.MeanSec*1e3,
			st.EWMARelErr*100, st.CUSUMPos, st.CUSUMNeg, status); err != nil {
			return err
		}
	}
	if s.ThresholdSec > 0 {
		risk := "within budget"
		if s.BudgetAtRisk {
			risk = "BUDGET AT RISK"
		}
		if _, err := fmt.Fprintf(w, "budget: observed %.3fs, projected %.3fs of %.3fs threshold — %s\n",
			s.AnalysisSec, s.ProjectedSec, s.ThresholdSec, risk); err != nil {
			return err
		}
	}
	if len(s.Alerts) == 0 {
		if _, err := fmt.Fprintln(w, "alerts: none"); err != nil {
			return err
		}
		return s.writeReplans(w)
	}
	if _, err := fmt.Fprintf(w, "alerts: %d\n", len(s.Alerts)); err != nil {
		return err
	}
	for _, a := range s.Alerts {
		var detail string
		switch a.Kind {
		case AlertBudget:
			detail = fmt.Sprintf("projected %.3fs exceeds threshold %.3fs", a.Observed, a.Predicted)
		default:
			detail = fmt.Sprintf("%s by %.0f%% (pred %.3fms, saw %.3fms, cusum %.2f)",
				a.Direction, abs(a.RelErr)*100, a.Predicted*1e3, a.Observed*1e3, a.CUSUM)
		}
		if _, err := fmt.Fprintf(w, "  [%s] step %-5d %-24s %s\n", a.Kind, a.Step, a.Stream, detail); err != nil {
			return err
		}
	}
	return s.writeReplans(w)
}

// writeReplans renders the replan timeline, one decision per line. Silent
// when the run never replanned, so unmonitored/static reports are unchanged.
func (s Snapshot) writeReplans(w io.Writer) error {
	if len(s.Replans) == 0 {
		return s.writeFlights(w)
	}
	if _, err := fmt.Fprintf(w, "replans: %d\n", len(s.Replans)); err != nil {
		return err
	}
	for _, r := range s.Replans {
		var detail string
		if r.Adopted {
			detail = fmt.Sprintf("value %.2f -> %.2f, remaining cost %.3fs -> %.3fs of %.3fs budget",
				r.OldValue, r.NewValue, r.OldCostSec, r.NewCostSec, r.BudgetSec)
		} else {
			detail = fmt.Sprintf("kept incumbent (value %.2f, remaining budget %.3fs)",
				r.OldValue, r.BudgetSec)
		}
		if _, err := fmt.Fprintf(w, "  [%s] step %-5d %s/%-18s %s\n",
			r.Reason, r.Step, r.Trigger, r.Stream, detail); err != nil {
			return err
		}
	}
	return s.writeFlights(w)
}

// writeFlights renders the gap-closure timeline of every retained solver
// flight stream. Silent when the ledger carried no solveprog events, so
// reports over old ledgers are byte-identical to before.
func (s Snapshot) writeFlights(w io.Writer) error {
	for _, f := range s.Flights {
		if err := obs.WriteGapTimeline(w, f.Name, f.Records); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns the one-line form used by log output and tests.
func (s Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d stream(s), %d drift alert(s)", len(s.Streams), s.DriftCount())
	if s.BudgetAtRisk {
		b.WriteString(", budget at risk")
	}
	return b.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
