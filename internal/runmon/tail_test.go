package runmon

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"insitu/internal/obs"
)

func appendLines(t *testing.T, path string, lines ...string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, line := range lines {
		if _, err := f.WriteString(line); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFollowerPicksUpAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f := NewFollower(path)

	// Missing file: not an error, no events.
	if events, err := f.Poll(); err != nil || events != nil {
		t.Fatalf("missing file: events=%v err=%v", events, err)
	}

	appendLines(t, path,
		`{"v":1,"type":"run_start","name":"mdsim/water"}`+"\n",
		`{"v":1,"type":"step","step":1,"dur_us":100}`+"\n",
	)
	events, err := f.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Type != obs.LedgerRunStart || events[1].Step != 1 {
		t.Fatalf("first poll = %+v", events)
	}

	// Nothing new: no events, no error.
	if events, err := f.Poll(); err != nil || len(events) != 0 {
		t.Fatalf("idle poll: events=%v err=%v", events, err)
	}

	appendLines(t, path, `{"v":1,"type":"step","step":2,"dur_us":100}`+"\n")
	events, err = f.Poll()
	if err != nil || len(events) != 1 || events[0].Step != 2 {
		t.Fatalf("second poll: events=%+v err=%v", events, err)
	}
}

func TestFollowerBuffersPartialLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	whole := `{"v":1,"type":"step","step":7,"dur_us":100}` + "\n"
	half := len(whole) / 2

	appendLines(t, path, whole[:half])
	f := NewFollower(path)
	if events, err := f.Poll(); err != nil || len(events) != 0 {
		t.Fatalf("partial line yielded events=%v err=%v", events, err)
	}
	appendLines(t, path, whole[half:])
	events, err := f.Poll()
	if err != nil || len(events) != 1 || events[0].Step != 7 {
		t.Fatalf("completed line: events=%+v err=%v", events, err)
	}
}

func TestFollowerResetsOnTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	appendLines(t, path,
		`{"v":1,"type":"step","step":1,"dur_us":100}`+"\n",
		`{"v":1,"type":"step","step":2,"dur_us":100}`+"\n",
	)
	f := NewFollower(path)
	if events, err := f.Poll(); err != nil || len(events) != 2 {
		t.Fatalf("events=%v err=%v", events, err)
	}

	// Truncate-and-rewrite: the follower must start over, not mid-file.
	if err := os.WriteFile(path, []byte(`{"v":1,"type":"step","step":9,"dur_us":100}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := f.Poll()
	if err != nil || len(events) != 1 || events[0].Step != 9 {
		t.Fatalf("after truncation: events=%+v err=%v", events, err)
	}
}

func TestFollowerSkipsNewerSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	appendLines(t, path,
		fmt.Sprintf(`{"v":%d,"type":"warp","step":1}`, obs.LedgerSchemaVersion+1)+"\n",
		`{"v":1,"type":"step","step":1,"dur_us":100}`+"\n",
	)
	f := NewFollower(path)
	events, err := f.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || f.SkippedNewer() != 1 {
		t.Fatalf("events=%d skipped=%d, want 1 and 1", len(events), f.SkippedNewer())
	}
}

func TestFollowerReportsMalformedJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	appendLines(t, path, "{not json}\n")
	f := NewFollower(path)
	if _, err := f.Poll(); err == nil {
		t.Fatal("malformed line did not error")
	}
}

func TestFollowCancels(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	appendLines(t, path, `{"v":1,"type":"step","step":1,"dur_us":100}`+"\n")

	ctx, cancel := context.WithCancel(context.Background())
	var got []obs.LedgerEvent
	done := make(chan error, 1)
	go func() {
		done <- Follow(ctx, path, 10*time.Millisecond, func(e obs.LedgerEvent) {
			got = append(got, e)
			cancel() // stop as soon as the first event arrives
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Follow returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Follow did not return after cancellation")
	}
	if len(got) != 1 || got[0].Step != 1 {
		t.Fatalf("events = %+v", got)
	}
}
