package milp

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"insitu/internal/lp"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if viol := p.LP.FirstViolation(sol.X, 1e-6); viol != "" {
		t.Fatalf("solution infeasible: %s", viol)
	}
	for j, isInt := range p.Integer {
		if isInt && math.Abs(sol.X[j]-math.Round(sol.X[j])) > 1e-6 {
			t.Fatalf("variable %d = %g not integral", j, sol.X[j])
		}
	}
	checkBound(t, sol)
	return sol
}

// checkBound asserts the terminal-bound invariant: the best remaining bound
// can never sit below the incumbent objective.
func checkBound(t *testing.T, sol *Solution) {
	t.Helper()
	const tol = 1e-6
	if sol.HasX && sol.Bound < sol.Objective-tol {
		t.Fatalf("Bound = %g below Objective = %g", sol.Bound, sol.Objective)
	}
	if sol.Bound != sol.Stats.BestBound {
		t.Fatalf("Bound = %g disagrees with Stats.BestBound = %g", sol.Bound, sol.Stats.BestBound)
	}
}

func TestKnapsack(t *testing.T) {
	// 0-1 knapsack: values 60,100,120; weights 10,20,30; cap 50 -> take items
	// 2 and 3 for value 220 (LP bound is 240).
	p := NewProblem(&lp.Problem{})
	a := p.AddBinVar(60, "a")
	b := p.AddBinVar(100, "b")
	c := p.AddBinVar(120, "c")
	p.LP.AddConstraint([]int{a, b, c}, []float64{10, 20, 30}, lp.LE, 50, "cap")
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-220) > 1e-6 {
		t.Fatalf("objective = %g, want 220", sol.Objective)
	}
	if sol.X[a] != 0 || sol.X[b] != 1 || sol.X[c] != 1 {
		t.Fatalf("selection = %v, want [0 1 1]", sol.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x s.t. 2x <= 7, x integer -> x = 3 (LP gives 3.5).
	p := NewProblem(&lp.Problem{})
	x := p.AddIntVar(1, 0, 10, "x")
	p.LP.AddConstraint([]int{x}, []float64{2}, lp.LE, 7, "")
	sol := solveOK(t, p)
	if sol.X[x] != 3 {
		t.Fatalf("x = %g, want 3", sol.X[x])
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 3x + 2y, x integer, y continuous; x + y <= 4.5; x <= 3.2.
	// Optimum: x=3, y=1.5, obj 12.
	p := NewProblem(&lp.Problem{})
	x := p.AddIntVar(3, 0, 3.2, "x")
	y := p.AddContVar(2, 0, lp.Inf, "y")
	p.LP.AddConstraint([]int{x, y}, []float64{1, 1}, lp.LE, 4.5, "")
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-12) > 1e-6 {
		t.Fatalf("objective = %g, want 12", sol.Objective)
	}
	if sol.X[x] != 3 || math.Abs(sol.X[y]-1.5) > 1e-6 {
		t.Fatalf("x=%g y=%g, want 3, 1.5", sol.X[x], sol.X[y])
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	x := p.AddBinVar(1, "x")
	p.LP.AddConstraint([]int{x}, []float64{1}, lp.GE, 0.4, "")
	p.LP.AddConstraint([]int{x}, []float64{1}, lp.LE, 0.6, "")
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfiniteIntegerBoundRejected(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	p.AddIntVar(1, 0, lp.Inf, "x")
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("expected error for unbounded integer variable")
	}
}

func TestEqualityMILP(t *testing.T) {
	// x + y = 5, x,y in {0..5} integer, max 2x + 3y -> x=0, y=5, obj 15.
	p := NewProblem(&lp.Problem{})
	x := p.AddIntVar(2, 0, 5, "x")
	y := p.AddIntVar(3, 0, 5, "y")
	p.LP.AddConstraint([]int{x, y}, []float64{1, 1}, lp.EQ, 5, "")
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-15) > 1e-6 {
		t.Fatalf("objective = %g, want 15", sol.Objective)
	}
}

func TestAgainstBruteForceFixed(t *testing.T) {
	// A handful of structured instances validated against exhaustive search.
	cases := []func() *Problem{
		func() *Problem { // set packing
			p := NewProblem(&lp.Problem{})
			for i, v := range []float64{5, 4, 3} {
				p.AddBinVar(v, string(rune('a'+i)))
			}
			p.LP.AddConstraint([]int{0, 1}, []float64{1, 1}, lp.LE, 1, "")
			p.LP.AddConstraint([]int{1, 2}, []float64{1, 1}, lp.LE, 1, "")
			return p
		},
		func() *Problem { // covering with minimization
			p := NewProblem(&lp.Problem{})
			for i, v := range []float64{-2, -3, -4} {
				p.AddBinVar(v, string(rune('a'+i)))
			}
			p.LP.AddConstraint([]int{0, 1}, []float64{1, 1}, lp.GE, 1, "")
			p.LP.AddConstraint([]int{0, 2}, []float64{1, 1}, lp.GE, 1, "")
			return p
		},
		func() *Problem { // general integers
			p := NewProblem(&lp.Problem{})
			x := p.AddIntVar(7, 0, 4, "x")
			y := p.AddIntVar(2, 0, 4, "y")
			p.LP.AddConstraint([]int{x, y}, []float64{3, 1}, lp.LE, 10, "")
			return p
		},
	}
	for i, mk := range cases {
		p := mk()
		got := solveOK(t, p)
		want, err := BruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Fatalf("case %d: B&B objective %g != brute force %g", i, got.Objective, want.Objective)
		}
	}
}

// TestRandomAgainstBruteForce property: on random small binary knapsack-like
// problems, branch and bound matches exhaustive enumeration.
func TestRandomAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(3)
		p := NewProblem(&lp.Problem{})
		for j := 0; j < n; j++ {
			p.AddBinVar(rng.Float64()*10-2, "")
		}
		idx := make([]int, n)
		for j := range idx {
			idx[j] = j
		}
		for r := 0; r < m; r++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = rng.Float64() * 4
			}
			p.LP.AddConstraint(idx, coef, lp.LE, 2+rng.Float64()*6, "")
		}
		got, err := Solve(p, Options{})
		if err != nil || got.Status != Optimal {
			return false
		}
		want, err := BruteForce(p)
		if err != nil || want.Status != Optimal {
			return false
		}
		return math.Abs(got.Objective-want.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomGeneralIntegers property: random bounded general-integer programs
// match brute force.
func TestRandomGeneralIntegers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		p := NewProblem(&lp.Problem{})
		for j := 0; j < n; j++ {
			p.AddIntVar(rng.Float64()*6-1, 0, float64(1+rng.Intn(4)), "")
		}
		idx := make([]int, n)
		coef := make([]float64, n)
		for j := range idx {
			idx[j] = j
			coef[j] = 0.3 + rng.Float64()*2
		}
		p.LP.AddConstraint(idx, coef, lp.LE, 2+rng.Float64()*8, "")
		got, err := Solve(p, Options{})
		if err != nil || got.Status != Optimal {
			return false
		}
		want, err := BruteForce(p)
		if err != nil {
			return false
		}
		return math.Abs(got.Objective-want.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing several nodes with MaxNodes=1 must report NodeLimit.
	rng := rand.New(rand.NewSource(7))
	p := NewProblem(&lp.Problem{})
	n := 12
	idx := make([]int, n)
	coef := make([]float64, n)
	for j := 0; j < n; j++ {
		p.AddBinVar(1+rng.Float64(), "")
		idx[j] = j
		coef[j] = 1 + rng.Float64()
	}
	p.LP.AddConstraint(idx, coef, lp.LE, float64(n)/3, "")
	sol, err := Solve(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != NodeLimit && sol.Status != Optimal {
		t.Fatalf("status = %v, want node-limit (or optimal if root solved it)", sol.Status)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", NodeLimit: "node-limit",
	} {
		if s.String() != want {
			t.Fatalf("Status(%d) = %q, want %q", s, s.String(), want)
		}
	}
}

func TestUnboundedMILP(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	p.AddContVar(1, 0, lp.Inf, "x")
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestWeightedObjectiveTieBreak(t *testing.T) {
	// Two symmetric items, capacity for one: objective must pick either, and
	// the objective value must be exact.
	p := NewProblem(&lp.Problem{})
	a := p.AddBinVar(5, "a")
	b := p.AddBinVar(5, "b")
	p.LP.AddConstraint([]int{a, b}, []float64{1, 1}, lp.LE, 1, "")
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("objective = %g, want 5", sol.Objective)
	}
}

func TestGapOptionStopsEarly(t *testing.T) {
	// With a 50% gap, any incumbent within half the bound is acceptable; the
	// returned solution must still be feasible and integral.
	rng := rand.New(rand.NewSource(11))
	p := NewProblem(&lp.Problem{})
	n := 14
	idx := make([]int, n)
	coef := make([]float64, n)
	for j := 0; j < n; j++ {
		p.AddBinVar(1+rng.Float64()*5, "")
		idx[j] = j
		coef[j] = 1 + rng.Float64()*3
	}
	p.LP.AddConstraint(idx, coef, lp.LE, 9, "cap")
	loose, err := Solve(p, Options{Gap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Status != Optimal || exact.Status != Optimal {
		t.Fatalf("status: %v / %v", loose.Status, exact.Status)
	}
	if viol := p.LP.FirstViolation(loose.X, 1e-6); viol != "" {
		t.Fatalf("gap solution infeasible: %s", viol)
	}
	if loose.Objective < exact.Objective*0.5-1e-9 {
		t.Fatalf("gap solution %g below 50%% of optimum %g", loose.Objective, exact.Objective)
	}
	if loose.Nodes > exact.Nodes {
		t.Fatalf("gap search explored more nodes (%d) than exact (%d)", loose.Nodes, exact.Nodes)
	}
}

func TestNodeLimitKeepsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewProblem(&lp.Problem{})
	n := 16
	idx := make([]int, n)
	coef := make([]float64, n)
	for j := 0; j < n; j++ {
		p.AddBinVar(1+rng.Float64(), "")
		idx[j] = j
		coef[j] = 1 + rng.Float64()
	}
	p.LP.AddConstraint(idx, coef, lp.LE, float64(n)/3, "")
	sol, err := Solve(p, Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, sol)
	if sol.HasX {
		if viol := p.LP.FirstViolation(sol.X, 1e-6); viol != "" {
			t.Fatalf("node-limited incumbent infeasible: %s", viol)
		}
		for j := range sol.X {
			if math.Abs(sol.X[j]-math.Round(sol.X[j])) > 1e-6 {
				t.Fatalf("node-limited incumbent fractional at %d", j)
			}
		}
	}
}

// hardInstance builds a knapsack that needs real branching, so the search
// statistics have something to count.
func hardInstance(seed int64, n int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem(&lp.Problem{})
	idx := make([]int, n)
	coef := make([]float64, n)
	for j := 0; j < n; j++ {
		p.AddBinVar(1+rng.Float64()*4, "")
		idx[j] = j
		coef[j] = 1 + rng.Float64()*3
	}
	p.LP.AddConstraint(idx, coef, lp.LE, float64(n)/2, "cap")
	return p
}

func TestSolveStats(t *testing.T) {
	p := hardInstance(5, 14)
	sol := solveOK(t, p)
	st := sol.Stats
	if st.Nodes == 0 || st.Relaxations == 0 || st.Pivots == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	if st.Nodes != sol.Nodes {
		t.Fatalf("Stats.Nodes = %d, Solution.Nodes = %d", st.Nodes, sol.Nodes)
	}
	// The heuristic re-solves are charged too, so relaxations can exceed
	// nodes but never undercut them.
	if st.Relaxations < st.Nodes {
		t.Fatalf("relaxations %d < nodes %d", st.Relaxations, st.Nodes)
	}
	if len(st.Incumbents) == 0 {
		t.Fatal("no incumbent trajectory recorded")
	}
	// Trajectory must strictly improve and end at the returned objective,
	// with each bound at or above its incumbent.
	prev := math.Inf(-1)
	for i, inc := range st.Incumbents {
		if inc.Objective <= prev {
			t.Fatalf("incumbent %d objective %g does not improve on %g", i, inc.Objective, prev)
		}
		if inc.Bound < inc.Objective-1e-6 {
			t.Fatalf("incumbent %d bound %g below objective %g", i, inc.Bound, inc.Objective)
		}
		prev = inc.Objective
	}
	if last := st.Incumbents[len(st.Incumbents)-1]; math.Abs(last.Objective-sol.Objective) > 1e-9 {
		t.Fatalf("trajectory ends at %g, solution objective %g", last.Objective, sol.Objective)
	}
}

func TestSolveTimeInjectedClock(t *testing.T) {
	// A clock advancing 1ms per reading makes SolveTime deterministic and
	// nonzero regardless of host speed.
	fake := time.Unix(0, 0)
	now := func() time.Time {
		fake = fake.Add(time.Millisecond)
		return fake
	}
	sol, err := Solve(hardInstance(5, 10), Options{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.SolveTime <= 0 {
		t.Fatalf("SolveTime = %v", sol.Stats.SolveTime)
	}
}

func TestObserverStreamsNodes(t *testing.T) {
	var events []NodeEvent
	p := hardInstance(5, 14)
	sol, err := Solve(p, Options{Observer: func(e NodeEvent) { events = append(events, e) }})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if len(events) != sol.Stats.Nodes {
		t.Fatalf("observer saw %d events for %d explored nodes", len(events), sol.Stats.Nodes)
	}
	valid := map[string]bool{"integral": true, "infeasible": true, "branched": true, "pruned": true}
	lastNode := 0
	for i, e := range events {
		if !valid[e.Action] {
			t.Fatalf("event %d has unknown action %q", i, e.Action)
		}
		if e.Node <= lastNode {
			t.Fatalf("event %d node %d not increasing past %d", i, e.Node, lastNode)
		}
		lastNode = e.Node
		if e.HasInc && e.Bound < sol.Objective-1e-6 && e.Action == "branched" {
			// A node branched with a bound below the final optimum would
			// have been pruned by a consistent search.
			t.Fatalf("event %d branched below final objective: bound %g < %g", i, e.Bound, sol.Objective)
		}
	}
	// Infeasible root: observer stays silent but Bound is still stamped.
	bad := NewProblem(&lp.Problem{})
	x := bad.AddBinVar(1, "x")
	bad.LP.AddConstraint([]int{x}, []float64{1}, lp.GE, 2, "")
	events = nil
	sol, err = Solve(bad, Options{Observer: func(e NodeEvent) { events = append(events, e) }})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible || len(events) != 0 {
		t.Fatalf("infeasible root: status %v, %d events", sol.Status, len(events))
	}
	if !math.IsInf(sol.Bound, -1) {
		t.Fatalf("infeasible bound = %g", sol.Bound)
	}
}

func TestBruteForceTooManyBinaries(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	for i := 0; i < 25; i++ { // 2^25 assignments > BruteForceMaxAssignments
		p.AddBinVar(1, "")
	}
	_, err := BruteForce(p)
	var tooLarge *TooLargeError
	if !errors.As(err, &tooLarge) {
		t.Fatalf("BruteForce error = %v, want *TooLargeError", err)
	}
	if tooLarge.Limit != BruteForceMaxAssignments {
		t.Fatalf("Limit = %d, want %d", tooLarge.Limit, BruteForceMaxAssignments)
	}
	if tooLarge.Assignments <= BruteForceMaxAssignments {
		t.Fatalf("Assignments = %g, want > %d", tooLarge.Assignments, BruteForceMaxAssignments)
	}
	if msg := tooLarge.Error(); !strings.Contains(msg, "brute force") {
		t.Fatalf("unhelpful error message %q", msg)
	}
}

func TestBruteForceWideIntegerRangeRejected(t *testing.T) {
	// A few wide general-integer ranges blow the assignment space just as
	// surely as many binaries.
	p := NewProblem(&lp.Problem{})
	for i := 0; i < 4; i++ {
		p.AddIntVar(1, 0, 99, "")
	}
	var tooLarge *TooLargeError
	if _, err := BruteForce(p); !errors.As(err, &tooLarge) {
		t.Fatalf("BruteForce error = %v, want *TooLargeError", err)
	}
}

func TestBruteForceInfiniteBoundRejected(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	p.AddIntVar(1, 0, math.Inf(1), "free")
	p.LP.AddConstraint([]int{0}, []float64{1}, lp.LE, 3, "cap")
	if _, err := BruteForce(p); err == nil {
		t.Fatal("BruteForce accepted an infinite integer bound")
	}
}
