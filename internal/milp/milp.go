// Package milp solves mixed-integer linear programs by LP-relaxation-based
// branch and bound, using the simplex solver from package lp. It is the
// from-scratch stand-in for the GAMS + CPLEX 12.6.1 pipeline the paper uses
// to solve the in-situ analysis scheduling model.
//
// The solver performs best-first search on the LP bound with an initial
// depth-first dive to find an incumbent quickly, branches on the most
// fractional integer variable, and prunes nodes whose LP bound cannot beat
// the incumbent. For the pure-binary compact scheduling models in package
// core, solve times are well under a millisecond; the time-indexed full
// model with hundreds of binaries solves in milliseconds at test scale.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"insitu/internal/lp"
)

// Problem is a linear program plus integrality markers.
type Problem struct {
	LP *lp.Problem
	// Integer[j] requires variable j to take an integer value.
	Integer []bool
}

// NewProblem wraps an LP with an all-continuous integrality vector.
func NewProblem(base *lp.Problem) *Problem {
	return &Problem{LP: base, Integer: make([]bool, base.NumVars())}
}

// AddIntVar appends an integer variable to the underlying LP.
func (p *Problem) AddIntVar(obj, lower, upper float64, name string) int {
	j := p.LP.AddVar(obj, lower, upper, name)
	p.Integer = append(p.Integer, true)
	return j
}

// AddBinVar appends a 0-1 variable to the underlying LP.
func (p *Problem) AddBinVar(obj float64, name string) int {
	return p.AddIntVar(obj, 0, 1, name)
}

// AddContVar appends a continuous variable to the underlying LP.
func (p *Problem) AddContVar(obj, lower, upper float64, name string) int {
	j := p.LP.AddVar(obj, lower, upper, name)
	p.Integer = append(p.Integer, false)
	return j
}

// Status describes the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	NodeLimit // search stopped early; Solution holds the best incumbent if any
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int  // branch-and-bound nodes explored (mirrors Stats.Nodes)
	HasX      bool // whether X holds an incumbent (false for Infeasible)
	// Bound is the best remaining upper bound on the objective at
	// termination. At proven optimality it equals the incumbent objective
	// (so Bound >= Objective always holds up to tolerance); under a node
	// limit it is the tightest bound the open nodes still allow, making
	// Bound-Objective the residual optimality gap CPLEX would report.
	Bound float64
	// Stats describes the search that produced this solution.
	Stats Stats
}

// Stats instruments one branch-and-bound search — the reproduction's
// counterpart of the solve statistics CPLEX prints (the paper reports
// 0.17-1.36 s solve times on its instances; these counters show where that
// time goes).
type Stats struct {
	Nodes       int           // nodes explored (root included)
	Relaxations int           // LP relaxations solved, heuristic re-solves included
	Pivots      int           // simplex iterations across all relaxations
	Incumbents  []Incumbent   // improvement trajectory, in discovery order
	BestBound   float64       // best remaining bound at termination (== Solution.Bound)
	SolveTime   time.Duration // wall time of the search
}

// Incumbent is one point of the incumbent-improvement trajectory.
type Incumbent struct {
	Node      int     // node count when the incumbent was found (0 = root heuristic)
	Objective float64 // incumbent objective
	Bound     float64 // global upper bound at that moment
}

// NodeEvent is streamed to Options.Observer once per explored node.
type NodeEvent struct {
	Node      int     // 1-based node count, root is 1
	Depth     int     // branching depth (root is 0)
	Bound     float64 // the node's LP relaxation bound
	Incumbent float64 // best integer objective known so far
	HasInc    bool    // whether Incumbent is meaningful
	// Action describes how the node was resolved: "integral" (relaxation
	// was integer feasible), "infeasible", "branched", or "pruned"
	// (dominated by the incumbent after its relaxation solved).
	Action string
	// Parent is the Node id of the explored node whose branching created
	// this one (0 for the root). Children whose parents were pruned before
	// their relaxation solved never reach the observer, so parent links
	// always refer to previously streamed nodes — which is what lets
	// TreeRecorder rebuild the search tree from the event stream alone.
	Parent int
	// BranchVar is the variable the branch leading here fixed (-1 for the
	// root), BranchDir the direction ("down" tightened the upper bound,
	// "up" the lower bound), and BranchBound the bound that was applied.
	BranchVar   int
	BranchDir   string
	BranchBound float64
}

// Options tune the branch-and-bound search. The zero value selects defaults.
type Options struct {
	// MaxNodes caps the number of explored nodes (default 200000).
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Gap is the relative optimality gap at which search stops (default 0:
	// prove optimality).
	Gap float64
	// Observer, when non-nil, is called once per explored node with the
	// node's outcome. It runs synchronously inside the search loop, so it
	// must be cheap; it is the hook the telemetry layer uses to stream the
	// search into a trace.
	Observer func(NodeEvent)
	// Now is the clock used for Stats.SolveTime (default time.Now);
	// injectable so tests are deterministic.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

type node struct {
	lower []float64
	upper []float64
	bound float64 // LP bound (objective of relaxation)
	depth int

	// Provenance for the observer: the explored-node id of the parent and
	// the branching decision that created this node.
	parent      int
	branchVar   int
	branchDir   string
	branchBound float64
}

type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound > q[j].bound } // best bound first
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve runs branch and bound and returns the best integer-feasible solution.
func Solve(p *Problem, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	started := opts.Now()
	var stats Stats
	// finish stamps the search statistics and the terminal bound onto sol.
	finish := func(sol *Solution, bound float64) *Solution {
		stats.Nodes = sol.Nodes
		stats.BestBound = bound
		stats.SolveTime = opts.Now().Sub(started)
		sol.Bound = bound
		sol.Stats = stats
		return sol
	}
	if len(p.Integer) != p.LP.NumVars() {
		return nil, fmt.Errorf("milp: integrality vector has %d entries for %d variables", len(p.Integer), p.LP.NumVars())
	}
	// Integer variables need finite bounds for branching to terminate; the
	// scheduling models always provide them.
	for j, isInt := range p.Integer {
		if isInt && math.IsInf(p.LP.Upper[j], 1) {
			return nil, fmt.Errorf("milp: integer variable %d (%s) has infinite upper bound", j, name(p.LP, j))
		}
	}

	// When every objective coefficient on integer variables is integral and
	// continuous variables carry no objective, all integer-feasible
	// objectives are integers, so a node whose LP bound is below
	// incumbent+1 can be pruned. This collapses plateaus of symmetric
	// solutions (e.g. equally weighted analyses).
	integralObj := true
	for j, c := range p.LP.Objective {
		if p.Integer[j] {
			if math.Abs(c-math.Round(c)) > 1e-9 {
				integralObj = false
				break
			}
		} else if c != 0 {
			integralObj = false
			break
		}
	}
	pruneTol := func(incumbent float64, hasInc bool) float64 {
		t := boundTol(incumbent, opts.Gap)
		if integralObj && hasInc {
			// Bound must reach at least incumbent+1 to matter.
			if need := 1 - 1e-6; need > t {
				return need
			}
		}
		return t
	}

	work := p.LP.Clone()
	root := &node{
		lower:     append([]float64(nil), p.LP.Lower...),
		upper:     append([]float64(nil), p.LP.Upper...),
		branchVar: -1,
	}
	relax, err := solveRelaxation(work, root)
	if err != nil {
		return nil, err
	}
	stats.Relaxations++
	stats.Pivots += relax.Iters
	switch relax.Status {
	case lp.Infeasible:
		return finish(&Solution{Status: Infeasible}, math.Inf(-1)), nil
	case lp.Unbounded:
		return finish(&Solution{Status: Unbounded}, math.Inf(1)), nil
	case lp.IterationLimit:
		return nil, fmt.Errorf("milp: root relaxation hit the simplex iteration limit")
	}
	root.bound = relax.Objective

	best := &Solution{Status: Infeasible, Objective: math.Inf(-1)}
	queue := &nodeQueue{}
	heap.Init(queue)

	// recordIncumbent extends the improvement trajectory; bound is the
	// tightest global bound known at that moment.
	recordIncumbent := func(nodes int, obj, bound float64) {
		stats.Incumbents = append(stats.Incumbents, Incumbent{Node: nodes, Objective: obj, Bound: bound})
	}

	// Seed the incumbent by rounding the root relaxation.
	if x, ok := roundHeuristic(p, relax.X, opts.IntTol, &stats); ok {
		best = &Solution{Status: Optimal, X: x, Objective: p.LP.Eval(x), HasX: true}
		recordIncumbent(0, best.Objective, root.bound)
	}

	expand := func(nd *node, relaxSol *lp.Solution, parentID int) {
		j := mostFractional(p, relaxSol.X, opts.IntTol)
		if j < 0 {
			return
		}
		v := relaxSol.X[j]
		down := &node{
			lower:     append([]float64(nil), nd.lower...),
			upper:     append([]float64(nil), nd.upper...),
			bound:     relaxSol.Objective,
			depth:     nd.depth + 1,
			parent:    parentID,
			branchVar: j,
			branchDir: "down",
		}
		down.upper[j] = math.Floor(v + opts.IntTol)
		down.branchBound = down.upper[j]
		up := &node{
			lower:     append([]float64(nil), nd.lower...),
			upper:     append([]float64(nil), nd.upper...),
			bound:     relaxSol.Objective,
			depth:     nd.depth + 1,
			parent:    parentID,
			branchVar: j,
			branchDir: "up",
		}
		up.lower[j] = math.Ceil(v - opts.IntTol)
		up.branchBound = up.lower[j]
		heap.Push(queue, down)
		heap.Push(queue, up)
	}

	nodes := 1
	observe := func(nd *node, bound float64, action string) {
		if opts.Observer == nil {
			return
		}
		opts.Observer(NodeEvent{
			Node:        nodes,
			Depth:       nd.depth,
			Bound:       bound,
			Incumbent:   best.Objective,
			HasInc:      best.HasX,
			Action:      action,
			Parent:      nd.parent,
			BranchVar:   nd.branchVar,
			BranchDir:   nd.branchDir,
			BranchBound: nd.branchBound,
		})
	}
	// globalBound is the best remaining upper bound: the maximum of the
	// open nodes' bounds (the heap keeps the best first) and the incumbent.
	globalBound := func() float64 {
		b := math.Inf(-1)
		if best.HasX {
			b = best.Objective
		}
		if queue.Len() > 0 && (*queue)[0].bound > b {
			b = (*queue)[0].bound
		}
		return b
	}
	if intFeasible(p, relax.X, opts.IntTol) {
		x := snap(p, relax.X)
		if p.LP.Feasible(x, 1e-6) {
			obj := p.LP.Eval(x)
			best = &Solution{Status: Optimal, X: x, Objective: obj, Nodes: nodes, HasX: true}
			recordIncumbent(nodes, obj, root.bound)
			observe(root, root.bound, "integral")
			return finish(best, obj), nil
		}
	}
	observe(root, root.bound, "branched")
	expand(root, relax, 1)

	for queue.Len() > 0 {
		if nodes >= opts.MaxNodes {
			out := *best
			out.Status = NodeLimit
			out.Nodes = nodes
			return finish(&out, globalBound()), nil
		}
		nd := heap.Pop(queue).(*node)
		if best.HasX && nd.bound <= best.Objective+pruneTol(best.Objective, best.HasX) {
			continue // pruned by bound before solving; not an explored node
		}
		relaxSol, err := solveRelaxation(work, nd)
		if err != nil {
			return nil, err
		}
		nodes++
		stats.Relaxations++
		stats.Pivots += relaxSol.Iters
		if relaxSol.Status != lp.Optimal {
			observe(nd, nd.bound, "infeasible")
			continue // infeasible subtree (unbounded cannot appear below a bounded root)
		}
		if best.HasX && relaxSol.Objective <= best.Objective+pruneTol(best.Objective, best.HasX) {
			observe(nd, relaxSol.Objective, "pruned")
			continue
		}
		if intFeasible(p, relaxSol.X, opts.IntTol) {
			x := snap(p, relaxSol.X)
			if obj := p.LP.Eval(x); !best.HasX || obj > best.Objective {
				best = &Solution{Status: Optimal, X: x, Objective: obj, HasX: true}
				recordIncumbent(nodes, obj, math.Max(relaxSol.Objective, globalBound()))
			}
			observe(nd, relaxSol.Objective, "integral")
			continue
		}
		// Rounding heuristic: costs two extra LP solves, so throttle it to
		// early nodes where finding an incumbent matters most.
		if nodes < 16 || nodes%32 == 0 {
			if x, ok := roundHeuristic(p, relaxSol.X, opts.IntTol, &stats); ok {
				if obj := p.LP.Eval(x); !best.HasX || obj > best.Objective {
					best = &Solution{Status: Optimal, X: x, Objective: obj, HasX: true}
					recordIncumbent(nodes, obj, math.Max(relaxSol.Objective, globalBound()))
				}
			}
		}
		observe(nd, relaxSol.Objective, "branched")
		expand(nd, relaxSol, nodes)
	}

	out := *best
	out.Nodes = nodes
	// Queue exhausted: the search proved nothing above the incumbent
	// remains, so the terminal bound collapses onto the objective.
	bound := math.Inf(-1)
	if out.HasX {
		bound = out.Objective
	}
	return finish(&out, bound), nil
}

func boundTol(incumbent, gap float64) float64 {
	t := 1e-6
	if gap > 0 {
		t = math.Max(t, gap*math.Abs(incumbent))
	}
	return t
}

func name(p *lp.Problem, j int) string {
	if j < len(p.Names) && p.Names[j] != "" {
		return p.Names[j]
	}
	return fmt.Sprintf("x%d", j)
}

// solveRelaxation installs the node bounds into work and solves the LP.
func solveRelaxation(work *lp.Problem, nd *node) (*lp.Solution, error) {
	copy(work.Lower, nd.lower)
	copy(work.Upper, nd.upper)
	for j := range work.Lower {
		if work.Lower[j] > work.Upper[j] {
			return &lp.Solution{Status: lp.Infeasible}, nil
		}
	}
	return lp.Solve(work)
}

// intFeasible reports whether all integer variables are integral within tol.
func intFeasible(p *Problem, x []float64, tol float64) bool {
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		if math.Abs(x[j]-math.Round(x[j])) > tol {
			return false
		}
	}
	return true
}

// mostFractional returns the integer variable whose value is farthest from
// integrality, or -1 if none is fractional.
func mostFractional(p *Problem, x []float64, tol float64) int {
	best, bestDist := -1, tol
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		d := math.Abs(x[j] - math.Round(x[j]))
		if d > bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

// snap rounds integer variables of x to the nearest integer.
func snap(p *Problem, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for j, isInt := range p.Integer {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

// roundHeuristic fixes fractional integer variables to rounded values and
// re-solves the continuous remainder, returning a feasible point if found.
// Its LP work is charged to st so Stats.Relaxations/Pivots cover the whole
// search, heuristics included.
func roundHeuristic(p *Problem, x []float64, tol float64, st *Stats) ([]float64, bool) {
	if intFeasible(p, x, tol) {
		cand := snap(p, x)
		if p.LP.Feasible(cand, 1e-6) {
			return cand, true
		}
	}
	// Try floor-all then round-all of integer variables, resolving the LP
	// over continuous variables with integers fixed.
	for _, mode := range []func(float64) float64{math.Floor, math.Round} {
		work := p.LP.Clone()
		for j, isInt := range p.Integer {
			if !isInt {
				continue
			}
			v := mode(x[j] + tol)
			v = math.Max(v, p.LP.Lower[j])
			v = math.Min(v, p.LP.Upper[j])
			work.Lower[j], work.Upper[j] = v, v
		}
		sol, err := lp.Solve(work)
		if err == nil {
			st.Relaxations++
			st.Pivots += sol.Iters
		}
		if err == nil && sol.Status == lp.Optimal {
			cand := snap(p, sol.X)
			if p.LP.Feasible(cand, 1e-6) {
				return cand, true
			}
		}
	}
	return nil, false
}

// BruteForceMaxAssignments caps the assignment space BruteForce is willing to
// enumerate. Each assignment costs one LP solve, so anything near the limit
// already takes seconds; beyond it BruteForce refuses with a *TooLargeError
// instead of silently grinding (or overflowing) on instances it was never
// meant for.
const BruteForceMaxAssignments = 1 << 20

// TooLargeError reports that BruteForce refused an instance because its
// integer assignment space exceeds the enumeration limit. Callers that use
// BruteForce as a differential oracle size-gate on it with errors.As.
type TooLargeError struct {
	// Assignments is the size of the integer assignment space (the product
	// of the integer variables' bound ranges). It is a float64 because the
	// product can overflow int64 long before the limit check matters.
	Assignments float64
	// Limit is the enumeration cap that was exceeded.
	Limit int
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("milp: brute force would enumerate %g integer assignments (limit %d)", e.Assignments, e.Limit)
}

// BruteForce exhaustively enumerates all integer assignments (continuous
// variables are optimized by LP for each assignment) and returns the optimum.
// It is exponential and exists only to validate Solve in tests on tiny
// models; instances whose assignment space exceeds BruteForceMaxAssignments
// are rejected with a *TooLargeError.
func BruteForce(p *Problem) (*Solution, error) {
	var ints []int
	for j, isInt := range p.Integer {
		if isInt {
			ints = append(ints, j)
		}
	}
	sort.Ints(ints)
	assignments := 1.0
	for _, j := range ints {
		if math.IsInf(p.LP.Upper[j], 1) {
			return nil, fmt.Errorf("milp: integer variable %d (%s) has infinite upper bound", j, name(p.LP, j))
		}
		lo := math.Ceil(p.LP.Lower[j] - 1e-9)
		hi := math.Floor(p.LP.Upper[j] + 1e-9)
		if span := hi - lo + 1; span > 1 {
			assignments *= span
		}
		if assignments > BruteForceMaxAssignments {
			return nil, &TooLargeError{Assignments: assignments, Limit: BruteForceMaxAssignments}
		}
	}
	best := &Solution{Status: Infeasible, Objective: math.Inf(-1)}
	work := p.LP.Clone()
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(ints) {
			sol, err := lp.Solve(work)
			if err != nil {
				return err
			}
			if sol.Status == lp.Optimal && sol.Objective > best.Objective {
				best = &Solution{Status: Optimal, X: append([]float64(nil), sol.X...), Objective: sol.Objective, HasX: true}
			}
			return nil
		}
		j := ints[k]
		lo := int(math.Ceil(p.LP.Lower[j] - 1e-9))
		hi := int(math.Floor(p.LP.Upper[j] + 1e-9))
		for v := lo; v <= hi; v++ {
			work.Lower[j], work.Upper[j] = float64(v), float64(v)
			if err := rec(k + 1); err != nil {
				return err
			}
		}
		work.Lower[j], work.Upper[j] = p.LP.Lower[j], p.LP.Upper[j]
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return best, nil
}
