// Package milp solves mixed-integer linear programs by LP-relaxation-based
// branch and bound, using the simplex solver from package lp. It is the
// from-scratch stand-in for the GAMS + CPLEX 12.6.1 pipeline the paper uses
// to solve the in-situ analysis scheduling model.
//
// The solver performs best-first search on the LP bound with an initial
// depth-first dive to find an incumbent quickly, branches on the most
// fractional integer variable, and prunes nodes whose LP bound cannot beat
// the incumbent. With Options.Workers >= 2 the search runs in
// wave-synchronous parallel mode with warm-started node re-solves and a
// root presolve (see parallel.go for the determinism contract). For the
// pure-binary compact scheduling models in package core, solve times are
// well under a millisecond; the time-indexed full model with hundreds of
// binaries solves in milliseconds at test scale.
package milp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"time"

	"insitu/internal/lp"
)

// ErrCanceled is wrapped by the error Solve returns when Options.Ctx is
// canceled mid-search. Callers distinguish abandonment (client hung up,
// deadline passed) from solver failure with errors.Is.
var ErrCanceled = errors.New("milp: solve canceled")

// Problem is a linear program plus integrality markers.
type Problem struct {
	LP *lp.Problem
	// Integer[j] requires variable j to take an integer value.
	Integer []bool
}

// NewProblem wraps an LP with an all-continuous integrality vector.
func NewProblem(base *lp.Problem) *Problem {
	return &Problem{LP: base, Integer: make([]bool, base.NumVars())}
}

// AddIntVar appends an integer variable to the underlying LP.
func (p *Problem) AddIntVar(obj, lower, upper float64, name string) int {
	j := p.LP.AddVar(obj, lower, upper, name)
	p.Integer = append(p.Integer, true)
	return j
}

// AddBinVar appends a 0-1 variable to the underlying LP.
func (p *Problem) AddBinVar(obj float64, name string) int {
	return p.AddIntVar(obj, 0, 1, name)
}

// AddContVar appends a continuous variable to the underlying LP.
func (p *Problem) AddContVar(obj, lower, upper float64, name string) int {
	j := p.LP.AddVar(obj, lower, upper, name)
	p.Integer = append(p.Integer, false)
	return j
}

// Status describes the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	NodeLimit // search stopped early; Solution holds the best incumbent if any
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	Nodes     int  // branch-and-bound nodes explored (mirrors Stats.Nodes)
	HasX      bool // whether X holds an incumbent (false for Infeasible)
	// Bound is the best remaining upper bound on the objective at
	// termination. At proven optimality it equals the incumbent objective
	// (so Bound >= Objective always holds up to tolerance); under a node
	// limit it is the tightest bound the open nodes still allow, making
	// Bound-Objective the residual optimality gap CPLEX would report.
	Bound float64
	// Stats describes the search that produced this solution.
	Stats Stats
}

// Stats instruments one branch-and-bound search — the reproduction's
// counterpart of the solve statistics CPLEX prints (the paper reports
// 0.17-1.36 s solve times on its instances; these counters show where that
// time goes).
type Stats struct {
	Nodes       int           // nodes explored (root included)
	Relaxations int           // LP relaxations solved, heuristic re-solves included
	Pivots      int           // simplex iterations across all relaxations
	Incumbents  []Incumbent   // improvement trajectory, in discovery order
	BestBound   float64       // best remaining bound at termination (== Solution.Bound)
	SolveTime   time.Duration // wall time of the search
	// Workers is the pool width the search ran with (1 for the serial
	// search). WarmSolves/ColdSolves split the node relaxations by path
	// (heuristic re-solves, always cold, are excluded), and
	// PresolveTightened counts the root bound reductions; all three are
	// deterministic for a fixed Workers value.
	Workers           int
	WarmSolves        int
	ColdSolves        int
	PresolveTightened int
	// FallbackColds counts warm node re-solves whose basis restoration
	// failed and fell through to the cold path (a subset of ColdSolves),
	// summed over the worker solver contexts.
	FallbackColds int
	// WarmInfeasibles counts warm re-solves the dual simplex certified
	// infeasible outright (a subset of WarmSolves): the node was pruned on a
	// Farkas-style certificate with no cold phase-1 confirmation.
	WarmInfeasibles int
	// PrimalPivots and DualPivots split the basis-changing simplex work by
	// algorithm (Pivots additionally counts bound-flip iterations), and
	// Refactorizations/EtaPeak describe the basis-factorization machinery —
	// all summed (EtaPeak: maxed) over the solver contexts, heuristic solver
	// included. See lp.SolverStats for the per-context semantics.
	PrimalPivots     int
	DualPivots       int
	Refactorizations int
	EtaPeak          int
	// Prune-reason taxonomy over explored nodes:
	// Nodes == PrunedBound + PrunedInfeasible + IntegralNodes + BranchedNodes.
	PrunedBound      int // relaxation solved but dominated by the incumbent
	PrunedInfeasible int // relaxation infeasible
	IntegralNodes    int // relaxation already integer feasible
	BranchedNodes    int // expanded into two children
	// QueuePruned counts nodes discarded at pop time by the incumbent bound,
	// without an LP solve; they are not explored nodes.
	QueuePruned int
}

// Incumbent is one point of the incumbent-improvement trajectory.
type Incumbent struct {
	Node      int     // node count when the incumbent was found (0 = root heuristic)
	Objective float64 // incumbent objective
	Bound     float64 // global upper bound at that moment
}

// NodeEvent is streamed to Options.Observer once per explored node.
type NodeEvent struct {
	Node      int     // 1-based node count, root is 1
	Depth     int     // branching depth (root is 0)
	Bound     float64 // the node's LP relaxation bound
	Incumbent float64 // best integer objective known so far
	HasInc    bool    // whether Incumbent is meaningful
	// Action describes how the node was resolved: "integral" (relaxation
	// was integer feasible), "infeasible", "branched", or "pruned"
	// (dominated by the incumbent after its relaxation solved).
	Action string
	// Parent is the Node id of the explored node whose branching created
	// this one (0 for the root). Children whose parents were pruned before
	// their relaxation solved never reach the observer, so parent links
	// always refer to previously streamed nodes — which is what lets
	// TreeRecorder rebuild the search tree from the event stream alone.
	Parent int
	// BranchVar is the variable the branch leading here fixed (-1 for the
	// root), BranchDir the direction ("down" tightened the upper bound,
	// "up" the lower bound), and BranchBound the bound that was applied.
	BranchVar   int
	BranchDir   string
	BranchBound float64
}

// Options tune the branch-and-bound search. The zero value selects defaults.
type Options struct {
	// MaxNodes caps the number of explored nodes (default 200000).
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Gap is the relative optimality gap at which search stops (default 0:
	// prove optimality).
	Gap float64
	// Observer, when non-nil, is called once per explored node with the
	// node's outcome. It runs synchronously inside the search loop (node
	// events are serialized in deterministic order at any worker count), so
	// it must be cheap; it is the hook the telemetry layer uses to stream
	// the search into a trace.
	Observer func(NodeEvent)
	// Progress, when non-nil, streams the solver flight recording: one start
	// event, one event per consumed wave, one per incumbent improvement, and
	// one end event. Like Observer it runs synchronously on the sequential
	// in-order consume path, so the stream is deterministic for a fixed
	// Workers width at any actual parallelism; it must be cheap. A nil
	// Progress costs nothing.
	Progress func(ProgressEvent)
	// Now is the clock used for Stats.SolveTime (default time.Now);
	// injectable so tests are deterministic.
	Now func() time.Time
	// Workers is the width of the node-solving pool. 0 and 1 select the
	// historical serial search, byte-identical to previous releases
	// (golden observer streams and snapshots included). Values >= 2 enable
	// the wave-synchronous parallel search with warm-started node
	// relaxations and a root presolve: the explored tree is deterministic
	// for a fixed width, and the returned objective and terminal bound are
	// identical at any width. Use AutoWorkers to map a CLI-style 0 to the
	// machine width when parallelism is wanted by default.
	Workers int
	// NoWarmStart forces every node relaxation of the parallel search onto
	// the cold path (the serial search is always cold). The perfbench
	// suite uses it to measure warm-start pivot savings.
	NoWarmStart bool
	// NoPresolve disables the parallel search's root bound-tightening
	// presolve.
	NoPresolve bool
	// Ctx, when non-nil, scopes the search to a caller's lifetime in two
	// ways: the search checks it between nodes (serial) or waves (parallel)
	// and aborts with an error wrapping ErrCanceled once it is done, and it
	// becomes the base context for the solver's pprof phase labels, so
	// request-scoped labels (e.g. schedd's request IDs) survive into CPU
	// profiles of the solve. A nil Ctx behaves exactly like previous
	// releases: never canceled, labels rooted at context.Background().
	Ctx context.Context
}

// context returns the search's base context, never nil.
func (o Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

type node struct {
	// lower/upper are the node's variable bounds. Children alias the
	// parent's slice on the side their branch did not move, so these must
	// never be mutated after the node is created.
	lower []float64
	upper []float64
	bound float64 // LP bound (objective of relaxation)
	depth int

	// Provenance for the observer: the explored-node id of the parent and
	// the branching decision that created this node.
	parent      int
	branchVar   int
	branchDir   string
	branchBound float64
}

type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound > q[j].bound } // best bound first
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil // release the node (and its bound vectors) to the GC
	*q = old[:n-1]
	return it
}

// search carries the state of one branch-and-bound run; the serial and
// parallel drivers share it so node accounting, observer events, pruning,
// and incumbent management behave identically.
type search struct {
	p           *Problem
	opts        Options
	started     time.Time
	stats       Stats
	integralObj bool
	best        *Solution
	queue       *nodeQueue
	nodes       int

	// Flight-recording state: the progress-event sequence number, the
	// consumed-wave counter, and the node solver contexts (for warm-fallback
	// totals). All are touched only on the sequential consume path.
	progSeq int
	waveIdx int
	solvers []*lp.Solver
}

// newSearch validates the problem and prepares the shared search state.
func newSearch(p *Problem, opts Options) (*search, error) {
	s := &search{p: p, opts: opts, started: opts.Now()}
	if len(p.Integer) != p.LP.NumVars() {
		return nil, fmt.Errorf("milp: integrality vector has %d entries for %d variables", len(p.Integer), p.LP.NumVars())
	}
	// Integer variables need finite bounds for branching to terminate; the
	// scheduling models always provide them.
	for j, isInt := range p.Integer {
		if isInt && math.IsInf(p.LP.Upper[j], 1) {
			return nil, fmt.Errorf("milp: integer variable %d (%s) has infinite upper bound", j, name(p.LP, j))
		}
	}

	// When every objective coefficient on integer variables is integral and
	// continuous variables carry no objective, all integer-feasible
	// objectives are integers, so a node whose LP bound is below
	// incumbent+1 can be pruned. This collapses plateaus of symmetric
	// solutions (e.g. equally weighted analyses).
	s.integralObj = true
	for j, c := range p.LP.Objective {
		if p.Integer[j] {
			if math.Abs(c-math.Round(c)) > 1e-9 {
				s.integralObj = false
				break
			}
		} else if c != 0 {
			s.integralObj = false
			break
		}
	}

	s.best = &Solution{Status: Infeasible, Objective: math.Inf(-1)}
	s.queue = &nodeQueue{}
	heap.Init(s.queue)
	return s, nil
}

// finish stamps the search statistics and the terminal bound onto sol.
func (s *search) finish(sol *Solution, bound float64) *Solution {
	s.stats.Workers = s.opts.workersWidth()
	s.stats.Nodes = sol.Nodes
	s.stats.BestBound = bound
	t := s.solverTotals()
	s.stats.FallbackColds = t.FallbackCold
	s.stats.WarmInfeasibles = t.WarmInfeasible
	s.stats.PrimalPivots = t.PrimalPivots
	s.stats.DualPivots = t.DualPivots
	s.stats.Refactorizations = t.Refactorizations
	s.stats.EtaPeak = t.EtaPeak
	s.stats.SolveTime = s.opts.Now().Sub(s.started)
	sol.Bound = bound
	sol.Stats = s.stats
	s.emitEnd(sol, bound)
	return sol
}

// pruneTol is the margin a node bound must clear above the incumbent to
// stay interesting.
func (s *search) pruneTol() float64 {
	t := boundTol(s.best.Objective, s.opts.Gap)
	if s.integralObj && s.best.HasX {
		// Bound must reach at least incumbent+1 to matter.
		if need := 1 - 1e-6; need > t {
			return need
		}
	}
	return t
}

// recordIncumbent extends the improvement trajectory; bound is the
// tightest global bound known at that moment.
func (s *search) recordIncumbent(nodes int, obj, bound float64) {
	s.stats.Incumbents = append(s.stats.Incumbents, Incumbent{Node: nodes, Objective: obj, Bound: bound})
	s.emitIncumbent(obj, bound)
}

func (s *search) observe(nd *node, bound float64, action string) {
	if s.opts.Observer == nil {
		return
	}
	s.opts.Observer(NodeEvent{
		Node:        s.nodes,
		Depth:       nd.depth,
		Bound:       bound,
		Incumbent:   s.best.Objective,
		HasInc:      s.best.HasX,
		Action:      action,
		Parent:      nd.parent,
		BranchVar:   nd.branchVar,
		BranchDir:   nd.branchDir,
		BranchBound: nd.branchBound,
	})
}

// globalBound is the best remaining upper bound: the maximum of the open
// nodes' bounds (the heap keeps the best first), the incumbent, and extra —
// the best bound among nodes the parallel driver has popped for the current
// wave but not yet processed (-Inf in the serial search).
func (s *search) globalBound(extra float64) float64 {
	b := math.Inf(-1)
	if s.best.HasX {
		b = s.best.Objective
	}
	if s.queue.Len() > 0 && (*s.queue)[0].bound > b {
		b = (*s.queue)[0].bound
	}
	if extra > b {
		b = extra
	}
	return b
}

// expand branches nd on its most fractional variable and queues both
// children. Each child clones only the bound vector its branch moves and
// aliases the parent's other vector — halving the allocation rate of the
// hottest path in the search (nodes never mutate their vectors).
func (s *search) expand(nd *node, relaxSol *lp.Solution, parentID int) {
	j := mostFractional(s.p, relaxSol.X, s.opts.IntTol)
	if j < 0 {
		return
	}
	v := relaxSol.X[j]
	downUpper := append([]float64(nil), nd.upper...)
	downUpper[j] = math.Floor(v + s.opts.IntTol)
	down := &node{
		lower:       nd.lower,
		upper:       downUpper,
		bound:       relaxSol.Objective,
		depth:       nd.depth + 1,
		parent:      parentID,
		branchVar:   j,
		branchDir:   "down",
		branchBound: downUpper[j],
	}
	upLower := append([]float64(nil), nd.lower...)
	upLower[j] = math.Ceil(v - s.opts.IntTol)
	up := &node{
		lower:       upLower,
		upper:       nd.upper,
		bound:       relaxSol.Objective,
		depth:       nd.depth + 1,
		parent:      parentID,
		branchVar:   j,
		branchDir:   "up",
		branchBound: upLower[j],
	}
	heap.Push(s.queue, down)
	heap.Push(s.queue, up)
}

// consume processes one solved node exactly the way the historical serial
// loop did: account it, then dispatch on infeasible / pruned / integral /
// branched. extra is the best bound among popped-but-unprocessed wave nodes
// (-Inf in the serial search), folded into the global bound recorded with
// new incumbents.
func (s *search) consume(nd *node, relaxSol *lp.Solution, warm bool, heur *heurCtx, extra float64) {
	s.nodes++
	s.stats.Relaxations++
	s.stats.Pivots += relaxSol.Iters
	if warm {
		s.stats.WarmSolves++
	} else {
		s.stats.ColdSolves++
	}
	if relaxSol.Status != lp.Optimal {
		s.stats.PrunedInfeasible++
		s.observe(nd, nd.bound, "infeasible")
		return // infeasible subtree (unbounded cannot appear below a bounded root)
	}
	if s.best.HasX && relaxSol.Objective <= s.best.Objective+s.pruneTol() {
		s.stats.PrunedBound++
		s.observe(nd, relaxSol.Objective, "pruned")
		return
	}
	if intFeasible(s.p, relaxSol.X, s.opts.IntTol) {
		x := snap(s.p, relaxSol.X)
		if obj := s.p.LP.Eval(x); !s.best.HasX || obj > s.best.Objective {
			s.best = &Solution{Status: Optimal, X: x, Objective: obj, HasX: true}
			s.recordIncumbent(s.nodes, obj, math.Max(relaxSol.Objective, s.globalBound(extra)))
		}
		s.stats.IntegralNodes++
		s.observe(nd, relaxSol.Objective, "integral")
		return
	}
	// Rounding heuristic: costs two extra LP solves, so throttle it to
	// early nodes where finding an incumbent matters most.
	if s.nodes < 16 || s.nodes%32 == 0 {
		var x []float64
		var ok bool
		pprof.Do(s.opts.context(), pprof.Labels("solver_phase", "incumbent"), func(context.Context) {
			x, ok = heur.round(s.p, relaxSol.X, s.opts.IntTol, &s.stats)
		})
		if ok {
			if obj := s.p.LP.Eval(x); !s.best.HasX || obj > s.best.Objective {
				s.best = &Solution{Status: Optimal, X: x, Objective: obj, HasX: true}
				s.recordIncumbent(s.nodes, obj, math.Max(relaxSol.Objective, s.globalBound(extra)))
			}
		}
	}
	s.stats.BranchedNodes++
	s.observe(nd, relaxSol.Objective, "branched")
	s.expand(nd, relaxSol, s.nodes)
}

// openRoot solves the root relaxation, seeds the incumbent with the
// rounding heuristic, and either finishes the search outright (root
// infeasible, unbounded, or already integral) or queues the root's
// children. done is non-nil when the search is complete.
func (s *search) openRoot(ctx *lp.Solver, heur *heurCtx, root *node) (done *Solution, err error) {
	var relax *lp.Solution
	var warm bool
	pprof.Do(s.opts.context(), pprof.Labels("solver_phase", "root"), func(context.Context) {
		relax, warm = ctx.Solve(root.lower, root.upper)
	})
	s.stats.Relaxations++
	s.stats.Pivots += relax.Iters
	if warm {
		s.stats.WarmSolves++
	} else {
		s.stats.ColdSolves++
	}
	switch relax.Status {
	case lp.Infeasible:
		return s.finish(&Solution{Status: Infeasible}, math.Inf(-1)), nil
	case lp.Unbounded:
		return s.finish(&Solution{Status: Unbounded}, math.Inf(1)), nil
	case lp.IterationLimit:
		return nil, fmt.Errorf("milp: root relaxation hit the simplex iteration limit")
	}
	root.bound = relax.Objective

	// Seed the incumbent by rounding the root relaxation.
	if x, ok := heur.round(s.p, relax.X, s.opts.IntTol, &s.stats); ok {
		s.best = &Solution{Status: Optimal, X: x, Objective: s.p.LP.Eval(x), HasX: true}
		s.recordIncumbent(0, s.best.Objective, root.bound)
	}

	s.nodes = 1
	if intFeasible(s.p, relax.X, s.opts.IntTol) {
		x := snap(s.p, relax.X)
		if s.p.LP.Feasible(x, 1e-6) {
			obj := s.p.LP.Eval(x)
			s.best = &Solution{Status: Optimal, X: x, Objective: obj, Nodes: s.nodes, HasX: true}
			s.recordIncumbent(s.nodes, obj, root.bound)
			s.stats.IntegralNodes++
			s.observe(root, root.bound, "integral")
			s.waveIdx++
			s.emitWave(1, root.bound)
			return s.finish(s.best, obj), nil
		}
	}
	s.stats.BranchedNodes++
	s.observe(root, root.bound, "branched")
	s.expand(root, relax, 1)
	s.waveIdx++
	s.emitWave(1, s.globalBound(math.Inf(-1)))
	return nil, nil
}

// nodeResult is one node's solved relaxation plus the path that produced it.
type nodeResult struct {
	sol  *lp.Solution
	warm bool
}

// solveNode solves one node's relaxation through a per-worker solver
// context. A warm answer above the parent bound is numerically suspect (a
// child's relaxation can never beat its parent's), so it is re-solved cold
// before anyone trusts it. pctx is the pprof label base — the wave workers
// pass their already-labeled context so the warm-resolve label nests under
// the wave/worker labels.
func solveNode(pctx context.Context, ctx *lp.Solver, nd *node) nodeResult {
	sol, warm := ctx.Solve(nd.lower, nd.upper)
	if warm && sol.Objective > nd.bound+1e-6 {
		pprof.Do(pctx, pprof.Labels("solver_phase", "warm-resolve"), func(context.Context) {
			sol = ctx.SolveCold(nd.lower, nd.upper)
		})
		warm = false
	}
	return nodeResult{sol: sol, warm: warm}
}

// Solve runs branch and bound and returns the best integer-feasible
// solution. Options.Workers selects the serial (<= 1) or parallel (>= 2)
// driver; both return the same objective and terminal bound.
func Solve(p *Problem, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	s, err := newSearch(p, opts)
	if err != nil {
		return nil, err
	}
	s.emitStart()
	if opts.Workers >= 2 {
		return s.runParallel()
	}
	return s.runSerial()
}

// runSerial is the historical best-first search: one node at a time, every
// relaxation solved cold. Its arithmetic, node order, and observer stream
// are byte-identical to previous releases; the only change is that LP
// solves route through a buffer-reusing solver context.
func (s *search) runSerial() (*Solution, error) {
	ctx, err := lp.NewSolver(s.p.LP)
	if err != nil {
		return nil, err
	}
	ctx.Lean = true
	ctx.NoWarm = true
	heur, err := newHeurCtx(s.p)
	if err != nil {
		return nil, err
	}
	s.registerSolvers(ctx, heur.solver)
	root := &node{
		lower:     append([]float64(nil), s.p.LP.Lower...),
		upper:     append([]float64(nil), s.p.LP.Upper...),
		branchVar: -1,
	}
	if done, err := s.openRoot(ctx, heur, root); done != nil || err != nil {
		return done, err
	}

	pctx := s.opts.context()
	for s.queue.Len() > 0 {
		if err := pctx.Err(); err != nil {
			return nil, fmt.Errorf("%w after %d nodes: %v", ErrCanceled, s.nodes, err)
		}
		if s.nodes >= s.opts.MaxNodes {
			out := *s.best
			out.Status = NodeLimit
			out.Nodes = s.nodes
			return s.finish(&out, s.globalBound(math.Inf(-1))), nil
		}
		nd := heap.Pop(s.queue).(*node)
		if s.best.HasX && nd.bound <= s.best.Objective+s.pruneTol() {
			s.stats.QueuePruned++
			continue // pruned by bound before solving; not an explored node
		}
		res := solveNode(pctx, ctx, nd)
		s.consume(nd, res.sol, res.warm, heur, math.Inf(-1))
		s.waveIdx++
		s.emitWave(1, s.globalBound(math.Inf(-1)))
	}

	out := *s.best
	out.Nodes = s.nodes
	// Queue exhausted: the search proved nothing above the incumbent
	// remains, so the terminal bound collapses onto the objective.
	bound := math.Inf(-1)
	if out.HasX {
		bound = out.Objective
	}
	return s.finish(&out, bound), nil
}

func boundTol(incumbent, gap float64) float64 {
	t := 1e-6
	if gap > 0 {
		t = math.Max(t, gap*math.Abs(incumbent))
	}
	return t
}

func name(p *lp.Problem, j int) string {
	if j < len(p.Names) && p.Names[j] != "" {
		return p.Names[j]
	}
	return fmt.Sprintf("x%d", j)
}

// intFeasible reports whether all integer variables are integral within tol.
func intFeasible(p *Problem, x []float64, tol float64) bool {
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		if math.Abs(x[j]-math.Round(x[j])) > tol {
			return false
		}
	}
	return true
}

// mostFractional returns the integer variable whose value is farthest from
// integrality, or -1 if none is fractional.
func mostFractional(p *Problem, x []float64, tol float64) int {
	best, bestDist := -1, tol
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		d := math.Abs(x[j] - math.Round(x[j]))
		if d > bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

// snap rounds integer variables of x to the nearest integer.
func snap(p *Problem, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for j, isInt := range p.Integer {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

// heurCtx is the rounding heuristic's reusable solver context: one cold
// solver (heuristic solves fix every integer variable, so a warm basis
// rarely survives) plus bound scratch buffers.
type heurCtx struct {
	solver       *lp.Solver
	lower, upper []float64
}

func newHeurCtx(p *Problem) (*heurCtx, error) {
	s, err := lp.NewSolver(p.LP)
	if err != nil {
		return nil, err
	}
	s.Lean = true
	s.NoWarm = true
	return &heurCtx{
		solver: s,
		lower:  make([]float64, p.LP.NumVars()),
		upper:  make([]float64, p.LP.NumVars()),
	}, nil
}

// round fixes fractional integer variables to rounded values and re-solves
// the continuous remainder, returning a feasible point if found. Its LP
// work is charged to st so Stats.Relaxations/Pivots cover the whole search,
// heuristics included.
func (h *heurCtx) round(p *Problem, x []float64, tol float64, st *Stats) ([]float64, bool) {
	if intFeasible(p, x, tol) {
		cand := snap(p, x)
		if p.LP.Feasible(cand, 1e-6) {
			return cand, true
		}
	}
	// Try floor-all then round-all of integer variables, resolving the LP
	// over continuous variables with integers fixed.
	for _, mode := range []func(float64) float64{math.Floor, math.Round} {
		copy(h.lower, p.LP.Lower)
		copy(h.upper, p.LP.Upper)
		for j, isInt := range p.Integer {
			if !isInt {
				continue
			}
			v := mode(x[j] + tol)
			v = math.Max(v, p.LP.Lower[j])
			v = math.Min(v, p.LP.Upper[j])
			h.lower[j], h.upper[j] = v, v
		}
		sol := h.solver.SolveCold(h.lower, h.upper)
		st.Relaxations++
		st.Pivots += sol.Iters
		if sol.Status == lp.Optimal {
			cand := snap(p, sol.X)
			if p.LP.Feasible(cand, 1e-6) {
				return cand, true
			}
		}
	}
	return nil, false
}

// BruteForceMaxAssignments caps the assignment space BruteForce is willing to
// enumerate. Each assignment costs one LP solve, so anything near the limit
// already takes seconds; beyond it BruteForce refuses with a *TooLargeError
// instead of silently grinding (or overflowing) on instances it was never
// meant for.
const BruteForceMaxAssignments = 1 << 20

// TooLargeError reports that BruteForce refused an instance because its
// integer assignment space exceeds the enumeration limit. Callers that use
// BruteForce as a differential oracle size-gate on it with errors.As.
type TooLargeError struct {
	// Assignments is the size of the integer assignment space (the product
	// of the integer variables' bound ranges). It is a float64 because the
	// product can overflow int64 long before the limit check matters.
	Assignments float64
	// Limit is the enumeration cap that was exceeded.
	Limit int
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("milp: brute force would enumerate %g integer assignments (limit %d)", e.Assignments, e.Limit)
}

// BruteForce exhaustively enumerates all integer assignments (continuous
// variables are optimized by LP for each assignment) and returns the optimum.
// It is exponential and exists only to validate Solve in tests on tiny
// models; instances whose assignment space exceeds BruteForceMaxAssignments
// are rejected with a *TooLargeError.
func BruteForce(p *Problem) (*Solution, error) {
	var ints []int
	for j, isInt := range p.Integer {
		if isInt {
			ints = append(ints, j)
		}
	}
	sort.Ints(ints)
	assignments := 1.0
	for _, j := range ints {
		if math.IsInf(p.LP.Upper[j], 1) {
			return nil, fmt.Errorf("milp: integer variable %d (%s) has infinite upper bound", j, name(p.LP, j))
		}
		lo := math.Ceil(p.LP.Lower[j] - 1e-9)
		hi := math.Floor(p.LP.Upper[j] + 1e-9)
		if span := hi - lo + 1; span > 1 {
			assignments *= span
		}
		if assignments > BruteForceMaxAssignments {
			return nil, &TooLargeError{Assignments: assignments, Limit: BruteForceMaxAssignments}
		}
	}
	best := &Solution{Status: Infeasible, Objective: math.Inf(-1)}
	work := p.LP.Clone()
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(ints) {
			sol, err := lp.Solve(work)
			if err != nil {
				return err
			}
			if sol.Status == lp.Optimal && sol.Objective > best.Objective {
				best = &Solution{Status: Optimal, X: append([]float64(nil), sol.X...), Objective: sol.Objective, HasX: true}
			}
			return nil
		}
		j := ints[k]
		lo := int(math.Ceil(p.LP.Lower[j] - 1e-9))
		hi := int(math.Floor(p.LP.Upper[j] + 1e-9))
		for v := lo; v <= hi; v++ {
			work.Lower[j], work.Upper[j] = float64(v), float64(v)
			if err := rec(k + 1); err != nil {
				return err
			}
		}
		work.Lower[j], work.Upper[j] = p.LP.Lower[j], p.LP.Upper[j]
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return best, nil
}
