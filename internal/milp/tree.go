package milp

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// TreeNode is one explored branch-and-bound node as recorded from the
// Options.Observer event stream. IDs are the 1-based exploration order, so a
// recorded tree is also a replay of the search.
type TreeNode struct {
	ID          int     `json:"id"`
	Parent      int     `json:"parent"`                 // 0 for the root
	Depth       int     `json:"depth"`                  // root is 0
	Bound       float64 `json:"bound"`                  // LP relaxation bound at the node
	Incumbent   float64 `json:"incumbent"`              // best integer objective when explored
	HasInc      bool    `json:"has_incumbent"`          // whether Incumbent is meaningful
	Action      string  `json:"action"`                 // integral | infeasible | branched | pruned
	BranchVar   int     `json:"branch_var"`             // variable the inbound branch fixed (-1 at root)
	BranchDir   string  `json:"branch_dir,omitempty"`   // down | up ("" at root)
	BranchBound float64 `json:"branch_bound,omitempty"` // bound the inbound branch applied
}

// Tree is the JSON document a recorded search serializes to.
type Tree struct {
	Schema int        `json:"schema"`
	Names  []string   `json:"names,omitempty"` // variable names for branch labels
	Nodes  []TreeNode `json:"nodes"`
}

// TreeSchemaVersion is stamped into every exported tree; ReadTree rejects
// documents from a newer schema rather than misreading them.
const TreeSchemaVersion = 1

// TreeRecorder captures the branch-and-bound tree from the observer event
// stream. Install it with Options{Observer: rec.Observe}; it is cheap enough
// to run inside the search loop (one append per node).
type TreeRecorder struct {
	names []string
	nodes []TreeNode
}

// NewTreeRecorder returns a recorder. When p is non-nil its variable names
// are captured so DOT branch edges read "x[A1,n=3,k=1]=0" instead of "x17=0".
func NewTreeRecorder(p *Problem) *TreeRecorder {
	r := &TreeRecorder{}
	if p != nil {
		r.names = append([]string(nil), p.LP.Names...)
	}
	return r
}

// SetNames replaces the variable names used for branch labels; callers that
// could not pass the Problem to NewTreeRecorder (because a higher layer builds
// it) inject the names here.
func (r *TreeRecorder) SetNames(names []string) {
	r.names = append([]string(nil), names...)
}

// Observe appends one node; it is the Options.Observer hook.
func (r *TreeRecorder) Observe(e NodeEvent) {
	r.nodes = append(r.nodes, TreeNode{
		ID:          e.Node,
		Parent:      e.Parent,
		Depth:       e.Depth,
		Bound:       e.Bound,
		Incumbent:   e.Incumbent,
		HasInc:      e.HasInc,
		Action:      e.Action,
		BranchVar:   e.BranchVar,
		BranchDir:   e.BranchDir,
		BranchBound: e.BranchBound,
	})
}

// Nodes returns the recorded nodes in exploration order.
func (r *TreeRecorder) Nodes() []TreeNode { return r.nodes }

// Tree returns the recorder's content as a serializable document.
func (r *TreeRecorder) Tree() Tree {
	return Tree{Schema: TreeSchemaVersion, Names: r.names, Nodes: r.nodes}
}

// TreeStats summarizes a recorded search for the explainability report.
type TreeStats struct {
	Explored   int // nodes that reached the observer
	Branched   int
	Pruned     int
	Infeasible int
	Integral   int
	MaxDepth   int
}

// Stats tallies the recorded nodes by action.
func (r *TreeRecorder) Stats() TreeStats {
	var s TreeStats
	for _, n := range r.nodes {
		s.Explored++
		switch n.Action {
		case "branched":
			s.Branched++
		case "pruned":
			s.Pruned++
		case "infeasible":
			s.Infeasible++
		case "integral":
			s.Integral++
		}
		if n.Depth > s.MaxDepth {
			s.MaxDepth = n.Depth
		}
	}
	return s
}

// String renders the tally on one line.
func (s TreeStats) String() string {
	return fmt.Sprintf("explored=%d branched=%d pruned=%d infeasible=%d integral=%d max_depth=%d",
		s.Explored, s.Branched, s.Pruned, s.Infeasible, s.Integral, s.MaxDepth)
}

// WriteJSON exports the recorded tree as an indented JSON document that
// ReadTree round-trips exactly.
func (r *TreeRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Tree())
}

// ReadTree parses a tree document produced by WriteJSON.
func ReadTree(rd io.Reader) (Tree, error) {
	var t Tree
	if err := json.NewDecoder(rd).Decode(&t); err != nil {
		return Tree{}, fmt.Errorf("milp: parsing tree: %w", err)
	}
	if t.Schema != TreeSchemaVersion {
		return Tree{}, fmt.Errorf("milp: tree schema v%d, this reader understands v%d", t.Schema, TreeSchemaVersion)
	}
	return t, nil
}

// varName resolves a branch variable to its LP name, falling back to x<j>.
func (r *TreeRecorder) varName(j int) string {
	if j >= 0 && j < len(r.names) && r.names[j] != "" {
		return r.names[j]
	}
	return fmt.Sprintf("x%d", j)
}

// WriteDOT exports the recorded tree as a Graphviz digraph: one box per
// explored node colored by outcome (branched white, integral green, pruned
// gray, infeasible red), edges labeled with the branching decision.
func (r *TreeRecorder) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph bnb {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, style=filled, fontname=\"monospace\", fontsize=10];\n")
	for _, n := range r.nodes {
		color := "white"
		switch n.Action {
		case "integral":
			color = "palegreen"
		case "pruned":
			color = "lightgray"
		case "infeasible":
			color = "lightcoral"
		}
		label := fmt.Sprintf("n%d %s\\nbound=%.4g", n.ID, n.Action, n.Bound)
		if n.HasInc {
			label += fmt.Sprintf("\\ninc=%.4g", n.Incumbent)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", fillcolor=%s];\n", n.ID, label, color)
		if n.Parent > 0 {
			op := "<="
			if n.BranchDir == "up" {
				op = ">="
			}
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%s %s %g\"];\n",
				n.Parent, n.ID, dotEscape(r.varName(n.BranchVar)), op, n.BranchBound)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// dotEscape quotes the characters that would break a DOT double-quoted label.
func dotEscape(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\"", "\\\"")
}
