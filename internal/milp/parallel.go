package milp

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"insitu/internal/lp"
)

// AutoWorkers resolves a CLI-style -workers value: n > 0 is taken as-is,
// anything else means "use every core".
func AutoWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// runParallel is the wave-synchronous parallel driver. Each iteration pops
// up to Workers best-bound nodes (a "wave"), solves their relaxations
// concurrently — node i on worker i%W, so each worker sees a deterministic
// node sequence and its warm-start trajectory is reproducible — and then
// consumes the results sequentially in pop order. Because pruning,
// incumbent updates, observer events, and branching all happen in that
// sequential consume step, the search explores a deterministic tree for a
// fixed Workers value and streams observer events in a deterministic
// order; and since best-first search with the same pruning rule visits the
// same optimum, the returned objective and terminal bound are identical at
// any worker count (only the explored tree may differ between widths).
//
// Compared to the serial driver it additionally runs a root presolve
// (bound tightening, see presolve.go) and warm-starts node re-solves from
// each worker's previous basis.
func (s *search) runParallel() (*Solution, error) {
	w := s.opts.Workers
	pctx := s.opts.context()
	lower := append([]float64(nil), s.p.LP.Lower...)
	upper := append([]float64(nil), s.p.LP.Upper...)
	if !s.opts.NoPresolve {
		var tightened int
		var infeasible bool
		pprof.Do(pctx, pprof.Labels("solver_phase", "presolve"), func(context.Context) {
			tightened, infeasible = presolveBounds(s.p, lower, upper)
		})
		s.stats.PresolveTightened = tightened
		if infeasible {
			return s.finish(&Solution{Status: Infeasible}, math.Inf(-1)), nil
		}
	}
	ctxs := make([]*lp.Solver, w)
	for g := range ctxs {
		ctx, err := lp.NewSolver(s.p.LP)
		if err != nil {
			return nil, err
		}
		ctx.Lean = true
		ctx.NoWarm = s.opts.NoWarmStart
		ctxs[g] = ctx
	}
	heur, err := newHeurCtx(s.p)
	if err != nil {
		return nil, err
	}
	s.registerSolvers(append(append([]*lp.Solver(nil), ctxs...), heur.solver)...)
	root := &node{lower: lower, upper: upper, branchVar: -1}
	if done, err := s.openRoot(ctxs[0], heur, root); done != nil || err != nil {
		return done, err
	}

	wave := make([]*node, 0, w)
	results := make([]nodeResult, w)
	for {
		if err := pctx.Err(); err != nil {
			return nil, fmt.Errorf("%w after %d nodes: %v", ErrCanceled, s.nodes, err)
		}
		// Assemble the next wave: best-bound order, pre-pruning against the
		// current incumbent exactly like the serial pop loop, and never
		// popping more nodes than the node budget allows.
		wave = wave[:0]
		for len(wave) < w && s.queue.Len() > 0 && s.nodes+len(wave) < s.opts.MaxNodes {
			nd := heap.Pop(s.queue).(*node)
			if s.best.HasX && nd.bound <= s.best.Objective+s.pruneTol() {
				s.stats.QueuePruned++
				continue // pruned by bound before solving; not an explored node
			}
			wave = append(wave, nd)
		}
		if len(wave) == 0 {
			if s.queue.Len() == 0 {
				break
			}
			// Budget exhausted with open nodes left.
			out := *s.best
			out.Status = NodeLimit
			out.Nodes = s.nodes
			return s.finish(&out, s.globalBound(math.Inf(-1))), nil
		}

		if len(wave) == 1 {
			results[0] = solveNode(pctx, ctxs[0], wave[0])
		} else {
			var wg sync.WaitGroup
			for g := 0; g < w && g < len(wave); g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					// The phase label attributes wave-solve CPU (and each
					// worker's share of it) in pprof profiles.
					pprof.Do(pctx, pprof.Labels(
						"solver_phase", "wave",
						"solver_worker", strconv.Itoa(g),
					), func(lctx context.Context) {
						for i := g; i < len(wave); i += w {
							results[i] = solveNode(lctx, ctxs[g], wave[i])
						}
					})
				}(g)
			}
			wg.Wait()
		}

		for i, nd := range wave {
			// Popped-but-unprocessed wave nodes are open too; the wave is in
			// descending bound order, so the next node carries the best of
			// them for global-bound purposes.
			extra := math.Inf(-1)
			if i+1 < len(wave) {
				extra = wave[i+1].bound
			}
			s.consume(nd, results[i].sol, results[i].warm, heur, extra)
		}
		s.waveIdx++
		s.emitWave(len(wave), s.globalBound(math.Inf(-1)))
	}

	out := *s.best
	out.Nodes = s.nodes
	bound := math.Inf(-1)
	if out.HasX {
		bound = out.Objective
	}
	return s.finish(&out, bound), nil
}
