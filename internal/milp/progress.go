package milp

import (
	"math"
	"time"

	"insitu/internal/lp"
)

// Progress event kinds, in the order a solve emits them: exactly one
// ProgressStart, zero or more ProgressIncumbent/ProgressWave interleaved,
// exactly one ProgressEnd.
const (
	ProgressStart     = "start"     // problem shape, before the root relaxation
	ProgressWave      = "wave"      // one consumed wave (one node in the serial search)
	ProgressIncumbent = "incumbent" // the incumbent improved
	ProgressEnd       = "end"       // terminal status, objective, and bound
)

// ProgressEvent is one sample of the solver flight stream (the solveprog_v=1
// payload once it reaches the obs layer). Events are emitted on the
// sequential in-order consume path, so for a fixed Options.Workers width the
// stream is deterministic run to run — every field except T, which follows
// the Options.Now clock. Across widths the explored tree differs (see
// runParallel), so only the start/end projection is width-invariant; package
// obs exposes it as the canonical stream.
//
// All counters are cumulative since the start of the solve, so a consumer
// that only sees a suffix of the stream (a full ring buffer) still reads
// correct totals and can difference adjacent events for per-wave rates.
type ProgressEvent struct {
	Seq  int    // 0-based event index within this solve
	Kind string // one of the Progress* constants
	T    time.Duration

	// Search position. Wave counts consumed waves (the root is wave 1; the
	// serial search consumes one node per wave). Open is the number of nodes
	// left in the queue; WaveSize the nodes consumed by this wave, so
	// WaveSize/Workers is the worker occupancy of the wave.
	Wave     int
	WaveSize int
	Workers  int
	Nodes    int
	Open     int

	// Bounds. Incumbent is meaningful only when HasInc; Bound is the best
	// remaining global bound and may be ±Inf (start events and infeasible
	// searches). The absolute gap is Bound-Incumbent when both are finite.
	HasInc    bool
	Incumbent float64
	Bound     float64

	// LP effort, cumulative, heuristic re-solves included (matching Stats).
	Pivots        int
	Relaxations   int
	WarmSolves    int
	ColdSolves    int
	FallbackColds int
	// Revised-simplex internals, cumulative across the solver contexts
	// (matching the Stats fields of the same names): warm re-solves pruned on
	// a dual infeasibility certificate, the primal/dual pivot split, basis
	// refactorizations, and the peak eta-file length.
	WarmInfeasibles  int
	PrimalPivots     int
	DualPivots       int
	Refactorizations int
	EtaPeak          int

	// Prune-reason taxonomy over explored nodes, cumulative:
	// Nodes == PrunedBound + PrunedInfeasible + IntegralNodes + BranchedNodes.
	// QueuePruned counts nodes discarded at pop time without an LP solve (not
	// explored nodes).
	PrunedBound      int
	PrunedInfeasible int
	IntegralNodes    int
	BranchedNodes    int
	QueuePruned      int

	// Problem shape, set on ProgressStart only.
	Vars        int
	IntVars     int
	Constraints int

	// Status is set on ProgressEnd only.
	Status Status
}

// Gap returns the absolute optimality gap Bound-Incumbent, or +Inf when no
// incumbent exists or the bound is not finite.
func (e ProgressEvent) Gap() float64 {
	if !e.HasInc || math.IsInf(e.Bound, 0) {
		return math.Inf(1)
	}
	return e.Bound - e.Incumbent
}

// workersWidth normalizes Options.Workers the way Stats.Workers reports it.
func (o Options) workersWidth() int {
	if o.Workers >= 2 {
		return o.Workers
	}
	return 1
}

// solverTotals aggregates the lp-level statistics across the registered
// solver contexts: sums for the counters, max for the eta-file peak. The
// heuristic solver is registered too — it is always cold, so it never
// contributes warm fallbacks or dual pivots, but its primal pivots and
// refactorizations are real work that Stats.Pivots already charges.
func (s *search) solverTotals() (t lp.SolverStats) {
	for _, sv := range s.solvers {
		if sv == nil {
			continue
		}
		st := &sv.Stats
		t.FallbackCold += st.FallbackCold
		t.WarmInfeasible += st.WarmInfeasible
		t.PrimalPivots += st.PrimalPivots
		t.DualPivots += st.DualPivots
		t.Refactorizations += st.Refactorizations
		if st.EtaPeak > t.EtaPeak {
			t.EtaPeak = st.EtaPeak
		}
	}
	return t
}

// fill stamps the shared cumulative state onto ev. It must only run on the
// sequential consume path (workers idle), where the solver contexts are
// quiescent.
func (s *search) fill(ev *ProgressEvent) {
	ev.Seq = s.progSeq
	ev.T = s.opts.Now().Sub(s.started)
	ev.Wave = s.waveIdx
	ev.Workers = s.opts.workersWidth()
	ev.Nodes = s.nodes
	ev.Open = s.queue.Len()
	ev.Pivots = s.stats.Pivots
	ev.Relaxations = s.stats.Relaxations
	ev.WarmSolves = s.stats.WarmSolves
	ev.ColdSolves = s.stats.ColdSolves
	t := s.solverTotals()
	ev.FallbackColds = t.FallbackCold
	ev.WarmInfeasibles = t.WarmInfeasible
	ev.PrimalPivots = t.PrimalPivots
	ev.DualPivots = t.DualPivots
	ev.Refactorizations = t.Refactorizations
	ev.EtaPeak = t.EtaPeak
	ev.PrunedBound = s.stats.PrunedBound
	ev.PrunedInfeasible = s.stats.PrunedInfeasible
	ev.IntegralNodes = s.stats.IntegralNodes
	ev.BranchedNodes = s.stats.BranchedNodes
	ev.QueuePruned = s.stats.QueuePruned
	s.progSeq++
}

// emitStart announces the problem shape before the root relaxation solves.
func (s *search) emitStart() {
	if s.opts.Progress == nil {
		return
	}
	ints := 0
	for _, isInt := range s.p.Integer {
		if isInt {
			ints++
		}
	}
	ev := ProgressEvent{
		Kind:        ProgressStart,
		Bound:       math.Inf(1),
		Vars:        s.p.LP.NumVars(),
		IntVars:     ints,
		Constraints: len(s.p.LP.Constraints),
	}
	s.fill(&ev)
	s.opts.Progress(ev)
}

// emitWave reports one consumed wave; bound is the current global bound.
func (s *search) emitWave(waveSize int, bound float64) {
	if s.opts.Progress == nil {
		return
	}
	ev := ProgressEvent{
		Kind:      ProgressWave,
		WaveSize:  waveSize,
		HasInc:    s.best.HasX,
		Incumbent: s.best.Objective,
		Bound:     bound,
	}
	s.fill(&ev)
	s.opts.Progress(ev)
}

// emitIncumbent reports an incumbent improvement; bound is the global bound
// recorded with the incumbent (the same value recordIncumbent stores).
func (s *search) emitIncumbent(obj, bound float64) {
	if s.opts.Progress == nil {
		return
	}
	ev := ProgressEvent{
		Kind:      ProgressIncumbent,
		HasInc:    true,
		Incumbent: obj,
		Bound:     bound,
	}
	s.fill(&ev)
	s.opts.Progress(ev)
}

// emitEnd reports the terminal state; it runs inside finish, after the
// statistics are stamped, so the event and Stats agree.
func (s *search) emitEnd(sol *Solution, bound float64) {
	if s.opts.Progress == nil {
		return
	}
	ev := ProgressEvent{
		Kind:      ProgressEnd,
		HasInc:    sol.HasX,
		Incumbent: sol.Objective,
		Bound:     bound,
		Status:    sol.Status,
	}
	s.fill(&ev)
	ev.Nodes = sol.Nodes // NodeLimit copies may lag s.nodes by pre-popped waves
	s.opts.Progress(ev)
}

// registerSolvers records the solver contexts (node solvers plus the
// heuristic solver) so flight events and the final Stats can report the
// aggregated lp-level counters; it must run before the root solve.
func (s *search) registerSolvers(ctxs ...*lp.Solver) { s.solvers = ctxs }
