package milp

import (
	"reflect"
	"strings"
	"testing"

	"insitu/internal/lp"
)

// overConstrained builds a scheduling-flavored infeasible MILP: three binary
// analyses that must all be selected (coverage row) but whose summed cost
// cannot fit the budget row, plus two satisfiable decoy rows that a correct
// deletion filter must discard.
func overConstrained() *Problem {
	p := NewProblem(&lp.Problem{})
	a := p.AddBinVar(1, "a")
	b := p.AddBinVar(1, "b")
	c := p.AddBinVar(1, "c")
	p.LP.AddConstraint([]int{a, b, c}, []float64{1, 1, 1}, lp.GE, 3, "coverage")
	p.LP.AddConstraint([]int{a, b, c}, []float64{5, 5, 5}, lp.LE, 10, "time-budget")
	p.LP.AddConstraint([]int{a}, []float64{1}, lp.LE, 1, "decoy-cap")
	p.LP.AddConstraint([]int{b, c}, []float64{1, 1}, lp.GE, 0, "decoy-floor")
	return p
}

func TestDiagnoseInfeasibleMinimalConflict(t *testing.T) {
	p := overConstrained()
	conflict, err := DiagnoseInfeasible(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if conflict.BoundsOnly {
		t.Fatal("conflict reported as bounds-only")
	}
	if !reflect.DeepEqual(conflict.Names, []string{"coverage", "time-budget"}) {
		t.Fatalf("conflict = %v", conflict.Names)
	}

	// Verify minimality independently: the conflict rows alone must be
	// infeasible, and dropping any single conflict row must restore
	// feasibility.
	inConflict := map[int]bool{}
	for _, r := range conflict.Rows {
		inConflict[r] = true
	}
	solveWith := func(skip int) Status {
		var rows []lp.Constraint
		for i, c := range p.LP.Constraints {
			if inConflict[i] && i != skip {
				rows = append(rows, c)
			}
		}
		st, err := probeStatus(p, rows, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := solveWith(-1); st != Infeasible {
		t.Fatalf("conflict rows alone solve as %v", st)
	}
	for _, r := range conflict.Rows {
		if st := solveWith(r); st == Infeasible {
			t.Fatalf("conflict not minimal: still infeasible without row %d (%s)",
				r, p.LP.Constraints[r].Name)
		}
	}
	if got := conflict.String(); !strings.Contains(got, "coverage") || !strings.Contains(got, "time-budget") {
		t.Fatalf("String() = %q", got)
	}
}

func TestDiagnoseInfeasibleBoundsOnly(t *testing.T) {
	// 0.3 <= x <= 0.7 with x integer: no row is removable, the integrality
	// gap itself is the conflict.
	p := NewProblem(&lp.Problem{})
	p.AddIntVar(1, 0.3, 0.7, "x")
	p.LP.AddConstraint([]int{0}, []float64{1}, lp.LE, 5, "loose")
	conflict, err := DiagnoseInfeasible(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !conflict.BoundsOnly || len(conflict.Rows) != 0 {
		t.Fatalf("conflict = %+v, want bounds-only", conflict)
	}
	if !strings.Contains(conflict.String(), "bounds") {
		t.Fatalf("String() = %q", conflict.String())
	}
}

func TestDiagnoseInfeasibleUnnamedRows(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	x := p.AddBinVar(1, "x")
	p.LP.AddConstraint([]int{x}, []float64{1}, lp.GE, 2, "")
	conflict, err := DiagnoseInfeasible(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(conflict.Names, []string{"row 0"}) {
		t.Fatalf("conflict names = %v", conflict.Names)
	}
}

func TestDiagnoseInfeasibleRejectsFeasible(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	p.AddBinVar(1, "x")
	if _, err := DiagnoseInfeasible(p, Options{}); err == nil {
		t.Fatal("expected error on a feasible model")
	}
}
