package milp

import (
	"fmt"
	"io"
	"math"

	"insitu/internal/lp"
)

// WriteLP serializes the problem in CPLEX LP file format, the lingua franca
// of MILP solvers. A model exported this way can be fed to CPLEX, Gurobi,
// SCIP, or glpsol to cross-check this package's solutions — the moral
// equivalent of the paper's GAMS model file.
func WriteLP(w io.Writer, p *Problem) error {
	if len(p.Integer) != p.LP.NumVars() {
		return fmt.Errorf("milp: integrality vector has %d entries for %d variables", len(p.Integer), p.LP.NumVars())
	}
	name := func(j int) string {
		if j < len(p.LP.Names) && p.LP.Names[j] != "" {
			return sanitize(p.LP.Names[j])
		}
		return fmt.Sprintf("x%d", j)
	}

	if _, err := fmt.Fprintf(w, "\\ exported by insitu/internal/milp\nMaximize\n obj:"); err != nil {
		return err
	}
	if err := writeLinear(w, p.LP.Objective, name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nSubject To\n"); err != nil {
		return err
	}
	for r, c := range p.LP.Constraints {
		label := c.Name
		if label == "" {
			label = fmt.Sprintf("c%d", r)
		}
		if _, err := fmt.Fprintf(w, " %s:", sanitize(label)); err != nil {
			return err
		}
		if err := writeLinear(w, c.Coef, name); err != nil {
			return err
		}
		op := "<="
		switch c.Sense {
		case lp.GE:
			op = ">="
		case lp.EQ:
			op = "="
		}
		if _, err := fmt.Fprintf(w, " %s %g\n", op, c.RHS); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w, "Bounds\n"); err != nil {
		return err
	}
	for j := 0; j < p.LP.NumVars(); j++ {
		lo, up := p.LP.Lower[j], p.LP.Upper[j]
		switch {
		case math.IsInf(up, 1):
			if _, err := fmt.Fprintf(w, " %s >= %g\n", name(j), lo); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, " %g <= %s <= %g\n", lo, name(j), up); err != nil {
				return err
			}
		}
	}

	wroteHeader := false
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		if !wroteHeader {
			if _, err := fmt.Fprintf(w, "Generals\n"); err != nil {
				return err
			}
			wroteHeader = true
		}
		if _, err := fmt.Fprintf(w, " %s\n", name(j)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "End\n")
	return err
}

// writeLinear emits "+ c x" terms for the nonzero coefficients.
func writeLinear(w io.Writer, coef []float64, name func(int) string) error {
	wrote := false
	for j, c := range coef {
		if c == 0 {
			continue
		}
		sign := "+"
		if c < 0 {
			sign = "-"
			c = -c
		}
		if _, err := fmt.Fprintf(w, " %s %g %s", sign, c, name(j)); err != nil {
			return err
		}
		wrote = true
	}
	if !wrote {
		if _, err := fmt.Fprintf(w, " 0 %s", name(0)); err != nil {
			return err
		}
	}
	return nil
}

// sanitize maps arbitrary variable names onto the LP-format charset.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '.', c == '(', c == ')':
			out = append(out, c)
		case c == '[':
			out = append(out, '(')
		case c == ']':
			out = append(out, ')')
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	// LP format forbids a leading digit or period.
	if out[0] >= '0' && out[0] <= '9' || out[0] == '.' {
		out = append([]byte{'v'}, out...)
	}
	return string(out)
}
