package milp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"insitu/internal/lp"
)

// ReadLP parses the CPLEX LP subset emitted by WriteLP back into a Problem.
// Together with WriteLP it closes the export loop: a model serialized for an
// external solver can be reparsed and re-solved here, and the differential
// harness in internal/solvercheck asserts the round trip preserves the
// optimum. Variables are numbered in order of first appearance, so the
// reparsed problem may order columns differently from the original; objective
// values, not variable indices, are the comparable quantity.
//
// The supported grammar is exactly what WriteLP produces: one "Maximize"
// section with a single objective row, "Subject To" rows, a "Bounds" section
// with "lo <= x <= hi" or "x >= lo" lines, an optional "Generals" section
// naming the integer variables, and "End". Comment lines start with "\".
func ReadLP(r io.Reader) (*Problem, error) {
	p := &parser{
		prob: NewProblem(&lp.Problem{}),
		vars: map[string]int{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	section := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, `\`) {
			continue
		}
		switch strings.ToLower(line) {
		case "maximize", "minimize":
			if strings.ToLower(line) == "minimize" {
				return nil, fmt.Errorf("milp: line %d: minimize objectives are not supported (WriteLP always maximizes)", lineNo)
			}
			section = "objective"
			continue
		case "subject to", "st", "s.t.":
			section = "constraints"
			continue
		case "bounds":
			section = "bounds"
			continue
		case "generals", "general", "integers":
			section = "generals"
			continue
		case "binary", "binaries":
			section = "binaries"
			continue
		case "end":
			section = "end"
			continue
		}
		var err error
		switch section {
		case "objective":
			err = p.parseObjective(line)
		case "constraints":
			err = p.parseConstraint(line)
		case "bounds":
			err = p.parseBound(line)
		case "generals", "binaries":
			err = p.parseIntegral(line, section == "binaries")
		case "end":
			err = fmt.Errorf("content after End")
		default:
			err = fmt.Errorf("content before a section header")
		}
		if err != nil {
			return nil, fmt.Errorf("milp: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("milp: reading LP: %w", err)
	}
	if section != "end" {
		return nil, fmt.Errorf("milp: LP file is missing the End marker")
	}
	// Variables first seen in the Bounds or Generals sections postdate the
	// constraint rows; pad every row to the final variable count.
	n := p.prob.LP.NumVars()
	for r := range p.prob.LP.Constraints {
		if c := &p.prob.LP.Constraints[r]; len(c.Coef) < n {
			c.Coef = append(c.Coef, make([]float64, n-len(c.Coef))...)
		}
	}
	return p.prob, nil
}

type parser struct {
	prob *Problem
	vars map[string]int
}

// varIndex returns the column of name, creating a fresh continuous variable
// with default bounds [0, +Inf) on first sight (the Bounds section tightens
// them later).
func (p *parser) varIndex(name string) int {
	if j, ok := p.vars[name]; ok {
		return j
	}
	j := p.prob.AddContVar(0, 0, lp.Inf, name)
	p.vars[name] = j
	return j
}

// splitLabel removes a leading "label:" from an objective or constraint row.
func splitLabel(line string) (label, rest string) {
	if i := strings.Index(line, ":"); i >= 0 {
		return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:])
	}
	return "", line
}

// parseLinear reads a "+ 2 x - 3.5 y"-style expression into (index, coef)
// pairs. Coefficients are optional ("+ x" means +1) to be permissive with
// hand-edited files, though WriteLP always emits them.
func (p *parser) parseLinear(expr string) ([]int, []float64, error) {
	fields := strings.Fields(expr)
	var idx []int
	var coef []float64
	sign := 1.0
	pending := math.NaN() // parsed coefficient waiting for its variable
	for _, f := range fields {
		switch f {
		case "+":
			sign = 1
			continue
		case "-":
			sign = -1
			continue
		}
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			if !math.IsNaN(pending) {
				return nil, nil, fmt.Errorf("two consecutive numbers %q in expression", f)
			}
			pending = sign * v
			sign = 1
			continue
		}
		c := sign
		if !math.IsNaN(pending) {
			c = pending
		}
		idx = append(idx, p.varIndex(f))
		coef = append(coef, c)
		pending = math.NaN()
		sign = 1
	}
	if !math.IsNaN(pending) {
		return nil, nil, fmt.Errorf("dangling coefficient at end of expression")
	}
	return idx, coef, nil
}

func (p *parser) parseObjective(line string) error {
	_, rest := splitLabel(line)
	idx, coef, err := p.parseLinear(rest)
	if err != nil {
		return err
	}
	for k, j := range idx {
		p.prob.LP.Objective[j] += coef[k]
	}
	return nil
}

func (p *parser) parseConstraint(line string) error {
	label, rest := splitLabel(line)
	var sense lp.Sense
	var op string
	switch {
	case strings.Contains(rest, "<="):
		sense, op = lp.LE, "<="
	case strings.Contains(rest, ">="):
		sense, op = lp.GE, ">="
	case strings.Contains(rest, "="):
		sense, op = lp.EQ, "="
	default:
		return fmt.Errorf("constraint %q has no relational operator", line)
	}
	parts := strings.SplitN(rest, op, 2)
	rhs, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return fmt.Errorf("constraint RHS %q: %w", strings.TrimSpace(parts[1]), err)
	}
	idx, coef, err := p.parseLinear(parts[0])
	if err != nil {
		return err
	}
	p.prob.LP.AddConstraint(idx, coef, sense, rhs, label)
	return nil
}

func (p *parser) parseBound(line string) error {
	// Two shapes: "lo <= x <= hi" and "x >= lo" (infinite upper bound).
	if strings.Contains(line, "<=") {
		parts := strings.Split(line, "<=")
		if len(parts) != 3 {
			return fmt.Errorf("bound %q: want lo <= x <= hi", line)
		}
		lo, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return fmt.Errorf("bound lower %q: %w", parts[0], err)
		}
		hi, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return fmt.Errorf("bound upper %q: %w", parts[2], err)
		}
		j := p.varIndex(strings.TrimSpace(parts[1]))
		p.prob.LP.Lower[j], p.prob.LP.Upper[j] = lo, hi
		return nil
	}
	if strings.Contains(line, ">=") {
		parts := strings.Split(line, ">=")
		if len(parts) != 2 {
			return fmt.Errorf("bound %q: want x >= lo", line)
		}
		lo, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return fmt.Errorf("bound lower %q: %w", parts[1], err)
		}
		j := p.varIndex(strings.TrimSpace(parts[0]))
		p.prob.LP.Lower[j] = lo
		return nil
	}
	return fmt.Errorf("unrecognized bound line %q", line)
}

func (p *parser) parseIntegral(line string, binary bool) error {
	for _, name := range strings.Fields(line) {
		j := p.varIndex(name)
		p.prob.Integer[j] = true
		if binary {
			p.prob.LP.Lower[j], p.prob.LP.Upper[j] = 0, 1
		}
	}
	return nil
}
