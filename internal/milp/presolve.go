package milp

import (
	"math"

	"insitu/internal/lp"
)

// presolveBounds tightens root variable bounds in place using single-row
// implied-bound ("activity") reasoning, the cheapest useful slice of what
// CPLEX's presolve does: for a row a·x <= b with every other variable at
// its row-minimizing bound, variable j must satisfy
// a_j x_j <= b - minActivity_without_j. GE rows are negated into LE form
// and EQ rows contribute both directions. Bounds of integer variables are
// rounded inward. Only reductions that cannot cut any feasible point are
// applied, so the search over the tightened box has the same optimum as
// the original model.
//
// It returns the number of bound tightenings and whether the root was
// proven infeasible outright (a row unsatisfiable even at minimum
// activity, or a variable's bounds crossing).
func presolveBounds(p *Problem, lower, upper []float64) (tightened int, infeasible bool) {
	neg := make([]float64, p.LP.NumVars())
	// A few passes let tightenings propagate between rows; the scheduling
	// models converge in one or two.
	for pass := 0; pass < 4; pass++ {
		changed := 0
		apply := func(coef []float64, rhs float64) bool {
			ch, bad := tightenLERow(p, coef, rhs, lower, upper)
			tightened += ch
			changed += ch
			return bad
		}
		for _, c := range p.LP.Constraints {
			bad := false
			switch c.Sense {
			case lp.LE:
				bad = apply(c.Coef, c.RHS)
			case lp.GE:
				for j, v := range c.Coef {
					neg[j] = -v
				}
				bad = apply(neg, -c.RHS)
			case lp.EQ:
				bad = apply(c.Coef, c.RHS)
				if !bad {
					for j, v := range c.Coef {
						neg[j] = -v
					}
					bad = apply(neg, -c.RHS)
				}
			}
			if bad {
				return tightened, true
			}
		}
		if changed == 0 {
			break
		}
	}
	return tightened, false
}

// tightenLERow applies implied bounds from one a·x <= b row. Lower bounds
// are always finite in this package (lp.Validate rejects -Inf), so the
// only infinite contribution to the row's minimum activity comes from a
// negative coefficient on a variable with an infinite upper bound; one
// such column can still be bounded by the rest of the row, two make the
// row uninformative.
func tightenLERow(p *Problem, coef []float64, rhs float64, lower, upper []float64) (changed int, infeasible bool) {
	const (
		feas    = 1e-7 // infeasibility margin, matches the LP feasibility tolerance
		improve = 1e-9 // minimum improvement worth recording
	)
	minAct := 0.0
	infIdx := -1
	for j, a := range coef {
		switch {
		case a > 0:
			minAct += a * lower[j]
		case a < 0:
			if math.IsInf(upper[j], 1) {
				if infIdx >= 0 {
					return 0, false
				}
				infIdx = j
				continue
			}
			minAct += a * upper[j]
		}
	}
	if infIdx < 0 && minAct > rhs+feas {
		return 0, true // row unsatisfiable even at its minimum activity
	}
	for j, a := range coef {
		if a == 0 {
			continue
		}
		if infIdx >= 0 && infIdx != j {
			// Some other column drives the minimum activity to -Inf, so this
			// row implies nothing about j.
			continue
		}
		// Residual budget for j with every other variable at its
		// row-minimizing bound (infIdx's own term was never added).
		own := 0.0
		if j != infIdx {
			if a > 0 {
				own = a * lower[j]
			} else {
				own = a * upper[j]
			}
		}
		resid := rhs - (minAct - own)
		if a > 0 {
			nu := resid / a
			if p.Integer[j] {
				nu = math.Floor(nu + feas)
			}
			if nu < upper[j]-improve {
				upper[j] = nu
				changed++
			}
		} else {
			nl := resid / a // dividing by a negative flips the inequality
			if p.Integer[j] {
				nl = math.Ceil(nl - feas)
			}
			if nl > lower[j]+improve {
				lower[j] = nl
				changed++
			}
		}
		if lower[j] > upper[j]+improve {
			return changed, true
		}
	}
	return changed, false
}
