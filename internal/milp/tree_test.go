package milp

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"insitu/internal/lp"
)

// recordTree solves p with a TreeRecorder installed and returns the recorder.
func recordTree(t *testing.T, p *Problem) *TreeRecorder {
	t.Helper()
	rec := NewTreeRecorder(p)
	sol, err := Solve(p, Options{Observer: rec.Observe})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	return rec
}

func TestTreeRecorderCapturesSearch(t *testing.T) {
	p := hardInstance(5, 14)
	rec := recordTree(t, p)
	nodes := rec.Nodes()
	if len(nodes) < 3 {
		t.Fatalf("recorded %d nodes, want a real search", len(nodes))
	}
	if nodes[0].ID != 1 || nodes[0].Parent != 0 || nodes[0].BranchVar != -1 || nodes[0].BranchDir != "" {
		t.Fatalf("root node = %+v", nodes[0])
	}
	seen := map[int]TreeNode{}
	for i, n := range nodes {
		if i > 0 {
			// Parent links must point at an already streamed, branched node.
			parent, ok := seen[n.Parent]
			if !ok {
				t.Fatalf("node %d has unseen parent %d", n.ID, n.Parent)
			}
			if parent.Action != "branched" {
				t.Fatalf("node %d descends from %q parent %d", n.ID, parent.Action, n.Parent)
			}
			if n.Depth != parent.Depth+1 {
				t.Fatalf("node %d depth %d under parent depth %d", n.ID, n.Depth, parent.Depth)
			}
			if n.BranchVar < 0 || n.BranchVar >= p.LP.NumVars() || !p.Integer[n.BranchVar] {
				t.Fatalf("node %d branches on variable %d", n.ID, n.BranchVar)
			}
			if n.BranchDir != "down" && n.BranchDir != "up" {
				t.Fatalf("node %d branch dir %q", n.ID, n.BranchDir)
			}
		}
		seen[n.ID] = n
	}
	st := rec.Stats()
	if st.Explored != len(nodes) || st.Branched == 0 {
		t.Fatalf("stats = %+v for %d nodes", st, len(nodes))
	}
	if st.Branched+st.Pruned+st.Infeasible+st.Integral != st.Explored {
		t.Fatalf("stats actions do not partition: %+v", st)
	}
	if !strings.Contains(st.String(), fmt.Sprintf("explored=%d", len(nodes))) {
		t.Fatalf("stats string = %q", st.String())
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	rec := recordTree(t, hardInstance(11, 12))
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec.Tree()) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, rec.Tree())
	}
}

func TestReadTreeRejectsBadInput(t *testing.T) {
	if _, err := ReadTree(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadTree(strings.NewReader(`{"schema": 99, "nodes": []}`)); err == nil {
		t.Fatal("expected schema error")
	}
}

func TestTreeDOTExport(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	idx := make([]int, 6)
	coef := make([]float64, 6)
	for j := 0; j < 6; j++ {
		p.AddBinVar(float64(j%3)+1.5, fmt.Sprintf("x[A%d]", j))
		idx[j] = j
		coef[j] = 2
	}
	p.LP.AddConstraint(idx, coef, lp.LE, 5, "cap")
	rec := recordTree(t, p)
	var buf bytes.Buffer
	if err := rec.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	if !strings.HasPrefix(dot, "digraph bnb {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a digraph:\n%s", dot)
	}
	if !strings.Contains(dot, "n1 [label=\"n1 ") {
		t.Fatalf("missing root node:\n%s", dot)
	}
	// Every non-root node must have an inbound edge labeled with the named
	// branch variable.
	for _, n := range rec.Nodes()[1:] {
		edge := fmt.Sprintf("n%d -> n%d", n.Parent, n.ID)
		if !strings.Contains(dot, edge) {
			t.Fatalf("missing edge %s:\n%s", edge, dot)
		}
	}
	if !strings.Contains(dot, "x[A") {
		t.Fatalf("branch labels did not use variable names:\n%s", dot)
	}
}

func TestDotEscape(t *testing.T) {
	if got := dotEscape(`a"b\c`); got != `a\"b\\c` {
		t.Fatalf("dotEscape = %q", got)
	}
}
