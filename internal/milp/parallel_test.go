package milp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"insitu/internal/lp"
)

// randParallelMILP draws a small binary program with mixed senses, shaped
// like the compact scheduling model (knapsack rows plus occasional equality
// couplings), including infeasible instances.
func randParallelMILP(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(7)
	p := NewProblem(&lp.Problem{})
	integralObj := rng.Intn(2) == 0
	for j := 0; j < n; j++ {
		obj := float64(rng.Intn(15) - 4)
		if !integralObj {
			obj += 0.25 * float64(rng.Intn(4))
		}
		p.AddBinVar(obj, "")
	}
	idx := make([]int, n)
	for j := range idx {
		idx[j] = j
	}
	m := 1 + rng.Intn(4)
	for r := 0; r < m; r++ {
		coef := make([]float64, n)
		for j := range coef {
			coef[j] = float64(rng.Intn(7) - 2)
		}
		switch rng.Intn(10) {
		case 0:
			p.LP.AddConstraint(idx, coef, lp.EQ, float64(rng.Intn(3)), "")
		case 1, 2:
			p.LP.AddConstraint(idx, coef, lp.GE, float64(rng.Intn(4)-2), "")
		default:
			p.LP.AddConstraint(idx, coef, lp.LE, float64(2+rng.Intn(6)), "")
		}
	}
	return p
}

// TestParallelMatchesSerial pins the cross-width contract: any worker count
// returns the same status, objective, and terminal bound as the serial
// search.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(511))
	for trial := 0; trial < 120; trial++ {
		p := randParallelMILP(rng)
		serial, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: serial: %v", trial, err)
		}
		for _, w := range []int{2, 3, 8} {
			par, err := Solve(p, Options{Workers: w})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			if par.Status != serial.Status {
				t.Fatalf("trial %d workers=%d: status %v, serial %v", trial, w, par.Status, serial.Status)
			}
			if serial.Status == Optimal {
				if math.Abs(par.Objective-serial.Objective) > 1e-9*(1+math.Abs(serial.Objective)) {
					t.Fatalf("trial %d workers=%d: objective %g, serial %g", trial, w, par.Objective, serial.Objective)
				}
				if math.Abs(par.Bound-serial.Bound) > 1e-9*(1+math.Abs(serial.Bound)) {
					t.Fatalf("trial %d workers=%d: bound %g, serial %g", trial, w, par.Bound, serial.Bound)
				}
				if viol := p.LP.FirstViolation(par.X, 1e-6); viol != "" {
					t.Fatalf("trial %d workers=%d: incumbent infeasible: %s", trial, w, viol)
				}
			}
		}
	}
}

// TestParallelDeterministic solves the same instances twice at the same
// width and requires identical search statistics, incumbent trajectories,
// and observer streams — the determinism contract for a fixed Workers
// value.
func TestParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	for trial := 0; trial < 40; trial++ {
		p := randParallelMILP(rng)
		run := func() (*Solution, []NodeEvent) {
			var events []NodeEvent
			sol, err := Solve(p, Options{Workers: 4, Observer: func(ev NodeEvent) {
				events = append(events, ev)
			}})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return sol, events
		}
		a, evA := run()
		b, evB := run()
		if a.Objective != b.Objective || a.Bound != b.Bound || a.Status != b.Status {
			t.Fatalf("trial %d: repeated solve differs: (%v %g %g) vs (%v %g %g)",
				trial, a.Status, a.Objective, a.Bound, b.Status, b.Objective, b.Bound)
		}
		if a.Stats.Nodes != b.Stats.Nodes || a.Stats.Relaxations != b.Stats.Relaxations ||
			a.Stats.Pivots != b.Stats.Pivots || a.Stats.WarmSolves != b.Stats.WarmSolves ||
			a.Stats.ColdSolves != b.Stats.ColdSolves {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, a.Stats, b.Stats)
		}
		if !reflect.DeepEqual(a.Stats.Incumbents, b.Stats.Incumbents) {
			t.Fatalf("trial %d: incumbent trajectories differ", trial)
		}
		if !reflect.DeepEqual(evA, evB) {
			t.Fatalf("trial %d: observer streams differ (%d vs %d events)", trial, len(evA), len(evB))
		}
	}
}

// TestParallelObserverStream checks that the serialized parallel event
// stream keeps the invariants TreeRecorder depends on: node ids are
// 1..Nodes in order, parent links point at previously streamed nodes, and
// the incumbent field is monotone.
func TestParallelObserverStream(t *testing.T) {
	p := hardInstance(7, 14)
	var events []NodeEvent
	sol, err := Solve(p, Options{Workers: 4, Observer: func(ev NodeEvent) {
		events = append(events, ev)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != sol.Stats.Nodes {
		t.Fatalf("got %d events for %d explored nodes", len(events), sol.Stats.Nodes)
	}
	seen := map[int]bool{0: true}
	lastInc := math.Inf(-1)
	for i, ev := range events {
		if ev.Node != i+1 {
			t.Fatalf("event %d has node id %d", i, ev.Node)
		}
		if !seen[ev.Parent] {
			t.Fatalf("node %d has parent %d that was never streamed", ev.Node, ev.Parent)
		}
		if ev.HasInc && ev.Incumbent < lastInc {
			t.Fatalf("node %d incumbent %g regressed below %g", ev.Node, ev.Incumbent, lastInc)
		}
		if ev.HasInc {
			lastInc = ev.Incumbent
		}
		seen[ev.Node] = true
	}
	var rec TreeRecorder
	rsol, err := Solve(p, Options{Workers: 4, Observer: rec.Observe})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Nodes()); got != rsol.Stats.Nodes {
		t.Fatalf("TreeRecorder captured %d nodes out of %d", got, rsol.Stats.Nodes)
	}
	if st := rec.Stats(); st.Explored != rsol.Stats.Nodes {
		t.Fatalf("TreeRecorder stats count %d explored nodes, want %d", st.Explored, rsol.Stats.Nodes)
	}
}

// TestParallelWarmStarts checks that the parallel search actually exercises
// the warm path on a branching-heavy instance, that NoWarmStart suppresses
// it, and that both return the same answer.
func TestParallelWarmStarts(t *testing.T) {
	p := hardInstance(3, 16)
	warm, err := Solve(p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(p, Options{Workers: 2, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.WarmSolves == 0 {
		t.Fatal("parallel search never took the warm path")
	}
	if cold.Stats.WarmSolves != 0 {
		t.Fatalf("NoWarmStart still produced %d warm solves", cold.Stats.WarmSolves)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("warm objective %g, cold %g", warm.Objective, cold.Objective)
	}
	if warm.Stats.Workers != 2 {
		t.Fatalf("Stats.Workers = %d, want 2", warm.Stats.Workers)
	}
}

// TestParallelNodeLimit checks the budget path: the parallel driver must
// stop at MaxNodes with NodeLimit and keep its incumbent.
func TestParallelNodeLimit(t *testing.T) {
	p := hardInstance(11, 18)
	sol, err := Solve(p, Options{Workers: 4, MaxNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != NodeLimit {
		t.Fatalf("status %v, want node-limit", sol.Status)
	}
	if sol.Stats.Nodes > 8 {
		t.Fatalf("explored %d nodes past the budget of 8", sol.Stats.Nodes)
	}
	if sol.HasX && sol.Bound < sol.Objective-1e-9 {
		t.Fatalf("terminal bound %g below incumbent %g", sol.Bound, sol.Objective)
	}
}

func TestAutoWorkers(t *testing.T) {
	if got := AutoWorkers(3); got != 3 {
		t.Fatalf("AutoWorkers(3) = %d", got)
	}
	if got := AutoWorkers(0); got < 1 {
		t.Fatalf("AutoWorkers(0) = %d", got)
	}
}
