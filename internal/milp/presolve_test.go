package milp

import (
	"math"
	"math/rand"
	"testing"

	"insitu/internal/lp"
)

// TestPresolveTightensKnapsack: in 3x + 4y <= 5 over integers in [0,5],
// activity reasoning caps x at 1 and y at 1.
func TestPresolveTightensKnapsack(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	p.AddIntVar(1, 0, 5, "x")
	p.AddIntVar(1, 0, 5, "y")
	p.LP.AddConstraint([]int{0, 1}, []float64{3, 4}, lp.LE, 5, "cap")
	lower := append([]float64(nil), p.LP.Lower...)
	upper := append([]float64(nil), p.LP.Upper...)
	tightened, infeasible := presolveBounds(p, lower, upper)
	if infeasible {
		t.Fatal("feasible instance reported infeasible")
	}
	if tightened != 2 {
		t.Fatalf("tightened %d bounds, want 2", tightened)
	}
	if upper[0] != 1 || upper[1] != 1 {
		t.Fatalf("upper bounds %v, want [1 1]", upper)
	}
}

// TestPresolveGERaisesLower: x + y >= 7 with y <= 3 forces x >= 4.
func TestPresolveGERaisesLower(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	p.AddIntVar(1, 0, 9, "x")
	p.AddIntVar(1, 0, 3, "y")
	p.LP.AddConstraint([]int{0, 1}, []float64{1, 1}, lp.GE, 7, "demand")
	lower := append([]float64(nil), p.LP.Lower...)
	upper := append([]float64(nil), p.LP.Upper...)
	if _, infeasible := presolveBounds(p, lower, upper); infeasible {
		t.Fatal("feasible instance reported infeasible")
	}
	if lower[0] != 4 {
		t.Fatalf("lower[x] = %g, want 4", lower[0])
	}
}

// TestPresolveDetectsInfeasible: a row unsatisfiable at minimum activity.
func TestPresolveDetectsInfeasible(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	p.AddIntVar(1, 0, 1, "x")
	p.AddIntVar(1, 0, 1, "y")
	p.LP.AddConstraint([]int{0, 1}, []float64{1, 1}, lp.GE, 3, "impossible")
	lower := append([]float64(nil), p.LP.Lower...)
	upper := append([]float64(nil), p.LP.Upper...)
	if _, infeasible := presolveBounds(p, lower, upper); !infeasible {
		t.Fatal("unsatisfiable row not detected")
	}
	// The full solve must agree.
	sol, err := Solve(p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

// TestPresolveSkipsUnboundedColumns: a continuous variable with an infinite
// upper bound and a negative coefficient makes the row's minimum activity
// unbounded below, so nothing may be inferred about the other columns — but
// the unbounded column itself can still pick up a bound from the rest.
func TestPresolveSkipsUnboundedColumns(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	p.AddIntVar(1, 0, 9, "x")
	p.AddContVar(1, 0, math.Inf(1), "s")
	// x - s <= 2: with s free upward, x is NOT bounded by this row; s gains
	// s >= x_lo - 2 which is below 0, so no tightening at all.
	p.LP.AddConstraint([]int{0, 1}, []float64{1, -1}, lp.LE, 2, "slacky")
	lower := append([]float64(nil), p.LP.Lower...)
	upper := append([]float64(nil), p.LP.Upper...)
	tightened, infeasible := presolveBounds(p, lower, upper)
	if infeasible || tightened != 0 {
		t.Fatalf("tightened=%d infeasible=%v, want 0/false", tightened, infeasible)
	}
	if upper[0] != 9 || !math.IsInf(upper[1], 1) {
		t.Fatalf("bounds moved: upper=%v", upper)
	}
}

// TestPresolvePreservesOptimum property: solving with and without presolve
// (through the parallel driver) returns the same objective.
func TestPresolvePreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(1313))
	for trial := 0; trial < 80; trial++ {
		p := randParallelMILP(rng)
		with, err := Solve(p, Options{Workers: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		without, err := Solve(p, Options{Workers: 2, NoPresolve: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if with.Status != without.Status {
			t.Fatalf("trial %d: presolve changed status %v -> %v", trial, without.Status, with.Status)
		}
		if with.Status == Optimal && math.Abs(with.Objective-without.Objective) > 1e-9*(1+math.Abs(without.Objective)) {
			t.Fatalf("trial %d: presolve changed objective %g -> %g", trial, without.Objective, with.Objective)
		}
	}
}
