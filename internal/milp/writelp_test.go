package milp

import (
	"bytes"
	"strings"
	"testing"

	"insitu/internal/lp"
)

func TestWriteLPKnapsack(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	a := p.AddBinVar(60, "take[a]")
	b := p.AddBinVar(100, "take b") // space must be sanitized
	c := p.AddContVar(1, 0, lp.Inf, "slack")
	p.LP.AddConstraint([]int{a, b, c}, []float64{10, 20, -1}, lp.LE, 50, "cap")
	p.LP.AddConstraint([]int{a, b}, []float64{1, 1}, lp.GE, 1, "")
	p.LP.AddConstraint([]int{c}, []float64{1}, lp.EQ, 0, "fix")

	var buf bytes.Buffer
	if err := WriteLP(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Maximize", "Subject To", "Bounds", "Generals", "End",
		"take(a)", "take_b", "cap:", ">= 1", "= 0", "<= 50",
		"+ 60 take(a)", "+ 100 take_b",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("LP output missing %q:\n%s", want, out)
		}
	}
	// Continuous slack must not be listed under Generals.
	gen := out[strings.Index(out, "Generals"):]
	if strings.Contains(gen, "slack") {
		t.Fatalf("continuous variable listed as general:\n%s", gen)
	}
	// Infinite upper bound renders as a one-sided bound.
	if !strings.Contains(out, "slack >= 0") {
		t.Fatalf("missing one-sided bound:\n%s", out)
	}
}

func TestWriteLPNegativeCoefficients(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	x := p.AddBinVar(-3, "x")
	p.LP.AddConstraint([]int{x}, []float64{-2}, lp.LE, -1, "neg")
	var buf bytes.Buffer
	if err := WriteLP(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "- 3 x") || !strings.Contains(out, "- 2 x") {
		t.Fatalf("negative coefficients misrendered:\n%s", out)
	}
}

func TestWriteLPValidation(t *testing.T) {
	p := &Problem{LP: &lp.Problem{}, Integer: []bool{true}}
	var buf bytes.Buffer
	if err := WriteLP(&buf, p); err == nil {
		t.Fatal("expected integrality-length error")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"x[A4 msd,n=2,k=1]": "x(A4_msd_n_2_k_1)",
		"":                  "_",
		"9lives":            "v9lives",
		".dot":              "v.dot",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteLPZeroObjective(t *testing.T) {
	p := NewProblem(&lp.Problem{})
	p.AddBinVar(0, "x")
	var buf bytes.Buffer
	if err := WriteLP(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 x") {
		t.Fatalf("all-zero objective must still emit a term:\n%s", buf.String())
	}
}
