package milp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestSolveCanceled: a pre-canceled context stops both drivers after the
// root, with an error wrapping ErrCanceled.
func TestSolveCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for trial := 0; trial < 40; trial++ {
		p := randParallelMILP(rng)
		for _, w := range []int{1, 3} {
			sol, err := Solve(p, Options{Workers: w, Ctx: canceled})
			if err == nil {
				// Legal: the root already finished the search (infeasible,
				// unbounded, or integral root) before any cancellation check.
				if sol == nil {
					t.Fatalf("trial %d workers=%d: nil solution and nil error", trial, w)
				}
				continue
			}
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("trial %d workers=%d: error %v does not wrap ErrCanceled", trial, w, err)
			}
			if sol != nil {
				t.Fatalf("trial %d workers=%d: canceled solve returned a solution", trial, w)
			}
		}
	}
}

// TestSolveUncanceledContextIdentical: attaching a live context must not
// perturb the search — same status, objective, bound, and node count as the
// nil-context solve.
func TestSolveUncanceledContextIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(412))
	ctx := context.Background()
	for trial := 0; trial < 60; trial++ {
		p := randParallelMILP(rng)
		for _, w := range []int{1, 2, 4} {
			base, err := Solve(p, Options{Workers: w})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			withCtx, err := Solve(p, Options{Workers: w, Ctx: ctx})
			if err != nil {
				t.Fatalf("trial %d workers=%d with ctx: %v", trial, w, err)
			}
			if base.Status != withCtx.Status || base.Objective != withCtx.Objective ||
				base.Bound != withCtx.Bound || base.Nodes != withCtx.Nodes {
				t.Fatalf("trial %d workers=%d: context changed the search: %+v vs %+v",
					trial, w, base, withCtx)
			}
		}
	}
}
