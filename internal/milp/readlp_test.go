package milp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"insitu/internal/lp"
)

// knapsack builds a small MILP with binaries, a continuous variable, and an
// equality row, exercising every section WriteLP emits.
func roundTripProblem() *Problem {
	p := NewProblem(&lp.Problem{})
	x := p.AddBinVar(5, "x[a,n=1]")
	y := p.AddBinVar(4, "y")
	z := p.AddIntVar(3, 0, 3, "z")
	c := p.AddContVar(0.5, 0, 10, "c")
	p.LP.AddConstraint([]int{x, y, z}, []float64{2, 3, 1}, lp.LE, 5, "cap")
	p.LP.AddConstraint([]int{z, c}, []float64{1, -1}, lp.GE, -2, "link")
	p.LP.AddConstraint([]int{x, c}, []float64{1, 1}, lp.EQ, 3, "tie")
	return p
}

func TestReadLPRoundTripObjective(t *testing.T) {
	p := roundTripProblem()
	want, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteLP(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadLP(&buf)
	if err != nil {
		t.Fatalf("ReadLP: %v", err)
	}
	if q.LP.NumVars() != p.LP.NumVars() {
		t.Fatalf("reparsed %d variables, want %d", q.LP.NumVars(), p.LP.NumVars())
	}
	if len(q.LP.Constraints) != len(p.LP.Constraints) {
		t.Fatalf("reparsed %d constraints, want %d", len(q.LP.Constraints), len(p.LP.Constraints))
	}
	got, err := Solve(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status {
		t.Fatalf("reparsed status %v, want %v", got.Status, want.Status)
	}
	if math.Abs(got.Objective-want.Objective) > 1e-9 {
		t.Fatalf("reparsed objective %g, want %g", got.Objective, want.Objective)
	}
}

func TestReadLPSecondRoundTripIsByteIdentical(t *testing.T) {
	p := roundTripProblem()
	var first bytes.Buffer
	if err := WriteLP(&first, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadLP(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteLP(&second, q); err != nil {
		t.Fatal(err)
	}
	// After one parse the variable order is canonical (first appearance), so
	// write -> read -> write must be a fixed point.
	r, err := ReadLP(bytes.NewReader(second.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var third bytes.Buffer
	if err := WriteLP(&third, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second.Bytes(), third.Bytes()) {
		t.Fatalf("second and third serializations differ:\n%s\n---\n%s", second.String(), third.String())
	}
}

func TestReadLPRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no end", "Maximize\n obj: + 1 x\nSubject To\nBounds\n 0 <= x <= 1\n"},
		{"minimize", "Minimize\n obj: + 1 x\nEnd\n"},
		{"no operator", "Maximize\n obj: + 1 x\nSubject To\n c0: + 1 x 5\nEnd\n"},
		{"bad rhs", "Maximize\n obj: + 1 x\nSubject To\n c0: + 1 x <= five\nEnd\n"},
		{"bad bound", "Maximize\n obj: + 1 x\nBounds\n zero <= x <= 1\nEnd\n"},
		{"content before section", "+ 1 x\nEnd\n"},
		{"consecutive numbers", "Maximize\n obj: + 1 2 x\nEnd\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadLP(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ReadLP accepted malformed input %q", tc.in)
			}
		})
	}
}

func TestReadLPBareVariableTerms(t *testing.T) {
	// Coefficient-free terms ("+ x") are accepted for hand-written files.
	in := "Maximize\n obj: + x + 2 y\nSubject To\n c0: + x + y <= 1.5\nBounds\n 0 <= x <= 1\n 0 <= y <= 1\nGenerals\n x\n y\nEnd\n"
	p, err := ReadLP(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("got %v objective %g, want optimal 2 (y only)", sol.Status, sol.Objective)
	}
}

// FuzzReadLP asserts the parser never panics and that anything it accepts is
// structurally valid enough to validate and re-serialize.
func FuzzReadLP(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteLP(&seed, roundTripProblem()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("Maximize\n obj: + 1 x\nSubject To\n c0: + 1 x <= 5\nBounds\n 0 <= x <= 10\nGenerals\n x\nEnd\n")
	f.Add("End\n")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ReadLP(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := p.LP.Validate(); verr != nil {
			// Accepted files may still describe crossed bounds etc.; that is
			// Validate's job to report, not a parser crash.
			return
		}
		var buf bytes.Buffer
		if err := WriteLP(&buf, p); err != nil {
			t.Fatalf("WriteLP on reparsed problem: %v", err)
		}
	})
}
