package milp

import (
	"fmt"
	"strings"

	"insitu/internal/lp"
)

// Conflict is a minimal explanation of an infeasible MILP: a subset of
// constraint rows that is infeasible on its own and becomes feasible when any
// single row is removed — the deletion-filter approximation of the IIS
// (irreducible infeasible subsystem) CPLEX computes with its conflict
// refiner. Variable bounds and integrality are treated as background and are
// never candidates for removal.
type Conflict struct {
	// Rows are the indices of the conflicting constraints in the original
	// problem, ascending.
	Rows []int
	// Names are the corresponding row names ("row <i>" when unnamed).
	Names []string
	// BoundsOnly reports that variable bounds and integrality alone are
	// infeasible: the model stays infeasible with every row removed, so
	// Rows is empty.
	BoundsOnly bool
}

// String renders the conflict on one line.
func (c *Conflict) String() string {
	if c.BoundsOnly {
		return "conflict: variable bounds/integrality alone are infeasible"
	}
	return "conflict: {" + strings.Join(c.Names, ", ") + "}"
}

// DiagnoseInfeasible explains why a MILP has no solution by a deletion
// filter: every constraint row is tentatively removed, and it is dropped
// permanently when the remainder is still infeasible. The rows that survive
// form an irreducible conflict — each one was proven necessary, because
// removing it (together with everything already dropped, a superset of the
// final conflict) made the model feasible.
//
// The input must actually be infeasible; a feasible or unbounded model is
// reported as an error. Each probe is one MILP solve, so the filter costs
// O(rows) solves; opts applies to every probe with the Observer stripped (a
// diagnosis should not spam the caller's node stream). A probe that hits the
// node limit without proving either way conservatively keeps its row, which
// preserves irreducibility of the proven drops but may leave the conflict
// larger than minimal; at the scheduling models' scale every probe solves to
// proof.
func DiagnoseInfeasible(p *Problem, opts Options) (*Conflict, error) {
	probeOpts := opts
	probeOpts.Observer = nil

	status, err := probeStatus(p, p.LP.Constraints, probeOpts)
	if err != nil {
		return nil, err
	}
	if status != Infeasible {
		return nil, fmt.Errorf("milp: DiagnoseInfeasible on a model that solved as %v", status)
	}

	keep := make([]bool, len(p.LP.Constraints))
	for i := range keep {
		keep[i] = true
	}
	subset := func() []lp.Constraint {
		var rows []lp.Constraint
		for i, k := range keep {
			if k {
				rows = append(rows, p.LP.Constraints[i])
			}
		}
		return rows
	}
	for i := range p.LP.Constraints {
		keep[i] = false
		st, err := probeStatus(p, subset(), probeOpts)
		if err != nil {
			return nil, err
		}
		if st != Infeasible {
			keep[i] = true // removing row i restored feasibility: it conflicts
		}
	}

	c := &Conflict{}
	for i, k := range keep {
		if !k {
			continue
		}
		c.Rows = append(c.Rows, i)
		name := p.LP.Constraints[i].Name
		if name == "" {
			name = fmt.Sprintf("row %d", i)
		}
		c.Names = append(c.Names, name)
	}
	c.BoundsOnly = len(c.Rows) == 0
	return c, nil
}

// probeStatus solves a copy of p restricted to the given constraint rows and
// returns the solve status. NodeLimit terminations count as Optimal when an
// incumbent exists (feasibility is proven), and are reported verbatim
// otherwise so the caller can stay conservative.
func probeStatus(p *Problem, rows []lp.Constraint, opts Options) (Status, error) {
	work := &Problem{
		LP: &lp.Problem{
			Objective:   p.LP.Objective,
			Lower:       p.LP.Lower,
			Upper:       p.LP.Upper,
			Names:       p.LP.Names,
			Constraints: rows,
		},
		Integer: p.Integer,
	}
	sol, err := Solve(work, opts)
	if err != nil {
		return 0, err
	}
	if sol.Status == NodeLimit && sol.HasX {
		return Optimal, nil
	}
	return sol.Status, nil
}
