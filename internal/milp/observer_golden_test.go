package milp

import (
	"fmt"
	"strings"
	"testing"

	"insitu/internal/lp"
)

// goldenInstance is a small fixed knapsack whose branch-and-bound search
// exercises every node action. It is written out literally (no RNG) so the
// pinned event stream below cannot drift with math/rand.
func goldenInstance() *Problem {
	p := NewProblem(&lp.Problem{})
	values := []float64{4.1, 3.3, 2.9, 2.3, 1.7}
	weights := []float64{3, 2.6, 2.1, 1.4, 1.2}
	idx := make([]int, len(values))
	for j, v := range values {
		p.AddBinVar(v, fmt.Sprintf("x%d", j))
		idx[j] = j
	}
	p.LP.AddConstraint(idx, weights, lp.LE, 5.2, "cap")
	return p
}

// formatEvent renders one observer event the way the golden stream pins it.
func formatEvent(e NodeEvent) string {
	branch := "root"
	if e.BranchVar >= 0 {
		op := "<="
		if e.BranchDir == "up" {
			op = ">="
		}
		branch = fmt.Sprintf("x%d%s%g", e.BranchVar, op, e.BranchBound)
	}
	return fmt.Sprintf("n%d p%d d%d %s %s bound=%.4f", e.Node, e.Parent, e.Depth, branch, e.Action, e.Bound)
}

// TestObserverGoldenStream pins the exact node order, parent links, branch
// decisions, and prune reasons of the search on a fixed instance. Tree
// exports (JSON/DOT) are derived from this stream, so any drift here is a
// compatibility break for recorded search trees; update the literal only for
// deliberate solver changes.
func TestObserverGoldenStream(t *testing.T) {
	var got []string
	sol, err := Solve(goldenInstance(), Options{Observer: func(e NodeEvent) {
		got = append(got, formatEvent(e))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	want := []string{
		"n1 p0 d0 root branched bound=7.5833",
		"n2 p1 d1 x0<=0 branched bound=7.5346",
		"n3 p1 d1 x0>=1 branched bound=7.5333",
		"n4 p2 d2 x1>=1 integral bound=7.3000",
		"n5 p2 d2 x1<=0 pruned bound=6.9000",
		"n6 p3 d2 x4<=0 branched bound=7.5048",
		"n7 p3 d2 x4>=1 branched bound=7.4429",
		"n8 p6 d3 x2>=1 pruned bound=7.1643",
		"n9 p6 d3 x2<=0 branched bound=7.4154",
		"n10 p7 d3 x3<=0 pruned bound=7.1810",
		"n11 p7 d3 x3>=1 infeasible bound=7.4429",
		"n12 p9 d4 x1<=0 pruned bound=6.4000",
		"n13 p9 d4 x1>=1 infeasible bound=7.4154",
	}
	if len(got) != len(want) {
		t.Fatalf("stream length %d, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d:\ngot  %s\nwant %s\nfull stream:\n%s", i, got[i], want[i], strings.Join(got, "\n"))
		}
	}
}
