package perfmodel

import (
	"fmt"
	"math"
	"sort"
)

// Interp1D is a piecewise-linear one-dimensional interpolator with linear
// extrapolation from the edge segments. Strong-scaling curves (time vs
// process count) are close to power laws, so the LogLog variant interpolates
// in log-log space, which is exact for t = c·p^a.
type Interp1D struct {
	xs, ys []float64
	loglog bool
}

// NewInterp1D builds a linear-space interpolator; xs must be strictly
// increasing with at least two samples.
func NewInterp1D(xs, ys []float64) (*Interp1D, error) {
	return newInterp1D(xs, ys, false)
}

// NewLogLogInterp1D builds a log-log-space interpolator; all xs and ys must
// be positive.
func NewLogLogInterp1D(xs, ys []float64) (*Interp1D, error) {
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return nil, fmt.Errorf("perfmodel: log-log interpolation needs positive samples, got (%g, %g)", xs[i], ys[i])
		}
	}
	return newInterp1D(xs, ys, true)
}

func newInterp1D(xs, ys []float64, loglog bool) (*Interp1D, error) {
	if len(xs) < 2 {
		return nil, fmt.Errorf("perfmodel: 1D interpolation needs at least 2 samples, got %d", len(xs))
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("perfmodel: %d x-samples for %d y-samples", len(xs), len(ys))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("perfmodel: x-samples not strictly increasing at %d", i)
		}
	}
	cp := &Interp1D{
		xs:     append([]float64(nil), xs...),
		ys:     append([]float64(nil), ys...),
		loglog: loglog,
	}
	if loglog {
		for i := range cp.xs {
			cp.xs[i] = math.Log(cp.xs[i])
			cp.ys[i] = math.Log(cp.ys[i])
		}
	}
	return cp, nil
}

// Predict evaluates the interpolant at x.
func (in *Interp1D) Predict(x float64) float64 {
	t := x
	if in.loglog {
		if x <= 0 {
			return math.NaN()
		}
		t = math.Log(x)
	}
	i := sort.SearchFloat64s(in.xs, t) - 1
	if i < 0 {
		i = 0
	}
	if i > len(in.xs)-2 {
		i = len(in.xs) - 2
	}
	frac := (t - in.xs[i]) / (in.xs[i+1] - in.xs[i])
	y := in.ys[i] + frac*(in.ys[i+1]-in.ys[i])
	if in.loglog {
		return math.Exp(y)
	}
	return y
}

// FromMap builds a log-log interpolator from an (x -> y) map, a convenience
// for tabulated strong-scaling data.
func FromMap(samples map[int]float64) (*Interp1D, error) {
	xs := make([]float64, 0, len(samples))
	for x := range samples {
		xs = append(xs, float64(x))
	}
	sort.Float64s(xs)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = samples[int(x)]
	}
	return NewLogLogInterp1D(xs, ys)
}
