package perfmodel_test

import (
	"fmt"

	"insitu/internal/perfmodel"
)

// The §4 workflow: measure a few (problem size, process count) points, build
// the bilinear surface, predict everywhere else.
func ExampleBilinear_Predict() {
	tab := perfmodel.NewTable("rdf-compute")
	// Measured seconds at a 2x2 grid of (atoms, ranks).
	tab.Add(1e6, 256, 2.0)
	tab.Add(1e6, 1024, 0.5)
	tab.Add(4e6, 256, 8.0)
	tab.Add(4e6, 1024, 2.0)
	surface, err := tab.Build()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f s\n", surface.Predict(2e6, 512))
	// Output:
	// 3.00 s
}

// Strong-scaling curves are near power laws, so sim-time interpolation uses
// log-log space (exact for t = c·p^a).
func ExampleInterp1D_Predict() {
	in, err := perfmodel.FromMap(map[int]float64{
		2048:  4.16,
		16384: 0.61,
		32768: 0.40,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f s/step\n", in.Predict(8192))
	// Output:
	// 1.16 s/step
}
