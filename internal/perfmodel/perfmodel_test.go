package perfmodel

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestProfilerRegions(t *testing.T) {
	p := NewProfiler()
	// Deterministic fake clock advancing 10ms per call.
	var ticks int64
	p.SetClock(func() time.Time {
		ticks++
		return time.Unix(0, ticks*10_000_000)
	})
	stop := p.Start("rdf")
	stop()
	stop = p.Start("rdf")
	stop()
	r := p.Region("rdf")
	if r.Calls != 2 {
		t.Fatalf("calls = %d, want 2", r.Calls)
	}
	if r.Total != 20*time.Millisecond {
		t.Fatalf("total = %v, want 20ms", r.Total)
	}
	if r.Mean() != 10*time.Millisecond {
		t.Fatalf("mean = %v, want 10ms", r.Mean())
	}
}

func TestProfilerAdd(t *testing.T) {
	p := NewProfiler()
	p.Add("msd", 3*time.Second)
	p.Add("msd", 5*time.Second)
	r := p.Region("msd")
	if r.Calls != 2 || r.Total != 8*time.Second {
		t.Fatalf("region = %+v", r)
	}
}

func TestProfilerAllocPeak(t *testing.T) {
	p := NewProfiler()
	p.Alloc("msd", 100)
	p.Alloc("msd", 200)
	p.Alloc("msd", -250)
	p.Alloc("msd", 50)
	r := p.Region("msd")
	if r.MaxBytes != 300 {
		t.Fatalf("peak = %d, want 300", r.MaxBytes)
	}
	if r.CurBytes != 100 {
		t.Fatalf("current = %d, want 100", r.CurBytes)
	}
}

func TestProfilerRegionsSortedAndReset(t *testing.T) {
	p := NewProfiler()
	p.Add("b", time.Second)
	p.Add("a", time.Second)
	rs := p.Regions()
	if len(rs) != 2 || rs[0].Name != "a" || rs[1].Name != "b" {
		t.Fatalf("regions = %+v", rs)
	}
	p.Reset()
	if len(p.Regions()) != 0 {
		t.Fatal("reset did not clear regions")
	}
	if p.Region("missing").Calls != 0 {
		t.Fatal("missing region should be zero")
	}
}

func TestProfilerMeanZeroCalls(t *testing.T) {
	var r Region
	if r.Mean() != 0 {
		t.Fatal("mean of empty region should be 0")
	}
}

func TestBilinearExactAtNodes(t *testing.T) {
	b, err := NewBilinear(
		[]float64{1, 2, 4},
		[]float64{10, 20},
		[][]float64{{1, 2}, {3, 4}, {5, 6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, y, want float64 }{
		{1, 10, 1}, {1, 20, 2}, {2, 10, 3}, {2, 20, 4}, {4, 10, 5}, {4, 20, 6},
	}
	for _, c := range cases {
		if got := b.Predict(c.x, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Predict(%g,%g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

func TestBilinearMidpoint(t *testing.T) {
	b, _ := NewBilinear([]float64{0, 2}, []float64{0, 2}, [][]float64{{0, 2}, {2, 4}})
	if got := b.Predict(1, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("midpoint = %g, want 2", got)
	}
}

func TestBilinearExtrapolation(t *testing.T) {
	// Plane z = x + y should extrapolate exactly.
	b, _ := NewBilinear([]float64{0, 1}, []float64{0, 1}, [][]float64{{0, 1}, {1, 2}})
	for _, c := range [][3]float64{{2, 3, 5}, {-1, 0, -1}, {5, 5, 10}} {
		if got := b.Predict(c[0], c[1]); math.Abs(got-c[2]) > 1e-12 {
			t.Fatalf("Predict(%g,%g) = %g, want %g", c[0], c[1], got, c[2])
		}
	}
}

// Property: bilinear reproduces any affine function f = a + bx + cy exactly
// everywhere, including off-grid and extrapolated points.
func TestBilinearAffineExact(t *testing.T) {
	f := func(a, bc, cc int8, px, py uint8) bool {
		av, bv, cv := float64(a), float64(bc), float64(cc)
		fn := func(x, y float64) float64 { return av + bv*x + cv*y }
		xs := []float64{0, 1, 3}
		ys := []float64{0, 2, 5}
		v := make([][]float64, len(xs))
		for i, x := range xs {
			v[i] = make([]float64, len(ys))
			for j, y := range ys {
				v[i][j] = fn(x, y)
			}
		}
		b, err := NewBilinear(xs, ys, v)
		if err != nil {
			return false
		}
		x := float64(px)/10 - 5
		y := float64(py)/10 - 5
		return math.Abs(b.Predict(x, y)-fn(x, y)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBilinearValidation(t *testing.T) {
	if _, err := NewBilinear([]float64{1}, []float64{1, 2}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("expected error for 1 x-sample")
	}
	if _, err := NewBilinear([]float64{2, 1}, []float64{1, 2}, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("expected error for non-increasing xs")
	}
	if _, err := NewBilinear([]float64{1, 2}, []float64{2, 2}, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("expected error for non-increasing ys")
	}
	if _, err := NewBilinear([]float64{1, 2}, []float64{1, 2}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("expected error for wrong row count")
	}
	if _, err := NewBilinear([]float64{1, 2}, []float64{1, 2}, [][]float64{{1}, {3, 4}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestTableBuild(t *testing.T) {
	tab := NewTable("compute")
	for _, x := range []float64{1e6, 1e7} {
		for _, y := range []float64{64, 256} {
			tab.Add(x, y, x/y)
		}
	}
	b, err := tab.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Predict(1e6, 64); math.Abs(got-1e6/64) > 1e-9 {
		t.Fatalf("corner = %g", got)
	}
}

func TestTableMissingSample(t *testing.T) {
	tab := NewTable("gap")
	tab.Add(1, 1, 1)
	tab.Add(1, 2, 2)
	tab.Add(2, 1, 3)
	// (2,2) missing.
	if _, err := tab.Build(); err == nil {
		t.Fatal("expected gap error")
	}
}

func TestTableDuplicateAveraged(t *testing.T) {
	tab := NewTable("dup")
	tab.Add(1, 1, 2)
	tab.Add(1, 1, 4) // averaged to 3
	tab.Add(1, 2, 0)
	tab.Add(2, 1, 0)
	tab.Add(2, 2, 0)
	b, err := tab.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Predict(1, 1); math.Abs(got-3) > 1e-12 {
		t.Fatalf("duplicate average = %g, want 3", got)
	}
}

func TestRelError(t *testing.T) {
	if RelError(0, 0) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if RelError(1, 0) != 1 {
		t.Fatal("pred with zero actual should be 1")
	}
	if got := RelError(106, 100); math.Abs(got-0.06) > 1e-12 {
		t.Fatalf("RelError = %g", got)
	}
	if got := RelError(94, 100); math.Abs(got-0.06) > 1e-12 {
		t.Fatalf("RelError = %g (must be symmetric)", got)
	}
}

// TestProfilerConcurrentUse drives Start/Add/Alloc/Regions from many
// goroutines at once; run under -race this pins the profiler's mutex
// discipline, and the final totals check that no increment was lost.
func TestProfilerConcurrentUse(t *testing.T) {
	p := NewProfiler()
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				stop := p.Start("shared")
				stop()
				p.Add("shared", time.Microsecond)
				p.Alloc("shared", 16)
				p.Add(fmt.Sprintf("own-%d", w), time.Millisecond)
				if i%32 == 0 {
					_ = p.Regions()
					_ = p.Region("shared")
				}
			}
		}(w)
	}
	wg.Wait()

	shared := p.Region("shared")
	if shared.Calls != workers*iters*2 { // Start+Add each count a call
		t.Errorf("shared calls = %d, want %d", shared.Calls, workers*iters*2)
	}
	if shared.CurBytes != workers*iters*16 || shared.MaxBytes != shared.CurBytes {
		t.Errorf("shared bytes cur=%d max=%d, want both %d", shared.CurBytes, shared.MaxBytes, workers*iters*16)
	}
	if shared.Total < workers*iters*time.Microsecond {
		t.Errorf("shared total = %v, want >= %v", shared.Total, workers*iters*time.Microsecond)
	}
	if got := len(p.Regions()); got != workers+1 {
		t.Errorf("regions = %d, want %d", got, workers+1)
	}
	for w := 0; w < workers; w++ {
		r := p.Region(fmt.Sprintf("own-%d", w))
		if r.Calls != iters {
			t.Errorf("own-%d calls = %d, want %d", w, r.Calls, iters)
		}
	}
}
