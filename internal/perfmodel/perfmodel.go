// Package perfmodel provides the performance-modeling layer of the paper
// (§4): an HPM-style region profiler for measuring execution time and memory
// of simulation and analysis kernels, and a bilinear-interpolation predictor
// that extends a few measured (problem size, scale) points to arbitrary
// configurations. The paper reports <6% prediction error for computation
// time (y = process count) and <8% for communication time (y = network
// diameter); the Figure-2 experiment reproduces that measurement against the
// mini-app substrate.
package perfmodel

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Region accumulates time and memory for one profiled code region, in the
// style of IBM HPM's HPM_Start/HPM_Stop counters.
type Region struct {
	Name     string
	Calls    int
	Total    time.Duration
	MaxBytes int64 // peak bytes attributed to the region
	CurBytes int64 // currently attributed bytes
}

// Mean returns the mean time per call.
func (r *Region) Mean() time.Duration {
	if r.Calls == 0 {
		return 0
	}
	return r.Total / time.Duration(r.Calls)
}

// Profiler measures named regions. It is safe for concurrent use by multiple
// ranks; each Start returns a stop function bound to its own timestamp.
type Profiler struct {
	mu      sync.Mutex
	regions map[string]*Region
	now     func() time.Time // injectable clock for tests
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{regions: make(map[string]*Region), now: time.Now}
}

// SetClock replaces the profiler's clock; tests use it for determinism.
func (p *Profiler) SetClock(now func() time.Time) { p.now = now }

// Start begins timing a region and returns the function that stops it.
// Usage mirrors HPM: stop := prof.Start("rdf"); ...; stop().
func (p *Profiler) Start(name string) func() {
	t0 := p.now()
	return func() {
		dt := p.now().Sub(t0)
		p.mu.Lock()
		defer p.mu.Unlock()
		r := p.region(name)
		r.Calls++
		r.Total += dt
	}
}

// Add records an externally measured duration for a region. Used when the
// time comes from a simulated clock rather than the wall clock.
func (p *Profiler) Add(name string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.region(name)
	r.Calls++
	r.Total += d
}

// Alloc attributes bytes to a region (positive) or releases them (negative),
// tracking the peak. This is the stand-in for IBM HPCT memory profiling.
func (p *Profiler) Alloc(name string, bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.region(name)
	r.CurBytes += bytes
	if r.CurBytes > r.MaxBytes {
		r.MaxBytes = r.CurBytes
	}
}

func (p *Profiler) region(name string) *Region {
	r, ok := p.regions[name]
	if !ok {
		r = &Region{Name: name}
		p.regions[name] = r
	}
	return r
}

// Region returns a snapshot of the named region (zero value if absent).
func (p *Profiler) Region(name string) Region {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.regions[name]; ok {
		return *r
	}
	return Region{Name: name}
}

// Regions returns snapshots of all regions sorted by name.
func (p *Profiler) Regions() []Region {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Region, 0, len(p.regions))
	for _, r := range p.regions {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset clears all regions.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.regions = make(map[string]*Region)
}

// Bilinear interpolates a function sampled on a rectilinear grid, exactly
// the scheme in Figure 2: the x-variable is problem size and the y-variable
// is process count (computation) or network diameter (communication).
// Outside the grid the edge cell's plane is extended (linear extrapolation).
type Bilinear struct {
	xs, ys []float64
	v      [][]float64 // v[i][j] = f(xs[i], ys[j])
}

// NewBilinear builds an interpolator. xs and ys must be strictly increasing,
// and v must be len(xs) rows of len(ys) values.
func NewBilinear(xs, ys []float64, v [][]float64) (*Bilinear, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return nil, fmt.Errorf("perfmodel: bilinear needs at least a 2x2 grid, got %dx%d", len(xs), len(ys))
	}
	if len(v) != len(xs) {
		return nil, fmt.Errorf("perfmodel: %d value rows for %d x-samples", len(v), len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("perfmodel: x-samples not strictly increasing at %d", i)
		}
	}
	for j := 1; j < len(ys); j++ {
		if ys[j] <= ys[j-1] {
			return nil, fmt.Errorf("perfmodel: y-samples not strictly increasing at %d", j)
		}
	}
	for i, row := range v {
		if len(row) != len(ys) {
			return nil, fmt.Errorf("perfmodel: row %d has %d values for %d y-samples", i, len(row), len(ys))
		}
	}
	return &Bilinear{xs: xs, ys: ys, v: v}, nil
}

// cell returns the index i with samples[i] <= t < samples[i+1], clamped to
// the edge cells so out-of-range points extrapolate.
func cell(samples []float64, t float64) int {
	i := sort.SearchFloat64s(samples, t) - 1
	if i < 0 {
		i = 0
	}
	if i > len(samples)-2 {
		i = len(samples) - 2
	}
	return i
}

// Predict evaluates the bilinear surface at (x, y).
func (b *Bilinear) Predict(x, y float64) float64 {
	i := cell(b.xs, x)
	j := cell(b.ys, y)
	x0, x1 := b.xs[i], b.xs[i+1]
	y0, y1 := b.ys[j], b.ys[j+1]
	tx := (x - x0) / (x1 - x0)
	ty := (y - y0) / (y1 - y0)
	v00, v01 := b.v[i][j], b.v[i][j+1]
	v10, v11 := b.v[i+1][j], b.v[i+1][j+1]
	return v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
}

// Sample is one measured point used to build profile tables.
type Sample struct {
	X, Y  float64 // problem size, scale variable
	Value float64
}

// Table accumulates samples for a named quantity and materializes a Bilinear
// over the sampled grid. Samples must cover a full rectilinear grid (every
// combination of the distinct X and Y values); Build reports gaps.
type Table struct {
	Name    string
	samples map[[2]float64]float64
}

// NewTable creates an empty profile table.
func NewTable(name string) *Table {
	return &Table{Name: name, samples: make(map[[2]float64]float64)}
}

// Add records a measurement at (x, y). Duplicate points are averaged.
func (t *Table) Add(x, y, value float64) {
	key := [2]float64{x, y}
	if old, ok := t.samples[key]; ok {
		t.samples[key] = (old + value) / 2
		return
	}
	t.samples[key] = value
}

// Build materializes the interpolator from the sampled grid.
func (t *Table) Build() (*Bilinear, error) {
	xsSet := map[float64]bool{}
	ysSet := map[float64]bool{}
	for k := range t.samples {
		xsSet[k[0]] = true
		ysSet[k[1]] = true
	}
	xs := keys(xsSet)
	ys := keys(ysSet)
	v := make([][]float64, len(xs))
	for i, x := range xs {
		v[i] = make([]float64, len(ys))
		for j, y := range ys {
			val, ok := t.samples[[2]float64{x, y}]
			if !ok {
				return nil, fmt.Errorf("perfmodel: table %q missing sample at (%g, %g)", t.Name, x, y)
			}
			v[i][j] = val
		}
	}
	return NewBilinear(xs, ys, v)
}

func keys(set map[float64]bool) []float64 {
	out := make([]float64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Float64s(out)
	return out
}

// RelError returns |pred-actual|/actual, the metric the paper reports for
// Figure 2 (<6% compute, <8% communication).
func RelError(pred, actual float64) float64 {
	if actual == 0 {
		if pred == 0 {
			return 0
		}
		return 1
	}
	e := (pred - actual) / actual
	if e < 0 {
		return -e
	}
	return e
}
