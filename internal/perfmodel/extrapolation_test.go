package perfmodel

import (
	"math"
	"testing"
)

// The extrapolation edge cases: out-of-range queries must extend the edge
// segments linearly, degenerate sample sets must error at construction (not
// produce NaN predictions later), and non-monotone inputs must be rejected —
// the contracts runmon's residual scoring relies on when a run drifts past
// the profiled range.

func TestInterp1DLinearExtrapolation(t *testing.T) {
	// y = 2x over [1, 3]: extrapolation continues the edge slopes exactly.
	in, err := NewInterp1D([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]float64{
		0.5: 1, // below the left edge
		0:   0,
		-1:  -2, // far left: the edge slope keeps going
		4:   8,  // above the right edge
		10:  20,
	}
	for x, want := range cases {
		if got := in.Predict(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("Predict(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestInterp1DExtrapolationUsesEdgeSegment(t *testing.T) {
	// A kinked curve: extrapolation must use the nearest segment's slope,
	// not a global fit. Segments: slope 1 over [0,1], slope 10 over [1,2].
	in, err := NewInterp1D([]float64{0, 1, 2}, []float64{0, 1, 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Predict(-1); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("left extrapolation = %g, want -1 (slope 1)", got)
	}
	if got := in.Predict(3); math.Abs(got-21) > 1e-12 {
		t.Errorf("right extrapolation = %g, want 21 (slope 10)", got)
	}
}

func TestLogLogExtrapolationPowerLaw(t *testing.T) {
	// t = 4/p: a pure power law is exact in log-log space, including far
	// outside the sampled range.
	in, err := NewLogLogInterp1D([]float64{1, 2, 4}, []float64{4, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 8, 64, 1024} {
		want := 4 / p
		if got := in.Predict(p); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("Predict(%g) = %g, want %g", p, got, want)
		}
	}
}

func TestLogLogNonPositiveQueries(t *testing.T) {
	in, err := NewLogLogInterp1D([]float64{1, 2}, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Predict(0); !math.IsNaN(got) {
		t.Errorf("Predict(0) = %g, want NaN", got)
	}
	if got := in.Predict(-3); !math.IsNaN(got) {
		t.Errorf("Predict(-3) = %g, want NaN", got)
	}
}

func TestInterp1DDegenerateInputs(t *testing.T) {
	// A single sample cannot define a slope: construction must fail rather
	// than leave Predict to divide by zero later.
	if _, err := NewInterp1D([]float64{1}, []float64{2}); err == nil {
		t.Error("single-point profile accepted")
	}
	if _, err := NewInterp1D(nil, nil); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := NewInterp1D([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Non-monotone and duplicated x-samples are rejected.
	if _, err := NewInterp1D([]float64{1, 3, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("non-monotone x-samples accepted")
	}
	if _, err := NewInterp1D([]float64{1, 1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("duplicate x-samples accepted")
	}
	// Log-log additionally rejects non-positive samples.
	if _, err := NewLogLogInterp1D([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("log-log accepted x=0")
	}
	if _, err := NewLogLogInterp1D([]float64{1, 2}, []float64{1, -2}); err == nil {
		t.Error("log-log accepted y<0")
	}
	if _, err := FromMap(map[int]float64{4: 1}); err == nil {
		t.Error("single-point FromMap accepted")
	}
}

func TestBilinearCornerAndEdgeExtrapolation(t *testing.T) {
	// f(x, y) = x + 10y on a 2x2 grid: bilinear is exact for affine
	// surfaces, so every extrapolated corner continues the plane.
	b, err := NewBilinear(
		[]float64{0, 1},
		[]float64{0, 1},
		[][]float64{{0, 10}, {1, 11}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, y, want float64 }{
		{0.5, 0.5, 5.5}, // interior
		{-1, 0, -1},     // left edge
		{2, 0.5, 7},     // right edge
		{0.5, -1, -9.5}, // below
		{-1, -1, -11},   // corner
		{2, 2, 22},      // far corner
	}
	for _, c := range cases {
		if got := b.Predict(c.x, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Predict(%g, %g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

func TestBilinearRejectsNonMonotoneAxes(t *testing.T) {
	v := [][]float64{{0, 1}, {1, 2}}
	if _, err := NewBilinear([]float64{1, 0}, []float64{0, 1}, v); err == nil {
		t.Error("decreasing x-axis accepted")
	}
	if _, err := NewBilinear([]float64{0, 1}, []float64{1, 1}, v); err == nil {
		t.Error("duplicate y-axis accepted")
	}
	if _, err := NewBilinear([]float64{0}, []float64{0, 1}, [][]float64{{0, 1}}); err == nil {
		t.Error("1-wide grid accepted")
	}
}

func TestTableDuplicateAveragingAndGaps(t *testing.T) {
	tab := NewTable("ct")
	tab.Add(1, 1, 2)
	tab.Add(1, 1, 4) // duplicate: averaged to 3
	tab.Add(1, 2, 1)
	tab.Add(2, 1, 5)
	if _, err := tab.Build(); err == nil {
		t.Fatal("incomplete grid built without error")
	}
	tab.Add(2, 2, 7)
	b, err := tab.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Predict(1, 1); math.Abs(got-3) > 1e-12 {
		t.Errorf("duplicate point = %g, want the 3 average", got)
	}
}
