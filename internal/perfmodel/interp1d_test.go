package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInterp1DLinearExact(t *testing.T) {
	in, err := NewInterp1D([]float64{0, 1, 3}, []float64{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]float64{0: 2, 0.5: 3, 1: 4, 2: 6, 3: 8, 4: 10, -1: 0}
	for x, want := range cases {
		if got := in.Predict(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Predict(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestLogLogExactForPowerLaw(t *testing.T) {
	// t = 5 p^-0.8 sampled at a few points must reproduce everywhere.
	f := func(p float64) float64 { return 5 * math.Pow(p, -0.8) }
	xs := []float64{2, 16, 128}
	ys := []float64{f(2), f(16), f(128)}
	in, err := NewLogLogInterp1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{2, 4, 8, 64, 100, 500, 1} {
		if got := in.Predict(p); math.Abs(got-f(p)) > 1e-9*f(p) {
			t.Fatalf("Predict(%g) = %g, want %g", p, got, f(p))
		}
	}
	if !math.IsNaN(in.Predict(0)) {
		t.Fatal("non-positive x must be NaN in log-log mode")
	}
}

func TestInterp1DValidation(t *testing.T) {
	if _, err := NewInterp1D([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected too-few-samples error")
	}
	if _, err := NewInterp1D([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected non-increasing error")
	}
	if _, err := NewInterp1D([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := NewLogLogInterp1D([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected positivity error")
	}
	if _, err := NewLogLogInterp1D([]float64{1, 2}, []float64{-1, 2}); err == nil {
		t.Fatal("expected positivity error for ys")
	}
}

func TestFromMap(t *testing.T) {
	in, err := FromMap(map[int]float64{2048: 4.16, 16384: 0.61, 32768: 0.40})
	if err != nil {
		t.Fatal(err)
	}
	// Anchors exact.
	if math.Abs(in.Predict(2048)-4.16) > 1e-12 {
		t.Fatal("anchor not reproduced")
	}
	// Monotone decreasing between anchors.
	prev := math.Inf(1)
	for p := 2048.0; p <= 32768; p *= 1.3 {
		v := in.Predict(p)
		if v >= prev {
			t.Fatalf("not decreasing at %g: %g >= %g", p, v, prev)
		}
		prev = v
	}
	if _, err := FromMap(map[int]float64{1: 1}); err == nil {
		t.Fatal("expected too-few-samples error")
	}
}

// Property: linear interpolation reproduces any affine function exactly,
// on-grid and off.
func TestInterp1DAffineProperty(t *testing.T) {
	f := func(a, b int8, px uint8) bool {
		av, bv := float64(a), float64(b)
		fn := func(x float64) float64 { return av + bv*x }
		in, err := NewInterp1D([]float64{-1, 0, 2}, []float64{fn(-1), fn(0), fn(2)})
		if err != nil {
			return false
		}
		x := float64(px)/16 - 4
		return math.Abs(in.Predict(x)-fn(x)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
