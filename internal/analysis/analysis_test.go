package analysis

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// scriptKernel is a controllable fake for exercising Measure.
type scriptKernel struct {
	name        string
	setupBytes  int64
	preBytes    []int64 // returned per PreStep call, cycling
	analyzeB    int64
	outBytes    int64
	failAt      string
	preCalls    int
	analyzeCnt  int
	outputCalls int
	freed       bool
}

func (k *scriptKernel) Name() string { return k.name }

func (k *scriptKernel) Setup() (int64, error) {
	if k.failAt == "setup" {
		return 0, fmt.Errorf("setup failure")
	}
	return k.setupBytes, nil
}

func (k *scriptKernel) PreStep(step int) (int64, error) {
	if k.failAt == "prestep" {
		return 0, fmt.Errorf("prestep failure")
	}
	v := int64(0)
	if len(k.preBytes) > 0 {
		v = k.preBytes[k.preCalls%len(k.preBytes)]
	}
	k.preCalls++
	return v, nil
}

func (k *scriptKernel) Analyze(step int) (int64, error) {
	if k.failAt == "analyze" {
		return 0, fmt.Errorf("analyze failure")
	}
	k.analyzeCnt++
	time.Sleep(time.Millisecond)
	return k.analyzeB, nil
}

func (k *scriptKernel) Output(dst io.Writer) (int64, error) {
	if k.failAt == "output" {
		return 0, fmt.Errorf("output failure")
	}
	k.outputCalls++
	n, err := dst.Write(make([]byte, k.outBytes))
	return int64(n), err
}

func (k *scriptKernel) Free() { k.freed = true }

func TestMeasureMapsPhasesToCosts(t *testing.T) {
	k := &scriptKernel{
		name:       "fake",
		setupBytes: 1000,
		preBytes:   []int64{5, 9, 7},
		analyzeB:   64,
		outBytes:   32,
	}
	steps := 0
	costs, err := Measure(k, func() { steps++ }, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 6 {
		t.Fatalf("stepped %d times", steps)
	}
	if costs.Kernel != "fake" {
		t.Fatalf("kernel = %q", costs.Kernel)
	}
	if costs.FM != 1000 {
		t.Fatalf("fm = %d", costs.FM)
	}
	if costs.IM != 9 {
		t.Fatalf("im = %d, want max of per-step allocations", costs.IM)
	}
	if costs.CM != 64 || costs.OM != 32 {
		t.Fatalf("cm/om = %d/%d", costs.CM, costs.OM)
	}
	if k.analyzeCnt != 3 {
		t.Fatalf("analyses = %d, want every 2nd of 6 steps", k.analyzeCnt)
	}
	if costs.CT < time.Millisecond {
		t.Fatalf("ct = %v, want >= the 1ms analyze sleep", costs.CT)
	}
	if k.outputCalls != 1 {
		t.Fatalf("outputs = %d", k.outputCalls)
	}
	if !k.freed {
		t.Fatal("Measure must free the kernel")
	}
}

func TestMeasureZeroInterval(t *testing.T) {
	k := &scriptKernel{name: "noanalyze"}
	costs, err := Measure(k, func() {}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.analyzeCnt != 0 {
		t.Fatal("interval 0 must skip analyses")
	}
	if costs.CT != 0 {
		t.Fatalf("ct = %v", costs.CT)
	}
}

func TestMeasureErrorPaths(t *testing.T) {
	for _, phase := range []string{"setup", "prestep", "analyze", "output"} {
		k := &scriptKernel{name: phase, failAt: phase}
		_, err := Measure(k, func() {}, 2, 1)
		if err == nil {
			t.Fatalf("expected %s error", phase)
		}
		if !strings.Contains(err.Error(), phase) {
			t.Fatalf("error %q does not name the failing phase %s", err, phase)
		}
	}
}

func TestCostsString(t *testing.T) {
	c := Costs{Kernel: "k", FT: time.Second, FM: 42}
	s := c.String()
	if !strings.Contains(s, "k") || !strings.Contains(s, "42") {
		t.Fatalf("costs string %q missing fields", s)
	}
}

var _ Kernel = (*scriptKernel)(nil)
