// Package analysis defines the contract between simulation codes and their
// in-situ analysis routines, mirroring how LAMMPS "computes" and FLASH
// diagnostics are embedded in the simulation and invoked at a chosen
// frequency (paper §1, §3.1). A kernel's lifecycle matches the cost
// components of the scheduling model in package core:
//
//	Setup    — one-time initialization            -> ft (time), fm (memory)
//	PreStep  — per-simulation-step facilitation   -> it, im
//	Analyze  — per-analysis-step computation      -> ct, cm
//	Output   — per-output-step result writing     -> ot, om
//	Free     — release analysis buffers back to the fixed allocation
//
// Each phase returns the bytes it newly allocated, so the coupling layer can
// account memory exactly the way equations 5-8 of the paper do.
package analysis

import (
	"fmt"
	"io"
	"time"
)

// Kernel is one in-situ analysis routine embedded in a simulation.
type Kernel interface {
	// Name identifies the kernel (e.g. "A4 msd").
	Name() string
	// Setup performs one-time initialization and returns the bytes of fixed
	// memory it allocated (fm).
	Setup() (int64, error)
	// PreStep runs after every simulation step regardless of whether this is
	// an analysis step (e.g. copying data needed by temporal analyses) and
	// returns newly allocated bytes (im).
	PreStep(step int) (int64, error)
	// Analyze performs the analysis computation for the given simulation
	// step and returns newly allocated bytes (cm).
	Analyze(step int) (int64, error)
	// Output writes accumulated results to dst and returns the bytes written
	// (om). Implementations release their per-analysis buffers afterwards,
	// returning their footprint to the fixed allocation.
	Output(dst io.Writer) (int64, error)
	// Free releases all non-fixed buffers without writing output.
	Free()
}

// Costs summarizes measured per-phase resource usage of a kernel, in the
// notation of Table 1.
type Costs struct {
	Kernel string

	FT time.Duration // fixed setup time
	IT time.Duration // per-simulation-step time
	CT time.Duration // per-analysis-step compute time
	OT time.Duration // per-output-step write time

	FM int64 // fixed memory
	IM int64 // per-simulation-step memory
	CM int64 // per-analysis-step memory
	OM int64 // per-output-step memory
}

// String renders the costs in a compact table-row form.
func (c Costs) String() string {
	return fmt.Sprintf("%-22s ft=%-12v it=%-12v ct=%-12v ot=%-12v fm=%-10d im=%-8d cm=%-10d om=%d",
		c.Kernel, c.FT, c.IT, c.CT, c.OT, c.FM, c.IM, c.CM, c.OM)
}

// Measure profiles a kernel against a running simulation: it sets the kernel
// up, advances the simulation `steps` steps via stepFn, analyzes every
// `interval` steps, and outputs once at the end. Wall-clock times are
// averaged per phase. The returned kernel state is freed.
func Measure(k Kernel, stepFn func(), steps, interval int) (Costs, error) {
	var c Costs
	c.Kernel = k.Name()

	t0 := time.Now()
	fm, err := k.Setup()
	if err != nil {
		return c, fmt.Errorf("analysis: %s setup: %w", k.Name(), err)
	}
	c.FT = time.Since(t0)
	c.FM = fm

	var itTotal, ctTotal time.Duration
	var imMax, cmMax int64
	analyses := 0
	for s := 1; s <= steps; s++ {
		stepFn()
		t := time.Now()
		im, err := k.PreStep(s)
		if err != nil {
			return c, fmt.Errorf("analysis: %s prestep: %w", k.Name(), err)
		}
		itTotal += time.Since(t)
		if im > imMax {
			imMax = im
		}
		if interval > 0 && s%interval == 0 {
			t = time.Now()
			cm, err := k.Analyze(s)
			if err != nil {
				return c, fmt.Errorf("analysis: %s analyze: %w", k.Name(), err)
			}
			ctTotal += time.Since(t)
			if cm > cmMax {
				cmMax = cm
			}
			analyses++
		}
	}
	if steps > 0 {
		c.IT = itTotal / time.Duration(steps)
	}
	if analyses > 0 {
		c.CT = ctTotal / time.Duration(analyses)
	}
	c.IM = imMax
	c.CM = cmMax

	t1 := time.Now()
	om, err := k.Output(io.Discard)
	if err != nil {
		return c, fmt.Errorf("analysis: %s output: %w", k.Name(), err)
	}
	c.OT = time.Since(t1)
	c.OM = om
	k.Free()
	return c, nil
}
