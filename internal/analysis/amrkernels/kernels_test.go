package amrkernels

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"insitu/internal/analysis"
	"insitu/internal/sim/amr"
)

func sedov(t *testing.T) *amr.Grid {
	t.Helper()
	g, err := amr.NewSedov(amr.Config{BlocksX: 3, NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestVorticityZeroAtRest(t *testing.T) {
	g := sedov(t)
	k, err := NewVorticity(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	// The initial Sedov state has zero velocity everywhere: curl must be 0.
	if got := k.MaxSeries()[0]; got != 0 {
		t.Fatalf("vorticity of static field = %g, want 0", got)
	}
}

func TestVorticityDetectsShear(t *testing.T) {
	g := sedov(t)
	// Impose a shear flow u_x(z): d(u_x)/dz != 0 -> omega_y != 0.
	for _, b := range g.Blocks {
		nb := b.NBCells()
		for i := 0; i <= nb+1; i++ {
			for j := 0; j <= nb+1; j++ {
				for k3 := 0; k3 <= nb+1; k3++ {
					n := b.Idx(i, j, k3)
					z := float64(b.Index[2]*nb + k3)
					b.U[amr.MomX][n] = 0.1 * z * b.U[amr.Dens][n]
				}
			}
		}
	}
	k, err := NewVorticity(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	if k.MaxSeries()[0] <= 0 {
		t.Fatal("shear flow must have nonzero vorticity")
	}
}

func TestVorticityRankInvariance(t *testing.T) {
	g := sedov(t)
	g.Run(8)
	var vals []float64
	for _, ranks := range []int{1, 4} {
		k, err := NewVorticity(g, ranks)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Analyze(0); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, k.MaxSeries()[0])
	}
	if vals[0] != vals[1] {
		t.Fatalf("max vorticity rank-dependent: %v", vals)
	}
}

func TestL1NormInitialAndEvolved(t *testing.T) {
	g := sedov(t)
	k, err := NewL1Norm(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	v0 := k.Series()[0]
	if v0[0] != 0 {
		t.Fatalf("initial density deviation = %g, want 0 (uniform)", v0[0])
	}
	if v0[1] <= 0 {
		t.Fatalf("initial pressure deviation = %g, want > 0 (blast)", v0[1])
	}
	g.Run(10)
	if _, err := k.Analyze(10); err != nil {
		t.Fatal(err)
	}
	v1 := k.Series()[1]
	if v1[0] <= 0 {
		t.Fatal("evolved shock must perturb density")
	}
	var buf bytes.Buffer
	om, err := k.Output(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if om != int64(buf.Len()) || om == 0 {
		t.Fatalf("om = %d, buffer %d", om, buf.Len())
	}
	if len(k.Series()) != 0 {
		t.Fatal("output must clear the series")
	}
	if !strings.Contains(buf.String(), "L1(dens)") {
		t.Fatal("output missing labels")
	}
}

func TestL2NormVelocities(t *testing.T) {
	g := sedov(t)
	k, err := NewL2Norm(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	v0 := k.Series()[0]
	if v0 != [3]float64{} {
		t.Fatalf("initial velocities = %v, want zero", v0)
	}
	g.Run(12)
	if _, err := k.Analyze(12); err != nil {
		t.Fatal(err)
	}
	v1 := k.Series()[1]
	if v1[0] <= 0 && v1[1] <= 0 && v1[2] <= 0 {
		t.Fatalf("evolved velocities = %v, expected motion", v1)
	}
}

func TestF3MuchCheaperThanF1(t *testing.T) {
	// The cost ordering behind Table 8: ct(F1) > ct(F2) >> ct(F3).
	g := sedov(t)
	g.Run(3)
	step := func() {} // frozen field; we only time the kernels
	k1, _ := NewVorticity(g, 2)
	k2, _ := NewL1Norm(g, 2)
	k3, _ := NewL2Norm(g, 2)
	c1, err := analysis.Measure(k1, step, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := analysis.Measure(k2, step, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := analysis.Measure(k3, step, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c3.CT*5 > c2.CT {
		t.Fatalf("F3 (%v) should be far cheaper than F2 (%v)", c3.CT, c2.CT)
	}
	if c1.CT < c2.CT {
		t.Fatalf("F1 (%v) should cost at least F2 (%v)", c1.CT, c2.CT)
	}
}

func TestKernelInterfaceCompliance(t *testing.T) {
	g := sedov(t)
	ks := []analysis.Kernel{}
	k1, err := NewVorticity(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewL1Norm(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	k3, err := NewL2Norm(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ks = append(ks, k1, k2, k3)
	for _, k := range ks {
		if _, err := k.Setup(); err != nil {
			t.Fatalf("%s setup: %v", k.Name(), err)
		}
		if im, err := k.PreStep(1); err != nil || im != 0 {
			t.Fatalf("%s prestep: %d, %v", k.Name(), im, err)
		}
		if _, err := k.Analyze(1); err != nil {
			t.Fatalf("%s analyze: %v", k.Name(), err)
		}
		var buf bytes.Buffer
		om, err := k.Output(&buf)
		if err != nil || om == 0 {
			t.Fatalf("%s output: %d, %v", k.Name(), om, err)
		}
		k.Free()
	}
}

func TestShockTrackerFollowsBlast(t *testing.T) {
	g := sedov(t)
	k, err := NewShockTracker(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	g.Run(5)
	if _, err := k.Analyze(5); err != nil {
		t.Fatal(err)
	}
	g.Run(15)
	if _, err := k.Analyze(20); err != nil {
		t.Fatal(err)
	}
	r := k.Radii()
	if len(r) != 2 || r[0] <= 0 || r[1] <= r[0] {
		t.Fatalf("radii not expanding: %v", r)
	}
	// Matches the grid's own serial estimate up to summation order.
	if got, want := r[1], g.ShockRadius(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tracker %g != serial %g", got, want)
	}
	exp := k.Exponent()
	if exp < 0.1 || exp > 0.8 {
		t.Fatalf("fitted exponent %g implausible for Sedov", exp)
	}
	var buf bytes.Buffer
	om, err := k.Output(&buf)
	if err != nil || om == 0 {
		t.Fatalf("output: %d, %v", om, err)
	}
	if !strings.Contains(buf.String(), "exponent") {
		t.Fatal("exponent line missing")
	}
	if len(k.Radii()) != 0 {
		t.Fatal("output must clear series")
	}
}

func TestShockTrackerExponentNaNCases(t *testing.T) {
	g := sedov(t)
	k, err := NewShockTracker(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := k.Exponent(); !math.IsNaN(v) {
		t.Fatalf("empty tracker exponent = %g, want NaN", v)
	}
}

func TestRadialProfileShowsShockStructure(t *testing.T) {
	g := sedov(t)
	g.Run(12)
	k, err := NewRadialProfile(g, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	dens := k.MeanDensity()
	// Sedov structure: evacuated center (below ambient), over-dense shell,
	// ambient far field.
	peak, peakBin := 0.0, 0
	for b, v := range dens {
		if v > peak {
			peak, peakBin = v, b
		}
	}
	if peak <= amr.AmbientDensity {
		t.Fatalf("no over-dense shell: peak %g", peak)
	}
	if dens[0] >= peak {
		t.Fatalf("center density %g should be below the shell peak %g", dens[0], peak)
	}
	if peakBin == 0 || peakBin == len(dens)-1 {
		t.Fatalf("shell at bin %d is not interior", peakBin)
	}
	var buf bytes.Buffer
	om, err := k.Output(&buf)
	if err != nil || om == 0 {
		t.Fatalf("output: %d, %v", om, err)
	}
	if !strings.Contains(buf.String(), "radial profile") {
		t.Fatal("output header missing")
	}
	if k.MeanDensity()[peakBin] != 0 {
		t.Fatal("output must reset shells")
	}
}

// Compliance for the extension kernels.
var (
	_ analysis.Kernel = (*ShockTracker)(nil)
	_ analysis.Kernel = (*RadialProfile)(nil)
)
