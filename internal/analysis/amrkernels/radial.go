package amrkernels

import (
	"fmt"
	"io"
	"math"

	"insitu/internal/comm"
	"insitu/internal/sim/amr"
)

// RadialProfile bins density and pressure by distance from the blast center
// — the standard way Sedov runs are actually inspected (the 1D self-similar
// profile). Per-rank partial histograms combine with Allreduce.
type RadialProfile struct {
	grid  *amr.Grid
	bins  int
	ranks int
	world *comm.World

	count []float64 // cells per shell since last output
	dens  []float64 // accumulated density per shell
	pres  []float64 // accumulated pressure per shell
}

// NewRadialProfile builds the kernel (bins 0 defaults to 32).
func NewRadialProfile(grid *amr.Grid, bins, ranks int) (*RadialProfile, error) {
	if bins <= 0 {
		bins = 32
	}
	if ranks == 0 {
		ranks = 4
	}
	w, err := comm.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &RadialProfile{grid: grid, bins: bins, ranks: ranks, world: w}, nil
}

// Name implements analysis.Kernel.
func (k *RadialProfile) Name() string { return "radial profile" }

// Setup allocates the fixed shells.
func (k *RadialProfile) Setup() (int64, error) {
	k.count = make([]float64, k.bins)
	k.dens = make([]float64, k.bins)
	k.pres = make([]float64, k.bins)
	return int64(3*k.bins) * 8, nil
}

// PreStep is a no-op.
func (k *RadialProfile) PreStep(step int) (int64, error) { return 0, nil }

// Analyze bins every cell by radius.
func (k *RadialProfile) Analyze(step int) (int64, error) {
	g := k.grid
	center := float64(g.NBX*g.NB) * g.Dx / 2
	rmax := center * math.Sqrt(3) // domain corner distance
	var reduced []float64
	err := k.world.Run(func(r *comm.Rank) error {
		mine := make([]float64, 3*k.bins)
		for id := r.ID(); id < len(g.Blocks); id += r.Size() {
			b := g.Blocks[id]
			nb := b.NBCells()
			for i := 1; i <= nb; i++ {
				for j := 1; j <= nb; j++ {
					for k3 := 1; k3 <= nb; k3++ {
						n := b.Idx(i, j, k3)
						rho, _, _, _, p := g.Primitive(b, n)
						x, y, z := g.CellCenter(b, i-1, j-1, k3-1)
						rr := math.Sqrt((x-center)*(x-center) + (y-center)*(y-center) + (z-center)*(z-center))
						bin := int(rr / rmax * float64(k.bins))
						if bin >= k.bins {
							bin = k.bins - 1
						}
						mine[bin]++
						mine[k.bins+bin] += rho
						mine[2*k.bins+bin] += p
					}
				}
			}
		}
		out, err := r.Allreduce(mine, comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			reduced = out
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for b := 0; b < k.bins; b++ {
		k.count[b] += reduced[b]
		k.dens[b] += reduced[k.bins+b]
		k.pres[b] += reduced[2*k.bins+b]
	}
	return int64(k.ranks*3*k.bins) * 8, nil
}

// MeanDensity returns the shell-averaged density profile (for tests).
func (k *RadialProfile) MeanDensity() []float64 {
	out := make([]float64, k.bins)
	for b := range out {
		if k.count[b] > 0 {
			out[b] = k.dens[b] / k.count[b]
		}
	}
	return out
}

// Output writes the shell averages and resets.
func (k *RadialProfile) Output(dst io.Writer) (int64, error) {
	var written int64
	g := k.grid
	center := float64(g.NBX*g.NB) * g.Dx / 2
	rmax := center * math.Sqrt(3)
	n, err := fmt.Fprintf(dst, "# radial profile t=%.5f (columns: r, <rho>, <p>)\n", g.Time)
	if err != nil {
		return written, err
	}
	written += int64(n)
	for b := 0; b < k.bins; b++ {
		r := (float64(b) + 0.5) / float64(k.bins) * rmax
		var rho, p float64
		if k.count[b] > 0 {
			rho = k.dens[b] / k.count[b]
			p = k.pres[b] / k.count[b]
		}
		n, err := fmt.Fprintf(dst, "%.5f %.6f %.6e\n", r, rho, p)
		if err != nil {
			return written, err
		}
		written += int64(n)
	}
	k.Free()
	return written, nil
}

// Free resets the shells.
func (k *RadialProfile) Free() {
	for b := range k.count {
		k.count[b], k.dens[b], k.pres[b] = 0, 0, 0
	}
}
