// Package amrkernels implements the three FLASH in-situ analyses of the
// paper (§5.2): F1 vorticity, F2 L1 error norms for density and pressure,
// and F3 L2 error norms for the velocity components. Their relative costs
// follow the paper's measurements on 16384 cores (3.5 s, 1.25 s, 2.3 ms per
// step): F1 evaluates a nine-derivative curl stencil in every cell, F2
// reduces two full-field norms, and F3 samples one cell per block, which is
// why the Table-8 scheduler treats F3 as nearly free.
package amrkernels

import (
	"fmt"
	"io"
	"math"

	"insitu/internal/comm"
	"insitu/internal/sim/amr"
)

// Vorticity (F1) computes the curl of the velocity field with central
// differences and accumulates the maximum vorticity magnitude and total
// enstrophy per analysis step.
type Vorticity struct {
	grid  *amr.Grid
	ranks int
	world *comm.World

	maxSeries []float64
	ensSeries []float64
}

// NewVorticity builds analysis F1.
func NewVorticity(grid *amr.Grid, ranks int) (*Vorticity, error) {
	if ranks == 0 {
		ranks = 4
	}
	w, err := comm.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &Vorticity{grid: grid, ranks: ranks, world: w}, nil
}

// Name implements analysis.Kernel.
func (k *Vorticity) Name() string { return "F1 vorticity" }

// Setup is trivial: FLASH-style kernels allocate on the fly (§3.1).
func (k *Vorticity) Setup() (int64, error) { return 0, nil }

// PreStep is a no-op.
func (k *Vorticity) PreStep(step int) (int64, error) { return 0, nil }

// Analyze refreshes ghosts and evaluates the curl in every interior cell,
// reducing max |omega| and total enstrophy across ranks.
func (k *Vorticity) Analyze(step int) (int64, error) {
	g := k.grid
	g.FillGhosts()
	inv2dx := 1 / (2 * g.Dx)
	var maxV, ens float64
	err := k.world.Run(func(r *comm.Rank) error {
		local := []float64{0, 0} // max |omega|, enstrophy sum
		for id := r.ID(); id < len(g.Blocks); id += r.Size() {
			b := g.Blocks[id]
			nb := b.NBCells()
			sx, sy, sz := b.Stride(0), b.Stride(1), b.Stride(2)
			vel := func(n, comp int) float64 {
				rho := b.U[amr.Dens][n]
				if rho <= 0 {
					return 0
				}
				return b.U[amr.MomX+comp][n] / rho
			}
			for i := 1; i <= nb; i++ {
				for j := 1; j <= nb; j++ {
					for k3 := 1; k3 <= nb; k3++ {
						n := b.Idx(i, j, k3)
						// omega = curl(v) via central differences.
						dwdy := (vel(n+sy, 2) - vel(n-sy, 2)) * inv2dx
						dvdz := (vel(n+sz, 1) - vel(n-sz, 1)) * inv2dx
						dudz := (vel(n+sz, 0) - vel(n-sz, 0)) * inv2dx
						dwdx := (vel(n+sx, 2) - vel(n-sx, 2)) * inv2dx
						dvdx := (vel(n+sx, 1) - vel(n-sx, 1)) * inv2dx
						dudy := (vel(n+sy, 0) - vel(n-sy, 0)) * inv2dx
						ox := dwdy - dvdz
						oy := dudz - dwdx
						oz := dvdx - dudy
						m2 := ox*ox + oy*oy + oz*oz
						if m := math.Sqrt(m2); m > local[0] {
							local[0] = m
						}
						local[1] += m2
					}
				}
			}
		}
		mx, err := r.Allreduce(local[:1], comm.Max)
		if err != nil {
			return err
		}
		sum, err := r.Allreduce(local[1:], comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			maxV = mx[0]
			ens = sum[0] * g.Dx * g.Dx * g.Dx
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	k.maxSeries = append(k.maxSeries, maxV)
	k.ensSeries = append(k.ensSeries, ens)
	return int64(k.ranks) * 2 * 8, nil
}

// Output writes the vorticity series and clears them.
func (k *Vorticity) Output(dst io.Writer) (int64, error) {
	var written int64
	for i := range k.maxSeries {
		n, err := fmt.Fprintf(dst, "%d max|w|=%.6e enstrophy=%.6e\n", i, k.maxSeries[i], k.ensSeries[i])
		if err != nil {
			return written, err
		}
		written += int64(n)
	}
	k.Free()
	return written, nil
}

// Free clears the series.
func (k *Vorticity) Free() { k.maxSeries, k.ensSeries = nil, nil }

// MaxSeries exposes the accumulated max-vorticity values (for tests).
func (k *Vorticity) MaxSeries() []float64 { return k.maxSeries }

// L1Norm (F2) computes the L1 norms of the density and pressure deviation
// from the ambient Sedov background over the full field.
type L1Norm struct {
	grid  *amr.Grid
	ranks int
	world *comm.World

	series [][2]float64 // (dens, pres) per analysis step
}

// NewL1Norm builds analysis F2.
func NewL1Norm(grid *amr.Grid, ranks int) (*L1Norm, error) {
	if ranks == 0 {
		ranks = 4
	}
	w, err := comm.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &L1Norm{grid: grid, ranks: ranks, world: w}, nil
}

// Name implements analysis.Kernel.
func (k *L1Norm) Name() string { return "F2 L1 error norm" }

// Setup is trivial.
func (k *L1Norm) Setup() (int64, error) { return 0, nil }

// PreStep is a no-op.
func (k *L1Norm) PreStep(step int) (int64, error) { return 0, nil }

// Analyze reduces sum |rho - rho0| and sum |p - p0| over all cells.
func (k *L1Norm) Analyze(step int) (int64, error) {
	g := k.grid
	var out [2]float64
	err := k.world.Run(func(r *comm.Rank) error {
		local := []float64{0, 0}
		for id := r.ID(); id < len(g.Blocks); id += r.Size() {
			b := g.Blocks[id]
			nb := b.NBCells()
			for i := 1; i <= nb; i++ {
				for j := 1; j <= nb; j++ {
					for k3 := 1; k3 <= nb; k3++ {
						n := b.Idx(i, j, k3)
						rho, _, _, _, p := g.Primitive(b, n)
						local[0] += math.Abs(rho - amr.AmbientDensity)
						local[1] += math.Abs(p - amr.AmbientPressure)
					}
				}
			}
		}
		sum, err := r.Allreduce(local, comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			nc := float64(g.NumCells())
			out = [2]float64{sum[0] / nc, sum[1] / nc}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	k.series = append(k.series, out)
	return int64(k.ranks) * 2 * 8, nil
}

// Output writes the norm series and clears them.
func (k *L1Norm) Output(dst io.Writer) (int64, error) {
	var written int64
	for i, v := range k.series {
		n, err := fmt.Fprintf(dst, "%d L1(dens)=%.6e L1(pres)=%.6e\n", i, v[0], v[1])
		if err != nil {
			return written, err
		}
		written += int64(n)
	}
	k.Free()
	return written, nil
}

// Free clears the series.
func (k *L1Norm) Free() { k.series = nil }

// Series exposes the accumulated norms (for tests).
func (k *L1Norm) Series() [][2]float64 { return k.series }

// L2Norm (F3) computes L2 norms of the x, y, z velocity components on a
// one-cell-per-block sample. The sparse sampling is what makes F3 orders of
// magnitude cheaper than F1/F2 (2.3 ms vs seconds in the paper).
type L2Norm struct {
	grid  *amr.Grid
	ranks int
	world *comm.World

	series [][3]float64
}

// NewL2Norm builds analysis F3.
func NewL2Norm(grid *amr.Grid, ranks int) (*L2Norm, error) {
	if ranks == 0 {
		ranks = 4
	}
	w, err := comm.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &L2Norm{grid: grid, ranks: ranks, world: w}, nil
}

// Name implements analysis.Kernel.
func (k *L2Norm) Name() string { return "F3 L2 error norm" }

// Setup is trivial.
func (k *L2Norm) Setup() (int64, error) { return 0, nil }

// PreStep is a no-op.
func (k *L2Norm) PreStep(step int) (int64, error) { return 0, nil }

// Analyze samples the central cell of every block.
func (k *L2Norm) Analyze(step int) (int64, error) {
	g := k.grid
	var out [3]float64
	err := k.world.Run(func(r *comm.Rank) error {
		local := []float64{0, 0, 0, 0}
		for id := r.ID(); id < len(g.Blocks); id += r.Size() {
			b := g.Blocks[id]
			c := b.NBCells()/2 + 1
			n := b.Idx(c, c, c)
			_, u, v, w, _ := g.Primitive(b, n)
			local[0] += u * u
			local[1] += v * v
			local[2] += w * w
			local[3]++
		}
		sum, err := r.Allreduce(local, comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 && sum[3] > 0 {
			out = [3]float64{
				math.Sqrt(sum[0] / sum[3]),
				math.Sqrt(sum[1] / sum[3]),
				math.Sqrt(sum[2] / sum[3]),
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	k.series = append(k.series, out)
	return int64(k.ranks) * 4 * 8, nil
}

// Output writes the norm series and clears them.
func (k *L2Norm) Output(dst io.Writer) (int64, error) {
	var written int64
	for i, v := range k.series {
		n, err := fmt.Fprintf(dst, "%d L2(u)=%.6e L2(v)=%.6e L2(w)=%.6e\n", i, v[0], v[1], v[2])
		if err != nil {
			return written, err
		}
		written += int64(n)
	}
	k.Free()
	return written, nil
}

// Free clears the series.
func (k *L2Norm) Free() { k.series = nil }

// Series exposes the accumulated norms (for tests).
func (k *L2Norm) Series() [][3]float64 { return k.series }
