package amrkernels

import (
	"fmt"
	"io"
	"math"

	"insitu/internal/comm"
	"insitu/internal/sim/amr"
)

// ShockTracker locates the blast front each analysis step: the
// density-weighted mean radius of over-dense cells and the instantaneous
// Sedov similarity exponent fitted between consecutive samples — the kind
// of feature-tracking analysis Zhang et al. run in-situ (§2.2). The
// reduction walks block stripes per rank like the other kernels.
type ShockTracker struct {
	grid  *amr.Grid
	ranks int
	world *comm.World

	times []float64
	radii []float64
}

// NewShockTracker builds the feature-tracking kernel.
func NewShockTracker(grid *amr.Grid, ranks int) (*ShockTracker, error) {
	if ranks == 0 {
		ranks = 4
	}
	w, err := comm.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &ShockTracker{grid: grid, ranks: ranks, world: w}, nil
}

// Name implements analysis.Kernel.
func (k *ShockTracker) Name() string { return "shock tracker" }

// Setup is trivial.
func (k *ShockTracker) Setup() (int64, error) { return 0, nil }

// PreStep is a no-op.
func (k *ShockTracker) PreStep(step int) (int64, error) { return 0, nil }

// Analyze reduces the density-weighted radius across ranks.
func (k *ShockTracker) Analyze(step int) (int64, error) {
	g := k.grid
	center := float64(g.NBX*g.NB) * g.Dx / 2
	var radius float64
	err := k.world.Run(func(r *comm.Rank) error {
		local := []float64{0, 0} // weight sum, weighted radius sum
		for id := r.ID(); id < len(g.Blocks); id += r.Size() {
			b := g.Blocks[id]
			nb := b.NBCells()
			for i := 1; i <= nb; i++ {
				for j := 1; j <= nb; j++ {
					for k3 := 1; k3 <= nb; k3++ {
						n := b.Idx(i, j, k3)
						over := b.U[amr.Dens][n] - amr.AmbientDensity
						if over <= 0.01 {
							continue
						}
						x, y, z := g.CellCenter(b, i-1, j-1, k3-1)
						rr := math.Sqrt((x-center)*(x-center) + (y-center)*(y-center) + (z-center)*(z-center))
						local[0] += over
						local[1] += over * rr
					}
				}
			}
		}
		sum, err := r.Allreduce(local, comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 && sum[0] > 0 {
			radius = sum[1] / sum[0]
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	k.times = append(k.times, g.Time)
	k.radii = append(k.radii, radius)
	return int64(k.ranks) * 2 * 8, nil
}

// Exponent returns the similarity exponent fitted between the first and
// last samples (R ~ t^a gives a = ln(R2/R1)/ln(t2/t1)); NaN with fewer than
// two valid samples.
func (k *ShockTracker) Exponent() float64 {
	n := len(k.radii)
	if n < 2 || k.radii[0] <= 0 || k.radii[n-1] <= 0 || k.times[0] <= 0 {
		return math.NaN()
	}
	return math.Log(k.radii[n-1]/k.radii[0]) / math.Log(k.times[n-1]/k.times[0])
}

// Output writes the radius series plus the fitted exponent and clears.
func (k *ShockTracker) Output(dst io.Writer) (int64, error) {
	var written int64
	for i := range k.radii {
		n, err := fmt.Fprintf(dst, "%.6f %.6f\n", k.times[i], k.radii[i])
		if err != nil {
			return written, err
		}
		written += int64(n)
	}
	n, err := fmt.Fprintf(dst, "# exponent %.4f (Sedov-Taylor: 0.4)\n", k.Exponent())
	if err != nil {
		return written, err
	}
	written += int64(n)
	k.Free()
	return written, nil
}

// Free clears the series.
func (k *ShockTracker) Free() { k.times, k.radii = nil, nil }

// Radii exposes the sampled radii (for tests).
func (k *ShockTracker) Radii() []float64 { return k.radii }
