package mdkernels

import (
	"fmt"
	"io"
	"math"

	"insitu/internal/comm"
	"insitu/internal/sim/md"
)

// Stats computes descriptive statistics of the simulation state — the
// first of the three analysis classes in Bennett et al. that the paper's
// related work (§2.2) describes being run in-situ: per-step temperature,
// pressure, kinetic/potential energy, and the min/max/mean speed across
// particles, reduced across ranks.
type Stats struct {
	sys   *md.System
	ranks int
	world *comm.World

	series [][6]float64 // T, P, KE, minV, maxV, meanV per analysis step
}

// NewStats builds a descriptive-statistics kernel.
func NewStats(sys *md.System, ranks int) (*Stats, error) {
	if ranks == 0 {
		ranks = 4
	}
	w, err := comm.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &Stats{sys: sys, ranks: ranks, world: w}, nil
}

// Name implements analysis.Kernel.
func (k *Stats) Name() string { return "stats" }

// Setup is trivial: statistics read simulation memory directly.
func (k *Stats) Setup() (int64, error) { return 0, nil }

// PreStep is a no-op.
func (k *Stats) PreStep(step int) (int64, error) { return 0, nil }

// Analyze reduces sums, min and max across rank stripes.
func (k *Stats) Analyze(step int) (int64, error) {
	var row [6]float64
	err := k.world.Run(func(r *comm.Rank) error {
		// local: ke, sumSpeed, count
		sums := []float64{0, 0, 0}
		mn := []float64{math.Inf(1)}
		mx := []float64{math.Inf(-1)}
		for i := r.ID(); i < k.sys.N; i += r.Size() {
			m := k.sys.Params[k.sys.Type[i]].Mass
			v2 := k.sys.Vel[i].Norm2()
			speed := math.Sqrt(v2)
			sums[0] += 0.5 * m * v2
			sums[1] += speed
			sums[2]++
			if speed < mn[0] {
				mn[0] = speed
			}
			if speed > mx[0] {
				mx[0] = speed
			}
		}
		sumOut, err := r.Allreduce(sums, comm.Sum)
		if err != nil {
			return err
		}
		mnOut, err := r.Allreduce(mn, comm.Min)
		if err != nil {
			return err
		}
		mxOut, err := r.Allreduce(mx, comm.Max)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			n := sumOut[2]
			row = [6]float64{
				2 * sumOut[0] / (3 * n), // temperature
				k.sys.Pressure(),
				sumOut[0],
				mnOut[0],
				mxOut[0],
				sumOut[1] / n,
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	k.series = append(k.series, row)
	return int64(k.ranks) * 5 * 8, nil
}

// Output writes the statistics time series and clears it.
func (k *Stats) Output(dst io.Writer) (int64, error) {
	var written int64
	n, err := fmt.Fprintf(dst, "# stats: T P KE vmin vmax vmean\n")
	if err != nil {
		return written, err
	}
	written += int64(n)
	for i, row := range k.series {
		n, err := fmt.Fprintf(dst, "%d %.6f %.6f %.4f %.6f %.6f %.6f\n",
			i, row[0], row[1], row[2], row[3], row[4], row[5])
		if err != nil {
			return written, err
		}
		written += int64(n)
	}
	k.Free()
	return written, nil
}

// Free clears the series.
func (k *Stats) Free() { k.series = nil }

// Series exposes the accumulated rows (for tests).
func (k *Stats) Series() [][6]float64 { return k.series }
