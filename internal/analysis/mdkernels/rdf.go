// Package mdkernels implements the in-situ analysis routines of the paper's
// two LAMMPS problems (Tables 2 and 3): radial distribution functions (A1,
// A2), velocity auto-correlation (A3), mean-square displacement (A4), radius
// of gyration (R1), and 2D density histograms of the membrane and protein
// (R2, R3). Every kernel reduces across a group of worker ranks with
// MPI-style collectives from package comm, exactly where the original codes
// call MPI_Allreduce, so the communication structure the paper profiles is
// present in the reproduction.
package mdkernels

import (
	"fmt"
	"io"
	"math"

	"insitu/internal/comm"
	"insitu/internal/sim/md"
)

// PairSpec selects an RDF pair: distances from species A particles to
// particles of any species in B.
type PairSpec struct {
	Label string
	A     md.Species
	B     []md.Species
}

// RDF accumulates radial distribution functions g(r) for a set of species
// pairs, averaged over all molecules of species A (Table 2: analyses A1 and
// A2). Histograms are accumulated locally per rank over a stripe of the A
// group and summed with Allreduce.
type RDF struct {
	name  string
	sys   *md.System
	pairs []PairSpec
	bins  int
	rmax  float64
	ranks int

	hist    [][]float64 // fixed allocation: pairs x bins
	samples int
	world   *comm.World
	groups  [][]int // A-group indices per pair
}

// RDFConfig tunes an RDF kernel.
type RDFConfig struct {
	Bins  int     // histogram bins (default 128)
	RMax  float64 // maximum radius (default: system cutoff)
	Ranks int     // reduction ranks (default 4)
}

func (c RDFConfig) withDefaults(sys *md.System) RDFConfig {
	if c.Bins == 0 {
		c.Bins = 128
	}
	if c.RMax == 0 {
		c.RMax = sys.Cutoff
	}
	if c.Ranks == 0 {
		c.Ranks = 4
	}
	return c
}

// NewRDF builds an RDF kernel over explicit pairs.
func NewRDF(name string, sys *md.System, pairs []PairSpec, cfg RDFConfig) (*RDF, error) {
	cfg = cfg.withDefaults(sys)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("mdkernels: RDF %q needs at least one pair", name)
	}
	w, err := comm.NewWorld(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	return &RDF{
		name: name, sys: sys, pairs: pairs,
		bins: cfg.Bins, rmax: cfg.RMax, ranks: cfg.Ranks, world: w,
	}, nil
}

// NewHydroniumRDF builds analysis A1: hydronium-water, hydronium-hydronium,
// and hydronium-ion RDFs averaged over all molecules.
func NewHydroniumRDF(sys *md.System, cfg RDFConfig) (*RDF, error) {
	return NewRDF("A1 hydronium rdf", sys, []PairSpec{
		{Label: "hydronium-water", A: md.Hydronium, B: []md.Species{md.Water}},
		{Label: "hydronium-hydronium", A: md.Hydronium, B: []md.Species{md.Hydronium}},
		{Label: "hydronium-ion", A: md.Hydronium, B: []md.Species{md.Cation, md.Anion}},
	}, cfg)
}

// NewIonRDF builds analysis A2: ion-water and ion-ion RDFs.
func NewIonRDF(sys *md.System, cfg RDFConfig) (*RDF, error) {
	return NewRDF("A2 ion rdf", sys, []PairSpec{
		{Label: "cation-water", A: md.Cation, B: []md.Species{md.Water}},
		{Label: "anion-water", A: md.Anion, B: []md.Species{md.Water}},
		{Label: "cation-anion", A: md.Cation, B: []md.Species{md.Anion}},
	}, cfg)
}

// Name implements analysis.Kernel.
func (k *RDF) Name() string { return k.name }

// Setup allocates the fixed histograms and group index lists.
func (k *RDF) Setup() (int64, error) {
	k.hist = make([][]float64, len(k.pairs))
	bytes := int64(0)
	for p := range k.pairs {
		k.hist[p] = make([]float64, k.bins)
		bytes += int64(k.bins) * 8
	}
	k.groups = make([][]int, len(k.pairs))
	for p, spec := range k.pairs {
		k.groups[p] = k.sys.IndicesOf(spec.A)
		bytes += int64(len(k.groups[p])) * 8
	}
	k.samples = 0
	return bytes, nil
}

// PreStep is a no-op: RDFs need no per-step facilitation.
func (k *RDF) PreStep(step int) (int64, error) { return 0, nil }

// Analyze bins all A-B distances within rmax into the histograms. Each rank
// processes a stripe of the A group and contributes via Allreduce.
func (k *RDF) Analyze(step int) (int64, error) {
	k.sys.PrepareNeighbors()
	results := make([][]float64, len(k.pairs))
	scratch := int64(0)
	for p := range k.pairs {
		spec := k.pairs[p]
		group := k.groups[p]
		inB := speciesSet(spec.B)
		var reduced []float64
		err := k.world.Run(func(r *comm.Rank) error {
			mine := make([]float64, k.bins)
			for gi := r.ID(); gi < len(group); gi += r.Size() {
				i := group[gi]
				k.sys.ForEachNeighbor(i, k.rmax, func(j int, r2 float64) {
					if !inB[k.sys.Type[j]] {
						return
					}
					b := int(math.Sqrt(r2) / k.rmax * float64(k.bins))
					if b >= k.bins {
						b = k.bins - 1
					}
					mine[b]++
				})
			}
			out, err := r.Allreduce(mine, comm.Sum)
			if err != nil {
				return err
			}
			if r.ID() == 0 {
				reduced = out
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		results[p] = reduced
		scratch += int64(k.ranks*k.bins) * 8
	}
	for p := range k.pairs {
		for b := 0; b < k.bins; b++ {
			k.hist[p][b] += results[p][b]
		}
	}
	k.samples++
	return scratch, nil
}

// Output writes normalized g(r) curves and resets the accumulators.
func (k *RDF) Output(dst io.Writer) (int64, error) {
	var written int64
	dr := k.rmax / float64(k.bins)
	rho := float64(k.sys.N) / (k.sys.Box[0] * k.sys.Box[1] * k.sys.Box[2])
	for p, spec := range k.pairs {
		nA := len(k.groups[p])
		n, err := fmt.Fprintf(dst, "# %s pair %s nA=%d samples=%d\n", k.name, spec.Label, nA, k.samples)
		if err != nil {
			return written, err
		}
		written += int64(n)
		for b := 0; b < k.bins; b++ {
			r0 := float64(b) * dr
			shell := 4.0 / 3.0 * math.Pi * (math.Pow(r0+dr, 3) - math.Pow(r0, 3))
			g := 0.0
			if k.samples > 0 && nA > 0 && shell > 0 {
				g = k.hist[p][b] / float64(k.samples) / float64(nA) / (shell * rho)
			}
			n, err := fmt.Fprintf(dst, "%.4f %.6f\n", r0+dr/2, g)
			if err != nil {
				return written, err
			}
			written += int64(n)
		}
	}
	k.resetAccum()
	return written, nil
}

// Free drops accumulated histogram contents (keeps the fixed allocation).
func (k *RDF) Free() { k.resetAccum() }

func (k *RDF) resetAccum() {
	for p := range k.hist {
		for b := range k.hist[p] {
			k.hist[p][b] = 0
		}
	}
	k.samples = 0
}

// Histogram exposes the raw accumulated counts for pair p (for tests).
func (k *RDF) Histogram(p int) []float64 { return k.hist[p] }

// Samples returns how many analysis steps have accumulated since the last
// output.
func (k *RDF) Samples() int { return k.samples }

func speciesSet(sps []md.Species) map[md.Species]bool {
	m := make(map[md.Species]bool, len(sps))
	for _, s := range sps {
		m[s] = true
	}
	return m
}
