package mdkernels

import (
	"fmt"
	"io"
	"math"

	"insitu/internal/comm"
	"insitu/internal/sim/md"
)

// Gyration computes the radius of gyration of the single protein (Table 3:
// analysis R1). The group is tiny relative to the system, so the kernel's
// cost is negligible — the paper measures 0.003 s per step — which is why
// the scheduler always runs R1 at the maximum frequency in Table 6.
type Gyration struct {
	name  string
	sys   *md.System
	ranks int
	world *comm.World

	group  []int
	series []float64
}

// NewGyration builds analysis R1 over the protein particles.
func NewGyration(sys *md.System, ranks int) (*Gyration, error) {
	if ranks == 0 {
		ranks = 4
	}
	w, err := comm.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &Gyration{name: "R1 radius of gyration", sys: sys, ranks: ranks, world: w}, nil
}

// Name implements analysis.Kernel.
func (k *Gyration) Name() string { return k.name }

// Setup resolves the protein group.
func (k *Gyration) Setup() (int64, error) {
	k.group = k.sys.IndicesOf(md.Protein)
	if len(k.group) == 0 {
		return 0, fmt.Errorf("mdkernels: gyration needs protein particles")
	}
	return int64(len(k.group)) * 8, nil
}

// PreStep is a no-op.
func (k *Gyration) PreStep(step int) (int64, error) { return 0, nil }

// Analyze computes Rg via two reductions: center of mass, then mass-weighted
// second moment. Unwrapped coordinates keep the compact protein intact
// across periodic boundaries.
func (k *Gyration) Analyze(step int) (int64, error) {
	var rg float64
	err := k.world.Run(func(r *comm.Rank) error {
		// Pass 1: center of mass.
		local := make([]float64, 4)
		for idx := r.ID(); idx < len(k.group); idx += r.Size() {
			i := k.group[idx]
			m := k.sys.Params[k.sys.Type[i]].Mass
			p := k.sys.Unwrapped(i)
			local[0] += m * p[0]
			local[1] += m * p[1]
			local[2] += m * p[2]
			local[3] += m
		}
		sum, err := r.Allreduce(local, comm.Sum)
		if err != nil {
			return err
		}
		com := md.Vec3{sum[0] / sum[3], sum[1] / sum[3], sum[2] / sum[3]}
		// Pass 2: second moment about the center of mass.
		local2 := make([]float64, 2)
		for idx := r.ID(); idx < len(k.group); idx += r.Size() {
			i := k.group[idx]
			m := k.sys.Params[k.sys.Type[i]].Mass
			d := k.sys.Unwrapped(i).Sub(com)
			local2[0] += m * d.Norm2()
			local2[1] += m
		}
		sum2, err := r.Allreduce(local2, comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			rg = math.Sqrt(sum2[0] / sum2[1])
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	k.series = append(k.series, rg)
	return int64(k.ranks) * 6 * 8, nil
}

// Output writes the Rg series and clears it.
func (k *Gyration) Output(dst io.Writer) (int64, error) {
	var written int64
	n, err := fmt.Fprintf(dst, "# %s n=%d\n", k.name, len(k.group))
	if err != nil {
		return written, err
	}
	written += int64(n)
	for i, v := range k.series {
		n, err := fmt.Fprintf(dst, "%d %.6f\n", i, v)
		if err != nil {
			return written, err
		}
		written += int64(n)
	}
	k.Free()
	return written, nil
}

// Free clears the series.
func (k *Gyration) Free() { k.series = nil }

// Series exposes accumulated Rg values (for tests).
func (k *Gyration) Series() []float64 { return k.series }
