package mdkernels

import (
	"fmt"
	"io"
	"math"

	"insitu/internal/comm"
	"insitu/internal/sim/md"
)

// SpeedHistogram accumulates the distribution of particle speeds — another
// §2.2 descriptive statistic, and a physics check: an equilibrated liquid
// must follow the Maxwell-Boltzmann distribution
//
//	f(v) dv ∝ v^2 exp(-m v^2 / (2T)) dv.
//
// Each rank bins a stripe of particles; the histograms combine with
// Allreduce.
type SpeedHistogram struct {
	sys   *md.System
	bins  int
	vmax  float64
	ranks int
	world *comm.World

	hist    []float64
	samples int
}

// NewSpeedHistogram builds the kernel; vmax 0 defaults to 4 (about 4 sigma
// of a T*=1 distribution for unit mass).
func NewSpeedHistogram(sys *md.System, bins int, vmax float64, ranks int) (*SpeedHistogram, error) {
	if bins <= 0 {
		bins = 64
	}
	if vmax <= 0 {
		vmax = 4
	}
	if ranks == 0 {
		ranks = 4
	}
	w, err := comm.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &SpeedHistogram{sys: sys, bins: bins, vmax: vmax, ranks: ranks, world: w}, nil
}

// Name implements analysis.Kernel.
func (k *SpeedHistogram) Name() string { return "speed histogram" }

// Setup allocates the fixed histogram.
func (k *SpeedHistogram) Setup() (int64, error) {
	k.hist = make([]float64, k.bins)
	k.samples = 0
	return int64(k.bins) * 8, nil
}

// PreStep is a no-op.
func (k *SpeedHistogram) PreStep(step int) (int64, error) { return 0, nil }

// Analyze bins all particle speeds and reduces across ranks.
func (k *SpeedHistogram) Analyze(step int) (int64, error) {
	var reduced []float64
	err := k.world.Run(func(r *comm.Rank) error {
		mine := make([]float64, k.bins)
		for i := r.ID(); i < k.sys.N; i += r.Size() {
			v := math.Sqrt(k.sys.Vel[i].Norm2())
			b := int(v / k.vmax * float64(k.bins))
			if b >= k.bins {
				b = k.bins - 1
			}
			mine[b]++
		}
		out, err := r.Allreduce(mine, comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			reduced = out
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for b := range k.hist {
		k.hist[b] += reduced[b]
	}
	k.samples++
	return int64(k.ranks*k.bins) * 8, nil
}

// Output writes the normalized distribution with the Maxwell-Boltzmann
// reference at the system temperature, then resets.
func (k *SpeedHistogram) Output(dst io.Writer) (int64, error) {
	var written int64
	temp := k.sys.Temperature()
	n, err := fmt.Fprintf(dst, "# speed histogram samples=%d T=%.4f (columns: v, f(v), maxwell-boltzmann)\n",
		k.samples, temp)
	if err != nil {
		return written, err
	}
	written += int64(n)
	total := 0.0
	for _, c := range k.hist {
		total += c
	}
	dv := k.vmax / float64(k.bins)
	for b := 0; b < k.bins; b++ {
		v := (float64(b) + 0.5) * dv
		f := 0.0
		if total > 0 {
			f = k.hist[b] / total / dv
		}
		n, err := fmt.Fprintf(dst, "%.4f %.6f %.6f\n", v, f, MaxwellBoltzmann(v, 1, temp))
		if err != nil {
			return written, err
		}
		written += int64(n)
	}
	k.Free()
	return written, nil
}

// Free resets the accumulated histogram.
func (k *SpeedHistogram) Free() {
	for b := range k.hist {
		k.hist[b] = 0
	}
	k.samples = 0
}

// Distribution returns the normalized density f(v) per bin (for tests).
func (k *SpeedHistogram) Distribution() []float64 {
	total := 0.0
	for _, c := range k.hist {
		total += c
	}
	dv := k.vmax / float64(k.bins)
	out := make([]float64, k.bins)
	if total == 0 {
		return out
	}
	for b := range out {
		out[b] = k.hist[b] / total / dv
	}
	return out
}

// BinCenters returns the speed at each bin center.
func (k *SpeedHistogram) BinCenters() []float64 {
	dv := k.vmax / float64(k.bins)
	out := make([]float64, k.bins)
	for b := range out {
		out[b] = (float64(b) + 0.5) * dv
	}
	return out
}

// MaxwellBoltzmann returns the equilibrium speed density f(v) for mass m at
// reduced temperature T.
func MaxwellBoltzmann(v, m, temp float64) float64 {
	if temp <= 0 {
		return 0
	}
	a := m / (2 * temp)
	norm := 4 * math.Pi * math.Pow(m/(2*math.Pi*temp), 1.5)
	return norm * v * v * math.Exp(-a*v*v)
}
