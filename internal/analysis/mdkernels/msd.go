package mdkernels

import (
	"fmt"
	"io"

	"insitu/internal/comm"
	"insitu/internal/sim/md"
)

// MSD computes mean-square displacements averaged over all hydronium and
// ions (Table 2: analysis A4). It is the temporal analysis the paper uses to
// motivate the it/im cost components (§3.2): every simulation step it copies
// the group's unwrapped coordinates into a window buffer so that the
// analysis step can evaluate MSD against every buffered snapshot; the buffer
// grows each step and is released at output, which is exactly the
// accumulate-then-reset memory pattern of equations 5-6.
type MSD struct {
	name  string
	sys   *md.System
	ranks int
	world *comm.World

	group  []int     // particle indices (fixed)
	ref    []md.Vec3 // reference unwrapped positions (fixed)
	window []([]md.Vec3)
	series []float64 // MSD per analysis step since last output
}

// NewMSD builds analysis A4 over the hydronium and ion particles.
func NewMSD(sys *md.System, ranks int) (*MSD, error) {
	if ranks == 0 {
		ranks = 4
	}
	w, err := comm.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &MSD{name: "A4 msd", sys: sys, ranks: ranks, world: w}, nil
}

// Name implements analysis.Kernel.
func (k *MSD) Name() string { return k.name }

// Setup records the reference positions of the group; this is the large
// fixed pre-allocation the paper attributes to LAMMPS MSD-style analyses.
func (k *MSD) Setup() (int64, error) {
	k.group = k.group[:0]
	for _, sp := range []md.Species{md.Hydronium, md.Cation, md.Anion} {
		k.group = append(k.group, k.sys.IndicesOf(sp)...)
	}
	if len(k.group) == 0 {
		return 0, fmt.Errorf("mdkernels: msd group is empty")
	}
	k.ref = make([]md.Vec3, len(k.group))
	for g, i := range k.group {
		k.ref[g] = k.sys.Unwrapped(i)
	}
	return int64(len(k.group)) * (8 + 24), nil
}

// PreStep snapshots the group's unwrapped positions into the window buffer:
// the per-simulation-step cost it and the accumulating memory im.
func (k *MSD) PreStep(step int) (int64, error) {
	snap := make([]md.Vec3, len(k.group))
	for g, i := range k.group {
		snap[g] = k.sys.Unwrapped(i)
	}
	k.window = append(k.window, snap)
	return int64(len(snap)) * 24, nil
}

// Analyze evaluates the MSD of the latest snapshot (and refreshes the whole
// window average), reducing partial sums across ranks.
func (k *MSD) Analyze(step int) (int64, error) {
	if len(k.window) == 0 {
		if _, err := k.PreStep(step); err != nil {
			return 0, err
		}
	}
	// Partial sums per rank over a stripe of the group, for every buffered
	// snapshot: this O(window x group) loop is what makes A4 expensive and
	// scale-insensitive (the group is small and fixed, so extra ranks do not
	// help — the behavior behind Figure 5).
	sums := make([]float64, len(k.window))
	err := k.world.Run(func(r *comm.Rank) error {
		local := make([]float64, len(k.window)+1)
		for gi := r.ID(); gi < len(k.group); gi += r.Size() {
			for w, snap := range k.window {
				d := snap[gi].Sub(k.ref[gi])
				local[w] += d.Norm2()
			}
			local[len(k.window)]++
		}
		out, err := r.Allreduce(local, comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			n := out[len(k.window)]
			for w := range sums {
				if n > 0 {
					sums[w] = out[w] / n
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	k.series = append(k.series, sums[len(sums)-1])
	return int64(k.ranks) * int64(len(k.window)+1) * 8, nil
}

// Output writes the MSD series and releases the window buffer.
func (k *MSD) Output(dst io.Writer) (int64, error) {
	var written int64
	n, err := fmt.Fprintf(dst, "# %s group=%d window=%d\n", k.name, len(k.group), len(k.window))
	if err != nil {
		return written, err
	}
	written += int64(n)
	for i, v := range k.series {
		n, err := fmt.Fprintf(dst, "%d %.8f\n", i, v)
		if err != nil {
			return written, err
		}
		written += int64(n)
	}
	k.Free()
	return written, nil
}

// Free releases the window and series buffers (back to the fixed ref/group
// allocation, mirroring mEnd reset to fm in equation 6).
func (k *MSD) Free() {
	k.window = nil
	k.series = nil
}

// WindowLen reports the buffered snapshot count (for tests).
func (k *MSD) WindowLen() int { return len(k.window) }

// Series exposes the accumulated MSD values since the last output.
func (k *MSD) Series() []float64 { return k.series }
