package mdkernels

import (
	"fmt"
	"io"

	"insitu/internal/comm"
	"insitu/internal/sim/md"
)

// VACF computes velocity auto-correlation functions for the water,
// hydronium, and ion groups (Table 2: analysis A3). Each Analyze evaluates
// C(t) = <v(0)·v(t)> / <v(0)·v(0)> per group against reference velocities
// captured at setup, reducing partial dot products across ranks. Water is
// strided so the kernel cost stays moderate relative to A4, matching the
// Figure-4 profile.
type VACF struct {
	name  string
	sys   *md.System
	ranks int
	world *comm.World

	// WaterStride samples every n-th water particle (default 16).
	WaterStride int

	groups [][]int
	labels []string
	v0     [][]md.Vec3
	norm   []float64 // <v0·v0> per group
	series [][]float64
}

// NewVACF builds analysis A3.
func NewVACF(sys *md.System, ranks int) (*VACF, error) {
	if ranks == 0 {
		ranks = 4
	}
	w, err := comm.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	return &VACF{name: "A3 vacf", sys: sys, ranks: ranks, world: w, WaterStride: 16}, nil
}

// Name implements analysis.Kernel.
func (k *VACF) Name() string { return k.name }

// Setup captures reference velocities per group.
func (k *VACF) Setup() (int64, error) {
	water := k.sys.IndicesOf(md.Water)
	strided := water[:0:0]
	for i := 0; i < len(water); i += k.WaterStride {
		strided = append(strided, water[i])
	}
	ions := append(k.sys.IndicesOf(md.Cation), k.sys.IndicesOf(md.Anion)...)
	k.groups = [][]int{strided, k.sys.IndicesOf(md.Hydronium), ions}
	k.labels = []string{"water", "hydronium", "ion"}

	var bytes int64
	k.v0 = make([][]md.Vec3, len(k.groups))
	k.norm = make([]float64, len(k.groups))
	for g, group := range k.groups {
		k.v0[g] = make([]md.Vec3, len(group))
		for idx, i := range group {
			k.v0[g][idx] = k.sys.Vel[i]
			k.norm[g] += k.sys.Vel[i].Norm2()
		}
		if n := float64(len(group)); n > 0 {
			k.norm[g] /= n
		}
		bytes += int64(len(group)) * (24 + 8)
	}
	k.series = make([][]float64, len(k.groups))
	return bytes, nil
}

// PreStep is a no-op: velocities are already in simulation memory, the
// convenience the paper cites for analyzing in-situ (§1).
func (k *VACF) PreStep(step int) (int64, error) { return 0, nil }

// Analyze evaluates the normalized correlation per group via Allreduce.
func (k *VACF) Analyze(step int) (int64, error) {
	vals := make([]float64, len(k.groups))
	err := k.world.Run(func(r *comm.Rank) error {
		local := make([]float64, len(k.groups))
		for g, group := range k.groups {
			for idx := r.ID(); idx < len(group); idx += r.Size() {
				local[g] += k.v0[g][idx].Dot(k.sys.Vel[group[idx]])
			}
		}
		out, err := r.Allreduce(local, comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			copy(vals, out)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for g := range k.groups {
		c := 0.0
		if n := float64(len(k.groups[g])); n > 0 && k.norm[g] != 0 {
			c = vals[g] / n / k.norm[g]
		}
		k.series[g] = append(k.series[g], c)
	}
	return int64(k.ranks) * int64(len(k.groups)) * 8, nil
}

// Output writes the correlation series per group and clears them.
func (k *VACF) Output(dst io.Writer) (int64, error) {
	var written int64
	for g, label := range k.labels {
		n, err := fmt.Fprintf(dst, "# %s group %s n=%d\n", k.name, label, len(k.groups[g]))
		if err != nil {
			return written, err
		}
		written += int64(n)
		for i, c := range k.series[g] {
			n, err := fmt.Fprintf(dst, "%d %.8f\n", i, c)
			if err != nil {
				return written, err
			}
			written += int64(n)
		}
	}
	k.Free()
	return written, nil
}

// Free clears the accumulated series.
func (k *VACF) Free() {
	for g := range k.series {
		k.series[g] = nil
	}
}

// Series exposes the correlation series for group g (for tests).
func (k *VACF) Series(g int) []float64 { return k.series[g] }
