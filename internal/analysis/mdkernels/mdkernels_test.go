package mdkernels

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"insitu/internal/analysis"
	"insitu/internal/sim/md"
)

func waterSys(t *testing.T, n int) *md.System {
	t.Helper()
	s, err := md.NewWaterIons(md.Config{NAtoms: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rhodoSys(t *testing.T, n int) *md.System {
	t.Helper()
	s, err := md.NewRhodopsin(md.Config{NAtoms: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHydroniumRDFLifecycle(t *testing.T) {
	sys := waterSys(t, 2000)
	k, err := NewHydroniumRDF(sys, RDFConfig{Bins: 32, Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := k.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if fm <= 0 {
		t.Fatal("fixed memory must be positive")
	}
	if im, _ := k.PreStep(1); im != 0 {
		t.Fatalf("rdf prestep allocated %d", im)
	}
	if _, err := k.Analyze(1); err != nil {
		t.Fatal(err)
	}
	if k.Samples() != 1 {
		t.Fatalf("samples = %d", k.Samples())
	}
	// Hydronium-water histogram must contain counts: a dense liquid has
	// many neighbors within the cutoff.
	total := 0.0
	for _, v := range k.Histogram(0) {
		total += v
	}
	if total == 0 {
		t.Fatal("hydronium-water histogram empty")
	}
	var buf bytes.Buffer
	om, err := k.Output(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if om != int64(buf.Len()) {
		t.Fatalf("om = %d, wrote %d", om, buf.Len())
	}
	if !strings.Contains(buf.String(), "hydronium-water") {
		t.Fatal("output missing pair label")
	}
	if k.Samples() != 0 {
		t.Fatal("output must reset accumulation")
	}
}

func TestRDFDeterministicAcrossRankCounts(t *testing.T) {
	// Histogram counts are integers: rank partitioning must not change them.
	sys := waterSys(t, 1500)
	var totals []float64
	for _, ranks := range []int{1, 2, 5} {
		k, err := NewIonRDF(sys, RDFConfig{Bins: 24, Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Setup(); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Analyze(1); err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for p := 0; p < 3; p++ {
			for _, v := range k.Histogram(p) {
				total += v
			}
		}
		totals = append(totals, total)
	}
	if totals[0] != totals[1] || totals[1] != totals[2] {
		t.Fatalf("rank-dependent counts: %v", totals)
	}
	if totals[0] == 0 {
		t.Fatal("ion rdf found no pairs")
	}
}

func TestRDFPairSymmetryCount(t *testing.T) {
	// hydronium-hydronium counts each ordered pair once from each side, so
	// the total must be even.
	sys := waterSys(t, 3000)
	k, err := NewHydroniumRDF(sys, RDFConfig{Bins: 16, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(1); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range k.Histogram(1) {
		total += v
	}
	if math.Mod(total, 2) != 0 {
		t.Fatalf("hydronium-hydronium count %g is odd", total)
	}
}

func TestRDFValidation(t *testing.T) {
	sys := waterSys(t, 500)
	if _, err := NewRDF("empty", sys, nil, RDFConfig{}); err == nil {
		t.Fatal("expected error for no pairs")
	}
}

func TestMSDZeroAtStart(t *testing.T) {
	sys := waterSys(t, 1200)
	k, err := NewMSD(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.PreStep(0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	if got := k.Series()[0]; got != 0 {
		t.Fatalf("MSD at t=0 is %g, want 0", got)
	}
}

func TestMSDGrowsUnderDynamics(t *testing.T) {
	sys := waterSys(t, 1200)
	k, err := NewMSD(sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 20; s++ {
		sys.Step(0.002)
		if _, err := k.PreStep(s); err != nil {
			t.Fatal(err)
		}
		if s%10 == 0 {
			if _, err := k.Analyze(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	series := k.Series()
	if len(series) != 2 {
		t.Fatalf("series length = %d", len(series))
	}
	if series[0] <= 0 || series[1] <= series[0] {
		t.Fatalf("MSD not increasing: %v", series)
	}
	if k.WindowLen() != 20 {
		t.Fatalf("window = %d, want 20 (one snapshot per step)", k.WindowLen())
	}
	var buf bytes.Buffer
	if _, err := k.Output(&buf); err != nil {
		t.Fatal(err)
	}
	if k.WindowLen() != 0 {
		t.Fatal("output must release the window buffer")
	}
}

func TestMSDWindowMemoryAccumulates(t *testing.T) {
	sys := waterSys(t, 1000)
	k, err := NewMSD(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	im1, err := k.PreStep(1)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := k.PreStep(2)
	if err != nil {
		t.Fatal(err)
	}
	if im1 <= 0 || im1 != im2 {
		t.Fatalf("per-step allocations %d, %d must be positive and equal", im1, im2)
	}
	if k.WindowLen() != 2 {
		t.Fatalf("window = %d", k.WindowLen())
	}
}

func TestMSDEmptyGroupError(t *testing.T) {
	sys := rhodoSys(t, 2000)
	// Remove ions and hydronium so the MSD group is empty.
	for i := 0; i < sys.N; i++ {
		if sys.Type[i] == md.Cation || sys.Type[i] == md.Anion || sys.Type[i] == md.Hydronium {
			sys.Type[i] = md.Water
		}
	}
	k, err := NewMSD(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err == nil {
		t.Fatal("expected empty-group error")
	}
}

func TestVACFStartsAtOne(t *testing.T) {
	sys := waterSys(t, 1500)
	k, err := NewVACF(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 3; g++ {
		if c := k.Series(g)[0]; math.Abs(c-1) > 1e-9 {
			t.Fatalf("group %d: C(0) = %g, want 1", g, c)
		}
	}
}

func TestVACFDecorrelates(t *testing.T) {
	sys := waterSys(t, 1500)
	k, err := NewVACF(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	sys.Run(60, 0.002)
	if _, err := k.Analyze(60); err != nil {
		t.Fatal(err)
	}
	c0 := k.Series(0)[0]
	cT := k.Series(0)[1]
	if math.Abs(cT) >= math.Abs(c0) {
		t.Fatalf("VACF did not decay: C(0)=%g C(t)=%g", c0, cT)
	}
	var buf bytes.Buffer
	if _, err := k.Output(&buf); err != nil {
		t.Fatal(err)
	}
	if len(k.Series(0)) != 0 {
		t.Fatal("output must clear series")
	}
	if !strings.Contains(buf.String(), "group water") {
		t.Fatal("output missing group label")
	}
}

func TestGyrationMatchesDirect(t *testing.T) {
	sys := rhodoSys(t, 3000)
	k, err := NewGyration(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	got := k.Series()[0]

	// Direct single-threaded computation.
	group := sys.IndicesOf(md.Protein)
	var com md.Vec3
	var mass float64
	for _, i := range group {
		m := sys.Params[sys.Type[i]].Mass
		com = com.Add(sys.Unwrapped(i).Scale(m))
		mass += m
	}
	com = com.Scale(1 / mass)
	sum := 0.0
	for _, i := range group {
		m := sys.Params[sys.Type[i]].Mass
		sum += m * sys.Unwrapped(i).Sub(com).Norm2()
	}
	want := math.Sqrt(sum / mass)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("Rg = %g, want %g", got, want)
	}
	// Protein is compact: Rg must be well below half the box.
	if got > sys.Box[0]/4 {
		t.Fatalf("Rg %g too large for compact protein (box %g)", got, sys.Box[0])
	}
}

func TestGyrationRequiresProtein(t *testing.T) {
	sys := waterSys(t, 500)
	k, err := NewGyration(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err == nil {
		t.Fatal("expected error: water system has no protein")
	}
}

func TestDensityHistCountsAllSpeciesParticles(t *testing.T) {
	sys := rhodoSys(t, 4000)
	k, err := NewMembraneHist(sys, HistConfig{NX: 32, NZ: 32, Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	want := float64(sys.CountType(md.Membrane))
	if k.Total() != want {
		t.Fatalf("grid total = %g, want %g", k.Total(), want)
	}
	var buf bytes.Buffer
	om, err := k.Output(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if om != int64(buf.Len()) || om == 0 {
		t.Fatalf("om = %d, buffer %d", om, buf.Len())
	}
	if k.Samples() != 0 || k.Total() != 0 {
		t.Fatal("output must reset the grid")
	}
}

func TestProteinHistConcentratedAtCenter(t *testing.T) {
	sys := rhodoSys(t, 4000)
	k, err := NewProteinHist(sys, HistConfig{NX: 8, NZ: 8, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	// Central cells must hold everything: the protein sphere has radius
	// 0.12 L, inside the central 2x2 of an 8x8 grid.
	central := 0.0
	for x := 3; x <= 4; x++ {
		for z := 3; z <= 4; z++ {
			central += k.grid[x*8+z]
		}
	}
	if central != k.Total() {
		t.Fatalf("protein mass outside central cells: central=%g total=%g", central, k.Total())
	}
}

func TestHistValidation(t *testing.T) {
	sys := rhodoSys(t, 2000)
	if _, err := NewDensityHist("x", sys, nil, HistConfig{}); err == nil {
		t.Fatal("expected species error")
	}
}

// TestMeasureIntegration exercises analysis.Measure end to end with a real
// kernel, confirming the cost mapping (fm>0, om>0, ct>0).
func TestMeasureIntegration(t *testing.T) {
	sys := waterSys(t, 1000)
	k, err := NewMSD(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	costs, err := analysis.Measure(k, func() { sys.Step(0.002) }, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if costs.FM <= 0 {
		t.Fatalf("fm = %d", costs.FM)
	}
	if costs.IM <= 0 {
		t.Fatalf("im = %d (msd buffers every step)", costs.IM)
	}
	if costs.CT <= 0 {
		t.Fatalf("ct = %v", costs.CT)
	}
	if costs.OM <= 0 {
		t.Fatalf("om = %d", costs.OM)
	}
	if costs.Kernel != "A4 msd" {
		t.Fatalf("kernel = %q", costs.Kernel)
	}
	if !strings.Contains(costs.String(), "A4 msd") {
		t.Fatal("costs string missing kernel name")
	}
}

// All kernels must satisfy the analysis.Kernel interface.
var (
	_ analysis.Kernel = (*RDF)(nil)
	_ analysis.Kernel = (*MSD)(nil)
	_ analysis.Kernel = (*VACF)(nil)
	_ analysis.Kernel = (*Gyration)(nil)
	_ analysis.Kernel = (*DensityHist)(nil)
)

func TestOutputToFailingWriter(t *testing.T) {
	sys := waterSys(t, 800)
	k, err := NewHydroniumRDF(sys, RDFConfig{Bins: 8, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(1); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Output(failWriter{}); err == nil {
		t.Fatal("expected write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestStatsKernel(t *testing.T) {
	sys := waterSys(t, 1500)
	k, err := NewStats(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Analyze(0); err != nil {
		t.Fatal(err)
	}
	row := k.Series()[0]
	// Temperature from the reduction must match the serial value.
	if math.Abs(row[0]-sys.Temperature()) > 1e-9 {
		t.Fatalf("T = %g, serial %g", row[0], sys.Temperature())
	}
	if math.Abs(row[2]-sys.KineticEnergy()) > 1e-9*row[2] {
		t.Fatalf("KE = %g, serial %g", row[2], sys.KineticEnergy())
	}
	if !(row[3] <= row[5] && row[5] <= row[4]) {
		t.Fatalf("speed ordering broken: min %g mean %g max %g", row[3], row[5], row[4])
	}
	var buf bytes.Buffer
	om, err := k.Output(&buf)
	if err != nil || om == 0 {
		t.Fatalf("output: %d, %v", om, err)
	}
	if len(k.Series()) != 0 {
		t.Fatal("output must clear series")
	}
	if !strings.Contains(buf.String(), "vmax") {
		t.Fatal("output header missing")
	}
}

func TestStatsRankInvariant(t *testing.T) {
	sys := waterSys(t, 900)
	var temps []float64
	for _, ranks := range []int{1, 5} {
		k, err := NewStats(sys, ranks)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Analyze(0); err != nil {
			t.Fatal(err)
		}
		temps = append(temps, k.Series()[0][0])
	}
	if math.Abs(temps[0]-temps[1]) > 1e-9 {
		t.Fatalf("rank-dependent temperature: %v", temps)
	}
}

func TestSpeedHistogramMaxwellBoltzmann(t *testing.T) {
	// Equilibrate a liquid, then compare the measured speed distribution to
	// the MB reference at the measured temperature. Coarse bins + several
	// samples keep the statistics stable.
	sys := waterSys(t, 4000)
	for i := 0; i < 30; i++ {
		sys.Step(0.002)
		sys.Rescale(1.0)
	}
	k, err := NewSpeedHistogram(sys, 16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Setup(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		sys.Run(5, 0.002)
		if _, err := k.Analyze(s); err != nil {
			t.Fatal(err)
		}
	}
	f := k.Distribution()
	vs := k.BinCenters()
	temp := sys.Temperature()
	// Compare where MB has appreciable mass; total variation must be small.
	dev := 0.0
	dv := vs[1] - vs[0]
	for b := range f {
		// Masses differ per species; use the dominant water mass 1.0.
		dev += math.Abs(f[b]-MaxwellBoltzmann(vs[b], 1, temp)) * dv
	}
	if dev > 0.25 {
		t.Fatalf("speed distribution deviates from Maxwell-Boltzmann by %.2f (TV)", dev)
	}
	var buf bytes.Buffer
	om, err := k.Output(&buf)
	if err != nil || om == 0 {
		t.Fatalf("output: %d, %v", om, err)
	}
	if !strings.Contains(buf.String(), "maxwell-boltzmann") {
		t.Fatal("output missing reference column")
	}
	if k.Distribution()[0] != 0 {
		t.Fatal("output must reset histogram")
	}
}

func TestMaxwellBoltzmannNormalization(t *testing.T) {
	// Integral of f(v) dv over [0, inf) must be ~1.
	sum := 0.0
	dv := 0.01
	for v := dv / 2; v < 12; v += dv {
		sum += MaxwellBoltzmann(v, 1, 1.3) * dv
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("MB normalization = %g", sum)
	}
	if MaxwellBoltzmann(1, 1, 0) != 0 {
		t.Fatal("zero temperature must give 0")
	}
}

// Compliance for the extension kernels.
var (
	_ analysis.Kernel = (*Stats)(nil)
	_ analysis.Kernel = (*SpeedHistogram)(nil)
)
