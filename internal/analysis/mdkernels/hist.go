package mdkernels

import (
	"fmt"
	"io"

	"insitu/internal/comm"
	"insitu/internal/sim/md"
)

// DensityHist computes a 2D histogram of the density profile of one species
// over the (x, z) plane (Table 3: analyses R2 membrane and R3 protein). The
// cost is dominated by reducing the full grid across ranks, which is why the
// paper measures nearly identical times for R2 and R3 (17.193 s vs 17.194 s)
// despite their different particle counts.
type DensityHist struct {
	name  string
	sys   *md.System
	sp    []md.Species
	nx    int
	nz    int
	ranks int
	world *comm.World

	grid    []float64 // fixed allocation nx*nz
	samples int
}

// HistConfig tunes a density histogram kernel.
type HistConfig struct {
	NX, NZ int // grid resolution (default 256x256)
	Ranks  int // reduction ranks (default 4)
}

func (c HistConfig) withDefaults() HistConfig {
	if c.NX == 0 {
		c.NX = 256
	}
	if c.NZ == 0 {
		c.NZ = 256
	}
	if c.Ranks == 0 {
		c.Ranks = 4
	}
	return c
}

// NewDensityHist builds a histogram kernel for the given species set.
func NewDensityHist(name string, sys *md.System, sp []md.Species, cfg HistConfig) (*DensityHist, error) {
	cfg = cfg.withDefaults()
	if len(sp) == 0 {
		return nil, fmt.Errorf("mdkernels: density histogram %q needs a species", name)
	}
	w, err := comm.NewWorld(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	return &DensityHist{
		name: name, sys: sys, sp: sp,
		nx: cfg.NX, nz: cfg.NZ, ranks: cfg.Ranks, world: w,
	}, nil
}

// NewMembraneHist builds analysis R2.
func NewMembraneHist(sys *md.System, cfg HistConfig) (*DensityHist, error) {
	return NewDensityHist("R2 membrane histogram", sys, []md.Species{md.Membrane}, cfg)
}

// NewProteinHist builds analysis R3.
func NewProteinHist(sys *md.System, cfg HistConfig) (*DensityHist, error) {
	return NewDensityHist("R3 protein histogram", sys, []md.Species{md.Protein}, cfg)
}

// Name implements analysis.Kernel.
func (k *DensityHist) Name() string { return k.name }

// Setup allocates the fixed grid.
func (k *DensityHist) Setup() (int64, error) {
	k.grid = make([]float64, k.nx*k.nz)
	k.samples = 0
	return int64(k.nx*k.nz) * 8, nil
}

// PreStep is a no-op.
func (k *DensityHist) PreStep(step int) (int64, error) { return 0, nil }

// Analyze bins the species' particles over (x, z) and reduces the grid.
func (k *DensityHist) Analyze(step int) (int64, error) {
	inSp := speciesSet(k.sp)
	var reduced []float64
	err := k.world.Run(func(r *comm.Rank) error {
		mine := make([]float64, k.nx*k.nz)
		for i := r.ID(); i < k.sys.N; i += r.Size() {
			if !inSp[k.sys.Type[i]] {
				continue
			}
			bx := int(k.sys.Pos[i][0] / k.sys.Box[0] * float64(k.nx))
			bz := int(k.sys.Pos[i][2] / k.sys.Box[2] * float64(k.nz))
			if bx >= k.nx {
				bx = k.nx - 1
			}
			if bz >= k.nz {
				bz = k.nz - 1
			}
			mine[bx*k.nz+bz]++
		}
		out, err := r.Allreduce(mine, comm.Sum)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			reduced = out
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for c := range k.grid {
		k.grid[c] += reduced[c]
	}
	k.samples++
	return int64(k.ranks) * int64(k.nx*k.nz) * 8, nil
}

// Output writes the averaged grid in a compact binary-ish text form and
// resets the accumulation.
func (k *DensityHist) Output(dst io.Writer) (int64, error) {
	var written int64
	n, err := fmt.Fprintf(dst, "# %s %dx%d samples=%d\n", k.name, k.nx, k.nz, k.samples)
	if err != nil {
		return written, err
	}
	written += int64(n)
	for x := 0; x < k.nx; x++ {
		for z := 0; z < k.nz; z++ {
			v := 0.0
			if k.samples > 0 {
				v = k.grid[x*k.nz+z] / float64(k.samples)
			}
			var m int
			if z == k.nz-1 {
				m, err = fmt.Fprintf(dst, "%.3f\n", v)
			} else {
				m, err = fmt.Fprintf(dst, "%.3f ", v)
			}
			if err != nil {
				return written, err
			}
			written += int64(m)
		}
	}
	k.resetAccum()
	return written, nil
}

// Free clears the accumulated grid contents.
func (k *DensityHist) Free() { k.resetAccum() }

func (k *DensityHist) resetAccum() {
	for c := range k.grid {
		k.grid[c] = 0
	}
	k.samples = 0
}

// Total returns the accumulated particle count in the grid (for tests).
func (k *DensityHist) Total() float64 {
	t := 0.0
	for _, v := range k.grid {
		t += v
	}
	return t
}

// Samples returns the analysis steps accumulated since the last output.
func (k *DensityHist) Samples() int { return k.samples }
