package core

import (
	"fmt"
	"io"
	"time"

	"insitu/internal/lp"
	"insitu/internal/milp"
)

// SolveFull solves the paper's time-indexed formulation verbatim (equations
// 1–9): binaries analysis[i,j] and output[i,j] per analysis per simulation
// step plus an enabled[i] membership binary, continuous mStart/mEnd chains
// with big-M linearized output resets, the aggregate time row, the per-step
// memory rows, and sliding-window interval rows. The model has O(|A|·Steps)
// binaries, so it is practical only for small step counts; its role is to
// validate the compact model and to produce irregular (non-evenly-spaced)
// schedules when the memory constraint makes those optimal.
func SolveFull(specs []AnalysisSpec, res Resources, opts SolveOptions) (*Recommendation, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	norm, err := normalizeSpecs(specs)
	if err != nil {
		return nil, err
	}
	prob, aVar, oVar := buildFullProblem(norm, res)

	start := time.Now()
	sol, err := milp.Solve(prob, opts.milpOptions())
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	if sol.Status != milp.Optimal && !(sol.Status == milp.NodeLimit && sol.HasX) {
		return nil, fmt.Errorf("core: full model solve failed: %v", sol.Status)
	}

	S := res.Steps
	rec := &Recommendation{SolveTime: elapsed, Nodes: sol.Nodes, Stats: sol.Stats}
	for i, a := range norm {
		var as, os []int
		for j := 1; j <= S; j++ {
			if sol.X[aVar[i][j]] > 0.5 {
				as = append(as, j)
			}
			if sol.X[oVar[i][j]] > 0.5 {
				os = append(os, j)
			}
		}
		if len(as) == 0 {
			rec.Schedules = append(rec.Schedules, AnalysisSchedule{Name: a.Name})
			continue
		}
		s := AnalysisSchedule{
			Name:          a.Name,
			Enabled:       true,
			Count:         len(as),
			Outputs:       len(os),
			AnalysisSteps: as,
			OutputSteps:   os,
			PredictedTime: modeCost(a, res, len(as), len(os)),
			PeakMemory:    modePeakMemory(a, S, as, os),
		}
		if len(os) > 0 {
			s.OutputEvery = (len(as) + len(os) - 1) / len(os)
		}
		rec.Schedules = append(rec.Schedules, s)
		rec.Objective += 1 + a.Weight*float64(len(as))
		rec.TotalTime += s.PredictedTime
	}
	rec.PeakMemory = exactPeakMemory(norm, res, rec.Schedules)
	if err := rec.Validate(specs, res); err != nil {
		return nil, fmt.Errorf("core: full solution failed validation: %w", err)
	}
	return rec, nil
}

// ExportFullLP writes the time-indexed formulation (equations 1-9) in CPLEX
// LP format — the verbatim counterpart of the paper's GAMS model.
func ExportFullLP(w io.Writer, specs []AnalysisSpec, res Resources) error {
	if err := res.Validate(); err != nil {
		return err
	}
	norm, err := normalizeSpecs(specs)
	if err != nil {
		return err
	}
	prob, _, _ := buildFullProblem(norm, res)
	return milp.WriteLP(w, prob)
}

// buildFullProblem constructs the time-indexed MILP and returns it with the
// analysis/output binary indices per analysis per step (1-based).
func buildFullProblem(norm []AnalysisSpec, res Resources) (*milp.Problem, [][]int, [][]int) {
	S := res.Steps
	const memScale = 1.0 / (1 << 20) // model memory in MiB for conditioning

	prob := milp.NewProblem(&lp.Problem{})
	nA := len(norm)
	enabled := make([]int, nA)
	aVar := make([][]int, nA)   // analysis binaries, 1-based step index
	oVar := make([][]int, nA)   // output binaries
	mStart := make([][]int, nA) // continuous
	mEnd := make([][]int, nA)

	for i, a := range norm {
		enabled[i] = prob.AddBinVar(1, fmt.Sprintf("e[%s]", a.Name))
		aVar[i] = make([]int, S+1)
		oVar[i] = make([]int, S+1)
		mStart[i] = make([]int, S+1)
		mEnd[i] = make([]int, S+1)
		bigM := (float64(a.FM) + float64(S)*float64(a.IM) + float64(a.CM) + float64(a.OM)) * memScale
		for j := 1; j <= S; j++ {
			aVar[i][j] = prob.AddBinVar(a.Weight, fmt.Sprintf("a[%s,%d]", a.Name, j))
			oVar[i][j] = prob.AddBinVar(0, fmt.Sprintf("o[%s,%d]", a.Name, j))
			mStart[i][j] = prob.AddContVar(0, 0, bigM+1, fmt.Sprintf("mS[%s,%d]", a.Name, j))
			mEnd[i][j] = prob.AddContVar(0, 0, bigM+1, fmt.Sprintf("mE[%s,%d]", a.Name, j))
		}
	}

	for i, a := range norm {
		fm := float64(a.FM) * memScale
		im := float64(a.IM) * memScale
		cm := float64(a.CM) * memScale
		om := float64(a.OM) * memScale
		bigM := fm + float64(S)*im + cm + om + 1

		sumA := make([]int, 0, S)
		for j := 1; j <= S; j++ {
			// a <= e, o <= a.
			prob.LP.AddConstraint([]int{aVar[i][j], enabled[i]}, []float64{1, -1}, lp.LE, 0, "")
			prob.LP.AddConstraint([]int{oVar[i][j], aVar[i][j]}, []float64{1, -1}, lp.LE, 0, "")
			sumA = append(sumA, aVar[i][j])

			// Memory recurrence, equation 5:
			// mStart_j - mEnd_{j-1} - im·e - cm·a_j - om·o_j = 0,
			// with mEnd_0 = fm·e (equation 7).
			if j == 1 {
				prob.LP.AddConstraint(
					[]int{mStart[i][j], enabled[i], aVar[i][j], oVar[i][j]},
					[]float64{1, -(fm + im), -cm, -om}, lp.EQ, 0, "")
			} else {
				prob.LP.AddConstraint(
					[]int{mStart[i][j], mEnd[i][j-1], enabled[i], aVar[i][j], oVar[i][j]},
					[]float64{1, -1, -im, -cm, -om}, lp.EQ, 0, "")
			}
			// Equation 6 linearization:
			//  mEnd <= mStart
			//  mEnd >= mStart - M·o           (o=0 forces mEnd = mStart)
			//  mEnd <= fm·e + M·(1-o)         (o=1 forces mEnd <= fm·e)
			//  mEnd >= fm·e - M·(1-o)         (o=1 forces mEnd >= fm·e)
			prob.LP.AddConstraint([]int{mEnd[i][j], mStart[i][j]}, []float64{1, -1}, lp.LE, 0, "")
			prob.LP.AddConstraint([]int{mEnd[i][j], mStart[i][j], oVar[i][j]}, []float64{1, -1, bigM}, lp.GE, 0, "")
			prob.LP.AddConstraint([]int{mEnd[i][j], enabled[i], oVar[i][j]}, []float64{1, -fm, bigM}, lp.LE, bigM, "")
			prob.LP.AddConstraint([]int{mEnd[i][j], enabled[i], oVar[i][j]}, []float64{1, -fm, -bigM}, lp.GE, -bigM, "")
		}
		// Membership requires at least one analysis step.
		coefs := make([]float64, len(sumA)+1)
		idx := make([]int, len(sumA)+1)
		copy(idx, sumA)
		for k := range sumA {
			coefs[k] = 1
		}
		idx[len(sumA)] = enabled[i]
		coefs[len(sumA)] = -1
		prob.LP.AddConstraint(idx, coefs, lp.GE, 0, fmt.Sprintf("member[%s]", a.Name))

		// Unless outputs are optional, an enabled analysis must write its
		// results at least once (matching the compact model and the paper's
		// executed schedules).
		if !a.OutputOptional {
			oIdx := make([]int, 0, S+1)
			oCoef := make([]float64, 0, S+1)
			for j := 1; j <= S; j++ {
				oIdx = append(oIdx, oVar[i][j])
				oCoef = append(oCoef, 1)
			}
			oIdx = append(oIdx, enabled[i])
			oCoef = append(oCoef, -1)
			prob.LP.AddConstraint(oIdx, oCoef, lp.GE, 0, fmt.Sprintf("must_output[%s]", a.Name))
		}

		// Interval constraint: no analysis before step itv, and at most one
		// analysis in any itv-wide window.
		for j := 1; j < a.MinInterval && j <= S; j++ {
			prob.LP.Upper[aVar[i][j]] = 0
		}
		if a.MinInterval > 1 {
			for j := 1; j+a.MinInterval-1 <= S; j++ {
				var wIdx []int
				var wCoef []float64
				for jj := j; jj < j+a.MinInterval; jj++ {
					wIdx = append(wIdx, aVar[i][jj])
					wCoef = append(wCoef, 1)
				}
				prob.LP.AddConstraint(wIdx, wCoef, lp.LE, 1, "")
			}
		}
	}

	// Time threshold, equation 4.
	if res.TimeThreshold > 0 {
		var idx []int
		var coef []float64
		for i, a := range norm {
			idx = append(idx, enabled[i])
			coef = append(coef, a.FT+a.IT*float64(S))
			ot := a.outputTime(res.Bandwidth)
			for j := 1; j <= S; j++ {
				idx = append(idx, aVar[i][j], oVar[i][j])
				coef = append(coef, a.CT, ot)
			}
		}
		prob.LP.AddConstraint(idx, coef, lp.LE, res.TimeThreshold, "time-threshold")
	}

	// Memory threshold per step, equation 8.
	if res.MemThreshold > 0 {
		for j := 1; j <= S; j++ {
			var idx []int
			var coef []float64
			for i := range norm {
				idx = append(idx, mStart[i][j])
				coef = append(coef, 1)
			}
			prob.LP.AddConstraint(idx, coef, lp.LE, float64(res.MemThreshold)*memScale, fmt.Sprintf("mem[%d]", j))
		}
	}

	return prob, aVar, oVar
}
