package core

import (
	"fmt"
	"io"
	"math"
	"sync"

	"insitu/internal/milp"
)

// ExportLP writes the compact scheduling MILP in CPLEX LP file format, the
// counterpart of the paper's GAMS model file: the exported model can be fed
// to CPLEX/Gurobi/SCIP/glpsol to cross-check this repository's solver.
func ExportLP(w io.Writer, specs []AnalysisSpec, res Resources, opts SolveOptions) error {
	if err := res.Validate(); err != nil {
		return err
	}
	norm, err := normalizeSpecs(specs)
	if err != nil {
		return err
	}
	prob, _ := buildCompactProblem(norm, res, opts)
	return milp.WriteLP(w, prob)
}

// ThresholdSensitivity reports, for each analysis, the smallest total time
// threshold at which the optimal schedule gains at least one more step of
// that analysis relative to the current recommendation — the §5.3.5
// question ("how much extra threshold buys more analyses?") answered
// exactly by re-solving along a bisection of the threshold axis.
type ThresholdSensitivity struct {
	Name string
	// CurrentCount is |C_i| at the given threshold.
	CurrentCount int
	// NextThreshold is the smallest threshold (within tol) at which the
	// optimum schedules more than CurrentCount steps of this analysis;
	// +Inf if even an unconstrained budget does not (e.g. the interval
	// bound is already tight).
	NextThreshold float64
}

// SensitivityOptions tune the bisection.
type SensitivityOptions struct {
	// MaxFactor bounds the search to MaxFactor x the current threshold
	// (default 64).
	MaxFactor float64
	// Tol is the absolute threshold tolerance of the bisection (default:
	// threshold/1e4).
	Tol float64
	// Workers bounds how many analyses are probed concurrently (default 1:
	// serial). Each analysis's bisection is inherently sequential, so the
	// fan-out is across analyses; results are ordered and valued
	// identically at any width.
	Workers int
}

// AnalyzeThresholdSensitivity computes the per-analysis next-threshold
// frontier for the given instance.
func AnalyzeThresholdSensitivity(specs []AnalysisSpec, res Resources, opts SolveOptions, sopts SensitivityOptions) ([]ThresholdSensitivity, error) {
	if res.TimeThreshold <= 0 {
		return nil, fmt.Errorf("core: sensitivity needs a positive time threshold")
	}
	if sopts.MaxFactor == 0 {
		sopts.MaxFactor = 64
	}
	if sopts.Tol == 0 {
		sopts.Tol = res.TimeThreshold / 1e4
	}
	base, err := Solve(specs, res, opts)
	if err != nil {
		return nil, err
	}

	// Probe re-solves are throwaway what-if evaluations: they never see the
	// caller's observer, which keeps the trace clean and the fan-out below
	// race-free.
	probeOpts := opts
	probeOpts.Observer = nil

	countAt := func(threshold float64, name string) (int, error) {
		r := res
		r.TimeThreshold = threshold
		rec, err := Solve(specs, r, probeOpts)
		if err != nil {
			return 0, err
		}
		return rec.Schedule(name).Count, nil
	}

	analyze := func(s AnalysisSchedule) (ThresholdSensitivity, error) {
		cur := s.Count
		ts := ThresholdSensitivity{Name: s.Name, CurrentCount: cur}
		hi := res.TimeThreshold * sopts.MaxFactor
		cHi, err := countAt(hi, s.Name)
		if err != nil {
			return ts, err
		}
		if cHi <= cur {
			ts.NextThreshold = math.Inf(1)
			return ts, nil
		}
		lo := res.TimeThreshold
		for hi-lo > sopts.Tol {
			mid := (lo + hi) / 2
			c, err := countAt(mid, s.Name)
			if err != nil {
				return ts, err
			}
			if c > cur {
				hi = mid
			} else {
				lo = mid
			}
		}
		ts.NextThreshold = hi
		return ts, nil
	}

	out := make([]ThresholdSensitivity, len(base.Schedules))
	w := sopts.Workers
	if w > len(base.Schedules) {
		w = len(base.Schedules)
	}
	if w <= 1 {
		for i, s := range base.Schedules {
			if out[i], err = analyze(s); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, len(base.Schedules))
	var wg sync.WaitGroup
	next := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = analyze(base.Schedules[i])
			}
		}()
	}
	for i := range base.Schedules {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
