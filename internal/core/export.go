package core

import (
	"fmt"
	"io"
	"math"

	"insitu/internal/milp"
)

// ExportLP writes the compact scheduling MILP in CPLEX LP file format, the
// counterpart of the paper's GAMS model file: the exported model can be fed
// to CPLEX/Gurobi/SCIP/glpsol to cross-check this repository's solver.
func ExportLP(w io.Writer, specs []AnalysisSpec, res Resources, opts SolveOptions) error {
	if err := res.Validate(); err != nil {
		return err
	}
	norm, err := normalizeSpecs(specs)
	if err != nil {
		return err
	}
	prob, _ := buildCompactProblem(norm, res, opts)
	return milp.WriteLP(w, prob)
}

// ThresholdSensitivity reports, for each analysis, the smallest total time
// threshold at which the optimal schedule gains at least one more step of
// that analysis relative to the current recommendation — the §5.3.5
// question ("how much extra threshold buys more analyses?") answered
// exactly by re-solving along a bisection of the threshold axis.
type ThresholdSensitivity struct {
	Name string
	// CurrentCount is |C_i| at the given threshold.
	CurrentCount int
	// NextThreshold is the smallest threshold (within tol) at which the
	// optimum schedules more than CurrentCount steps of this analysis;
	// +Inf if even an unconstrained budget does not (e.g. the interval
	// bound is already tight).
	NextThreshold float64
}

// SensitivityOptions tune the bisection.
type SensitivityOptions struct {
	// MaxFactor bounds the search to MaxFactor x the current threshold
	// (default 64).
	MaxFactor float64
	// Tol is the absolute threshold tolerance of the bisection (default:
	// threshold/1e4).
	Tol float64
}

// AnalyzeThresholdSensitivity computes the per-analysis next-threshold
// frontier for the given instance.
func AnalyzeThresholdSensitivity(specs []AnalysisSpec, res Resources, opts SolveOptions, sopts SensitivityOptions) ([]ThresholdSensitivity, error) {
	if res.TimeThreshold <= 0 {
		return nil, fmt.Errorf("core: sensitivity needs a positive time threshold")
	}
	if sopts.MaxFactor == 0 {
		sopts.MaxFactor = 64
	}
	if sopts.Tol == 0 {
		sopts.Tol = res.TimeThreshold / 1e4
	}
	base, err := Solve(specs, res, opts)
	if err != nil {
		return nil, err
	}

	countAt := func(threshold float64, name string) (int, error) {
		r := res
		r.TimeThreshold = threshold
		rec, err := Solve(specs, r, opts)
		if err != nil {
			return 0, err
		}
		return rec.Schedule(name).Count, nil
	}

	var out []ThresholdSensitivity
	for _, s := range base.Schedules {
		cur := s.Count
		ts := ThresholdSensitivity{Name: s.Name, CurrentCount: cur}
		hi := res.TimeThreshold * sopts.MaxFactor
		cHi, err := countAt(hi, s.Name)
		if err != nil {
			return nil, err
		}
		if cHi <= cur {
			ts.NextThreshold = math.Inf(1)
			out = append(out, ts)
			continue
		}
		lo := res.TimeThreshold
		for hi-lo > sopts.Tol {
			mid := (lo + hi) / 2
			c, err := countAt(mid, s.Name)
			if err != nil {
				return nil, err
			}
			if c > cur {
				hi = mid
			} else {
				lo = mid
			}
		}
		ts.NextThreshold = hi
		out = append(out, ts)
	}
	return out, nil
}
