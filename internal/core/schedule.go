package core

import (
	"fmt"
	"strings"
)

// expandSteps returns the concrete 1-based simulation steps of an analysis
// performed count times over steps steps, evenly spread at the widest
// spacing the count allows. With count <= steps/itv the spacing is >= itv,
// so the minimum-interval constraint holds by construction. The a-th
// analysis lands at floor((a+1)·steps/count), so the last one is at `steps`.
func expandSteps(steps, count int) []int {
	if count <= 0 {
		return nil
	}
	out := make([]int, count)
	for a := 0; a < count; a++ {
		out[a] = (a + 1) * steps / count
	}
	return out
}

// expandOutputs returns the output steps: every k-th analysis step, plus the
// final analysis step so buffered results always reach storage (the paper's
// O ⊆ C with |O| = ceil(|C|/k)).
func expandOutputs(analysisSteps []int, k int) []int {
	if k <= 0 || len(analysisSteps) == 0 {
		return nil
	}
	var out []int
	for idx := k - 1; idx < len(analysisSteps); idx += k {
		out = append(out, analysisSteps[idx])
	}
	if len(out) == 0 || out[len(out)-1] != analysisSteps[len(analysisSteps)-1] {
		out = append(out, analysisSteps[len(analysisSteps)-1])
	}
	return out
}

// modeCost returns the exact total time of an analysis run `count` times
// with `outputs` output steps: ft + it·Steps + ct·count + ot·outputs
// (equations 2–3 summed over the run).
func modeCost(a AnalysisSpec, res Resources, count, outputs int) float64 {
	ot := a.outputTime(res.Bandwidth)
	return a.FT + a.IT*float64(res.Steps) + a.CT*float64(count) + ot*float64(outputs)
}

// modePeakMemory returns the maximum mStart of equations 5–7: fixed fm plus
// im accumulating every step, cm added at analysis steps, om at output steps,
// with a reset to fm after each output. Between events memory changes
// linearly by im per step, so instead of walking all `steps` steps it jumps
// between the (sorted) analysis/output steps and evaluates each linear
// stretch at whichever end im makes extremal — O(|C|+|O|) per mode, which is
// what mode enumeration pays per candidate. Duplicate entries in either list
// collapse, matching the set semantics of the original per-step walk.
func modePeakMemory(a AnalysisSpec, steps int, analysisSteps, outputSteps []int) int64 {
	mEnd := a.FM
	peak := a.FM
	prev := 0 // step whose end-of-step memory mEnd currently holds
	ai, oi := 0, 0
	for ai < len(analysisSteps) || oi < len(outputSteps) {
		var e int
		switch {
		case ai >= len(analysisSteps):
			e = outputSteps[oi]
		case oi >= len(outputSteps):
			e = analysisSteps[ai]
		case analysisSteps[ai] < outputSteps[oi]:
			e = analysisSteps[ai]
		default:
			e = outputSteps[oi]
		}
		isA := ai < len(analysisSteps) && analysisSteps[ai] == e
		for ai < len(analysisSteps) && analysisSteps[ai] == e {
			ai++
		}
		isO := oi < len(outputSteps) && outputSteps[oi] == e
		for oi < len(outputSteps) && outputSteps[oi] == e {
			oi++
		}
		if e < 1 {
			continue // steps outside [1, steps] are never executed
		}
		if e > steps {
			break
		}
		if gap := int64(e - 1 - prev); gap > 0 {
			if a.IM > 0 {
				if v := mEnd + a.IM*gap; v > peak {
					peak = v
				}
			} else if v := mEnd + a.IM; v > peak {
				peak = v
			}
			mEnd += a.IM * gap
		}
		mStart := mEnd + a.IM
		if isA {
			mStart += a.CM
		}
		if isO {
			mStart += a.OM
		}
		if mStart > peak {
			peak = mStart
		}
		if isO {
			mEnd = a.FM
		} else {
			mEnd = mStart
		}
		prev = e
	}
	if gap := int64(steps - prev); gap > 0 {
		if a.IM > 0 {
			if v := mEnd + a.IM*gap; v > peak {
				peak = v
			}
		} else if v := mEnd + a.IM; v > peak {
			peak = v
		}
	}
	return peak
}

func stepSet(steps []int) map[int]bool {
	m := make(map[int]bool, len(steps))
	for _, s := range steps {
		m[s] = true
	}
	return m
}

// buildSchedule materializes an AnalysisSchedule for spec a performed count
// times with output every k analysis steps.
func buildSchedule(a AnalysisSpec, res Resources, count, k int) AnalysisSchedule {
	if count <= 0 {
		return AnalysisSchedule{Name: a.Name}
	}
	as := expandSteps(res.Steps, count)
	os := expandOutputs(as, k)
	return AnalysisSchedule{
		Name:          a.Name,
		Enabled:       true,
		Count:         count,
		OutputEvery:   k,
		Outputs:       len(os),
		AnalysisSteps: as,
		OutputSteps:   os,
		PredictedTime: modeCost(a, res, count, len(os)),
		PeakMemory:    modePeakMemory(a, res.Steps, as, os),
	}
}

// Validate re-checks a recommendation against the raw constraint recurrences
// (equations 2–9) for the given specs and resources, returning a descriptive
// error on any violation. Solvers call it before returning; it is also the
// oracle the tests use.
func (r *Recommendation) Validate(specs []AnalysisSpec, res Resources) error {
	if err := res.Validate(); err != nil {
		return err
	}
	byName := map[string]AnalysisSpec{}
	for _, a := range specs {
		byName[a.Name] = a.withDefaults()
	}

	totalTime := 0.0
	memPerStep := make([]int64, res.Steps+1)
	for _, s := range r.Schedules {
		if !s.Enabled {
			if s.Count != 0 || len(s.AnalysisSteps) != 0 {
				return fmt.Errorf("core: disabled analysis %q has scheduled steps", s.Name)
			}
			continue
		}
		a, ok := byName[s.Name]
		if !ok {
			return fmt.Errorf("core: schedule for unknown analysis %q", s.Name)
		}
		if len(s.AnalysisSteps) != s.Count {
			return fmt.Errorf("core: %q count %d does not match %d scheduled steps", s.Name, s.Count, len(s.AnalysisSteps))
		}
		// Interval constraint (equation 9 plus the running-total rule: the
		// first analysis may not occur before itv steps have elapsed).
		prev := 0
		for _, j := range s.AnalysisSteps {
			if j < 1 || j > res.Steps {
				return fmt.Errorf("core: %q analysis step %d outside [1,%d]", s.Name, j, res.Steps)
			}
			if j-prev < a.MinInterval {
				return fmt.Errorf("core: %q violates min interval %d between steps %d and %d", s.Name, a.MinInterval, prev, j)
			}
			prev = j
		}
		// Outputs must be a subset of analysis steps.
		isA := stepSet(s.AnalysisSteps)
		for _, j := range s.OutputSteps {
			if !isA[j] {
				return fmt.Errorf("core: %q outputs at step %d without an analysis", s.Name, j)
			}
		}

		// Time recurrence (equations 2–4).
		ot := a.outputTime(res.Bandwidth)
		t := a.FT + a.IT*float64(res.Steps) + a.CT*float64(len(s.AnalysisSteps)) + ot*float64(len(s.OutputSteps))
		totalTime += t

		// Memory recurrence (equations 5–7) accumulated per step.
		isO := stepSet(s.OutputSteps)
		mEnd := a.FM
		for j := 1; j <= res.Steps; j++ {
			mStart := mEnd + a.IM
			if isA[j] {
				mStart += a.CM
			}
			if isO[j] {
				mStart += a.OM
			}
			memPerStep[j] += mStart
			if isO[j] {
				mEnd = a.FM
			} else {
				mEnd = mStart
			}
		}
	}

	if res.TimeThreshold > 0 && totalTime > res.TimeThreshold*(1+1e-9)+1e-12 {
		return fmt.Errorf("core: total analysis time %.6f exceeds threshold %.6f", totalTime, res.TimeThreshold)
	}
	if res.MemThreshold > 0 {
		for j := 1; j <= res.Steps; j++ {
			if memPerStep[j] > res.MemThreshold {
				return fmt.Errorf("core: memory %d at step %d exceeds threshold %d", memPerStep[j], j, res.MemThreshold)
			}
		}
	}
	return nil
}

// CouplingString renders the Figure-1 style coupling string for a single
// analysis schedule over the run: "S" per simulation step, with "A" appended
// at analysis steps, "Oa" at analysis-output steps, and "Os" at simulation
// output steps (every simOutputEvery steps; 0 disables simulation output).
func CouplingString(res Resources, s AnalysisSchedule, simOutputEvery int) string {
	isA := stepSet(s.AnalysisSteps)
	isO := stepSet(s.OutputSteps)
	var b strings.Builder
	for j := 1; j <= res.Steps; j++ {
		b.WriteString("S")
		if isA[j] {
			b.WriteString("A")
		}
		if isO[j] {
			b.WriteString("Oa")
		}
		if simOutputEvery > 0 && j%simOutputEvery == 0 {
			b.WriteString("Os")
		}
	}
	return b.String()
}

// GanttString renders all enabled schedules as aligned timeline rows, one
// character per simulation step: '.' simulation only, 'A' analysis, 'O'
// analysis+output. Wide runs are compressed by sampling when Steps exceeds
// the width.
func (r *Recommendation) GanttString(res Resources, width int) string {
	if width <= 0 || width > res.Steps {
		width = res.Steps
	}
	var b strings.Builder
	nameW := 0
	for _, s := range r.Schedules {
		if s.Enabled && len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range r.Schedules {
		if !s.Enabled {
			continue
		}
		isA := stepSet(s.AnalysisSteps)
		isO := stepSet(s.OutputSteps)
		fmt.Fprintf(&b, "%-*s |", nameW, s.Name)
		for c := 0; c < width; c++ {
			lo := c*res.Steps/width + 1
			hi := (c + 1) * res.Steps / width
			ch := byte('.')
			for j := lo; j <= hi; j++ {
				if isO[j] {
					ch = 'O'
					break
				}
				if isA[j] {
					ch = 'A'
				}
			}
			b.WriteByte(ch)
		}
		b.WriteString("|\n")
	}
	return b.String()
}
