package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// fourAnalyses builds a Table-5-like analysis set: three cheap scalable
// analyses and one expensive memory-heavy one (A4/msd).
func fourAnalyses() []AnalysisSpec {
	return []AnalysisSpec{
		{Name: "A1", CT: 0.06, OT: 0.01, FM: 1 << 20, CM: 1 << 18, OM: 1 << 18, MinInterval: 100},
		{Name: "A2", CT: 0.06, OT: 0.01, FM: 1 << 20, CM: 1 << 18, OM: 1 << 18, MinInterval: 100},
		{Name: "A3", CT: 0.08, OT: 0.01, FM: 1 << 20, CM: 1 << 18, OM: 1 << 18, MinInterval: 100},
		{Name: "A4", CT: 24.0, OT: 2.0, FM: 64 << 20, IM: 1 << 16, CM: 16 << 20, OM: 8 << 20, MinInterval: 100},
	}
}

func mustSolve(t *testing.T, specs []AnalysisSpec, res Resources) *Recommendation {
	t.Helper()
	rec, err := Solve(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestExpandSteps(t *testing.T) {
	got := expandSteps(1000, 10)
	if len(got) != 10 || got[0] != 100 || got[9] != 1000 {
		t.Fatalf("expandSteps = %v", got)
	}
	if expandSteps(1000, 0) != nil {
		t.Fatal("zero count must expand to nil")
	}
	// Spacing >= itv when count <= steps/itv.
	steps := expandSteps(1000, 7)
	prev := 0
	for _, s := range steps {
		if s-prev < 1000/7 {
			t.Fatalf("spacing violation in %v", steps)
		}
		prev = s
	}
}

func TestExpandOutputs(t *testing.T) {
	as := []int{100, 200, 300, 400, 500}
	os := expandOutputs(as, 2)
	// Every 2nd analysis plus the final step.
	want := []int{200, 400, 500}
	if len(os) != len(want) {
		t.Fatalf("outputs = %v", os)
	}
	for i := range want {
		if os[i] != want[i] {
			t.Fatalf("outputs = %v, want %v", os, want)
		}
	}
	if got := expandOutputs(as, 5); len(got) != 1 || got[0] != 500 {
		t.Fatalf("k=n outputs = %v", got)
	}
	if expandOutputs(nil, 1) != nil {
		t.Fatal("no analyses -> no outputs")
	}
}

func TestSolveTable5Shape(t *testing.T) {
	// The Table-5 shape: as the threshold shrinks, A1-A3 stay at the max
	// frequency (10 in 1000 steps) and A4's count decays to zero.
	specs := fourAnalyses()
	simTime := 646.78 // seconds for 1000 steps (paper's run)
	res := Resources{Steps: 1000, MemThreshold: 1 << 30}

	prevA4 := 11
	for _, pct := range []float64{20, 10, 5, 1} {
		res.TimeThreshold = PercentThreshold(simTime/1000, 1000, pct)
		rec := mustSolve(t, specs, res)
		for _, name := range []string{"A1", "A2", "A3"} {
			if got := rec.Schedule(name).Count; got != 10 {
				t.Fatalf("pct=%g: %s count = %d, want 10", pct, name, got)
			}
		}
		a4 := rec.Schedule("A4").Count
		if a4 > prevA4 {
			t.Fatalf("pct=%g: A4 count %d increased from %d", pct, a4, prevA4)
		}
		prevA4 = a4
		if rec.TotalTime > res.TimeThreshold+1e-9 {
			t.Fatalf("pct=%g: time %g over threshold %g", pct, rec.TotalTime, res.TimeThreshold)
		}
	}
	// At 20% A4 must run several times; at 1% it must be shut out.
	res.TimeThreshold = PercentThreshold(simTime/1000, 1000, 20)
	if mustSolve(t, specs, res).Schedule("A4").Count < 2 {
		t.Fatal("20% threshold should afford multiple A4 runs")
	}
	res.TimeThreshold = PercentThreshold(simTime/1000, 1000, 1)
	if got := mustSolve(t, specs, res).Schedule("A4").Count; got != 0 {
		t.Fatalf("1%% threshold: A4 count = %d, want 0", got)
	}
}

func TestSolveMatchesBruteForceUnconstMemory(t *testing.T) {
	// With a loose memory ceiling the compact MILP must equal brute force.
	specs := []AnalysisSpec{
		{Name: "x", CT: 1.0, OT: 0.2, MinInterval: 10},
		{Name: "y", CT: 2.5, OT: 0.1, MinInterval: 20},
		{Name: "z", CT: 0.3, OT: 0.6, MinInterval: 25},
	}
	res := Resources{Steps: 100, TimeThreshold: 14}
	got := mustSolve(t, specs, res)
	want, err := BruteForceSolve(specs, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Objective-want.Objective) > 1e-9 {
		t.Fatalf("objective %g != brute force %g", got.Objective, want.Objective)
	}
}

// Property: on random instances without a memory constraint, the compact
// MILP matches exhaustive mode enumeration exactly.
func TestSolveMatchesBruteForceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nA := 1 + rng.Intn(3)
		specs := make([]AnalysisSpec, nA)
		for i := range specs {
			specs[i] = AnalysisSpec{
				Name:        string(rune('a' + i)),
				FT:          rng.Float64() * 0.5,
				IT:          rng.Float64() * 0.001,
				CT:          0.1 + rng.Float64()*3,
				OT:          rng.Float64(),
				Weight:      0.5 + rng.Float64()*2,
				MinInterval: 5 + rng.Intn(20),
			}
		}
		res := Resources{Steps: 60, TimeThreshold: 2 + rng.Float64()*20}
		got, err := Solve(specs, res, SolveOptions{})
		if err != nil {
			return false
		}
		want, err := BruteForceSolve(specs, res)
		if err != nil {
			// Brute force found nothing feasible; Solve must agree by
			// scheduling nothing.
			return got.TotalAnalyses() == 0
		}
		return math.Abs(got.Objective-want.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryConstraintExcludesHeavyAnalysis(t *testing.T) {
	specs := []AnalysisSpec{
		{Name: "light", CT: 0.1, FM: 1 << 20, CM: 1 << 20, MinInterval: 10},
		{Name: "heavy", CT: 0.1, FM: 900 << 20, CM: 200 << 20, MinInterval: 10},
	}
	res := Resources{Steps: 100, TimeThreshold: 1000, MemThreshold: 1 << 30}
	rec := mustSolve(t, specs, res)
	if !rec.Schedule("light").Enabled {
		t.Fatal("light analysis should be enabled")
	}
	if rec.Schedule("heavy").Enabled {
		t.Fatal("heavy analysis exceeds the memory ceiling with the light one resident")
	}
	if rec.PeakMemory > res.MemThreshold {
		t.Fatalf("peak memory %d over threshold", rec.PeakMemory)
	}
}

func TestIMAccumulationForcesFrequentOutput(t *testing.T) {
	// im accumulates between outputs; with a tight memory ceiling the solver
	// must pick a mode that outputs often enough to reset the buffer.
	specs := []AnalysisSpec{{
		Name: "temporal", CT: 0.01, OT: 0.01,
		FM: 1 << 20, IM: 1 << 20, // 1 MiB per step
		MinInterval: 10,
	}}
	res := Resources{Steps: 100, TimeThreshold: 10, MemThreshold: 40 << 20}
	rec := mustSolve(t, specs, res)
	s := rec.Schedule("temporal")
	if !s.Enabled {
		t.Fatal("analysis should fit with frequent outputs")
	}
	if s.Outputs < 3 {
		t.Fatalf("outputs = %d; the 40 MiB ceiling needs resets at least every ~38 steps", s.Outputs)
	}
	if rec.PeakMemory > res.MemThreshold {
		t.Fatalf("peak %d over ceiling", rec.PeakMemory)
	}
}

func TestWeightsShiftSchedule(t *testing.T) {
	// The Table-8 scenario: with equal weights, the expensive F1 runs once;
	// prioritizing F1 and F3 shifts counts toward them.
	specs := []AnalysisSpec{
		{Name: "F1", CT: 3.5, MinInterval: 100},
		{Name: "F2", CT: 1.25, MinInterval: 100},
		{Name: "F3", CT: 0.0023, MinInterval: 100},
	}
	res := Resources{Steps: 1000, TimeThreshold: 43.5}
	equal := mustSolve(t, specs, res)

	specs[0].Weight, specs[1].Weight, specs[2].Weight = 2, 1, 2
	weighted := mustSolve(t, specs, res)

	if weighted.Schedule("F1").Count <= equal.Schedule("F1").Count {
		t.Fatalf("weighting F1 should raise its count: %d -> %d",
			equal.Schedule("F1").Count, weighted.Schedule("F1").Count)
	}
	if weighted.Schedule("F3").Count != 10 {
		t.Fatalf("cheap F3 should stay at max frequency, got %d", weighted.Schedule("F3").Count)
	}
	if weighted.Schedule("F2").Count > equal.Schedule("F2").Count {
		t.Fatal("deprioritized F2 should not gain analyses")
	}
}

func TestFullMatchesCompactSmall(t *testing.T) {
	// On a small instance with time constraint only, both exact
	// formulations must reach the same objective.
	specs := []AnalysisSpec{
		{Name: "p", CT: 1, OT: 0.5, MinInterval: 3},
		{Name: "q", CT: 2, OT: 0.25, MinInterval: 4},
	}
	res := Resources{Steps: 12, TimeThreshold: 7}
	compact := mustSolve(t, specs, res)
	full, err := SolveFull(specs, res, SolveOptions{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if full.Objective < compact.Objective-1e-6 {
		t.Fatalf("full objective %g below compact %g", full.Objective, compact.Objective)
	}
	// The compact model restricts to evenly-spread schedules, so full >=
	// compact; with only an aggregate time row they must be equal.
	if full.Objective > compact.Objective+1e-6 {
		t.Fatalf("full objective %g above compact %g — compact should be tight here", full.Objective, compact.Objective)
	}
}

func TestFullModelMemoryReset(t *testing.T) {
	// One analysis whose im accumulation forces outputs under a ceiling:
	// the full model must produce a schedule whose exact memory trace fits.
	specs := []AnalysisSpec{{
		Name: "m", CT: 0.1, OT: 0.1,
		FM: 1 << 20, IM: 1 << 20,
		MinInterval: 2,
	}}
	res := Resources{Steps: 10, TimeThreshold: 5, MemThreshold: 6 << 20}
	rec, err := SolveFull(specs, res, SolveOptions{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Schedule("m")
	if !s.Enabled {
		t.Fatal("analysis should be schedulable")
	}
	if len(s.OutputSteps) == 0 {
		t.Fatal("memory ceiling requires output resets")
	}
	if rec.PeakMemory > res.MemThreshold {
		t.Fatalf("peak %d over ceiling %d", rec.PeakMemory, res.MemThreshold)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	specs := []AnalysisSpec{{Name: "a", CT: 1, MinInterval: 10}}
	res := Resources{Steps: 100, TimeThreshold: 100}
	rec := &Recommendation{Schedules: []AnalysisSchedule{{
		Name: "a", Enabled: true, Count: 2, AnalysisSteps: []int{10, 15},
	}}}
	if err := rec.Validate(specs, res); err == nil || !strings.Contains(err.Error(), "interval") {
		t.Fatalf("expected interval violation, got %v", err)
	}
	rec.Schedules[0].AnalysisSteps = []int{10, 200}
	if err := rec.Validate(specs, res); err == nil {
		t.Fatal("expected out-of-range violation")
	}
	rec.Schedules[0].AnalysisSteps = []int{10, 20}
	rec.Schedules[0].OutputSteps = []int{15}
	if err := rec.Validate(specs, res); err == nil || !strings.Contains(err.Error(), "without an analysis") {
		t.Fatalf("expected output-subset violation, got %v", err)
	}
	rec.Schedules[0].OutputSteps = nil
	res.TimeThreshold = 1
	if err := rec.Validate(specs, res); err == nil || !strings.Contains(err.Error(), "exceeds threshold") {
		t.Fatalf("expected time violation, got %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []AnalysisSpec{
		{Name: ""},
		{Name: "a", CT: -1},
		{Name: "a", FM: -1},
		{Name: "a", Weight: -1},
	}
	for i, b := range bad {
		if b.Validate() == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
	if _, err := Solve(bad[1:2], Resources{Steps: 10, TimeThreshold: 1}, SolveOptions{}); err == nil {
		t.Fatal("Solve must reject invalid specs")
	}
	if _, err := Solve(nil, Resources{Steps: 0}, SolveOptions{}); err == nil {
		t.Fatal("Solve must reject invalid resources")
	}
}

func TestOutputTimeDerivedFromBandwidth(t *testing.T) {
	a := AnalysisSpec{Name: "a", OM: 1 << 30}
	if got := a.outputTime(1 << 30); got != 1 {
		t.Fatalf("derived ot = %g, want 1s", got)
	}
	a.OT = 0.5
	if got := a.outputTime(1 << 30); got != 0.5 {
		t.Fatal("explicit OT must win")
	}
	a = AnalysisSpec{Name: "a"}
	if got := a.outputTime(1 << 30); got != 0 {
		t.Fatalf("no om, no ot -> %g", got)
	}
}

func TestGreedyFeasibleAndDominatedByMILP(t *testing.T) {
	specs := fourAnalyses()
	res := Resources{
		Steps:         1000,
		TimeThreshold: 60,
		MemThreshold:  1 << 30,
	}
	greedy, err := GreedySolve(specs, res)
	if err != nil {
		t.Fatal(err)
	}
	opt := mustSolve(t, specs, res)
	if greedy.Objective > opt.Objective+1e-9 {
		t.Fatalf("greedy %g beats MILP %g", greedy.Objective, opt.Objective)
	}
	if greedy.TotalTime > res.TimeThreshold {
		t.Fatal("greedy schedule over budget")
	}
}

func TestFixedFrequencyOverBudget(t *testing.T) {
	specs := fourAnalyses()
	res := Resources{Steps: 1000, TimeThreshold: 6.5} // ~1% threshold
	rec, err := FixedFrequency(specs, res, 1)
	if err == nil {
		t.Fatalf("naive fixed-frequency schedule must blow a 1%% budget (time %g)", rec.TotalTime)
	}
}

func TestCouplingStringFigure1(t *testing.T) {
	// Figure 1: analysis every 4 steps, output every 2 analyses, simulation
	// output every 5 steps.
	res := Resources{Steps: 12}
	s := AnalysisSchedule{
		Enabled: true, Count: 3,
		AnalysisSteps: []int{4, 8, 12},
		OutputSteps:   []int{8},
	}
	got := CouplingString(res, s, 5)
	want := "SSSSASOsSSSAOaSSOsSSA"
	if got != want {
		t.Fatalf("coupling string = %q, want %q", got, want)
	}
}

func TestRecommendationHelpers(t *testing.T) {
	specs := fourAnalyses()
	res := Resources{Steps: 1000, TimeThreshold: 130, MemThreshold: 1 << 30}
	rec := mustSolve(t, specs, res)
	if rec.Schedule("nope") != nil {
		t.Fatal("unknown schedule should be nil")
	}
	if rec.EnabledCount() < 3 {
		t.Fatalf("enabled = %d", rec.EnabledCount())
	}
	if rec.TotalAnalyses() < 30 {
		t.Fatalf("total analyses = %d", rec.TotalAnalyses())
	}
	u := rec.Utilization(res)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %g", u)
	}
	if !strings.Contains(rec.String(), "A1") {
		t.Fatal("String() missing analysis names")
	}
	if (&Recommendation{}).Utilization(Resources{}) != 0 {
		t.Fatal("zero-threshold utilization must be 0")
	}
}

func TestPercentThreshold(t *testing.T) {
	// 10% of a 646.78 s simulation.
	got := PercentThreshold(0.64678, 1000, 10)
	if math.Abs(got-64.678) > 1e-9 {
		t.Fatalf("threshold = %g", got)
	}
}

func TestSolverRuntimeWithinPaperRange(t *testing.T) {
	// The paper reports 0.17-1.36 s with CPLEX; our compact model should be
	// well under that for the Table-5 instance.
	specs := fourAnalyses()
	res := Resources{Steps: 1000, TimeThreshold: 129.35, MemThreshold: 1 << 30}
	rec := mustSolve(t, specs, res)
	if rec.SolveTime.Seconds() > 1.36 {
		t.Fatalf("solve took %v, paper's solver needed at most 1.36s", rec.SolveTime)
	}
}

// Property: the recommendation never violates its envelope, for random
// envelopes.
func TestSolveAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := fourAnalyses()
		res := Resources{
			Steps:         1000,
			TimeThreshold: rng.Float64() * 200,
			MemThreshold:  int64(rng.Intn(1<<30) + 1<<22),
		}
		rec, err := Solve(specs, res, SolveOptions{})
		if err != nil {
			return false
		}
		return rec.Validate(specs, res) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLexicographicMatchesPaperTable8(t *testing.T) {
	// The Table-8 scenario: under priority semantics, weights (2,1,2) put
	// {F1,F3} in a class above {F2}; the high class consumes the budget
	// first and F2 is shut out.
	specs := []AnalysisSpec{
		{Name: "F1", CT: 3.5, OT: 24, Weight: 2, MinInterval: 100},
		{Name: "F2", CT: 1.25, OT: 3.2, Weight: 1, MinInterval: 100},
		{Name: "F3", CT: 0.0023, OT: 0.0005, Weight: 2, MinInterval: 100},
	}
	res := Resources{Steps: 1000, TimeThreshold: 43.5}
	rec, err := SolveLexicographic(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Schedule("F1").Count; got != 5 {
		t.Fatalf("F1 = %d, want 5", got)
	}
	if got := rec.Schedule("F2").Count; got != 0 {
		t.Fatalf("F2 = %d, want 0", got)
	}
	if got := rec.Schedule("F3").Count; got != 10 {
		t.Fatalf("F3 = %d, want 10", got)
	}
	if err := rec.Validate(specs, res); err != nil {
		t.Fatal(err)
	}
}

func TestLexicographicSingleClassEqualsSolve(t *testing.T) {
	specs := fourAnalyses()
	res := Resources{Steps: 1000, TimeThreshold: 64.69, MemThreshold: 12 << 30}
	lex, err := SolveLexicographic(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Solve(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lex.Objective-lin.Objective) > 1e-9 {
		t.Fatalf("single weight class: lexicographic %g != linear %g", lex.Objective, lin.Objective)
	}
}

func TestLexicographicValidation(t *testing.T) {
	if _, err := SolveLexicographic(nil, Resources{}, SolveOptions{}); err == nil {
		t.Fatal("expected resource validation error")
	}
	bad := []AnalysisSpec{{Name: "", CT: 1}}
	if _, err := SolveLexicographic(bad, Resources{Steps: 10, TimeThreshold: 1}, SolveOptions{}); err == nil {
		t.Fatal("expected spec validation error")
	}
}

func TestLexicographicNeverInfeasible(t *testing.T) {
	// Even when the high-priority class eats the whole budget, lower
	// classes must solve cleanly to empty schedules.
	specs := []AnalysisSpec{
		{Name: "hog", CT: 100, Weight: 9, MinInterval: 1},
		{Name: "small", CT: 0.1, Weight: 1, MinInterval: 1},
	}
	res := Resources{Steps: 10, TimeThreshold: 100}
	rec, err := SolveLexicographic(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schedule("hog").Count != 1 {
		t.Fatalf("hog count = %d", rec.Schedule("hog").Count)
	}
	if rec.TotalTime > res.TimeThreshold {
		t.Fatal("over budget")
	}
}

// Property: on random tiny instances with time constraint only, the full
// time-indexed model and the compact mode model agree on the objective (the
// compact even-spread restriction is tight when only the aggregate time row
// binds).
func TestFullMatchesCompactRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nA := 1 + rng.Intn(2)
		specs := make([]AnalysisSpec, nA)
		for i := range specs {
			specs[i] = AnalysisSpec{
				Name:        string(rune('a' + i)),
				CT:          0.5 + rng.Float64()*2,
				OT:          rng.Float64() * 0.5,
				MinInterval: 2 + rng.Intn(3),
			}
		}
		res := Resources{Steps: 8 + rng.Intn(5), TimeThreshold: 1 + rng.Float64()*8}
		compact, err := Solve(specs, res, SolveOptions{})
		if err != nil {
			return false
		}
		full, err := SolveFull(specs, res, SolveOptions{MaxNodes: 20000})
		if err != nil {
			return false
		}
		return math.Abs(full.Objective-compact.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestOutputOptionalSkipsOutputs(t *testing.T) {
	// With optional output and nonzero ot, the optimum never writes.
	specs := []AnalysisSpec{{
		Name: "opt", CT: 1, OT: 0.9, MinInterval: 10, OutputOptional: true,
	}}
	res := Resources{Steps: 100, TimeThreshold: 10}
	rec := mustSolve(t, specs, res)
	s := rec.Schedule("opt")
	if s.Count != 10 {
		t.Fatalf("count = %d, want 10 (no output cost)", s.Count)
	}
	if s.Outputs != 0 || len(s.OutputSteps) != 0 {
		t.Fatalf("optional-output schedule wrote %d times", s.Outputs)
	}
	// Required output forces at least one write, costing one analysis.
	specs[0].OutputOptional = false
	rec = mustSolve(t, specs, res)
	s = rec.Schedule("opt")
	if s.Outputs < 1 {
		t.Fatal("required output missing")
	}
	if s.Count > 9 {
		t.Fatalf("count = %d; the 0.9s output must displace an analysis", s.Count)
	}
}

func TestFullModelRequiresOutputByDefault(t *testing.T) {
	specs := []AnalysisSpec{{Name: "q", CT: 1, OT: 0.5, MinInterval: 2}}
	res := Resources{Steps: 8, TimeThreshold: 4}
	rec, err := SolveFull(specs, res, SolveOptions{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Schedule("q")
	if s.Enabled && s.Outputs == 0 {
		t.Fatal("full model scheduled an enabled analysis with no output")
	}
}

func TestRecommendationJSONRoundTrip(t *testing.T) {
	// cmd/insitu-sched -json marshals the recommendation; the structure must
	// survive a round trip.
	specs := fourAnalyses()
	res := Resources{Steps: 1000, TimeThreshold: 64.69, MemThreshold: 12 << 30}
	rec := mustSolve(t, specs, res)
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Recommendation
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Objective != rec.Objective || len(back.Schedules) != len(rec.Schedules) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Schedule("A1").Count != rec.Schedule("A1").Count {
		t.Fatal("schedule counts lost")
	}
}

// Property: every solver path returns a recommendation that validates
// against the raw constraint recurrences.
func TestAllSolversAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := fourAnalyses()
		for i := range specs {
			specs[i].Weight = 1 + float64(rng.Intn(3))
		}
		res := Resources{
			Steps:         1000,
			TimeThreshold: 5 + rng.Float64()*150,
			MemThreshold:  int64(1<<28 + rng.Intn(1<<33)),
		}
		rec, err := Solve(specs, res, SolveOptions{})
		if err != nil || rec.Validate(specs, res) != nil {
			return false
		}
		lex, err := SolveLexicographic(specs, res, SolveOptions{})
		if err != nil || lex.Validate(specs, res) != nil {
			return false
		}
		gr, err := GreedySolve(specs, res)
		if err != nil || gr.Validate(specs, res) != nil {
			return false
		}
		// The MILP dominates greedy; lexicographic may trade objective for
		// priority but must never beat the unconstrained optimum.
		return gr.Objective <= rec.Objective+1e-9 && lex.Objective <= rec.Objective+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGanttString(t *testing.T) {
	specs := fourAnalyses()
	res := Resources{Steps: 1000, TimeThreshold: 129.35, MemThreshold: 12 << 30}
	rec := mustSolve(t, specs, res)
	g := rec.GanttString(res, 50)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != rec.EnabledCount() {
		t.Fatalf("rows = %d, want %d", len(lines), rec.EnabledCount())
	}
	for _, l := range lines {
		if !strings.Contains(l, "O") && !strings.Contains(l, "A") {
			t.Fatalf("row without any analysis mark: %q", l)
		}
		if !strings.HasSuffix(l, "|") {
			t.Fatalf("row not terminated: %q", l)
		}
	}
	// Full-width rendering marks exactly the analysis steps.
	gFull := rec.GanttString(res, 0)
	row := strings.SplitN(strings.Split(gFull, "\n")[0], "|", 2)[1]
	marks := strings.Count(row, "A") + strings.Count(row, "O")
	if marks != rec.Schedules[0].Count {
		t.Fatalf("marks = %d, want %d", marks, rec.Schedules[0].Count)
	}
}
