package core

import (
	"fmt"
	"math"

	"insitu/internal/lp"
	"insitu/internal/milp"
)

// Binding-resource labels reported by Explain. Each names the constraint
// family of §3.2 that stops an enabled analysis from running more often.
const (
	// BindingMinInterval: the analysis already runs every itv_i steps
	// (equation 9); no budget increase can add steps.
	BindingMinInterval = "min-interval"
	// BindingTime: the next step does not fit the remaining time budget
	// (equations 2-4).
	BindingTime = "time-threshold"
	// BindingMemory: the next step does not fit the remaining memory
	// headroom (equations 5-8, in the model's sum-of-peaks form).
	BindingMemory = "memory-threshold"
	// BindingTimeMemory: every candidate mode for the next step violates
	// both thresholds.
	BindingTimeMemory = "time+memory"
	// BindingNone: a further step would fit both budgets — the count is not
	// resource-limited (weight-zero analyses, or headroom freed by a
	// different analysis being disabled).
	BindingNone = "none"
)

// Attribution explains one analysis of a recommendation: for an enabled
// analysis, the resource that pins its frequency and the slack left on it;
// for a disabled one, the counterfactual of forcing it on (objective price,
// or the minimal constraint conflict that makes forcing impossible).
type Attribution struct {
	Name     string
	Enabled  bool
	Count    int
	MaxCount int // Steps / MinInterval, the equation-9 ceiling

	// Enabled analyses: Binding is one of the Binding* labels above,
	// BindingSlack the remaining slack on that resource (seconds for time,
	// bytes for memory, steps-to-ceiling 0 for min-interval), and
	// NextStepCost the cheapest additional time one more analysis step
	// would cost.
	Binding      string
	BindingSlack float64
	NextStepCost float64

	// Disabled analyses: the counterfactual probe re-solves with this
	// analysis forced on. When feasible, ForcedObjective/ForcedDelta price
	// the forced schedule (delta <= 0: what the rest of the schedule gives
	// up) and ForcedCount is the frequency the forced solve grants. When
	// infeasible, ForcedViolation describes the first threshold the
	// cheapest standalone mode breaks and Conflict is the minimal
	// conflicting constraint set from milp.DiagnoseInfeasible.
	ForcedFeasible  bool
	ForcedObjective float64
	ForcedDelta     float64
	ForcedCount     int
	ForcedViolation string
	Conflict        []string
}

// RowReport carries one resource row of the compact model: the shadow price
// from the root LP relaxation's final simplex basis and the activity/slack at
// the integer optimum.
type RowReport struct {
	Name     string
	Dual     float64 // d objective / d RHS of the LP relaxation
	Activity float64 // row activity at the MILP optimum
	RHS      float64
	Slack    float64 // RHS - Activity
	Binding  bool    // Slack within tolerance of zero
}

// Explanation is the decision-observability record of one compact-model
// solve: the recommendation itself plus per-row and per-analysis attribution.
type Explanation struct {
	Rec *Recommendation
	Res Resources

	// Rows reports the model's resource rows (time-threshold and
	// memory-threshold, when present).
	Rows []RowReport
	// TimeSlack is the unused time budget at the optimum (+Inf when the
	// threshold is unset); MemSlack the unused memory headroom in the
	// model's conservative sum-of-peaks terms.
	TimeSlack float64
	MemSlack  float64

	Attributions []Attribution
}

// Attribution returns the entry for the named analysis, or nil.
func (e *Explanation) Attribution(name string) *Attribution {
	for i := range e.Attributions {
		if e.Attributions[i].Name == name {
			return &e.Attributions[i]
		}
	}
	return nil
}

// slackTol treats slacks this close to zero as binding (the threshold values
// come from measured seconds, so exact zeros are rare).
const slackTol = 1e-6

// Explain solves the compact scheduling model and attributes every decision:
// which resource row pins each enabled analysis (via the model's slacks and
// the root relaxation's duals) and what enabling each disabled analysis would
// cost (via forced re-solves, with milp.DiagnoseInfeasible naming the minimal
// conflict when forcing is impossible). opts is used verbatim for the base
// solve — including its Observer, which a milp.TreeRecorder can use to
// capture the search tree — and with the Observer stripped for the probes.
func Explain(specs []AnalysisSpec, res Resources, opts SolveOptions) (*Explanation, error) {
	rec, err := Solve(specs, res, opts)
	if err != nil {
		return nil, err
	}
	norm, err := normalizeSpecs(specs)
	if err != nil {
		return nil, err
	}
	probeOpts := opts
	probeOpts.Observer = nil
	prob, _ := buildCompactProblem(norm, res, probeOpts)

	ex := &Explanation{Rec: rec, Res: res}

	// Model-level activities at the integer optimum. TotalTime is the time
	// row's activity; the memory row's activity is the sum of per-analysis
	// peaks (conservative by construction, see Solve).
	var sumPeak float64
	for _, s := range rec.Schedules {
		if s.Enabled {
			sumPeak += float64(s.PeakMemory)
		}
	}
	ex.TimeSlack = math.Inf(1)
	if res.TimeThreshold > 0 {
		ex.TimeSlack = res.TimeThreshold - rec.TotalTime
	}
	ex.MemSlack = math.Inf(1)
	if res.MemThreshold > 0 {
		ex.MemSlack = float64(res.MemThreshold) - sumPeak
	}

	// Shadow prices from the root relaxation's final basis.
	relax, err := lp.Solve(prob.LP)
	if err != nil {
		return nil, err
	}
	for r, c := range prob.LP.Constraints {
		if c.Name != "time-threshold" && c.Name != "memory-threshold" {
			continue
		}
		activity := res.TimeThreshold - ex.TimeSlack
		if c.Name == "memory-threshold" {
			activity = sumPeak
		}
		row := RowReport{
			Name:     c.Name,
			Activity: activity,
			RHS:      c.RHS,
			Slack:    c.RHS - activity,
			Binding:  c.RHS-activity <= slackTol*(1+math.Abs(c.RHS)),
		}
		if relax.Status == lp.Optimal && r < len(relax.Duals) {
			row.Dual = relax.Duals[r]
		}
		ex.Rows = append(ex.Rows, row)
	}

	for i, a := range norm {
		s := rec.Schedules[i]
		at := Attribution{
			Name:     a.Name,
			Enabled:  s.Enabled,
			Count:    s.Count,
			MaxCount: res.Steps / a.MinInterval,
		}
		if s.Enabled {
			explainEnabled(&at, a, s, res, ex)
		} else if err := explainDisabled(&at, norm, i, res, probeOpts, rec.Objective); err != nil {
			return nil, err
		}
		ex.Attributions = append(ex.Attributions, at)
	}
	return ex, nil
}

// explainEnabled picks the binding resource for an enabled analysis by
// probing the cheapest modes with one more analysis step against the slacks
// left at the optimum.
func explainEnabled(at *Attribution, a AnalysisSpec, s AnalysisSchedule, res Resources, ex *Explanation) {
	if at.Count >= at.MaxCount {
		at.Binding = BindingMinInterval
		at.BindingSlack = 0
		return
	}
	// Candidate modes with count+1, unpruned: each is a (cost, peak) the
	// schedule could move to.
	curCost := s.PredictedTime
	curPeak := s.PeakMemory
	next := nextCountModes(a, res, at.Count+1)
	if len(next) == 0 {
		// Unreachable for count+1 <= MaxCount, but stay defensive.
		at.Binding = BindingMinInterval
		return
	}
	at.NextStepCost = math.Inf(1)
	fitsTime, fitsMem, fitsBoth := false, false, false
	for _, m := range next {
		dTime := m.cost - curCost
		dMem := float64(m.peakMem - curPeak)
		okT := dTime <= ex.TimeSlack+slackTol
		okM := dMem <= ex.MemSlack+slackTol
		if dTime < at.NextStepCost {
			at.NextStepCost = dTime
		}
		fitsTime = fitsTime || okT
		fitsMem = fitsMem || okM
		fitsBoth = fitsBoth || (okT && okM)
	}
	switch {
	case fitsBoth:
		at.Binding = BindingNone
		at.BindingSlack = ex.TimeSlack
	case fitsMem: // memory would allow it, time blocks every candidate
		at.Binding = BindingTime
		at.BindingSlack = ex.TimeSlack
	case fitsTime:
		at.Binding = BindingMemory
		at.BindingSlack = ex.MemSlack
	default:
		at.Binding = BindingTimeMemory
		at.BindingSlack = ex.TimeSlack
	}
}

// nextCountModes enumerates the unpruned modes with exactly the given count.
func nextCountModes(a AnalysisSpec, res Resources, count int) []mode {
	var out []mode
	for _, m := range enumerateModesPruned(a, res, count, false) {
		if m.count == count {
			out = append(out, m)
		}
	}
	return out
}

// explainDisabled runs the counterfactual probe for a disabled analysis:
// re-solve with it forced on (modes unpruned) and report either the
// objective price or the minimal infeasible constraint set.
func explainDisabled(at *Attribution, norm []AnalysisSpec, i int, res Resources, opts SolveOptions, baseObjective float64) error {
	prob, refs := buildCompactProblemForced(norm, res, opts, i)
	sol, err := milp.Solve(prob, opts.milpOptions())
	if err != nil {
		return err
	}
	if sol.Status == milp.Optimal || (sol.Status == milp.NodeLimit && sol.HasX) {
		at.ForcedFeasible = true
		at.ForcedObjective = sol.Objective
		at.ForcedDelta = sol.Objective - baseObjective
		for v, ref := range refs {
			if ref.analysis == i && sol.X[v] > 0.5 {
				at.ForcedCount = ref.m.count
			}
		}
		return nil
	}
	if sol.Status != milp.Infeasible {
		return fmt.Errorf("core: forced probe for %q ended %v", norm[i].Name, sol.Status)
	}
	at.ForcedViolation = standaloneViolation(norm[i], res)
	conflict, err := milp.DiagnoseInfeasible(prob, opts.milpOptions())
	if err != nil {
		return err
	}
	at.Conflict = conflict.Names
	return nil
}

// standaloneViolation describes why even the cheapest standalone mode of a
// cannot run: which threshold its minimal (count=1) configuration breaks, or
// the interval ceiling when no mode exists at all.
func standaloneViolation(a AnalysisSpec, res Resources) string {
	if res.Steps/a.MinInterval < 1 {
		return fmt.Sprintf("min-interval: %d steps < interval %d, no analysis step fits", res.Steps, a.MinInterval)
	}
	minCost := math.Inf(1)
	minPeak := int64(math.MaxInt64)
	for _, m := range nextCountModes(a, res, 1) {
		if m.cost < minCost {
			minCost = m.cost
		}
		if m.peakMem < minPeak {
			minPeak = m.peakMem
		}
	}
	if res.TimeThreshold > 0 && minCost > res.TimeThreshold {
		return fmt.Sprintf("time-threshold: cheapest mode needs %.3fs > budget %.3fs", minCost, res.TimeThreshold)
	}
	if res.MemThreshold > 0 && minPeak > res.MemThreshold {
		return fmt.Sprintf("memory-threshold: cheapest mode needs %d B > ceiling %d B", minPeak, res.MemThreshold)
	}
	return "forced membership conflicts with the thresholds only in combination"
}
