// Package core implements the paper's contribution: optimal scheduling of
// in-situ analyses as a mixed-integer linear program (§3.2). Given the time
// and memory requirements of each analysis (Table 1) and the resource
// envelope (time threshold, memory ceiling, storage bandwidth), the solver
// recommends which analyses to run in-situ, how often to run each, and how
// often each should write its output, maximizing
//
//	|A| + Σ_i w_i · |C_i|
//
// subject to the time constraint (equations 2–4), the memory constraints
// with output-step resets (equations 5–8), and the minimum-interval
// constraint (equation 9).
//
// Two exact formulations are provided:
//
//   - Solve builds a compact mode-based MILP: each analysis selects one
//     (count, output-stride) mode whose exact time cost and peak memory are
//     precomputed from the evenly spread schedule the mode induces. This is
//     the production path; it solves 1000-step instances in well under the
//     0.17–1.36 s the paper reports for CPLEX.
//   - SolveFull builds the paper's time-indexed formulation verbatim, with
//     one analysis/output binary per analysis per step and big-M linearized
//     memory resets. It is exponential in principle and is used at small
//     step counts to validate the compact model.
//
// All solutions expand to concrete schedules (which simulation steps analyze
// and which output, Figure 1) and re-validate against the raw constraint
// recurrences before being returned.
package core

import (
	"fmt"
	"time"

	"insitu/internal/milp"
)

// AnalysisSpec carries the Table-1 input parameters for one analysis.
// Times are in seconds, memory in bytes.
type AnalysisSpec struct {
	Name string

	FT float64 // fixed setup time (once, step 0)
	IT float64 // per-simulation-step facilitation time
	CT float64 // compute time per analysis step
	OT float64 // output time per output step; if 0 it is derived as OM/bw

	FM int64 // fixed memory
	IM int64 // memory allocated per simulation step (reset at output steps)
	CM int64 // memory allocated per analysis step
	OM int64 // memory allocated per output step

	Weight      float64 // importance w_i (default 1)
	MinInterval int     // itv_i, minimum steps between analysis steps (default 1)

	// OutputOptional permits schedules in which the analysis never writes
	// its results (keeping them in memory or discarding them). The paper's
	// objective does not reward output steps, so a literal reading of the
	// model would never schedule any; in its experiments every enabled
	// analysis does output, which the default (false: at least one output
	// step whenever the analysis is enabled) reproduces.
	OutputOptional bool
}

func (a AnalysisSpec) withDefaults() AnalysisSpec {
	if a.Weight == 0 {
		a.Weight = 1
	}
	if a.MinInterval <= 0 {
		a.MinInterval = 1
	}
	return a
}

// Validate rejects structurally invalid specs.
func (a AnalysisSpec) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("core: analysis with empty name")
	}
	if a.FT < 0 || a.IT < 0 || a.CT < 0 || a.OT < 0 {
		return fmt.Errorf("core: analysis %q has negative time parameter", a.Name)
	}
	if a.FM < 0 || a.IM < 0 || a.CM < 0 || a.OM < 0 {
		return fmt.Errorf("core: analysis %q has negative memory parameter", a.Name)
	}
	if a.Weight < 0 {
		return fmt.Errorf("core: analysis %q has negative weight", a.Name)
	}
	return nil
}

// outputTime returns ot, deriving it from om and the storage bandwidth when
// unset (the ot = om/bw substitution of §3.2).
func (a AnalysisSpec) outputTime(bandwidth float64) float64 {
	if a.OT > 0 {
		return a.OT
	}
	if a.OM > 0 && bandwidth > 0 {
		return float64(a.OM) / bandwidth
	}
	return 0
}

// Resources is the resource envelope of a run.
type Resources struct {
	// Steps is the number of simulation time steps.
	Steps int
	// TimeThreshold is the total time budget for all in-situ analyses over
	// the whole run, i.e. cth × Steps in the paper's notation. Use
	// PercentThreshold to derive it from a simulation-time percentage
	// (§5.3.2) or set it directly as a total (§5.3.4).
	TimeThreshold float64
	// MemThreshold is mth: the memory available for analyses at any step.
	// Zero means unconstrained.
	MemThreshold int64
	// Bandwidth is the average I/O bandwidth (bytes/s) from the simulation
	// site to storage, used to derive ot for analyses that only specify om.
	Bandwidth float64
}

// Validate rejects invalid resource envelopes.
func (r Resources) Validate() error {
	if r.Steps <= 0 {
		return fmt.Errorf("core: resources need Steps > 0, got %d", r.Steps)
	}
	if r.TimeThreshold < 0 {
		return fmt.Errorf("core: negative time threshold %g", r.TimeThreshold)
	}
	if r.MemThreshold < 0 {
		return fmt.Errorf("core: negative memory threshold %d", r.MemThreshold)
	}
	if r.Bandwidth < 0 {
		return fmt.Errorf("core: negative bandwidth %g", r.Bandwidth)
	}
	return nil
}

// PercentThreshold returns the total analysis time budget corresponding to a
// threshold expressed as a percentage of the simulation time (the §5.3.2
// use case): percent% of (simTimePerStep × steps).
func PercentThreshold(simTimePerStep float64, steps int, percent float64) float64 {
	return simTimePerStep * float64(steps) * percent / 100
}

// AnalysisSchedule is the recommendation for one analysis.
type AnalysisSchedule struct {
	Name    string
	Enabled bool
	// Count is |C_i|: how many analysis steps are scheduled.
	Count int
	// OutputEvery is the output stride in analysis steps (output after every
	// k-th analysis); 0 when disabled.
	OutputEvery int
	// Outputs is |O_i|.
	Outputs int
	// AnalysisSteps and OutputSteps are the concrete simulation steps
	// (1-based) at which the analysis runs and outputs.
	AnalysisSteps []int
	OutputSteps   []int
	// PredictedTime is the analysis' total contribution to the time budget.
	PredictedTime float64
	// PeakMemory is the maximum mStart this analysis reaches at any step.
	PeakMemory int64
}

// Recommendation is the solver output for a full analysis set.
type Recommendation struct {
	Schedules []AnalysisSchedule
	// Objective is |A| + Σ w_i |C_i| at the optimum.
	Objective float64
	// TotalTime is the predicted total in-situ analysis time (must be within
	// the threshold).
	TotalTime float64
	// PeakMemory is the maximum over steps of the summed mStart of all
	// analyses.
	PeakMemory int64
	// SolveTime is the wall-clock time the MILP solver took.
	SolveTime time.Duration
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Stats instruments the branch-and-bound search that produced this
	// recommendation (nodes, relaxations, simplex pivots, incumbent
	// trajectory, terminal bound).
	Stats milp.Stats
}

// Schedule returns the schedule for the named analysis, or nil.
func (r *Recommendation) Schedule(name string) *AnalysisSchedule {
	for i := range r.Schedules {
		if r.Schedules[i].Name == name {
			return &r.Schedules[i]
		}
	}
	return nil
}

// EnabledCount returns |A|, the number of enabled analyses.
func (r *Recommendation) EnabledCount() int {
	n := 0
	for _, s := range r.Schedules {
		if s.Enabled {
			n++
		}
	}
	return n
}

// TotalAnalyses returns Σ |C_i| over all analyses.
func (r *Recommendation) TotalAnalyses() int {
	n := 0
	for _, s := range r.Schedules {
		n += s.Count
	}
	return n
}

// Utilization returns TotalTime as a fraction of the threshold (the
// "% within threshold" column of Tables 5 and 6), or 0 when the threshold is
// zero.
func (r *Recommendation) Utilization(res Resources) float64 {
	if res.TimeThreshold <= 0 {
		return 0
	}
	return r.TotalTime / res.TimeThreshold
}

// String renders a compact multi-line summary.
func (r *Recommendation) String() string {
	out := fmt.Sprintf("objective=%.3f total_time=%.3fs peak_mem=%d solve=%v\n",
		r.Objective, r.TotalTime, r.PeakMemory, r.SolveTime)
	for _, s := range r.Schedules {
		if !s.Enabled {
			out += fmt.Sprintf("  %-24s disabled\n", s.Name)
			continue
		}
		out += fmt.Sprintf("  %-24s count=%-4d outputs=%-4d time=%.3fs peak_mem=%d\n",
			s.Name, s.Count, s.Outputs, s.PredictedTime, s.PeakMemory)
	}
	return out
}
