package core

import (
	"math"

	"insitu/internal/milp"
	"insitu/internal/obs"
)

// flightRecord converts one solver progress event into the obs-side record,
// normalizing the non-finite bounds JSON cannot carry into HasBound=false.
func flightRecord(ev milp.ProgressEvent) obs.SolveProgress {
	p := obs.SolveProgress{
		Seq:              ev.Seq,
		Kind:             ev.Kind,
		TUS:              float64(ev.T.Nanoseconds()) / 1e3,
		Wave:             ev.Wave,
		WaveSize:         ev.WaveSize,
		Workers:          ev.Workers,
		Nodes:            ev.Nodes,
		Open:             ev.Open,
		Pivots:           ev.Pivots,
		Relaxations:      ev.Relaxations,
		WarmSolves:       ev.WarmSolves,
		ColdSolves:       ev.ColdSolves,
		FallbackColds:    ev.FallbackColds,
		WarmInfeasibles:  ev.WarmInfeasibles,
		PrimalPivots:     ev.PrimalPivots,
		DualPivots:       ev.DualPivots,
		Refactorizations: ev.Refactorizations,
		EtaPeak:          ev.EtaPeak,
		PrunedBound:      ev.PrunedBound,
		PrunedInfeasible: ev.PrunedInfeasible,
		IntegralNodes:    ev.IntegralNodes,
		BranchedNodes:    ev.BranchedNodes,
		QueuePruned:      ev.QueuePruned,
		Vars:             ev.Vars,
		IntVars:          ev.IntVars,
		Constraints:      ev.Constraints,
	}
	if ev.HasInc {
		p.HasInc, p.Incumbent = true, ev.Incumbent
	}
	if !math.IsInf(ev.Bound, 0) && !math.IsNaN(ev.Bound) {
		p.HasBound, p.Bound = true, ev.Bound
	}
	if ev.Kind == milp.ProgressEnd {
		p.Status = ev.Status.String()
	}
	return p
}

// progressFunc builds the milp progress callback for these options: the
// explicit Progress hook when set, otherwise a recorder feed when Flight is
// attached, otherwise nil (zero solver overhead).
func (o SolveOptions) progressFunc() func(milp.ProgressEvent) {
	if o.Progress != nil {
		return o.Progress
	}
	if o.Flight == nil {
		return nil
	}
	fr := o.Flight
	return func(ev milp.ProgressEvent) { fr.Record(flightRecord(ev)) }
}
