package core

import (
	"testing"
)

func placementRes() PlacementResources {
	return PlacementResources{
		Resources: Resources{
			Steps:         1000,
			TimeThreshold: 30,
			MemThreshold:  8 << 30,
		},
		NetBandwidth:   2e9,
		StageMemTotal:  64 << 30,
		StageTimeTotal: 2000,
	}
}

func TestPlacementOffloadsExpensiveAnalysis(t *testing.T) {
	// An analysis too expensive to run in-situ within the threshold, but
	// with a small transfer footprint, must move to co-analysis.
	specs := []PlacementSpec{
		{
			AnalysisSpec:  AnalysisSpec{Name: "heavy", CT: 20, MinInterval: 100},
			TransferBytes: 1 << 30, // 0.5 s per transfer at 2 GB/s
		},
		{
			AnalysisSpec: AnalysisSpec{Name: "cheap", CT: 0.05, MinInterval: 100},
		},
	}
	rec, err := SolvePlacement(specs, placementRes(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	heavy := rec.Schedule("heavy")
	if heavy.Site != CoAnalysis {
		t.Fatalf("heavy analysis site = %v, want co-analysis", heavy.Site)
	}
	if heavy.Count != 10 {
		t.Fatalf("offloaded analysis count = %d, want 10 (transfers are cheap)", heavy.Count)
	}
	cheap := rec.Schedule("cheap")
	if cheap.Site != InSitu || cheap.Count != 10 {
		t.Fatalf("cheap analysis: site=%v count=%d, want in-situ x10", cheap.Site, cheap.Count)
	}
	if rec.SimSiteTime > 30 {
		t.Fatalf("sim-site time %g over threshold", rec.SimSiteTime)
	}
	if rec.StageTime <= 0 {
		t.Fatal("staging resource unused despite offload")
	}
}

func TestPlacementPrefersInSituWhenTransferDominates(t *testing.T) {
	// §1: "it is faster in some cases to analyze in-situ than to transfer
	// the simulation output and auxiliary data structures to remote
	// memory". A cheap analysis with a huge transfer must stay in-situ.
	specs := []PlacementSpec{{
		AnalysisSpec:  AnalysisSpec{Name: "local", CT: 0.1, MinInterval: 100},
		TransferBytes: 100 << 30, // 50 s per transfer
	}}
	rec, err := SolvePlacement(specs, placementRes(), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Schedule("local")
	if s.Site != InSitu {
		t.Fatalf("site = %v, want in-situ (transfer dominates)", s.Site)
	}
	if s.Count != 10 {
		t.Fatalf("count = %d, want 10", s.Count)
	}
}

func TestPlacementStagingMemoryGate(t *testing.T) {
	// Offload requires staging memory; with none available the heavy
	// analysis cannot be placed anywhere and is dropped.
	res := placementRes()
	res.StageMemTotal = 1 // effectively zero
	specs := []PlacementSpec{{
		// CT beyond the 30 s simulation-site threshold: in-situ impossible.
		AnalysisSpec:  AnalysisSpec{Name: "heavy", CT: 40, FM: 1 << 30, MinInterval: 100},
		TransferBytes: 1 << 30,
	}}
	rec, err := SolvePlacement(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schedule("heavy").Enabled {
		t.Fatal("heavy analysis should be unschedulable without staging memory")
	}
}

func TestPlacementStagingTimeGate(t *testing.T) {
	res := placementRes()
	res.StageTimeTotal = 45 // only one 40-second analysis fits on staging
	specs := []PlacementSpec{{
		// In-situ impossible (40 > 30 s threshold); staging fits exactly one.
		AnalysisSpec:  AnalysisSpec{Name: "heavy", CT: 40, MinInterval: 100},
		TransferBytes: 1 << 30,
	}}
	rec, err := SolvePlacement(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Schedule("heavy")
	if s.Site != CoAnalysis || s.Count != 1 {
		t.Fatalf("site=%v count=%d, want co-analysis x1 under the staging time gate", s.Site, s.Count)
	}
}

func TestPlacementValidation(t *testing.T) {
	res := placementRes()
	res.NetBandwidth = 0
	if _, err := SolvePlacement(nil, res, SolveOptions{}); err == nil {
		t.Fatal("expected bandwidth validation error")
	}
	res = placementRes()
	bad := []PlacementSpec{{AnalysisSpec: AnalysisSpec{Name: "", CT: 1}}}
	if _, err := SolvePlacement(bad, res, SolveOptions{}); err == nil {
		t.Fatal("expected spec validation error")
	}
	res.StageMemTotal = -1
	if _, err := SolvePlacement(nil, res, SolveOptions{}); err == nil {
		t.Fatal("expected staging validation error")
	}
}

func TestPlacementMatchesSolveWhenNoStaging(t *testing.T) {
	// With transfers priced prohibitively, SolvePlacement degenerates to
	// Solve's in-situ objective.
	specs := fourAnalyses()
	pSpecs := make([]PlacementSpec, len(specs))
	for i, a := range specs {
		pSpecs[i] = PlacementSpec{AnalysisSpec: a, TransferBytes: 1 << 50}
	}
	res := placementRes()
	res.TimeThreshold = 64.69
	res.MemThreshold = 12 << 30
	prec, err := SolvePlacement(pSpecs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Solve(specs, res.Resources, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prec.Objective != rec.Objective {
		t.Fatalf("placement objective %g != in-situ objective %g", prec.Objective, rec.Objective)
	}
	for _, s := range prec.Schedules {
		if s.Enabled && s.Site != InSitu {
			t.Fatalf("%s placed %v despite prohibitive transfer", s.Name, s.Site)
		}
	}
}

func TestPlacementDominatesInSituOnly(t *testing.T) {
	// Adding the co-analysis option can only improve the objective.
	specs := fourAnalyses()
	pSpecs := make([]PlacementSpec, len(specs))
	for i, a := range specs {
		pSpecs[i] = PlacementSpec{AnalysisSpec: a, TransferBytes: 256 << 20}
	}
	res := placementRes()
	res.TimeThreshold = 32.34
	res.MemThreshold = 12 << 30
	prec, err := SolvePlacement(pSpecs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Solve(specs, res.Resources, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prec.Objective < rec.Objective {
		t.Fatalf("placement objective %g below in-situ-only %g", prec.Objective, rec.Objective)
	}
	if prec.Schedule("missing") != nil {
		t.Fatal("unknown schedule should be nil")
	}
}

func TestSiteString(t *testing.T) {
	if InSitu.String() != "in-situ" || CoAnalysis.String() != "co-analysis" {
		t.Fatal("site names wrong")
	}
	if Site(9).String() == "" {
		t.Fatal("unknown site should print")
	}
}
