package core

import (
	"fmt"
	"sort"
)

// SolveLexicographic treats importance weights as strict priority classes:
// analyses sharing the highest weight are scheduled first (maximizing their
// analysis counts within the full envelope), then the next class is
// scheduled in the budget that remains, and so on. This is how the paper's
// Table 8 behaves: under weights (2,1,2) its solver returns F1=5, F2=0,
// F3=10 — a schedule that is dominated under a linear |A| + Σ w|C| objective
// by the equal-weight solution (1,10,10), but is exactly what prioritizing
// {F1,F3} over {F2} lexicographically produces. (GAMS/CPLEX variable
// priorities have this effect.) Solve remains the linear-objective variant;
// both are exact for their respective semantics.
func SolveLexicographic(specs []AnalysisSpec, res Resources, opts SolveOptions) (*Recommendation, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	norm := make([]AnalysisSpec, len(specs))
	for i, a := range specs {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		norm[i] = a.withDefaults()
	}

	// Distinct weights, descending: each is one priority class.
	weightSet := map[float64]bool{}
	for _, a := range norm {
		weightSet[a.Weight] = true
	}
	weights := make([]float64, 0, len(weightSet))
	for w := range weightSet {
		weights = append(weights, w)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(weights)))

	out := &Recommendation{Schedules: make([]AnalysisSchedule, len(norm))}
	for i, a := range norm {
		out.Schedules[i] = AnalysisSchedule{Name: a.Name}
	}
	timeLeft := res.TimeThreshold
	memLeft := res.MemThreshold

	for _, w := range weights {
		var classSpecs []AnalysisSpec
		var classIdx []int
		for i, a := range norm {
			if a.Weight == w {
				s := a
				s.Weight = 1 // within a class, counts are equally valuable
				classSpecs = append(classSpecs, s)
				classIdx = append(classIdx, i)
			}
		}
		classRes := Resources{
			Steps:         res.Steps,
			TimeThreshold: timeLeft,
			MemThreshold:  memLeft,
			Bandwidth:     res.Bandwidth,
		}
		// A zero threshold means "unconstrained" in Resources, so when the
		// original budget exists but is exhausted, pass a vanishing positive
		// budget instead: only zero-cost modes remain schedulable.
		if res.TimeThreshold > 0 && classRes.TimeThreshold < 1e-12 {
			classRes.TimeThreshold = 1e-12
		}
		rec, err := Solve(classSpecs, classRes, opts)
		if err != nil {
			return nil, fmt.Errorf("core: lexicographic class w=%g: %w", w, err)
		}
		for k, i := range classIdx {
			s := rec.Schedules[k]
			out.Schedules[i] = s
			if s.Enabled {
				out.Objective += 1 + norm[i].Weight*float64(s.Count)
				out.TotalTime += s.PredictedTime
				timeLeft -= s.PredictedTime
				if memLeft > 0 {
					memLeft -= s.PeakMemory
					if memLeft < 1 {
						memLeft = 1 // keep the reduced envelope valid
					}
				}
			}
		}
		out.SolveTime += rec.SolveTime
		out.Nodes += rec.Nodes
		out.Stats.Nodes += rec.Stats.Nodes
		out.Stats.Relaxations += rec.Stats.Relaxations
		out.Stats.Pivots += rec.Stats.Pivots
		out.Stats.SolveTime += rec.Stats.SolveTime
		out.Stats.Workers = rec.Stats.Workers
		out.Stats.WarmSolves += rec.Stats.WarmSolves
		out.Stats.ColdSolves += rec.Stats.ColdSolves
		out.Stats.FallbackColds += rec.Stats.FallbackColds
		out.Stats.WarmInfeasibles += rec.Stats.WarmInfeasibles
		out.Stats.PrimalPivots += rec.Stats.PrimalPivots
		out.Stats.DualPivots += rec.Stats.DualPivots
		out.Stats.Refactorizations += rec.Stats.Refactorizations
		if rec.Stats.EtaPeak > out.Stats.EtaPeak {
			out.Stats.EtaPeak = rec.Stats.EtaPeak
		}
		out.Stats.PresolveTightened += rec.Stats.PresolveTightened
	}
	out.PeakMemory = exactPeakMemory(norm, res, out.Schedules)
	if err := out.Validate(specs, res); err != nil {
		return nil, fmt.Errorf("core: lexicographic solution failed validation: %w", err)
	}
	return out, nil
}
