package core

import (
	"math/rand"
	"sort"
	"testing"
)

// modePeakMemoryWalk is the original O(steps) reference recurrence
// (equations 5–7 walked step by step); the event-jumping implementation in
// schedule.go must agree with it exactly on every schedule shape.
func modePeakMemoryWalk(a AnalysisSpec, steps int, analysisSteps, outputSteps []int) int64 {
	isA := stepSet(analysisSteps)
	isO := stepSet(outputSteps)
	mEnd := a.FM
	peak := a.FM
	for j := 1; j <= steps; j++ {
		mStart := mEnd + a.IM
		if isA[j] {
			mStart += a.CM
		}
		if isO[j] {
			mStart += a.OM
		}
		if mStart > peak {
			peak = mStart
		}
		if isO[j] {
			mEnd = a.FM
		} else {
			mEnd = mStart
		}
	}
	return peak
}

func TestModePeakMemoryMatchesWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		steps := 1 + rng.Intn(64)
		a := AnalysisSpec{
			FM: int64(rng.Intn(1 << 20)),
			IM: int64(rng.Intn(1 << 10)),
			CM: int64(rng.Intn(1 << 16)),
			OM: int64(rng.Intn(1 << 16)),
		}
		var as, os []int
		for i, n := 0, rng.Intn(steps+1); i < n; i++ {
			as = append(as, 1+rng.Intn(steps))
		}
		sort.Ints(as)
		// Outputs are a subset of analysis steps in real schedules, but the
		// function must not rely on that; mix subset picks with strays.
		for _, s := range as {
			if rng.Intn(3) == 0 {
				os = append(os, s)
			}
		}
		if rng.Intn(4) == 0 && steps > 1 {
			os = append(os, 1+rng.Intn(steps))
		}
		sort.Ints(os)
		got := modePeakMemory(a, steps, as, os)
		want := modePeakMemoryWalk(a, steps, as, os)
		if got != want {
			t.Fatalf("trial %d: steps=%d as=%v os=%v spec=%+v: event-jump peak %d, walk peak %d",
				trial, steps, as, os, a, got, want)
		}
	}
}

func TestModePeakMemoryRealSchedules(t *testing.T) {
	a := AnalysisSpec{FM: 100 << 20, IM: 1 << 16, CM: 30 << 20, OM: 10 << 20}
	for _, steps := range []int{100, 1000, 16384} {
		for _, count := range []int{1, 7, 50, steps / 2} {
			if count < 1 {
				continue
			}
			as := expandSteps(steps, count)
			for _, k := range []int{1, 2, 5, count} {
				os := expandOutputs(as, k)
				got := modePeakMemory(a, steps, as, os)
				want := modePeakMemoryWalk(a, steps, as, os)
				if got != want {
					t.Fatalf("steps=%d count=%d k=%d: event-jump peak %d, walk peak %d",
						steps, count, k, got, want)
				}
			}
		}
	}
}
