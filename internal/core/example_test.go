package core_test

import (
	"fmt"

	"insitu/internal/core"
)

// The quickstart: two analyses, a time budget, solve.
func ExampleSolve() {
	specs := []core.AnalysisSpec{
		{Name: "rdf", CT: 0.07, OT: 0.005, MinInterval: 100},
		{Name: "msd", CT: 25.9, OT: 0.05, FM: 4 << 30, MinInterval: 100},
	}
	res := core.Resources{Steps: 1000, TimeThreshold: 64.7, MemThreshold: 12 << 30}
	rec, err := core.Solve(specs, res, core.SolveOptions{})
	if err != nil {
		panic(err)
	}
	for _, s := range rec.Schedules {
		fmt.Printf("%s x%d\n", s.Name, s.Count)
	}
	// Output:
	// rdf x10
	// msd x2
}

// CouplingString reproduces the paper's Figure-1 notation: S per simulation
// step, A at analysis steps, Oa at analysis outputs, Os at simulation
// outputs.
func ExampleCouplingString() {
	res := core.Resources{Steps: 12}
	s := core.AnalysisSchedule{
		Enabled:       true,
		Count:         3,
		AnalysisSteps: []int{4, 8, 12},
		OutputSteps:   []int{8},
	}
	fmt.Println(core.CouplingString(res, s, 5))
	// Output:
	// SSSSASOsSSSAOaSSOsSSA
}

// PercentThreshold converts the paper's "10% of the simulation time" into a
// total budget.
func ExamplePercentThreshold() {
	fmt.Printf("%.2f s\n", core.PercentThreshold(0.64678, 1000, 10))
	// Output:
	// 64.68 s
}
