package core

import (
	"math"
	"strings"
	"testing"

	"insitu/internal/milp"
)

// explainSpecs is a two-analysis instance where the optimum enables the cheap
// analysis at its interval ceiling and leaves the expensive one disabled:
// cheap costs 0.1 s/step (10 steps max at interval 10), expensive needs 30 s
// for even one step against a 5 s budget.
func explainSpecs() ([]AnalysisSpec, Resources) {
	specs := []AnalysisSpec{
		{Name: "cheap", CT: 0.1, OT: 0.01, FM: 1 << 10, MinInterval: 10},
		{Name: "expensive", CT: 30, OT: 0.5, FM: 1 << 20, MinInterval: 10},
	}
	res := Resources{Steps: 100, TimeThreshold: 5}
	return specs, res
}

func TestExplainIntervalBoundAndInfeasibleCounterfactual(t *testing.T) {
	specs, res := explainSpecs()
	ex, err := Explain(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cheap := ex.Attribution("cheap")
	if cheap == nil || !cheap.Enabled {
		t.Fatalf("cheap = %+v", cheap)
	}
	if cheap.Count != 10 || cheap.MaxCount != 10 || cheap.Binding != BindingMinInterval {
		t.Fatalf("cheap attribution = %+v", cheap)
	}
	exp := ex.Attribution("expensive")
	if exp == nil || exp.Enabled {
		t.Fatalf("expensive = %+v", exp)
	}
	if exp.ForcedFeasible {
		t.Fatalf("expensive forced probe should be infeasible: %+v", exp)
	}
	if !strings.Contains(exp.ForcedViolation, "time-threshold") {
		t.Fatalf("ForcedViolation = %q", exp.ForcedViolation)
	}
	// The minimal conflict must pair the forced membership with the time
	// row — and nothing else.
	want := map[string]bool{"force[expensive]": true, "time-threshold": true}
	if len(exp.Conflict) != 2 || !want[exp.Conflict[0]] || !want[exp.Conflict[1]] {
		t.Fatalf("conflict = %v", exp.Conflict)
	}
}

func TestExplainTimeBound(t *testing.T) {
	// One analysis, interval 1, budget that fits exactly 5 of its steps:
	// binding must be the time threshold with the leftover slack reported.
	specs := []AnalysisSpec{{Name: "a", CT: 1, OT: 0, OutputOptional: true, MinInterval: 1}}
	res := Resources{Steps: 50, TimeThreshold: 5.4}
	ex, err := Explain(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	at := ex.Attribution("a")
	if !at.Enabled || at.Count != 5 {
		t.Fatalf("attribution = %+v", at)
	}
	if at.Binding != BindingTime {
		t.Fatalf("binding = %q, want %q", at.Binding, BindingTime)
	}
	if math.Abs(at.BindingSlack-0.4) > 1e-6 {
		t.Fatalf("slack = %g, want 0.4", at.BindingSlack)
	}
	if math.Abs(at.NextStepCost-1) > 1e-6 {
		t.Fatalf("next step cost = %g, want 1", at.NextStepCost)
	}
	// The time row reports the integer optimum's slack. Its root-relaxation
	// dual is zero here: with a single analysis the one-mode row binds
	// first (the largest surviving mode always fits the budget that kept
	// it from being pruned).
	if len(ex.Rows) != 1 || ex.Rows[0].Name != "time-threshold" {
		t.Fatalf("rows = %+v", ex.Rows)
	}
	row := ex.Rows[0]
	if math.Abs(row.Slack-0.4) > 1e-6 || row.Binding {
		t.Fatalf("row = %+v", row)
	}
}

func TestExplainMemoryBound(t *testing.T) {
	// Without outputs (k=0) each analysis step accumulates CM, so the peak
	// grows 20 B per step: count 4 peaks at 90 B under the 100 B ceiling,
	// count 5 needs 110 B. Every output mode (k >= 1) spikes past the
	// ceiling on OM, so memory — not time (budget 100 s vs 0.1 s/step) —
	// is what blocks the fifth step.
	specs := []AnalysisSpec{{Name: "m", CT: 0.1, OutputOptional: true, FM: 10, CM: 20, OM: 1 << 20, MinInterval: 1}}
	res := Resources{Steps: 10, TimeThreshold: 100, MemThreshold: 100}
	ex, err := Explain(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	at := ex.Attribution("m")
	if !at.Enabled || at.Count != 4 {
		t.Fatalf("attribution = %+v", at)
	}
	if at.Count >= at.MaxCount {
		t.Fatalf("count %d saturated the interval ceiling %d; instance must leave headroom", at.Count, at.MaxCount)
	}
	if at.Binding != BindingMemory {
		t.Fatalf("binding = %q (count %d, slack %g)", at.Binding, at.Count, at.BindingSlack)
	}
	if math.Abs(at.BindingSlack-10) > 1e-6 {
		t.Fatalf("memory slack = %g, want 10", at.BindingSlack)
	}
	if len(ex.Rows) != 2 {
		t.Fatalf("rows = %+v, want time+memory", ex.Rows)
	}
	for _, row := range ex.Rows {
		if row.Name == "memory-threshold" {
			if math.Abs(row.Slack-10) > 1e-6 || row.Binding {
				t.Fatalf("memory row = %+v", row)
			}
		}
	}
}

func TestExplainFeasibleCounterfactual(t *testing.T) {
	// Two analyses competing for one budget: alone each fits, together they
	// do not. The heavier-weighted one wins; forcing the loser on must be
	// feasible with a negative objective delta.
	specs := []AnalysisSpec{
		{Name: "w", CT: 3, OT: 0, OutputOptional: true, Weight: 5, MinInterval: 50},
		{Name: "l", CT: 4, OT: 0, OutputOptional: true, Weight: 1, MinInterval: 50},
	}
	res := Resources{Steps: 100, TimeThreshold: 6.5}
	ex, err := Explain(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, l := ex.Attribution("w"), ex.Attribution("l")
	if !w.Enabled || l.Enabled {
		t.Fatalf("w=%+v l=%+v", w, l)
	}
	if !l.ForcedFeasible {
		t.Fatalf("forcing l should be feasible: %+v", l)
	}
	if l.ForcedDelta >= 0 {
		t.Fatalf("forced delta = %g, want negative", l.ForcedDelta)
	}
	if l.ForcedCount < 1 {
		t.Fatalf("forced count = %d", l.ForcedCount)
	}
	base := ex.Rec.Objective
	if math.Abs(l.ForcedObjective-(base+l.ForcedDelta)) > 1e-9 {
		t.Fatalf("delta inconsistent: %g vs %g-%g", l.ForcedDelta, l.ForcedObjective, base)
	}
	// Here the root relaxation packs a fraction of l into the leftover
	// budget, so the time row binds fractionally and carries a positive
	// shadow price (l's objective rate: 2 per 4 s = 0.5).
	if len(ex.Rows) != 1 || ex.Rows[0].Name != "time-threshold" {
		t.Fatalf("rows = %+v", ex.Rows)
	}
	if d := ex.Rows[0].Dual; math.Abs(d-0.5) > 1e-6 {
		t.Fatalf("time dual = %g, want 0.5", d)
	}
}

func TestExplainObserverStreamsBaseSolve(t *testing.T) {
	specs, res := explainSpecs()
	rec := milp.NewTreeRecorder(nil)
	ex, err := Explain(specs, res, SolveOptions{Observer: rec.Observe})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Nodes()) == 0 {
		t.Fatal("observer saw no nodes")
	}
	// The probes must not leak into the recorded tree: every recorded node
	// id is unique (a second solve would restart at node 1).
	seen := map[int]bool{}
	for _, n := range rec.Nodes() {
		if seen[n.ID] {
			t.Fatalf("node id %d recorded twice: probe leaked into the observer", n.ID)
		}
		seen[n.ID] = true
	}
	if ex.Rec.Stats.Nodes != len(rec.Nodes()) {
		t.Fatalf("recorded %d nodes, stats say %d", len(rec.Nodes()), ex.Rec.Stats.Nodes)
	}
}

func TestExplainUnconstrainedSlacks(t *testing.T) {
	specs := []AnalysisSpec{{Name: "a", CT: 0.1, OT: 0.01, MinInterval: 10}}
	res := Resources{Steps: 20}
	ex, err := Explain(specs, res, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ex.TimeSlack, 1) || !math.IsInf(ex.MemSlack, 1) {
		t.Fatalf("slacks = %g/%g, want +Inf", ex.TimeSlack, ex.MemSlack)
	}
	if len(ex.Rows) != 0 {
		t.Fatalf("rows = %+v, want none", ex.Rows)
	}
	if at := ex.Attribution("a"); at.Binding != BindingMinInterval {
		t.Fatalf("binding = %q", at.Binding)
	}
}
