package core

import (
	"math"
	"testing"
)

// Table-driven edge cases for the AnalyzeThresholdSensitivity bisection.
// Each case states the exact crossing analytically so a regression in the
// bisection (wrong bracket, wrong count comparison, missed +Inf path)
// produces a concrete numeric mismatch rather than a vague failure.
func TestThresholdSensitivityEdgeCases(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name  string
		specs []AnalysisSpec
		res   Resources
		sopts SensitivityOptions
		// wantCount and wantNext are indexed like the returned entries
		// (one per analysis, in spec order).
		wantCount []int
		wantNext  []float64
		tol       float64
	}{
		{
			// Even MaxFactor x threshold cannot afford a single step: the
			// bisection must not run at all and report +Inf from the probe.
			name:      "never affordable within MaxFactor",
			specs:     []AnalysisSpec{{Name: "huge", CT: 1000, MinInterval: 500}},
			res:       Resources{Steps: 1000, TimeThreshold: 1},
			wantCount: []int{0},
			wantNext:  []float64{inf},
		},
		{
			// Current count is zero but one step becomes affordable inside
			// the search window: the frontier is the first step's full cost.
			name:      "zero count becomes affordable",
			specs:     []AnalysisSpec{{Name: "big", CT: 10, MinInterval: 1000}},
			res:       Resources{Steps: 1000, TimeThreshold: 1},
			wantCount: []int{0},
			wantNext:  []float64{10},
			tol:       0.01,
		},
		{
			// The threshold is already sufficient for the interval-bound
			// maximum; no budget buys another step.
			name:      "threshold already sufficient",
			specs:     []AnalysisSpec{{Name: "cheap", CT: 0.25, MinInterval: 250}},
			res:       Resources{Steps: 1000, TimeThreshold: 10},
			wantCount: []int{4},
			wantNext:  []float64{inf},
		},
		{
			// Interior crossing: two steps fit under 2.5, the third costs
			// exactly 3.
			name:      "interior bisection crossing",
			specs:     []AnalysisSpec{{Name: "mid", CT: 1, MinInterval: 100}},
			res:       Resources{Steps: 1000, TimeThreshold: 2.5},
			wantCount: []int{2},
			wantNext:  []float64{3},
			tol:       0.01,
		},
		{
			// The mandatory output's time is part of the step cost: the
			// second step crosses at 2 x CT + OT, not 2 x CT.
			name:      "output time counted in crossing",
			specs:     []AnalysisSpec{{Name: "out", CT: 1, OT: 0.5, MinInterval: 100}},
			res:       Resources{Steps: 1000, TimeThreshold: 2},
			wantCount: []int{1},
			wantNext:  []float64{2.5},
			tol:       0.01,
		},
		{
			// A custom MaxFactor narrows the window below the crossing: the
			// same instance that crosses at 10 reports +Inf when the search
			// stops at 5 x threshold.
			name:      "custom MaxFactor bounds the search",
			specs:     []AnalysisSpec{{Name: "big", CT: 10, MinInterval: 1000}},
			res:       Resources{Steps: 1000, TimeThreshold: 1},
			sopts:     SensitivityOptions{MaxFactor: 5},
			wantCount: []int{0},
			wantNext:  []float64{inf},
		},
		{
			// Two saturated analyses: one entry each, in spec order, both
			// +Inf — the per-analysis loop must not cross wires.
			name: "multiple analyses report independently",
			specs: []AnalysisSpec{
				{Name: "a", CT: 0.5, MinInterval: 500},
				{Name: "b", CT: 0.25, MinInterval: 250},
			},
			res:       Resources{Steps: 1000, TimeThreshold: 100},
			wantCount: []int{2, 4},
			wantNext:  []float64{inf, inf},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := AnalyzeThresholdSensitivity(tc.specs, tc.res, SolveOptions{}, tc.sopts)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != len(tc.wantCount) {
				t.Fatalf("got %d entries, want %d", len(out), len(tc.wantCount))
			}
			for i, ts := range out {
				if ts.Name != tc.specs[i].Name {
					t.Errorf("entry %d: name = %q, want %q", i, ts.Name, tc.specs[i].Name)
				}
				if ts.CurrentCount != tc.wantCount[i] {
					t.Errorf("entry %d: current count = %d, want %d", i, ts.CurrentCount, tc.wantCount[i])
				}
				switch want := tc.wantNext[i]; {
				case math.IsInf(want, 1):
					if !math.IsInf(ts.NextThreshold, 1) {
						t.Errorf("entry %d: next threshold = %g, want +Inf", i, ts.NextThreshold)
					}
				default:
					if math.Abs(ts.NextThreshold-want) > tc.tol {
						t.Errorf("entry %d: next threshold = %g, want %g +- %g", i, ts.NextThreshold, want, tc.tol)
					}
				}
			}
		})
	}
}

// TestThresholdSensitivityRejectsNonPositiveThreshold pins the argument
// contract: the bisection needs a positive starting threshold to bracket.
func TestThresholdSensitivityRejectsNonPositiveThreshold(t *testing.T) {
	specs := []AnalysisSpec{{Name: "a", CT: 1, MinInterval: 10}}
	for _, th := range []float64{0, -1} {
		res := Resources{Steps: 100, TimeThreshold: th}
		if _, err := AnalyzeThresholdSensitivity(specs, res, SolveOptions{}, SensitivityOptions{}); err == nil {
			t.Errorf("threshold %g: expected an error", th)
		}
	}
}
