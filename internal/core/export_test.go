package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"insitu/internal/milp"
)

func TestExportLPContainsModel(t *testing.T) {
	specs := fourAnalyses()
	res := Resources{Steps: 1000, TimeThreshold: 64.69, MemThreshold: 12 << 30}
	var buf bytes.Buffer
	if err := ExportLP(&buf, specs, res, SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Maximize", "time_threshold", "memory_threshold",
		"one_mode(A1)", "one_mode(A4)", "x(A4_n_1_k_1)", "Generals", "End",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exported LP missing %q", want)
		}
	}
	if strings.Count(out, "\n") < 50 {
		t.Fatalf("exported model suspiciously small:\n%s", out)
	}
}

func TestExportLPValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportLP(&buf, nil, Resources{}, SolveOptions{}); err == nil {
		t.Fatal("expected resources error")
	}
	if err := ExportLP(&buf, []AnalysisSpec{{Name: ""}}, Resources{Steps: 10, TimeThreshold: 1}, SolveOptions{}); err == nil {
		t.Fatal("expected spec error")
	}
}

func TestThresholdSensitivityA4(t *testing.T) {
	// At the Table-5 10% threshold, A4 runs twice; the next A4 step needs
	// roughly one more 25.9 s slot. The bisection must land near the exact
	// crossing: 3x25.85 + 0.05 + A1-A3 costs.
	specs := []AnalysisSpec{
		{Name: "A4", CT: 25.85, OT: 0.05, MinInterval: 100},
	}
	res := Resources{Steps: 1000, TimeThreshold: 64.69}
	out, err := AnalyzeThresholdSensitivity(specs, res, SolveOptions{}, SensitivityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("entries = %d", len(out))
	}
	s := out[0]
	if s.CurrentCount != 2 {
		t.Fatalf("current count = %d, want 2", s.CurrentCount)
	}
	want := 3*25.85 + 0.05
	if math.Abs(s.NextThreshold-want) > 0.1 {
		t.Fatalf("next threshold = %g, want ~%g", s.NextThreshold, want)
	}
}

func TestThresholdSensitivitySaturated(t *testing.T) {
	// An analysis already at its interval-bound maximum can never gain a
	// step: the sensitivity must be +Inf.
	specs := []AnalysisSpec{{Name: "cheap", CT: 0.001, MinInterval: 100}}
	res := Resources{Steps: 1000, TimeThreshold: 1}
	out, err := AnalyzeThresholdSensitivity(specs, res, SolveOptions{}, SensitivityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].CurrentCount != 10 {
		t.Fatalf("count = %d", out[0].CurrentCount)
	}
	if !math.IsInf(out[0].NextThreshold, 1) {
		t.Fatalf("next threshold = %g, want +Inf", out[0].NextThreshold)
	}
}

// TestThresholdSensitivityWorkers pins the fan-out contract: probing the
// analyses concurrently returns the same frontier, in the same order, as
// the serial pass, and probe re-solves never reach the caller's observer.
func TestThresholdSensitivityWorkers(t *testing.T) {
	specs := []AnalysisSpec{
		{Name: "A1", CT: 1.5, OT: 0.25, MinInterval: 4},
		{Name: "A2", CT: 4.0, MinInterval: 6},
		{Name: "A3", CT: 0.5, OT: 0.5, MinInterval: 3},
	}
	res := Resources{Steps: 36, TimeThreshold: 12}
	serial, err := AnalyzeThresholdSensitivity(specs, res, SolveOptions{}, SensitivityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	opts := SolveOptions{Observer: func(milp.NodeEvent) { events++ }}
	par, err := AnalyzeThresholdSensitivity(specs, res, opts, SensitivityOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("got %d entries, serial %d", len(par), len(serial))
	}
	for i := range par {
		if par[i] != serial[i] {
			t.Fatalf("entry %d: %+v, serial %+v", i, par[i], serial[i])
		}
	}
	// Only the base solve streams to the observer; the bisection probes are
	// throwaway what-ifs.
	if events == 0 {
		t.Fatal("base solve never reached the observer")
	}
	baseOnly := 0
	if _, err := Solve(specs, res, SolveOptions{Observer: func(milp.NodeEvent) { baseOnly++ }}); err != nil {
		t.Fatal(err)
	}
	if events != baseOnly {
		t.Fatalf("observer saw %d events, want %d (base solve only)", events, baseOnly)
	}
}

func TestThresholdSensitivityValidation(t *testing.T) {
	if _, err := AnalyzeThresholdSensitivity(nil, Resources{Steps: 10}, SolveOptions{}, SensitivityOptions{}); err == nil {
		t.Fatal("expected threshold error")
	}
}

func TestExportFullLP(t *testing.T) {
	specs := []AnalysisSpec{
		{Name: "p", CT: 1, OT: 0.5, FM: 1 << 20, IM: 1 << 18, MinInterval: 3},
	}
	res := Resources{Steps: 8, TimeThreshold: 5, MemThreshold: 16 << 20}
	var buf bytes.Buffer
	if err := ExportFullLP(&buf, specs, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Maximize", "a(p_1)", "a(p_8)", "o(p_4)", "mS(p_3)", "mE(p_3)",
		"time_threshold", "mem(5)", "member(p)", "Generals", "End",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("full LP missing %q", want)
		}
	}
	if err := ExportFullLP(&buf, specs, Resources{}); err == nil {
		t.Fatal("expected resources error")
	}
	if err := ExportFullLP(&buf, []AnalysisSpec{{Name: ""}}, res); err == nil {
		t.Fatal("expected spec error")
	}
}
