package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"insitu/internal/lp"
	"insitu/internal/milp"
	"insitu/internal/obs"
)

// SolveOptions tune the MILP search.
type SolveOptions struct {
	// MaxNodes caps branch-and-bound nodes (default: milp's default).
	MaxNodes int
	// MaxCount caps the modes enumerated per analysis; 0 uses the natural
	// bound Steps/MinInterval.
	MaxCount int
	// Observer, when non-nil, streams one event per explored
	// branch-and-bound node; the telemetry layer uses it to trace the
	// search. Events stay serialized in deterministic order at any worker
	// count.
	Observer func(milp.NodeEvent)
	// Flight, when non-nil, captures the solver flight stream (start /
	// per-wave / incumbent / end progress samples) into the recorder's ring
	// buffer; drain it to a ledger, trace, or the /solve pages afterwards.
	Flight *obs.FlightRecorder
	// Progress overrides the flight hookup with a raw callback on every
	// solver progress event; when set, Flight is ignored. Like Observer it
	// runs synchronously on the sequential consume path.
	Progress func(milp.ProgressEvent)
	// Workers selects the branch-and-bound pool width (see
	// milp.Options.Workers): 0 and 1 keep the historical serial search
	// byte-for-byte, >= 2 enables the parallel search with warm-started
	// node relaxations and root presolve. The objective and bound are
	// identical at any width.
	Workers int
	// NoWarmStart forces cold node relaxations in the parallel search.
	NoWarmStart bool
	// Ctx, when non-nil, scopes the solve to a caller's lifetime: the search
	// aborts with an error wrapping milp.ErrCanceled once it is canceled, and
	// request-scoped pprof labels on it survive into solver CPU profiles (see
	// milp.Options.Ctx).
	Ctx context.Context
}

// milpOptions translates the core options into solver options.
func (o SolveOptions) milpOptions() milp.Options {
	return milp.Options{
		MaxNodes:    o.MaxNodes,
		Observer:    o.Observer,
		Progress:    o.progressFunc(),
		Workers:     o.Workers,
		NoWarmStart: o.NoWarmStart,
		Ctx:         o.Ctx,
	}
}

// mode is one candidate (count, output-stride) schedule for an analysis.
type mode struct {
	count   int
	k       int // output after every k-th analysis step
	outputs int
	cost    float64
	peakMem int64
}

// enumerateModes lists every feasible (count, k) pair for one analysis:
// count from 1 to Steps/itv, k from 1 to count. Modes whose standalone cost
// already exceeds the thresholds are pruned.
func enumerateModes(a AnalysisSpec, res Resources, maxCount int) []mode {
	return enumerateModesPruned(a, res, maxCount, true)
}

// enumerateModesPruned is enumerateModes with the threshold pruning
// switchable: the explainability layer enumerates unpruned modes when forcing
// a disabled analysis on, so the infeasibility diagnosis can name the
// threshold row that excludes every mode (rather than meeting a model the
// modes were silently pruned from).
func enumerateModesPruned(a AnalysisSpec, res Resources, maxCount int, prune bool) []mode {
	bound := res.Steps / a.MinInterval
	if maxCount > 0 && bound > maxCount {
		bound = maxCount
	}
	var out []mode
	for count := 1; count <= bound; count++ {
		as := expandSteps(res.Steps, count)
		kMin := 1
		if a.OutputOptional {
			kMin = 0 // k = 0: never output
		}
		for k := kMin; k <= count; k++ {
			os := expandOutputs(as, k)
			m := mode{
				count:   count,
				k:       k,
				outputs: len(os),
				cost:    modeCost(a, res, count, len(os)),
				peakMem: modePeakMemory(a, res.Steps, as, os),
			}
			if prune && res.TimeThreshold > 0 && m.cost > res.TimeThreshold {
				continue
			}
			if prune && res.MemThreshold > 0 && m.peakMem > res.MemThreshold {
				continue
			}
			// Dominance pruning: for equal count, keep only the cheapest
			// (cost, mem) frontier over k. A mode dominated in both cost and
			// peak memory by another same-count mode can never be optimal.
			dominated := false
			for _, e := range out {
				if e.count == count && e.cost <= m.cost && e.peakMem <= m.peakMem {
					dominated = true
					break
				}
			}
			if !dominated {
				out = append(out, m)
			}
		}
	}
	return out
}

// compactRef records which analysis and mode a compact-model binary selects.
type compactRef struct {
	analysis int
	m        mode
}

// buildCompactProblem constructs the compact mode-based MILP over the
// normalized specs. It is shared by Solve and ExportLP.
func buildCompactProblem(norm []AnalysisSpec, res Resources, opts SolveOptions) (*milp.Problem, []compactRef) {
	return buildCompactProblemForced(norm, res, opts, -1)
}

// buildCompactProblemForced builds the compact model with one twist used by
// the counterfactual probes in Explain: when force is a valid analysis index,
// that analysis gets a "force[name] >= 1" membership row and its modes are
// enumerated without threshold pruning, so an impossible forced enablement
// shows up as an infeasibility between the force row and the threshold rows
// instead of a silently empty mode set.
func buildCompactProblemForced(norm []AnalysisSpec, res Resources, opts SolveOptions, force int) (*milp.Problem, []compactRef) {
	prob := milp.NewProblem(&lp.Problem{})
	var refs []compactRef
	var timeIdx []int
	var timeCoef []float64
	var memIdx []int
	var memCoef []float64
	perAnalysis := make([][]int, len(norm))

	for i, a := range norm {
		for _, m := range enumerateModesPruned(a, res, opts.MaxCount, i != force) {
			// Objective: enabling contributes 1 (membership in A) plus
			// w_i per analysis step.
			obj := 1 + a.Weight*float64(m.count)
			j := prob.AddBinVar(obj, fmt.Sprintf("x[%s,n=%d,k=%d]", a.Name, m.count, m.k))
			refs = append(refs, compactRef{analysis: i, m: m})
			perAnalysis[i] = append(perAnalysis[i], j)
			timeIdx = append(timeIdx, j)
			timeCoef = append(timeCoef, m.cost)
			memIdx = append(memIdx, j)
			memCoef = append(memCoef, float64(m.peakMem))
		}
	}

	for i, vars := range perAnalysis {
		if len(vars) == 0 {
			continue
		}
		ones := make([]float64, len(vars))
		for k := range ones {
			ones[k] = 1
		}
		prob.LP.AddConstraint(vars, ones, lp.LE, 1, fmt.Sprintf("one-mode[%s]", norm[i].Name))
	}
	if res.TimeThreshold > 0 && len(timeIdx) > 0 {
		prob.LP.AddConstraint(timeIdx, timeCoef, lp.LE, res.TimeThreshold, "time-threshold")
	}
	if res.MemThreshold > 0 && len(memIdx) > 0 {
		prob.LP.AddConstraint(memIdx, memCoef, lp.LE, float64(res.MemThreshold), "memory-threshold")
	}
	if force >= 0 && force < len(norm) {
		vars := perAnalysis[force]
		ones := make([]float64, len(vars))
		for k := range ones {
			ones[k] = 1
		}
		// With no modes at all (Steps < MinInterval) this is an always-false
		// zero row, which is exactly the diagnosis: the forced membership
		// itself is unsatisfiable.
		prob.LP.AddConstraint(vars, ones, lp.GE, 1, fmt.Sprintf("force[%s]", norm[force].Name))
	}
	return prob, refs
}

// CompactNames returns the variable names of the compact model, in variable
// order. A milp.TreeRecorder observing a Solve over the same inputs labels its
// branch edges with these names (the model itself is built inside Solve, out
// of the caller's reach).
func CompactNames(specs []AnalysisSpec, res Resources, opts SolveOptions) ([]string, error) {
	norm, err := normalizeSpecs(specs)
	if err != nil {
		return nil, err
	}
	prob, _ := buildCompactProblem(norm, res, opts)
	return append([]string(nil), prob.LP.Names...), nil
}

// normalizeSpecs validates and defaults a spec list.
func normalizeSpecs(specs []AnalysisSpec) ([]AnalysisSpec, error) {
	norm := make([]AnalysisSpec, len(specs))
	for i, a := range specs {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		norm[i] = a.withDefaults()
	}
	return norm, nil
}

// Solve recommends the optimal in-situ schedule using the compact mode-based
// MILP. Each analysis selects at most one mode; the time row enforces
// equation 4 exactly, and the memory row conservatively bounds equation 8 by
// the sum of per-analysis peaks (a safe over-approximation — the returned
// schedule is re-validated against the exact per-step recurrence).
func Solve(specs []AnalysisSpec, res Resources, opts SolveOptions) (*Recommendation, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	norm, err := normalizeSpecs(specs)
	if err != nil {
		return nil, err
	}
	prob, refs := buildCompactProblem(norm, res, opts)

	start := time.Now()
	sol, err := milp.Solve(prob, opts.milpOptions())
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	if sol.Status != milp.Optimal && !(sol.Status == milp.NodeLimit && sol.HasX) {
		return nil, fmt.Errorf("core: compact model solve failed: %v", sol.Status)
	}

	rec := &Recommendation{SolveTime: elapsed, Nodes: sol.Nodes, Stats: sol.Stats}
	chosen := make(map[int]mode)
	for v, ref := range refs {
		if sol.HasX && sol.X[v] > 0.5 {
			chosen[ref.analysis] = ref.m
		}
	}
	for i, a := range norm {
		m, ok := chosen[i]
		if !ok {
			rec.Schedules = append(rec.Schedules, AnalysisSchedule{Name: a.Name})
			continue
		}
		s := buildSchedule(a, res, m.count, m.k)
		rec.Schedules = append(rec.Schedules, s)
		rec.Objective += 1 + a.Weight*float64(m.count)
		rec.TotalTime += s.PredictedTime
	}
	rec.PeakMemory = exactPeakMemory(norm, res, rec.Schedules)
	if err := rec.Validate(specs, res); err != nil {
		return nil, fmt.Errorf("core: compact solution failed validation: %w", err)
	}
	return rec, nil
}

// exactPeakMemory computes max_j Σ_i mStart_{i,j} for the concrete
// schedules (equation 8's left-hand side).
func exactPeakMemory(specs []AnalysisSpec, res Resources, schedules []AnalysisSchedule) int64 {
	mem := make([]int64, res.Steps+1)
	byName := map[string]AnalysisSpec{}
	for _, a := range specs {
		byName[a.Name] = a.withDefaults()
	}
	for _, s := range schedules {
		if !s.Enabled {
			continue
		}
		a := byName[s.Name]
		isA := stepSet(s.AnalysisSteps)
		isO := stepSet(s.OutputSteps)
		mEnd := a.FM
		for j := 1; j <= res.Steps; j++ {
			mStart := mEnd + a.IM
			if isA[j] {
				mStart += a.CM
			}
			if isO[j] {
				mStart += a.OM
			}
			mem[j] += mStart
			if isO[j] {
				mEnd = a.FM
			} else {
				mEnd = mStart
			}
		}
	}
	var peak int64
	for j := 1; j <= res.Steps; j++ {
		if mem[j] > peak {
			peak = mem[j]
		}
	}
	return peak
}

// BruteForceSolve enumerates every mode combination (exponential) and
// returns the best recommendation under the exact per-step memory
// constraint. It exists to validate Solve on small instances in tests.
func BruteForceSolve(specs []AnalysisSpec, res Resources) (*Recommendation, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	norm := make([]AnalysisSpec, len(specs))
	modes := make([][]mode, len(specs))
	for i, a := range specs {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		norm[i] = a.withDefaults()
		modes[i] = append([]mode{{}}, enumerateModes(norm[i], res, 0)...) // {} = disabled
	}

	best := &Recommendation{Objective: math.Inf(-1)}
	pick := make([]mode, len(specs))
	var rec func(i int)
	rec = func(i int) {
		if i == len(specs) {
			cand := &Recommendation{}
			for j, m := range pick {
				if m.count == 0 {
					cand.Schedules = append(cand.Schedules, AnalysisSchedule{Name: norm[j].Name})
					continue
				}
				s := buildSchedule(norm[j], res, m.count, m.k)
				cand.Schedules = append(cand.Schedules, s)
				cand.Objective += 1 + norm[j].Weight*float64(m.count)
				cand.TotalTime += s.PredictedTime
			}
			if cand.Validate(specs, res) != nil {
				return
			}
			cand.PeakMemory = exactPeakMemory(norm, res, cand.Schedules)
			if cand.Objective > best.Objective {
				best = cand
			}
			return
		}
		for _, m := range modes[i] {
			pick[i] = m
			rec(i + 1)
		}
	}
	rec(0)
	if math.IsInf(best.Objective, -1) {
		return nil, fmt.Errorf("core: no feasible schedule")
	}
	return best, nil
}
