package core

import (
	"fmt"
	"sort"
)

// GreedySolve is the empirical baseline the paper contrasts with (§3.2:
// "scientists perform simulation-time analyses at a pre-determined
// frequency, often found empirically"): analyses are considered in
// descending weight-per-cost order and each is assigned the largest count
// that still fits the remaining time and memory budget, outputting at every
// analysis step. It is fast but can leave objective value on the table,
// which the ablation benchmark quantifies.
func GreedySolve(specs []AnalysisSpec, res Resources) (*Recommendation, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	norm := make([]AnalysisSpec, len(specs))
	for i, a := range specs {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		norm[i] = a.withDefaults()
	}

	order := make([]int, len(norm))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		ax, ay := norm[order[x]], norm[order[y]]
		cx := modeCost(ax, res, 1, 1)
		cy := modeCost(ay, res, 1, 1)
		if cx <= 0 {
			return true
		}
		if cy <= 0 {
			return false
		}
		return ax.Weight/cx > ay.Weight/cy
	})

	timeLeft := res.TimeThreshold
	memLeft := res.MemThreshold
	schedules := make([]AnalysisSchedule, len(norm))
	var objective, total float64
	for i := range schedules {
		schedules[i] = AnalysisSchedule{Name: norm[i].Name}
	}
	for _, i := range order {
		a := norm[i]
		maxN := res.Steps / a.MinInterval
		for n := maxN; n >= 1; n-- {
			s := buildSchedule(a, res, n, 1)
			if res.TimeThreshold > 0 && s.PredictedTime > timeLeft {
				continue
			}
			if res.MemThreshold > 0 && s.PeakMemory > memLeft {
				continue
			}
			schedules[i] = s
			timeLeft -= s.PredictedTime
			if res.MemThreshold > 0 {
				memLeft -= s.PeakMemory
			}
			objective += 1 + a.Weight*float64(n)
			total += s.PredictedTime
			break
		}
	}

	rec := &Recommendation{Schedules: schedules, Objective: objective, TotalTime: total}
	rec.PeakMemory = exactPeakMemory(norm, res, schedules)
	if err := rec.Validate(specs, res); err != nil {
		return nil, fmt.Errorf("core: greedy solution failed validation: %w", err)
	}
	return rec, nil
}

// FixedFrequency builds the user-prescribed baseline: every analysis runs at
// its minimum interval and outputs every `outputEvery` analysis steps, with
// no regard for the thresholds. The returned error (from validation against
// the envelope) tells the caller whether the naive schedule would blow the
// budget — the situation the optimization model exists to prevent.
func FixedFrequency(specs []AnalysisSpec, res Resources, outputEvery int) (*Recommendation, error) {
	if outputEvery <= 0 {
		outputEvery = 1
	}
	norm := make([]AnalysisSpec, len(specs))
	for i, a := range specs {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		norm[i] = a.withDefaults()
	}
	rec := &Recommendation{}
	for _, a := range norm {
		n := res.Steps / a.MinInterval
		if n < 1 {
			n = 1
		}
		s := buildSchedule(a, res, n, outputEvery)
		rec.Schedules = append(rec.Schedules, s)
		rec.Objective += 1 + a.Weight*float64(n)
		rec.TotalTime += s.PredictedTime
	}
	rec.PeakMemory = exactPeakMemory(norm, res, rec.Schedules)
	return rec, rec.Validate(specs, res)
}
